#!/bin/sh
# ckpt.sh — regenerate BENCH_ckpt.json: the crash-recovery cadence
# sweep (a deterministic loop workload forced over its cycle budget,
# warm-restarted from sealed checkpoints at four checkpoint cadences).
# The figures are computed from deterministic cycle counts, so two
# consecutive runs produce byte-identical JSON.
#
# Refuses to overwrite an uncommitted BENCH_ckpt.json unless FORCE=1,
# so a locally modified artifact is never clobbered silently.
set -eu

cd "$(dirname "$0")/.."

if git diff --quiet -- BENCH_ckpt.json 2>/dev/null; then
    : # clean (or not yet tracked with changes): safe to regenerate
elif [ "${FORCE:-0}" = "1" ]; then
    echo "ckpt.sh: BENCH_ckpt.json is dirty; overwriting (FORCE=1)" >&2
else
    echo "ckpt.sh: BENCH_ckpt.json has uncommitted changes; commit them or rerun with FORCE=1" >&2
    exit 1
fi

go run ./cmd/ascbench -table ckpt -json BENCH_ckpt.json
echo "wrote BENCH_ckpt.json"
