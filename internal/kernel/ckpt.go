// ckpt.go implements sealed process checkpoint/restore at the kernel
// layer. Checkpoint captures the complete state of a quiesced process
// (any instruction boundary is safe: the trap handler updates the
// CF-state words and the in-kernel nonce inside one Step, so they are
// never observed half-advanced) and seals it via internal/ckpt under the
// kernel's policy MAC key. Restore is the mirror, and it *verifies*
// rather than trusts: the seal, the caller's trusted epoch, the program
// tag, and — after the overlay — the control-flow state MAC and the
// capability set, both of which are then re-sealed under bumped nonces
// so pre-checkpoint copies of either die with the restore. The verify
// cache is deliberately not restored; the first post-restore trap at
// each site pays full AES re-verification.
package kernel

import (
	"errors"
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/captrack"
	"asc/internal/ckpt"
	"asc/internal/isa"
	"asc/internal/mac"
	"asc/internal/policy"
	"asc/internal/vm"
)

// stateSymbol is the installer's control-flow state location ({lastBlock,
// lbMAC} in the .auth section).
const stateSymbol = "__asc_state"

// progTag returns the checkpoint program tag for an executable, caching
// by identity (executables are immutable once installed; the cache makes
// checkpoint cadence under the SMP scheduler allocation-cheap).
func (k *Kernel) progTag(f *binfmt.File) (mac.Tag, error) {
	if v, ok := k.progTags.Load(f); ok {
		return v.(mac.Tag), nil
	}
	b, err := f.Bytes()
	if err != nil {
		return mac.Tag{}, fmt.Errorf("kernel: serialize program: %w", err)
	}
	tag := ckpt.ProgramTag(k.key, b)
	k.progTags.Store(f, tag)
	return tag, nil
}

// Checkpoint seals the complete state of p under the given epoch. The
// caller owns epoch monotonicity (ckpt.Store enforces it); the kernel
// only binds the chosen value into the seal. Processes holding pipes or
// sockets are not checkpointable and fail with ckpt.ErrUnsupported.
func (k *Kernel) Checkpoint(p *Process, epoch uint64) ([]byte, error) {
	if k.key == nil {
		return nil, errors.New("kernel: checkpoint requires a MAC key")
	}
	if p.Exited || p.Killed {
		return nil, fmt.Errorf("%w: process has exited", ckpt.ErrUnsupported)
	}
	tag, err := k.progTag(p.file)
	if err != nil {
		return nil, err
	}

	// Group-committed CF updates must land in application memory before
	// the segments are captured, or the restored image would disagree
	// with the restored counter. The drain is off the guest clock: a
	// checkpoint is an external observation, not work the process did.
	cyc, aes := p.CPU.Cycles, p.VerifyAESBlocks
	k.drainCommit(p)
	p.CPU.Cycles, p.VerifyAESBlocks = cyc, aes

	st := &ckpt.State{
		Epoch:           epoch,
		ProgTag:         tag,
		Name:            p.Name,
		Authenticated:   p.authenticated,
		Enforcement:     uint32(p.Enforcement),
		Regs:            append([]uint32(nil), p.CPU.Regs[:]...),
		PC:              p.CPU.PC,
		Cycles:          p.CPU.Cycles,
		Halted:          p.CPU.Halted,
		MemBase:         p.Mem.Base(),
		MemSize:         p.Mem.Limit() - p.Mem.Base(),
		Brk:             p.brk,
		Counter:         p.counter,
		FDTrack:         p.fdTracker != nil,
		Cwd:             p.cwd,
		Umask:           p.umask,
		Stdin:           append([]byte(nil), p.Stdin...),
		StdinPos:        uint32(p.stdinPos),
		Stdout:          append([]byte(nil), p.Stdout...),
		NumFDSlots:      uint32(len(p.fds)),
		SyscallCount:    p.SyscallCount,
		VerifyCount:     p.VerifyCount,
		VerifyAESBlocks: p.VerifyAESBlocks,
		DeniedCount:     p.DeniedCount,
		AuditedCount:    p.AuditedCount,
	}
	// Shares are a fleet-level metric and deliberately not part of the
	// sealed blob (the blob format predates the fleet cache); a restored
	// process re-earns them against the live fleet cache.
	cs := p.CacheStats()
	st.CacheHits = cs.Hits
	st.CacheMisses = cs.Misses
	st.CacheInvalidations = cs.Invalidations
	if p.fdTracker != nil {
		st.FDTrackCounter = p.fdTracker.Counter()
	}

	segs, gens := p.Mem.SnapshotSegments()
	st.Segs = make([]ckpt.SegState, len(segs))
	for i, sg := range segs {
		// The mmap arena is captured raw: resident pages carry their live
		// bytes, evicted pages read as the zero scrub. Going through the
		// paged accessors here would thrash the working set (and fault on
		// unmapped pages); the evicted contents travel in the paged
		// section below instead.
		read := p.Mem.KernelRead
		if p.pager != nil && sg.Name == "mmap" {
			read = p.Mem.RawRead
		}
		data, err := read(sg.Start, sg.End-sg.Start)
		if err != nil {
			return nil, fmt.Errorf("kernel: checkpoint segment %s: %w", sg.Name, err)
		}
		st.Segs[i] = ckpt.SegState{
			Name: sg.Name, Start: sg.Start, End: sg.End, Perms: sg.Perms,
			Gen: gens[i], Data: append([]byte(nil), data...),
		}
	}

	if err := k.checkpointPaging(p, st); err != nil {
		return nil, err
	}

	for slot, e := range p.fds {
		if e == nil {
			continue
		}
		fd := ckpt.FDState{Slot: uint32(slot), Kind: uint32(e.kind), Offset: e.offset}
		switch e.kind {
		case fdFile:
			fd.Path = e.path
		case fdConsole:
		default:
			return nil, fmt.Errorf("%w: fd %d is a pipe or socket", ckpt.ErrUnsupported, slot)
		}
		st.FDs = append(st.FDs, fd)
	}
	for num, h := range p.sigHandlers {
		st.Sigs = append(st.Sigs, ckpt.SigState{Num: num, Handler: h})
	}
	// Map iteration order is random; the serialization must not be.
	for i := 1; i < len(st.Sigs); i++ {
		for j := i; j > 0 && st.Sigs[j].Num < st.Sigs[j-1].Num; j-- {
			st.Sigs[j], st.Sigs[j-1] = st.Sigs[j-1], st.Sigs[j]
		}
	}

	return ckpt.Seal(k.key, st), nil
}

// checkpointPaging captures the paged-memory section: the page table,
// the per-page swap generations, and the swap residue (evicted pages
// whose sealed frames still live on the device). Each residue frame is
// verified at capture time — a checkpoint must not launder a tampered
// swap device into a sealed blob the restore would then trust.
func (k *Kernel) checkpointPaging(p *Process, st *ckpt.State) error {
	if p.pager == nil {
		return nil
	}
	g := p.pager
	n := g.pt.NumPages()
	st.Paged = true
	st.PageBase = g.pt.Base()
	st.PageHand = uint32(g.hand)
	st.PageFlags = make([]byte, n)
	st.PageGens = append([]uint64(nil), g.gens...)
	for i := 0; i < n; i++ {
		st.PageFlags[i] = byte(g.pt.Flags(i))
		if g.pt.Flags(i)&vm.PagePresent != 0 || g.gens[i] == 0 {
			continue
		}
		blob, err := k.FS.ReadFile(g.framePath(i))
		if err != nil {
			return fmt.Errorf("kernel: checkpoint swap page %d: %w: %v", i, ckpt.ErrState, err)
		}
		f, err := ckpt.OpenSwapFrame(k.key, uint64(p.PID), uint32(i), g.gens[i], blob)
		if err != nil {
			return fmt.Errorf("kernel: checkpoint swap page %d: %w: %v", i, ckpt.ErrState, err)
		}
		if len(f.Data) != vm.PageSize {
			return fmt.Errorf("kernel: checkpoint swap page %d: %w: %d-byte frame", i, ckpt.ErrState, len(f.Data))
		}
		st.SwapPages = append(st.SwapPages, ckpt.SwapPageState{Index: uint32(i), Data: f.Data})
	}
	return nil
}

// restorePaging overlays the paged-memory section onto a freshly spawned
// pager: the page table and generations come back verbatim, and the swap
// residue is re-sealed under the restored process's identity (new PID,
// same generations) so the restored frames bind to the process that will
// fault them in.
func (k *Kernel) restorePaging(p *Process, st *ckpt.State) error {
	statef := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ckpt.ErrState, fmt.Sprintf(format, args...))
	}
	g := p.pager
	n := g.pt.NumPages()
	if st.PageBase != g.pt.Base() {
		return statef("arena base %#x, want %#x", st.PageBase, g.pt.Base())
	}
	if len(st.PageFlags) != n {
		return statef("%d page-table entries, want %d", len(st.PageFlags), n)
	}
	if st.PageHand >= uint32(n) {
		return statef("clock hand %d outside %d pages", st.PageHand, n)
	}
	resident := 0
	for i := 0; i < n; i++ {
		f := vm.PageFlags(st.PageFlags[i])
		if f&^(vm.PageProtMask|vm.PageMapped|vm.PagePresent|vm.PageAccessed|vm.PageDirty) != 0 {
			return statef("page %d: unknown flag bits %#x", i, st.PageFlags[i])
		}
		if f&vm.PageMapped == 0 && (f != 0 || st.PageGens[i] != 0) {
			return statef("page %d: state on an unmapped page", i)
		}
		if f&vm.PagePresent != 0 {
			resident++
		}
		g.pt.SetFlags(i, f)
	}
	if resident > g.budget {
		return statef("%d resident pages over a budget of %d", resident, g.budget)
	}
	copy(g.gens, st.PageGens)
	g.hand = int(st.PageHand)
	g.resident = resident

	// Swap residue: exactly the evicted pages, each exactly once.
	want := make(map[uint32]bool, len(st.SwapPages))
	for i := 0; i < n; i++ {
		if vm.PageFlags(st.PageFlags[i])&vm.PagePresent == 0 && st.PageGens[i] != 0 {
			want[uint32(i)] = true
		}
	}
	if len(st.SwapPages) != len(want) {
		return statef("%d swap pages for %d evicted", len(st.SwapPages), len(want))
	}
	for i := range st.SwapPages {
		sp := &st.SwapPages[i]
		if !want[sp.Index] {
			return statef("swap page %d: duplicate or not evicted", sp.Index)
		}
		want[sp.Index] = false
		if len(sp.Data) != vm.PageSize {
			return statef("swap page %d: %d data bytes", sp.Index, len(sp.Data))
		}
		blob := ckpt.SealSwapFrame(k.key, &ckpt.SwapFrame{
			Owner: uint64(p.PID), Page: sp.Index, Gen: g.gens[sp.Index], Data: sp.Data,
		})
		if !g.dirMade {
			if err := k.FS.MkdirAll(g.dir, 0o700); err != nil {
				return statef("swap device: %v", err)
			}
			g.dirMade = true
		}
		if err := k.FS.WriteFile(g.framePath(int(sp.Index)), blob, 0o600); err != nil {
			return statef("swap device: %v", err)
		}
	}
	return nil
}

// Restore spawns a fresh process from exe and overlays a sealed
// checkpoint onto it. wantEpoch is the *trusted* epoch the caller
// recorded when the checkpoint was stored; a genuine-but-older sealed
// blob replayed into this slot fails the epoch check. On any failure the
// partially-built process is discarded and never runnable.
func (k *Kernel) Restore(exe *binfmt.File, name string, blob []byte, wantEpoch uint64) (*Process, error) {
	if k.key == nil {
		return nil, errors.New("kernel: restore requires a MAC key")
	}
	st, err := ckpt.Open(k.key, blob)
	if err != nil {
		return nil, fmt.Errorf("kernel: restore %s: %w", name, err)
	}
	if st.Epoch != wantEpoch {
		return nil, fmt.Errorf("kernel: restore %s: %w: sealed epoch %d, stored under %d",
			name, ckpt.ErrEpoch, st.Epoch, wantEpoch)
	}
	tag, err := k.progTag(exe)
	if err != nil {
		return nil, err
	}
	if !tag.Equal(st.ProgTag) {
		return nil, fmt.Errorf("kernel: restore %s: %w", name, ckpt.ErrProgram)
	}

	p, err := k.Spawn(exe, name)
	if err != nil {
		return nil, err
	}
	if err := k.overlay(p, st); err != nil {
		k.unregister(p)
		return nil, fmt.Errorf("kernel: restore %s: %w", name, err)
	}
	if err := k.reverify(p, exe, st); err != nil {
		k.unregister(p)
		return nil, fmt.Errorf("kernel: restore %s: %w", name, err)
	}
	return p, nil
}

// unregister removes a process from the PID table (failed restores must
// not leave half-built processes visible to monitors).
func (k *Kernel) unregister(p *Process) {
	k.mu.Lock()
	delete(k.procs, p.PID)
	k.mu.Unlock()
}

// overlay applies authenticated checkpoint state to a freshly spawned
// process. The blob's seal was already verified, so inconsistencies here
// mean the checkpoint does not fit this kernel's environment (a changed
// executable would have failed the program tag); they classify as
// ckpt.ErrState.
func (k *Kernel) overlay(p *Process, st *ckpt.State) error {
	statef := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ckpt.ErrState, fmt.Sprintf(format, args...))
	}
	if len(st.Regs) != isa.NumRegs {
		return statef("%d registers, want %d", len(st.Regs), isa.NumRegs)
	}
	if st.MemBase != p.Mem.Base() || st.MemSize != p.Mem.Limit()-p.Mem.Base() {
		return statef("address space %#x+%#x, want %#x+%#x",
			st.MemBase, st.MemSize, p.Mem.Base(), p.Mem.Limit()-p.Mem.Base())
	}
	if st.Authenticated != p.authenticated {
		return statef("authenticated=%v, spawned %v", st.Authenticated, p.authenticated)
	}
	if st.FDTrack != (p.fdTracker != nil) {
		return statef("capability tracker presence mismatch")
	}
	if Enforcement(st.Enforcement) > EnforceAudit {
		return statef("unknown enforcement mode %d", st.Enforcement)
	}
	if st.NumFDSlots > maxFDs {
		return statef("%d fd slots, max %d", st.NumFDSlots, maxFDs)
	}
	if st.Paged != (p.pager != nil) {
		return statef("paged=%v, spawned on a kernel with paged=%v", st.Paged, p.pager != nil)
	}

	// Memory: write each segment's bytes, then install the protection
	// map and generation counters wholesale.
	segs := make([]vm.Segment, len(st.Segs))
	gens := make([]uint64, len(st.Segs))
	for i := range st.Segs {
		sg := &st.Segs[i]
		if sg.End < sg.Start || uint32(len(sg.Data)) != sg.End-sg.Start {
			return statef("segment %s: %d data bytes for [%#x,%#x)", sg.Name, len(sg.Data), sg.Start, sg.End)
		}
		if len(sg.Data) > 0 {
			// The arena bytes were captured raw (resident contents plus
			// zero scrub); restore them the same way. The torn-write
			// fault class depends on every other segment going through
			// the checked KernelWrite path.
			write := p.Mem.KernelWrite
			if p.pager != nil && sg.Name == "mmap" {
				write = p.Mem.RawWrite
			}
			if err := write(sg.Start, sg.Data); err != nil {
				return statef("segment %s: %v", sg.Name, err)
			}
		}
		segs[i] = vm.Segment{Name: sg.Name, Start: sg.Start, End: sg.End, Perms: sg.Perms}
		gens[i] = sg.Gen
	}
	if err := p.Mem.RestoreSegments(segs, gens); err != nil {
		return statef("%v", err)
	}
	if st.Paged {
		if err := k.restorePaging(p, st); err != nil {
			return err
		}
	}

	copy(p.CPU.Regs[:], st.Regs)
	p.CPU.PC = st.PC
	p.CPU.Cycles = st.Cycles
	p.CPU.Halted = st.Halted

	p.Enforcement = Enforcement(st.Enforcement)
	p.brk = st.Brk
	p.cwd = st.Cwd
	p.umask = st.Umask
	p.Stdin = append([]byte(nil), st.Stdin...)
	p.stdinPos = int(st.StdinPos)
	p.Stdout = append([]byte(nil), st.Stdout...)
	p.counter = st.Counter

	// Descriptor table: rebuild, re-resolving file paths against the
	// live VFS. A file that vanished since the checkpoint is an
	// environment mismatch, not a corruption.
	fds := make([]*fdEntry, st.NumFDSlots)
	for _, fd := range st.FDs {
		if fd.Slot >= st.NumFDSlots {
			return statef("fd slot %d outside table of %d", fd.Slot, st.NumFDSlots)
		}
		if fds[fd.Slot] != nil {
			return statef("fd slot %d restored twice", fd.Slot)
		}
		switch fdKind(fd.Kind) {
		case fdConsole:
			fds[fd.Slot] = &fdEntry{kind: fdConsole}
		case fdFile:
			node, err := k.FS.Lookup(fd.Path)
			if err != nil {
				return statef("fd %d: %s: %v", fd.Slot, fd.Path, err)
			}
			fds[fd.Slot] = &fdEntry{kind: fdFile, node: node, path: fd.Path, offset: fd.Offset}
		default:
			return statef("fd %d: kind %d not restorable", fd.Slot, fd.Kind)
		}
	}
	p.fds = fds

	p.sigHandlers = make(map[uint32]uint32, len(st.Sigs))
	for _, sg := range st.Sigs {
		p.sigHandlers[sg.Num] = sg.Handler
	}

	p.SyscallCount = st.SyscallCount
	p.VerifyCount = st.VerifyCount
	p.VerifyAESBlocks = st.VerifyAESBlocks
	p.DeniedCount = st.DeniedCount
	p.AuditedCount = st.AuditedCount
	p.setCacheStats(CacheStats{
		Hits:          st.CacheHits,
		Misses:        st.CacheMisses,
		Invalidations: st.CacheInvalidations,
	})
	// p.vcache stays nil: cached verifications are monitor-internal and
	// cheap to rebuild, so restore re-verifies every site from scratch.
	// The group-commit mirror likewise starts cold: the blob's memory
	// image is self-consistent (Checkpoint drained before sealing), and
	// the first post-restore CF call re-arms via the classic check.
	p.commit = cfCommit{pending: p.commit.pending[:0]}
	return nil
}

// reverify re-checks the verification state the overlay brought back and
// re-seals it under bumped nonces, all before the process runs a single
// instruction. The MACs are recomputed off the guest clock (restore is
// kernel work, not process work), so restored cycle counts stay exactly
// the sealed ones.
func (k *Kernel) reverify(p *Process, exe *binfmt.File, st *ckpt.State) error {
	if p.authenticated {
		if addr, ok := exe.SymbolAddr(stateSymbol); ok {
			lastBlock, err := p.Mem.KernelLoad32(addr)
			if err != nil {
				return fmt.Errorf("%w: CF state unreadable", ckpt.ErrState)
			}
			lbBytes, err := p.Mem.KernelRead(addr+4, mac.Size)
			if err != nil {
				return fmt.Errorf("%w: CF state unreadable", ckpt.ErrState)
			}
			var lbMAC mac.Tag
			copy(lbMAC[:], lbBytes)
			want, _ := policy.StateMAC(k.key, lastBlock, p.counter)
			if !want.Equal(lbMAC) {
				return fmt.Errorf("%w: control-flow state MAC mismatch", ckpt.ErrState)
			}
			// Advance the nonce and re-seal: the pre-checkpoint copy of
			// {lastBlock, lbMAC} in any other snapshot of this memory no
			// longer verifies against this kernel.
			p.counter++
			fresh, _ := policy.StateMAC(k.key, lastBlock, p.counter)
			if err := p.Mem.KernelWrite(addr+4, fresh[:]); err != nil {
				return fmt.Errorf("%w: CF state rewrite failed", ckpt.ErrState)
			}
		}
	}
	if p.fdTracker != nil {
		p.fdTracker.SetCounter(st.FDTrackCounter)
		if err := p.fdTracker.Reseed(p.Mem); err != nil {
			if errors.Is(err, captrack.ErrTampered) {
				return fmt.Errorf("%w: capability set MAC mismatch", ckpt.ErrState)
			}
			return fmt.Errorf("%w: capability set: %v", ckpt.ErrState, err)
		}
	}
	return nil
}
