// ascfault runs the deterministic fault-injection campaign against the
// simulated platform: N seeded trials per fault class per victim
// workload, each executed under Kill and Deny enforcement with the
// verify cache off and on. It prints an aligned result matrix, optionally
// writes the byte-stable JSON form (same seed → identical bytes), and
// exits nonzero if any trial violated the detection contract.
//
// Usage: ascfault [-seed N] [-trials N] [-classes a,b,...] [-cycles N]
//
//	[-workers N] [-ckpt=false] [-json file] [-q]
//
// -workers runs (class, victim) cells concurrently; the matrix is
// byte-identical at any worker count. The campaign also tampers with
// sealed checkpoints (torn write, bit flip, stale replay, wrong
// process) during supervised warm restarts, attacks the cluster
// surface (node crashes, torn migrations, envelope replay and spoof,
// heartbeat delays), and attacks the durable control plane (torn WAL
// tails, WAL record flips, stale-log replay, stale store epochs,
// director crashes mid-migration); -ckpt=false, -cluster=false, and
// -durable=false skip those cells.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asc/internal/fault"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed (same seed → identical JSON)")
	trials := flag.Int("trials", 4, "trials per (class, victim) pair")
	classesFlag := flag.String("classes", "", "comma-separated fault classes (default: all)")
	cycles := flag.Uint64("cycles", 0, "per-run cycle budget (default 4,000,000)")
	workers := flag.Int("workers", 1, "run (class, victim) cells on N workers (matrix is identical at any width)")
	ckptCells := flag.Bool("ckpt", true, "include the checkpoint-tampering cells")
	clusterCells := flag.Bool("cluster", true, "include the cluster fault cells")
	durableCells := flag.Bool("durable", true, "include the durable control-plane fault cells")
	jsonPath := flag.String("json", "", "write the JSON matrix to this file")
	quiet := flag.Bool("q", false, "suppress the result table")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ascfault [-seed N] [-trials N] [-classes a,b,...] [-cycles N] [-workers N] [-ckpt=false] [-cluster=false] [-durable=false] [-json file] [-q]")
		os.Exit(2)
	}

	cfg := fault.Config{Seed: *seed, Trials: *trials, MaxCycles: *cycles, Workers: *workers,
		SkipCkpt: !*ckptCells, SkipCluster: !*clusterCells, SkipDurable: !*durableCells}
	if *classesFlag != "" {
		known := make(map[string]bool)
		for _, c := range fault.Classes() {
			known[string(c)] = true
		}
		for _, s := range strings.Split(*classesFlag, ",") {
			s = strings.TrimSpace(s)
			if !known[s] {
				fmt.Fprintf(os.Stderr, "ascfault: unknown fault class %q (known: %v)\n", s, fault.Classes())
				os.Exit(2)
			}
			cfg.Classes = append(cfg.Classes, fault.Class(s))
		}
	}

	m, err := fault.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ascfault:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Print(m.Render())
	}
	if *jsonPath != "" {
		b, err := m.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ascfault:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ascfault:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ascfault: wrote %s\n", *jsonPath)
	}
	if fails := m.Failures(); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "ascfault: FAIL:", f)
		}
		fmt.Fprintf(os.Stderr, "ascfault: %d contract violations\n", len(fails))
		os.Exit(1)
	}
}
