// ckpt.go extends the campaign to the checkpoint surface: faults that
// corrupt sealed checkpoints *at rest* rather than live process state. A
// CkptFault is installed as the checkpoint store's Tamper hook and
// perturbs the newest blob exactly once, as the supervisor fetches the
// fallback chain for a warm restart; the contract is that the tampered
// blob is rejected with the class's canonical reason, the restart falls
// back to the older intact checkpoint, and the workload still recovers.
package fault

import (
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/ckpt"
	"asc/internal/core"
	"asc/internal/kernel"
	"asc/internal/workload"
)

// The checkpoint fault classes.
const (
	// CkptTorn truncates the newest sealed blob to a strict prefix — a
	// torn write to checkpoint storage.
	CkptTorn Class = "ckpt-torn-write"
	// CkptFlip flips one bit of the newest sealed blob.
	CkptFlip Class = "ckpt-bit-flip"
	// CkptReplay serves an older sealed blob in the newest slot — a
	// stale checkpoint replayed against the store's trusted epoch.
	CkptReplay Class = "ckpt-epoch-replay"
	// CkptSwap serves a blob sealed (under the same key) for a
	// *different* program at the same epoch — a cross-process swap.
	CkptSwap Class = "ckpt-wrong-process"
)

// CkptClasses returns the checkpoint fault classes in canonical order.
func CkptClasses() []Class {
	return []Class{CkptTorn, CkptFlip, CkptReplay, CkptSwap}
}

// CkptExpectation returns the ckpt.Reason strings a class's rejection
// may carry. Every class must be rejected: there is no survivable
// checkpoint corruption, only detected corruption.
func CkptExpectation(c Class) []string {
	switch c {
	case CkptTorn:
		// A long prefix still covers the 16-byte header (seal fails); a
		// short one does not even parse.
		return []string{ckpt.ReasonTruncated, ckpt.ReasonSeal}
	case CkptFlip:
		return []string{ckpt.ReasonSeal}
	case CkptReplay:
		return []string{ckpt.ReasonEpoch}
	case CkptSwap:
		return []string{ckpt.ReasonProgram}
	}
	return nil
}

// CkptFault tampers with the newest entry of a checkpoint chain exactly
// once. Its decisions are a pure function of (class, seed), like
// Engine's.
type CkptFault struct {
	class Class
	pick  uint64
	// donor is a pristine chain sealed for a different program under the
	// same key; CkptSwap serves its epoch-matching blob.
	donor []ckpt.Entry
	fired bool
}

// NewCkptFault builds the tamper hook for one class. donor is only
// consulted by CkptSwap.
func NewCkptFault(class Class, seed uint64, donor []ckpt.Entry) *CkptFault {
	s := seed ^ uint64(len(class))<<56
	for _, b := range []byte(class) {
		s = s*1099511628211 + uint64(b)
	}
	_ = splitmix(&s)
	return &CkptFault{class: class, pick: splitmix(&s), donor: donor}
}

// Fired reports whether the tamper was applied.
func (f *CkptFault) Fired() bool { return f.fired }

// Tamper implements ckpt.Store.Tamper: the first fetch of the newest
// entry is perturbed; everything else (older entries, later walks)
// passes through pristine, so the fallback chain below the tampered
// blob stays intact.
func (f *CkptFault) Tamper(chain []ckpt.Entry, i int) []byte {
	blob := chain[i].Blob
	if f.fired || i != 0 || len(blob) == 0 {
		return blob
	}
	switch f.class {
	case CkptTorn:
		f.fired = true
		return blob[:f.pick%uint64(len(blob))]
	case CkptFlip:
		f.fired = true
		mut := append([]byte(nil), blob...)
		bit := f.pick % uint64(len(mut)*8)
		mut[bit/8] ^= 1 << (bit % 8)
		return mut
	case CkptReplay:
		if len(chain) < 2 {
			return blob // nothing older to replay yet
		}
		f.fired = true
		return chain[1].Blob
	case CkptSwap:
		for _, d := range f.donor {
			if d.Epoch == chain[i].Epoch {
				f.fired = true
				return d.Blob
			}
		}
		return blob // donor has no blob at this epoch
	}
	return blob
}

// CkptCell aggregates the trials of one (class, victim, mode) triple.
// The mode is recorded for the parity check: checkpoint faults live
// entirely outside the enforcement path, so Kill and Deny cells must be
// identical in every field but Mode.
type CkptCell struct {
	Class        string         `json:"class"`
	Victim       string         `json:"victim"`
	Mode         string         `json:"mode"`
	Trials       int            `json:"trials"`
	Fired        int            `json:"fired"`
	Rejected     int            `json:"rejected"`
	Reasons      map[string]int `json:"reasons,omitempty"`
	WarmRestarts int            `json:"warm_restarts"`
	ColdStarts   int            `json:"cold_starts"`
	Recovered    int            `json:"recovered"`
	ReplayCycles uint64         `json:"replay_cycles"`
	Failures     []string       `json:"failures,omitempty"`
}

// ckptReplaySlack bounds how far a checkpoint boundary can overshoot its
// cadence mark: one trap's worth of verification work.
const ckptReplaySlack = 8192

// ckptPrep is the per-victim serial precomputation: the clean cycle
// count (from which the runaway budget is derived) and the victim's own
// pristine checkpoint chain (the swap donor for its neighbor victim).
type ckptPrep struct {
	clean uint64
	chain []ckpt.Entry
}

// prepCkpt measures one victim and seals its donor chain.
func prepCkpt(cfg Config, v *workload.FaultVictim, exe *binfmt.File) (ckptPrep, error) {
	sys, err := core.NewSystem(core.Config{Key: cfg.Key})
	if err != nil {
		return ckptPrep{}, err
	}
	res, err := sys.Exec(exe, v.Name, v.Stdin)
	if err != nil {
		return ckptPrep{}, fmt.Errorf("fault: ckpt clean run %s: %w", v.Name, err)
	}
	if res.Killed {
		return ckptPrep{}, fmt.Errorf("fault: ckpt clean run %s killed: %s", v.Name, res.Reason)
	}

	store := ckpt.NewStore()
	donor, err := core.NewSystem(core.Config{Key: cfg.Key})
	if err != nil {
		return ckptPrep{}, err
	}
	stats, err := donor.Supervise(exe, v.Name, v.Stdin, core.SuperviseConfig{
		MaxRestarts:     core.NoRestarts,
		MaxCycles:       res.Cycles * 2,
		CheckpointEvery: res.Cycles / 6,
		Checkpoints:     store,
	})
	if err != nil {
		return ckptPrep{}, fmt.Errorf("fault: ckpt donor run %s: %w", v.Name, err)
	}
	if stats.GaveUp || stats.Checkpoints == 0 {
		return ckptPrep{}, fmt.Errorf("fault: ckpt donor run %s: %d checkpoints, gaveUp=%v",
			v.Name, stats.Checkpoints, stats.GaveUp)
	}
	return ckptPrep{clean: res.Cycles, chain: store.Chain()}, nil
}

// runCkptCell runs every trial of one (class, victim, mode) triple. The
// victim is driven into a runaway by a budget smaller than its clean
// cycle count, so the supervisor must recover it through the (tampered)
// checkpoint chain.
func runCkptCell(cfg Config, class Class, v *workload.FaultVictim, exe *binfmt.File, vi uint64, prep ckptPrep, donor []ckpt.Entry, mode kernel.Enforcement) (CkptCell, error) {
	modeName := "kill"
	if mode == kernel.EnforceDeny {
		modeName = "deny"
	}
	cell := CkptCell{
		Class: string(class), Victim: v.Name, Mode: modeName,
		Trials: cfg.Trials, Reasons: map[string]int{},
	}
	budget := prep.clean * 4 / 5
	every := budget / 3
	exp := CkptExpectation(class)

	for trial := 0; trial < cfg.Trials; trial++ {
		s := cfg.Seed
		_ = splitmix(&s)
		subseed := s ^ vi<<40 ^ uint64(trial)<<8

		eng := NewCkptFault(class, subseed, donor)
		store := ckpt.NewStore()
		store.Tamper = eng.Tamper
		sys, err := core.NewSystem(core.Config{Key: cfg.Key, Enforcement: mode})
		if err != nil {
			return cell, err
		}
		stats, err := sys.Supervise(exe, v.Name, v.Stdin, core.SuperviseConfig{
			MaxRestarts:     8,
			BackoffBase:     100,
			MaxCycles:       budget,
			CheckpointEvery: every,
			Checkpoints:     store,
		})
		if err != nil {
			return cell, fmt.Errorf("fault: ckpt %s/%s/%s trial %d: %w", class, v.Name, modeName, trial, err)
		}

		badf := func(format string, args ...any) {
			cell.Failures = append(cell.Failures,
				fmt.Sprintf("trial %d: ", trial)+fmt.Sprintf(format, args...))
		}
		if eng.Fired() {
			cell.Fired++
		} else {
			badf("checkpoint fault never fired")
		}
		if len(stats.CkptRejected) > 0 {
			cell.Rejected++
		} else if eng.Fired() {
			badf("tampered checkpoint was not rejected")
		}
		for reason, n := range stats.CkptRejected {
			cell.Reasons[reason] += n
			ok := false
			for _, want := range exp {
				if reason == want {
					ok = true
				}
			}
			if !ok {
				badf("unexpected rejection reason %q (allowed %v)", reason, exp)
			}
		}
		cell.WarmRestarts += stats.WarmRestarts
		cell.ColdStarts += stats.ColdStarts
		cell.ReplayCycles += stats.ReplayCycles
		if stats.WarmRestarts == 0 {
			badf("no warm restart: fallback chain did not recover")
		}
		if stats.ColdStarts != 0 {
			badf("%d cold starts with an intact older checkpoint", stats.ColdStarts)
		}
		recovered := !stats.GaveUp && stats.Final != nil && !stats.Final.Killed && stats.Final.ExitCode == 0
		if recovered {
			cell.Recovered++
		} else {
			badf("workload did not recover: %+v", stats.Final)
		}
		// Replay bound: a warm restart replays the cycles since its
		// restore point, and every rejected blob pushes that point one
		// cadence interval older.
		rejected := 0
		for _, n := range stats.CkptRejected {
			rejected += n
		}
		if bound := uint64(stats.WarmRestarts+rejected) * (every + ckptReplaySlack); stats.ReplayCycles > bound {
			badf("replayed %d cycles, bound %d (cadence %d, %d rejections)",
				stats.ReplayCycles, bound, every, rejected)
		}
	}
	if len(cell.Reasons) == 0 {
		cell.Reasons = nil
	}
	return cell, nil
}
