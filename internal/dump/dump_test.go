package dump

import (
	"strings"
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/installer"
	"asc/internal/libc"
	"asc/internal/linker"
)

func buildAuth(t *testing.T) *binfmt.File {
	t.Helper()
	obj, err := asm.Assemble("t.s", `
        .text
        .global main
main:
        MOVI r1, path
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOVI r0, 0
        RET
        .rodata
path:   .asciz "/etc/passwd"
`)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := libc.Objects(libc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{obj}, lib)
	if err != nil {
		t.Fatal(err)
	}
	out, _, _, err := installer.Install(exe, "t", installer.Options{Key: []byte("0123456789abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDumpAuthenticated(t *testing.T) {
	f := buildAuth(t)
	s, err := Render(f, All)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, want := range []string{
		"authenticated executable",
		".auth",
		"<main>:",
		"ASYSCALL",
		"; policy: open",
		"authenticated string",
		"predecessors",
		"callMAC",
		"global func",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestDumpSelective(t *testing.T) {
	f := buildAuth(t)
	s, err := Render(f, Options{Sections: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, ".text") || strings.Contains(s, "disassembly") {
		t.Errorf("selective dump wrong: %q", s[:120])
	}
}

func TestDumpPlainObject(t *testing.T) {
	obj, err := asm.Assemble("t.s", ".text\n.global main\nmain:\nRET\n")
	if err != nil {
		t.Fatal(err)
	}
	obj.Layout()
	s, err := Render(obj, All)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "relocatable") {
		t.Errorf("kind line: %q", strings.SplitN(s, "\n", 2)[0])
	}
}
