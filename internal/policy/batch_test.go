package policy

import (
	"bytes"
	"encoding/binary"
	"testing"

	"asc/internal/mac"
)

func TestStateBatchRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 8, 16, 100} {
		ups := make([]StateUpdate, n)
		for i := range ups {
			ups[i] = StateUpdate{Block: uint32(i * 3), Ctr: uint64(i)<<32 | 7}
		}
		enc := EncodeStateBatch(nil, ups)
		if want := 4 + n*StateMsgSize; len(enc) != want {
			t.Fatalf("n=%d: encoded %d bytes, want %d", n, len(enc), want)
		}
		got, err := DecodeStateBatch(nil, enc)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d updates", n, len(got))
		}
		for i := range ups {
			if got[i] != ups[i] {
				t.Errorf("n=%d: update %d = %+v, want %+v", n, i, got[i], ups[i])
			}
		}
	}
}

// Each StateMsgSize sub-slice of the batch payload must be the exact
// message StateMAC authenticates, so the group-commit flush can MAC the
// encoded batch in place.
func TestStateBatchSubSlicesMatchStateMAC(t *testing.T) {
	k, err := mac.New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	ups := []StateUpdate{{Block: 11, Ctr: 5}, {Block: 12, Ctr: 6}, {Block: 44, Ctr: 7}}
	enc := EncodeStateBatch(nil, ups)
	var msgs [][]byte
	for i := range ups {
		msgs = append(msgs, enc[4+i*StateMsgSize:4+(i+1)*StateMsgSize])
	}
	tags, _ := k.SumBatch(msgs, nil)
	for i, u := range ups {
		want, _ := StateMAC(k, u.Block, u.Ctr)
		if tags[i] != want {
			t.Errorf("update %d: batch tag %s, want StateMAC %s", i, tags[i], want)
		}
	}
}

func TestStateBatchDecodeRejects(t *testing.T) {
	enc := EncodeStateBatch(nil, []StateUpdate{{Block: 1, Ctr: 2}})
	cases := map[string][]byte{
		"empty":            {},
		"short header":     enc[:3],
		"truncated body":   enc[:len(enc)-1],
		"trailing garbage": append(append([]byte(nil), enc...), 0),
		"count overflow":   {0xff, 0xff, 0xff, 0xff},
	}
	for name, b := range cases {
		if _, err := DecodeStateBatch(nil, b); err == nil {
			t.Errorf("%s: decode accepted %d bytes", name, len(b))
		}
	}
}

// FuzzBatchEncode guards the group-commit queue encoding: every accepted
// buffer must re-encode to identical bytes, and every round-tripped
// batch must decode to itself.
func FuzzBatchEncode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeStateBatch(nil, nil))
	f.Add(EncodeStateBatch(nil, []StateUpdate{{Block: 7, Ctr: 9}}))
	f.Add(EncodeStateBatch(nil, []StateUpdate{{Block: 1, Ctr: 2}, {Block: 3, Ctr: 4}}))
	var big [4]byte
	binary.LittleEndian.PutUint32(big[:], 1<<30)
	f.Add(big[:])
	f.Fuzz(func(t *testing.T, b []byte) {
		ups, err := DecodeStateBatch(nil, b)
		if err != nil {
			return
		}
		enc := EncodeStateBatch(nil, ups)
		if !bytes.Equal(enc, b) {
			t.Fatalf("accepted buffer did not re-encode: %x -> %x", b, enc)
		}
		again, err := DecodeStateBatch(nil, enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		for i := range ups {
			if again[i] != ups[i] {
				t.Fatalf("round-trip changed update %d", i)
			}
		}
	})
}
