package workload

import (
	"testing"

	"asc/internal/core"
	"asc/internal/kernel"
	"asc/internal/libc"
	anet "asc/internal/net"
	"asc/internal/policy"
)

// buildNetFleet installs the server and `clients` clients on a
// networked enforcing system and returns the system plus run requests
// (server first).
func buildNetFleet(t *testing.T, clients, iters int, opts ...kernel.Option) (*core.System, []core.RunRequest) {
	t.Helper()
	key := []byte("net-workload-key")
	kopts := append([]kernel.Option{kernel.WithNetwork(anet.New())}, opts...)
	sys, err := core.NewSystem(core.Config{Key: key, KernelOptions: kopts})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	srvRaw, err := BuildSource("netserver", NetServerSource(clients), libc.Linux)
	if err != nil {
		t.Fatalf("build server: %v", err)
	}
	srv, _, _, err := sys.Install(srvRaw, "netserver")
	if err != nil {
		t.Fatalf("install server: %v", err)
	}
	cliRaw, err := BuildSource("netclient", NetClientSource(iters), libc.Linux)
	if err != nil {
		t.Fatalf("build client: %v", err)
	}
	cli, _, _, err := sys.Install(cliRaw, "netclient")
	if err != nil {
		t.Fatalf("install client: %v", err)
	}
	reqs := []core.RunRequest{{Exe: srv, Name: "netserver"}}
	for i := 0; i < clients; i++ {
		reqs = append(reqs, core.RunRequest{Exe: cli, Name: "netclient"})
	}
	return sys, reqs
}

// TestNetFleet runs the server and eight concurrent clients under
// enforcement Kill with the verify cache on — every request and reply
// crosses the authenticated trap handler.
func TestNetFleet(t *testing.T) {
	const clients, iters = 8, 4
	sys, reqs := buildNetFleet(t, clients, iters, kernel.WithVerifyCache())
	res, err := sys.RunAll(reqs, 4)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("proc %d (%s): %v", i, reqs[i].Name, r.Err)
		}
		if r.Killed {
			t.Fatalf("proc %d (%s) killed: %v", i, reqs[i].Name, r.Reason)
		}
		if r.ExitCode != 0 {
			t.Fatalf("proc %d (%s) exit=%d output=%q", i, reqs[i].Name, r.ExitCode, r.Output)
		}
		if r.Verified == 0 {
			t.Fatalf("proc %d (%s): no verified calls — traffic bypassed the monitor", i, reqs[i].Name)
		}
	}
	if got, want := res[0].Output, NetServerOutput(clients, iters); got != want {
		t.Fatalf("server output = %q, want %q", got, want)
	}
	for i := 1; i < len(res); i++ {
		if got, want := res[i].Output, NetClientOutput(iters); got != want {
			t.Fatalf("client %d output = %q, want %q", i, got, want)
		}
	}
}

// TestNetFleetDeterministic checks that per-process results do not
// depend on the worker count driving the fleet.
func TestNetFleetDeterministic(t *testing.T) {
	const clients, iters = 4, 2
	type snap struct {
		out    string
		cycles uint64
		calls  uint64
	}
	var ref []snap
	for _, workers := range []int{1, 2, 8} {
		sys, reqs := buildNetFleet(t, clients, iters)
		res, err := sys.RunAll(reqs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		cur := make([]snap, len(res))
		for i, r := range res {
			if r.Err != nil || r.Killed {
				t.Fatalf("workers=%d proc %d failed: err=%v killed=%v", workers, i, r.Err, r.Killed)
			}
			cur[i] = snap{r.Output, r.Cycles, r.Syscalls}
		}
		if ref == nil {
			ref = cur
			continue
		}
		for i := range cur {
			if cur[i] != ref[i] {
				t.Fatalf("workers=%d proc %d diverged: %+v vs %+v", workers, i, cur[i], ref[i])
			}
		}
	}
}

// TestNetFleetHammer is the race-gate stressor: repeated rounds of a
// wide fleet (server + 12 clients) on a maximally concurrent pool, with
// the verify cache on so cache fills and hits race against each other.
// Run under -race (make race / scripts/check.sh) it is the detector's
// view of the network's lock and gate discipline; the assertions only
// require that every round completes verified and unkilled.
func TestNetFleetHammer(t *testing.T) {
	const clients, iters, rounds = 12, 3, 3
	for round := 0; round < rounds; round++ {
		sys, reqs := buildNetFleet(t, clients, iters, kernel.WithVerifyCache())
		res, err := sys.RunAll(reqs, 8)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, r := range res {
			if r.Err != nil || r.Killed || r.ExitCode != 0 {
				t.Fatalf("round %d proc %d (%s): err=%v killed=%v exit=%d",
					round, i, reqs[i].Name, r.Err, r.Killed, r.ExitCode)
			}
			if r.Verified == 0 {
				t.Fatalf("round %d proc %d: no verified calls", round, i)
			}
		}
		if got, want := res[0].Output, NetServerOutput(clients, iters); got != want {
			t.Fatalf("round %d server output = %q, want %q", round, got, want)
		}
	}
}

// TestNetServerInstallReport sanity-checks that the client's fixed
// payloads install as authenticated strings and its destination ports
// as constrained immediates.
func TestNetClientPolicy(t *testing.T) {
	cliRaw, err := BuildSource("netclient", NetClientSource(1), libc.Linux)
	if err != nil {
		t.Fatalf("build client: %v", err)
	}
	sys, err := core.NewSystem(core.Config{Key: []byte("net-policy-key!!"), KernelOptions: []kernel.Option{kernel.WithNetwork(anet.New())}})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	_, pp, _, err := sys.Install(cliRaw, "netclient")
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	var strArgs, immPorts int
	for _, sp := range pp.Sites {
		if sp.Name != "sendto" {
			continue
		}
		for _, a := range sp.Args {
			switch {
			case a.Class == policy.ClassString:
				strArgs++
			case a.Class == policy.ClassImmediate && len(a.Values) == 1 && a.Values[0] == anet.EncodeAddr(NetServerPort):
				immPorts++
			}
		}
	}
	if strArgs < 3 {
		t.Errorf("want >=3 authenticated-string sendto payloads, got %d", strArgs)
	}
	if immPorts < 3 {
		t.Errorf("want >=3 constrained destination addresses, got %d", immPorts)
	}
}
