package ckpt

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"asc/internal/mac"
)

func testKey(t *testing.T) *mac.Keyed {
	t.Helper()
	k, err := mac.New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func sampleState() *State {
	return &State{
		Epoch:         7,
		ProgTag:       mac.Tag{1, 2, 3, 4},
		Name:          "victim",
		Authenticated: true,
		Enforcement:   1,
		Regs:          []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		PC:            0x1000_0040,
		Cycles:        123456,
		MemBase:       0x1000_0000,
		MemSize:       4 << 20,
		Brk:           0x1000_3000,
		Segs: []SegState{
			{Name: ".text", Start: 0x1000_0000, End: 0x1000_0040, Perms: 5, Gen: 0, Data: bytes.Repeat([]byte{0xaa}, 0x40)},
			{Name: "heap", Start: 0x1000_3000, End: 0x1000_3000, Perms: 3, Gen: 2},
		},
		Counter:        9,
		FDTrack:        true,
		FDTrackCounter: 4,
		Cwd:            "/tmp",
		Umask:          0o22,
		Stdin:          []byte("in"),
		StdinPos:       1,
		Stdout:         []byte("out"),
		NumFDSlots:     4,
		FDs: []FDState{
			{Slot: 0, Kind: 2},
			{Slot: 3, Kind: 1, Path: "/tmp/f", Offset: 12},
		},
		Sigs:         []SigState{{Num: 2, Handler: 0x1000_0080}},
		SyscallCount: 42,
		VerifyCount:  40,
	}
}

// TestSealOpenRoundTrip: every field survives a seal/open cycle, and the
// serialization is deterministic.
func TestSealOpenRoundTrip(t *testing.T) {
	k := testKey(t)
	s := sampleState()
	blob := Seal(k, s)
	if !bytes.Equal(blob, Seal(k, s)) {
		t.Fatal("Seal is not deterministic")
	}
	got, err := Open(k, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, s)
	}
	if ep, err := SealedEpoch(blob); err != nil || ep != s.Epoch {
		t.Fatalf("SealedEpoch = %d, %v; want %d", ep, err, s.Epoch)
	}
}

// TestOpenRejectsCorruption: every single-bit flip and every truncation
// is rejected, with truncations below the minimum classified separately.
func TestOpenRejectsCorruption(t *testing.T) {
	k := testKey(t)
	blob := Seal(k, sampleState())

	for bit := 0; bit < len(blob)*8; bit += 7 { // stride keeps the test fast
		mut := append([]byte(nil), blob...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := Open(k, mut); !errors.Is(err, ErrSeal) {
			t.Fatalf("bit %d: err = %v, want ErrSeal", bit, err)
		}
	}
	for _, n := range []int{0, 4, headerSize, minBlob - 1, minBlob, len(blob) - 1} {
		_, err := Open(k, blob[:n])
		switch {
		case n < minBlob && !errors.Is(err, ErrTruncated):
			t.Fatalf("truncate to %d: err = %v, want ErrTruncated", n, err)
		case n >= minBlob && !errors.Is(err, ErrSeal):
			t.Fatalf("truncate to %d: err = %v, want ErrSeal", n, err)
		}
	}
}

// TestOpenRejectsWrongKey: a blob sealed under one key never opens under
// another.
func TestOpenRejectsWrongKey(t *testing.T) {
	k := testKey(t)
	k2, err := mac.New([]byte("fedcba9876543210"))
	if err != nil {
		t.Fatal(err)
	}
	blob := Seal(k, sampleState())
	if _, err := Open(k2, blob); !errors.Is(err, ErrSeal) {
		t.Fatalf("err = %v, want ErrSeal", err)
	}
}

// TestDecodeTrailingBytes: extra bytes after the payload are malformed,
// so a seal can never cover undecoded garbage.
func TestDecodeTrailingBytes(t *testing.T) {
	body := encode(sampleState())
	if _, err := DecodeState(append(body, 0)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	if _, err := DecodeState(body[:len(body)-1]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short payload: err = %v, want ErrMalformed", err)
	}
}

// TestReason: each error class maps to its canonical string, through
// wrapping.
func TestReason(t *testing.T) {
	cases := map[string]error{
		"":              nil,
		ReasonTruncated: ErrTruncated,
		ReasonSeal:      ErrSeal,
		ReasonMalformed: ErrMalformed,
		ReasonEpoch:     ErrEpoch,
		ReasonProgram:   ErrProgram,
		ReasonState:     ErrState,
		ReasonOther:     errors.New("boom"),
	}
	for want, err := range cases {
		if got := Reason(err); got != want {
			t.Errorf("Reason(%v) = %q, want %q", err, got, want)
		}
		if err != nil {
			wrapped := errors.Join(errors.New("ctx"), err)
			if got := Reason(wrapped); got != want {
				t.Errorf("Reason(wrapped %v) = %q, want %q", err, got, want)
			}
		}
	}
}

// TestProgramTagDistinguishes: different images, different tags; the tag
// domain is separated from the seal domain.
func TestProgramTagDistinguishes(t *testing.T) {
	k := testKey(t)
	a := ProgramTag(k, []byte("image-a"))
	b := ProgramTag(k, []byte("image-b"))
	if a.Equal(b) {
		t.Fatal("distinct images share a program tag")
	}
}

// TestStoreMonotonicEpochs: Put enforces strictly increasing epochs and
// Chain returns newest first with the trusted epochs.
func TestStoreMonotonicEpochs(t *testing.T) {
	s := NewStore()
	if err := s.Put(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, []byte("x")); !errors.Is(err, ErrEpochOrder) {
		t.Fatalf("duplicate epoch: err = %v", err)
	}
	if err := s.Put(1, []byte("x")); !errors.Is(err, ErrEpochOrder) {
		t.Fatalf("regressing epoch: err = %v", err)
	}
	if s.Len() != 2 || s.NewestEpoch() != 2 {
		t.Fatalf("len=%d newest=%d", s.Len(), s.NewestEpoch())
	}
	chain := s.Chain()
	if len(chain) != 2 || chain[0].Epoch != 2 || chain[1].Epoch != 1 {
		t.Fatalf("chain = %+v, want newest first", chain)
	}
	if string(chain[0].Blob) != "b" || string(chain[1].Blob) != "a" {
		t.Fatalf("chain blobs = %q, %q", chain[0].Blob, chain[1].Blob)
	}
}

// TestStoreTamperHook: the hook sees the pristine chain and replaces
// only what it returns; the stored entries stay intact.
func TestStoreTamperHook(t *testing.T) {
	s := NewStore()
	_ = s.Put(1, []byte("old"))
	_ = s.Put(2, []byte("new"))
	s.Tamper = func(chain []Entry, i int) []byte {
		if i == 0 {
			return chain[1].Blob // replay the older blob into the newest slot
		}
		return chain[i].Blob
	}
	chain := s.Chain()
	if string(chain[0].Blob) != "old" || string(chain[1].Blob) != "old" {
		t.Fatalf("tampered chain = %q, %q", chain[0].Blob, chain[1].Blob)
	}
	if chain[0].Epoch != 2 {
		t.Fatalf("trusted epoch perturbed: %d", chain[0].Epoch)
	}
	s.Tamper = nil
	if clean := s.Chain(); string(clean[0].Blob) != "new" {
		t.Fatal("tamper hook modified the stored entries")
	}
}
