// director.go is the cluster's control plane: placement, failure
// detection, failover, and planned migration. The Director is the
// trusted coordinator (in the paper's terms it lives with the
// installer and the kernels, inside the TCB); what it does NOT get to
// skip is verification — every blob it moves is re-verified by the
// receiving kernel, and every admission passes the Fence.
package cluster

import (
	"errors"
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/ckpt"
	"asc/internal/core"
	"asc/internal/durable"
	"asc/internal/installer"
	"asc/internal/kernel"
	anet "asc/internal/net"
	"asc/internal/policy"
	"asc/internal/vfs"
	"asc/internal/vm"
	"encoding/binary"
)

// ErrNoNodes reports that a process could not be re-placed because no
// node answers heartbeats anymore.
var ErrNoNodes = errors.New("cluster: no live nodes remain")

// Config parameterizes a Director.
type Config struct {
	// Nodes is the cluster width (required, ≥ 1).
	Nodes int
	// Key is the MAC key shared by the installer and every node's
	// kernel (required).
	Key []byte
	// Enforcement selects each kernel's reaction to violations.
	Enforcement kernel.Enforcement
	// KernelOptions are appended to every node kernel's construction.
	KernelOptions []kernel.Option
	// SliceCycles is how many virtual cycles each live process advances
	// per tick (default 4096).
	SliceCycles uint64
	// CheckpointEvery seals a checkpoint into the process's durable
	// store each time it advances that many cycles (default 4 slices;
	// negative disables checkpointing).
	CheckpointEvery int64
	// HeartbeatEvery is the control-plane cadence in ticks (default 1).
	HeartbeatEvery int
	// MissThreshold is how many consecutive missed heartbeats declare a
	// node failed (default 3).
	MissThreshold int
	// MaxCycles is the per-process execution budget (default 4e9).
	MaxCycles uint64
	// BackoffBase/BackoffCap bound the re-placement backoff in ticks: a
	// process's k-th failover waits Base·2^(k-1) ticks, capped (defaults
	// 1 and 8).
	BackoffBase int
	BackoffCap  int
	// MaxTicks bounds the virtual clock (default 1<<20); exceeding it
	// fails the remaining placements rather than spinning forever.
	MaxTicks int
	// DurableDir, when non-empty, makes the control plane durable: the
	// director writes a sealed WAL of every decision under this
	// directory of the cluster's shared filesystem, and per-process
	// checkpoint stores persist there instead of in memory — the state
	// a standby needs to take over. Empty keeps the in-memory control
	// plane.
	DurableDir string
	// KeepEpochs prunes each process's checkpoint store to this many
	// newest epochs at checkpoint cadence (default 8; negative
	// disables pruning).
	KeepEpochs int
	// OnTick, when non-nil, runs at the start of every tick — the hook
	// fault campaigns and benchmarks use to crash nodes, delay
	// heartbeats, or launch migrations at chosen virtual times.
	OnTick func(d *Director, tick int)
}

// Event is one timestamped control-plane occurrence.
type Event struct {
	Tick int
	What string
}

// ProcReport is one process's outcome and recovery accounting.
type ProcReport struct {
	Name   string
	Node   NodeID // final home (0 if never re-placed after losing one)
	Result *core.Result
	Err    error

	Failovers        int // times the process lost its node
	Migrations       int // planned migration attempts
	WarmRestarts     int // re-placements resumed from a verified checkpoint
	ColdStarts       int // re-placements that fell through the whole chain
	Checkpoints      int
	CheckpointErrors int
	ReplayCycles     uint64         // cycles re-executed after recoveries
	RestoredCycles   uint64         // cycles resumed from verified checkpoints at failover
	Rejected         map[string]int // admission/restore rejections by reason
}

// FleetReport summarizes a Director.Run.
type FleetReport struct {
	Procs       []ProcReport
	Ticks       int
	Beats       int
	MissedBeats int
	NodesDown   []NodeID // nodes declared failed, in declaration order
	Events      []Event
}

// Store is the checkpoint-store contract a placement needs: trusted
// epochs outside the blobs, a newest-first fallback chain, and bounded
// growth. ckpt.Store (in-memory) and durable.Store (VFS-backed,
// restart-surviving) both satisfy it.
type Store interface {
	Put(epoch uint64, blob []byte) error
	NewestEpoch() uint64
	Len() int
	Chain() []ckpt.Entry
	Prune(keep int) int
}

// placement is the Director's bookkeeping for one fleet process.
type placement struct {
	name  string
	exe   *binfmt.File
	stdin string

	home     int // node index; -1 while homeless
	proc     *kernel.Process
	store    Store // durable, survives any node
	nextCkpt uint64
	deadline uint64

	done      bool
	pending   bool // waiting for re-placement
	resumeAt  int  // tick the next re-placement attempt may run
	lastCyc   uint64
	failovers int

	rep ProcReport
}

func (pl *placement) reject(reason string) {
	if pl.rep.Rejected == nil {
		pl.rep.Rejected = map[string]int{}
	}
	pl.rep.Rejected[reason]++
}

// Director owns a fleet of nodes and drives fleets of processes across
// them on a deterministic virtual clock.
type Director struct {
	cfg    Config
	FS     *vfs.FS
	Fabric *anet.Network

	nodes []*Node // index i holds NodeID i+1
	fence *Fence
	exes  map[string]*binfmt.File

	placements []*placement
	byName     map[string]*placement

	declared []bool // failure detector's verdicts
	misses   []int
	beatSeq  uint64
	tick     int

	// wal is the sealed decision log (nil without Config.DurableDir).
	wal *durable.Log
	// selfCrashed marks the director dead (fault injection); a dead
	// director stops stepping — an HA harness hands over to a standby.
	selfCrashed bool

	rep *FleetReport
}

// New builds the cluster: a shared durable filesystem, one fabric, and
// cfg.Nodes kernel nodes with bound control ports.
func New(cfg Config) (*Director, error) {
	if cfg.Nodes < 1 {
		return nil, errors.New("cluster: need at least one node")
	}
	if len(cfg.Key) == 0 {
		return nil, errors.New("cluster: a MAC key is required")
	}
	if cfg.SliceCycles == 0 {
		cfg.SliceCycles = 4096
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = int64(4 * cfg.SliceCycles)
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 1
	}
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = 3
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 4_000_000_000
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 1
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 8
	}
	if cfg.MaxTicks <= 0 {
		cfg.MaxTicks = 1 << 20
	}
	if cfg.KeepEpochs == 0 {
		cfg.KeepEpochs = 8
	}
	d := &Director{
		cfg:      cfg,
		FS:       vfs.New(),
		Fabric:   anet.New(),
		fence:    NewFence(),
		exes:     make(map[string]*binfmt.File),
		byName:   make(map[string]*placement),
		declared: make([]bool, cfg.Nodes),
		misses:   make([]int, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		nd, err := NewNode(NodeID(i+1), d.FS, d.Fabric, cfg.Key, cfg.Enforcement, cfg.KernelOptions...)
		if err != nil {
			return nil, err
		}
		nd.resolve = func(name string) (*binfmt.File, bool) {
			exe, ok := d.exes[name]
			return exe, ok
		}
		d.nodes = append(d.nodes, nd)
	}
	if cfg.DurableDir != "" {
		wal, err := durable.Create(d.FS, cfg.DurableDir, cfg.Key)
		if err != nil {
			return nil, err
		}
		d.wal = wal
	}
	return d, nil
}

// Node returns the node with the given ID (nil if out of range).
func (d *Director) Node(id NodeID) *Node {
	if id < 1 || int(id) > len(d.nodes) {
		return nil
	}
	return d.nodes[id-1]
}

// Install runs the trusted installer once (the shared filesystem makes
// the result visible to every node) and registers the authenticated
// binary for import resolution under the given name.
func (d *Director) Install(exe *binfmt.File, name string) (*binfmt.File, *policy.ProgramPolicy, *installer.Report, error) {
	out, pp, rep, err := d.nodes[0].Sys.Install(exe, name)
	if err != nil {
		return nil, nil, nil, err
	}
	d.exes[name] = out
	return out, pp, rep, nil
}

// CrashNode kills a node's machine. Ground-truth injection for faults
// and benchmarks; the Director's detector still has to notice via
// heartbeats.
func (d *Director) CrashNode(id NodeID) {
	if nd := d.Node(id); nd != nil {
		nd.Crash()
		d.event("node %d crashed", id)
	}
}

// DelayHeartbeats makes a node miss its next n heartbeats while healthy.
func (d *Director) DelayHeartbeats(id NodeID, n int) {
	if nd := d.Node(id); nd != nil {
		nd.DelayHeartbeats(n)
	}
}

// Report returns the in-progress fleet report (valid during OnTick).
func (d *Director) Report() *FleetReport { return d.rep }

// Epoch reports the newest durable checkpoint epoch of a fleet process
// (zero if the process is unknown or has no checkpoints) — what a
// replay experiment needs to know about its captured envelope.
func (d *Director) Epoch(name string) uint64 {
	if pl := d.byName[name]; pl != nil {
		return pl.store.NewestEpoch()
	}
	return 0
}

func (d *Director) event(format string, args ...any) {
	if d.rep != nil {
		d.rep.Events = append(d.rep.Events, Event{Tick: d.tick, What: fmt.Sprintf(format, args...)})
	}
}

// Run places the requested processes round-robin across the nodes and
// drives the fleet on the virtual clock until every process finishes
// (or can no longer be placed). Results are index-aligned with reqs.
func (d *Director) Run(reqs []core.RunRequest) (*FleetReport, error) {
	if err := d.place(reqs); err != nil {
		return nil, err
	}
	for !d.allDone() {
		if d.stepTick() {
			break
		}
	}
	return d.seal(), nil
}

// place creates the initial placements. Split from the tick loop so an
// HA harness can drive stepTick itself (and hand the clock to a standby
// after a director crash).
func (d *Director) place(reqs []core.RunRequest) error {
	if len(d.placements) > 0 {
		return errors.New("cluster: Director.Run may only be called once")
	}
	if len(reqs) == 0 {
		return errors.New("cluster: empty fleet")
	}
	d.rep = &FleetReport{}
	for i, r := range reqs {
		if _, dup := d.byName[r.Name]; dup {
			return fmt.Errorf("cluster: duplicate process name %q", r.Name)
		}
		home := i % len(d.nodes)
		nd := d.nodes[home]
		p, err := nd.Sys.Kernel.Spawn(r.Exe, r.Name)
		if err != nil {
			return fmt.Errorf("cluster: spawn %s: %w", r.Name, err)
		}
		p.Stdin = []byte(r.Stdin)
		max := r.MaxCycles
		if max == 0 {
			max = d.cfg.MaxCycles
		}
		store, err := d.newStore(r.Name)
		if err != nil {
			return err
		}
		pl := &placement{
			name:     r.Name,
			exe:      r.Exe,
			stdin:    r.Stdin,
			home:     home,
			proc:     p,
			store:    store,
			deadline: max,
			rep:      ProcReport{Name: r.Name},
		}
		if d.cfg.CheckpointEvery > 0 {
			pl.nextCkpt = uint64(d.cfg.CheckpointEvery)
		}
		d.exes[r.Name] = r.Exe
		d.placements = append(d.placements, pl)
		d.byName[r.Name] = pl
		d.fence.Place(r.Name, nd.ID)
		nd.own(r.Name, p)
		d.walAppend(&durable.Record{Kind: durable.KindPlace, Name: r.Name,
			Node: uint32(nd.ID), Cycles: max, Data: []byte(r.Stdin)})
	}
	return nil
}

// newStore builds a placement's checkpoint store: persistent under
// DurableDir, in-memory otherwise.
func (d *Director) newStore(name string) (Store, error) {
	if d.cfg.DurableDir == "" {
		return ckpt.NewStore(), nil
	}
	return durable.OpenStore(d.FS, durable.StoreDir(d.cfg.DurableDir, name))
}

// walAppend writes one decision record (no-op without a WAL). The
// append happening *before* the decision's external effect is the
// control-plane durability invariant: whatever the director does next,
// a standby replaying the log knows it was decided.
func (d *Director) walAppend(r *durable.Record) {
	if d.wal == nil {
		return
	}
	r.Tick = uint64(d.tick)
	if err := d.wal.Append(r); err != nil {
		d.event("wal append %s: %v", r.Kind, err)
	}
}

// stepTick advances the fleet by one virtual tick; true means the
// virtual clock is exhausted and the run must stop.
func (d *Director) stepTick() bool {
	if d.tick >= d.cfg.MaxTicks {
		for _, pl := range d.placements {
			if !pl.done {
				d.finish(pl, fmt.Errorf("cluster: %s: virtual clock exhausted at tick %d", pl.name, d.tick))
			}
		}
		return true
	}
	if d.cfg.OnTick != nil {
		d.cfg.OnTick(d, d.tick)
	}
	if d.selfCrashed {
		return true
	}
	// Data plane: every live process advances one slice, ordered by
	// node then placement for determinism.
	for ni, nd := range d.nodes {
		if nd.crashed || d.declared[ni] {
			continue
		}
		for _, pl := range d.placements {
			if pl.home == ni && !pl.done && !pl.pending {
				d.runSlice(pl, nd)
			}
		}
	}
	// Re-placements whose backoff expired.
	for _, pl := range d.placements {
		if pl.pending && !pl.done && d.tick >= pl.resumeAt {
			d.replace(pl)
		}
	}
	// Control plane: heartbeat round, plus the director's own liveness
	// record — the standby's takeover signal.
	if d.tick%d.cfg.HeartbeatEvery == 0 {
		d.heartbeatRound()
		d.walAppend(&durable.Record{Kind: durable.KindBeat})
	}
	d.tick++
	return false
}

// seal closes the fleet report.
func (d *Director) seal() *FleetReport {
	d.rep.Ticks = d.tick
	d.rep.Procs = make([]ProcReport, len(d.placements))
	for i, pl := range d.placements {
		d.rep.Procs[i] = pl.rep
	}
	return d.rep
}

func (d *Director) allDone() bool {
	for _, pl := range d.placements {
		if !pl.done {
			return false
		}
	}
	return len(d.placements) > 0
}

// finish closes out a placement with its final result.
func (d *Director) finish(pl *placement, err error) {
	pl.done = true
	pl.pending = false
	pl.rep.Err = err
	if pl.home >= 0 {
		pl.rep.Node = NodeID(pl.home + 1)
		d.nodes[pl.home].disown(pl.name)
	}
	if p := pl.proc; p != nil {
		pl.rep.Result = &core.Result{
			Output:   p.Output(),
			ExitCode: p.Code,
			Killed:   p.Killed,
			Reason:   p.KilledBy,
			Cycles:   p.CPU.Cycles,
			Syscalls: p.SyscallCount,
			Verified: p.VerifyCount,
			Cache:    p.CacheStats(),
		}
	}
	rec := &durable.Record{Kind: durable.KindFinish, Name: pl.name, Node: uint32(pl.rep.Node)}
	if r := pl.rep.Result; r != nil {
		rec.Code = uint32(r.ExitCode)
		rec.Cycles = r.Cycles
		rec.Str = string(r.Reason)
		rec.Data = []byte(r.Output)
		if r.Killed {
			rec.Flags |= durable.FlagKilled
		}
	}
	if err != nil {
		rec.Flags |= durable.FlagErr
		rec.Str = err.Error()
	}
	d.walAppend(rec)
}

// runSlice advances one process by one tick's slice on its home node,
// sealing checkpoints at cadence boundaries — the per-slice mirror of
// the supervisor's drive loop.
func (d *Director) runSlice(pl *placement, nd *Node) {
	p := pl.proc
	sliceEnd := p.CPU.Cycles + d.cfg.SliceCycles
	for !pl.done && p.CPU.Cycles < sliceEnd {
		limit := sliceEnd
		if pl.deadline < limit {
			limit = pl.deadline
		}
		if pl.nextCkpt > 0 && pl.nextCkpt < limit {
			limit = pl.nextCkpt
		}
		runErr := nd.Sys.Kernel.Run(p, limit)
		switch {
		case runErr == nil:
			d.finish(pl, nil)
			d.event("%s finished on node %d", pl.name, nd.ID)
		case errors.Is(runErr, vm.ErrCycleLimit):
			if p.CPU.Cycles >= pl.deadline {
				d.finish(pl, fmt.Errorf("cluster: %s: %w", pl.name, runErr))
				return
			}
			if pl.nextCkpt > 0 && p.CPU.Cycles >= pl.nextCkpt {
				d.checkpoint(pl, nd)
				for pl.nextCkpt <= p.CPU.Cycles {
					pl.nextCkpt += uint64(d.cfg.CheckpointEvery)
				}
			}
		default:
			d.finish(pl, fmt.Errorf("cluster: %s: %w", pl.name, runErr))
			return
		}
	}
}

// checkpoint seals the live process into its durable store under the
// next epoch. Failure is non-fatal: the chain just misses one link.
func (d *Director) checkpoint(pl *placement, nd *Node) {
	epoch := pl.store.NewestEpoch() + 1
	blob, err := nd.Sys.Kernel.Checkpoint(pl.proc, epoch)
	if err != nil {
		pl.rep.CheckpointErrors++
		return
	}
	if err := pl.store.Put(epoch, blob); err != nil {
		pl.rep.CheckpointErrors++
		return
	}
	pl.rep.Checkpoints++
	if d.cfg.KeepEpochs > 0 {
		pl.store.Prune(d.cfg.KeepEpochs)
	}
	d.walAppend(&durable.Record{Kind: durable.KindCheckpoint, Name: pl.name,
		Node: uint32(nd.ID), Epoch: epoch})
}

// heartbeatRound pings every not-yet-declared node and applies the
// missed-beat threshold.
func (d *Director) heartbeatRound() {
	for ni := range d.nodes {
		if d.declared[ni] {
			continue
		}
		d.rep.Beats++
		if d.beat(ni) {
			d.misses[ni] = 0
			continue
		}
		d.rep.MissedBeats++
		d.misses[ni]++
		if d.misses[ni] >= d.cfg.MissThreshold {
			d.declareDown(ni)
		}
	}
}

// beat runs one ping/pong exchange with a node over the fabric. False
// means the beat was missed: connection refused (listener gone), no
// reply pending after the node's control plane was pumped (delayed), or
// a malformed/misattributed reply.
func (d *Director) beat(ni int) bool {
	nd := d.nodes[ni]
	d.beatSeq++
	c, err := d.Fabric.Dial(ControlPort(nd.ID), nil)
	if err != nil {
		return false
	}
	defer c.Close()
	msg := make([]byte, 0, 12)
	msg = append(msg, msgPing...)
	msg = binary.LittleEndian.AppendUint64(msg, d.beatSeq)
	if c.Send(msg, nil) != nil {
		return false
	}
	nd.serve()
	reply, err := c.Recv(nil)
	if err != nil || len(reply) != 16 || string(reply[:4]) != msgPong {
		return false
	}
	return binary.LittleEndian.Uint64(reply[4:]) == d.beatSeq &&
		binary.LittleEndian.Uint32(reply[12:]) == uint32(nd.ID)
}

// declareDown records the failure detector's verdict: fence the node's
// processes and schedule their re-placement with per-process backoff.
func (d *Director) declareDown(ni int) {
	d.declared[ni] = true
	id := d.nodes[ni].ID
	d.fence.NodeDown(id)
	d.rep.NodesDown = append(d.rep.NodesDown, id)
	d.event("node %d declared failed (%d missed beats)", id, d.misses[ni])
	d.walAppend(&durable.Record{Kind: durable.KindNodeDown, Node: uint32(id)})
	for _, pl := range d.placements {
		if pl.home == ni && !pl.done {
			d.scheduleFailover(pl, "node failure")
		}
	}
}

// scheduleFailover marks a placement homeless and sets its backoff.
func (d *Director) scheduleFailover(pl *placement, why string) {
	if pl.proc != nil {
		pl.lastCyc = pl.proc.CPU.Cycles
	}
	if pl.home >= 0 {
		d.nodes[pl.home].disown(pl.name)
	}
	pl.home = -1
	pl.proc = nil
	pl.pending = true
	pl.failovers++
	pl.rep.Failovers++
	back := d.backoffTicks(pl.failovers)
	pl.resumeAt = d.tick + back
	d.event("%s failover %d (%s): re-place after %d ticks", pl.name, pl.failovers, why, back)
	d.walAppend(&durable.Record{Kind: durable.KindFailover, Name: pl.name, Str: why})
}

func (d *Director) backoffTicks(n int) int {
	b := d.cfg.BackoffBase
	for i := 1; i < n; i++ {
		b *= 2
		if b >= d.cfg.BackoffCap {
			return d.cfg.BackoffCap
		}
	}
	return b
}

// replace re-homes a homeless process on the least-loaded node the
// detector still trusts, restoring the newest admissible checkpoint and
// falling back through the chain to a cold start — the cross-node form
// of the supervisor's fallback chain.
func (d *Director) replace(pl *placement) {
	target := -1
	best := int(^uint(0) >> 1)
	for ni := range d.nodes {
		if d.declared[ni] {
			continue
		}
		load := 0
		for _, other := range d.placements {
			if other.home == ni && !other.done {
				load++
			}
		}
		if load < best {
			best = load
			target = ni
		}
	}
	if target == -1 {
		d.finish(pl, fmt.Errorf("cluster: %s: %w", pl.name, ErrNoNodes))
		d.event("%s lost: no live nodes", pl.name)
		return
	}
	// Probe the target before handing it work: a node that crashed
	// since its last heartbeat cannot receive a process. The miss also
	// feeds the detector.
	d.rep.Beats++
	if !d.beat(target) {
		d.rep.MissedBeats++
		d.misses[target]++
		if d.misses[target] >= d.cfg.MissThreshold {
			d.declareDown(target)
		}
		pl.resumeAt = d.tick + 1
		return
	}
	d.misses[target] = 0
	nd := d.nodes[target]
	var p *kernel.Process
	warm := false
	var warmEpoch uint64
	for _, ent := range pl.store.Chain() {
		if err := d.fence.Admit(pl.name, ent.Epoch, nd.ID); err != nil {
			pl.reject(ckpt.Reason(err))
			continue
		}
		r, err := nd.Sys.Kernel.Restore(pl.exe, pl.name, ent.Blob, ent.Epoch)
		if err != nil {
			pl.reject(ckpt.Reason(err))
			continue
		}
		p = r
		warm = true
		warmEpoch = ent.Epoch
		break
	}
	if p == nil {
		r, err := nd.Sys.Kernel.Spawn(pl.exe, pl.name)
		if err != nil {
			d.finish(pl, fmt.Errorf("cluster: respawn %s: %w", pl.name, err))
			return
		}
		r.Stdin = []byte(pl.stdin)
		p = r
		pl.rep.ColdStarts++
	}
	if warm {
		pl.rep.WarmRestarts++
		pl.rep.RestoredCycles += p.CPU.Cycles
		d.fence.Commit(pl.name, warmEpoch, nd.ID)
		d.walAppend(&durable.Record{Kind: durable.KindRestore, Name: pl.name,
			Node: uint32(nd.ID), Epoch: warmEpoch, Cycles: p.CPU.Cycles})
	} else {
		d.fence.Place(pl.name, nd.ID)
		d.walAppend(&durable.Record{Kind: durable.KindColdStart, Name: pl.name,
			Node: uint32(nd.ID), Cycles: pl.deadline, Data: []byte(pl.stdin)})
	}
	if pl.lastCyc > p.CPU.Cycles {
		pl.rep.ReplayCycles += pl.lastCyc - p.CPU.Cycles
	}
	pl.proc = p
	pl.home = target
	pl.pending = false
	nd.own(pl.name, p)
	if d.cfg.CheckpointEvery > 0 {
		pl.nextCkpt = p.CPU.Cycles + uint64(d.cfg.CheckpointEvery)
	}
	kind := "cold"
	if warm {
		kind = fmt.Sprintf("warm from epoch %d", warmEpoch)
	}
	d.event("%s re-placed on node %d (%s, %d cycles)", pl.name, nd.ID, kind, p.CPU.Cycles)
}
