package dataflow

import (
	"testing"

	"asc/internal/asm"
	"asc/internal/cfg"
	"asc/internal/sys"
)

// analyzeRaw assembles a standalone program (no libc) and analyzes it.
func analyzeRaw(t *testing.T, src string) (*cfg.Program, *Result) {
	t.Helper()
	f, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	f.Layout()
	if err := f.ApplyRelocs(); err != nil {
		t.Fatalf("ApplyRelocs: %v", err)
	}
	p, err := cfg.Analyze(f)
	if err != nil {
		t.Fatalf("cfg.Analyze: %v", err)
	}
	return p, Analyze(p)
}

func onlySyscallBlock(t *testing.T, p *cfg.Program, num uint16) *cfg.Block {
	t.Helper()
	for _, s := range p.SyscallSites() {
		if s.NumKnown && s.Num == num {
			return s.Block
		}
	}
	t.Fatalf("no syscall %d found", num)
	return nil
}

func TestConstantArgs(t *testing.T) {
	p, r := analyzeRaw(t, `
        .text
        .global _start
_start:
        MOVI r1, path
        MOVI r2, 5
        MOVI r3, 0
        MOVI r0, 4      ; open
        SYSCALL
        MOVI r0, 1
        MOVI r1, 0
        SYSCALL
        .rodata
path:   .asciz "/dev/console"
`)
	b := onlySyscallBlock(t, p, sys.SysOpen)
	args := r.AtSyscall[b]
	pathAddr, _ := p.File.SymbolAddr("path")
	if v, ok := args[0].Single(); !ok || v != pathAddr {
		t.Errorf("arg1 = %+v, want const %#x", args[0], pathAddr)
	}
	if !args[0].FromReloc {
		t.Error("arg1 should be marked FromReloc (symbol address)")
	}
	if len(args[0].Defs) != 1 {
		t.Errorf("arg1 defs = %v, want the single MOVI", args[0].Defs)
	}
	if v, ok := args[1].Single(); !ok || v != 5 {
		t.Errorf("arg2 = %+v, want const 5", args[1])
	}
	if args[1].FromReloc {
		t.Error("plain integer should not be FromReloc")
	}
	// R0 (number) is also const.
	if v, ok := r.R0At[b].Single(); !ok || v != uint32(sys.SysOpen) {
		t.Errorf("R0 = %+v", r.R0At[b])
	}
}

func TestUnknownArgAfterLoad(t *testing.T) {
	p, r := analyzeRaw(t, `
        .text
        .global _start
_start:
        LOAD r1, [sp+0]
        MOVI r0, 12     ; getpid (ignores args, but analysis is generic)
        SYSCALL
        MOVI r0, 1
        SYSCALL
`)
	b := onlySyscallBlock(t, p, sys.SysGetpid)
	args := r.AtSyscall[b]
	if args[0].Kind != Top {
		t.Errorf("arg1 = %+v, want Top", args[0])
	}
}

func TestMultiValueMerge(t *testing.T) {
	p, r := analyzeRaw(t, `
        .text
        .global _start
_start:
        LOAD r7, [sp+0]
        MOVI r8, 0
        BEQ r7, r8, .a
        MOVI r2, 1
        JMP .go
.a:
        MOVI r2, 2
.go:
        MOVI r1, 3
        MOVI r0, 33     ; fcntl(fd=3, cmd = 1 or 2)
        SYSCALL
        MOVI r0, 1
        SYSCALL
`)
	b := onlySyscallBlock(t, p, sys.SysFcntl)
	args := r.AtSyscall[b]
	if args[1].Kind != Consts || len(args[1].Vals) != 2 {
		t.Fatalf("arg2 = %+v, want two-value set", args[1])
	}
	if args[1].Vals[0] != 1 || args[1].Vals[1] != 2 {
		t.Errorf("arg2 vals = %v, want [1 2]", args[1].Vals)
	}
	if len(args[1].Defs) != 2 {
		t.Errorf("arg2 defs = %v, want both MOVIs", args[1].Defs)
	}
	// arg1 is a plain const through the merge.
	if v, ok := args[0].Single(); !ok || v != 3 {
		t.Errorf("arg1 = %+v, want const 3", args[0])
	}
}

func TestWideningToTop(t *testing.T) {
	p, r := analyzeRaw(t, `
        .text
        .global _start
_start:
        LOAD r7, [sp+0]
        MOVI r8, 1
        BEQ r7, r8, .v1
        MOVI r8, 2
        BEQ r7, r8, .v2
        MOVI r8, 3
        BEQ r7, r8, .v3
        MOVI r8, 4
        BEQ r7, r8, .v4
        MOVI r1, 5
        JMP .go
.v1:
        MOVI r1, 1
        JMP .go
.v2:
        MOVI r1, 2
        JMP .go
.v3:
        MOVI r1, 3
        JMP .go
.v4:
        MOVI r1, 4
.go:
        MOVI r0, 37     ; sysconf
        SYSCALL
        MOVI r0, 1
        SYSCALL
`)
	b := onlySyscallBlock(t, p, sys.SysSysconf)
	args := r.AtSyscall[b]
	if args[0].Kind != Top {
		t.Errorf("arg1 = %+v, want Top (5 values exceed cap)", args[0])
	}
}

func TestFolding(t *testing.T) {
	p, r := analyzeRaw(t, `
        .text
        .global _start
_start:
        MOVI r7, 10
        ADDI r7, r7, 5
        MULI r7, r7, 2
        MOV r1, r7
        MOVI r0, 59     ; alarm(30)
        SYSCALL
        MOVI r0, 1
        SYSCALL
`)
	b := onlySyscallBlock(t, p, sys.SysAlarm)
	args := r.AtSyscall[b]
	if v, ok := args[0].Single(); !ok || v != 30 {
		t.Errorf("arg1 = %+v, want folded const 30", args[0])
	}
	// Folded constants are not patchable MOVIs.
	if len(args[0].Defs) != 0 {
		t.Errorf("folded value has defs %v", args[0].Defs)
	}
}

func TestCallClobbersCallerSaved(t *testing.T) {
	p, r := analyzeRaw(t, `
        .text
        .global _start
_start:
        MOVI r1, 7
        CALL helper
        MOVI r0, 59     ; alarm: r1 set before a call is clobbered
        SYSCALL
        MOVI r0, 1
        SYSCALL
helper:
        RET
`)
	b := onlySyscallBlock(t, p, sys.SysAlarm)
	args := r.AtSyscall[b]
	if args[0].Kind != Top {
		t.Errorf("arg1 = %+v, want Top (clobbered by CALL)", args[0])
	}
}

func TestCalleeSavedSurvivesCall(t *testing.T) {
	p, r := analyzeRaw(t, `
        .text
        .global _start
_start:
        MOVI r10, 7
        CALL helper
        MOV r1, r10
        MOVI r0, 59
        SYSCALL
        MOVI r0, 1
        SYSCALL
helper:
        RET
`)
	b := onlySyscallBlock(t, p, sys.SysAlarm)
	args := r.AtSyscall[b]
	if v, ok := args[0].Single(); !ok || v != 7 {
		t.Errorf("arg1 = %+v, want const 7 via callee-saved r10", args[0])
	}
}

func TestJoinLattice(t *testing.T) {
	c1 := constVal(1, 100, false)
	c2 := constVal(2, 200, false)
	j := join(c1, c2)
	if j.Kind != Consts || len(j.Vals) != 2 {
		t.Errorf("join(c1,c2) = %+v", j)
	}
	if j2 := join(j, top); j2.Kind != Top {
		t.Errorf("join with top = %+v", j2)
	}
	if j3 := join(Value{}, c1); !equal(j3, c1) {
		t.Errorf("join(bottom, c1) = %+v", j3)
	}
	// Idempotent.
	if j4 := join(c1, c1); j4.Kind != Consts || len(j4.Vals) != 1 {
		t.Errorf("join(c1,c1) = %+v", j4)
	}
}
