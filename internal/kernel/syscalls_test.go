package kernel

import (
	"encoding/binary"
	"strings"
	"testing"

	"asc/internal/sys"
	"asc/internal/vfs"
)

// newProc builds a minimal process for direct handler tests.
func newProc(t *testing.T, k *Kernel) *Process {
	t.Helper()
	exe := buildExe(t, ".text\n.global main\nmain:\nMOVI r0, 0\nRET\n")
	p, err := k.Spawn(exe, "direct")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// scratch returns a writable address inside the process stack region.
func scratch(p *Process) uint32 { return p.Mem.Limit() - 8192 }

// putStr writes a NUL-terminated string into process memory.
func putStr(t *testing.T, p *Process, addr uint32, s string) {
	t.Helper()
	if err := p.Mem.KernelWrite(addr, append([]byte(s), 0)); err != nil {
		t.Fatal(err)
	}
}

func call(k *Kernel, p *Process, num uint16, args ...uint32) uint32 {
	var a [sys.MaxArgs]uint32
	copy(a[:], args)
	ret, _ := k.dispatch(p, num, 0x1000, a)
	return ret
}

func TestHandlerOpenFlags(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	pathAddr := scratch(p)
	putStr(t, p, pathAddr, "/tmp/f")

	// O_CREAT creates; the fd is fresh (>= 3).
	fd := call(k, p, sys.SysOpen, pathAddr, OCreat|OWrOnly, 0o644)
	if int32(fd) < 3 {
		t.Fatalf("open O_CREAT = %d", int32(fd))
	}
	buf := scratch(p) + 256
	putStr(t, p, buf, "hello")
	if n := call(k, p, sys.SysWrite, fd, buf, 5); n != 5 {
		t.Fatalf("write = %d", int32(n))
	}
	// O_APPEND positions at the end.
	fd2 := call(k, p, sys.SysOpen, pathAddr, OAppend|OWrOnly, 0)
	if n := call(k, p, sys.SysWrite, fd2, buf, 5); n != 5 {
		t.Fatal("append write failed")
	}
	if b, _ := k.FS.ReadFile("/tmp/f"); string(b) != "hellohello" {
		t.Errorf("file = %q", b)
	}
	// O_TRUNC empties.
	call(k, p, sys.SysOpen, pathAddr, OTrunc|OWrOnly, 0)
	if b, _ := k.FS.ReadFile("/tmp/f"); len(b) != 0 {
		t.Errorf("after O_TRUNC: %q", b)
	}
	// Missing file without O_CREAT.
	putStr(t, p, pathAddr, "/tmp/missing")
	if r := call(k, p, sys.SysOpen, pathAddr, 0, 0); int32(r) != -sys.ENOENT {
		t.Errorf("open missing = %d", int32(r))
	}
}

func TestHandlerLseek(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	pathAddr := scratch(p)
	putStr(t, p, pathAddr, "/etc/passwd")
	fd := call(k, p, sys.SysOpen, pathAddr, 0, 0)
	if r := call(k, p, sys.SysLseek, fd, 4, SeekSet); r != 4 {
		t.Errorf("SEEK_SET = %d", r)
	}
	if r := call(k, p, sys.SysLseek, fd, 2, SeekCur); r != 6 {
		t.Errorf("SEEK_CUR = %d", r)
	}
	end := call(k, p, sys.SysLseek, fd, 0, SeekEnd)
	if end != 9 { // "root:0:0\n"
		t.Errorf("SEEK_END = %d", end)
	}
	if r := call(k, p, sys.SysLseek, fd, 0, 99); int32(r) != -sys.EINVAL {
		t.Errorf("bad whence = %d", int32(r))
	}
	if r := call(k, p, sys.SysLseek, 77, 0, 0); int32(r) != -sys.EBADF {
		t.Errorf("bad fd = %d", int32(r))
	}
}

func TestHandlerDup(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	pathAddr := scratch(p)
	putStr(t, p, pathAddr, "/etc/passwd")
	fd := call(k, p, sys.SysOpen, pathAddr, 0, 0)
	d := call(k, p, sys.SysDup, fd)
	if int32(d) < 0 || d == fd {
		t.Fatalf("dup = %d", int32(d))
	}
	if r := call(k, p, sys.SysDup2, fd, 9); r != 9 {
		t.Errorf("dup2 = %d", int32(r))
	}
	buf := scratch(p) + 512
	if n := call(k, p, sys.SysRead, 9, buf, 4); n != 4 {
		t.Errorf("read on dup2 fd = %d", int32(n))
	}
	if r := call(k, p, sys.SysDup, 100); int32(r) != -sys.EBADF {
		t.Errorf("dup bad = %d", int32(r))
	}
	if r := call(k, p, sys.SysClose, d); r != 0 {
		t.Errorf("close dup = %d", int32(r))
	}
	// The original stays usable after closing the dup.
	if n := call(k, p, sys.SysRead, fd, buf, 2); n != 2 {
		t.Errorf("read after closing dup = %d", int32(n))
	}
}

func TestHandlerGetdirentries(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	pathAddr := scratch(p)
	putStr(t, p, pathAddr, "/etc")
	fd := call(k, p, sys.SysOpen, pathAddr, 0, 0)
	buf := scratch(p) + 512
	n := call(k, p, sys.SysGetdirentries, fd, buf, 256)
	if int32(n) <= 0 {
		t.Fatalf("getdirentries = %d", int32(n))
	}
	b, _ := p.Mem.KernelRead(buf, n)
	if !strings.Contains(string(b), "passwd") {
		t.Errorf("entries = %q", b)
	}
	// Exhausted on the second call.
	if n2 := call(k, p, sys.SysGetdirentries, fd, buf, 256); n2 != 0 {
		t.Errorf("second getdirentries = %d", int32(n2))
	}
}

func TestHandlerVectorIO(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	pathAddr := scratch(p)
	putStr(t, p, pathAddr, "/tmp/v")
	fd := call(k, p, sys.SysOpen, pathAddr, OCreat|ORdWr, 0o644)
	// iovec: two segments "ab" and "cde".
	iov := scratch(p) + 512
	seg1, seg2 := iov+64, iov+96
	putStr(t, p, seg1, "ab")
	putStr(t, p, seg2, "cde")
	for i, v := range []uint32{seg1, 2, seg2, 3} {
		if err := p.Mem.KernelStore32(iov+uint32(4*i), v); err != nil {
			t.Fatal(err)
		}
	}
	if n := call(k, p, sys.SysWritev, fd, iov, 2); n != 5 {
		t.Fatalf("writev = %d", int32(n))
	}
	if b, _ := k.FS.ReadFile("/tmp/v"); string(b) != "abcde" {
		t.Errorf("file = %q", b)
	}
	call(k, p, sys.SysLseek, fd, 0, SeekSet)
	// readv back into the same iovec buffers.
	if n := call(k, p, sys.SysReadv, fd, iov, 2); n != 5 {
		t.Errorf("readv = %d", int32(n))
	}
	if r := call(k, p, sys.SysWritev, fd, iov, 100); int32(r) != -sys.EINVAL {
		t.Errorf("oversized iovec = %d", int32(r))
	}
}

func TestHandlerPReadPWrite(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	pathAddr := scratch(p)
	putStr(t, p, pathAddr, "/tmp/pr")
	fd := call(k, p, sys.SysOpen, pathAddr, OCreat|ORdWr, 0o644)
	buf := scratch(p) + 512
	putStr(t, p, buf, "XYZ")
	if n := call(k, p, sys.SysPwrite, fd, buf, 3, 10); n != 3 {
		t.Fatalf("pwrite = %d", int32(n))
	}
	// The regular offset is unmoved.
	if off := call(k, p, sys.SysLseek, fd, 0, SeekCur); off != 0 {
		t.Errorf("offset moved to %d", off)
	}
	out := buf + 64
	if n := call(k, p, sys.SysPread, fd, out, 3, 10); n != 3 {
		t.Fatalf("pread = %d", int32(n))
	}
	b, _ := p.Mem.KernelRead(out, 3)
	if string(b) != "XYZ" {
		t.Errorf("pread data = %q", b)
	}
}

func TestHandlerSockets(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	fd := call(k, p, sys.SysSocket, 2, 1, 0)
	if int32(fd) < 0 {
		t.Fatalf("socket = %d", int32(fd))
	}
	if r := call(k, p, sys.SysBind, fd, 0, 0); r != 0 {
		t.Errorf("bind = %d", int32(r))
	}
	if r := call(k, p, sys.SysListen, fd, 5); r != 0 {
		t.Errorf("listen = %d", int32(r))
	}
	conn := call(k, p, sys.SysAccept, fd, 0, 0)
	if int32(conn) < 0 {
		t.Fatalf("accept = %d", int32(conn))
	}
	buf := scratch(p)
	putStr(t, p, buf, "pkt")
	if n := call(k, p, sys.SysSendto, conn, buf, 3, 0, 0); n != 3 {
		t.Errorf("sendto = %d", int32(n))
	}
	// write on a socket also queues.
	if n := call(k, p, sys.SysWrite, conn, buf, 3); n != 3 {
		t.Errorf("write(sock) = %d", int32(n))
	}
	if r := call(k, p, sys.SysShutdown, conn, 2); r != 0 {
		t.Errorf("shutdown = %d", int32(r))
	}
	// Socket ops on a non-socket fail with ENOTSOCK, on a bad fd with
	// EBADF.
	if r := call(k, p, sys.SysBind, 1, 0, 0); int32(r) != -sys.ENOTSOCK {
		t.Errorf("bind on console = %d", int32(r))
	}
	if r := call(k, p, sys.SysBind, 200, 0, 0); int32(r) != -sys.EBADF {
		t.Errorf("bind on bad fd = %d", int32(r))
	}
	// socketpair delivers two descriptors.
	pairBuf := scratch(p) + 1024
	if r := call(k, p, sys.SysSocketpair, 1, 1, 0, pairBuf); r != 0 {
		t.Fatalf("socketpair = %d", int32(r))
	}
	b, _ := p.Mem.KernelRead(pairBuf, 8)
	a, c := binary.LittleEndian.Uint32(b), binary.LittleEndian.Uint32(b[4:])
	if a == c || int32(a) < 0 || int32(c) < 0 {
		t.Errorf("socketpair fds = %d,%d", a, c)
	}
}

func TestHandlerInfoCalls(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	buf := scratch(p)
	if r := call(k, p, sys.SysUname, buf); r != 0 {
		t.Fatalf("uname = %d", int32(r))
	}
	b, _ := p.Mem.KernelRead(buf, 12)
	if !strings.HasPrefix(string(b), "ascsim") {
		t.Errorf("uname = %q", b)
	}
	if r := call(k, p, sys.SysGethostname, buf, 64); r != 0 {
		t.Errorf("gethostname = %d", int32(r))
	}
	if r := call(k, p, sys.SysStatfs, 0, buf); r != 0 {
		t.Errorf("statfs = %d", int32(r))
	}
	if r := call(k, p, sys.SysGettimeofday, buf); r != 0 {
		t.Errorf("gettimeofday = %d", int32(r))
	}
	if r := call(k, p, sys.SysSysconf, 1); r != 4096 {
		t.Errorf("sysconf = %d", r)
	}
	old := call(k, p, sys.SysUmask, 0o77)
	if old != 0o22 {
		t.Errorf("umask old = %o", old)
	}
	if again := call(k, p, sys.SysUmask, 0o22); again != 0o77 {
		t.Errorf("umask second = %o", again)
	}
	if r := call(k, p, sys.SysGetuid); r != 1000 {
		t.Errorf("getuid = %d", r)
	}
	if r := call(k, p, sys.SysGetppid); r != 1 {
		t.Errorf("getppid = %d", r)
	}
	if r := call(k, p, sys.SysGetpgrp); r != uint32(p.PID) {
		t.Errorf("getpgrp = %d", r)
	}
	secs := call(k, p, sys.SysTime, buf)
	if int32(secs) < 0 {
		t.Errorf("time = %d", int32(secs))
	}
	if r := call(k, p, sys.SysGetrusage, 0, buf); r != 0 {
		t.Errorf("getrusage = %d", int32(r))
	}
}

func TestHandlerFileMeta(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	pathAddr := scratch(p)
	buf := scratch(p) + 512
	putStr(t, p, pathAddr, "/etc/passwd")
	if r := call(k, p, sys.SysStat, pathAddr, buf); r != 0 {
		t.Fatalf("stat = %d", int32(r))
	}
	b, _ := p.Mem.KernelRead(buf, 24)
	if kind := binary.LittleEndian.Uint32(b); kind != uint32(vfs.KindFile) {
		t.Errorf("stat kind = %d", kind)
	}
	if size := binary.LittleEndian.Uint32(b[4:]); size != 9 {
		t.Errorf("stat size = %d", size)
	}
	if r := call(k, p, sys.SysAccess, pathAddr, 0); r != 0 {
		t.Errorf("access = %d", int32(r))
	}
	if r := call(k, p, sys.SysChmod, pathAddr, 0o600); r != 0 {
		t.Errorf("chmod = %d", int32(r))
	}
	if r := call(k, p, sys.SysTruncate, pathAddr, 4); r != 0 {
		t.Errorf("truncate = %d", int32(r))
	}
	fd := call(k, p, sys.SysOpen, pathAddr, ORdWr, 0)
	if r := call(k, p, sys.SysFtruncate, fd, 2); r != 0 {
		t.Errorf("ftruncate = %d", int32(r))
	}
	if r := call(k, p, sys.SysFstat, fd, buf); r != 0 {
		t.Errorf("fstat = %d", int32(r))
	}
	b, _ = p.Mem.KernelRead(buf+4, 4)
	if size := binary.LittleEndian.Uint32(b); size != 2 {
		t.Errorf("fstat size = %d", size)
	}
	// utime requires existence.
	if r := call(k, p, sys.SysUtime, pathAddr, 0); r != 0 {
		t.Errorf("utime = %d", int32(r))
	}
	putStr(t, p, pathAddr, "/nope")
	if r := call(k, p, sys.SysAccess, pathAddr, 0); int32(r) != -sys.ENOENT {
		t.Errorf("access missing = %d", int32(r))
	}
}

func TestHandlerLinksAndRename(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	a, b := scratch(p), scratch(p)+256
	putStr(t, p, a, "/etc/passwd")
	putStr(t, p, b, "/tmp/pw")
	if r := call(k, p, sys.SysLink, a, b); r != 0 {
		t.Fatalf("link = %d", int32(r))
	}
	putStr(t, p, a, "/tmp/pw")
	putStr(t, p, b, "/tmp/pw2")
	if r := call(k, p, sys.SysRename, a, b); r != 0 {
		t.Fatalf("rename = %d", int32(r))
	}
	putStr(t, p, a, "/tmp/sym")
	putStr(t, p, b, "/tmp/pw2")
	if r := call(k, p, sys.SysSymlink, b, a); r != 0 {
		t.Fatalf("symlink = %d", int32(r))
	}
	out := scratch(p) + 1024
	n := call(k, p, sys.SysReadlink, a, out, 64)
	if int32(n) <= 0 {
		t.Fatalf("readlink = %d", int32(n))
	}
	got, _ := p.Mem.KernelRead(out, n)
	if string(got) != "/tmp/pw2" {
		t.Errorf("readlink = %q", got)
	}
	if r := call(k, p, sys.SysUnlink, a); r != 0 {
		t.Errorf("unlink = %d", int32(r))
	}
}

func TestHandlerCwd(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	a := scratch(p)
	putStr(t, p, a, "/tmp")
	if r := call(k, p, sys.SysChdir, a); r != 0 {
		t.Fatalf("chdir = %d", int32(r))
	}
	buf := scratch(p) + 256
	n := call(k, p, sys.SysGetcwd, buf, 64)
	if int32(n) <= 0 {
		t.Fatalf("getcwd = %d", int32(n))
	}
	b, _ := p.Mem.KernelRead(buf, 4)
	if string(b) != "/tmp" {
		t.Errorf("cwd = %q", b)
	}
	// Relative resolution against the new cwd.
	putStr(t, p, a, "sub")
	if r := call(k, p, sys.SysMkdir, a, 0o755); r != 0 {
		t.Fatalf("mkdir rel = %d", int32(r))
	}
	if !k.FS.Exists("/tmp/sub") {
		t.Error("relative mkdir landed elsewhere")
	}
	// chdir to a file fails.
	putStr(t, p, a, "/etc/passwd")
	if r := call(k, p, sys.SysChdir, a); int32(r) != -sys.ENOTDIR {
		t.Errorf("chdir to file = %d", int32(r))
	}
	// getcwd with a too-small buffer fails.
	if r := call(k, p, sys.SysGetcwd, buf, 2); int32(r) != -sys.EINVAL {
		t.Errorf("tiny getcwd = %d", int32(r))
	}
}

func TestHandlerBrkAndMmap(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	cur := call(k, p, sys.SysBrk, 0)
	if cur == 0 {
		t.Fatal("brk(0) = 0")
	}
	grown := call(k, p, sys.SysBrk, cur+8192)
	if grown != cur+8192 {
		t.Fatalf("brk grow = %#x", grown)
	}
	// The new region is writable.
	if err := p.Mem.KernelStore32(cur+100, 42); err != nil {
		t.Errorf("heap store: %v", err)
	}
	// Out-of-range requests fail.
	if r := call(k, p, sys.SysBrk, 0x10); int32(r) != -sys.EINVAL {
		t.Errorf("brk below heap = %d", int32(r))
	}
	addr := call(k, p, sys.SysMmap, 0, 4096, 3, 0, 0)
	if int32(addr) < 0 {
		t.Fatalf("mmap = %d", int32(addr))
	}
	if r := call(k, p, sys.SysMunmap, addr, 4096); r != 0 {
		t.Errorf("munmap = %d", int32(r))
	}
}

func TestHandlerSignalsAndMisc(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	buf := scratch(p)
	// sigaction stores and returns handlers.
	if err := p.Mem.KernelStore32(buf, 0xfeed); err != nil {
		t.Fatal(err)
	}
	if r := call(k, p, sys.SysSigaction, 2, buf, 0); r != 0 {
		t.Fatalf("sigaction set = %d", int32(r))
	}
	old := buf + 64
	if r := call(k, p, sys.SysSigaction, 2, 0, old); r != 0 {
		t.Fatalf("sigaction get = %d", int32(r))
	}
	if v, _ := p.Mem.KernelLoad32(old); v != 0xfeed {
		t.Errorf("old handler = %#x", v)
	}
	if r := call(k, p, sys.SysSigprocmask, 0, 0, buf); r != 0 {
		t.Errorf("sigprocmask = %d", int32(r))
	}
	if r := call(k, p, sys.SysAlarm, 30); r != 0 {
		t.Errorf("alarm = %d", int32(r))
	}
	if r := call(k, p, sys.SysNanosleep, 0, 0); r != 0 {
		t.Errorf("nanosleep = %d", int32(r))
	}
	// kill(self, SIGKILL) terminates.
	ret, exit := k.dispatch(p, sys.SysKill, 0, [sys.MaxArgs]uint32{uint32(p.PID), 9})
	if !exit || ret != 0 {
		t.Errorf("kill self = %d, exit=%v", int32(ret), exit)
	}
}

func TestHandlerErrnoPaths(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	// Unknown syscall number.
	if r := call(k, p, 999); int32(r) != -sys.ENOSYS {
		t.Errorf("unknown = %d", int32(r))
	}
	// __syscall on the Linux personality.
	if r := call(k, p, sys.SysIndirect, uint32(sys.SysGetpid)); int32(r) != -sys.ENOSYS {
		t.Errorf("__syscall on linux = %d", int32(r))
	}
	// EFAULT on a wild pointer.
	if r := call(k, p, sys.SysOpen, 0x2, 0, 0); int32(r) != -sys.EFAULT {
		t.Errorf("open wild ptr = %d", int32(r))
	}
	if r := call(k, p, sys.SysRead, 50, 0, 4); int32(r) != -sys.EBADF {
		t.Errorf("read bad fd = %d", int32(r))
	}
	if r := call(k, p, sys.SysWrite, 1, 0x2, 4); int32(r) != -sys.EFAULT {
		t.Errorf("write wild buf = %d", int32(r))
	}
	if r := call(k, p, sys.SysIoctl, 77, 0, 0); int32(r) != -sys.EBADF {
		t.Errorf("ioctl bad fd = %d", int32(r))
	}
	if r := call(k, p, sys.SysFcntl, 77, 0, 0); int32(r) != -sys.EBADF {
		t.Errorf("fcntl bad fd = %d", int32(r))
	}
	if r := call(k, p, sys.SysClose, 77); int32(r) != -sys.EBADF {
		t.Errorf("close bad fd = %d", int32(r))
	}
	// Writing beyond the disk quota reports ENOSPC.
	a := scratch(p)
	putStr(t, p, a, "/tmp/big")
	if r := call(k, p, sys.SysTruncate, a, 0); int32(r) != -sys.ENOENT {
		t.Errorf("truncate missing = %d", int32(r))
	}
	fd := call(k, p, sys.SysOpen, a, OCreat|OWrOnly, 0o644)
	if r := call(k, p, sys.SysFtruncate, fd, 0xffffff00); int32(r) != -sys.ENOSPC {
		t.Errorf("huge ftruncate = %d", int32(r))
	}
}

func TestHandlerIndirectOpenBSDRecursionGuard(t *testing.T) {
	fs := vfs.New()
	k, err := New(fs, nil, WithMode(Permissive), WithPersonality(OpenBSD))
	if err != nil {
		t.Fatal(err)
	}
	p := newProc(t, k)
	// __syscall(__syscall, ...) must not recurse.
	if r := call(k, p, sys.SysIndirect, uint32(sys.SysIndirect)); int32(r) != -sys.EINVAL {
		t.Errorf("indirect recursion = %d", int32(r))
	}
	// __syscall(getpid) dispatches.
	if r := call(k, p, sys.SysIndirect, uint32(sys.SysGetpid)); r != uint32(p.PID) {
		t.Errorf("indirect getpid = %d", r)
	}
}
