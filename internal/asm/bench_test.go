package asm

import "testing"

// BenchmarkAssemble measures two-pass assembly throughput.
func BenchmarkAssemble(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble("bench.s", sample); err != nil {
			b.Fatal(err)
		}
	}
}
