#!/bin/sh
# smp.sh — regenerate BENCH_smp.json: the SMP throughput sweep (8
# verified processes per Table-4 workload at 1/2/4/8 workers, modeled
# makespan). The figures are computed from deterministic per-process
# cycle counts, so two consecutive runs produce byte-identical JSON.
#
# Refuses to overwrite an uncommitted BENCH_smp.json unless FORCE=1,
# so a locally modified artifact is never clobbered silently.
set -eu

cd "$(dirname "$0")/.."

if git diff --quiet -- BENCH_smp.json 2>/dev/null; then
    : # clean (or not yet tracked with changes): safe to regenerate
elif [ "${FORCE:-0}" = "1" ]; then
    echo "smp.sh: BENCH_smp.json is dirty; overwriting (FORCE=1)" >&2
else
    echo "smp.sh: BENCH_smp.json has uncommitted changes; commit them or rerun with FORCE=1" >&2
    exit 1
fi

go run ./cmd/ascbench -table smp -procs 8 -json BENCH_smp.json
echo "wrote BENCH_smp.json"
