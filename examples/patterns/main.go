// Extensions demo: the Section 5 policy improvements.
//
//   - §5.1 argument patterns with proof hints: the application matches,
//     the kernel verifies with a linear scan.
//   - §5.2 metapolicies: mandatory constraints produce a policy template
//     for hand completion when static analysis falls short.
//   - §5.3 capability tracking: an authenticated descriptor set in
//     application memory, protected by the memory-checker construction.
//
// Run with: go run ./examples/patterns
package main

import (
	"fmt"
	"log"

	"asc"
	"asc/internal/captrack"
	"asc/internal/mac"
	"asc/internal/pattern"
	"asc/internal/vm"
)

func main() {
	patternsDemo()
	enforcedPatternDemo()
	metapolicyDemo()
	captrackDemo()
}

// enforcedPatternDemo shows patterns wired all the way through: the
// administrator fills a policy hole with a pattern at install time, and
// the kernel enforces it on a path that only arrives at run time.
func enforcedPatternDemo() {
	fmt.Println("== §5.1 patterns enforced by the kernel ==")
	exe, err := asc.BuildProgram("logger", `
        .text
        .global main
main:
        SUBI sp, sp, 64
        MOV r1, sp
        CALL gets               ; log file name from input
        MOV r1, sp
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        ADDI sp, sp, 64
        MOVI r0, 0
        RET
`, asc.Linux)
	if err != nil {
		log.Fatal(err)
	}
	system, err := asc.NewSystem(asc.SystemConfig{Key: asc.NewKey("patterns-demo")})
	if err != nil {
		log.Fatal(err)
	}
	hardened, _, _, err := asc.Install(exe, "logger", asc.InstallOptions{
		Key: asc.NewKey("patterns-demo"),
		Patterns: map[string][]asc.ArgPattern{
			"open": {{Arg: 0, Pattern: "/var/log/*"}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ok, err := system.Exec(hardened, "logger", "/var/log/app.log\n")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open(/var/log/app.log): killed=%v\n", ok.Killed)
	bad, err := system.Exec(hardened, "logger", "/etc/passwd\n")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open(/etc/passwd):      killed=%v (%s)\n", bad.Killed, bad.Reason)
	fmt.Println()
}

func patternsDemo() {
	fmt.Println("== §5.1 argument patterns with proof hints ==")
	p, err := pattern.Parse("/tmp/{foo,bar}*baz")
	if err != nil {
		log.Fatal(err)
	}
	arg := "/tmp/foofoobaz"
	hint, err := p.Match(arg) // expensive matching, application side
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern %q, argument %q -> hint %v (paper's example)\n", p, arg, hint)
	scanned, err := p.Verify(arg, hint) // cheap linear scan, kernel side
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel verification: linear scan over %d bytes, match proven\n", scanned)
	if _, err := p.Verify(arg, []int{1, 3}); err != nil {
		fmt.Printf("forged hint rejected: %v\n", err)
	}
	if _, err := p.Match("/etc/passwd"); err != nil {
		fmt.Printf("non-matching argument rejected: %v\n", err)
	}
	fmt.Println()
}

func metapolicyDemo() {
	fmt.Println("== §5.2 metapolicies and policy templates ==")
	// This program opens one statically known path and one read from
	// input: the metapolicy demands both be constrained.
	exe, err := asc.BuildProgram("meta", `
        .text
        .global main
main:
        MOVI r1, conf
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        SUBI sp, sp, 64
        MOV r1, sp
        CALL gets
        MOV r1, sp
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        ADDI sp, sp, 64
        MOVI r0, 0
        RET
        .rodata
conf:   .asciz "/etc/app.conf"
`, asc.Linux)
	if err != nil {
		log.Fatal(err)
	}
	pp, _, err := asc.GeneratePolicy(exe, "meta", asc.Linux)
	if err != nil {
		log.Fatal(err)
	}
	entries := asc.CheckMetapolicy(pp, asc.DefaultMetapolicy())
	fmt.Print(asc.RenderTemplate(entries))
	fmt.Println("(the administrator completes these holes with values or patterns)")
	fmt.Println()
}

func captrackDemo() {
	fmt.Println("== §5.3 capability tracking for file descriptors ==")
	key, err := mac.New(asc.NewKey("captrack-demo"))
	if err != nil {
		log.Fatal(err)
	}
	mem := vm.NewMemory(0x1000, 64<<10)
	tracker, err := captrack.New(key, mem, 0x2000, 16)
	if err != nil {
		log.Fatal(err)
	}
	// open returns fd 3: the policy records the capability.
	must(tracker.Add(mem, 3))
	fmt.Println("open -> fd 3 recorded in the authenticated set (app memory)")
	must(tracker.Check(mem, 3))
	fmt.Println("read(3) capability check: allowed")
	if err := tracker.Check(mem, 7); err != nil {
		fmt.Printf("read(7) capability check: %v\n", err)
	}
	must(tracker.Remove(mem, 3))
	if err := tracker.Check(mem, 3); err != nil {
		fmt.Printf("read(3) after close: %v\n", err)
	}
	// Forge an entry directly in application memory: the MAC catches it.
	_ = mem.KernelStore32(0x2000, 1)
	_ = mem.KernelStore32(0x2004, 9)
	if err := tracker.Check(mem, 9); err != nil {
		fmt.Printf("forged set detected: %v\n", err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
