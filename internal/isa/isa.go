// Package isa defines the instruction set architecture of the simulated
// machine used throughout the ASC reproduction.
//
// The original paper operates on x86 binaries, where system calls are
// `int 0x80` instructions and the system call number lives in EAX. A
// reproduction in pure Go cannot rewrite and execute x86, so we substitute a
// small 32-bit RISC-like ISA with the same essential properties:
//
//   - a dedicated SYSCALL instruction (and its rewritten form, ASYSCALL),
//   - the system call number placed in a well-known register (R0),
//   - instructions at identifiable code addresses (the call site),
//   - a fixed 8-byte encoding so the trusted installer can disassemble,
//     analyze, and rewrite binaries exactly as PLTO does for x86.
//
// Calling convention: arguments in R1..R5, return value in R0, R6 reserved
// for the authenticated-call record pointer, R14 is the stack pointer, R12
// the frame pointer. CALL pushes the return address; RET pops it.
package isa

import "fmt"

// Reg identifies one of the 16 general-purpose registers.
type Reg uint8

// Register assignments with architectural roles.
const (
	R0  Reg = iota // syscall number / return value
	R1             // argument 1
	R2             // argument 2
	R3             // argument 3
	R4             // argument 4
	R5             // argument 5
	R6             // authenticated-call record pointer
	R7             // caller-saved temporary
	R8             // caller-saved temporary
	R9             // caller-saved temporary
	R10            // callee-saved
	R11            // callee-saved
	R12            // frame pointer (FP)
	R13            // callee-saved
	R14            // stack pointer (SP)
	R15            // callee-saved

	// NumRegs is the number of general-purpose registers.
	NumRegs = 16
)

// Convenience aliases for registers with an architectural role.
const (
	FP = R12
	SP = R14
)

func (r Reg) String() string {
	switch r {
	case FP:
		return "fp"
	case SP:
		return "sp"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Op is an instruction opcode. Opcode 0 is invalid so that zeroed memory
// never decodes as a meaningful instruction.
type Op uint8

// The instruction set.
const (
	opInvalid Op = iota

	OpNOP  // no operation
	OpHALT // stop the machine (used only by the idle loop; programs exit(2))

	OpMOV  // MOV rd, rs            rd = rs
	OpMOVI // MOVI rd, imm          rd = imm (absolute addresses use this)

	OpLOAD   // LOAD rd, [rs+imm]   rd = mem32[rs+imm]
	OpSTORE  // STORE [rd+imm], rs  mem32[rd+imm] = rs
	OpLOADB  // LOADB rd, [rs+imm]  rd = zext(mem8[rs+imm])
	OpSTOREB // STOREB [rd+imm], rs mem8[rd+imm] = low8(rs)

	OpADD // ADD rd, rs, rt
	OpSUB // SUB rd, rs, rt
	OpMUL // MUL rd, rs, rt
	OpDIV // DIV rd, rs, rt (unsigned; divide by zero traps)
	OpMOD // MOD rd, rs, rt (unsigned)
	OpAND // AND rd, rs, rt
	OpOR  // OR  rd, rs, rt
	OpXOR // XOR rd, rs, rt
	OpSHL // SHL rd, rs, rt
	OpSHR // SHR rd, rs, rt (logical)

	OpADDI // ADDI rd, rs, imm
	OpMULI // MULI rd, rs, imm
	OpANDI // ANDI rd, rs, imm
	OpORI  // ORI  rd, rs, imm
	OpXORI // XORI rd, rs, imm
	OpSHLI // SHLI rd, rs, imm
	OpSHRI // SHRI rd, rs, imm

	OpJMP   // JMP imm              absolute jump
	OpBEQ   // BEQ rs, rt, imm      branch if rs == rt
	OpBNE   // BNE rs, rt, imm
	OpBLT   // BLT rs, rt, imm      signed <
	OpBGE   // BGE rs, rt, imm      signed >=
	OpBLTU  // BLTU rs, rt, imm     unsigned <
	OpBGEU  // BGEU rs, rt, imm     unsigned >=
	OpCALL  // CALL imm             push PC+8; jump imm
	OpCALLR // CALLR rs             push PC+8; jump rs (indirect)
	OpRET   // RET                  pop PC

	OpPUSH // PUSH rs               SP -= 4; mem32[SP] = rs
	OpPOP  // POP rd                rd = mem32[SP]; SP += 4

	OpSYSCALL  // SYSCALL            trap to kernel (number in R0, args R1..R5)
	OpASYSCALL // ASYSCALL           authenticated trap (auth record in R6)

	opMax // sentinel; not a real opcode
)

var opNames = map[Op]string{
	OpNOP: "NOP", OpHALT: "HALT",
	OpMOV: "MOV", OpMOVI: "MOVI",
	OpLOAD: "LOAD", OpSTORE: "STORE", OpLOADB: "LOADB", OpSTOREB: "STOREB",
	OpADD: "ADD", OpSUB: "SUB", OpMUL: "MUL", OpDIV: "DIV", OpMOD: "MOD",
	OpAND: "AND", OpOR: "OR", OpXOR: "XOR", OpSHL: "SHL", OpSHR: "SHR",
	OpADDI: "ADDI", OpMULI: "MULI", OpANDI: "ANDI", OpORI: "ORI",
	OpXORI: "XORI", OpSHLI: "SHLI", OpSHRI: "SHRI",
	OpJMP: "JMP", OpBEQ: "BEQ", OpBNE: "BNE", OpBLT: "BLT", OpBGE: "BGE",
	OpBLTU: "BLTU", OpBGEU: "BGEU",
	OpCALL: "CALL", OpCALLR: "CALLR", OpRET: "RET",
	OpPUSH: "PUSH", OpPOP: "POP",
	OpSYSCALL: "SYSCALL", OpASYSCALL: "ASYSCALL",
}

// opByName is the inverse of opNames, used by the assembler.
var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// OpByName looks up an opcode by its mnemonic (upper case). It reports
// whether the mnemonic is known.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool {
	_, ok := opNames[o]
	return ok
}

// InstrSize is the fixed encoded size of every instruction in bytes.
const InstrSize = 8

// Instr is a decoded instruction. Not every field is meaningful for every
// opcode; unused fields are zero.
type Instr struct {
	Op  Op
	Rd  Reg
	Rs  Reg
	Rt  Reg
	Imm uint32
}

// Encode writes the 8-byte encoding of the instruction into b, which must
// be at least InstrSize long.
func (in Instr) Encode(b []byte) {
	_ = b[7]
	b[0] = byte(in.Op)
	b[1] = byte(in.Rd)
	b[2] = byte(in.Rs)
	b[3] = byte(in.Rt)
	b[4] = byte(in.Imm)
	b[5] = byte(in.Imm >> 8)
	b[6] = byte(in.Imm >> 16)
	b[7] = byte(in.Imm >> 24)
}

// Decode reads an instruction from b, which must be at least InstrSize
// long. It returns an error if the opcode or register fields are invalid.
func Decode(b []byte) (Instr, error) {
	if len(b) < InstrSize {
		return Instr{}, fmt.Errorf("isa: decode: need %d bytes, have %d", InstrSize, len(b))
	}
	in := Instr{
		Op:  Op(b[0]),
		Rd:  Reg(b[1]),
		Rs:  Reg(b[2]),
		Rt:  Reg(b[3]),
		Imm: uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
	}
	if !in.Op.Valid() {
		return in, fmt.Errorf("isa: decode: invalid opcode %d", b[0])
	}
	if in.Rd >= NumRegs || in.Rs >= NumRegs || in.Rt >= NumRegs {
		return in, fmt.Errorf("isa: decode: register out of range in %v", in)
	}
	return in, nil
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNOP, OpHALT, OpRET, OpSYSCALL, OpASYSCALL:
		return in.Op.String()
	case OpMOV:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs)
	case OpMOVI:
		return fmt.Sprintf("%s %s, 0x%x", in.Op, in.Rd, in.Imm)
	case OpLOAD, OpLOADB:
		return fmt.Sprintf("%s %s, [%s+%d]", in.Op, in.Rd, in.Rs, int32(in.Imm))
	case OpSTORE, OpSTOREB:
		return fmt.Sprintf("%s [%s+%d], %s", in.Op, in.Rd, int32(in.Imm), in.Rs)
	case OpADD, OpSUB, OpMUL, OpDIV, OpMOD, OpAND, OpOR, OpXOR, OpSHL, OpSHR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs, in.Rt)
	case OpADDI, OpMULI, OpANDI, OpORI, OpXORI, OpSHLI, OpSHRI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs, int32(in.Imm))
	case OpJMP, OpCALL:
		return fmt.Sprintf("%s 0x%x", in.Op, in.Imm)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s, %s, 0x%x", in.Op, in.Rs, in.Rt, in.Imm)
	case OpCALLR:
		return fmt.Sprintf("%s %s", in.Op, in.Rs)
	case OpPUSH:
		return fmt.Sprintf("%s %s", in.Op, in.Rs)
	case OpPOP:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	default:
		return fmt.Sprintf("%s rd=%s rs=%s rt=%s imm=0x%x", in.Op, in.Rd, in.Rs, in.Rt, in.Imm)
	}
}

// IsBranch reports whether the instruction can transfer control somewhere
// other than the next instruction (excluding traps).
func (in Instr) IsBranch() bool {
	switch in.Op {
	case OpJMP, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpCALL, OpCALLR, OpRET, OpHALT:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch
// (falls through when the condition is false).
func (in Instr) IsCondBranch() bool {
	switch in.Op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return true
	}
	return false
}

// IsSyscall reports whether the instruction traps to the kernel.
func (in Instr) IsSyscall() bool {
	return in.Op == OpSYSCALL || in.Op == OpASYSCALL
}

// HasImmTarget reports whether Imm is a code address target (jump or call).
func (in Instr) HasImmTarget() bool {
	switch in.Op {
	case OpJMP, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpCALL:
		return true
	}
	return false
}

// Def returns the register defined (written) by the instruction and whether
// one is defined. SYSCALL/ASYSCALL define R0 (the return value).
func (in Instr) Def() (Reg, bool) {
	switch in.Op {
	case OpMOV, OpMOVI, OpLOAD, OpLOADB,
		OpADD, OpSUB, OpMUL, OpDIV, OpMOD, OpAND, OpOR, OpXOR, OpSHL, OpSHR,
		OpADDI, OpMULI, OpANDI, OpORI, OpXORI, OpSHLI, OpSHRI, OpPOP:
		return in.Rd, true
	case OpSYSCALL, OpASYSCALL:
		return R0, true
	}
	return 0, false
}

// Uses returns the registers read by the instruction, appended to dst.
// SYSCALL reads R0..R5; ASYSCALL additionally reads R6.
func (in Instr) Uses(dst []Reg) []Reg {
	switch in.Op {
	case OpMOV:
		return append(dst, in.Rs)
	case OpLOAD, OpLOADB:
		return append(dst, in.Rs)
	case OpSTORE, OpSTOREB:
		return append(dst, in.Rd, in.Rs)
	case OpADD, OpSUB, OpMUL, OpDIV, OpMOD, OpAND, OpOR, OpXOR, OpSHL, OpSHR:
		return append(dst, in.Rs, in.Rt)
	case OpADDI, OpMULI, OpANDI, OpORI, OpXORI, OpSHLI, OpSHRI:
		return append(dst, in.Rs)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return append(dst, in.Rs, in.Rt)
	case OpCALLR:
		return append(dst, in.Rs)
	case OpPUSH:
		return append(dst, in.Rs)
	case OpSYSCALL:
		return append(dst, R0, R1, R2, R3, R4, R5)
	case OpASYSCALL:
		return append(dst, R0, R1, R2, R3, R4, R5, R6)
	}
	return dst
}
