// Package kernel implements the operating system of the simulated
// platform: processes, a system call table over the in-memory VFS, and —
// the paper's kernel-side contribution — the authenticated system call
// verification path in the trap handler (Section 3.4).
//
// The verification path mirrors the paper exactly:
//
//  1. Reconstruct the encoded call from the actual trap state and check
//     the call MAC.
//  2. Check the integrity of each authenticated string argument.
//  3. Check the control-flow policy using the online memory checker:
//     the {lastBlock, lbMAC} state lives in application memory and is
//     validated against an in-kernel per-process counter nonce, then
//     updated.
//
// Any failure terminates the process, logs the call, and records an audit
// entry. Unauthenticated calls from authenticated binaries are also
// blocked (the paper's shellcode defense).
package kernel

import (
	"errors"
	"fmt"
	"strings"

	"asc/internal/binfmt"
	"asc/internal/captrack"
	"asc/internal/isa"
	"asc/internal/mac"
	"asc/internal/pattern"
	"asc/internal/policy"
	"asc/internal/sys"
	"asc/internal/vfs"
	"asc/internal/vm"
)

// Mode selects the enforcement behaviour.
type Mode int

// Enforcement modes.
const (
	// Permissive executes all system calls without checking. Used for
	// baselines and for tracing training runs.
	Permissive Mode = iota + 1
	// Enforce verifies authenticated calls and kills processes on any
	// violation, including plain SYSCALLs from authenticated binaries.
	Enforce
)

// Personality selects OS-specific syscall behaviour.
type Personality int

// Personalities.
const (
	// Linux rejects the generic indirect syscall.
	Linux Personality = iota + 1
	// OpenBSD dispatches __syscall(n, ...) to syscall n.
	OpenBSD
)

// Defaults for process construction.
const (
	DefaultMemSize   = 4 << 20
	DefaultStackSize = 256 << 10
	maxFDs           = 256
)

// KillReason classifies why the monitor terminated a process.
type KillReason string

// Kill reasons recorded in the audit log.
const (
	KillUnauthenticated KillReason = "unauthenticated system call"
	KillBadRecord       KillReason = "malformed auth record"
	KillBadCallMAC      KillReason = "call MAC mismatch"
	KillBadString       KillReason = "authenticated string MAC mismatch"
	KillBadState        KillReason = "policy state MAC mismatch (memory checker)"
	KillBadPredecessor  KillReason = "control flow violation (predecessor not allowed)"
	KillBadPattern      KillReason = "argument does not match authenticated pattern"
	KillBadCapability   KillReason = "file descriptor is not a live capability"
	KillSymlinkRace     KillReason = "path argument resolves outside its policy name (symlink race)"
)

// AuditEntry records a monitor decision.
type AuditEntry struct {
	PID     int
	Program string
	Num     uint16
	Name    string
	Site    uint32
	Reason  KillReason
}

func (a AuditEntry) String() string {
	return fmt.Sprintf("pid %d (%s): %s at %#x: %s", a.PID, a.Program, a.Name, a.Site, string(a.Reason))
}

// TraceEntry records one executed system call (used for Systrace-style
// training and for debugging).
type TraceEntry struct {
	Num  uint16
	Site uint32
	Args [sys.MaxArgs]uint32
	Ret  uint32
}

// Kernel is one simulated machine.
type Kernel struct {
	FS          *vfs.FS
	Mode        Mode
	Personality Personality
	Costs       CostModel

	// NormalizePaths enables the §5.4 defense: a policy-constrained path
	// argument must normalize (all symbolic links resolved) to itself.
	// An attacker who plants a symlink at a policy-approved name — e.g.
	// /tmp/foo -> /etc/passwd — is caught before the call proceeds.
	NormalizePaths bool

	// RequireAuthenticated extends enforcement to every process: system
	// calls from binaries the installer has not transformed are also
	// killed. This is the paper's full-system deployment ("the system
	// as a whole is protected once all binaries that run in user space
	// have been transformed", §3.3); without it, enforcement applies
	// per-binary.
	RequireAuthenticated bool

	// MonitorOverhead, when non-nil, is consulted on every system call
	// of a *non-authenticated* binary to model alternative monitors
	// (e.g. a user-space policy daemon); it returns extra cycles and
	// whether the call is allowed.
	MonitorOverhead func(p *Process, num uint16, site uint32) (extra uint64, allow bool)

	key      *mac.Keyed
	nextPID  int
	Audit    []AuditEntry
	procs    map[int]*Process
	timeBase uint64
}

// Option configures a Kernel.
type Option func(*Kernel)

// WithMode sets the enforcement mode.
func WithMode(m Mode) Option { return func(k *Kernel) { k.Mode = m } }

// WithPersonality sets the OS personality.
func WithPersonality(p Personality) Option { return func(k *Kernel) { k.Personality = p } }

// WithCosts overrides the cycle model.
func WithCosts(c CostModel) Option { return func(k *Kernel) { k.Costs = c } }

// WithRequireAuthenticated enables full-system enforcement: only
// installer-transformed binaries may make system calls.
func WithRequireAuthenticated() Option {
	return func(k *Kernel) { k.RequireAuthenticated = true }
}

// WithNormalizePaths enables the §5.4 symlink-race defense on
// policy-constrained path arguments.
func WithNormalizePaths() Option {
	return func(k *Kernel) { k.NormalizePaths = true }
}

// New creates a kernel. The key is the MAC key shared with the trusted
// installer; it may be nil when the kernel never enforces.
func New(fs *vfs.FS, key []byte, opts ...Option) (*Kernel, error) {
	k := &Kernel{
		FS:          fs,
		Mode:        Enforce,
		Personality: Linux,
		Costs:       DefaultCosts,
		nextPID:     1,
		procs:       make(map[int]*Process),
	}
	if key != nil {
		mk, err := mac.New(key)
		if err != nil {
			return nil, fmt.Errorf("kernel: %w", err)
		}
		k.key = mk
	}
	for _, o := range opts {
		o(k)
	}
	if k.Mode == Enforce && k.key == nil {
		return nil, errors.New("kernel: enforcement requires a MAC key")
	}
	return k, nil
}

// fdKind distinguishes file descriptor flavours.
type fdKind int

const (
	fdFile fdKind = iota + 1
	fdConsole
	fdPipeR
	fdPipeW
	fdSocket
)

type fdEntry struct {
	kind   fdKind
	node   *vfs.Node
	path   string
	offset uint32
	pipe   *pipeBuf
	sock   *socket
}

type pipeBuf struct {
	data   []byte
	closed bool
}

type socket struct {
	domain, typ, proto uint32
	sent               [][]byte
	bound              bool
}

// Process is one running program.
type Process struct {
	PID      int
	Name     string
	CPU      *vm.CPU
	Mem      *vm.Memory
	Exited   bool
	Code     uint32
	Killed   bool
	KilledBy KillReason

	kern *Kernel
	file *binfmt.File

	fds   []*fdEntry
	cwd   string
	brk   uint32
	umask uint32

	authenticated bool
	counter       uint64            // memory-checker nonce
	fdTracker     *captrack.Tracker // §5.3 capability set, nil unless installed

	// Console I/O.
	Stdin    []byte
	stdinPos int
	Stdout   []byte

	// Statistics.
	SyscallCount    uint64
	VerifyCount     uint64
	VerifyAESBlocks uint64

	// Tracing (Permissive mode training runs).
	Trace   []TraceEntry
	DoTrace bool

	sigHandlers map[uint32]uint32
}

// Spawn loads an executable into a new process.
func (k *Kernel) Spawn(f *binfmt.File, name string) (*Process, error) {
	p := &Process{
		PID:         k.nextPID,
		Name:        name,
		kern:        k,
		cwd:         "/",
		umask:       0o22,
		sigHandlers: make(map[uint32]uint32),
	}
	k.nextPID++
	if err := p.loadImage(f); err != nil {
		return nil, err
	}
	// Standard descriptors.
	p.fds = make([]*fdEntry, 3, 16)
	p.fds[0] = &fdEntry{kind: fdConsole}
	p.fds[1] = &fdEntry{kind: fdConsole}
	p.fds[2] = &fdEntry{kind: fdConsole}
	k.procs[p.PID] = p
	return p, nil
}

// loadImage (re)initializes the process address space from a binary.
func (p *Process) loadImage(f *binfmt.File) error {
	base, img, err := f.Image()
	if err != nil {
		return fmt.Errorf("kernel: load %s: %w", p.Name, err)
	}
	mem := vm.NewMemory(binfmt.TextBase, DefaultMemSize)
	if err := mem.KernelWrite(base, img); err != nil {
		return fmt.Errorf("kernel: load %s: %w", p.Name, err)
	}
	var end uint32 = binfmt.TextBase
	for _, s := range f.Sections {
		if s.Size == 0 {
			continue
		}
		mem.Map(vm.Segment{Name: s.Name, Start: s.Addr, End: s.End(), Perms: s.Flags})
		if s.End() > end {
			end = s.End()
		}
	}
	// Heap begins after the image; brk grows it.
	heapStart := (end + 0xfff) &^ 0xfff
	p.brk = heapStart
	mem.Map(vm.Segment{Name: "heap", Start: heapStart, End: heapStart, Perms: vm.PermRead | vm.PermWrite})
	// Stack at the top, executable (2005-era semantics; see internal/vm).
	top := mem.Limit()
	mem.Map(vm.Segment{
		Name: "stack", Start: top - DefaultStackSize, End: top,
		Perms: vm.PermRead | vm.PermWrite | vm.PermExec,
	})

	cpu := p.CPU
	if cpu == nil {
		cpu = vm.New(mem, &trapAdapter{p})
		cpu.PC = f.Entry
		cpu.Regs[isa.SP] = top
	} else {
		// execve: replace the image in place, keeping the cycle counter.
		cpu.Reset(mem, f.Entry, top)
	}
	text := f.Section(binfmt.SecText)
	if text != nil {
		cpu.PrimeICache(text.Addr, text.End())
	}

	p.CPU = cpu
	p.Mem = mem
	p.file = f
	p.authenticated = f.Authenticated
	p.counter = 0
	p.fdTracker = nil
	if addr, ok := f.SymbolAddr("__asc_fdset"); ok && p.kern.key != nil {
		tr, err := captrack.Attach(p.kern.key, addr, captrack.DefaultCapacity)
		if err != nil {
			return fmt.Errorf("kernel: attach fd tracker: %w", err)
		}
		p.fdTracker = tr
	}
	return nil
}

// trapAdapter delivers VM traps to the kernel with the owning process.
type trapAdapter struct{ p *Process }

func (t *trapAdapter) Trap(c *vm.CPU, site uint32, authed bool) (uint32, bool, error) {
	return t.p.kern.trap(t.p, site, authed)
}

// Run executes the process until exit, kill, fault, or cycle budget
// exhaustion.
func (k *Kernel) Run(p *Process, maxCycles uint64) error {
	err := p.CPU.Run(maxCycles)
	if err != nil {
		return err
	}
	return nil
}

// kill terminates the process and records the audit entry.
func (k *Kernel) kill(p *Process, num uint16, site uint32, reason KillReason) {
	p.Killed = true
	p.KilledBy = reason
	p.Exited = true
	p.Code = 0xff
	k.Audit = append(k.Audit, AuditEntry{
		PID: p.PID, Program: p.Name, Num: num, Name: sys.Name(num), Site: site, Reason: reason,
	})
}

// trap is the software trap handler.
func (k *Kernel) trap(p *Process, site uint32, authed bool) (uint32, bool, error) {
	p.CPU.Cycles += k.Costs.Trap
	p.SyscallCount++
	num := uint16(p.CPU.Regs[isa.R0])

	if k.Mode == Enforce && (p.authenticated || k.RequireAuthenticated) {
		if !authed || !p.authenticated {
			k.kill(p, num, site, KillUnauthenticated)
			return 0, true, nil
		}
		if reason, ok := k.verify(p, num, site); !ok {
			k.kill(p, num, site, reason)
			return 0, true, nil
		}
	} else if k.MonitorOverhead != nil {
		extra, allow := k.MonitorOverhead(p, num, site)
		p.CPU.Cycles += extra
		if !allow {
			k.kill(p, num, site, "blocked by external monitor policy")
			return 0, true, nil
		}
	}

	var args [sys.MaxArgs]uint32
	for i := 0; i < sys.MaxArgs; i++ {
		args[i] = p.CPU.Regs[isa.R1+isa.Reg(i)]
	}
	ret, exit := k.dispatch(p, num, site, args)
	if !exit && p.fdTracker != nil && k.Mode == Enforce && p.authenticated {
		if err := k.updateFDSet(p, num, args, ret); err != nil {
			k.kill(p, num, site, KillBadState)
			return 0, true, nil
		}
	}
	if p.DoTrace && !exit {
		p.Trace = append(p.Trace, TraceEntry{Num: num, Site: site, Args: args, Ret: ret})
	}
	if p.DoTrace && exit {
		p.Trace = append(p.Trace, TraceEntry{Num: num, Site: site, Args: args})
	}
	return ret, exit, nil
}

// sumCycles charges the cycle cost of aes block operations.
func (k *Kernel) chargeAES(p *Process, blocks int) {
	p.CPU.Cycles += uint64(blocks) * k.Costs.PerAESBlock
	p.VerifyAESBlocks += uint64(blocks)
}

// readAS reads an authenticated-string view {addr,len,mac} whose bytes
// pointer is addr. Returns the view and the string bytes.
func (k *Kernel) readAS(p *Process, addr uint32) (policy.ASView, []byte, bool) {
	if addr < policy.ASHeaderSize {
		return policy.ASView{}, nil, false
	}
	length, err := p.Mem.KernelLoad32(addr - 20)
	if err != nil || length > policy.MaxASLen {
		return policy.ASView{}, nil, false
	}
	tagBytes, err := p.Mem.KernelRead(addr-16, mac.Size)
	if err != nil {
		return policy.ASView{}, nil, false
	}
	var tag mac.Tag
	copy(tag[:], tagBytes)
	contents, err := p.Mem.KernelRead(addr, length)
	if err != nil {
		return policy.ASView{}, nil, false
	}
	return policy.ASView{Addr: addr, Len: length, MAC: tag}, contents, true
}

// verify implements the three-step check of Section 3.4.
func (k *Kernel) verify(p *Process, num uint16, site uint32) (KillReason, bool) {
	p.VerifyCount++
	p.CPU.Cycles += k.Costs.AuthFixed

	// The auth record address arrives in R6. The descriptor (its first
	// word) determines whether a pattern extension follows the fixed
	// part.
	recAddr := p.CPU.Regs[isa.R6]
	descWord, err := p.Mem.KernelLoad32(recAddr)
	if err != nil {
		return KillBadRecord, false
	}
	recSize := uint32(policy.AuthRecordSize + 4*policy.Descriptor(descWord).NumPatterns())
	recBytes, err := p.Mem.KernelRead(recAddr, recSize)
	if err != nil {
		return KillBadRecord, false
	}
	rec, err := policy.DecodeAuthRecord(recBytes)
	if err != nil {
		return KillBadRecord, false
	}

	// Reconstruct the encoded call from actual behaviour.
	enc := policy.CallEncoding{
		Num:     num,
		Site:    site,
		Desc:    rec.Desc,
		BlockID: rec.BlockID,
		LbPtr:   rec.LbPtr,
	}
	type pendingString struct {
		contents []byte
		tag      mac.Tag
	}
	type pendingPattern struct {
		argIndex int
		source   []byte // pattern AS contents (NUL-terminated)
	}
	var strChecks []pendingString
	var patChecks []pendingPattern
	patIdx := 0
	for i := 0; i < sys.MaxArgs; i++ {
		val := p.CPU.Regs[isa.R1+isa.Reg(i)]
		switch {
		case rec.Desc.ArgConstrained(i) && rec.Desc.ArgString(i):
			view, contents, ok := k.readAS(p, val)
			if !ok {
				return KillBadString, false
			}
			enc.Args = append(enc.Args, policy.EncodedArg{
				Index: i, IsString: true, Value: view.Addr, Len: view.Len, MAC: view.MAC,
			})
			strChecks = append(strChecks, pendingString{contents, view.MAC})
		case rec.Desc.ArgConstrained(i):
			enc.Args = append(enc.Args, policy.EncodedArg{Index: i, Value: val})
		case rec.Desc.ArgPattern(i):
			if patIdx >= len(rec.PatternPtrs) {
				return KillBadRecord, false
			}
			view, contents, ok := k.readAS(p, rec.PatternPtrs[patIdx])
			patIdx++
			if !ok {
				return KillBadString, false
			}
			enc.Args = append(enc.Args, policy.EncodedArg{
				Index: i, IsPattern: true, Value: view.Addr, Len: view.Len, MAC: view.MAC,
			})
			strChecks = append(strChecks, pendingString{contents, view.MAC})
			patChecks = append(patChecks, pendingPattern{argIndex: i, source: contents})
		}
	}
	var predView policy.ASView
	var predBytes []byte
	if rec.Desc.ControlFlow() {
		view, contents, ok := k.readAS(p, rec.PredSetPtr)
		if !ok {
			return KillBadRecord, false
		}
		predView, predBytes = view, contents
		enc.PredSet = &predView
		strChecks = append(strChecks, pendingString{contents, view.MAC})
	}

	// Step 1: call MAC.
	got, blocks := enc.Sum(k.key)
	k.chargeAES(p, blocks)
	if !got.Equal(rec.CallMAC) {
		return KillBadCallMAC, false
	}

	// Step 2: authenticated string contents.
	for _, sc := range strChecks {
		ok, blocks := k.key.Verify(sc.contents, sc.tag)
		k.chargeAES(p, blocks)
		if !ok {
			return KillBadString, false
		}
	}

	// Step 2a (§5.4 extension): policy-constrained path arguments must
	// normalize to themselves — a symlink planted at the approved name
	// redirects the resolution and is rejected.
	if k.NormalizePaths {
		sig, sigOK := sys.Lookup(num)
		for i := 0; sigOK && i < sig.NArgs(); i++ {
			if !rec.Desc.ArgString(i) || sig.Args[i] != sys.ArgPath {
				continue
			}
			raw, err := p.Mem.CString(p.CPU.Regs[isa.R1+isa.Reg(i)], 4096)
			if err != nil {
				return KillBadString, false
			}
			want := p.resolvePath(raw)
			got, err := k.FS.Normalize(want)
			if err != nil {
				continue // target does not exist yet (e.g. O_CREAT): nothing to race
			}
			p.CPU.Cycles += uint64(len(want)) * 2 // modeled path-walk cost
			if got != want {
				return KillSymlinkRace, false
			}
		}
	}

	// Step 2b (§5.1 extension): pattern-constrained arguments. The
	// pattern source is now MAC-verified; match the actual argument
	// against it. (Without application-supplied hints the kernel pays
	// for the full match; see internal/pattern for the hint protocol.)
	for _, pc := range patChecks {
		src := strings.TrimRight(string(pc.source), "\x00")
		pat, err := pattern.Parse(src)
		if err != nil {
			return KillBadRecord, false
		}
		argAddr := p.CPU.Regs[isa.R1+isa.Reg(pc.argIndex)]
		arg, err := p.Mem.CString(argAddr, 4096)
		if err != nil {
			return KillBadPattern, false
		}
		p.CPU.Cycles += uint64(len(arg)+len(src)) * 3
		if _, err := pat.Match(arg); err != nil {
			return KillBadPattern, false
		}
	}

	// Step 2c (§5.3 extension): tracked descriptor capabilities. The
	// argument must be a member of the MAC-protected live-descriptor set.
	for i := 0; i < sys.MaxArgs; i++ {
		if !rec.Desc.ArgFD(i) {
			continue
		}
		if p.fdTracker == nil {
			return KillBadCapability, false
		}
		before := p.fdTracker.AESBlocks
		err := p.fdTracker.Check(p.Mem, p.CPU.Regs[isa.R1+isa.Reg(i)])
		k.chargeAES(p, p.fdTracker.AESBlocks-before)
		switch {
		case err == nil:
		case errors.Is(err, captrack.ErrNotTracked):
			return KillBadCapability, false
		default:
			return KillBadState, false
		}
	}

	// Step 3: control flow policy via the online memory checker.
	if rec.Desc.ControlFlow() {
		lastBlock, err := p.Mem.KernelLoad32(rec.LbPtr)
		if err != nil {
			return KillBadState, false
		}
		lbMACBytes, err := p.Mem.KernelRead(rec.LbPtr+4, mac.Size)
		if err != nil {
			return KillBadState, false
		}
		var lbMAC mac.Tag
		copy(lbMAC[:], lbMACBytes)
		want, blocks := policy.StateMAC(k.key, lastBlock, p.counter)
		k.chargeAES(p, blocks)
		if !want.Equal(lbMAC) {
			return KillBadState, false
		}
		ids, err := policy.DecodePredSet(predBytes)
		if err != nil {
			return KillBadPredecessor, false
		}
		if !policy.PredSetContains(ids, lastBlock) {
			return KillBadPredecessor, false
		}
		// Update: counter++, lastBlock = blockID, new state MAC.
		p.counter++
		newMAC, blocks := policy.StateMAC(k.key, rec.BlockID, p.counter)
		k.chargeAES(p, blocks)
		if err := p.Mem.KernelStore32(rec.LbPtr, rec.BlockID); err != nil {
			return KillBadState, false
		}
		if err := p.Mem.KernelWrite(rec.LbPtr+4, newMAC[:]); err != nil {
			return KillBadState, false
		}
	}
	return "", true
}

// updateFDSet maintains the §5.3 capability set across calls that create
// or destroy descriptors.
func (k *Kernel) updateFDSet(p *Process, num uint16, args [sys.MaxArgs]uint32, ret uint32) error {
	sig, ok := sys.Lookup(num)
	if !ok {
		return nil
	}
	before := p.fdTracker.AESBlocks
	defer func() { k.chargeAES(p, p.fdTracker.AESBlocks-before) }()
	switch {
	case sig.ReturnFD && int32(ret) >= 0:
		if err := p.fdTracker.Add(p.Mem, ret); err != nil && !errors.Is(err, captrack.ErrFull) {
			return err
		}
	case num == sys.SysClose && ret == 0:
		if err := p.fdTracker.Remove(p.Mem, args[0]); err != nil && !errors.Is(err, captrack.ErrNotTracked) {
			return err
		}
	}
	return nil
}

// resolvePath joins a process-relative path against the cwd.
func (p *Process) resolvePath(path string) string {
	if path == "" {
		return p.cwd
	}
	if path[0] == '/' {
		return path
	}
	if p.cwd == "/" {
		return "/" + path
	}
	return p.cwd + "/" + path
}

// readPath reads a path argument from process memory.
func (p *Process) readPath(addr uint32) (string, bool) {
	s, err := p.Mem.CString(addr, 4096)
	if err != nil {
		return "", false
	}
	if strings.ContainsRune(s, 0) {
		return "", false
	}
	return p.resolvePath(s), true
}

// allocFD installs an fd entry at the lowest free slot.
func (p *Process) allocFD(e *fdEntry) (int, bool) {
	for i, f := range p.fds {
		if f == nil {
			p.fds[i] = e
			return i, true
		}
	}
	if len(p.fds) >= maxFDs {
		return 0, false
	}
	p.fds = append(p.fds, e)
	return len(p.fds) - 1, true
}

func (p *Process) fd(n uint32) *fdEntry {
	if int(n) >= len(p.fds) {
		return nil
	}
	return p.fds[n]
}

// Output returns everything the process wrote to the console.
func (p *Process) Output() string { return string(p.Stdout) }
