package bench

import (
	"math"
	"strings"
	"testing"

	"asc/internal/workload"
)

func TestTable1(t *testing.T) {
	data, err := Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(data.Rows) != 3 {
		t.Fatalf("rows = %d", len(data.Rows))
	}
	for _, r := range data.Rows {
		// Exact reproduction for the ASC columns.
		if r.ASCLinux != r.PaperASCLnx {
			t.Errorf("%s ASC/Linux = %d, paper %d", r.Program, r.ASCLinux, r.PaperASCLnx)
		}
		if r.ASCOpenBSD != r.PaperASCBSD {
			t.Errorf("%s ASC/OpenBSD = %d, paper %d", r.Program, r.ASCOpenBSD, r.PaperASCBSD)
		}
		// Trained policies must be strictly smaller than ASC (the
		// paper's central claim for Table 1).
		if r.SystraceBSD >= r.ASCOpenBSD {
			t.Errorf("%s systrace %d >= ASC %d", r.Program, r.SystraceBSD, r.ASCOpenBSD)
		}
	}
	if s := data.Render(); !strings.Contains(s, "bison") {
		t.Errorf("render: %q", s)
	}
}

func TestTable2(t *testing.T) {
	data, err := Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	got := make(map[string]Table2Row, len(data.Rows))
	for _, r := range data.Rows {
		got[r.Name] = r
	}
	// The paper's ASC-only rows.
	ascOnly := []string{"__syscall", "fcntl", "fstatfs", "getdirentries", "getpid",
		"gettimeofday", "kill", "madvise", "nanosleep", "sendto", "sigaction",
		"socket", "sysconf", "uname", "writev"}
	for _, n := range ascOnly {
		r, ok := got[n]
		if !ok || !r.ASC || r.Systrace {
			t.Errorf("%s: want ASC-only, got %+v", n, r)
		}
	}
	// The paper's Systrace-only rows, with alias attribution.
	sysOnly := map[string]string{
		"close": "", "mmap": "", "readlink": "fsread",
		"mkdir": "fswrite", "rmdir": "fswrite", "unlink": "fswrite",
	}
	for n, via := range sysOnly {
		r, ok := got[n]
		if !ok || r.ASC || !r.Systrace {
			t.Errorf("%s: want Systrace-only, got %+v", n, r)
			continue
		}
		if r.Via != via {
			t.Errorf("%s: via = %q, want %q", n, r.Via, via)
		}
	}
	if len(data.Rows) != len(ascOnly)+len(sysOnly) {
		t.Errorf("table has %d rows, want %d", len(data.Rows), len(ascOnly)+len(sysOnly))
	}
}

func TestTable3(t *testing.T) {
	data, err := Table3()
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(data.Rows) != 4 {
		t.Fatalf("rows = %d", len(data.Rows))
	}
	for _, r := range data.Rows {
		if r.Sites <= r.Calls {
			t.Errorf("%s: sites %d <= calls %d", r.Program, r.Sites, r.Calls)
		}
		if r.Args == 0 || r.Auth == 0 {
			t.Errorf("%s: empty coverage %+v", r.Program, r)
		}
		// The paper reports 30-40%% of arguments statically protected;
		// accept a generous band around it.
		authPct := 100 * float64(r.Auth) / float64(r.Args)
		if authPct < 20 || authPct > 60 {
			t.Errorf("%s: auth%% = %.0f, want 20-60", r.Program, authPct)
		}
		if r.FDs == 0 {
			t.Errorf("%s: no fd-trackable arguments", r.Program)
		}
	}
	t.Log("\n" + data.Render())
}

func TestTable4(t *testing.T) {
	data, err := Table4(DefaultKey)
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if len(data.Rows) != 5 {
		t.Fatalf("rows = %d", len(data.Rows))
	}
	for _, r := range data.Rows {
		// Original costs within 15% of the paper's calibration targets.
		if rel := math.Abs(r.OrigCycles-r.PaperOrig) / r.PaperOrig; rel > 0.15 {
			t.Errorf("%s: orig %.0f vs paper %.0f (%.0f%% off)", r.Call, r.OrigCycles, r.PaperOrig, rel*100)
		}
		if r.AuthCycles <= r.OrigCycles {
			t.Errorf("%s: auth %.0f <= orig %.0f", r.Call, r.AuthCycles, r.OrigCycles)
		}
	}
	// Shape: cheap calls see large relative overhead, write(4096) small.
	byName := map[string]Table4Row{}
	for _, r := range data.Rows {
		byName[r.Call] = r
	}
	if byName["getpid"].OverheadPct < 100 {
		t.Errorf("getpid overhead %.1f%%, want large", byName["getpid"].OverheadPct)
	}
	if byName["write(4096)"].OverheadPct > 15 {
		t.Errorf("write overhead %.1f%%, want small", byName["write(4096)"].OverheadPct)
	}
	if byName["getpid"].OverheadPct <= byName["read(4096)"].OverheadPct ||
		byName["read(4096)"].OverheadPct <= byName["write(4096)"].OverheadPct {
		t.Error("overhead ordering getpid > read > write violated")
	}
	t.Log("\n" + data.Render())
}

func TestTable6Scaled(t *testing.T) {
	data, err := Table6(DefaultKey, 5) // scaled down for unit tests
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	if len(data.Rows) != 9 {
		t.Fatalf("rows = %d", len(data.Rows))
	}
	var maxCPU, pyramid float64
	for _, r := range data.Rows {
		if r.OverheadPct <= 0 {
			t.Errorf("%s: overhead %.2f <= 0", r.Program, r.OverheadPct)
		}
		// Within 2 percentage points of the paper's number.
		if d := math.Abs(r.OverheadPct - r.PaperOverhead); d > 2.0 {
			t.Errorf("%s: overhead %.2f vs paper %.2f", r.Program, r.OverheadPct, r.PaperOverhead)
		}
		if r.Class == "CPU" && r.OverheadPct > maxCPU {
			maxCPU = r.OverheadPct
		}
		if r.Program == "pyramid" {
			pyramid = r.OverheadPct
		}
	}
	// Crossover shape: the syscall-bound pyramid dominates every
	// CPU-bound program.
	if pyramid <= maxCPU {
		t.Errorf("pyramid %.2f%% <= max CPU-bound %.2f%%", pyramid, maxCPU)
	}
	t.Log("\n" + data.Render())
}

func TestAndrewBench(t *testing.T) {
	data, err := Andrew(DefaultKey, workload.AndrewConfig{Files: 4, FileSize: 16 << 10})
	if err != nil {
		t.Fatalf("Andrew: %v", err)
	}
	if data.OverheadPct <= 0 || data.OverheadPct > 8 {
		t.Errorf("overhead = %.2f%%, want low single digits", data.OverheadPct)
	}
	t.Log("\n" + data.Render())
}

func TestEnforcementComparison(t *testing.T) {
	data, err := EnforcementComparison(DefaultKey)
	if err != nil {
		t.Fatalf("EnforcementComparison: %v", err)
	}
	cost := map[string]float64{}
	for _, r := range data.Rows {
		cost[r.Mechanism] = r.CyclesPerCall
	}
	if !(cost["no monitoring"] < cost["in-kernel policy table"] &&
		cost["in-kernel policy table"] < cost["authenticated system calls"] &&
		cost["authenticated system calls"] < cost["user-space policy daemon"]) {
		t.Errorf("ordering violated: %+v", cost)
	}
	// The enforcement action only differs on violation, so a compliant
	// workload pays identical per-call cost in Kill and Deny modes.
	if cost["authenticated system calls (deny mode)"] != cost["authenticated system calls"] {
		t.Errorf("deny mode cost %v != kill mode cost %v",
			cost["authenticated system calls (deny mode)"], cost["authenticated system calls"])
	}
	t.Log("\n" + data.Render())
}
