#!/bin/sh
# net.sh — regenerate BENCH_net.json: the network fleet sweep (echo+KV
# server + 1/2/4/8 load-gen clients, enforcement off/on/cached, worker
# sweep on the cached configuration). The figures are computed from
# deterministic per-process cycle counts, so two consecutive runs
# produce byte-identical JSON.
#
# Refuses to overwrite an uncommitted BENCH_net.json unless FORCE=1,
# so a locally modified artifact is never clobbered silently.
set -eu

cd "$(dirname "$0")/.."

if git diff --quiet -- BENCH_net.json 2>/dev/null; then
    : # clean (or not yet tracked with changes): safe to regenerate
elif [ "${FORCE:-0}" = "1" ]; then
    echo "net.sh: BENCH_net.json is dirty; overwriting (FORCE=1)" >&2
else
    echo "net.sh: BENCH_net.json has uncommitted changes; commit them or rerun with FORCE=1" >&2
    exit 1
fi

go run ./cmd/ascbench -table net -json BENCH_net.json
echo "wrote BENCH_net.json"
