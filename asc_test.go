package asc_test

import (
	"strings"
	"testing"

	"asc"
)

const helloSrc = `
        .text
        .global main
main:
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "hello, world\n"
`

func TestQuickStart(t *testing.T) {
	exe, err := asc.BuildProgram("hello", helloSrc, asc.Linux)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	sys, err := asc.NewSystem(asc.SystemConfig{Key: asc.NewKey("demo")})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	hardened, pp, rep, err := sys.Install(exe, "hello")
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if !hardened.Authenticated {
		t.Error("installed binary not marked authenticated")
	}
	if len(pp.Sites) == 0 || rep.Sites == 0 {
		t.Errorf("policy/report empty: %d sites, %+v", len(pp.Sites), rep)
	}
	res, err := sys.Exec(hardened, "hello", "")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Killed || res.Output != "hello, world\n" || res.ExitCode != 0 {
		t.Errorf("result: %+v", res)
	}
	if res.Verified == 0 {
		t.Error("no calls were verified")
	}
	// The installed copy is reachable through the filesystem too.
	res2, err := sys.ExecPath("/bin/hello", "")
	if err != nil {
		t.Fatalf("ExecPath: %v", err)
	}
	if res2.Output != "hello, world\n" {
		t.Errorf("ExecPath output %q", res2.Output)
	}
}

func TestUnauthenticatedBinaryKilled(t *testing.T) {
	exe, err := asc.BuildProgram("hello", helloSrc, asc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := asc.NewSystem(asc.SystemConfig{Key: asc.NewKey("demo")})
	if err != nil {
		t.Fatal(err)
	}
	// Run the *unprotected* binary on the enforcing system: an
	// authenticated binary flag is absent, so its plain SYSCALLs are
	// treated normally... but an optimized, still-unauthenticated
	// binary is allowed through (its flag is false). The monitor only
	// polices binaries admitted by the installer, matching the paper's
	// per-binary model. An installed binary with a *wrong key* is the
	// failure case:
	wrongKey, _, _, err := asc.Install(exe, "hello", asc.InstallOptions{Key: asc.NewKey("other")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Exec(wrongKey, "hello", "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed || res.Reason != asc.KillBadCallMAC {
		t.Errorf("result: %+v", res)
	}
	if len(sys.Audit()) == 0 {
		t.Error("no audit entry")
	}
}

func TestGeneratePolicyAndMetapolicy(t *testing.T) {
	exe, err := asc.BuildProgram("hello", helloSrc, asc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	pp, rep, err := asc.GeneratePolicy(exe, "hello", asc.Linux)
	if err != nil {
		t.Fatalf("GeneratePolicy: %v", err)
	}
	names := pp.DistinctNames()
	joined := strings.Join(names, ",")
	for _, want := range []string{"write", "exit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("policy %v missing %s", names, want)
		}
	}
	if rep.DistinctCalls != len(names) {
		t.Errorf("report calls %d != %d", rep.DistinctCalls, len(names))
	}
	entries := asc.CheckMetapolicy(pp, asc.Metapolicy{"write": {Args: []int{1}}})
	// write's buffer argument is a static address here, so no holes.
	_ = entries
}

func TestOptimizeBaseline(t *testing.T) {
	exe, err := asc.BuildProgram("hello", helloSrc, asc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := asc.Optimize(exe)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if opt.Authenticated {
		t.Error("optimized baseline marked authenticated")
	}
	sys, err := asc.NewSystem(asc.SystemConfig{Permissive: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Exec(opt, "hello", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "hello, world\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestBinarySerialization(t *testing.T) {
	exe, err := asc.BuildProgram("hello", helloSrc, asc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exe.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := asc.ReadBinary(b)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if back.Entry != exe.Entry || len(back.Sections) != len(exe.Sections) {
		t.Error("round trip mismatch")
	}
}

func TestNewKey(t *testing.T) {
	k := asc.NewKey("short")
	if len(k) != asc.KeySize {
		t.Fatalf("len = %d", len(k))
	}
	long := asc.NewKey("this passphrase is much longer than sixteen bytes")
	if len(long) != asc.KeySize {
		t.Fatalf("len = %d", len(long))
	}
}
