package kernel

import (
	"strings"
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/installer"
	"asc/internal/libc"
	"asc/internal/linker"
	"asc/internal/sys"
	"asc/internal/vfs"
)

var testKey = []byte("0123456789abcdef")

func buildExe(t testing.TB, src string) *binfmt.File {
	t.Helper()
	main, err := asm.Assemble("main.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	lib, err := libc.Objects(libc.Linux)
	if err != nil {
		t.Fatalf("libc: %v", err)
	}
	exe, err := linker.Link([]*binfmt.File{main}, lib)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return exe
}

func buildAuthExe(t testing.TB, src string) *binfmt.File {
	t.Helper()
	exe := buildExe(t, src)
	out, _, _, err := installer.Install(exe, "test", installer.Options{Key: testKey})
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	return out
}

func newKernel(t testing.TB, opts ...Option) *Kernel {
	t.Helper()
	fs := vfs.New()
	for _, d := range []string{"/tmp", "/etc", "/bin", "/data"} {
		if err := fs.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteFile("/etc/passwd", []byte("root:0:0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	k, err := New(fs, testKey, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return k
}

func runProc(t testing.TB, k *Kernel, f *binfmt.File, stdin string) *Process {
	t.Helper()
	p, err := k.Spawn(f, "test")
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	p.Stdin = []byte(stdin)
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return p
}

const fileIOSrc = `
        .text
        .global main
main:
        ; open("/tmp/out", O_CREAT|O_WRONLY, 0644)
        MOVI r1, path
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r10, r0
        ; write(fd, msg, 6)
        MOV r1, r10
        MOVI r2, msg
        MOVI r3, 6
        CALL write
        ; close(fd)
        MOV r1, r10
        CALL close
        ; puts to stdout
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
path:   .asciz "/tmp/out"
msg:    .asciz "hello\n"
`

func TestPlainBinaryPermissive(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := runProc(t, k, buildExe(t, fileIOSrc), "")
	if !p.Exited || p.Killed {
		t.Fatalf("exited=%v killed=%v", p.Exited, p.Killed)
	}
	if p.Output() != "hello\n" {
		t.Errorf("stdout = %q", p.Output())
	}
	b, err := k.FS.ReadFile("/tmp/out")
	if err != nil || string(b) != "hello\n" {
		t.Errorf("/tmp/out = %q, %v", b, err)
	}
}

func TestAuthenticatedBinaryEnforced(t *testing.T) {
	k := newKernel(t)
	p := runProc(t, k, buildAuthExe(t, fileIOSrc), "")
	if p.Killed {
		t.Fatalf("authenticated binary killed: %v (audit: %v)", p.KilledBy, &k.Audit)
	}
	if !p.Exited || p.Code != 0 {
		t.Fatalf("exit: %v code=%d", p.Exited, p.Code)
	}
	if p.Output() != "hello\n" {
		t.Errorf("stdout = %q", p.Output())
	}
	if b, err := k.FS.ReadFile("/tmp/out"); err != nil || string(b) != "hello\n" {
		t.Errorf("/tmp/out = %q, %v", b, err)
	}
	if p.VerifyCount < 5 {
		t.Errorf("VerifyCount = %d, want >= 5 (open,write,close,write,exit)", p.VerifyCount)
	}
	if k.Audit.Len() != 0 {
		t.Errorf("audit log not empty: %v", &k.Audit)
	}
}

func TestAuthenticatedOverheadCharged(t *testing.T) {
	src := `
        .text
        .global main
main:
        CALL getpid
        MOVI r0, 0
        RET
`
	kPlain := newKernel(t, WithMode(Permissive))
	pPlain := runProc(t, kPlain, buildExe(t, src), "")
	kAuth := newKernel(t)
	pAuth := runProc(t, kAuth, buildAuthExe(t, src), "")
	if pAuth.CPU.Cycles <= pPlain.CPU.Cycles {
		t.Errorf("authenticated cycles %d <= plain %d", pAuth.CPU.Cycles, pPlain.CPU.Cycles)
	}
	// Two verified calls (getpid + exit) at roughly 4k cycles each.
	overhead := pAuth.CPU.Cycles - pPlain.CPU.Cycles
	if overhead < 6000 || overhead > 12000 {
		t.Errorf("overhead = %d cycles for 2 calls, want ~8k", overhead)
	}
}

func TestUnauthenticatedCallKilled(t *testing.T) {
	// Hand-rolled SYSCALL with unknown number: the installer warns and
	// leaves it plain; the kernel must kill at runtime.
	src := `
        .text
        .global main
main:
        LOAD r0, [sp+0]
        SYSCALL
        MOVI r0, 0
        RET
`
	k := newKernel(t)
	p := runProc(t, k, buildAuthExe(t, src), "")
	if !p.Killed || p.KilledBy != KillUnauthenticated {
		t.Fatalf("killed=%v by=%q", p.Killed, p.KilledBy)
	}
	if k.Audit.Len() != 1 {
		t.Fatalf("audit: %v", &k.Audit)
	}
}

func TestTamperedArgumentKilled(t *testing.T) {
	// Simulate a non-control-data attack: corrupt the register argument
	// of a constrained immediate before the call executes. We do this by
	// flipping the constrained argument value in the text image (the
	// MOVI imm), which diverges from the MACed policy value.
	exe := buildAuthExe(t, `
        .text
        .global main
main:
        MOVI r1, 30
        CALL alarm
        MOVI r0, 0
        RET
`)
	// Find "MOVI r1, 30" in text and change it to 31.
	text := exe.Section(binfmt.SecText)
	patched := false
	for off := 0; off+8 <= len(text.Data); off += 8 {
		// op=MOVI(4) rd=r1(1) imm=30
		if text.Data[off] == 4 && text.Data[off+1] == 1 && text.Data[off+4] == 30 {
			text.Data[off+4] = 31
			patched = true
			break
		}
	}
	if !patched {
		t.Fatal("could not find MOVI r1, 30 to patch")
	}
	k := newKernel(t)
	p := runProc(t, k, exe, "")
	if !p.Killed || p.KilledBy != KillBadCallMAC {
		t.Fatalf("killed=%v by=%q audit=%v", p.Killed, p.KilledBy, &k.Audit)
	}
}

func TestTamperedStringKilled(t *testing.T) {
	// Corrupt the authenticated string bytes in .auth (simulating an
	// attacker overwriting "/etc/passwd" with another path).
	exe := buildAuthExe(t, `
        .text
        .global main
main:
        MOVI r1, path
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOVI r0, 0
        RET
        .rodata
path:   .asciz "/etc/passwd"
`)
	auth := exe.Section(binfmt.SecAuth)
	idx := strings.Index(string(auth.Data), "/etc/passwd")
	if idx < 0 {
		t.Fatal("AS copy not found in .auth")
	}
	copy(auth.Data[idx:], "/etc/shadow")
	k := newKernel(t)
	p := runProc(t, k, exe, "")
	if !p.Killed || p.KilledBy != KillBadString {
		t.Fatalf("killed=%v by=%q audit=%v", p.Killed, p.KilledBy, &k.Audit)
	}
}

func TestControlFlowViolationKilled(t *testing.T) {
	// Corrupt the policy state (lastBlock) before the first call: the
	// memory checker must catch the stale/forged state.
	exe := buildAuthExe(t, `
        .text
        .global main
main:
        CALL getpid
        MOVI r0, 0
        RET
`)
	auth := exe.Section(binfmt.SecAuth)
	// Policy state lives at offset 0: {lastBlock u32, lbMAC}. Forge
	// lastBlock without knowing the key.
	auth.Data[0] = 99
	k := newKernel(t)
	p := runProc(t, k, exe, "")
	if !p.Killed || p.KilledBy != KillBadState {
		t.Fatalf("killed=%v by=%q audit=%v", p.Killed, p.KilledBy, &k.Audit)
	}
}

func TestWrongKeyKilled(t *testing.T) {
	exe := buildExe(t, fileIOSrc)
	out, _, _, err := installer.Install(exe, "test", installer.Options{Key: []byte("wrongkey00000000")})
	if err != nil {
		t.Fatal(err)
	}
	k := newKernel(t) // kernel uses testKey
	p := runProc(t, k, out, "")
	if !p.Killed || p.KilledBy != KillBadCallMAC {
		t.Fatalf("killed=%v by=%q", p.Killed, p.KilledBy)
	}
}

func TestSyscallSuite(t *testing.T) {
	// A broad program exercising many handlers end to end.
	src := `
        .text
        .global main
main:
        ; mkdir /tmp/d
        MOVI r1, dirp
        MOVI r2, 493
        CALL mkdir
        ; chdir /tmp/d
        MOVI r1, dirp
        CALL chdir
        ; getcwd into its own buffer
        MOVI r1, buf2
        MOVI r2, 64
        CALL getcwd
        ; create a file with a relative path
        MOVI r1, relp
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r10, r0
        MOV r1, r10
        MOVI r2, msg
        MOVI r3, 4
        CALL write
        ; lseek back and read
        MOV r1, r10
        MOVI r2, 0
        MOVI r3, 0
        CALL lseek
        MOV r1, r10
        MOVI r2, buf
        MOVI r3, 4
        CALL read
        ; print what we read
        MOVI r1, buf
        CALL puts
        ; stat the file
        MOVI r1, relp
        MOVI r2, buf
        CALL stat
        ; symlink + readlink
        MOVI r1, relp
        MOVI r2, lnk
        CALL symlink
        MOVI r1, lnk
        MOVI r2, buf
        MOVI r3, 64
        CALL readlink
        ; rename
        MOVI r1, relp
        MOVI r2, relp2
        CALL rename
        ; unlink the renamed file
        MOVI r1, relp2
        CALL unlink
        MOVI r0, 0
        RET
        .rodata
dirp:   .asciz "/tmp/d"
relp:   .asciz "f.txt"
relp2:  .asciz "g.txt"
lnk:    .asciz "/tmp/d/link"
msg:    .asciz "abcd"
        .bss
buf:    .space 64
buf2:   .space 64
`
	k := newKernel(t)
	p := runProc(t, k, buildAuthExe(t, src), "")
	if p.Killed {
		t.Fatalf("killed: %v (audit %v)", p.KilledBy, &k.Audit)
	}
	if got := p.Output(); got != "abcd" {
		t.Errorf("output = %q, want abcd", got)
	}
	if k.FS.Exists("/tmp/d/g.txt") {
		t.Error("renamed file not unlinked")
	}
	// The symlink dangles after the rename; Lstat sees it.
	if _, err := k.FS.Lstat("/tmp/d/link"); err != nil {
		t.Errorf("symlink missing: %v", err)
	}
}

func TestBrkAndMalloc(t *testing.T) {
	src := `
        .text
        .global main
main:
        MOVI r1, 64
        CALL malloc
        MOV r10, r0
        MOVI r7, 0xabcd
        STORE [r10+0], r7
        LOAD r8, [r10+0]
        MOVI r9, 0xabcd
        BNE r8, r9, .fail
        MOVI r1, 128
        CALL malloc
        BEQ r0, r10, .fail
        MOVI r0, 0
        RET
.fail:
        MOVI r0, 1
        RET
`
	k := newKernel(t)
	p := runProc(t, k, buildAuthExe(t, src), "")
	if p.Killed {
		t.Fatalf("killed: %v", p.KilledBy)
	}
	if p.Code != 0 {
		t.Errorf("exit code %d, want 0 (malloc works)", p.Code)
	}
}

func TestExecve(t *testing.T) {
	k := newKernel(t)
	// Install a tiny target program into the VFS.
	target := buildAuthExe(t, `
        .text
        .global main
main:
        MOVI r1, msg
        CALL puts
        MOVI r0, 42
        RET
        .rodata
msg:    .asciz "child\n"
`)
	tb, err := target.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.FS.WriteFile("/bin/child", tb, 0o755); err != nil {
		t.Fatal(err)
	}
	parent := buildAuthExe(t, `
        .text
        .global main
main:
        MOVI r1, prog
        MOVI r2, 0
        MOVI r3, 0
        CALL execve
        MOVI r0, 1      ; only reached if execve failed
        RET
        .rodata
prog:   .asciz "/bin/child"
`)
	p := runProc(t, k, parent, "")
	if p.Killed {
		t.Fatalf("killed: %v (audit %v)", p.KilledBy, &k.Audit)
	}
	if p.Output() != "child\n" || p.Code != 42 {
		t.Errorf("output=%q code=%d, want child/42", p.Output(), p.Code)
	}
}

func TestGetsOverflowStillWorks(t *testing.T) {
	// Normal (non-attack) use of gets under enforcement.
	src := `
        .text
        .global main
main:
        SUBI sp, sp, 32
        MOV r1, sp
        CALL gets
        MOV r1, sp
        CALL puts
        ADDI sp, sp, 32
        MOVI r0, 0
        RET
`
	k := newKernel(t)
	exe := buildAuthExe(t, src)
	p, err := k.Spawn(exe, "gets")
	if err != nil {
		t.Fatal(err)
	}
	p.Stdin = []byte("hi there\n")
	if err := k.Run(p, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("killed: %v", p.KilledBy)
	}
	if p.Output() != "hi there" {
		t.Errorf("output = %q", p.Output())
	}
}

func TestOpenBSDIndirectDispatch(t *testing.T) {
	fs := vfs.New()
	k, err := New(fs, testKey, WithMode(Permissive), WithPersonality(OpenBSD))
	if err != nil {
		t.Fatal(err)
	}
	main, err := asm.Assemble("main.s", `
        .text
        .global main
main:
        MOVI r1, 0
        MOVI r2, 8192
        MOVI r3, 3
        MOVI r4, 0
        MOVI r5, 0
        CALL mmap
        MOV r10, r0
        MOVI r7, 7
        STORE [r10+0], r7   ; mapping is usable
        MOVI r0, 0
        RET
`)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := libc.Objects(libc.OpenBSD)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{main}, lib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(exe, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p, 1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.Code != 0 {
		t.Errorf("exit %d", p.Code)
	}
	// Linux personality must reject __syscall.
	k2 := newKernel(t, WithMode(Permissive))
	p2, err := k2.Spawn(exe, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.Run(p2, 1_000_000); err == nil {
		// mmap returned -ENOSYS; the STORE to that address faults, or
		// the program exits abnormally. Either way the mapping failed.
		if p2.Code == 0 {
			t.Error("Linux personality dispatched __syscall")
		}
	}
}

func TestTraceCollection(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p, err := k.Spawn(buildExe(t, fileIOSrc), "t")
	if err != nil {
		t.Fatal(err)
	}
	p.DoTrace = true
	if err := k.Run(p, 10_000_000); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range p.Trace {
		names = append(names, sys.Name(e.Num))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"open", "write", "close", "exit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace %v missing %s", names, want)
		}
	}
}

func TestPipes(t *testing.T) {
	src := `
        .text
        .global main
main:
        MOVI r1, fdbuf
        CALL pipe
        ; write "xy" into the pipe
        MOVI r7, fdbuf
        LOAD r1, [r7+4]
        MOVI r2, msg
        MOVI r3, 2
        CALL write
        ; read it back
        MOVI r7, fdbuf
        LOAD r1, [r7+0]
        MOVI r2, buf
        MOVI r3, 2
        CALL read
        MOVI r1, buf
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "xy"
        .bss
fdbuf:  .space 8
buf:    .space 8
`
	k := newKernel(t)
	p := runProc(t, k, buildAuthExe(t, src), "")
	if p.Killed {
		t.Fatalf("killed: %v", p.KilledBy)
	}
	if p.Output() != "xy" {
		t.Errorf("output = %q", p.Output())
	}
}
