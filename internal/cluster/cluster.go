// Package cluster scales the authenticated-system-call deployment
// horizontally: N kernel instances ("nodes") sharing one durable
// filesystem and one MAC key, wired together over the internal/net
// fabric, with a fleet Director that places processes across nodes,
// watches them with heartbeats, and moves processes between nodes —
// warm failover from sealed checkpoints when a node dies, an explicit
// export/import handshake when a migration is planned.
//
// The trust argument is the paper's, extended across machines. State
// that leaves a kernel's hands — here, a sealed checkpoint crossing the
// fabric inside a migration envelope — is never trusted on the way back
// in: the importing kernel re-verifies the envelope seal, the
// destination-node binding, the admitted epoch, the program tag, and
// the control-flow/capability MACs before the process runs one
// instruction. What cryptography cannot decide is liveness — whether
// this epoch is *still allowed* to run anywhere — so the cluster keeps
// a Fence: trusted control-plane state (like ckpt.Store's epochs, held
// outside every blob) recording which epoch of each process was
// admitted where. The same sealed blob delivered to two nodes fails the
// fence on the second delivery; an exporting node is fenced at export,
// so an epoch never runs twice concurrently.
//
// # Clock and concurrency model
//
// The cluster runs on a virtual clock: the Director advances in ticks,
// each tick running every live process for one slice of modeled cycles
// and then exchanging heartbeats. Node control planes (heartbeat
// replies, migration staging) are pumped synchronously by the Director
// — in a real deployment each node's control loop is a goroutine; here
// the synchronous pump keeps every run deterministic, so fault
// campaigns and benchmarks are byte-stable. The data plane is the
// nodes' kernels, which are the same race-clean kernels the SMP
// scheduler drives.
package cluster

import (
	"encoding/binary"
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/ckpt"
	"asc/internal/core"
	"asc/internal/kernel"
	anet "asc/internal/net"
	"asc/internal/vfs"
)

// NodeID identifies one kernel node. IDs are 1-based so the zero value
// never names a node.
type NodeID uint32

// controlBase is the first fabric port used for node control planes.
const controlBase = 7000

// ControlPort maps a node ID to its heartbeat/migration port on the
// cluster fabric.
func ControlPort(id NodeID) uint16 { return controlBase + uint16(id) }

// Control-protocol message kinds (first 4 bytes of each fabric
// message). Payloads are little-endian.
const (
	msgPing   = "ping" // + seq u64
	msgPong   = "pong" // + seq u64 + node u32
	msgMigHdr = "mig0" // + epoch u64 + blobLen u32 + nchunks u32 + name
	msgStaged = "stag" // + epoch u64 + name
	msgCommit = "cmt0"
	msgAbort  = "abr0"
	msgDone   = "done"
	msgReject = "rej0" // + canonical reason string
)

// migChunk bounds one fabric message of migration payload; well under
// net.MaxMessage so headers never push a frame over the limit.
const migChunk = 3072

// Node is one kernel instance: a core.System of its own (kernel, MAC
// key, enforcement mode) mounted on the cluster's shared durable
// filesystem, plus a control-plane listener on the cluster fabric.
type Node struct {
	ID  NodeID
	Sys *core.System

	fabric *anet.Network
	lis    *anet.Listener

	crashed bool
	// delayBeats drops replies to the next N heartbeats without
	// crashing — the fault campaign's false-suspicion injection.
	delayBeats int

	// sessions are control-plane conversations in flight, keyed by the
	// node-side connection.
	sessions map[*anet.Conn]*session

	// staged is the migration awaiting commit, if any.
	staged *stagedImport

	// resolve maps a process name to its installed executable; the
	// Director supplies it. Nodes do not trust wire metadata for
	// binaries — the program tag inside the sealed checkpoint is
	// re-verified against the resolved executable at import.
	resolve exeResolver

	// adopted is the process created by the most recent committed
	// import, for the Director to collect.
	adopted *kernel.Process

	// owned tracks the live processes placed on this node by name. It
	// is node-side ground truth a *takeover* director may re-attach to
	// (the processes survived — only the director died); a node crash
	// clears it, so a crashed node can never offer stale processes.
	owned map[string]*kernel.Process
}

// exeResolver maps a process name to its installed executable.
type exeResolver func(name string) (*binfmt.File, bool)

// session is one control-plane conversation.
type session struct {
	conn *anet.Conn
	// migration assembly state
	mig       bool
	epoch     uint64
	name      string
	blobLen   int
	nchunks   int
	chunks    int
	blob      []byte
	staged    bool
	committed bool
}

// stagedImport is a verified-but-uncommitted migration.
type stagedImport struct {
	sess  *session
	epoch uint64
	name  string
	blob  []byte
}

// NewNode builds a node with its own kernel over the shared filesystem
// and binds its control port on the fabric.
func NewNode(id NodeID, fs *vfs.FS, fabric *anet.Network, key []byte, enf kernel.Enforcement, kopts ...kernel.Option) (*Node, error) {
	sys, err := core.NewSystem(core.Config{
		Key:           key,
		FS:            fs,
		Enforcement:   enf,
		KernelOptions: kopts,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", id, err)
	}
	lis, err := fabric.Listen(ControlPort(id), anet.MaxBacklog)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d control port: %w", id, err)
	}
	return &Node{
		ID:       id,
		Sys:      sys,
		fabric:   fabric,
		lis:      lis,
		sessions: make(map[*anet.Conn]*session),
		owned:    make(map[string]*kernel.Process),
	}, nil
}

// own records a live process placed on this node; disown forgets it.
func (nd *Node) own(name string, p *kernel.Process) { nd.owned[name] = p }
func (nd *Node) disown(name string)                 { delete(nd.owned, name) }

// Owned returns the live process this node holds under name (nil when
// none) — what a takeover director re-attaches to.
func (nd *Node) Owned(name string) *kernel.Process {
	if nd.crashed {
		return nil
	}
	return nd.owned[name]
}

// Crash kills the node: the control port unbinds (heartbeats start
// failing with connection-refused), in-flight control conversations
// drop, and the data plane freezes — processes homed here stop
// advancing and their un-checkpointed state is lost. The shared
// filesystem and the per-process checkpoint stores survive; they are
// the cluster's durable storage.
func (nd *Node) Crash() {
	if nd.crashed {
		return
	}
	nd.crashed = true
	nd.lis.Close()
	for c := range nd.sessions {
		c.Close()
	}
	nd.sessions = make(map[*anet.Conn]*session)
	nd.staged = nil
	nd.owned = make(map[string]*kernel.Process)
}

// Alive reports whether the node has not crashed. It is a modeling
// accessor for tests and benchmarks; the Director's failure detection
// uses heartbeats over the fabric, never this method.
func (nd *Node) Alive() bool { return !nd.crashed }

// DelayHeartbeats makes the node drop (not answer) the next n
// heartbeat pings while staying otherwise healthy — a slow or
// partitioned node that has not failed.
func (nd *Node) DelayHeartbeats(n int) { nd.delayBeats += n }

// serve runs one synchronous pump of the node's control plane: accept
// every pending connection, then drain every pending message on every
// open session. The Director calls it after each control-plane send, so
// bounded fabric buffers never fill and the virtual clock never blocks.
func (nd *Node) serve() {
	if nd.crashed {
		return
	}
	for {
		c, err := nd.lis.Accept(nil)
		if err != nil {
			break // empty backlog (or closed): nothing new
		}
		nd.sessions[c] = &session{conn: c}
	}
	for c, s := range nd.sessions {
		nd.drain(c, s)
	}
}

// drain consumes every pending message on one session.
func (nd *Node) drain(c *anet.Conn, s *session) {
	for {
		msg, err := c.Recv(nil)
		if err != nil {
			if err == anet.ErrWouldBlock {
				return // nothing pending; keep the session
			}
			nd.drop(c)
			return
		}
		if msg == nil { // peer closed: end of conversation
			nd.drop(c)
			return
		}
		if !nd.handle(c, s, msg) {
			nd.drop(c)
			return
		}
	}
}

// drop closes and forgets one session, discarding any staged import
// tied to it.
func (nd *Node) drop(c *anet.Conn) {
	if nd.staged != nil && nd.staged.sess == nd.sessions[c] {
		nd.staged = nil
	}
	c.Close()
	delete(nd.sessions, c)
}

// handle dispatches one control message; false tears the session down.
func (nd *Node) handle(c *anet.Conn, s *session, msg []byte) bool {
	if len(msg) < 4 {
		return false
	}
	kind := string(msg[:4])
	body := msg[4:]
	switch kind {
	case msgPing:
		if len(body) != 8 {
			return false
		}
		if nd.delayBeats > 0 {
			// Alive but slow: swallow the ping. The director's read
			// times out (ErrWouldBlock) and counts a missed beat.
			nd.delayBeats--
			return true
		}
		reply := make([]byte, 0, 16)
		reply = append(reply, msgPong...)
		reply = append(reply, body[:8]...)
		reply = binary.LittleEndian.AppendUint32(reply, uint32(nd.ID))
		return c.Send(reply, nil) == nil
	case msgMigHdr:
		if s.mig || len(body) < 16 {
			return false
		}
		s.mig = true
		s.epoch = binary.LittleEndian.Uint64(body)
		s.blobLen = int(binary.LittleEndian.Uint32(body[8:]))
		s.nchunks = int(binary.LittleEndian.Uint32(body[12:]))
		s.name = string(body[16:])
		if s.blobLen < 0 || s.nchunks < 0 || s.blobLen > s.nchunks*migChunk {
			return false
		}
		s.blob = make([]byte, 0, s.blobLen)
		if s.nchunks == 0 {
			return nd.stage(c, s)
		}
		return true
	case msgCommit:
		return nd.commit(c, s)
	case msgAbort:
		if nd.staged != nil && nd.staged.sess == s {
			nd.staged = nil
		}
		return true
	default:
		if s.mig && !s.staged {
			// A payload chunk.
			s.blob = append(s.blob, msg...)
			s.chunks++
			if s.chunks < s.nchunks {
				return true
			}
			return nd.stage(c, s)
		}
		return false
	}
}

// reject replies with a canonical rejection reason.
func (nd *Node) reject(c *anet.Conn, reason string) bool {
	return c.Send(append([]byte(msgReject), reason...), nil) == nil
}

// stage verifies a fully assembled migration envelope — seal,
// destination-node binding, name consistency — and holds it for the
// commit decision. No guest state is built yet.
func (nd *Node) stage(c *anet.Conn, s *session) bool {
	s.staged = true
	if len(s.blob) != s.blobLen {
		return nd.reject(c, ckpt.ReasonTruncated)
	}
	m, err := nd.Sys.Kernel.PeekMigration(s.blob)
	if err != nil {
		return nd.reject(c, ckpt.Reason(err))
	}
	if m.Dst != uint32(nd.ID) {
		return nd.reject(c, ckpt.ReasonNode)
	}
	if m.Name != s.name || m.Epoch != s.epoch {
		return nd.reject(c, ckpt.ReasonMalformed)
	}
	nd.staged = &stagedImport{sess: s, epoch: m.Epoch, name: m.Name, blob: s.blob}
	reply := make([]byte, 0, 12+len(m.Name))
	reply = append(reply, msgStaged...)
	reply = binary.LittleEndian.AppendUint64(reply, m.Epoch)
	reply = append(reply, m.Name...)
	return c.Send(reply, nil) == nil
}

// commit imports the staged migration through the kernel's full
// verification pipeline and answers done or a classified rejection.
func (nd *Node) commit(c *anet.Conn, s *session) bool {
	st := nd.staged
	if st == nil || st.sess != s {
		return nd.reject(c, "no staged migration")
	}
	nd.staged = nil
	exe, ok := nd.resolve(st.name)
	if !ok {
		return nd.reject(c, "unknown program")
	}
	p, err := nd.Sys.Kernel.Import(exe, uint32(nd.ID), st.blob, st.epoch)
	if err != nil {
		return nd.reject(c, ckpt.Reason(err))
	}
	s.committed = true
	nd.adopted = p
	return c.Send([]byte(msgDone), nil) == nil
}
