GO ?= go

.PHONY: build test race bench smp ckpt fault net batch cluster mem check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the SMP gate: the packages that share kernel state across
# goroutines must be clean under the race detector.
race:
	$(GO) test -race ./internal/sched/... ./internal/kernel/... ./internal/core/... \
		./internal/fault/... ./internal/bench/... ./internal/net/... ./internal/workload/... \
		./internal/cluster/... ./internal/durable/... ./internal/vm/... ./internal/ckpt/...

bench:
	$(GO) test -run '^$$' -bench 'SyscallPlain|SyscallVerified|VerifyAllocs' \
		-benchtime 2x ./internal/kernel

# smp regenerates BENCH_smp.json (the 1/2/4/8-worker throughput sweep).
# The script refuses to overwrite a dirty BENCH_smp.json unless FORCE=1.
smp:
	sh scripts/smp.sh

# ckpt regenerates BENCH_ckpt.json (the crash-recovery cadence sweep).
# The script refuses to overwrite a dirty BENCH_ckpt.json unless FORCE=1.
ckpt:
	sh scripts/ckpt.sh

# fault runs the deterministic fault-injection campaign and emits the
# machine-readable matrix (same seed -> byte-identical JSON).
fault:
	$(GO) run ./cmd/ascfault -seed 1 -trials 3 -workers 4 -json BENCH_fault.json

# net regenerates BENCH_net.json (the network fleet sweep: clients x
# workers under enforcement off/on/cached). The script refuses to
# overwrite a dirty BENCH_net.json unless FORCE=1.
net:
	sh scripts/net.sh

# batch regenerates BENCH_batch.json (the group-commit sweep: burst
# size x cache mode on an 8-process getpid fleet). The script refuses
# to overwrite a dirty BENCH_batch.json unless FORCE=1.
batch:
	sh scripts/batch.sh

# cluster regenerates BENCH_cluster.json (the multi-node failover sweep:
# cluster width x heartbeat cadence with node 1 crashed mid-run, plus
# the director-takeover arm on the durable control plane). The script
# refuses to overwrite a dirty BENCH_cluster.json unless FORCE=1.
cluster:
	sh scripts/cluster.sh

# mem regenerates BENCH_mem.json (the paged-memory working-set sweep:
# resident budget x working set with the authenticated swap device off,
# enforced, and enforced+cached). The script refuses to overwrite a
# dirty BENCH_mem.json unless FORCE=1.
mem:
	sh scripts/mem.sh

# check is the full gate: gofmt, vet, build, tier-1 tests, the SMP race
# gate, the fuzz smokes, the kernel benchmarks, the fault campaign, the
# cached-overhead, fleet-efficiency, and takeover-recovery guards, and
# the machine-readable summaries (BENCH_kernel.json, BENCH_batch.json,
# BENCH_fault.json).
check:
	sh scripts/check.sh

clean:
	rm -f BENCH_kernel.json BENCH_fault.json BENCH_smp.json BENCH_ckpt.json \
		BENCH_net.json BENCH_batch.json BENCH_cluster.json BENCH_mem.json
