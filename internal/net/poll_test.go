package net

import (
	"bytes"
	"sync"
	"testing"
)

func TestPollFDRoundTrip(t *testing.T) {
	set := []PollFD{
		{FD: 3, Events: POLLIN},
		{FD: 4, Events: POLLIN | POLLOUT, REvents: POLLOUT},
		{FD: 0xffffffff, Events: 0xffff, REvents: 0xffff},
	}
	b := EncodePollSet(set)
	if len(b) != len(set)*PollFDSize {
		t.Fatalf("encoded length %d, want %d", len(b), len(set)*PollFDSize)
	}
	got, err := DecodePollSet(b)
	if err != nil {
		t.Fatalf("DecodePollSet: %v", err)
	}
	for i := range set {
		if got[i] != set[i] {
			t.Errorf("entry %d: %+v != %+v", i, got[i], set[i])
		}
	}
	if !bytes.Equal(EncodePollSet(got), b) {
		t.Errorf("re-encode mismatch")
	}
	if _, err := DecodePollSet(b[:5]); err == nil {
		t.Errorf("ragged length accepted")
	}
	if _, err := DecodePollSet(make([]byte, (MaxPollFDs+1)*PollFDSize)); err == nil {
		t.Errorf("oversized set accepted")
	}
	if fds, err := DecodePollSet(nil); err != nil || len(fds) != 0 {
		t.Errorf("empty set: %v, %v", fds, err)
	}
}

func TestPollReadiness(t *testing.T) {
	n := New()
	l, err := n.Listen(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	lisIn := []PollEntry{{Lis: l, WantIn: true}}
	if got := n.Poll(lisIn, false, nil); got != 0 {
		t.Fatalf("empty listener ready = %d", got)
	}
	c, err := n.Dial(9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Poll(lisIn, false, nil); got != 1 || !lisIn[0].In {
		t.Fatalf("pending listener ready = %d, in=%v", got, lisIn[0].In)
	}
	s, err := l.Accept(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh conn: writable, not readable.
	es := []PollEntry{{Conn: s, WantIn: true, WantOut: true}}
	if got := n.Poll(es, false, nil); got != 1 || es[0].In || !es[0].Out {
		t.Fatalf("fresh conn: ready=%d in=%v out=%v", got, es[0].In, es[0].Out)
	}
	// Data arrives: readable too.
	if err := c.Send([]byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if got := n.Poll(es, false, nil); got != 1 || !es[0].In || !es[0].Out {
		t.Fatalf("data conn: ready=%d in=%v out=%v", got, es[0].In, es[0].Out)
	}
	// Fill the peer's inbox: not writable (each message counts its bytes).
	big := make([]byte, MaxMessage)
	for i := 0; i < connBuffer/MaxMessage; i++ {
		if err := s.Send(big, nil); err != nil {
			t.Fatalf("fill send %d: %v", i, err)
		}
	}
	if got := n.Poll([]PollEntry{{Conn: s, WantOut: true}}, false, nil); got != 0 {
		t.Fatalf("full peer still writable")
	}
	// Peer closes: both readable (EOF) and "writable" (ErrReset, no park).
	c.Close()
	if got := n.Poll(es, false, nil); got != 1 || !es[0].In || !es[0].Out {
		t.Fatalf("peer-closed conn: ready=%d in=%v out=%v", got, es[0].In, es[0].Out)
	}
	// Own close: ready for whatever is asked.
	s.Close()
	if got := n.Poll(es, false, nil); got != 1 || !es[0].In || !es[0].Out {
		t.Fatalf("closed conn: ready=%d in=%v out=%v", got, es[0].In, es[0].Out)
	}

	// Static and invalid entries always count; unresolved never does.
	mixed := []PollEntry{
		{Static: true, WantIn: true},
		{Invalid: true},
		{WantIn: true, WantOut: true}, // unconnected socket: no object
	}
	if got := n.Poll(mixed, false, nil); got != 2 || !mixed[0].In || mixed[2].In || mixed[2].Out {
		t.Fatalf("mixed = %d, %+v", got, mixed)
	}
	// Closed listener is accept-ready (Accept fails without parking).
	l.Close()
	if got := n.Poll(lisIn, false, nil); got != 1 || !lisIn[0].In {
		t.Fatalf("closed listener ready = %d", got)
	}
}

// TestPollBlocking parks a gated poller on an idle pair and checks a
// send wakes it with the right readiness bits.
func TestPollBlocking(t *testing.T) {
	n := New()
	a, b := n.Pair()
	gate := make(chanGate, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		gate.Enter()
		defer gate.Leave()
		es := []PollEntry{{Conn: b, WantIn: true}}
		if got := n.Poll(es, true, gate); got != 1 || !es[0].In {
			t.Errorf("blocking poll = %d, in=%v", got, es[0].In)
			return
		}
		msg, err := b.Recv(gate)
		if err != nil || string(msg) != "wake" {
			t.Errorf("Recv after poll = %q, %v", msg, err)
		}
	}()
	go func() {
		defer wg.Done()
		gate.Enter()
		defer gate.Leave()
		if err := a.Send([]byte("wake"), gate); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	wg.Wait()
	// Nil gate never parks, even with block requested.
	if got := n.Poll([]PollEntry{{Conn: a, WantIn: true}}, true, nil); got != 0 {
		t.Fatalf("nil-gate blocking poll = %d, want 0", got)
	}
}
