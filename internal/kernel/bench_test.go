package kernel

import (
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/installer"
	"asc/internal/libc"
	"asc/internal/linker"
	"asc/internal/vfs"
)

// benchLoopSrc executes getpid in a tight loop; the per-iteration work is
// dominated by the trap handler (and, for the authenticated variant, the
// verification path).
const benchLoopSrc = `
        .text
        .global main
main:
        MOVI r12, 1000
.loop:
        CALL getpid
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        MOVI r0, 0
        RET
`

func buildBenchExe(b *testing.B, authenticated bool) *binfmt.File {
	b.Helper()
	obj, err := asm.Assemble("b.s", benchLoopSrc)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := libc.Objects(libc.Linux)
	if err != nil {
		b.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{obj}, lib)
	if err != nil {
		b.Fatal(err)
	}
	if !authenticated {
		return exe
	}
	out, _, _, err := installer.Install(exe, "bench", installer.Options{Key: testKey})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

func benchRun(b *testing.B, authenticated bool) {
	b.Helper()
	bin := buildBenchExe(b, authenticated)
	mode := Permissive
	var key []byte
	if authenticated {
		mode, key = Enforce, testKey
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := New(vfs.New(), key, WithMode(mode))
		if err != nil {
			b.Fatal(err)
		}
		p, err := k.Spawn(bin, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := k.Run(p, 1_000_000_000); err != nil {
			b.Fatal(err)
		}
		if p.Killed {
			b.Fatalf("killed: %v", p.KilledBy)
		}
	}
	b.ReportMetric(1000, "syscalls/op")
}

// BenchmarkSyscallPlain measures 1,000 unverified traps per op.
func BenchmarkSyscallPlain(b *testing.B) { benchRun(b, false) }

// BenchmarkSyscallVerified measures 1,000 fully verified authenticated
// calls per op (call MAC + predecessor AS + memory-checker update).
func BenchmarkSyscallVerified(b *testing.B) { benchRun(b, true) }
