package sched

import "sync"

// Gate is a counting run-slot semaphore: it bounds how many guest
// processes execute concurrently, while letting a process that parks on
// a blocking socket operation hand its slot to a runnable sibling
// (internal/net takes the Enter/Leave pair as its blocking hook). This
// is what makes a networked fleet schedulable on any worker count,
// including one: a server blocked in accept releases its slot, the
// client that will unblock it runs, and the slot count — not the
// goroutine count — is the concurrency bound.
type Gate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	slots int
}

// NewGate creates a gate with n run slots (minimum 1).
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	g := &Gate{slots: n}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Enter blocks until a run slot is free and claims it.
func (g *Gate) Enter() {
	g.mu.Lock()
	for g.slots == 0 {
		g.cond.Wait()
	}
	g.slots--
	g.mu.Unlock()
}

// Leave releases the caller's run slot. It never blocks.
func (g *Gate) Leave() {
	g.mu.Lock()
	g.slots++
	g.cond.Signal()
	g.mu.Unlock()
}

// RunGated drives every job to completion like Run, but bounds
// concurrency with a Gate instead of a fixed worker-to-job binding:
// one goroutine per job, at most Workers of them running guest code at
// a time. Each process gets the gate as its blocking hook, so jobs
// that park inside the kernel (socket backlog, stream buffer) yield
// their slot to runnable siblings instead of wedging the fleet. Use
// this for fleets whose processes communicate; Run remains the
// lower-overhead path for independent processes.
//
// The determinism contract is unchanged: per-process cycle counts,
// traces, and outputs do not depend on the slot count or on which
// goroutine ran which job.
func (p Pool) RunGated(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	g := NewGate(p.workers())
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i := range jobs {
		go func(i int) {
			defer wg.Done()
			j := jobs[i]
			j.Proc.SetGate(g)
			g.Enter()
			results[i] = Result{Err: j.Kern.Run(j.Proc, j.MaxCycles)}
			j.Kern.ReleaseNet(j.Proc)
			g.Leave()
		}(i)
	}
	wg.Wait()
	return results
}
