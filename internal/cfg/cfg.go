// Package cfg performs the first stages of the trusted installer's static
// analysis: disassembly of the .text section, function identification, and
// basic-block / control-flow-graph construction.
//
// Disassembly is a linear sweep at the fixed 8-byte instruction stride.
// All-zero chunks are treated as inter-function padding. Any other
// undecodable chunk is recorded as a gap and the enclosing function is
// marked incomplete — the analogue of PLTO reporting that it "cannot
// completely disassemble a binary" (the OpenBSD close stub of Table 2).
//
// Blocks are formed so that a basic block contains at most one system
// call, which always terminates its block: the paper identifies each
// system call site by the basic block containing it, and block IDs are the
// currency of control-flow policies.
package cfg

import (
	"fmt"
	"sort"

	"asc/internal/binfmt"
	"asc/internal/isa"
)

// Instruction is one decoded instruction at a known address.
type Instruction struct {
	Addr  uint32
	Instr isa.Instr
	Reloc bool // the Imm field is covered by a relocation entry
}

// Gap is an undecodable region of .text.
type Gap struct {
	Start uint32
	End   uint32
	Func  string // enclosing function, if known
}

// Block is a basic block.
type Block struct {
	ID    int // 1-based, unique within the program
	Func  *Func
	Start uint32
	End   uint32 // exclusive
	Insns []Instruction

	Succs []*Block // intraprocedural successors (CALL treated as fallthrough)
	Preds []*Block

	CallTo   []uint32 // direct call target addresses
	Indirect bool     // ends with CALLR
	IsRet    bool     // ends with RET
	IsExit   bool     // ends with HALT

	// Syscall describes the system call terminating this block, if any.
	Syscall *SyscallSite
}

// Last returns the final instruction of the block.
func (b *Block) Last() Instruction {
	return b.Insns[len(b.Insns)-1]
}

// SyscallSite is a system call instruction and what is statically known
// about it at block-construction time.
type SyscallSite struct {
	Addr     uint32 // address of the SYSCALL/ASYSCALL instruction
	Block    *Block
	Num      uint16 // system call number, if NumKnown
	NumKnown bool   // R0 was set by a MOVI within the block
	Authed   bool   // instruction is ASYSCALL
}

// Func is a function: a region of .text starting at a SymFunc symbol.
type Func struct {
	Name       string
	Entry      uint32
	End        uint32 // exclusive
	Blocks     []*Block
	Incomplete bool // contains undecodable gaps
}

// EntryBlock returns the block at the function entry, or nil.
func (f *Func) EntryBlock() *Block {
	for _, b := range f.Blocks {
		if b.Start == f.Entry {
			return b
		}
	}
	return nil
}

// Program is the analysis result for one binary.
type Program struct {
	File   *binfmt.File
	Funcs  []*Func
	Blocks []*Block // all blocks, ID order
	Gaps   []Gap

	funcByEntry map[uint32]*Func
	blockByAddr map[uint32]*Block // keyed by start address
}

// FuncAt returns the function whose entry is addr.
func (p *Program) FuncAt(addr uint32) *Func { return p.funcByEntry[addr] }

// FuncNamed returns the function with the given name, or nil.
func (p *Program) FuncNamed(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// BlockAt returns the block starting at addr.
func (p *Program) BlockAt(addr uint32) *Block { return p.blockByAddr[addr] }

// BlockContaining returns the block whose address range covers addr.
func (p *Program) BlockContaining(addr uint32) *Block {
	for _, b := range p.Blocks {
		if addr >= b.Start && addr < b.End {
			return b
		}
	}
	return nil
}

// SyscallSites returns every syscall site in program order.
func (p *Program) SyscallSites() []*SyscallSite {
	var out []*SyscallSite
	for _, b := range p.Blocks {
		if b.Syscall != nil {
			out = append(out, b.Syscall)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Analyze disassembles the laid-out binary and builds functions, blocks,
// and the intraprocedural CFG.
func Analyze(f *binfmt.File) (*Program, error) {
	text := f.Section(binfmt.SecText)
	if text == nil {
		return nil, fmt.Errorf("cfg: no .text section")
	}
	p := &Program{
		File:        f,
		funcByEntry: make(map[uint32]*Func),
		blockByAddr: make(map[uint32]*Block),
	}

	// Index relocation offsets in .text (they cover instruction Imm
	// fields at instrOffset+4).
	textIdx := f.SectionIndex(binfmt.SecText)
	relocAt := make(map[uint32]bool)
	for _, r := range f.Relocs {
		if r.Section == textIdx {
			relocAt[text.Addr+r.Offset] = true
		}
	}

	// Function boundaries from SymFunc symbols, sorted by address.
	var fns []fnSym
	for i := range f.Symbols {
		s := &f.Symbols[i]
		if s.Kind != binfmt.SymFunc || !s.Defined() {
			continue
		}
		if f.Sections[s.Section].Name != binfmt.SecText {
			continue
		}
		fns = append(fns, fnSym{s.Name, text.Addr + s.Value})
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].addr < fns[j].addr })
	// Drop duplicate entries at the same address (aliases).
	fns = dedupeFns(fns)
	if len(fns) == 0 {
		return nil, fmt.Errorf("cfg: no function symbols in .text")
	}

	for i, fn := range fns {
		end := text.End()
		if i+1 < len(fns) {
			end = fns[i+1].addr
		}
		fun := &Func{Name: fn.name, Entry: fn.addr, End: end}
		p.Funcs = append(p.Funcs, fun)
		p.funcByEntry[fn.addr] = fun
	}

	// Linear-sweep disassembly per function.
	for _, fun := range p.Funcs {
		insns, gaps := sweep(f, text, fun, relocAt)
		if len(gaps) > 0 {
			fun.Incomplete = true
			p.Gaps = append(p.Gaps, gaps...)
		}
		buildBlocks(p, fun, insns)
	}

	// Resolve intraprocedural edges and syscall numbers.
	for _, fun := range p.Funcs {
		linkBlocks(p, fun)
	}
	for _, b := range p.Blocks {
		if b.Syscall != nil {
			resolveSyscallNum(b)
		}
	}
	return p, nil
}

// fnSym pairs a function symbol name with its resolved address.
type fnSym struct {
	name string
	addr uint32
}

func dedupeFns(fns []fnSym) []fnSym {
	out := fns[:0]
	for i, fn := range fns {
		if i > 0 && fn.addr == fns[i-1].addr {
			continue
		}
		out = append(out, fn)
	}
	return out
}

// sweep decodes the function body, skipping zero padding and recording
// gaps at undecodable chunks.
func sweep(f *binfmt.File, text *binfmt.Section, fun *Func, relocAt map[uint32]bool) ([]Instruction, []Gap) {
	var insns []Instruction
	var gaps []Gap
	addr := fun.Entry
	for addr+isa.InstrSize <= fun.End {
		off := addr - text.Addr
		chunk := text.Data[off : off+isa.InstrSize]
		if allZero(chunk) {
			addr += isa.InstrSize
			continue
		}
		in, err := isa.Decode(chunk)
		if err != nil {
			if len(gaps) > 0 && gaps[len(gaps)-1].End == addr {
				gaps[len(gaps)-1].End = addr + isa.InstrSize
			} else {
				gaps = append(gaps, Gap{Start: addr, End: addr + isa.InstrSize, Func: fun.Name})
			}
			addr += isa.InstrSize
			continue
		}
		insns = append(insns, Instruction{Addr: addr, Instr: in, Reloc: relocAt[addr+4]})
		addr += isa.InstrSize
	}
	// A trailing partial chunk that is not zero is also a gap.
	if addr < fun.End {
		off := addr - text.Addr
		if !allZero(text.Data[off : fun.End-text.Addr]) {
			gaps = append(gaps, Gap{Start: addr, End: fun.End, Func: fun.Name})
		}
	}
	return insns, gaps
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// buildBlocks splits the instruction list into basic blocks.
func buildBlocks(p *Program, fun *Func, insns []Instruction) {
	if len(insns) == 0 {
		return
	}
	leaders := map[uint32]bool{insns[0].Addr: true}
	for i, in := range insns {
		op := in.Instr
		if op.IsBranch() || op.IsSyscall() {
			if i+1 < len(insns) {
				leaders[insns[i+1].Addr] = true
			}
			if op.HasImmTarget() && op.Op != isa.OpCALL {
				// Branch target within the function.
				if op.Imm >= fun.Entry && op.Imm < fun.End {
					leaders[op.Imm] = true
				}
			}
		}
	}
	var cur *Block
	flush := func() {
		if cur != nil && len(cur.Insns) > 0 {
			cur.End = cur.Insns[len(cur.Insns)-1].Addr + isa.InstrSize
			fun.Blocks = append(fun.Blocks, cur)
		}
		cur = nil
	}
	for _, in := range insns {
		if leaders[in.Addr] {
			flush()
			cur = &Block{Func: fun, Start: in.Addr}
		}
		if cur == nil {
			// Unreachable prefix after a gap; start a block anyway so
			// nothing is silently dropped.
			cur = &Block{Func: fun, Start: in.Addr}
		}
		cur.Insns = append(cur.Insns, in)
	}
	flush()
	for _, b := range fun.Blocks {
		b.ID = len(p.Blocks) + 1
		p.Blocks = append(p.Blocks, b)
		p.blockByAddr[b.Start] = b
	}
}

// linkBlocks computes intraprocedural successor edges and classifies
// block terminators.
func linkBlocks(p *Program, fun *Func) {
	for i, b := range fun.Blocks {
		last := b.Last().Instr
		var next *Block
		if i+1 < len(fun.Blocks) {
			next = fun.Blocks[i+1]
		}
		addEdge := func(t *Block) {
			if t == nil {
				return
			}
			b.Succs = append(b.Succs, t)
			t.Preds = append(t.Preds, b)
		}
		switch {
		case last.Op == isa.OpJMP:
			addEdge(p.blockByAddr[last.Imm])
		case last.IsCondBranch():
			addEdge(p.blockByAddr[last.Imm])
			addEdge(next)
		case last.Op == isa.OpRET:
			b.IsRet = true
		case last.Op == isa.OpHALT:
			b.IsExit = true
		case last.Op == isa.OpCALL:
			b.CallTo = append(b.CallTo, last.Imm)
			addEdge(next)
		case last.Op == isa.OpCALLR:
			b.Indirect = true
			addEdge(next)
		case last.IsSyscall():
			b.Syscall = &SyscallSite{
				Addr:   b.Last().Addr,
				Block:  b,
				Authed: last.Op == isa.OpASYSCALL,
			}
			addEdge(next)
		default:
			addEdge(next)
		}
	}
}

// resolveSyscallNum scans backwards within the block for the MOVI that
// sets R0 before the trap.
func resolveSyscallNum(b *Block) {
	for i := len(b.Insns) - 2; i >= 0; i-- {
		in := b.Insns[i].Instr
		def, ok := in.Def()
		if !ok || def != isa.R0 {
			continue
		}
		if in.Op == isa.OpMOVI {
			b.Syscall.Num = uint16(in.Imm)
			b.Syscall.NumKnown = true
		}
		return // any other def of R0 leaves the number unknown
	}
}
