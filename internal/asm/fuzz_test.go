package asm

import "testing"

// FuzzAssemble exercises the assembler with arbitrary source; it must
// never panic, and anything it accepts must produce a decodable object.
func FuzzAssemble(f *testing.F) {
	f.Add(sample)
	f.Add(".text\nmain:\nRET\n")
	f.Add(".data\nx: .word 1, y\n")
	f.Add("garbage ][")
	f.Fuzz(func(t *testing.T, src string) {
		obj, err := Assemble("fuzz.s", src)
		if err != nil {
			return
		}
		if _, err := obj.Bytes(); err != nil {
			t.Fatalf("accepted object fails to serialize: %v", err)
		}
	})
}
