// ascbench regenerates the paper's evaluation tables.
//
// Usage: ascbench [-table 1|2|3|4|6|andrew|compare|all] [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"

	"asc/internal/bench"
	"asc/internal/workload"
)

func main() {
	table := flag.String("table", "all", "which artifact to regenerate: 1, 2, 3, 4, 6, andrew, compare, all")
	scale := flag.Int("scale", 1, "divide macro-benchmark iteration counts by N (faster, less precise)")
	flag.Parse()

	run := func(name string, f func() (interface{ Render() string }, error)) {
		if *table != "all" && *table != name {
			return
		}
		data, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ascbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(data.Render())
	}

	run("1", func() (interface{ Render() string }, error) { return bench.Table1() })
	run("2", func() (interface{ Render() string }, error) { return bench.Table2() })
	run("3", func() (interface{ Render() string }, error) { return bench.Table3() })
	run("4", func() (interface{ Render() string }, error) { return bench.Table4(bench.DefaultKey) })
	run("6", func() (interface{ Render() string }, error) { return bench.Table6(bench.DefaultKey, *scale) })
	run("andrew", func() (interface{ Render() string }, error) {
		return bench.Andrew(bench.DefaultKey, workload.AndrewConfig{})
	})
	run("compare", func() (interface{ Render() string }, error) {
		return bench.EnforcementComparison(bench.DefaultKey)
	})
}
