// ir.go implements the installer's rewriting intermediate representation:
// the decoded, symbol-relative form of the .text section that supports
// moving code (stub inlining, authenticated-call insertion) with
// relocation fixup, in the manner of PLTO.
package installer

import (
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/isa"
)

// irEntry is one unit of the text stream: either a decoded instruction
// (8 bytes) or a raw byte run (padding or an undecodable region that is
// preserved verbatim).
type irEntry struct {
	raw     []byte // non-nil for raw runs
	in      isa.Instr
	sym     int32 // relocation symbol for the Imm field; -1 if none
	addend  int32
	oldAddr uint32 // original address (0 for inserted entries)
}

func (e *irEntry) size() uint32 {
	if e.raw != nil {
		return uint32(len(e.raw))
	}
	return isa.InstrSize
}

func (e *irEntry) isRaw() bool { return e.raw != nil }

// ir is the decoded program text plus the original file's tables.
type ir struct {
	file    *binfmt.File
	entries []*irEntry
	// textSyms maps symbol table indices (of symbols defined in .text)
	// to their original absolute address.
	textSyms map[int32]uint32
}

// buildIR decodes .text into IR entries. Every instruction whose Imm has
// a relocation records the target symbol; any control-transfer immediate
// without a relocation is an error (the binary is not relocatable enough
// to rewrite, matching PLTO's requirement).
func buildIR(f *binfmt.File) (*ir, error) {
	if !f.Relocatable {
		return nil, fmt.Errorf("installer: binary is not relocatable")
	}
	text := f.Section(binfmt.SecText)
	if text == nil {
		return nil, fmt.Errorf("installer: no .text")
	}
	textIdx := f.SectionIndex(binfmt.SecText)

	// Relocation lookup: .text offset of the patched word -> reloc.
	relocAt := make(map[uint32]binfmt.Reloc)
	for _, r := range f.Relocs {
		if r.Section == textIdx {
			relocAt[r.Offset] = r
		}
	}

	out := &ir{file: f, textSyms: make(map[int32]uint32)}
	for i := range f.Symbols {
		s := &f.Symbols[i]
		if s.Defined() && s.Section == textIdx {
			out.textSyms[int32(i)] = text.Addr + s.Value
		}
	}

	data := text.Data
	var off uint32
	flushRaw := func(start, end uint32) {
		if end > start {
			out.entries = append(out.entries, &irEntry{
				raw:     append([]byte(nil), data[start:end]...),
				oldAddr: text.Addr + start,
			})
		}
	}
	for off+isa.InstrSize <= uint32(len(data)) {
		chunk := data[off : off+isa.InstrSize]
		in, err := isa.Decode(chunk)
		if err != nil {
			// Raw run: zero padding or undecodable region. Extend until
			// the next decodable chunk.
			start := off
			for off+isa.InstrSize <= uint32(len(data)) {
				if _, err := isa.Decode(data[off : off+isa.InstrSize]); err == nil {
					break
				}
				off += isa.InstrSize
			}
			flushRaw(start, off)
			continue
		}
		e := &irEntry{in: in, sym: -1, oldAddr: text.Addr + off}
		if r, ok := relocAt[off+4]; ok {
			e.sym = r.Sym
			e.addend = r.Addend
		} else if in.HasImmTarget() && in.Imm != 0 {
			return nil, fmt.Errorf("installer: control transfer at %#x has no relocation", text.Addr+off)
		}
		out.entries = append(out.entries, e)
		off += isa.InstrSize
	}
	flushRaw(off, uint32(len(data)))
	return out, nil
}

// entryAt returns the index of the entry whose original address range
// covers addr, or -1.
func (r *ir) entryAt(addr uint32) int {
	for i, e := range r.entries {
		if e.oldAddr != 0 && addr >= e.oldAddr && addr < e.oldAddr+e.size() {
			return i
		}
	}
	return -1
}

// emit rebuilds a binfmt.File with the (possibly rewritten) text. The
// returned file is laid out and has relocations applied, and keeps its
// relocation tables so further passes can re-apply after symbol updates.
// An empty .auth section is appended after .bss, so later growth never
// moves other sections.
//
// Text symbols are remapped to the new location of the entry (plus
// intra-entry offset) they originally pointed at. Symbols pointing at
// removed entries cause an error if any relocation still references them.
func (r *ir) emit() (*binfmt.File, error) {
	old := r.file
	textIdx := old.SectionIndex(binfmt.SecText)
	oldText := old.Section(binfmt.SecText)

	// Assign new offsets.
	newOff := make([]uint32, len(r.entries))
	var off uint32
	for i, e := range r.entries {
		newOff[i] = off
		off += e.size()
	}
	textSize := off

	// Remap text symbols: original address -> new offset.
	// Build a map from oldAddr to entry index for translation.
	type span struct {
		oldStart uint32
		size     uint32
		idx      int
	}
	var spans []span
	for i, e := range r.entries {
		if e.oldAddr != 0 {
			spans = append(spans, span{e.oldAddr, e.size(), i})
		}
	}
	translate := func(oldAddr uint32) (uint32, bool) {
		for _, s := range spans {
			if oldAddr >= s.oldStart && oldAddr < s.oldStart+s.size {
				return newOff[s.idx] + (oldAddr - s.oldStart), true
			}
			// A symbol may point one past the last byte (end labels).
			if oldAddr == s.oldStart+s.size && oldAddr == oldText.End() {
				return newOff[s.idx] + s.size, true
			}
		}
		return 0, false
	}

	nf := &binfmt.File{
		Relocatable:   true,
		Authenticated: old.Authenticated,
		ProgramID:     old.ProgramID,
	}
	// Sections: text rebuilt, others copied, .auth appended last (after
	// .bss) so that growing it never moves other sections.
	newText := binfmt.Section{
		Name:  binfmt.SecText,
		Size:  textSize,
		Flags: binfmt.FlagRead | binfmt.FlagExec,
		Data:  make([]byte, textSize),
	}
	for i, e := range r.entries {
		if e.isRaw() {
			copy(newText.Data[newOff[i]:], e.raw)
		} else {
			e.in.Encode(newText.Data[newOff[i]:])
		}
	}
	nf.Sections = append(nf.Sections, newText)
	secMap := make(map[int32]int32) // old section index -> new
	secMap[textIdx] = 0
	for i := range old.Sections {
		s := &old.Sections[i]
		if s.Name == binfmt.SecText || s.Name == binfmt.SecAuth {
			continue
		}
		secMap[int32(i)] = int32(len(nf.Sections))
		nf.Sections = append(nf.Sections, binfmt.Section{
			Name:  s.Name,
			Size:  s.Size,
			Flags: s.Flags,
			Data:  append([]byte(nil), s.Data...),
		})
	}
	nf.Sections = append(nf.Sections, binfmt.Section{
		Name:  binfmt.SecAuth,
		Flags: binfmt.FlagRead | binfmt.FlagWrite,
	})

	// Symbols.
	symMap := make(map[int32]int32, len(old.Symbols))
	removed := make(map[int32]bool)
	for i := range old.Symbols {
		s := old.Symbols[i]
		if s.Defined() {
			if s.Section == textIdx {
				oldAddr := oldText.Addr + s.Value
				v, ok := translate(oldAddr)
				if !ok {
					removed[int32(i)] = true
					continue
				}
				s.Value = v
				s.Section = 0
			} else {
				ns, ok := secMap[s.Section]
				if !ok {
					removed[int32(i)] = true
					continue
				}
				s.Section = ns
			}
		}
		symMap[int32(i)] = int32(len(nf.Symbols))
		nf.Symbols = append(nf.Symbols, s)
	}
	// Relocations from text entries.
	for i, e := range r.entries {
		if e.isRaw() || e.sym < 0 {
			continue
		}
		ns, ok := symMap[e.sym]
		if !ok {
			return nil, fmt.Errorf("installer: instruction at new offset %#x references removed symbol %q",
				newOff[i], old.Symbols[e.sym].Name)
		}
		nf.Relocs = append(nf.Relocs, binfmt.Reloc{
			Section: 0, Offset: newOff[i] + 4, Sym: ns, Addend: e.addend,
		})
	}
	// Relocations from other sections (data words holding addresses).
	for _, rel := range old.Relocs {
		if rel.Section == textIdx {
			continue // rebuilt above
		}
		ns, ok := secMap[rel.Section]
		if !ok {
			continue
		}
		nsym, ok := symMap[rel.Sym]
		if !ok {
			return nil, fmt.Errorf("installer: data relocation references removed symbol %q",
				old.Symbols[rel.Sym].Name)
		}
		nf.Relocs = append(nf.Relocs, binfmt.Reloc{
			Section: ns, Offset: rel.Offset, Sym: nsym, Addend: rel.Addend,
		})
	}
	nf.SortRelocs()
	nf.Layout()
	if err := nf.ApplyRelocs(); err != nil {
		return nil, fmt.Errorf("installer: emit: %w", err)
	}
	return nf, nil
}
