package ckpt

import (
	"bytes"
	"errors"
	"testing"

	"asc/internal/mac"
)

func swapKey(t *testing.T) *mac.Keyed {
	t.Helper()
	k, err := mac.New([]byte("swap-frame-test-"))
	if err != nil {
		t.Fatalf("mac.New: %v", err)
	}
	return k
}

func testFrame() *SwapFrame {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	return &SwapFrame{Owner: 42, Page: 7, Gen: 3, Data: data}
}

func TestSwapFrameRoundTrip(t *testing.T) {
	k := swapKey(t)
	f := testFrame()
	blob := SealSwapFrame(k, f)
	got, err := OpenSwapFrame(k, 42, 7, 3, blob)
	if err != nil {
		t.Fatalf("OpenSwapFrame: %v", err)
	}
	if !bytes.Equal(got.Data, f.Data) {
		t.Fatalf("data mismatch after round trip")
	}
}

func TestSwapFrameDetectsBitFlip(t *testing.T) {
	k := swapKey(t)
	blob := SealSwapFrame(k, testFrame())
	for _, off := range []int{0, 9, swapHeaderSize + 100, len(blob) - 1} {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		_, err := OpenSwapFrame(k, 42, 7, 3, mut)
		if err == nil {
			t.Fatalf("flip at %d accepted", off)
		}
		if !errors.Is(err, ErrSwapSeal) && !errors.Is(err, ErrSwapFrame) {
			t.Fatalf("flip at %d: %v, want seal/frame error", off, err)
		}
	}
}

func TestSwapFrameDetectsReplay(t *testing.T) {
	k := swapKey(t)
	f := testFrame()
	stale := SealSwapFrame(k, f)
	// Kernel has since evicted generation 4; the gen-3 frame is stale.
	if _, err := OpenSwapFrame(k, 42, 7, 4, stale); !errors.Is(err, ErrSwapStale) {
		t.Fatalf("stale generation: %v, want ErrSwapStale", err)
	}
	// A genuine frame from another slot is cross-slot replay.
	if _, err := OpenSwapFrame(k, 42, 8, 3, stale); !errors.Is(err, ErrSwapStale) {
		t.Fatalf("wrong page: %v, want ErrSwapStale", err)
	}
	if _, err := OpenSwapFrame(k, 41, 7, 3, stale); !errors.Is(err, ErrSwapStale) {
		t.Fatalf("wrong owner: %v, want ErrSwapStale", err)
	}
}

func TestSwapFrameTruncation(t *testing.T) {
	k := swapKey(t)
	blob := SealSwapFrame(k, testFrame())
	for _, n := range []int{0, 4, swapHeaderSize, len(blob) - 1} {
		if _, err := OpenSwapFrame(k, 42, 7, 3, blob[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
}

func TestSwapFrameNilKey(t *testing.T) {
	f := testFrame()
	blob := SealSwapFrame(nil, f)
	got, err := OpenSwapFrame(nil, 42, 7, 3, blob)
	if err != nil {
		t.Fatalf("nil-key round trip: %v", err)
	}
	if !bytes.Equal(got.Data, f.Data) {
		t.Fatalf("nil-key data mismatch")
	}
	// Freshness still enforced without a key.
	if _, err := OpenSwapFrame(nil, 42, 7, 9, blob); !errors.Is(err, ErrSwapStale) {
		t.Fatalf("nil-key stale frame: %v, want ErrSwapStale", err)
	}
	// An unauthenticated frame must not open under a keyed kernel.
	k := swapKey(t)
	if _, err := OpenSwapFrame(k, 42, 7, 3, blob); !errors.Is(err, ErrSwapSeal) {
		t.Fatalf("unauthenticated frame under keyed open: %v, want ErrSwapSeal", err)
	}
}

func FuzzSwapFrameDecode(f *testing.F) {
	k, err := mac.New([]byte("swap-frame-fuzz-"))
	if err != nil {
		f.Fatalf("mac.New: %v", err)
	}
	f.Add(SealSwapFrame(k, testFrame()))
	f.Add(SealSwapFrame(nil, &SwapFrame{Owner: 1, Page: 0, Gen: 1, Data: []byte{1, 2, 3}}))
	f.Add([]byte("ASSW"))
	f.Fuzz(func(t *testing.T, b []byte) {
		// Must never panic; anything that opens must carry the exact
		// binding it was asked for.
		for _, key := range []*mac.Keyed{nil, k} {
			got, err := OpenSwapFrame(key, 42, 7, 3, b)
			if err != nil {
				continue
			}
			if got.Owner != 42 || got.Page != 7 || got.Gen != 3 {
				t.Fatalf("opened frame with wrong binding: %+v", got)
			}
		}
	})
}
