// Package asm implements a two-pass assembler for the simulated ISA.
//
// The assembler plays the role of the compiler toolchain in the paper's
// pipeline: it produces *relocatable* SELF objects in which every absolute
// address reference (MOVI of a label, CALL/JMP/branch targets, .word of a
// label) carries a relocation entry. The trusted installer depends on this
// — exactly as PLTO requires relocatable x86 binaries — to move code during
// stub inlining and authenticated-call insertion and fix addresses up
// afterwards.
//
// Syntax summary (one statement per line, ';' or '#' start comments):
//
//	label:  MOVI r1, msg        ; absolute label reference
//	        LOAD r2, [sp+4]
//	        BEQ r1, r2, .done   ; labels starting with '.' are local
//	.done:  RET
//	        .data
//	msg:    .asciz "hi\n"
//	tbl:    .word 1, 2, label
//	buf:    .space 64
//	        .global label
//	        .equ SIZE, 64
//
// Labels defined in .text are function symbols unless they start with '.'
// (local branch targets). Labels in data sections are objects; a label
// immediately followed by .asciz is a string symbol.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"asc/internal/binfmt"
	"asc/internal/isa"
)

// Error describes an assembly failure at a source line.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

type section struct {
	name  string
	flags uint8
	buf   []byte
	size  uint32 // for .bss, tracked without data
}

// operand is either a constant or a symbol reference with addend.
type operand struct {
	isSym  bool
	sym    string
	addend int64
	val    int64
}

type assembler struct {
	file     string
	secs     []*section
	secIdx   map[string]int
	cur      int // current section index
	labels   map[string]struct{ sec, off uint32 }
	labelSeq []string // definition order for deterministic symbol table
	globals  map[string]bool
	equs     map[string]int64
	stringAt map[string]bool // labels immediately followed by .asciz
	relocs   []pendingReloc
	errs     []error
}

type pendingReloc struct {
	sec    int
	off    uint32
	sym    string
	addend int32
	line   int
}

func newAssembler(file string) *assembler {
	a := &assembler{
		file:     file,
		secIdx:   make(map[string]int),
		labels:   make(map[string]struct{ sec, off uint32 }),
		globals:  make(map[string]bool),
		equs:     make(map[string]int64),
		stringAt: make(map[string]bool),
	}
	// Standard sections always exist, in canonical order.
	a.addSection(binfmt.SecText, binfmt.FlagRead|binfmt.FlagExec)
	a.addSection(binfmt.SecROData, binfmt.FlagRead)
	a.addSection(binfmt.SecData, binfmt.FlagRead|binfmt.FlagWrite)
	a.addSection(binfmt.SecBSS, binfmt.FlagRead|binfmt.FlagWrite)
	a.cur = 0
	return a
}

func (a *assembler) addSection(name string, flags uint8) {
	a.secIdx[name] = len(a.secs)
	a.secs = append(a.secs, &section{name: name, flags: flags})
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, &Error{File: a.file, Line: line, Msg: fmt.Sprintf(format, args...)})
}

// Assemble assembles source into a relocatable SELF object. The name is
// used in error messages.
func Assemble(name, source string) (*binfmt.File, error) {
	a := newAssembler(name)
	a.run(source)
	if len(a.errs) > 0 {
		msgs := make([]string, 0, len(a.errs))
		for _, e := range a.errs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("asm: %s", strings.Join(msgs, "; "))
	}
	return a.emit()
}

func (a *assembler) run(source string) {
	lines := strings.Split(source, "\n")
	// Pass 1: define labels and .equ constants, compute sizes.
	for i, raw := range lines {
		a.scanLine(i+1, raw, false)
	}
	// Reset section buffers for pass 2.
	for _, s := range a.secs {
		s.buf = s.buf[:0]
		s.size = 0
	}
	a.cur = 0
	a.relocs = a.relocs[:0]
	if len(a.errs) > 0 {
		return
	}
	// Pass 2: encode.
	for i, raw := range lines {
		a.scanLine(i+1, raw, true)
	}
}

// scanLine handles one source line. In pass 1 (encode=false) it sizes
// everything and defines labels; in pass 2 it emits bytes and relocs.
func (a *assembler) scanLine(line int, raw string, encode bool) {
	text := stripComment(raw)
	text = strings.TrimSpace(text)
	if text == "" {
		return
	}
	// Labels: "name:" possibly followed by more on the same line.
	for {
		idx := labelEnd(text)
		if idx < 0 {
			break
		}
		name := text[:idx]
		if !encode {
			if _, dup := a.labels[name]; dup {
				a.errorf(line, "label %q redefined", name)
			}
			sec := a.secs[a.cur]
			a.labels[name] = struct{ sec, off uint32 }{uint32(a.cur), sec.size}
			a.labelSeq = append(a.labelSeq, name)
		}
		text = strings.TrimSpace(text[idx+1:])
		if text == "" {
			return
		}
	}
	if strings.HasPrefix(text, ".") {
		a.directive(line, text, encode)
		return
	}
	a.instruction(line, text, encode)
}

// labelEnd returns the index of the ':' terminating a leading label, or -1.
func labelEnd(s string) int {
	for i, c := range s {
		switch {
		case c == ':':
			if i == 0 {
				return -1
			}
			return i
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '.', c == '$':
			// label character
		default:
			return -1
		}
	}
	return -1
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case ';', '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func (a *assembler) directive(line int, text string, encode bool) {
	name, rest, _ := strings.Cut(text, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text", ".rodata", ".data", ".bss":
		a.cur = a.secIdx[name]
	case ".auth":
		// Reserved for the installer; programs may not define it.
		a.errorf(line, ".auth section is reserved for the trusted installer")
	case ".global", ".globl":
		if rest == "" {
			a.errorf(line, ".global requires a symbol name")
			return
		}
		for _, n := range splitOperands(rest) {
			a.globals[strings.TrimSpace(n)] = true
		}
	case ".equ":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			a.errorf(line, ".equ requires name, value")
			return
		}
		if !encode {
			v, err := a.constExpr(strings.TrimSpace(parts[1]))
			if err != nil {
				a.errorf(line, ".equ %s: %v", parts[0], err)
				return
			}
			a.equs[strings.TrimSpace(parts[0])] = v
		}
	case ".asciz", ".ascii":
		s, err := parseStringLit(rest)
		if err != nil {
			a.errorf(line, "%s: %v", name, err)
			return
		}
		b := []byte(s)
		if name == ".asciz" {
			b = append(b, 0)
		}
		// Mark the most recent label at this offset as a string symbol.
		if !encode {
			sec := a.secs[a.cur]
			for _, lname := range a.labelSeq {
				l := a.labels[lname]
				if l.sec == uint32(a.cur) && l.off == sec.size {
					a.stringAt[lname] = true
				}
			}
		}
		a.emitBytes(line, b, encode)
	case ".byte":
		for _, p := range splitOperands(rest) {
			v, err := a.constExpr(strings.TrimSpace(p))
			if err != nil {
				a.errorf(line, ".byte: %v", err)
				return
			}
			a.emitBytes(line, []byte{byte(v)}, encode)
		}
	case ".word":
		for _, p := range splitOperands(rest) {
			op, err := a.operandExpr(strings.TrimSpace(p))
			if err != nil {
				a.errorf(line, ".word: %v", err)
				return
			}
			if op.isSym {
				if encode {
					a.relocs = append(a.relocs, pendingReloc{
						sec: a.cur, off: a.secs[a.cur].size,
						sym: op.sym, addend: int32(op.addend), line: line,
					})
				}
				a.emitBytes(line, []byte{0, 0, 0, 0}, encode)
			} else {
				v := uint32(op.val)
				a.emitBytes(line, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}, encode)
			}
		}
	case ".space", ".skip":
		v, err := a.constExpr(rest)
		if err != nil || v < 0 || v > 1<<24 {
			a.errorf(line, ".space: bad size %q", rest)
			return
		}
		a.emitBytes(line, make([]byte, v), encode)
	case ".align":
		v, err := a.constExpr(rest)
		if err != nil || v <= 0 || v&(v-1) != 0 {
			a.errorf(line, ".align: need power of two, got %q", rest)
			return
		}
		sec := a.secs[a.cur]
		pad := (uint32(v) - sec.size%uint32(v)) % uint32(v)
		a.emitBytes(line, make([]byte, pad), encode)
	default:
		a.errorf(line, "unknown directive %s", name)
	}
}

func (a *assembler) emitBytes(line int, b []byte, encode bool) {
	sec := a.secs[a.cur]
	if sec.name == binfmt.SecBSS {
		for _, c := range b {
			if c != 0 {
				a.errorf(line, "non-zero data in .bss")
				return
			}
		}
		sec.size += uint32(len(b))
		return
	}
	if encode {
		sec.buf = append(sec.buf, b...)
	}
	sec.size += uint32(len(b))
}

func (a *assembler) instruction(line int, text string, encode bool) {
	if a.secs[a.cur].name != binfmt.SecText {
		a.errorf(line, "instruction outside .text")
		return
	}
	mn, rest, _ := strings.Cut(text, " ")
	mn = strings.ToUpper(mn)
	rest = strings.TrimSpace(rest)
	ops := splitOperands(rest)
	for i := range ops {
		ops[i] = strings.TrimSpace(ops[i])
	}
	if rest == "" {
		ops = nil
	}

	// Pseudo-instructions.
	if mn == "SUBI" {
		if len(ops) != 3 {
			a.errorf(line, "SUBI needs rd, rs, imm")
			return
		}
		v, err := a.constExpr(ops[2])
		if err != nil {
			a.errorf(line, "SUBI: %v", err)
			return
		}
		ops[2] = strconv.FormatInt(-v, 10)
		mn = "ADDI"
	}

	op, ok := isa.OpByName(mn)
	if !ok {
		a.errorf(line, "unknown mnemonic %q", mn)
		return
	}
	in := isa.Instr{Op: op}
	var immOp *operand

	need := func(n int) bool {
		if len(ops) != n {
			a.errorf(line, "%s needs %d operands, got %d", mn, n, len(ops))
			return false
		}
		return true
	}
	reg := func(s string) (isa.Reg, bool) {
		r, err := parseReg(s)
		if err != nil {
			a.errorf(line, "%v", err)
			return 0, false
		}
		return r, true
	}
	imm := func(s string) (*operand, bool) {
		o, err := a.operandExpr(s)
		if err != nil {
			a.errorf(line, "%v", err)
			return nil, false
		}
		return &o, true
	}

	switch op {
	case isa.OpNOP, isa.OpHALT, isa.OpRET, isa.OpSYSCALL, isa.OpASYSCALL:
		if !need(0) {
			return
		}
	case isa.OpMOV:
		if !need(2) {
			return
		}
		var ok1, ok2 bool
		in.Rd, ok1 = reg(ops[0])
		in.Rs, ok2 = reg(ops[1])
		if !ok1 || !ok2 {
			return
		}
	case isa.OpMOVI:
		if !need(2) {
			return
		}
		var ok1, ok2 bool
		in.Rd, ok1 = reg(ops[0])
		immOp, ok2 = imm(ops[1])
		if !ok1 || !ok2 {
			return
		}
	case isa.OpLOAD, isa.OpLOADB:
		if !need(2) {
			return
		}
		var ok1 bool
		in.Rd, ok1 = reg(ops[0])
		rs, off, err := parseMem(ops[1])
		if err != nil || !ok1 {
			if err != nil {
				a.errorf(line, "%v", err)
			}
			return
		}
		in.Rs, in.Imm = rs, uint32(off)
	case isa.OpSTORE, isa.OpSTOREB:
		if !need(2) {
			return
		}
		rd, off, err := parseMem(ops[0])
		if err != nil {
			a.errorf(line, "%v", err)
			return
		}
		var ok1 bool
		in.Rs, ok1 = reg(ops[1])
		if !ok1 {
			return
		}
		in.Rd, in.Imm = rd, uint32(off)
	case isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpDIV, isa.OpMOD,
		isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSHL, isa.OpSHR:
		if !need(3) {
			return
		}
		var ok1, ok2, ok3 bool
		in.Rd, ok1 = reg(ops[0])
		in.Rs, ok2 = reg(ops[1])
		in.Rt, ok3 = reg(ops[2])
		if !ok1 || !ok2 || !ok3 {
			return
		}
	case isa.OpADDI, isa.OpMULI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSHLI, isa.OpSHRI:
		if !need(3) {
			return
		}
		var ok1, ok2, ok3 bool
		in.Rd, ok1 = reg(ops[0])
		in.Rs, ok2 = reg(ops[1])
		immOp, ok3 = imm(ops[2])
		if !ok1 || !ok2 || !ok3 {
			return
		}
	case isa.OpJMP, isa.OpCALL:
		if !need(1) {
			return
		}
		var ok1 bool
		immOp, ok1 = imm(ops[0])
		if !ok1 {
			return
		}
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		if !need(3) {
			return
		}
		var ok1, ok2, ok3 bool
		in.Rs, ok1 = reg(ops[0])
		in.Rt, ok2 = reg(ops[1])
		immOp, ok3 = imm(ops[2])
		if !ok1 || !ok2 || !ok3 {
			return
		}
	case isa.OpCALLR, isa.OpPUSH:
		if !need(1) {
			return
		}
		var ok1 bool
		in.Rs, ok1 = reg(ops[0])
		if !ok1 {
			return
		}
	case isa.OpPOP:
		if !need(1) {
			return
		}
		var ok1 bool
		in.Rd, ok1 = reg(ops[0])
		if !ok1 {
			return
		}
	default:
		a.errorf(line, "mnemonic %q not assemblable", mn)
		return
	}

	if immOp != nil {
		if immOp.isSym {
			if encode {
				a.relocs = append(a.relocs, pendingReloc{
					sec: a.cur, off: a.secs[a.cur].size + 4,
					sym: immOp.sym, addend: int32(immOp.addend), line: line,
				})
			}
		} else {
			in.Imm = uint32(immOp.val)
		}
	}
	var buf [isa.InstrSize]byte
	in.Encode(buf[:])
	a.emitBytes(line, buf[:], encode)
}

// emit builds the final binfmt.File.
func (a *assembler) emit() (*binfmt.File, error) {
	f := &binfmt.File{Relocatable: true}
	for _, s := range a.secs {
		f.Sections = append(f.Sections, binfmt.Section{
			Name:  s.name,
			Size:  s.size,
			Flags: s.flags,
			Data:  append([]byte(nil), s.buf...),
		})
	}
	symIdx := make(map[string]int32)
	for _, name := range a.labelSeq {
		l := a.labels[name]
		kind := binfmt.SymObject
		if a.secs[l.sec].name == binfmt.SecText {
			if strings.HasPrefix(name, ".") {
				kind = binfmt.SymLabel
			} else {
				kind = binfmt.SymFunc
			}
		} else if a.stringAt[name] {
			kind = binfmt.SymString
		}
		symIdx[name] = int32(len(f.Symbols))
		f.Symbols = append(f.Symbols, binfmt.Symbol{
			Name:    name,
			Section: int32(l.sec),
			Value:   l.off,
			Kind:    kind,
			Global:  a.globals[name],
		})
	}
	for _, r := range a.relocs {
		idx, ok := symIdx[r.sym]
		if !ok {
			// Undefined symbol: external reference for the linker.
			idx = int32(len(f.Symbols))
			symIdx[r.sym] = idx
			f.Symbols = append(f.Symbols, binfmt.Symbol{
				Name: r.sym, Section: -1, Kind: binfmt.SymFunc, Global: true,
			})
		}
		f.Relocs = append(f.Relocs, binfmt.Reloc{
			Section: int32(r.sec), Offset: r.off, Sym: idx, Addend: r.addend,
		})
	}
	f.SortRelocs()
	return f, nil
}

// --- operand parsing ---

func parseReg(s string) (isa.Reg, error) {
	switch strings.ToLower(s) {
	case "sp":
		return isa.SP, nil
	case "fp":
		return isa.FP, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// parseMem parses "[reg]", "[reg+off]", "[reg-off]".
func parseMem(s string) (isa.Reg, int32, error) {
	if len(s) < 3 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(strings.TrimSpace(inner))
		return r, 0, err
	}
	r, err := parseReg(strings.TrimSpace(inner[:sep]))
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(strings.TrimSpace(inner[sep:]), 0, 33)
	if err != nil {
		return 0, 0, fmt.Errorf("bad memory offset in %q", s)
	}
	return r, int32(off), nil
}

// constExpr evaluates an expression that must be a constant.
func (a *assembler) constExpr(s string) (int64, error) {
	op, err := a.operandExpr(s)
	if err != nil {
		return 0, err
	}
	if op.isSym {
		return 0, fmt.Errorf("constant required, got symbol %q", op.sym)
	}
	return op.val, nil
}

// operandExpr parses an immediate: integer, char, .equ constant, or
// label[+-offset].
func (a *assembler) operandExpr(s string) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, fmt.Errorf("empty operand")
	}
	// Character literal.
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if body == "\\n" {
			return operand{val: '\n'}, nil
		}
		if body == "\\t" {
			return operand{val: '\t'}, nil
		}
		if body == "\\0" {
			return operand{val: 0}, nil
		}
		if len(body) == 1 {
			return operand{val: int64(body[0])}, nil
		}
		return operand{}, fmt.Errorf("bad char literal %s", s)
	}
	// Plain integer.
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return operand{val: v}, nil
	}
	// name or name+off / name-off.
	name, addend := s, int64(0)
	if i := strings.LastIndexAny(s[1:], "+-"); i >= 0 {
		i++ // adjust for s[1:]
		v, err := strconv.ParseInt(s[i:], 0, 33)
		if err == nil {
			name, addend = strings.TrimSpace(s[:i]), v
		}
	}
	if v, ok := a.equs[name]; ok {
		return operand{val: v + addend}, nil
	}
	if !validSymName(name) {
		return operand{}, fmt.Errorf("bad operand %q", s)
	}
	return operand{isSym: true, sym: name, addend: addend}, nil
}

func validSymName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.', c == '$':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits on commas that are outside brackets and quotes.
func splitOperands(s string) []string {
	var out []string
	depth, inStr, start := 0, false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func parseStringLit(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("string literal required, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash in %q", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}
