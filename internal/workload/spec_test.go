package workload

import (
	"strings"
	"testing"

	"asc/internal/libc"
)

// Determinism matters: policies, MACs, and benchmark numbers must be
// bit-identical across runs.
func TestSourceDeterministic(t *testing.T) {
	for _, name := range Names() {
		for _, os := range []libc.OS{libc.Linux, libc.OpenBSD} {
			s1, err := Program(name, os)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Program(name, os)
			if err != nil {
				t.Fatal(err)
			}
			if s1.Source(os) != s2.Source(os) {
				t.Errorf("%s/%v: source not deterministic", name, os)
			}
		}
	}
	for _, spec := range PerfSuite() {
		if spec.Source(5) != spec.Source(5) {
			t.Errorf("%s: perf source not deterministic", spec.Name)
		}
	}
}

func TestProgramUnknown(t *testing.T) {
	if _, err := Program("nonesuch", libc.Linux); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestSpecInputs(t *testing.T) {
	s, err := Program("bison", libc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.TrainingInput()
	all := s.AllRareCommands()
	if !strings.HasPrefix(all, tr) {
		t.Errorf("AllRareCommands %q does not extend TrainingInput %q", all, tr)
	}
	if len(all) <= len(tr) {
		t.Error("no rare commands present")
	}
}

func TestToolSourcesComplete(t *testing.T) {
	for _, n := range ToolNames() {
		src, ok := ToolSource(n)
		if !ok || !strings.Contains(src, ".global main") {
			t.Errorf("tool %s: missing or malformed source", n)
		}
	}
	if _, ok := ToolSource("nonesuch"); ok {
		t.Error("unknown tool found")
	}
}
