// Package core ties the substrates together into a complete authenticated
// system call deployment: a machine with a filesystem, a kernel holding
// the MAC key, and a trusted installer that admits binaries onto it.
//
// The paper's security model is reproduced end to end: "the system as a
// whole is protected once all binaries that run in user space have been
// transformed to use authenticated system calls by the installer"
// (Section 3.3). A System in Enforce mode kills any process that issues a
// system call its policy does not authenticate.
package core

import (
	"errors"
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/installer"
	"asc/internal/kernel"
	"asc/internal/policy"
	"asc/internal/sched"
	"asc/internal/vfs"
)

// System is one protected machine.
type System struct {
	FS     *vfs.FS
	Kernel *kernel.Kernel

	key       []byte
	enforce   bool
	nextProg  uint32
	uniqueIDs bool
}

// Config configures a System.
type Config struct {
	// Key is the MAC key shared by installer and kernel. Required when
	// Enforce is true.
	Key []byte
	// Enforce selects enforcement (default) versus permissive execution.
	Permissive bool
	// UniqueBlockIDs enables the §5.5 Frankenstein countermeasure:
	// every installed binary receives a distinct program ID.
	UniqueBlockIDs bool
	// Strict enables full-system enforcement (§3.3): processes whose
	// binaries were not transformed by the installer are killed at
	// their first system call, not merely left unmonitored.
	Strict bool
	// NormalizePaths enables the §5.4 symlink-race defense.
	NormalizePaths bool
	// Personality selects the OS personality (default Linux).
	Personality kernel.Personality
	// Enforcement selects what the kernel does with a violating call:
	// kill the process (default), deny the call with EPERM, or audit
	// and continue.
	Enforcement kernel.Enforcement
	// KernelOptions are appended to the kernel's construction options
	// (fault injectors, audit-ring capacity, verify cache, ...).
	KernelOptions []kernel.Option
	// FS, when non-nil, mounts an existing filesystem instead of
	// creating a private one. Cluster nodes share one durable VFS this
	// way (the VFS is internally locked, so concurrent kernels are
	// safe); a checkpoint taken on one node then restores on another
	// with its open-file paths still resolvable.
	FS *vfs.FS
}

// NewSystem builds a machine with a standard directory tree.
func NewSystem(cfg Config) (*System, error) {
	if !cfg.Permissive && len(cfg.Key) == 0 {
		return nil, errors.New("core: enforcement requires a key")
	}
	fs := cfg.FS
	if fs == nil {
		fs = vfs.New()
	}
	for _, d := range []string{"/bin", "/etc", "/tmp", "/data", "/var/log", "/var/run", "/home"} {
		if err := fs.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	mode := kernel.Enforce
	var key []byte
	if cfg.Permissive {
		mode = kernel.Permissive
	} else {
		key = cfg.Key
	}
	pers := cfg.Personality
	if pers == 0 {
		pers = kernel.Linux
	}
	opts := []kernel.Option{kernel.WithMode(mode), kernel.WithPersonality(pers)}
	if cfg.Strict {
		opts = append(opts, kernel.WithRequireAuthenticated())
	}
	if cfg.NormalizePaths {
		opts = append(opts, kernel.WithNormalizePaths())
	}
	if cfg.Enforcement != kernel.EnforceKill {
		opts = append(opts, kernel.WithEnforcement(cfg.Enforcement))
	}
	opts = append(opts, cfg.KernelOptions...)
	k, err := kernel.New(fs, key, opts...)
	if err != nil {
		return nil, err
	}
	return &System{
		FS:        fs,
		Kernel:    k,
		key:       cfg.Key,
		enforce:   !cfg.Permissive,
		nextProg:  1,
		uniqueIDs: cfg.UniqueBlockIDs,
	}, nil
}

// Install runs the trusted installer over a relocatable executable and
// registers the authenticated binary at /bin/<name> in the filesystem (so
// execve can reach it). It returns the authenticated binary, the
// generated policy, and the installation report.
func (s *System) Install(exe *binfmt.File, name string) (*binfmt.File, *policy.ProgramPolicy, *installer.Report, error) {
	opts := installer.Options{Key: s.key, OSName: "linux"}
	if s.uniqueIDs {
		opts.ProgramID = s.nextProg
		s.nextProg++
	}
	out, pp, rep, err := installer.Install(exe, name, opts)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: install %s: %w", name, err)
	}
	b, err := out.Bytes()
	if err != nil {
		return nil, nil, nil, err
	}
	if err := s.FS.WriteFile("/bin/"+name, b, 0o755); err != nil {
		return nil, nil, nil, err
	}
	return out, pp, rep, nil
}

// Result summarizes one process execution.
type Result struct {
	Output   string
	ExitCode uint32
	Killed   bool
	Reason   kernel.KillReason
	Cycles   uint64
	Syscalls uint64
	Verified uint64 // authenticated calls checked
	// Cache is the process's verification-cache counter snapshot
	// (consistent: taken through the seqlock accessor).
	Cache kernel.CacheStats
}

// Exec runs a binary to completion with the given standard input. An
// unauthenticated binary may be spawned on an enforcing system — matching
// the paper, it is the kernel (not a loader check) that kills it at its
// first system call.
func (s *System) Exec(exe *binfmt.File, name, stdin string) (*Result, error) {
	p, err := s.Kernel.Spawn(exe, name)
	if err != nil {
		return nil, err
	}
	p.Stdin = []byte(stdin)
	if err := s.Kernel.Run(p, 4_000_000_000); err != nil {
		return nil, fmt.Errorf("core: run %s: %w", name, err)
	}
	return &Result{
		Output:   p.Output(),
		ExitCode: p.Code,
		Killed:   p.Killed,
		Reason:   p.KilledBy,
		Cycles:   p.CPU.Cycles,
		Syscalls: p.SyscallCount,
		Verified: p.VerifyCount,
		Cache:    p.CacheStats(),
	}, nil
}

// RunRequest describes one process for RunAll.
type RunRequest struct {
	Exe   *binfmt.File
	Name  string
	Stdin string
	// MaxCycles bounds the process; zero means the Exec default.
	MaxCycles uint64
}

// ProcResult is one process's outcome from RunAll. Err is the
// driver-level failure (cycle-limit exhaustion, VM fault); when Err is
// non-nil the embedded Result reflects the process state at failure.
type ProcResult struct {
	Result
	Err error
}

// RunAll spawns every requested process on this system's kernel and
// drives the fleet to completion across a sched.Pool of the given
// width (≤ 0 means GOMAXPROCS). Results are index-aligned with reqs.
// One process failing — killed by the monitor, out of cycles — does
// not abort its siblings; each ProcResult carries its own error.
//
// Per-process results are deterministic regardless of worker count;
// only cross-process interleaving (audit-ring order) varies. See the
// sched package's determinism contract.
func (s *System) RunAll(reqs []RunRequest, workers int) ([]ProcResult, error) {
	jobs := make([]sched.Job, len(reqs))
	for i, r := range reqs {
		p, err := s.Kernel.Spawn(r.Exe, r.Name)
		if err != nil {
			return nil, fmt.Errorf("core: spawn %s: %w", r.Name, err)
		}
		p.Stdin = []byte(r.Stdin)
		max := r.MaxCycles
		if max == 0 {
			max = 4_000_000_000
		}
		jobs[i] = sched.Job{Kern: s.Kernel, Proc: p, MaxCycles: max}
	}
	pool := sched.Pool{Workers: workers}
	var raw []sched.Result
	if s.Kernel.Net != nil {
		// Networked fleets block inside the kernel (accept, recv,
		// stream backpressure); the gated runner lets a parked process
		// yield its run slot to the sibling that will unblock it.
		raw = pool.RunGated(jobs)
	} else {
		raw = pool.Run(jobs)
	}
	out := make([]ProcResult, len(jobs))
	for i, r := range raw {
		p := jobs[i].Proc
		out[i] = ProcResult{
			Result: Result{
				Output:   p.Output(),
				ExitCode: p.Code,
				Killed:   p.Killed,
				Reason:   p.KilledBy,
				Cycles:   p.CPU.Cycles,
				Syscalls: p.SyscallCount,
				Verified: p.VerifyCount,
				Cache:    p.CacheStats(),
			},
			Err: r.Err,
		}
	}
	return out, nil
}

// ExecPath runs a binary previously installed into the filesystem.
func (s *System) ExecPath(path, stdin string) (*Result, error) {
	b, err := s.FS.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	f, err := binfmt.Read(b)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return s.Exec(f, path, stdin)
}

// Audit returns the kernel's held violation records, oldest first. The
// underlying log is a bounded ring; s.Kernel.Audit.Dropped() reports how
// many older records were overwritten.
func (s *System) Audit() []kernel.AuditEntry {
	return s.Kernel.Audit.Entries()
}
