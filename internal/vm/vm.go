// Package vm implements the CPU of the simulated platform: an interpreter
// for the ISA defined in internal/isa with deterministic cycle accounting
// and segment-based memory protection.
//
// The cycle model replaces the Pentium rdtsc counter the paper uses for
// its microbenchmarks (Table 4): every instruction has a fixed cost and
// the kernel adds trap and verification costs on system calls, so
// measured overheads are deterministic and noise-free.
//
// The stack segment is mapped read-write-execute, as was typical of the
// 2005-era x86 systems the paper targets: code injected via a buffer
// overflow can run, and is stopped only when it attempts a system call —
// exactly the boundary system call monitoring defends.
package vm

import (
	"errors"
	"fmt"

	"asc/internal/isa"
)

// Instruction cycle costs.
const (
	CycleALU    = 1 // arithmetic, moves, NOP
	CycleMem    = 3 // loads, stores, push, pop
	CycleBranch = 2 // jumps and conditional branches
	CycleCall   = 4 // call, indirect call, return
)

// Fault describes a CPU fault (memory violation, illegal instruction...).
type Fault struct {
	PC   uint32
	Addr uint32
	Msg  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: fault at pc=%#x addr=%#x: %s", f.PC, f.Addr, f.Msg)
}

// ErrCycleLimit is returned by Run when the cycle budget is exhausted.
var ErrCycleLimit = errors.New("vm: cycle limit exceeded")

// Memory permission flags (match binfmt section flags).
const (
	PermRead uint8 = 1 << iota
	PermWrite
	PermExec
)

// Segment is a protected address range.
type Segment struct {
	Name  string
	Start uint32
	End   uint32 // exclusive
	Perms uint8
}

// WriteFaulter is the fault-injection hook for privileged stores
// (internal/fault). TornWrite is consulted before every KernelWrite; it
// returns how many leading bytes of the n-byte write actually land,
// modeling a torn multi-word store interrupted by a fault. Returning n
// leaves the write untouched.
type WriteFaulter interface {
	TornWrite(addr uint32, n int) int
}

// Memory is a flat, segment-protected address space.
//
// Each segment carries a store-generation counter that is bumped whenever
// the *application* writes into it: CPU store instructions and kernel
// writes performed on the application's behalf (UserWrite, e.g. read()
// filling a user buffer). Privileged kernel bookkeeping (KernelWrite,
// KernelStore32 — the loader, the memory-checker state update, the
// capability-set maintenance) does not bump generations. The kernel's
// verification cache uses the counters to prove that MAC-checked bytes
// are unchanged since they were last verified.
type Memory struct {
	base   uint32
	data   []byte
	segs   []Segment
	gens   []uint64 // store-generation counters, parallel to segs
	wfault WriteFaulter

	// Write-watch window: a single byte range whose counter is bumped by
	// every application store overlapping it (CPU store instructions and
	// UserWrite), with the same kernel/application split as the segment
	// generations. Unlike segment generations it is not part of the
	// checkpointable protection map and is not addressable by
	// FlipGenerationBit; the kernel uses it to notice application writes
	// into the control-flow state words between group-commit flushes.
	watchStart uint32
	watchEnd   uint32 // exclusive; 0 means no watch installed
	watchGen   uint64

	// Optional demand paging over the mmap arena (paging.go). With pt
	// nil every access takes the flat fast path.
	pt    *PageTable
	pager PageFaulter
}

// SetWriteFaulter installs (or, with nil, removes) the torn-store
// injector. With no faulter installed every write lands in full.
func (m *Memory) SetWriteFaulter(f WriteFaulter) { m.wfault = f }

// NumSegments returns the number of protection segments.
func (m *Memory) NumSegments() int { return len(m.segs) }

// FlipGenerationBit XORs one bit of segment seg's store-generation
// counter, modeling a fault in the verification cache's coherence
// metadata. It reports whether the segment exists.
func (m *Memory) FlipGenerationBit(seg int, bit uint) bool {
	if seg < 0 || seg >= len(m.gens) {
		return false
	}
	m.gens[seg] ^= 1 << (bit & 63)
	return true
}

// WatchRange installs the write-watch window over [start, end) and
// returns the current watch counter. Passing start >= end removes the
// watch. Only one window exists at a time; reinstalling moves it.
func (m *Memory) WatchRange(start, end uint32) uint64 {
	if start >= end {
		m.watchStart, m.watchEnd = 0, 0
		return m.watchGen
	}
	m.watchStart, m.watchEnd = start, end
	return m.watchGen
}

// WatchGeneration returns the write-watch counter. It advances exactly
// when an application store overlapped the installed window.
func (m *Memory) WatchGeneration() uint64 { return m.watchGen }

// bumpWatch advances the watch counter if [addr, addr+n) overlaps the
// installed window.
func (m *Memory) bumpWatch(addr, end uint32) {
	if m.watchEnd != 0 && addr < m.watchEnd && m.watchStart < end {
		m.watchGen++
	}
}

// NewMemory creates an address space covering [base, base+size).
func NewMemory(base, size uint32) *Memory {
	return &Memory{base: base, data: make([]byte, size)}
}

// Base returns the lowest mapped address.
func (m *Memory) Base() uint32 { return m.base }

// Limit returns the address one past the highest mapped byte.
func (m *Memory) Limit() uint32 { return m.base + uint32(len(m.data)) }

// Map adds (or replaces, by name) a protection segment. Replacing a
// segment keeps its store-generation counter: remapping (e.g. brk growing
// the heap) does not make previously verified bytes look unchanged.
func (m *Memory) Map(seg Segment) {
	for i := range m.segs {
		if m.segs[i].Name == seg.Name {
			m.segs[i] = seg
			return
		}
	}
	m.segs = append(m.segs, seg)
	m.gens = append(m.gens, 0)
}

// SpanGeneration returns the store-generation counter of the segment
// wholly containing [addr, addr+n). It reports false when no single
// segment covers the span; callers treating the counter as a proof of
// immutability must then assume the bytes changed.
func (m *Memory) SpanGeneration(addr, n uint32) (uint64, bool) {
	end := addr + n
	if end < addr {
		return 0, false
	}
	for i := range m.segs {
		if addr >= m.segs[i].Start && addr < m.segs[i].End {
			if end <= m.segs[i].End {
				return m.gens[i], true
			}
			return 0, false
		}
	}
	return 0, false
}

// BumpGeneration marks [addr, addr+n) as modified by the application,
// bumping the counter of every overlapping segment.
func (m *Memory) BumpGeneration(addr, n uint32) {
	end := addr + n
	if end < addr {
		end = ^uint32(0)
	}
	for i := range m.segs {
		if m.segs[i].Start < end && addr < m.segs[i].End {
			m.gens[i]++
		}
	}
	m.bumpWatch(addr, end)
}

// storeIndex returns the index of the writable segment wholly containing
// [addr, addr+n), or -1 on a protection violation.
func (m *Memory) storeIndex(addr, n uint32) int {
	end := addr + n
	if end < addr {
		return -1
	}
	for i := range m.segs {
		if addr >= m.segs[i].Start && addr < m.segs[i].End {
			if end <= m.segs[i].End && m.segs[i].Perms&PermWrite != 0 {
				return i
			}
			return -1
		}
	}
	return -1
}

// Segments returns a copy of the protection map.
func (m *Memory) Segments() []Segment {
	return append([]Segment(nil), m.segs...)
}

// SnapshotSegments returns copies of the protection map and the
// index-aligned store-generation counters, for checkpointing.
func (m *Memory) SnapshotSegments() ([]Segment, []uint64) {
	return append([]Segment(nil), m.segs...), append([]uint64(nil), m.gens...)
}

// RestoreSegments replaces the protection map and generation counters
// wholesale. It is a kernel-privileged operation used by checkpoint
// restore, where the incoming table was already authenticated; it
// validates only structural sanity (bounds and ordering of each range).
func (m *Memory) RestoreSegments(segs []Segment, gens []uint64) error {
	if len(segs) != len(gens) {
		return fmt.Errorf("vm: %d segments, %d generation counters", len(segs), len(gens))
	}
	for i := range segs {
		if segs[i].End < segs[i].Start || segs[i].Start < m.base || segs[i].End > m.Limit() {
			return fmt.Errorf("vm: segment %s [%#x,%#x) outside [%#x,%#x)",
				segs[i].Name, segs[i].Start, segs[i].End, m.base, m.Limit())
		}
	}
	m.segs = append(m.segs[:0:0], segs...)
	m.gens = append(m.gens[:0:0], gens...)
	return nil
}

// FindSegment returns the segment covering addr, or nil.
func (m *Memory) FindSegment(addr uint32) *Segment {
	for i := range m.segs {
		if addr >= m.segs[i].Start && addr < m.segs[i].End {
			return &m.segs[i]
		}
	}
	return nil
}

func (m *Memory) check(addr, n uint32, perm uint8) bool {
	if n == 0 {
		return true
	}
	end := addr + n
	if end < addr { // wraparound
		return false
	}
	// The whole range must be inside one permission segment; ranges are
	// small (<= 4 bytes for CPU accesses).
	seg := m.FindSegment(addr)
	return seg != nil && end <= seg.End && seg.Perms&perm == perm
}

func (m *Memory) inBounds(addr, n uint32) bool {
	return addr >= m.base && addr+n >= addr && addr+n <= m.Limit()
}

// load32 reads without permission checks (kernel privilege).
func (m *Memory) load32(addr uint32) (uint32, bool) {
	if !m.inBounds(addr, 4) {
		return 0, false
	}
	off := addr - m.base
	b := m.data[off : off+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, true
}

func (m *Memory) store32(addr, v uint32) bool {
	if !m.inBounds(addr, 4) {
		return false
	}
	off := addr - m.base
	m.data[off] = byte(v)
	m.data[off+1] = byte(v >> 8)
	m.data[off+2] = byte(v >> 16)
	m.data[off+3] = byte(v >> 24)
	return true
}

// KernelRead copies n bytes at addr with kernel privilege (bounds check
// only). The returned slice aliases VM memory; callers must not hold it
// across mutations.
func (m *Memory) KernelRead(addr, n uint32) ([]byte, error) {
	if !m.inBounds(addr, n) {
		return nil, &Fault{Addr: addr, Msg: fmt.Sprintf("kernel read of %d bytes out of bounds", n)}
	}
	if err := m.pageCheck(addr, n, 0); err != nil {
		return nil, err
	}
	off := addr - m.base
	return m.data[off : off+n], nil
}

// KernelWrite copies b into memory at addr with kernel privilege. An
// installed WriteFaulter may tear the store: only a prefix of b lands.
// Bounds are checked against the full intended write either way.
func (m *Memory) KernelWrite(addr uint32, b []byte) error {
	if !m.inBounds(addr, uint32(len(b))) {
		return &Fault{Addr: addr, Msg: fmt.Sprintf("kernel write of %d bytes out of bounds", len(b))}
	}
	if err := m.pageCheck(addr, uint32(len(b)), 0); err != nil {
		return err
	}
	if m.wfault != nil {
		if n := m.wfault.TornWrite(addr, len(b)); n >= 0 && n < len(b) {
			b = b[:n]
		}
	}
	copy(m.data[addr-m.base:], b)
	return nil
}

// UserWrite copies b into memory at addr on behalf of the application
// (system call results delivered into user buffers). It has kernel
// privilege like KernelWrite but bumps the store-generation counters, so
// data the application could have influenced never looks immutable.
func (m *Memory) UserWrite(addr uint32, b []byte) error {
	if err := m.KernelWrite(addr, b); err != nil {
		return err
	}
	m.BumpGeneration(addr, uint32(len(b)))
	return nil
}

// KernelLoad32 reads a 32-bit word with kernel privilege.
func (m *Memory) KernelLoad32(addr uint32) (uint32, error) {
	if err := m.pageCheck(addr, 4, 0); err != nil {
		return 0, err
	}
	v, ok := m.load32(addr)
	if !ok {
		return 0, &Fault{Addr: addr, Msg: "kernel load out of bounds"}
	}
	return v, nil
}

// KernelStore32 writes a 32-bit word with kernel privilege. Like
// KernelWrite it is subject to an installed WriteFaulter.
func (m *Memory) KernelStore32(addr, v uint32) error {
	if m.wfault != nil {
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return m.KernelWrite(addr, b[:])
	}
	if err := m.pageCheck(addr, 4, 0); err != nil {
		return err
	}
	if !m.store32(addr, v) {
		return &Fault{Addr: addr, Msg: "kernel store out of bounds"}
	}
	return nil
}

// CString reads a NUL-terminated string at addr with kernel privilege,
// failing if no NUL appears within max bytes.
func (m *Memory) CString(addr, max uint32) (string, error) {
	if !m.inBounds(addr, 1) {
		return "", &Fault{Addr: addr, Msg: "string read out of bounds"}
	}
	off := addr - m.base
	limit := uint32(len(m.data)) - off
	if limit > max {
		limit = max
	}
	for i := uint32(0); i < limit; i++ {
		// Paged scan: fault in each page lazily so the string's length,
		// not max, decides how many pages the lookup touches.
		if m.pt != nil && (i == 0 || (addr+i)&(PageSize-1) == 0) {
			if err := m.pageCheck(addr+i, 1, 0); err != nil {
				return "", err
			}
		}
		if m.data[off+i] == 0 {
			return string(m.data[off : off+i]), nil
		}
	}
	return "", &Fault{Addr: addr, Msg: "unterminated string"}
}

// TrapHandler receives system call traps from the CPU.
type TrapHandler interface {
	// Trap handles a SYSCALL or ASYSCALL executed at address site.
	// It returns the value placed in R0. If halt is true the CPU stops
	// (the process exited or was killed by the monitor).
	Trap(c *CPU, site uint32, authenticated bool) (ret uint32, halt bool, err error)
}

// CPU is one simulated hardware thread.
type CPU struct {
	Regs   [isa.NumRegs]uint32
	PC     uint32
	Mem    *Memory
	Cycles uint64
	Halted bool

	handler TrapHandler

	// icache holds predecoded instructions for the static text range.
	icacheBase uint32
	icache     []isa.Instr
	icacheOK   []bool
}

// New creates a CPU over mem that delivers traps to handler.
func New(mem *Memory, handler TrapHandler) *CPU {
	return &CPU{Mem: mem, handler: handler}
}

// PrimeICache predecodes the instruction stream in [start, end) so that
// Step avoids re-decoding hot loops. Faulty encodings are left to fault
// lazily at execution time.
func (c *CPU) PrimeICache(start, end uint32) {
	if end <= start {
		return
	}
	n := (end - start) / isa.InstrSize
	c.icacheBase = start
	c.icache = make([]isa.Instr, n)
	c.icacheOK = make([]bool, n)
	for i := uint32(0); i < n; i++ {
		addr := start + i*isa.InstrSize
		b, err := c.Mem.KernelRead(addr, isa.InstrSize)
		if err != nil {
			continue
		}
		in, err := isa.Decode(b)
		if err != nil {
			continue
		}
		c.icache[i] = in
		c.icacheOK[i] = true
	}
}

func (c *CPU) fetch() (isa.Instr, error) {
	pc := c.PC
	if pc >= c.icacheBase && pc-c.icacheBase < uint32(len(c.icache))*isa.InstrSize && (pc-c.icacheBase)%isa.InstrSize == 0 {
		idx := (pc - c.icacheBase) / isa.InstrSize
		if c.icacheOK[idx] {
			return c.icache[idx], nil
		}
	}
	if !c.Mem.check(pc, isa.InstrSize, PermRead|PermExec) {
		return isa.Instr{}, &Fault{PC: pc, Addr: pc, Msg: "instruction fetch protection violation"}
	}
	if err := c.Mem.pageCheck(pc, isa.InstrSize, PermRead|PermExec); err != nil {
		return isa.Instr{}, err
	}
	b, err := c.Mem.KernelRead(pc, isa.InstrSize)
	if err != nil {
		return isa.Instr{}, &Fault{PC: pc, Addr: pc, Msg: "instruction fetch out of bounds"}
	}
	in, err := isa.Decode(b)
	if err != nil {
		return isa.Instr{}, &Fault{PC: pc, Addr: pc, Msg: fmt.Sprintf("illegal instruction: %v", err)}
	}
	return in, nil
}

func (c *CPU) load(addr uint32, size uint32) (uint32, error) {
	if !c.Mem.check(addr, size, PermRead) {
		return 0, &Fault{PC: c.PC, Addr: addr, Msg: "read protection violation"}
	}
	if err := c.Mem.pageCheck(addr, size, PermRead); err != nil {
		return 0, err
	}
	if size == 1 {
		b, err := c.Mem.KernelRead(addr, 1)
		if err != nil {
			return 0, err
		}
		return uint32(b[0]), nil
	}
	v, ok := c.Mem.load32(addr)
	if !ok {
		return 0, &Fault{PC: c.PC, Addr: addr, Msg: "read out of bounds"}
	}
	return v, nil
}

func (c *CPU) store(addr, v uint32, size uint32) error {
	idx := c.Mem.storeIndex(addr, size)
	if idx < 0 {
		return &Fault{PC: c.PC, Addr: addr, Msg: "write protection violation"}
	}
	if err := c.Mem.pageCheck(addr, size, PermWrite); err != nil {
		return err
	}
	c.Mem.gens[idx]++
	c.Mem.bumpWatch(addr, addr+size)
	if size == 1 {
		if !c.Mem.inBounds(addr, 1) {
			return &Fault{PC: c.PC, Addr: addr, Msg: "write out of bounds"}
		}
		c.Mem.data[addr-c.Mem.base] = byte(v)
		return nil
	}
	if !c.Mem.store32(addr, v) {
		return &Fault{PC: c.PC, Addr: addr, Msg: "write out of bounds"}
	}
	return nil
}

// Step executes a single instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return errors.New("vm: cpu halted")
	}
	in, err := c.fetch()
	if err != nil {
		return err
	}
	next := c.PC + isa.InstrSize
	r := &c.Regs

	switch in.Op {
	case isa.OpNOP:
		c.Cycles += CycleALU
	case isa.OpHALT:
		c.Cycles += CycleALU
		c.Halted = true
	case isa.OpMOV:
		r[in.Rd] = r[in.Rs]
		c.Cycles += CycleALU
	case isa.OpMOVI:
		r[in.Rd] = in.Imm
		c.Cycles += CycleALU
	case isa.OpLOAD:
		v, err := c.load(r[in.Rs]+in.Imm, 4)
		if err != nil {
			return err
		}
		r[in.Rd] = v
		c.Cycles += CycleMem
	case isa.OpLOADB:
		v, err := c.load(r[in.Rs]+in.Imm, 1)
		if err != nil {
			return err
		}
		r[in.Rd] = v
		c.Cycles += CycleMem
	case isa.OpSTORE:
		if err := c.store(r[in.Rd]+in.Imm, r[in.Rs], 4); err != nil {
			return err
		}
		c.Cycles += CycleMem
	case isa.OpSTOREB:
		if err := c.store(r[in.Rd]+in.Imm, r[in.Rs], 1); err != nil {
			return err
		}
		c.Cycles += CycleMem
	case isa.OpADD:
		r[in.Rd] = r[in.Rs] + r[in.Rt]
		c.Cycles += CycleALU
	case isa.OpSUB:
		r[in.Rd] = r[in.Rs] - r[in.Rt]
		c.Cycles += CycleALU
	case isa.OpMUL:
		r[in.Rd] = r[in.Rs] * r[in.Rt]
		c.Cycles += CycleALU
	case isa.OpDIV:
		if r[in.Rt] == 0 {
			return &Fault{PC: c.PC, Msg: "division by zero"}
		}
		r[in.Rd] = r[in.Rs] / r[in.Rt]
		c.Cycles += CycleALU
	case isa.OpMOD:
		if r[in.Rt] == 0 {
			return &Fault{PC: c.PC, Msg: "division by zero"}
		}
		r[in.Rd] = r[in.Rs] % r[in.Rt]
		c.Cycles += CycleALU
	case isa.OpAND:
		r[in.Rd] = r[in.Rs] & r[in.Rt]
		c.Cycles += CycleALU
	case isa.OpOR:
		r[in.Rd] = r[in.Rs] | r[in.Rt]
		c.Cycles += CycleALU
	case isa.OpXOR:
		r[in.Rd] = r[in.Rs] ^ r[in.Rt]
		c.Cycles += CycleALU
	case isa.OpSHL:
		r[in.Rd] = r[in.Rs] << (r[in.Rt] & 31)
		c.Cycles += CycleALU
	case isa.OpSHR:
		r[in.Rd] = r[in.Rs] >> (r[in.Rt] & 31)
		c.Cycles += CycleALU
	case isa.OpADDI:
		r[in.Rd] = r[in.Rs] + in.Imm
		c.Cycles += CycleALU
	case isa.OpMULI:
		r[in.Rd] = r[in.Rs] * in.Imm
		c.Cycles += CycleALU
	case isa.OpANDI:
		r[in.Rd] = r[in.Rs] & in.Imm
		c.Cycles += CycleALU
	case isa.OpORI:
		r[in.Rd] = r[in.Rs] | in.Imm
		c.Cycles += CycleALU
	case isa.OpXORI:
		r[in.Rd] = r[in.Rs] ^ in.Imm
		c.Cycles += CycleALU
	case isa.OpSHLI:
		r[in.Rd] = r[in.Rs] << (in.Imm & 31)
		c.Cycles += CycleALU
	case isa.OpSHRI:
		r[in.Rd] = r[in.Rs] >> (in.Imm & 31)
		c.Cycles += CycleALU
	case isa.OpJMP:
		next = in.Imm
		c.Cycles += CycleBranch
	case isa.OpBEQ:
		if r[in.Rs] == r[in.Rt] {
			next = in.Imm
		}
		c.Cycles += CycleBranch
	case isa.OpBNE:
		if r[in.Rs] != r[in.Rt] {
			next = in.Imm
		}
		c.Cycles += CycleBranch
	case isa.OpBLT:
		if int32(r[in.Rs]) < int32(r[in.Rt]) {
			next = in.Imm
		}
		c.Cycles += CycleBranch
	case isa.OpBGE:
		if int32(r[in.Rs]) >= int32(r[in.Rt]) {
			next = in.Imm
		}
		c.Cycles += CycleBranch
	case isa.OpBLTU:
		if r[in.Rs] < r[in.Rt] {
			next = in.Imm
		}
		c.Cycles += CycleBranch
	case isa.OpBGEU:
		if r[in.Rs] >= r[in.Rt] {
			next = in.Imm
		}
		c.Cycles += CycleBranch
	case isa.OpCALL, isa.OpCALLR:
		r[isa.SP] -= 4
		if err := c.store(r[isa.SP], next, 4); err != nil {
			return err
		}
		if in.Op == isa.OpCALL {
			next = in.Imm
		} else {
			next = r[in.Rs]
		}
		c.Cycles += CycleCall
	case isa.OpRET:
		v, err := c.load(r[isa.SP], 4)
		if err != nil {
			return err
		}
		r[isa.SP] += 4
		next = v
		c.Cycles += CycleCall
	case isa.OpPUSH:
		r[isa.SP] -= 4
		if err := c.store(r[isa.SP], r[in.Rs], 4); err != nil {
			return err
		}
		c.Cycles += CycleMem
	case isa.OpPOP:
		v, err := c.load(r[isa.SP], 4)
		if err != nil {
			return err
		}
		r[isa.SP] += 4
		r[in.Rd] = v
		c.Cycles += CycleMem
	case isa.OpSYSCALL, isa.OpASYSCALL:
		pcBefore := c.PC
		ret, halt, err := c.handler.Trap(c, c.PC, in.Op == isa.OpASYSCALL)
		if err != nil {
			return err
		}
		if halt {
			c.Halted = true
			return nil
		}
		r[isa.R0] = ret
		if c.PC != pcBefore {
			// The handler replaced the program image (execve): resume at
			// the address it installed rather than the next instruction.
			next = c.PC
		}
	default:
		return &Fault{PC: c.PC, Msg: fmt.Sprintf("unimplemented opcode %v", in.Op)}
	}
	if !c.Halted {
		c.PC = next
	}
	return nil
}

// Reset points the CPU at a fresh address space and entry state,
// preserving the cycle counter. Used by execve to replace the program
// image in place.
func (c *CPU) Reset(mem *Memory, pc, sp uint32) {
	c.Mem = mem
	c.Regs = [isa.NumRegs]uint32{}
	c.Regs[isa.SP] = sp
	c.PC = pc
	c.icache = nil
	c.icacheOK = nil
	c.icacheBase = 0
}

// Run executes until the CPU halts, faults, or exceeds maxCycles.
func (c *CPU) Run(maxCycles uint64) error {
	for !c.Halted {
		if c.Cycles >= maxCycles {
			return fmt.Errorf("%w (%d cycles)", ErrCycleLimit, c.Cycles)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}
