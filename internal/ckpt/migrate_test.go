package ckpt

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"asc/internal/mac"
)

// sampleMigration wraps a genuine inner sealed checkpoint so the
// envelope's epoch cross-check has something real to check against.
func sampleMigration(k *mac.Keyed) *Migration {
	s := sampleState()
	return &Migration{
		Epoch: s.Epoch,
		Src:   1,
		Dst:   2,
		Name:  "victim",
		Ckpt:  Seal(k, s),
	}
}

// TestMigrationRoundTrip: every envelope field survives seal/open, and
// serialization is deterministic.
func TestMigrationRoundTrip(t *testing.T) {
	k := testKey(t)
	m := sampleMigration(k)
	blob := SealMigration(k, m)
	if !bytes.Equal(blob, SealMigration(k, m)) {
		t.Fatal("SealMigration is not deterministic")
	}
	got, err := OpenMigration(k, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, m)
	}
}

// TestMigrationRejectsCorruption: bit flips and truncations are
// rejected — the envelope seal covers every byte including the inner
// blob.
func TestMigrationRejectsCorruption(t *testing.T) {
	k := testKey(t)
	blob := SealMigration(k, sampleMigration(k))

	for bit := 0; bit < len(blob)*8; bit += 13 {
		mut := append([]byte(nil), blob...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := OpenMigration(k, mut); !errors.Is(err, ErrSeal) {
			t.Fatalf("bit %d: err = %v, want ErrSeal", bit, err)
		}
	}
	for _, n := range []int{0, 4, minMigBlob - 1, minMigBlob, len(blob) - 1} {
		_, err := OpenMigration(k, blob[:n])
		switch {
		case n < minMigBlob && !errors.Is(err, ErrTruncated):
			t.Fatalf("truncate to %d: err = %v, want ErrTruncated", n, err)
		case n >= minMigBlob && !errors.Is(err, ErrSeal):
			t.Fatalf("truncate to %d: err = %v, want ErrSeal", n, err)
		}
	}
}

// TestMigrationRejectsWrongKey: sealed under one key, never opens under
// another.
func TestMigrationRejectsWrongKey(t *testing.T) {
	k := testKey(t)
	k2, err := mac.New([]byte("fedcba9876543210"))
	if err != nil {
		t.Fatal(err)
	}
	blob := SealMigration(k, sampleMigration(k))
	if _, err := OpenMigration(k2, blob); !errors.Is(err, ErrSeal) {
		t.Fatalf("err = %v, want ErrSeal", err)
	}
}

// TestMigrationEpochCrossCheck: a genuine envelope whose header epoch
// disagrees with the inner sealed epoch is malformed — a real exporter
// never assembles one, so OpenMigration refuses it even though both
// seals verify... which they cannot: changing the envelope epoch breaks
// the envelope seal. The only way to build the mismatch is with the
// key, i.e. a buggy exporter; simulate one.
func TestMigrationEpochCrossCheck(t *testing.T) {
	k := testKey(t)
	m := sampleMigration(k)
	m.Epoch++ // envelope now disagrees with the inner sealed epoch
	blob := SealMigration(k, m)
	if _, err := OpenMigration(k, blob); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

// TestMigrationDomainSeparation: an inner checkpoint blob is not a
// valid envelope (and vice versa) — the two seals live in different MAC
// domains, so a blob can never be confused across layers.
func TestMigrationDomainSeparation(t *testing.T) {
	k := testKey(t)
	inner := Seal(k, sampleState())
	if _, err := OpenMigration(k, inner); err == nil {
		t.Fatal("checkpoint blob opened as a migration envelope")
	}
	env := SealMigration(k, sampleMigration(k))
	if _, err := Open(k, env); err == nil {
		t.Fatal("migration envelope opened as a checkpoint blob")
	}
}

// TestDecodeMigrationTrailingBytes: undecoded garbage after the payload
// is malformed, so the seal never covers bytes the decoder ignored.
func TestDecodeMigrationTrailingBytes(t *testing.T) {
	k := testKey(t)
	body := encodeMigration(sampleMigration(k))
	if _, err := DecodeMigration(append(body, 0)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	if _, err := DecodeMigration(body[:len(body)-1]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short payload: err = %v, want ErrMalformed", err)
	}
}

// TestReasonNode: ErrNode classifies as "node-mismatch" through
// wrapping.
func TestReasonNode(t *testing.T) {
	if got := Reason(ErrNode); got != ReasonNode {
		t.Fatalf("Reason(ErrNode) = %q, want %q", got, ReasonNode)
	}
	wrapped := errors.Join(errors.New("ctx"), ErrNode)
	if got := Reason(wrapped); got != ReasonNode {
		t.Fatalf("Reason(wrapped) = %q, want %q", got, ReasonNode)
	}
}
