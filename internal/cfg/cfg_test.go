package cfg

import (
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/libc"
	"asc/internal/linker"
	"asc/internal/sys"
)

func analyzeSource(t *testing.T, src string, os libc.OS) *Program {
	t.Helper()
	main, err := asm.Assemble("main.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	lib, err := libc.Objects(os)
	if err != nil {
		t.Fatalf("libc: %v", err)
	}
	exe, err := linker.Link([]*binfmt.File{main}, lib)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	p, err := Analyze(exe)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return p
}

const branchy = `
        .text
        .global main
main:
        MOVI r1, 10
        MOVI r2, 0
.loop:
        ADD r2, r2, r1
        ADDI r1, r1, -1
        MOVI r7, 0
        BNE r1, r7, .loop
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "done\n"
`

func TestFunctionsAndBlocks(t *testing.T) {
	p := analyzeSource(t, branchy, libc.Linux)
	for _, want := range []string{"_start", "main", "puts", "strlen", "write"} {
		if p.FuncNamed(want) == nil {
			t.Errorf("function %q not found", want)
		}
	}
	main := p.FuncNamed("main")
	// main: [entry..BNE] [MOVI msg..CALL] [MOVI 0, RET] plus loop split:
	// leaders: entry, .loop, after BNE, after CALL => 4 blocks.
	if len(main.Blocks) != 4 {
		t.Errorf("main has %d blocks, want 4", len(main.Blocks))
		for _, b := range main.Blocks {
			t.Logf("  block %d: %#x..%#x", b.ID, b.Start, b.End)
		}
	}
	entry := main.EntryBlock()
	if entry == nil {
		t.Fatal("no entry block")
	}
	// Loop block branches to itself and falls through.
	loop := entry.Succs[0]
	if len(loop.Succs) != 2 {
		t.Errorf("loop block has %d succs, want 2", len(loop.Succs))
	}
	found := false
	for _, s := range loop.Succs {
		if s == loop {
			found = true
		}
	}
	if !found {
		t.Error("loop block does not branch to itself")
	}
	if main.Incomplete {
		t.Error("main marked incomplete")
	}
}

func TestSyscallSites(t *testing.T) {
	p := analyzeSource(t, branchy, libc.Linux)
	sites := p.SyscallSites()
	// write stub + _start's inline exit syscall = 2 sites.
	if len(sites) != 2 {
		t.Fatalf("got %d syscall sites, want 2", len(sites))
	}
	nums := map[uint16]bool{}
	for _, s := range sites {
		if !s.NumKnown {
			t.Errorf("site at %#x: number unknown", s.Addr)
		}
		nums[s.Num] = true
		if s.Authed {
			t.Errorf("site at %#x marked authenticated in unrewritten binary", s.Addr)
		}
		if s.Block.Syscall != s {
			t.Error("site/block linkage broken")
		}
		if s.Block.Last().Addr != s.Addr {
			t.Error("syscall does not terminate its block")
		}
	}
	if !nums[sys.SysWrite] || !nums[sys.SysExit] {
		t.Errorf("expected write and exit sites, got %v", nums)
	}
}

func TestCallEdges(t *testing.T) {
	p := analyzeSource(t, branchy, libc.Linux)
	main := p.FuncNamed("main")
	puts := p.FuncNamed("puts")
	var callBlock *Block
	for _, b := range main.Blocks {
		for _, target := range b.CallTo {
			if target == puts.Entry {
				callBlock = b
			}
		}
	}
	if callBlock == nil {
		t.Fatal("no block in main calls puts")
	}
	// Fallthrough successor exists (the block after the call).
	if len(callBlock.Succs) != 1 {
		t.Errorf("call block succs = %d, want 1 fallthrough", len(callBlock.Succs))
	}
}

func TestOpenBSDCloseGap(t *testing.T) {
	p := analyzeSource(t, `
        .text
        .global main
main:
        MOVI r1, 3
        CALL close
        MOVI r0, 0
        RET
`, libc.OpenBSD)
	cl := p.FuncNamed("close")
	if cl == nil {
		t.Fatal("close not linked")
	}
	if !cl.Incomplete {
		t.Error("close should be incomplete (hidden syscall)")
	}
	if len(p.Gaps) == 0 {
		t.Error("no gaps recorded")
	}
	// The hidden SYSCALL must NOT appear as a site in close.
	for _, s := range p.SyscallSites() {
		if s.Addr >= cl.Entry && s.Addr < cl.End {
			t.Errorf("hidden syscall at %#x was discovered; gap simulation broken", s.Addr)
		}
	}
}

func TestUnknownSyscallNumber(t *testing.T) {
	p := analyzeSource(t, `
        .text
        .global main
main:
        LOAD r0, [sp+0]
        SYSCALL
        MOVI r0, 0
        RET
`, libc.Linux)
	main := p.FuncNamed("main")
	var site *SyscallSite
	for _, b := range main.Blocks {
		if b.Syscall != nil {
			site = b.Syscall
		}
	}
	if site == nil {
		t.Fatal("no syscall site in main")
	}
	if site.NumKnown {
		t.Error("number should be unknown (set by LOAD)")
	}
}

func TestIndirectCallAndHalt(t *testing.T) {
	p := analyzeSource(t, `
        .text
        .global main
main:
        MOVI r2, helper
        CALLR r2
        HALT
helper:
        RET
`, libc.Linux)
	main := p.FuncNamed("main")
	var sawIndirect, sawExit bool
	for _, b := range main.Blocks {
		if b.Indirect {
			sawIndirect = true
		}
		if b.IsExit {
			sawExit = true
		}
	}
	if !sawIndirect || !sawExit {
		t.Errorf("indirect=%v exit=%v, want both", sawIndirect, sawExit)
	}
	helper := p.FuncNamed("helper")
	if hb := helper.EntryBlock(); hb == nil || !hb.IsRet {
		t.Error("helper entry block should be a ret block")
	}
}

func TestBlockIDsUniqueAndDense(t *testing.T) {
	p := analyzeSource(t, branchy, libc.Linux)
	seen := map[int]bool{}
	for i, b := range p.Blocks {
		if b.ID != i+1 {
			t.Errorf("block %d has ID %d", i, b.ID)
		}
		if seen[b.ID] {
			t.Errorf("duplicate block ID %d", b.ID)
		}
		seen[b.ID] = true
	}
	if p.BlockContaining(p.Blocks[0].Start+4) != p.Blocks[0] {
		t.Error("BlockContaining broken")
	}
}
