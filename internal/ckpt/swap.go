// swap.go seals individual memory pages for the kernel's authenticated
// swap device. Evicting a page is checkpointing in miniature: the frame
// binds the page bytes to its owner process, page index, and a
// kernel-held generation counter under a domain-separated CMAC, so a
// frame read back at fault-in time proves (1) the bytes are the ones
// written at eviction — a flipped bit fails the seal — and (2) they are
// the *latest* ones — replaying an older frame carries an older
// generation, which the kernel's counter rejects. The generation lives
// inside the sealed bytes but is trusted only by comparison against the
// kernel's in-memory (or checkpointed) expectation, mirroring the
// paper's in-kernel nonce argument.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"asc/internal/mac"
)

// Swap frame wire format: magic, version, owner, page, gen, data length,
// data, CMAC over the domain prefix plus everything before the tag.
const (
	swapMagic   = "ASSW"
	swapVersion = 1
	// magic + version + owner + page + gen + length
	swapHeaderSize = 4 + 4 + 8 + 4 + 8 + 4
	minSwapFrame   = swapHeaderSize + mac.Size
)

var swapPrefix = []byte("asc/swap/seal/v1\x00")

// Swap frame error classes. ErrSwapSeal covers integrity failures (bit
// flips, truncation of sealed bytes, wrong owner's frame); ErrSwapStale
// covers authenticity-of-freshness failures (a genuine frame that is not
// the latest for its slot — the replay case).
var (
	ErrSwapFrame = errors.New("ckpt: malformed swap frame")
	ErrSwapSeal  = errors.New("ckpt: swap frame seal mismatch")
	ErrSwapStale = errors.New("ckpt: stale swap frame")
)

// SwapFrame is one sealed page at rest on the swap device.
type SwapFrame struct {
	Owner uint64 // owning process identity (PID is fine: frames die with the process)
	Page  uint32 // page index within the owner's arena
	Gen   uint64 // eviction generation; the kernel holds the expected value
	Data  []byte
}

// SealSwapFrame serializes and seals a frame. A nil key produces an
// unauthenticated frame (all-zero tag) for kernels running without a
// MAC key; OpenSwapFrame with a nil key skips the seal check
// symmetrically. Structure and generation checks still apply — an
// unauthenticated device detects accidents, not adversaries.
func SealSwapFrame(k *mac.Keyed, f *SwapFrame) []byte {
	b := make([]byte, 0, swapHeaderSize+len(f.Data)+mac.Size)
	b = append(b, swapMagic...)
	b = binary.LittleEndian.AppendUint32(b, swapVersion)
	b = binary.LittleEndian.AppendUint64(b, f.Owner)
	b = binary.LittleEndian.AppendUint32(b, f.Page)
	b = binary.LittleEndian.AppendUint64(b, f.Gen)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Data)))
	b = append(b, f.Data...)
	var tag mac.Tag
	if k != nil {
		msg := make([]byte, 0, len(swapPrefix)+len(b))
		msg = append(msg, swapPrefix...)
		msg = append(msg, b...)
		tag, _ = k.Sum(msg)
	}
	return append(b, tag[:]...)
}

// OpenSwapFrame verifies blob as the frame for (owner, page) at exactly
// generation wantGen and returns it. Checks run in trust order: length
// and magic, then the seal, then — over authenticated bytes only — the
// binding and freshness comparisons.
func OpenSwapFrame(k *mac.Keyed, owner uint64, page uint32, wantGen uint64, blob []byte) (*SwapFrame, error) {
	if len(blob) < minSwapFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrSwapFrame, len(blob))
	}
	if string(blob[:4]) != swapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSwapFrame)
	}
	if v := binary.LittleEndian.Uint32(blob[4:]); v != swapVersion {
		return nil, fmt.Errorf("%w: version %d", ErrSwapFrame, v)
	}
	body := blob[:len(blob)-mac.Size]
	if k != nil {
		var tag mac.Tag
		copy(tag[:], blob[len(blob)-mac.Size:])
		msg := make([]byte, 0, len(swapPrefix)+len(body))
		msg = append(msg, swapPrefix...)
		msg = append(msg, body...)
		if ok, _ := k.Verify(msg, tag); !ok {
			return nil, ErrSwapSeal
		}
	}
	f := &SwapFrame{
		Owner: binary.LittleEndian.Uint64(body[8:]),
		Page:  binary.LittleEndian.Uint32(body[16:]),
		Gen:   binary.LittleEndian.Uint64(body[20:]),
	}
	n := binary.LittleEndian.Uint32(body[28:])
	if uint64(swapHeaderSize)+uint64(n) != uint64(len(body)) {
		return nil, fmt.Errorf("%w: data length %d in %d-byte body", ErrSwapFrame, n, len(body))
	}
	if f.Owner != owner || f.Page != page {
		// A genuine frame in the wrong slot is cross-slot replay.
		return nil, fmt.Errorf("%w: frame for owner %d page %d in slot owner %d page %d",
			ErrSwapStale, f.Owner, f.Page, owner, page)
	}
	if f.Gen != wantGen {
		return nil, fmt.Errorf("%w: generation %d, kernel expects %d", ErrSwapStale, f.Gen, wantGen)
	}
	f.Data = append([]byte(nil), body[swapHeaderSize:]...)
	return f, nil
}
