package fault

import (
	"testing"

	"asc/internal/kernel"
)

// TestEngineDeterminism pins that an engine's decisions are a pure
// function of (class, seed).
func TestEngineDeterminism(t *testing.T) {
	for _, class := range Classes() {
		a := NewEngine(class, 1234)
		b := NewEngine(class, 1234)
		if a.trigger != b.trigger || a.pick != b.pick {
			t.Errorf("%s: same seed, different decisions", class)
		}
		c := NewEngine(class, 1235)
		if a.trigger == c.trigger && a.pick == c.pick {
			t.Errorf("%s: different seed, identical decisions", class)
		}
		if a.trigger < 0 || a.trigger >= triggerWindow {
			t.Errorf("%s: trigger %d outside window", class, a.trigger)
		}
	}
}

// TestExpectationTable checks the contract table's internal consistency.
func TestExpectationTable(t *testing.T) {
	for _, class := range Classes() {
		exp := Expectation(class)
		if exp.Detected && len(exp.Reasons) == 0 {
			t.Errorf("%s: detected but no allowed reasons", class)
		}
		if !exp.Detected && len(exp.Reasons) != 0 {
			t.Errorf("%s: undetected class lists reasons", class)
		}
	}
	exp := Expectation(FlipCFState)
	if !exp.ReasonAllowed(kernel.KillBadState) {
		t.Error("FlipCFState must allow KillBadState")
	}
	if exp.ReasonAllowed(kernel.KillBadCallMAC) {
		t.Error("FlipCFState must not allow KillBadCallMAC")
	}
	if Expectation(Class("no-such-class")).Detected {
		t.Error("unknown class must have an empty expectation")
	}
}

// TestTornWriteUnarmed pins the no-fault contract of the write hook.
func TestTornWriteUnarmed(t *testing.T) {
	e := NewEngine(TornStore, 99)
	if n := e.TornWrite(0x2000, 16); n != 16 {
		t.Errorf("unarmed TornWrite truncated to %d", n)
	}
	if e.Fired() {
		t.Error("unarmed TornWrite fired")
	}
}

// TestNonceUpdateUnarmed pins the faithful-update default.
func TestNonceUpdateUnarmed(t *testing.T) {
	for _, class := range []Class{DropNonce, DupNonce, FlipRecord} {
		e := NewEngine(class, 7)
		if d := e.NonceUpdate(nil); d != 1 {
			t.Errorf("%s: unarmed NonceUpdate = %d, want 1", class, d)
		}
	}
	// Armed engines perturb exactly once.
	drop := NewEngine(DropNonce, 7)
	drop.armedNonce = true
	if d := drop.NonceUpdate(nil); d != 0 {
		t.Errorf("armed drop = %d, want 0", d)
	}
	if d := drop.NonceUpdate(nil); d != 1 {
		t.Errorf("second update = %d, want 1", d)
	}
	dup := NewEngine(DupNonce, 7)
	dup.armedNonce = true
	if d := dup.NonceUpdate(nil); d != 2 {
		t.Errorf("armed dup = %d, want 2", d)
	}
}
