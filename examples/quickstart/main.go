// Quickstart: build a program, run the trusted installer over it, execute
// it under kernel enforcement, and watch tampering get caught.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"asc"
)

const source = `
        .text
        .global main
main:
        ; greet
        MOVI r1, greeting
        CALL puts
        ; record a visit into /tmp/visits
        MOVI r1, path
        MOVI r2, 0x441          ; O_CREAT|O_APPEND|O_WRONLY
        MOVI r3, 420
        CALL open
        MOV r10, r0
        MOV r1, r10
        MOVI r2, entry
        MOVI r3, 6
        CALL write
        MOV r1, r10
        CALL close
        MOVI r0, 0
        RET
        .rodata
greeting: .asciz "quickstart: hello from the simulated platform\n"
path:     .asciz "/tmp/visits"
entry:    .asciz "visit\n"
`

func main() {
	// 1. Compile: assemble the source and link it against libc.
	exe, err := asc.BuildProgram("quickstart", source, asc.Linux)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("built a relocatable executable (the installer's required input)")

	// 2. A protected machine: the kernel holds the MAC key.
	system, err := asc.NewSystem(asc.SystemConfig{Key: asc.NewKey("quickstart-demo")})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The trusted installer: static analysis -> policies -> rewrite.
	hardened, pol, rep, err := system.Install(exe, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed: %d call sites, %d distinct system calls, %d/%d arguments authenticated\n",
		rep.Sites, rep.DistinctCalls, rep.AuthArgs, rep.TotalArgs)
	fmt.Println("\ngenerated policy (excerpt):")
	for i, sp := range pol.Sites {
		if i == 3 {
			fmt.Printf("  ... and %d more sites\n", len(pol.Sites)-3)
			break
		}
		fmt.Print(indent(sp.String()))
	}

	// 4. Execute under enforcement: every call verified by the kernel.
	res, err := system.Exec(hardened, "quickstart", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprogram output: %s", res.Output)
	fmt.Printf("exit %d; %d system calls made, %d verified, %d cycles\n",
		res.ExitCode, res.Syscalls, res.Verified, res.Cycles)

	// 5. Tamper with the binary -- change the authenticated path
	// argument -- and watch the kernel terminate the process.
	evil := tamper(hardened)
	res2, err := system.Exec(evil, "quickstart-tampered", "")
	if err != nil {
		log.Fatal(err)
	}
	if res2.Killed {
		fmt.Printf("\ntampered copy: killed by the monitor (%s)\n", res2.Reason)
		for _, e := range system.Audit() {
			fmt.Printf("  audit: %s\n", e)
		}
	} else {
		fmt.Println("\ntampered copy ran?! the monitor failed")
	}
}

// tamper clones the binary and rewrites the authenticated "/tmp/visits"
// string to "/etc/passwd" -- the §4.1 non-control-data attack.
func tamper(f *asc.Binary) *asc.Binary {
	b, err := f.Bytes()
	if err != nil {
		log.Fatal(err)
	}
	clone, err := asc.ReadBinary(b)
	if err != nil {
		log.Fatal(err)
	}
	auth := clone.Section(".auth")
	idx := strings.Index(string(auth.Data), "/tmp/visits")
	if idx < 0 {
		log.Fatal("authenticated string not found")
	}
	copy(auth.Data[idx:], "/etc/passwd")
	return clone
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}
