//go:build race

package core

import (
	"testing"

	"asc/internal/kernel"
)

// pagedSweepSrc maps 16 anonymous pages read-write and walks them three
// times, storing the sweep counter into each page and checking the
// read-back — on a 4-page resident budget every sweep evicts through
// the shared swap device, so a cross-process frame mix-up surfaces as a
// wrong value, not just a race report. Iteration counts are fixed in
// the source, so per-process cycle counts are deterministic.
const pagedSweepSrc = `
        .text
        .global main
main:
        MOVI r1, 0
        MOVI r2, 65536          ; 16 pages
        MOVI r3, 3              ; PROT_READ|PROT_WRITE
        MOVI r4, 0x22           ; MAP_PRIVATE|MAP_ANONYMOUS
        MOVI r5, 0
        CALL mmap
        MOV r8, r0
        MOVI r12, 3             ; sweeps
.sweep:
        MOV r10, r8
        MOVI r11, 16            ; pages per sweep
.page:
        STORE [r10+0], r12
        LOAD r9, [r10+0]
        BNE r9, r12, .fail
        ADDI r10, r10, 4096
        ADDI r11, r11, -1
        MOVI r9, 0
        BNE r11, r9, .page
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .sweep
        MOV r1, r8
        MOVI r2, 65536
        CALL munmap
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
.fail:
        MOVI r0, 1
        RET
        .rodata
msg:    .asciz "done"
`

// TestRunAllPagedSharedSwap is the SMP-gate hammer for the paged-memory
// subsystem: eight paged processes run through the worker pool on one
// kernel, all evicting through the same VFS-backed swap device (one
// /var/run/swap tree, per-PID frame directories). Run under -race; the
// assertions beyond data-race freedom are that every process sees its
// own page contents (the in-guest read-back check), every evicted
// frame re-verifies on fault-in (Enforce mode, shared MAC key), and
// per-process cycle counts stay deterministic under concurrency.
func TestRunAllPagedSharedSwap(t *testing.T) {
	const procs = 8
	s := newSystem(t, Config{KernelOptions: []kernel.Option{kernel.WithPagedMemory(4)}})
	exe, _, _, err := s.Install(buildRaw(t, pagedSweepSrc), "paged")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Exec(exe, "paged", "")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Killed || ref.ExitCode != 0 || ref.Output != "done" {
		t.Fatalf("quiet reference run failed: %+v", ref)
	}

	reqs := make([]RunRequest, procs)
	for i := range reqs {
		reqs[i] = RunRequest{Exe: exe, Name: "paged"}
	}
	for _, w := range []int{4, 8} {
		res, err := s.RunAll(reqs, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for i, r := range res {
			if r.Err != nil || r.Killed {
				t.Fatalf("w=%d proc %d: err=%v killed=%v reason=%v", w, i, r.Err, r.Killed, r.Reason)
			}
			if r.ExitCode != 0 || r.Output != "done" {
				t.Errorf("w=%d proc %d: exit=%d output=%q (page read-back failed)", w, i, r.ExitCode, r.Output)
			}
			if r.Cycles != ref.Cycles {
				t.Errorf("w=%d proc %d: cycles %d != quiet baseline %d", w, i, r.Cycles, ref.Cycles)
			}
		}
	}
}
