// tools.go contains the general-purpose Unix tools of the Andrew-style
// multiprogram benchmark (Section 4.3), written in the platform's
// assembly. Tools take their arguments as newline-terminated lines on
// standard input (the platform has no argv); an empty line ends a list.
package workload

// ToolNames lists the benchmark tools.
func ToolNames() []string {
	return []string{"mkdir", "rm", "mv", "cp", "cat", "chmod", "gzip", "gunzip", "tar"}
}

// ToolSource returns the assembly source of the named tool.
func ToolSource(name string) (string, bool) {
	s, ok := toolSources[name]
	return s, ok
}

var toolSources = map[string]string{
	// mkdir: one directory per line.
	"mkdir": `
        .text
        .global main
main:
.loop:
        MOVI r1, buf
        CALL nextline
        MOVI r7, 0
        BEQ r0, r7, .done
        MOVI r1, buf
        MOVI r2, 493
        CALL mkdir
        JMP .loop
.done:
        MOVI r0, 0
        RET
        .bss
buf:    .space 256
`,

	// rm: unlink each line.
	"rm": `
        .text
        .global main
main:
.loop:
        MOVI r1, buf
        CALL nextline
        MOVI r7, 0
        BEQ r0, r7, .done
        MOVI r1, buf
        CALL unlink
        JMP .loop
.done:
        MOVI r0, 0
        RET
        .bss
buf:    .space 256
`,

	// mv: pairs of lines (src, dst) until an empty line.
	"mv": `
        .text
        .global main
main:
.loop:
        MOVI r1, src
        CALL nextline
        MOVI r7, 0
        BEQ r0, r7, .done
        MOVI r1, dst
        CALL nextline
        MOVI r1, src
        MOVI r2, dst
        CALL rename
        JMP .loop
.done:
        MOVI r0, 0
        RET
        .bss
src:    .space 256
dst:    .space 256
`,

	// chmod: first line is the numeric mode, then one path per line.
	"chmod": `
        .text
        .global main
main:
        MOVI r1, modebuf
        CALL nextline
        MOVI r1, modebuf
        CALL atoi
        MOV r10, r0
.loop:
        MOVI r1, path
        CALL nextline
        MOVI r7, 0
        BEQ r0, r7, .done
        MOVI r1, path
        MOV r2, r10
        CALL chmod
        JMP .loop
.done:
        MOVI r0, 0
        RET
        .bss
modebuf: .space 32
path:   .space 256
`,

	// cat: each line is a file; contents go to stdout in 256-byte reads.
	"cat": `
        .text
        .global main
main:
.loop:
        MOVI r1, path
        CALL nextline
        MOVI r7, 0
        BEQ r0, r7, .done
        MOVI r1, path
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOVI r7, 0
        BLT r0, r7, .loop       ; open failed; next file
        MOV r10, r0
.rd:
        MOV r1, r10
        MOVI r2, buf
        MOVI r3, 4096
        CALL read
        MOVI r7, 1
        BLT r0, r7, .closeit
        MOVI r1, 1
        MOVI r2, buf
        MOV r3, r0
        CALL write
        JMP .rd
.closeit:
        MOV r1, r10
        CALL close
        JMP .loop
.done:
        MOVI r0, 0
        RET
        .bss
path:   .space 256
buf:    .space 4096
`,

	// cp: pairs of lines (src, dst); 256-byte copy loop.
	"cp": `
        .text
        .global main
main:
.loop:
        MOVI r1, src
        CALL nextline
        MOVI r7, 0
        BEQ r0, r7, .done
        MOVI r1, dst
        CALL nextline
        MOVI r1, src
        MOVI r2, dst
        CALL copyfile
        JMP .loop
.done:
        MOVI r0, 0
        RET
copyfile:
        PUSH r10
        PUSH r11
        MOV r8, r2
        MOVI r2, 0
        MOVI r3, 0
        CALL open               ; open(src, O_RDONLY)
        MOV r10, r0
        MOV r1, r8
        MOVI r2, 0x241          ; O_CREAT|O_TRUNC|O_WRONLY
        MOVI r3, 420
        CALL open
        MOV r11, r0
.cpl:
        MOV r1, r10
        MOVI r2, cbuf
        MOVI r3, 4096
        CALL read
        MOVI r7, 1
        BLT r0, r7, .cpd
        MOV r1, r11
        MOVI r2, cbuf
        MOV r3, r0
        CALL write
        JMP .cpl
.cpd:
        MOV r1, r10
        CALL close
        MOV r1, r11
        CALL close
        POP r11
        POP r10
        RET
        .bss
src:    .space 256
dst:    .space 256
cbuf:   .space 4096
`,

	// gzip: each line names a file; it is "compressed" into <name>.gz
	// (a byte-for-byte copy with a 4-byte magic header — the benchmark
	// measures the system call load, not entropy coding) and the
	// original is removed, like the real tool.
	"gzip": `
        .text
        .global main
main:
.loop:
        MOVI r1, path
        CALL nextline
        MOVI r7, 0
        BEQ r0, r7, .done
        ; build "<path>.gz" in dst
        MOVI r1, dst
        MOVI r2, path
        CALL strcopy
        MOVI r2, suffix
        CALL strappend
        ; copy with header
        MOVI r1, path
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOV r10, r0
        MOVI r1, dst
        MOVI r2, 0x241
        MOVI r3, 420
        CALL open
        MOV r11, r0
        MOV r1, r11
        MOVI r2, magic
        MOVI r3, 4
        CALL write
.zl:
        MOV r1, r10
        MOVI r2, zbuf
        MOVI r3, 4096
        CALL read
        MOVI r7, 1
        BLT r0, r7, .zd
        ; model deflate: ~384 cycles per input byte
        MOV r7, r0
        SHLI r7, r7, 7
        MOVI r9, 0
.zc:
        ADDI r7, r7, -1
        BNE r7, r9, .zc
        MOV r1, r11
        MOVI r2, zbuf
        MOV r3, r0
        CALL write
        JMP .zl
.zd:
        MOV r1, r10
        CALL close
        MOV r1, r11
        CALL close
        MOVI r1, path
        CALL unlink
        JMP .loop
.done:
        MOVI r0, 0
        RET
; strcopy(dst=r1, src=r2): copy including NUL
strcopy:
        PUSH r10
        MOV r10, r1
.scl:
        LOADB r7, [r2]
        STOREB [r10+0], r7
        ADDI r2, r2, 1
        ADDI r10, r10, 1
        MOVI r8, 0
        BNE r7, r8, .scl
        POP r10
        RET
; strappend(dst=r1, src=r2): append src at dst's NUL
strappend:
        PUSH r10
        MOV r10, r1
.fe:
        LOADB r7, [r10]
        MOVI r8, 0
        BEQ r7, r8, .ap
        ADDI r10, r10, 1
        JMP .fe
.ap:
        LOADB r7, [r2]
        STOREB [r10+0], r7
        ADDI r2, r2, 1
        ADDI r10, r10, 1
        MOVI r8, 0
        BNE r7, r8, .ap
        POP r10
        RET
        .rodata
suffix: .asciz ".gz"
magic:  .byte 31, 139, 8, 0
        .bss
path:   .space 256
dst:    .space 260
zbuf:   .space 4096
`,

	// gunzip: each line names a .gz file; the 4-byte header is dropped
	// and the contents restored to the name without .gz.
	"gunzip": `
        .text
        .global main
main:
.loop:
        MOVI r1, path
        CALL nextline
        MOVI r7, 0
        BEQ r0, r7, .done
        ; strip ".gz": dst = path; dst[strlen-3] = 0
        MOVI r1, dst
        MOVI r2, path
        CALL gzcopy
        MOVI r1, dst
        CALL strlen
        MOVI r7, dst
        ADD r7, r7, r0
        ADDI r7, r7, -3
        MOVI r8, 0
        STOREB [r7+0], r8
        ; copy, skipping the 4-byte header
        MOVI r1, path
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOV r10, r0
        MOV r1, r10
        MOVI r2, hdr
        MOVI r3, 4
        CALL read
        MOVI r1, dst
        MOVI r2, 0x241
        MOVI r3, 420
        CALL open
        MOV r11, r0
.gl:
        MOV r1, r10
        MOVI r2, gbuf
        MOVI r3, 4096
        CALL read
        MOVI r7, 1
        BLT r0, r7, .gd
        ; model inflate: ~192 cycles per input byte
        MOV r7, r0
        SHLI r7, r7, 6
        MOVI r9, 0
.gc2:
        ADDI r7, r7, -1
        BNE r7, r9, .gc2
        MOV r1, r11
        MOVI r2, gbuf
        MOV r3, r0
        CALL write
        JMP .gl
.gd:
        MOV r1, r10
        CALL close
        MOV r1, r11
        CALL close
        MOVI r1, path
        CALL unlink
        JMP .loop
.done:
        MOVI r0, 0
        RET
gzcopy:
        PUSH r10
        MOV r10, r1
.gc:
        LOADB r7, [r2]
        STOREB [r10+0], r7
        ADDI r2, r2, 1
        ADDI r10, r10, 1
        MOVI r8, 0
        BNE r7, r8, .gc
        POP r10
        RET
        .bss
path:   .space 260
dst:    .space 260
gbuf:   .space 4096
hdr:    .space 8
`,

	// tar: first line is the archive, then one member per line. Format:
	// for each member, a length word then the bytes.
	"tar": `
        .text
        .global main
main:
        MOVI r1, arch
        CALL nextline
        MOVI r1, arch
        MOVI r2, 0x241
        MOVI r3, 420
        CALL open
        MOV r12, r0             ; archive fd
.mloop:
        MOVI r1, member
        CALL nextline
        MOVI r7, 0
        BEQ r0, r7, .done
        ; stat the member for its size
        MOVI r1, member
        MOVI r2, stbuf
        CALL stat
        MOVI r7, stbuf
        LOAD r7, [r7+4]         ; size field
        MOVI r8, lenw
        STORE [r8+0], r7
        MOV r1, r12
        MOVI r2, lenw
        MOVI r3, 4
        CALL write
        ; append the contents
        MOVI r1, member
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOV r10, r0
.tl:
        MOV r1, r10
        MOVI r2, tbuf
        MOVI r3, 4096
        CALL read
        MOVI r7, 1
        BLT r0, r7, .td
        ; model header/checksum work: ~12 cycles per byte
        MOV r7, r0
        SHLI r7, r7, 2
        MOVI r9, 0
.tc:
        ADDI r7, r7, -1
        BNE r7, r9, .tc
        MOV r1, r12
        MOVI r2, tbuf
        MOV r3, r0
        CALL write
        JMP .tl
.td:
        MOV r1, r10
        CALL close
        JMP .mloop
.done:
        MOV r1, r12
        CALL close
        MOVI r0, 0
        RET
        .bss
arch:   .space 256
member: .space 256
tbuf:   .space 4096
stbuf:  .space 32
lenw:   .space 4
`,
}
