package kernel

import (
	"testing"

	"asc/internal/installer"
)

// normVictimSrc opens the policy-approved temporary file /tmp/foo.
const normVictimSrc = `
        .text
        .global main
main:
        MOVI r1, path
        MOVI r2, 1              ; O_WRONLY, no O_CREAT
        MOVI r3, 0
        CALL open
        MOVI r7, 0
        BLT r0, r7, .fail
        MOV r10, r0
        MOV r1, r10
        MOVI r2, msg
        MOVI r3, 5
        CALL write
        MOVI r0, 0
        RET
.fail:
        MOVI r0, 1
        RET
        .rodata
path:   .asciz "/tmp/foo"
msg:    .asciz "owned"
`

func TestNormalizationBlocksSymlinkRace(t *testing.T) {
	exe := buildExe(t, normVictimSrc)
	out, _, _, err := installer.Install(exe, "norm", installer.Options{Key: testKey})
	if err != nil {
		t.Fatal(err)
	}
	// §5.4 attack: the policy approves /tmp/foo; the attacker plants
	// /tmp/foo -> /etc/passwd before the program runs.
	k := newKernel(t, WithNormalizePaths())
	if err := k.FS.Symlink("/etc/passwd", "/tmp/foo"); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(out, "norm")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Killed || p.KilledBy != KillSymlinkRace {
		t.Fatalf("killed=%v by=%q (audit %v)", p.Killed, p.KilledBy, &k.Audit)
	}
	if b, _ := k.FS.ReadFile("/etc/passwd"); string(b) != "root:0:0\n" {
		t.Errorf("password file was modified: %q", b)
	}
}

func TestNormalizationAllowsRealFile(t *testing.T) {
	exe := buildExe(t, normVictimSrc)
	out, _, _, err := installer.Install(exe, "norm", installer.Options{Key: testKey})
	if err != nil {
		t.Fatal(err)
	}
	k := newKernel(t, WithNormalizePaths())
	if err := k.FS.WriteFile("/tmp/foo", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(out, "norm")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("legitimate file killed: %v", p.KilledBy)
	}
	if b, _ := k.FS.ReadFile("/tmp/foo"); string(b) != "owned" {
		t.Errorf("file content %q", b)
	}
}

func TestWithoutNormalizationRaceSucceeds(t *testing.T) {
	// Without the §5.4 defense the attack works — the string policy is
	// satisfied ("/tmp/foo" is exactly the approved name) while the VFS
	// resolution follows the planted link. This is the gap §5.4 closes.
	exe := buildExe(t, normVictimSrc)
	out, _, _, err := installer.Install(exe, "norm", installer.Options{Key: testKey})
	if err != nil {
		t.Fatal(err)
	}
	k := newKernel(t)
	if err := k.FS.Symlink("/etc/passwd", "/tmp/foo"); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(out, "norm")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("unexpected kill: %v", p.KilledBy)
	}
	if b, _ := k.FS.ReadFile("/etc/passwd"); string(b) == "root:0:0\n" {
		t.Error("attack did not modify the target; scenario broken")
	}
}
