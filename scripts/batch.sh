#!/bin/sh
# batch.sh — regenerate BENCH_batch.json: the group-commit sweep (an
# 8-process getpid fleet across burst sizes 1/2/4/8/16 under cache
# modes off/per-process/shared). Per-call costs are differenced over
# deterministic cycle counts, so two consecutive runs produce
# byte-identical JSON; the bench itself fails if cost per call does
# not fall strictly as the burst grows.
#
# Refuses to overwrite an uncommitted BENCH_batch.json unless FORCE=1,
# so a locally modified artifact is never clobbered silently.
set -eu

cd "$(dirname "$0")/.."

if git diff --quiet -- BENCH_batch.json 2>/dev/null; then
    : # clean (or not yet tracked with changes): safe to regenerate
elif [ "${FORCE:-0}" = "1" ]; then
    echo "batch.sh: BENCH_batch.json is dirty; overwriting (FORCE=1)" >&2
else
    echo "batch.sh: BENCH_batch.json has uncommitted changes; commit them or rerun with FORCE=1" >&2
    exit 1
fi

go run ./cmd/ascbench -table batch -json BENCH_batch.json
echo "wrote BENCH_batch.json"
