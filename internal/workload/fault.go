// fault.go defines the victim corpus of the fault-injection campaign:
// small programs whose system-call surfaces cover the protection
// mechanisms a fault can target — authenticated strings, control-flow
// predecessor sets across function chains, pattern-constrained dynamic
// arguments — so each fault class has sites where it is (and is not)
// applicable.
package workload

import (
	"asc/internal/installer"
	"asc/internal/libc"

	"asc/internal/binfmt"
)

// FaultVictim is one campaign victim: assembly source plus the install
// options and input it runs with.
type FaultVictim struct {
	Name   string
	Source string
	Stdin  string
	// Patterns are administrator pattern constraints passed to the
	// installer (exercised by the "dynamic" victim).
	Patterns map[string][]installer.ArgPattern
	// Net asks the campaign to attach a virtual network to the victim's
	// kernel so socket calls move real bytes (the "netpair" victim).
	Net bool
	// Paged marks the demand-paging victim: its working set is sized
	// against the paged arms' resident budget, and it sits out the
	// checkpoint/cluster/durable sub-campaigns, whose cadence assumes a
	// trap-dense victim (the sweep is one long trapless stretch).
	Paged bool
}

// Build assembles, links, and installs the victim with the given key,
// returning the authenticated binary.
func (v *FaultVictim) Build(key []byte) (*binfmt.File, error) {
	exe, err := BuildSource(v.Name, v.Source, libc.Linux)
	if err != nil {
		return nil, err
	}
	out, _, _, err := installer.Install(exe, v.Name, installer.Options{
		Key:      key,
		OSName:   "linux",
		Patterns: v.Patterns,
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// faultLoopSrc opens, writes, and closes a constant path three times:
// authenticated string arguments plus a tight control-flow loop.
const faultLoopSrc = `
        .text
        .global main
main:
        MOVI r12, 3
.loop:
        MOVI r1, path
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r11, r0
        MOV r1, r11
        MOVI r2, msg
        MOVI r3, 6
        CALL write
        MOV r1, r11
        CALL close
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        MOVI r0, 0
        RET
        .rodata
path:   .asciz "/tmp/fault.out"
msg:    .asciz "hello\n"
`

// faultChainSrc spreads system calls across a function chain so that
// predecessor sets link sites in different functions.
const faultChainSrc = `
        .text
        .global main
main:
        CALL fa
        CALL fb
        CALL fa
        MOVI r0, 0
        RET
fa:
        MOVI r1, patha
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r1, r0
        CALL close
        RET
fb:
        CALL getpid
        CALL fa
        RET
        .rodata
patha:  .asciz "/tmp/chain.out"
`

// faultDynamicSrc reads each path from stdin and opens it: a dynamic,
// pattern-constrained argument with no authenticated string at the open.
const faultDynamicSrc = `
        .text
        .global main
main:
        SUBI sp, sp, 64
        MOVI r12, 2
.loop:
        MOV r1, sp
        CALL gets
        MOV r1, sp
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r1, r0
        CALL close
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        ADDI sp, sp, 64
        MOVI r0, 0
        RET
`

// faultNetSrc pumps a constant payload across a socketpair three
// times: the sendto sites carry an authenticated-string payload and a
// constant packed destination address, and the blocking-capable
// recvfrom gives control-flow replay faults a socket site to target.
// A socketpair needs no peer process, so the victim runs single-process
// inside the campaign like the others.
const faultNetSrc = `
        .text
        .global main
main:
        MOVI r1, 1
        MOVI r2, 1
        MOVI r3, 0
        MOVI r4, pairbuf
        CALL socketpair
        MOVI r7, pairbuf
        LOAD r15, [r7+0]
        LOAD r13, [r7+4]
        MOVI r11, 3
.loop:
        MOVI r7, 0
        BEQ r11, r7, .done
        MOV r1, r15
        MOVI r2, pmsg
        MOVI r3, 8
        MOVI r4, 0
        MOVI r5, 0x02000007     ; packed AF_INET sockaddr, port 7
        CALL sendto
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom
        ADDI r11, r11, -1
        JMP .loop
.done:
        MOVI r1, donemsg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
pmsg:   .asciz "payload"
donemsg: .asciz "netpair done\n"
        .bss
pairbuf: .space 8
iobuf:  .space 64
`

// faultPollSrc is the event-loop victim: a socketpair whose read end is
// switched nonblocking, then three sweeps of the poll discipline — a
// deterministic EAGAIN probe on the empty socket, a sendto that queues
// the payload, a blocking poll that reports it readable, and the
// recvfrom that drains it. The poll sites give the poll fault classes
// (pollfd-pointer flips, stale-readiness replay) eligible traps, and
// the nonblocking probe keeps every recvfrom non-blocking so a denied
// poll can never deadlock the Deny-mode run.
const faultPollSrc = `
        .text
        .global main
main:
        MOVI r1, 1
        MOVI r2, 1
        MOVI r3, 0
        MOVI r4, pairbuf
        CALL socketpair
        MOVI r7, pairbuf
        LOAD r15, [r7+0]
        LOAD r13, [r7+4]
        MOV r1, r13
        MOVI r2, 4              ; F_SETFL
        MOVI r3, 2048           ; O_NONBLOCK
        CALL fcntl
        MOVI r11, 3
.loop:
        MOVI r7, 0
        BEQ r11, r7, .done
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom           ; empty + nonblocking: deterministic EAGAIN
        MOV r1, r15
        MOVI r2, pmsg
        MOVI r3, 8
        MOVI r4, 0
        MOVI r5, 0x02000007     ; packed AF_INET sockaddr, port 7
        CALL sendto
        MOVI r7, pfd            ; poll the read end: the payload is queued
        STORE [r7+0], r13
        MOVI r8, 1              ; POLLIN
        STORE [r7+4], r8
        MOVI r1, pfd
        MOVI r2, 1
        MOVI r3, 1              ; block until ready
        CALL poll
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom
        ADDI r11, r11, -1
        JMP .loop
.done:
        MOVI r1, donemsg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
pmsg:   .asciz "payload"
donemsg: .asciz "pollpair done\n"
        .bss
pairbuf: .space 8
iobuf:  .space 64
pfd:    .space 8
`

// faultPagedSrc mmaps an 8-page anonymous region and sweeps it five
// times (write + read back per page). On a paged kernel with a small
// resident budget the sweeps overflow the working set, so pages cycle
// through the authenticated swap device — giving the swap fault classes
// eviction and fault-in sites to target. The sweep asserts no values
// (a deny-mode zero page must not change the exit code), and on a
// non-paged kernel the same binary runs over the legacy brk-bump mmap
// with no paging activity at all.
const faultPagedSrc = `
        .text
        .global main
main:
        CALL getpid             ; pads the trap sequence so the trigger
                                ; window never lands on the exit trap
        MOVI r1, 0
        MOVI r2, 32768
        MOVI r3, 3
        MOVI r4, 0x22
        MOVI r5, 0
        CALL mmap
        MOV r8, r0
        MOVI r9, 0
        BLT r8, r9, .done       ; a denied mmap returns a negative errno
        MOVI r12, 5             ; sweeps
.sweep:
        MOV r10, r8             ; cursor
        MOVI r11, 8             ; pages per sweep
.page:
        STORE [r10+0], r12
        LOAD r9, [r10+8]
        ADDI r10, r10, 4096
        ADDI r11, r11, -1
        MOVI r9, 0
        BNE r11, r9, .page
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .sweep
        MOV r1, r8
        MOVI r2, 32768
        CALL munmap
.done:
        MOVI r0, 0
        RET
`

// FaultVictims returns the campaign corpus in canonical order.
func FaultVictims() []FaultVictim {
	return []FaultVictim{
		{Name: "loop", Source: faultLoopSrc},
		{Name: "chain", Source: faultChainSrc},
		{Name: "paged", Source: faultPagedSrc, Paged: true},
		{
			Name:   "dynamic",
			Source: faultDynamicSrc,
			Stdin:  "/data/a.txt\n/data/b.txt\n",
			Patterns: map[string][]installer.ArgPattern{
				"open": {{Arg: 0, Pattern: "/data/*.txt"}},
			},
		},
		{Name: "netpair", Source: faultNetSrc, Net: true},
		{Name: "pollpair", Source: faultPollSrc, Net: true},
	}
}
