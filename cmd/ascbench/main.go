// ascbench regenerates the paper's evaluation tables.
//
// Usage: ascbench [-table 1|2|3|4|6|andrew|compare|smp|ckpt|net|batch|cluster|mem|all]
// [-scale N] [-procs N] [-json FILE] [-guard RATIO]
// [-cpuprofile FILE] [-memprofile FILE]
//
// With -json FILE, the Table 4 microbenchmark rows (plain, verified, and
// cache-enabled cycles per call) are additionally written to FILE as a
// machine-readable summary; with -table smp the same flag writes the SMP
// scaling sweep (BENCH_smp.json), with -table ckpt the crash-recovery
// cadence sweep (BENCH_ckpt.json), with -table net the network fleet
// sweep (BENCH_net.json), with -table batch the group-commit sweep
// (BENCH_batch.json), with -table cluster the multi-node failover
// sweep (BENCH_cluster.json), and with -table mem the paged-memory
// working-set sweep (BENCH_mem.json). All of these come from
// deterministic cycle counts, so the JSON is byte-stable.
//
// -guard RATIO fails the run (exit 1) if the Table 4 cached getpid cost
// exceeds RATIO times the plain cost — the fast-path perf regression
// gate. -cpuprofile/-memprofile write pprof profiles of the benchmark
// run itself, so fast-path work is profiled instead of guessed at.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"asc/internal/bench"
	"asc/internal/workload"
)

// benchJSON is the machine-readable kernel benchmark summary.
type benchJSON struct {
	LoopCost float64        `json:"loop_cost_cycles"`
	Rows     []benchJSONRow `json:"rows"`
}

// benchJSONRow is one system call's modeled cycles per call in each of
// the three kernel configurations.
type benchJSONRow struct {
	Call     string  `json:"call"`
	Plain    float64 `json:"plain_cycles"`
	Verified float64 `json:"verified_cycles"`
	Cached   float64 `json:"cached_cycles"`
}

func writeJSON(path string, t4 *bench.Table4Data) error {
	out := benchJSON{LoopCost: t4.LoopCost}
	for _, r := range t4.Rows {
		out.Rows = append(out.Rows, benchJSONRow{
			Call:     r.Call,
			Plain:    r.OrigCycles,
			Verified: r.AuthCycles,
			Cached:   r.CachedCycles,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// smpJSON is the machine-readable SMP scaling summary.
type smpJSON struct {
	Procs int          `json:"procs"`
	Iters int          `json:"iters"`
	Rows  []smpJSONRow `json:"rows"`
}

type smpJSONRow struct {
	Call          string         `json:"call"`
	CyclesPerProc uint64         `json:"cycles_per_proc"`
	CallsPerProc  uint64         `json:"calls_per_proc"`
	Points        []smpJSONPoint `json:"points"`
}

type smpJSONPoint struct {
	Workers           int     `json:"workers"`
	MakespanCycles    uint64  `json:"makespan_cycles"`
	Speedup           float64 `json:"speedup"`
	EfficiencyPct     float64 `json:"efficiency_pct"`
	VerifiedPerMCycle float64 `json:"verified_per_mcycle"`
}

func writeSMPJSON(path string, t *bench.SMPData) error {
	out := smpJSON{Procs: t.Procs, Iters: t.Iters}
	for _, r := range t.Rows {
		row := smpJSONRow{Call: r.Call, CyclesPerProc: r.CyclesPerProc, CallsPerProc: r.CallsPerProc}
		for _, p := range r.Points {
			row.Points = append(row.Points, smpJSONPoint{
				Workers:           p.Workers,
				MakespanCycles:    p.MakespanCycles,
				Speedup:           p.Speedup,
				EfficiencyPct:     p.EfficiencyPct,
				VerifiedPerMCycle: p.VerifiedPerMCycle,
			})
		}
		out.Rows = append(out.Rows, row)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ckptJSON is the machine-readable crash-recovery summary.
type ckptJSON struct {
	Iters        int             `json:"iters"`
	CleanCycles  uint64          `json:"clean_cycles"`
	BudgetCycles uint64          `json:"budget_cycles"`
	Points       []ckptJSONPoint `json:"points"`
}

type ckptJSONPoint struct {
	Divisor      int     `json:"divisor"`
	EveryCycles  uint64  `json:"every_cycles"`
	Checkpoints  int     `json:"checkpoints"`
	WarmRestarts int     `json:"warm_restarts"`
	ColdStarts   int     `json:"cold_starts"`
	Attempts     int     `json:"attempts"`
	ReplayCycles uint64  `json:"replay_cycles"`
	ReplayPct    float64 `json:"replay_pct"`
	Recovered    bool    `json:"recovered"`
}

func writeCkptJSON(path string, t *bench.CkptData) error {
	out := ckptJSON{Iters: t.Iters, CleanCycles: t.CleanCycles, BudgetCycles: t.BudgetCycles}
	for _, p := range t.Points {
		out.Points = append(out.Points, ckptJSONPoint{
			Divisor:      p.Divisor,
			EveryCycles:  p.EveryCycles,
			Checkpoints:  p.Checkpoints,
			WarmRestarts: p.WarmRestarts,
			ColdStarts:   p.ColdStarts,
			Attempts:     p.Attempts,
			ReplayCycles: p.ReplayCycles,
			ReplayPct:    p.ReplayPct,
			Recovered:    p.Recovered,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// netJSON is the machine-readable network sweep summary.
type netJSON struct {
	Iters int            `json:"iters"`
	Rows  []netJSONRow   `json:"rows"`
	Shard []shardJSONRow `json:"shard"`
}

type shardJSONRow struct {
	Replicas     int            `json:"replicas"`
	Clients      int            `json:"clients"`
	Iters        int            `json:"iters"`
	Requests     uint64         `json:"requests"`
	CyclesCached uint64         `json:"cycles_cached"`
	Verified     uint64         `json:"verified_calls"`
	Points       []netJSONPoint `json:"points"`
}

type netJSONRow struct {
	Clients           int            `json:"clients"`
	Requests          uint64         `json:"requests"`
	Bytes             uint64         `json:"bytes"`
	CyclesOff         uint64         `json:"cycles_off"`
	CyclesOn          uint64         `json:"cycles_enforced"`
	CyclesCached      uint64         `json:"cycles_cached"`
	OverheadPct       float64        `json:"overhead_pct"`
	CachedOverheadPct float64        `json:"cached_overhead_pct"`
	Verified          uint64         `json:"verified_calls"`
	Points            []netJSONPoint `json:"points"`
}

type netJSONPoint struct {
	Workers           int     `json:"workers"`
	MakespanCycles    uint64  `json:"makespan_cycles"`
	Speedup           float64 `json:"speedup"`
	EfficiencyPct     float64 `json:"efficiency_pct"`
	VerifiedPerMCycle float64 `json:"verified_per_mcycle"`
}

func writeNetJSON(path string, t *bench.NetData) error {
	out := netJSON{Iters: t.Iters}
	for _, r := range t.Rows {
		row := netJSONRow{
			Clients:           r.Clients,
			Requests:          r.Requests,
			Bytes:             r.Bytes,
			CyclesOff:         r.CyclesOff,
			CyclesOn:          r.CyclesOn,
			CyclesCached:      r.CyclesCached,
			OverheadPct:       r.OverheadPct,
			CachedOverheadPct: r.CachedOverheadPct,
			Verified:          r.Verified,
		}
		for _, p := range r.Points {
			row.Points = append(row.Points, netJSONPoint{
				Workers:           p.Workers,
				MakespanCycles:    p.MakespanCycles,
				Speedup:           p.Speedup,
				EfficiencyPct:     p.EfficiencyPct,
				VerifiedPerMCycle: p.VerifiedPerMCycle,
			})
		}
		out.Rows = append(out.Rows, row)
	}
	for _, r := range t.Shard {
		row := shardJSONRow{
			Replicas:     r.Replicas,
			Clients:      r.Clients,
			Iters:        r.Iters,
			Requests:     r.Requests,
			CyclesCached: r.CyclesCached,
			Verified:     r.Verified,
		}
		for _, p := range r.Points {
			row.Points = append(row.Points, netJSONPoint{
				Workers:           p.Workers,
				MakespanCycles:    p.MakespanCycles,
				Speedup:           p.Speedup,
				EfficiencyPct:     p.EfficiencyPct,
				VerifiedPerMCycle: p.VerifiedPerMCycle,
			})
		}
		out.Shard = append(out.Shard, row)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// batchJSON is the machine-readable group-commit sweep summary.
type batchJSON struct {
	Procs int            `json:"procs"`
	Rows  []batchJSONRow `json:"rows"`
}

type batchJSONRow struct {
	Mode   string           `json:"cache_mode"`
	Hits   uint64           `json:"hits"`
	Misses uint64           `json:"misses"`
	Shares uint64           `json:"shares"`
	Points []batchJSONPoint `json:"points"`
}

type batchJSONPoint struct {
	Burst         int     `json:"burst"`
	CyclesPerCall float64 `json:"cycles_per_call"`
}

func writeBatchJSON(path string, t *bench.BatchData) error {
	out := batchJSON{Procs: t.Procs}
	for _, r := range t.Rows {
		row := batchJSONRow{Mode: r.Mode, Hits: r.Hits, Misses: r.Misses, Shares: r.Shares}
		for _, p := range r.Points {
			row.Points = append(row.Points, batchJSONPoint{Burst: p.Burst, CyclesPerCall: p.CyclesPerCall})
		}
		out.Rows = append(out.Rows, row)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// clusterJSON is the machine-readable failover sweep summary.
type clusterJSON struct {
	Iters       int                 `json:"iters"`
	CleanCycles uint64              `json:"clean_cycles"`
	SliceCycles uint64              `json:"slice_cycles"`
	CrashTick   int                 `json:"crash_tick"`
	Points      []clusterJSONPoint  `json:"points"`
	Takeover    []takeoverJSONPoint `json:"takeover,omitempty"`
}

type takeoverJSONPoint struct {
	HeartbeatEvery int    `json:"heartbeat_every"`
	Procs          int    `json:"procs"`
	CrashTick      int    `json:"crash_tick"`
	TakeoverTick   int    `json:"takeover_tick"`
	DetectTicks    int    `json:"detect_ticks"`
	Ticks          int    `json:"ticks"`
	Reattached     int    `json:"reattached"`
	Restored       int    `json:"restored"`
	WarmRestarts   int    `json:"warm_restarts"`
	ColdStarts     int    `json:"cold_starts"`
	WALRecords     int    `json:"wal_records"`
	Term           uint32 `json:"term"`
}

type clusterJSONPoint struct {
	Nodes          int     `json:"nodes"`
	HeartbeatEvery int     `json:"heartbeat_every"`
	Procs          int     `json:"procs"`
	Ticks          int     `json:"ticks"`
	DetectTicks    int     `json:"detect_ticks"`
	FailoverTicks  int     `json:"failover_ticks"`
	Failovers      int     `json:"failovers"`
	WarmRestarts   int     `json:"warm_restarts"`
	ColdStarts     int     `json:"cold_starts"`
	Checkpoints    int     `json:"checkpoints"`
	ReplayCycles   uint64  `json:"replay_cycles"`
	RestoredCycles uint64  `json:"restored_cycles"`
	RecoveredPct   float64 `json:"recovered_pct"`
	Beats          int     `json:"beats"`
	MissedBeats    int     `json:"missed_beats"`
}

func writeClusterJSON(path string, t *bench.ClusterData) error {
	out := clusterJSON{Iters: t.Iters, CleanCycles: t.CleanCycles, SliceCycles: t.SliceCycles, CrashTick: t.CrashTick}
	for _, p := range t.Points {
		out.Points = append(out.Points, clusterJSONPoint{
			Nodes:          p.Nodes,
			HeartbeatEvery: p.HeartbeatEvery,
			Procs:          p.Procs,
			Ticks:          p.Ticks,
			DetectTicks:    p.DetectTicks,
			FailoverTicks:  p.FailoverTicks,
			Failovers:      p.Failovers,
			WarmRestarts:   p.WarmRestarts,
			ColdStarts:     p.ColdStarts,
			Checkpoints:    p.Checkpoints,
			ReplayCycles:   p.ReplayCycles,
			RestoredCycles: p.RestoredCycles,
			RecoveredPct:   p.RecoveredPct,
			Beats:          p.Beats,
			MissedBeats:    p.MissedBeats,
		})
	}
	for _, p := range t.Takeover {
		out.Takeover = append(out.Takeover, takeoverJSONPoint{
			HeartbeatEvery: p.HeartbeatEvery,
			Procs:          p.Procs,
			CrashTick:      p.CrashTick,
			TakeoverTick:   p.TakeoverTick,
			DetectTicks:    p.DetectTicks,
			Ticks:          p.Ticks,
			Reattached:     p.Reattached,
			Restored:       p.Restored,
			WarmRestarts:   p.WarmRestarts,
			ColdStarts:     p.ColdStarts,
			WALRecords:     p.WALRecords,
			Term:           p.Term,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// memJSON is the machine-readable paged-memory sweep summary.
type memJSON struct {
	Sweeps int            `json:"sweeps"`
	Points []memJSONPoint `json:"points"`
}

type memJSONPoint struct {
	BudgetPages       int     `json:"budget_pages"`
	WSPages           int     `json:"ws_pages"`
	Faults            uint64  `json:"faults"`
	Evicts            uint64  `json:"evicts"`
	Swapins           uint64  `json:"swapins"`
	CyclesOff         uint64  `json:"cycles_off"`
	CyclesOn          uint64  `json:"cycles_enforced"`
	CyclesCached      uint64  `json:"cycles_cached"`
	OverheadPct       float64 `json:"overhead_pct"`
	CachedOverheadPct float64 `json:"cached_overhead_pct"`
}

func writeMemJSON(path string, t *bench.MemData) error {
	out := memJSON{Sweeps: t.Sweeps}
	for _, p := range t.Points {
		out.Points = append(out.Points, memJSONPoint{
			BudgetPages:       p.BudgetPages,
			WSPages:           p.WSPages,
			Faults:            p.Faults,
			Evicts:            p.Evicts,
			Swapins:           p.Swapins,
			CyclesOff:         p.CyclesOff,
			CyclesOn:          p.CyclesOn,
			CyclesCached:      p.CyclesCached,
			OverheadPct:       p.OverheadPct,
			CachedOverheadPct: p.CachedOverheadPct,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// checkGuard enforces the fast-path regression gate on the Table 4 rows.
func checkGuard(t4 *bench.Table4Data, ratio float64) error {
	for _, r := range t4.Rows {
		if r.Call != "getpid" {
			continue
		}
		if got := r.CachedCycles / r.OrigCycles; got > ratio {
			return fmt.Errorf("cached getpid %.0f cycles is %.2fx plain %.0f, guard is %.2fx",
				r.CachedCycles, got, r.OrigCycles, ratio)
		}
		return nil
	}
	return fmt.Errorf("guard: no getpid row in Table 4")
}

func main() {
	table := flag.String("table", "all", "which artifact to regenerate: 1, 2, 3, 4, 6, andrew, compare, smp, ckpt, net, batch, cluster, mem, all")
	scale := flag.Int("scale", 1, "divide macro-benchmark iteration counts by N (faster, less precise)")
	jsonPath := flag.String("json", "", "write the Table 4 (or -table smp) benchmark summary to FILE as JSON")
	procs := flag.Int("procs", 8, "SMP sweep: processes per fleet")
	guard := flag.Float64("guard", 0, "fail if Table 4 cached getpid exceeds this ratio of plain (0 = off)")
	netguard := flag.Float64("netguard", 0, "fail if the sharded fleet's 4-worker efficiency falls below this percentage (0 = off)")
	takeoverguard := flag.Bool("takeoverguard", false, "fail if a director crash with a warm standby cold-starts any process")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to FILE")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the benchmark run to FILE")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ascbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ascbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ascbench: memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ascbench: memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *netguard > 0 {
		speedup, eff, err := bench.ShardGuard(bench.DefaultKey)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ascbench: netguard: %v\n", err)
			os.Exit(1)
		}
		if eff < *netguard {
			fmt.Fprintf(os.Stderr, "ascbench: netguard: sharded fleet 4-worker efficiency %.1f%% (speedup %.2fx) below floor %.1f%%\n",
				eff, speedup, *netguard)
			os.Exit(1)
		}
		fmt.Printf("netguard: sharded fleet 4-worker speedup %.2fx, efficiency %.1f%% (floor %.1f%%)\n", speedup, eff, *netguard)
	}
	if *takeoverguard {
		reattached, restored, cold, err := bench.TakeoverGuard(bench.DefaultKey)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ascbench: takeoverguard: %v\n", err)
			os.Exit(1)
		}
		if cold != 0 {
			fmt.Fprintf(os.Stderr, "ascbench: takeoverguard: %d cold starts across a director takeover (want 0)\n", cold)
			os.Exit(1)
		}
		fmt.Printf("takeoverguard: director takeover recovered %d live + %d warm, 0 cold starts\n", reattached, restored)
	}

	run := func(name string, f func() (interface{ Render() string }, error)) {
		if *table != "all" && *table != name {
			return
		}
		data, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ascbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(data.Render())
	}

	run("1", func() (interface{ Render() string }, error) { return bench.Table1() })
	run("2", func() (interface{ Render() string }, error) { return bench.Table2() })
	run("3", func() (interface{ Render() string }, error) { return bench.Table3() })
	run("4", func() (interface{ Render() string }, error) {
		t4, err := bench.Table4(bench.DefaultKey)
		if err != nil {
			return nil, err
		}
		if *guard > 0 {
			if err := checkGuard(t4, *guard); err != nil {
				return nil, err
			}
		}
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, t4); err != nil {
				return nil, fmt.Errorf("write %s: %w", *jsonPath, err)
			}
		}
		return t4, nil
	})
	run("6", func() (interface{ Render() string }, error) { return bench.Table6(bench.DefaultKey, *scale) })
	run("andrew", func() (interface{ Render() string }, error) {
		return bench.Andrew(bench.DefaultKey, workload.AndrewConfig{})
	})
	run("compare", func() (interface{ Render() string }, error) {
		return bench.EnforcementComparison(bench.DefaultKey)
	})
	run("smp", func() (interface{ Render() string }, error) {
		data, err := bench.SMP(bench.DefaultKey, *procs, 200)
		if err != nil {
			return nil, err
		}
		if *jsonPath != "" {
			if err := writeSMPJSON(*jsonPath, data); err != nil {
				return nil, fmt.Errorf("write %s: %w", *jsonPath, err)
			}
		}
		return data, nil
	})
	run("ckpt", func() (interface{ Render() string }, error) {
		data, err := bench.Ckpt(bench.DefaultKey, 400)
		if err != nil {
			return nil, err
		}
		if *jsonPath != "" {
			if err := writeCkptJSON(*jsonPath, data); err != nil {
				return nil, fmt.Errorf("write %s: %w", *jsonPath, err)
			}
		}
		return data, nil
	})
	run("net", func() (interface{ Render() string }, error) {
		data, err := bench.Net(bench.DefaultKey, 4)
		if err != nil {
			return nil, err
		}
		if *jsonPath != "" {
			if err := writeNetJSON(*jsonPath, data); err != nil {
				return nil, fmt.Errorf("write %s: %w", *jsonPath, err)
			}
		}
		return data, nil
	})
	run("cluster", func() (interface{ Render() string }, error) {
		data, err := bench.Cluster(bench.DefaultKey, 400)
		if err != nil {
			return nil, err
		}
		if *jsonPath != "" {
			if err := writeClusterJSON(*jsonPath, data); err != nil {
				return nil, fmt.Errorf("write %s: %w", *jsonPath, err)
			}
		}
		return data, nil
	})
	run("batch", func() (interface{ Render() string }, error) {
		data, err := bench.Batch(bench.DefaultKey)
		if err != nil {
			return nil, err
		}
		if *jsonPath != "" {
			if err := writeBatchJSON(*jsonPath, data); err != nil {
				return nil, fmt.Errorf("write %s: %w", *jsonPath, err)
			}
		}
		return data, nil
	})
	run("mem", func() (interface{ Render() string }, error) {
		data, err := bench.Mem(bench.DefaultKey)
		if err != nil {
			return nil, err
		}
		if *jsonPath != "" {
			if err := writeMemJSON(*jsonPath, data); err != nil {
				return nil, fmt.Errorf("write %s: %w", *jsonPath, err)
			}
		}
		return data, nil
	})
}
