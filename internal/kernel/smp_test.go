// smp_test.go asserts the kernel's SMP concurrency contract: one
// kernel, many goroutines each driving their own process. Run under
// -race these tests are the gate for the sharded kernel state — the
// shared VFS, pattern cache, PID table, audit ring, and the atomic
// verify-cache counters.
package kernel

import (
	"errors"
	"sync"
	"testing"

	"asc/internal/vm"
)

// TestSMPCacheCountersHammer hammers one cache-enabled kernel from 8
// goroutines, each spawning and running its own copy of the cache loop.
// The per-process cache mode is used deliberately: it keeps every
// process's counters and cycle count exactly as in the serial run, so
// concurrency may not leak hits or misses across processes. (The
// fleet-shared mode trades this determinism for sharing; see
// TestSMPFleetCacheHammer.)
func TestSMPCacheCountersHammer(t *testing.T) {
	const procs = 8
	exe := buildAuthExe(t, cacheLoopSrc)
	k := newKernel(t, WithCacheMode(CachePerProcess))
	ps := make([]*Process, procs)
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for i := 0; i < procs; i++ {
		p, err := k.Spawn(exe, "hammer")
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = p
	}
	wg.Add(procs)
	for i := 0; i < procs; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = k.Run(ps[i], 100_000_000)
		}(i)
	}
	wg.Wait()
	for i, p := range ps {
		if errs[i] != nil {
			t.Fatalf("proc %d: %v", i, errs[i])
		}
		if p.Killed {
			t.Fatalf("proc %d killed: %v", i, p.KilledBy)
		}
		cs := p.CacheStats()
		if cs.Misses != 3 {
			t.Errorf("proc %d: CacheMisses = %d, want 3", i, cs.Misses)
		}
		if cs.Hits != 6 {
			t.Errorf("proc %d: CacheHits = %d, want 6", i, cs.Hits)
		}
		if cs.Invalidations != 0 || cs.Shares != 0 {
			t.Errorf("proc %d: invalidations=%d shares=%d, want 0/0", i, cs.Invalidations, cs.Shares)
		}
		// Per-process determinism under concurrency.
		if p.CPU.Cycles != ps[0].CPU.Cycles {
			t.Errorf("proc %d: cycles %d != proc 0 cycles %d", i, p.CPU.Cycles, ps[0].CPU.Cycles)
		}
	}
}

// TestSMPFleetCacheHammer hammers the fleet-shared cache with group
// commit: one warm-up process fully verifies and publishes every site,
// then seven more run concurrently and must resolve every site by
// adopting the fleet entries — zero further misses, deterministic
// per-process counters, and a kernel-wide aggregate that adds up.
func TestSMPFleetCacheHammer(t *testing.T) {
	const procs = 8
	exe := buildAuthExe(t, cacheLoopSrc)
	k := newKernel(t, WithVerifyCache(), WithBatchVerify(8))
	ps := make([]*Process, procs)
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for i := 0; i < procs; i++ {
		p, err := k.Spawn(exe, "fleet")
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = p
	}
	// Warm the fleet cache: after this run every site is published.
	if err := k.Run(ps[0], 100_000_000); err != nil {
		t.Fatal(err)
	}
	wg.Add(procs - 1)
	for i := 1; i < procs; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = k.Run(ps[i], 100_000_000)
		}(i)
	}
	wg.Wait()
	for i, p := range ps {
		if errs[i] != nil {
			t.Fatalf("proc %d: %v", i, errs[i])
		}
		if p.Killed {
			t.Fatalf("proc %d killed: %v", i, p.KilledBy)
		}
		cs := p.CacheStats()
		want := CacheStats{Hits: 6, Shares: 3}
		if i == 0 {
			want = CacheStats{Hits: 6, Misses: 3}
		}
		if cs != want {
			t.Errorf("proc %d: stats %+v, want %+v", i, cs, want)
		}
		if i >= 2 && p.CPU.Cycles != ps[1].CPU.Cycles {
			t.Errorf("proc %d: cycles %d != proc 1 cycles %d", i, p.CPU.Cycles, ps[1].CPU.Cycles)
		}
	}
	total := k.CacheStats()
	want := CacheStats{Hits: procs * 6, Misses: 3, Shares: (procs - 1) * 3}
	if total != want {
		t.Errorf("kernel aggregate %+v, want %+v", total, want)
	}
}

// denyHammer runs n unauthenticated copies of the cache loop on a
// strict Deny-mode kernel with a tiny audit ring: every system call is
// a violation, so the ring overflows and the dropped counter moves.
// Returns the kernel after all runs complete.
func denyHammer(t *testing.T, n, ringCap int) *Kernel {
	t.Helper()
	exe := buildExe(t, cacheLoopSrc) // NOT installed: every call violates
	k := newKernel(t,
		WithRequireAuthenticated(),
		WithEnforcement(EnforceDeny),
		WithAuditCapacity(ringCap))
	ps := make([]*Process, n)
	for i := range ps {
		p, err := k.Spawn(exe, "deny")
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = p
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			// Denied exit means the process never terminates cleanly;
			// a bounded run ending in the cycle limit is expected.
			if err := k.Run(ps[i], 200_000); err != nil && !errors.Is(err, vm.ErrCycleLimit) {
				t.Errorf("proc %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	return k
}

// TestSMPAuditRingHammer drives 8 violating processes into one
// 16-entry audit ring concurrently and checks the atomic accounting:
// total appended is exactly 8× the serial per-process figure, the ring
// holds at most its capacity, and dropped = total - held.
func TestSMPAuditRingHammer(t *testing.T) {
	const ringCap = 16
	serial := denyHammer(t, 1, ringCap)
	perProc := serial.Audit.Total()
	if perProc == 0 {
		t.Fatal("serial run recorded no violations")
	}
	k := denyHammer(t, 8, ringCap)
	total := k.Audit.Total()
	if want := 8 * perProc; total != want {
		t.Errorf("Total = %d, want %d (8 × %d per-process violations)", total, want, perProc)
	}
	held := k.Audit.Len()
	if held > ringCap {
		t.Errorf("ring holds %d entries, capacity %d", held, ringCap)
	}
	if got, want := k.Audit.Dropped(), total-uint64(held); got != want {
		t.Errorf("Dropped = %d, want %d (total %d - held %d)", got, want, total, held)
	}
	// Every denied call must have left its process alive and accounted.
	for _, v := range k.Audit.Entries() {
		if v.Action != ActionDeny {
			t.Errorf("entry %d: action %q, want deny", v.Seq, v.Action)
		}
		if v.Reason != KillUnauthenticated {
			t.Errorf("entry %d: reason %q, want %q", v.Seq, v.Reason, KillUnauthenticated)
		}
	}
}

// TestAuditRingConcurrentAppend hammers the ring directly: 8 writers ×
// 1000 appends into a 16-slot ring. Sequence numbers must be unique
// and the counters exact.
func TestAuditRingConcurrentAppend(t *testing.T) {
	const writers, perWriter, ringCap = 8, 1000, 16
	var r AuditRing
	r.SetCapacity(ringCap)
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Append(Violation{PID: w, Num: uint16(i)})
			}
		}(w)
	}
	wg.Wait()
	const total = writers * perWriter
	if got := r.Total(); got != total {
		t.Errorf("Total = %d, want %d", got, total)
	}
	if got := r.Len(); got != ringCap {
		t.Errorf("Len = %d, want %d", got, ringCap)
	}
	if got := r.Dropped(); got != total-ringCap {
		t.Errorf("Dropped = %d, want %d", got, total-ringCap)
	}
	seen := make(map[uint64]bool)
	for _, v := range r.Entries() {
		if seen[v.Seq] {
			t.Errorf("duplicate sequence number %d", v.Seq)
		}
		seen[v.Seq] = true
		if v.Seq >= total {
			t.Errorf("sequence number %d out of range", v.Seq)
		}
	}
}
