package binfmt

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func sampleFile() *File {
	text := make([]byte, 32)
	data := []byte("hello\x00world\x00")
	f := &File{
		Relocatable: true,
		Sections: []Section{
			{Name: SecText, Size: uint32(len(text)), Flags: FlagRead | FlagExec, Data: text},
			{Name: SecData, Size: uint32(len(data)), Flags: FlagRead | FlagWrite, Data: data},
			{Name: SecBSS, Size: 64, Flags: FlagRead | FlagWrite},
		},
		Symbols: []Symbol{
			{Name: "_start", Section: 0, Value: 0, Kind: SymFunc, Global: true},
			{Name: "msg", Section: 1, Value: 0, Kind: SymString, Global: false},
			{Name: "buf", Section: 2, Value: 0, Kind: SymObject, Global: true},
			{Name: "extern", Section: -1, Kind: SymFunc, Global: true},
		},
		Relocs: []Reloc{
			{Section: 0, Offset: 4, Sym: 1, Addend: 0},
			{Section: 0, Offset: 12, Sym: 2, Addend: 8},
		},
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	f.Layout()
	f.Authenticated = true
	f.ProgramID = 42
	f.Entry = 0x1000
	b, err := f.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	g, err := Read(b)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.Entry != f.Entry || g.ProgramID != 42 || !g.Authenticated || !g.Relocatable {
		t.Errorf("header mismatch: %+v", g)
	}
	if len(g.Sections) != 3 || len(g.Symbols) != 4 || len(g.Relocs) != 2 {
		t.Fatalf("counts mismatch: %d sections %d symbols %d relocs",
			len(g.Sections), len(g.Symbols), len(g.Relocs))
	}
	if g.Sections[1].Name != SecData || string(g.Sections[1].Data) != "hello\x00world\x00" {
		t.Errorf("data section mismatch: %+v", g.Sections[1])
	}
	if g.Symbols[3].Defined() {
		t.Error("extern symbol should be undefined")
	}
}

func TestLayoutAndRelocs(t *testing.T) {
	f := sampleFile()
	f.Layout()
	if f.Sections[0].Addr != TextBase {
		t.Errorf(".text at %#x, want %#x", f.Sections[0].Addr, TextBase)
	}
	if f.Sections[1].Addr%SectionAlign != 0 || f.Sections[1].Addr < f.Sections[0].End() {
		t.Errorf(".data at %#x (text ends %#x)", f.Sections[1].Addr, f.Sections[0].End())
	}
	if f.Entry != TextBase {
		t.Errorf("entry = %#x, want %#x (_start)", f.Entry, TextBase)
	}
	if err := f.ApplyRelocs(); err != nil {
		t.Fatalf("ApplyRelocs: %v", err)
	}
	msgAddr, _ := f.SymbolAddr("msg")
	if got := binary.LittleEndian.Uint32(f.Sections[0].Data[4:]); got != msgAddr {
		t.Errorf("reloc 0 patched %#x, want %#x", got, msgAddr)
	}
	bufAddr, _ := f.SymbolAddr("buf")
	if got := binary.LittleEndian.Uint32(f.Sections[0].Data[12:]); got != bufAddr+8 {
		t.Errorf("reloc 1 patched %#x, want %#x", got, bufAddr+8)
	}
}

func TestApplyRelocsErrors(t *testing.T) {
	f := sampleFile()
	f.Layout()
	f.Relocs = append(f.Relocs, Reloc{Section: 0, Offset: 1000, Sym: 0})
	if err := f.ApplyRelocs(); err == nil {
		t.Error("out-of-range reloc offset: want error")
	}
	f = sampleFile()
	f.Layout()
	f.Relocs[0].Sym = 3 // undefined symbol
	if err := f.ApplyRelocs(); err == nil {
		t.Error("reloc against undefined symbol: want error")
	}
}

func TestImage(t *testing.T) {
	f := sampleFile()
	f.Layout()
	base, img, err := f.Image()
	if err != nil {
		t.Fatalf("Image: %v", err)
	}
	if base != TextBase {
		t.Errorf("base = %#x", base)
	}
	dataOff := f.Sections[1].Addr - base
	if string(img[dataOff:dataOff+5]) != "hello" {
		t.Errorf("data not copied into image")
	}
	wantLen := f.Sections[2].End() - base
	if uint32(len(img)) != wantLen {
		t.Errorf("image len %d, want %d (covers bss)", len(img), wantLen)
	}
}

func TestLookups(t *testing.T) {
	f := sampleFile()
	f.Layout()
	if f.Section(".text") == nil || f.Section(".nope") != nil {
		t.Error("Section lookup broken")
	}
	if f.SectionIndex(SecData) != 1 || f.SectionIndex("x") != -1 {
		t.Error("SectionIndex broken")
	}
	if s := f.SectionAt(f.Sections[1].Addr + 3); s == nil || s.Name != SecData {
		t.Error("SectionAt broken")
	}
	if f.SectionAt(0) != nil {
		t.Error("SectionAt(0) should be nil")
	}
	name, off := f.SymbolAt(TextBase + 8)
	if name != "_start" || off != 8 {
		t.Errorf("SymbolAt = %q+%d, want _start+8", name, off)
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	f := sampleFile()
	f.Layout()
	good, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("ELF\x7f....................")},
		{"truncated", good[:len(good)/2]},
		{"truncated header", good[:6]},
	}
	for _, tt := range tests {
		if _, err := Read(tt.b); err == nil {
			t.Errorf("%s: Read accepted corrupt input", tt.name)
		}
	}
	// Corrupt a section count to a huge value.
	bad := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[14:], 1<<30)
	if _, err := Read(bad); err == nil {
		t.Error("huge section count accepted")
	}
}

// Property: truncation at any point never panics and always errors.
func TestPropertyTruncationSafe(t *testing.T) {
	f := sampleFile()
	f.Layout()
	b, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(b); i++ {
		if _, err := Read(b[:i]); err == nil {
			t.Fatalf("Read of %d-byte prefix succeeded", i)
		}
	}
}

// Property: random byte mutations never panic the reader.
func TestPropertyMutationSafe(t *testing.T) {
	f := sampleFile()
	f.Layout()
	b, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(pos uint, val byte) bool {
		c := append([]byte(nil), b...)
		c[pos%uint(len(c))] = val
		_, _ = Read(c) // must not panic
		return true
	}
	if err := quick.Check(mut, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
