#!/bin/sh
# cluster.sh — regenerate BENCH_cluster.json: the multi-node failover
# sweep (a fleet of loop workloads spread across 2/3/4 kernel nodes
# loses node 1 mid-run at three heartbeat cadences; the director must
# detect the failure and re-place the displaced processes warm from
# sealed checkpoints) plus the director-takeover arm (the primary
# director is killed mid-migration on a durable 3-node cluster at each
# heartbeat cadence; the warm standby replays the sealed WAL and the
# fleet finishes with zero cold starts). The figures are computed from
# deterministic cycle counts on a virtual clock, so two consecutive
# runs produce byte-identical JSON.
#
# Refuses to overwrite an uncommitted BENCH_cluster.json unless FORCE=1,
# so a locally modified artifact is never clobbered silently.
set -eu

cd "$(dirname "$0")/.."

if git diff --quiet -- BENCH_cluster.json 2>/dev/null; then
    : # clean (or not yet tracked with changes): safe to regenerate
elif [ "${FORCE:-0}" = "1" ]; then
    echo "cluster.sh: BENCH_cluster.json is dirty; overwriting (FORCE=1)" >&2
else
    echo "cluster.sh: BENCH_cluster.json has uncommitted changes; commit them or rerun with FORCE=1" >&2
    exit 1
fi

go run ./cmd/ascbench -table cluster -json BENCH_cluster.json
echo "wrote BENCH_cluster.json"
