// Package kernel implements the operating system of the simulated
// platform: processes, a system call table over the in-memory VFS, and —
// the paper's kernel-side contribution — the authenticated system call
// verification path in the trap handler (Section 3.4).
//
// The verification path mirrors the paper exactly:
//
//  1. Reconstruct the encoded call from the actual trap state and check
//     the call MAC.
//  2. Check the integrity of each authenticated string argument.
//  3. Check the control-flow policy using the online memory checker:
//     the {lastBlock, lbMAC} state lives in application memory and is
//     validated against an in-kernel per-process counter nonce, then
//     updated.
//
// Any failure terminates the process, logs the call, and records an audit
// entry. Unauthenticated calls from authenticated binaries are also
// blocked (the paper's shellcode defense).
package kernel

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"asc/internal/binfmt"
	"asc/internal/captrack"
	"asc/internal/isa"
	"asc/internal/mac"
	anet "asc/internal/net"
	"asc/internal/pattern"
	"asc/internal/policy"
	"asc/internal/sys"
	"asc/internal/vfs"
	"asc/internal/vm"
)

// Mode selects the enforcement behaviour.
type Mode int

// Enforcement modes.
const (
	// Permissive executes all system calls without checking. Used for
	// baselines and for tracing training runs.
	Permissive Mode = iota + 1
	// Enforce verifies authenticated calls and kills processes on any
	// violation, including plain SYSCALLs from authenticated binaries.
	Enforce
)

// Personality selects OS-specific syscall behaviour.
type Personality int

// Personalities.
const (
	// Linux rejects the generic indirect syscall.
	Linux Personality = iota + 1
	// OpenBSD dispatches __syscall(n, ...) to syscall n.
	OpenBSD
)

// Defaults for process construction.
const (
	DefaultMemSize   = 4 << 20
	DefaultStackSize = 256 << 10
	// maxFDs bounds one process's descriptor table. Sized for the
	// sharded-service benchmarks, where a single event-loop replica
	// holds an accepted connection per client in a 10k-client cell.
	maxFDs = 16384
)

// KillReason classifies why the monitor terminated a process.
type KillReason string

// Kill reasons recorded in the audit log.
const (
	KillUnauthenticated KillReason = "unauthenticated system call"
	KillBadRecord       KillReason = "malformed auth record"
	KillBadCallMAC      KillReason = "call MAC mismatch"
	KillBadString       KillReason = "authenticated string MAC mismatch"
	KillBadState        KillReason = "policy state MAC mismatch (memory checker)"
	KillBadPredecessor  KillReason = "control flow violation (predecessor not allowed)"
	KillBadPattern      KillReason = "argument does not match authenticated pattern"
	KillBadCapability   KillReason = "file descriptor is not a live capability"
	KillSymlinkRace     KillReason = "path argument resolves outside its policy name (symlink race)"
	KillSwapSeal        KillReason = "swap page MAC mismatch"
	KillSwapReplay      KillReason = "stale swap page (generation mismatch)"
)

// Enforcement selects the kernel's response to a verification failure,
// seccomp-style. It is a per-process property (initialized from the
// kernel default at Spawn) so one machine can run kill-on-violation
// daemons next to audit-mode workloads being ramped in.
type Enforcement int

// Enforcement modes.
const (
	// EnforceKill terminates the process (the paper's behaviour, and the
	// default).
	EnforceKill Enforcement = iota
	// EnforceDeny refuses the violating call with -EPERM and lets the
	// process continue. The call does not execute.
	EnforceDeny
	// EnforceAudit records the violation and executes the call anyway
	// (observe-only ramp-in mode).
	EnforceAudit
)

func (e Enforcement) String() string {
	switch e {
	case EnforceDeny:
		return "deny"
	case EnforceAudit:
		return "audit"
	default:
		return "kill"
	}
}

// Action returns the audit-record action for this mode.
func (e Enforcement) Action() Action {
	switch e {
	case EnforceDeny:
		return ActionDeny
	case EnforceAudit:
		return ActionAudit
	default:
		return ActionKill
	}
}

// Injector is the fault-injection hook interface (internal/fault). A
// kernel with no injector behaves exactly as before; the hooks exist so
// a deterministic campaign can perturb the platform at well-defined
// points of the verification path.
type Injector interface {
	// BeforeVerify runs at every authenticated trap before verification,
	// with kernel-privileged access to the process. recAddr is the auth
	// record address the call passed in R6.
	BeforeVerify(p *Process, num uint16, site uint32, recAddr uint32)
	// NonceUpdate is consulted when the memory checker advances the
	// per-process counter after a successful control-flow check. It
	// returns the number of increments actually applied to the in-kernel
	// counter: 1 is a faithful update, 0 a dropped update, 2 a
	// duplicated one. The state MAC written to application memory is
	// always computed for the intended (single-increment) counter, so a
	// perturbed return desynchronizes kernel and application state.
	NonceUpdate(p *Process) int
}

// TraceEntry records one executed system call (used for Systrace-style
// training and for debugging).
type TraceEntry struct {
	Num  uint16
	Site uint32
	Args [sys.MaxArgs]uint32
	Ret  uint32
}

// Kernel is one simulated machine.
type Kernel struct {
	FS          *vfs.FS
	Mode        Mode
	Personality Personality
	Costs       CostModel

	// NormalizePaths enables the §5.4 defense: a policy-constrained path
	// argument must normalize (all symbolic links resolved) to itself.
	// An attacker who plants a symlink at a policy-approved name — e.g.
	// /tmp/foo -> /etc/passwd — is caught before the call proceeds.
	NormalizePaths bool

	// RequireAuthenticated extends enforcement to every process: system
	// calls from binaries the installer has not transformed are also
	// killed. This is the paper's full-system deployment ("the system
	// as a whole is protected once all binaries that run in user space
	// have been transformed", §3.3); without it, enforcement applies
	// per-binary.
	RequireAuthenticated bool

	// MonitorOverhead, when non-nil, is consulted on every system call
	// of a *non-authenticated* binary to model alternative monitors
	// (e.g. a user-space policy daemon); it returns extra cycles and
	// whether the call is allowed.
	MonitorOverhead func(p *Process, num uint16, site uint32) (extra uint64, allow bool)

	// Cache selects the verification-cache mode. Once a call site passes
	// the call MAC and string MAC checks, later traps at the same site
	// skip the AES work when the record bytes and every MAC-checked
	// buffer are provably unchanged (store-generation counters in
	// internal/vm; any application store to a covering segment forces
	// re-validation). CacheShared additionally publishes verified
	// entries kernel-wide, keyed by program tag and site, so sibling
	// processes of the same binary adopt them with a byte compare
	// instead of re-running the AES verification. The control-flow
	// memory checker and the capability-set check stay exact on every
	// call.
	Cache CacheMode

	// Net, when non-nil, backs the socket system call family with the
	// in-memory loopback network (internal/net): ports, listeners, and
	// message-framed streams with real data movement and blocking
	// semantics. Without it the socket calls keep their historical
	// validate-and-succeed stub behaviour, so existing single-process
	// workloads are unaffected.
	Net *anet.Network

	key   *mac.Keyed
	Audit AuditRing

	// mu guards the process table and PID allocation; everything else a
	// concurrent Run needs is either immutable after New, per-process, or
	// synchronized on its own (the audit ring, the pattern cache, the
	// VFS). One Kernel may drive many processes from many goroutines, but
	// each individual Process must be driven by one goroutine at a time.
	mu      sync.Mutex
	nextPID int
	procs   map[int]*Process

	// enforcement is the default Enforcement given to spawned processes.
	enforcement Enforcement
	// injector, when non-nil, receives the fault-injection hooks. Fault
	// engines are stateful and not synchronized: a kernel with an
	// injector must run one process at a time (the campaign's parallel
	// mode runs whole kernels, not processes, in parallel).
	injector Injector

	// patterns caches compiled patterns by the MAC tag of their source
	// bytes. A tag is only used as a key after the contents were verified
	// against it, so equal tags imply equal (already-authenticated)
	// sources; pattern.Parse then runs once per distinct pattern. The
	// cache is shared by every process of the kernel and is read-mostly,
	// hence the sync.Map.
	patterns sync.Map // mac.Tag -> *pattern.Pattern

	// progTags caches checkpoint program tags by executable identity
	// (installed executables are immutable; see ckpt.go).
	progTags sync.Map // *binfmt.File -> mac.Tag

	// shared is the fleet-wide verification cache (CacheShared): one
	// immutable entry per verified {program tag, site}, adopted by every
	// process running that binary. Entries are verified before being
	// published and never mutated afterwards, so concurrent adopters
	// only ever read them; LoadOrStore keeps exactly one per key.
	shared sync.Map // sharedKey -> *sharedEntry

	// batchN is the group-commit burst size for control-flow state
	// updates; values below 2 keep the classic write-per-call checker.
	batchN int

	// pagedBudget is the resident-page budget for the demand-paged mmap
	// arena; 0 disables paged mode entirely (mmap stays the historical
	// brk-bump allocator and every access takes the flat fast path).
	pagedBudget int
}

// CacheMode selects how verification results are cached across traps.
type CacheMode int

const (
	// CacheOff re-verifies every trap (the paper's baseline).
	CacheOff CacheMode = iota
	// CachePerProcess keys verified sites per process.
	CachePerProcess
	// CacheShared keys verified sites kernel-wide by program tag, so
	// every process of one binary shares a single verification.
	CacheShared
)

// Option configures a Kernel.
type Option func(*Kernel)

// WithMode sets the enforcement mode.
func WithMode(m Mode) Option { return func(k *Kernel) { k.Mode = m } }

// WithPersonality sets the OS personality.
func WithPersonality(p Personality) Option { return func(k *Kernel) { k.Personality = p } }

// WithCosts overrides the cycle model.
func WithCosts(c CostModel) Option { return func(k *Kernel) { k.Costs = c } }

// WithRequireAuthenticated enables full-system enforcement: only
// installer-transformed binaries may make system calls.
func WithRequireAuthenticated() Option {
	return func(k *Kernel) { k.RequireAuthenticated = true }
}

// WithNormalizePaths enables the §5.4 symlink-race defense on
// policy-constrained path arguments.
func WithNormalizePaths() Option {
	return func(k *Kernel) { k.NormalizePaths = true }
}

// WithVerifyCache enables the site-keyed verification cache in its
// fleet-shared form (CacheShared). For a single process this behaves
// exactly like the per-process cache; across processes of one binary it
// shares the verified entries.
func WithVerifyCache() Option {
	return func(k *Kernel) { k.Cache = CacheShared }
}

// WithCacheMode selects the verification-cache mode explicitly.
func WithCacheMode(m CacheMode) Option {
	return func(k *Kernel) { k.Cache = m }
}

// WithBatchVerify enables group-committed control-flow verification:
// state updates from up to n consecutive authenticated calls are queued
// and flushed with one batched CMAC pass. n below 2 keeps the classic
// write-per-call memory checker.
func WithBatchVerify(n int) Option {
	return func(k *Kernel) { k.batchN = n }
}

// WithEnforcement sets the default violation response for spawned
// processes (overridable per process via Process.Enforcement).
func WithEnforcement(e Enforcement) Option {
	return func(k *Kernel) { k.enforcement = e }
}

// WithAuditCapacity sizes the violation ring (default
// DefaultAuditCapacity).
func WithAuditCapacity(n int) Option {
	return func(k *Kernel) { k.Audit.SetCapacity(n) }
}

// WithInjector installs a fault injector on the verification path.
func WithInjector(i Injector) Option {
	return func(k *Kernel) { k.injector = i }
}

// WithNetwork attaches a loopback network, switching the socket system
// call family from validate-and-succeed stubs to real semantics: data
// movement, bounded buffers, and blocking integrated with the
// scheduler gate. Kernels sharing one Network share its port namespace.
func WithNetwork(n *anet.Network) Option {
	return func(k *Kernel) { k.Net = n }
}

// WithPagedMemory enables the demand-paged mmap arena with a resident
// budget of n pages (minimum 4): mmap/munmap/mprotect manage page-table
// mappings, accesses beyond the budget evict through the clock policy to
// a VFS-backed swap device, and — on kernels holding a MAC key — every
// evicted page is sealed with a per-page CMAC plus generation counter so
// bit flips and stale-page replay are detected at fault-in.
func WithPagedMemory(n int) Option {
	if n < minPageBudget {
		n = minPageBudget
	}
	return func(k *Kernel) { k.pagedBudget = n }
}

// New creates a kernel. The key is the MAC key shared with the trusted
// installer; it may be nil when the kernel never enforces.
func New(fs *vfs.FS, key []byte, opts ...Option) (*Kernel, error) {
	k := &Kernel{
		FS:          fs,
		Mode:        Enforce,
		Personality: Linux,
		Costs:       DefaultCosts,
		nextPID:     1,
		procs:       make(map[int]*Process),
	}
	if key != nil {
		mk, err := mac.New(key)
		if err != nil {
			return nil, fmt.Errorf("kernel: %w", err)
		}
		k.key = mk
	}
	for _, o := range opts {
		o(k)
	}
	if k.Mode == Enforce && k.key == nil {
		return nil, errors.New("kernel: enforcement requires a MAC key")
	}
	return k, nil
}

// fdKind distinguishes file descriptor flavours.
type fdKind int

const (
	fdFile fdKind = iota + 1
	fdConsole
	fdPipeR
	fdPipeW
	fdSocket
)

type fdEntry struct {
	kind   fdKind
	node   *vfs.Node
	path   string
	offset uint32
	pipe   *pipeBuf
	sock   *socket
}

type pipeBuf struct {
	data   []byte
	closed bool
}

type socket struct {
	domain, typ, proto uint32
	// sent captures payloads when no network is attached (legacy stub
	// behaviour); with a network, bytes move through conn instead.
	sent  [][]byte
	bound bool
	port  uint16
	lis   *anet.Listener
	conn  *anet.Conn
	// nonblock is the O_NONBLOCK status flag (fcntl F_SETFL): blocking
	// entry points get a nil gate, so would-park operations fail with
	// EAGAIN instead.
	nonblock bool
}

// Process is one running program.
type Process struct {
	PID      int
	Name     string
	CPU      *vm.CPU
	Mem      *vm.Memory
	Exited   bool
	Code     uint32
	Killed   bool
	KilledBy KillReason

	// Enforcement selects this process's violation response; it is
	// initialized from the kernel default at Spawn and may be changed
	// between runs (per-process graded enforcement).
	Enforcement Enforcement

	// DeniedCount and AuditedCount tally violations that did not kill
	// the process (Deny and Audit modes).
	DeniedCount  uint64
	AuditedCount uint64

	kern *Kernel
	file *binfmt.File

	fds   []*fdEntry
	cwd   string
	brk   uint32
	umask uint32

	authenticated bool
	counter       uint64            // memory-checker nonce
	fdTracker     *captrack.Tracker // §5.3 capability set, nil unless installed

	// pager services page faults on the demand-paged mmap arena; nil
	// unless the kernel runs WithPagedMemory (see paging.go).
	pager *pager

	// gate is the scheduler's run-slot semaphore; blocking socket calls
	// release it while parked (see internal/net). Nil outside gated
	// fleets: socket calls then fail with EAGAIN instead of blocking.
	gate anet.Gate

	// Console I/O.
	Stdin    []byte
	stdinPos int
	Stdout   []byte

	// Statistics.
	SyscallCount    uint64
	VerifyCount     uint64
	VerifyAESBlocks uint64

	// Verification-cache statistics (all zero unless the kernel runs
	// with a verify cache). The fields are atomics bracketed by the
	// cacheSeq seqlock so a monitor goroutine sampling a running fleet
	// gets consistent snapshots — read them through CacheStats(), never
	// field by field.
	cacheSeq    atomic.Uint64 // odd while an update is in flight
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	cacheInvals atomic.Uint64
	cacheShares atomic.Uint64

	// Tracing (Permissive mode training runs).
	Trace   []TraceEntry
	DoTrace bool

	sigHandlers map[uint32]uint32

	// vcache is the first-level, site-keyed verification cache (nil
	// until first fill): per-process generation snapshots over shared
	// (or privately filled) verified entries.
	vcache map[uint32]*procEntry

	// commit is the control-flow group-commit queue (WithBatchVerify).
	commit cfCommit

	// Reusable trap-handler scratch. The verification path is the
	// hottest kernel code; all of its per-call slices live here so a
	// steady-state verify performs no heap allocation (guarded by
	// TestVerifyAllocs / BenchmarkVerifyAllocs).
	scratchArgs  []policy.EncodedArg
	scratchStr   []pendingString
	scratchPat   []pendingPattern
	scratchSpans []genSpan
	scratchPats  []sitePattern
	scratchPred  []uint32
	scratchEnc   []byte
	scratchEntry verifyEntry

	// Group-commit flush scratch (see flushCF).
	scratchBatch []byte
	scratchMsgs  [][]byte
	scratchTags  []mac.Tag
}

// CacheStats is a consistent snapshot of one process's (or, summed, one
// kernel's) verification-cache counters. Hits are first-level hits,
// Misses full AES verifications, Invalidations stale first-level entries
// (a MAC-checked span's store generation moved), and Shares adoptions of
// an already-verified entry by byte compare — from the fleet-shared
// cache or from the process's own invalidated entry whose bytes proved
// unchanged.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Shares        uint64
}

// CacheStats returns a torn-read-free snapshot of the process's cache
// counters. Safe to call from a monitor goroutine while the process
// runs: the seqlock retries until a quiescent read.
func (p *Process) CacheStats() CacheStats {
	for {
		s1 := p.cacheSeq.Load()
		if s1&1 != 0 {
			continue
		}
		st := CacheStats{
			Hits:          p.cacheHits.Load(),
			Misses:        p.cacheMisses.Load(),
			Invalidations: p.cacheInvals.Load(),
			Shares:        p.cacheShares.Load(),
		}
		if p.cacheSeq.Load() == s1 {
			return st
		}
	}
}

// bumpCache applies one logical cache event (possibly touching several
// counters) inside a single seqlock window.
func (p *Process) bumpCache(hits, misses, invals, shares uint64) {
	p.cacheSeq.Add(1)
	if hits != 0 {
		p.cacheHits.Add(hits)
	}
	if misses != 0 {
		p.cacheMisses.Add(misses)
	}
	if invals != 0 {
		p.cacheInvals.Add(invals)
	}
	if shares != 0 {
		p.cacheShares.Add(shares)
	}
	p.cacheSeq.Add(1)
}

// setCacheStats overwrites the counters wholesale (checkpoint restore).
func (p *Process) setCacheStats(st CacheStats) {
	p.cacheSeq.Add(1)
	p.cacheHits.Store(st.Hits)
	p.cacheMisses.Store(st.Misses)
	p.cacheInvals.Store(st.Invalidations)
	p.cacheShares.Store(st.Shares)
	p.cacheSeq.Add(1)
}

// CacheStats sums the cache counters of every process the kernel has
// spawned — the fleet-wide view of the shared cache's effectiveness.
func (k *Kernel) CacheStats() CacheStats {
	k.mu.Lock()
	procs := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		procs = append(procs, p)
	}
	k.mu.Unlock()
	var sum CacheStats
	for _, p := range procs {
		st := p.CacheStats()
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Invalidations += st.Invalidations
		sum.Shares += st.Shares
	}
	return sum
}

// arg returns system call argument i from its register (R1..R5).
func (p *Process) arg(i int) uint32 { return p.CPU.Regs[isa.R1+isa.Reg(i)] }

// pendingString is one MAC-checked buffer awaiting verification.
type pendingString struct {
	contents []byte
	tag      mac.Tag
}

// pendingPattern is one pattern-constrained argument awaiting compilation.
type pendingPattern struct {
	argIndex int
	tag      mac.Tag // content MAC of the pattern source (compile-cache key)
	source   []byte  // pattern AS contents (NUL-terminated)
}

// genSpan records the store-generation of one MAC-checked byte range.
type genSpan struct {
	addr uint32
	n    uint32
	gen  uint64
}

// sitePattern is a compiled pattern bound to its argument index.
type sitePattern struct {
	argIndex int
	pat      *pattern.Pattern
}

// verifyEntry caches the outcome of the AES-heavy verification steps for
// one call site. A later trap at the site may skip the call MAC and
// string MAC computations iff
//
//   - the auth record address and bytes are unchanged,
//   - the store-generation of every MAC-checked buffer is unchanged
//     (no application store could have touched it), and
//   - the canonical call encoding rebuilt from the *current* registers
//     and AS headers equals the verified one.
//
// The entry also carries the derived artifacts (decoded record,
// predecessor IDs, compiled patterns) so a hit re-parses nothing.
type verifyEntry struct {
	recAddr  uint32
	recBytes []byte
	encBytes []byte
	rec      policy.AuthRecord
	spans    []genSpan
	predIDs  []uint32
	pats     []sitePattern
}

// sharedKey identifies one call site of one installed binary in the
// fleet-shared cache.
type sharedKey struct {
	prog mac.Tag
	site uint32
}

// regCheck pins one trap register to its verified value: argument
// register rc.idx must hold rc.val for a cached verification to cover
// the current trap (numeric constrained args and the view addresses of
// string args; R6 and the call number are checked separately).
type regCheck struct {
	idx int
	val uint32
}

// sharedEntry is one fleet-shared verified site. It is immutable after
// construction; all per-process state (the generation snapshots) lives
// in procEntry. A trap is covered by the entry iff
//
//   - the call number and auth-record address match,
//   - every constrained argument register holds its verified value, and
//   - the bytes of every MAC-checked span — the auth record itself, the
//     {len, MAC} headers, the string/pattern/pred-set contents — are
//     unchanged, proven either by store-generation counters (first-level
//     hit) or by comparing against the verified copies (adoption).
type sharedEntry struct {
	num       uint16
	recAddr   uint32
	regChecks []regCheck
	spans     []genSpan // gen fields unused; addr/n only
	spanBytes [][]byte  // verified contents of each span, copied
	rec       policy.AuthRecord
	predIDs   []uint32
	pats      []sitePattern
	// chain is the precomputed CMAC prefix of the site's canonical call
	// encoding, hoisted out of the verify path: a re-verification of
	// this site pays only the encoding's final block when the prefix
	// still matches.
	chain *mac.ChainState
}

// procEntry is a process's first-level handle on a verified entry: the
// store-generation snapshot of every span as this process last proved
// (or adopted) it.
type procEntry struct {
	se   *sharedEntry
	gens []uint64 // parallel to se.spans
}

// cfCommit is the control-flow group-commit queue of one process. While
// valid, the kernel mirrors the application's policy state: flushedBytes
// are the {lastBlock, MAC} words the kernel last materialized at lbPtr,
// baseCtr the counter sealed into that MAC, tail the block ID of the
// newest (possibly unflushed) committed call, and pending the state
// transitions not yet written back. watchGen is the VM write-watch
// counter over the state words when the mirror was last synchronized; an
// application store into them fires the watch and invalidates the
// mirror, routing the next call through the classic checker against the
// untouched evidence.
type cfCommit struct {
	valid        bool
	lbPtr        uint32
	tail         uint32
	baseCtr      uint64
	flushedBytes [policy.PolicyStateSize]byte
	watchGen     uint64
	pending      []policy.StateUpdate
}

// Spawn loads an executable into a new process. It is safe to call
// concurrently (the SMP scheduler and the supervisor both spawn while
// sibling processes run).
func (k *Kernel) Spawn(f *binfmt.File, name string) (*Process, error) {
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	k.mu.Unlock()
	p := &Process{
		PID:         pid,
		Name:        name,
		kern:        k,
		cwd:         "/",
		umask:       0o22,
		sigHandlers: make(map[uint32]uint32),
		Enforcement: k.enforcement,
	}
	if err := p.loadImage(f); err != nil {
		return nil, err
	}
	// Standard descriptors.
	p.fds = make([]*fdEntry, 3, 16)
	p.fds[0] = &fdEntry{kind: fdConsole}
	p.fds[1] = &fdEntry{kind: fdConsole}
	p.fds[2] = &fdEntry{kind: fdConsole}
	k.mu.Lock()
	k.procs[p.PID] = p
	k.mu.Unlock()
	return p, nil
}

// loadImage (re)initializes the process address space from a binary.
func (p *Process) loadImage(f *binfmt.File) error {
	base, img, err := f.Image()
	if err != nil {
		return fmt.Errorf("kernel: load %s: %w", p.Name, err)
	}
	mem := vm.NewMemory(binfmt.TextBase, DefaultMemSize)
	if err := mem.KernelWrite(base, img); err != nil {
		return fmt.Errorf("kernel: load %s: %w", p.Name, err)
	}
	var end uint32 = binfmt.TextBase
	for _, s := range f.Sections {
		if s.Size == 0 {
			continue
		}
		mem.Map(vm.Segment{Name: s.Name, Start: s.Addr, End: s.End(), Perms: s.Flags})
		if s.End() > end {
			end = s.End()
		}
	}
	// Heap begins after the image; brk grows it.
	heapStart := (end + 0xfff) &^ 0xfff
	p.brk = heapStart
	mem.Map(vm.Segment{Name: "heap", Start: heapStart, End: heapStart, Perms: vm.PermRead | vm.PermWrite})
	// Stack at the top, executable (2005-era semantics; see internal/vm).
	top := mem.Limit()
	mem.Map(vm.Segment{
		Name: "stack", Start: top - DefaultStackSize, End: top,
		Perms: vm.PermRead | vm.PermWrite | vm.PermExec,
	})
	// Paged mode: the mmap arena sits just below the stack; sysBrk caps
	// the heap at its base.
	p.pager = nil
	if p.kern.pagedBudget > 0 {
		p.installPaging(mem, top-DefaultStackSize)
	}

	cpu := p.CPU
	if cpu == nil {
		cpu = vm.New(mem, &trapAdapter{p})
		cpu.PC = f.Entry
		cpu.Regs[isa.SP] = top
	} else {
		// execve: replace the image in place, keeping the cycle counter.
		cpu.Reset(mem, f.Entry, top)
	}
	text := f.Section(binfmt.SecText)
	if text != nil {
		cpu.PrimeICache(text.Addr, text.End())
	}

	p.CPU = cpu
	p.Mem = mem
	// A fault injector that also models torn kernel stores hooks the
	// write path of every address space it observes.
	if wf, ok := p.kern.injector.(vm.WriteFaulter); ok {
		mem.SetWriteFaulter(wf)
	}
	p.file = f
	p.authenticated = f.Authenticated
	p.counter = 0
	p.fdTracker = nil
	p.vcache = nil                                     // execve: cached sites refer to the old image
	p.commit = cfCommit{pending: p.commit.pending[:0]} // and so does the commit mirror
	if addr, ok := f.SymbolAddr("__asc_fdset"); ok && p.kern.key != nil {
		tr, err := captrack.Attach(p.kern.key, addr, captrack.DefaultCapacity)
		if err != nil {
			return fmt.Errorf("kernel: attach fd tracker: %w", err)
		}
		p.fdTracker = tr
	}
	return nil
}

// trapAdapter delivers VM traps to the kernel with the owning process.
type trapAdapter struct{ p *Process }

func (t *trapAdapter) Trap(c *vm.CPU, site uint32, authed bool) (uint32, bool, error) {
	return t.p.kern.trap(t.p, site, authed)
}

// Run executes the process until exit, kill, fault, or cycle budget
// exhaustion. Concurrent Run calls on one kernel are safe as long as
// each Process is driven by a single goroutine at a time; cross-process
// kernel state (the VFS, the audit ring, the pattern cache, PID
// allocation) is synchronized, and all per-call verification scratch is
// per-Process.
func (k *Kernel) Run(p *Process, maxCycles uint64) error {
	err := p.CPU.Run(maxCycles)
	if err != nil {
		// A kill decided on the page-fault path unwinds the faulting
		// instruction as a VM error; the process state already says
		// everything (Killed, KilledBy), so it is not a Run failure —
		// same contract as a kill decided inside a trap.
		if p.Killed {
			return nil
		}
		return err
	}
	return nil
}

// kill terminates the process and records the audit entry.
func (k *Kernel) kill(p *Process, num uint16, site uint32, reason KillReason) {
	p.Killed = true
	p.KilledBy = reason
	p.Exited = true
	p.Code = 0xff
	k.record(p, num, site, reason, ActionKill)
}

// record appends a structured violation to the bounded audit ring.
func (k *Kernel) record(p *Process, num uint16, site uint32, reason KillReason, act Action) {
	k.Audit.Append(Violation{
		PID: p.PID, Program: p.Name, Num: num, Name: sys.Name(num), Site: site,
		Reason: reason, Action: act,
	})
}

// violate applies the process's enforcement mode to a verification
// failure. handled=true means the trap is finished (the returned value
// and halt flag go back to the CPU); handled=false means audit-only:
// the caller proceeds to execute the call.
func (k *Kernel) violate(p *Process, num uint16, site uint32, reason KillReason) (ret uint32, halt, handled bool) {
	switch p.Enforcement {
	case EnforceDeny:
		p.DeniedCount++
		k.record(p, num, site, reason, ActionDeny)
		return errno(sys.EPERM), false, true
	case EnforceAudit:
		p.AuditedCount++
		k.record(p, num, site, reason, ActionAudit)
		return 0, false, false
	default:
		k.kill(p, num, site, reason)
		return 0, true, true
	}
}

// resyncCF re-establishes the memory checker's invariant after a
// non-fatal (Deny/Audit) violation of an authenticated call. Verification
// aborted somewhere in the three-step check, so the control-flow state in
// application memory may no longer match the in-kernel counter, and the
// chain no longer records the denied site's block. Advancing
// {lastBlock, lbMAC, counter} to the record's block keeps exactly one
// violation per bad call; without it the first denial would cascade into
// a predecessor violation at every later site. This is a deliberate
// availability/strictness trade: Deny and Audit accept the record's
// unverified BlockID into the chain (the call itself was still refused
// or flagged), where Kill mode never reaches this point.
func (k *Kernel) resyncCF(p *Process) {
	// The resync writes the state words directly: the group-commit
	// mirror no longer describes them, and the queued updates belong to
	// the pre-violation chain. Drop both; the next call re-arms.
	p.commit.valid = false
	p.commit.pending = p.commit.pending[:0]
	recAddr := p.CPU.Regs[isa.R6]
	recBytes, err := p.Mem.KernelRead(recAddr, policy.AuthRecordSize)
	if err != nil {
		return
	}
	rec, err := policy.DecodeAuthRecord(recBytes)
	if err != nil || !rec.Desc.ControlFlow() {
		return
	}
	next := p.counter + 1
	newMAC, blocks := policy.StateMAC(k.key, rec.BlockID, next)
	k.chargeAES(p, blocks)
	if err := p.Mem.KernelStore32(rec.LbPtr, rec.BlockID); err != nil {
		return
	}
	if err := p.Mem.KernelWrite(rec.LbPtr+4, newMAC[:]); err != nil {
		return
	}
	p.counter = next
}

// trap is the software trap handler.
func (k *Kernel) trap(p *Process, site uint32, authed bool) (uint32, bool, error) {
	p.CPU.Cycles += k.Costs.Trap
	p.SyscallCount++
	num := uint16(p.CPU.Regs[isa.R0])
	// One signature lookup per trap, shared by the verification path
	// (path normalization) and the capability-set maintenance.
	sig, sigOK := sys.Lookup(num)

	if k.Mode == Enforce && (p.authenticated || k.RequireAuthenticated) {
		if !authed || !p.authenticated {
			if ret, halt, handled := k.violate(p, num, site, KillUnauthenticated); handled {
				return ret, halt, nil
			}
		} else if reason, ok := k.verify(p, num, site, sig, sigOK); !ok {
			ret, halt, handled := k.violate(p, num, site, reason)
			if !halt {
				// Deny or Audit: the process lives on — restore the
				// monitor's control-flow invariant so only this call is
				// flagged (see resyncCF).
				k.resyncCF(p)
			}
			if handled {
				return ret, halt, nil
			}
		}
	} else if k.MonitorOverhead != nil {
		extra, allow := k.MonitorOverhead(p, num, site)
		p.CPU.Cycles += extra
		if !allow {
			k.kill(p, num, site, "blocked by external monitor policy")
			return 0, true, nil
		}
	}

	var args [sys.MaxArgs]uint32
	for i := 0; i < sys.MaxArgs; i++ {
		args[i] = p.arg(i)
	}
	ret, exit := k.dispatch(p, num, site, args)
	if !exit && p.fdTracker != nil && k.Mode == Enforce && p.authenticated {
		if err := k.updateFDSet(p, num, sig, sigOK, args, ret); err != nil {
			k.kill(p, num, site, KillBadState)
			return 0, true, nil
		}
	}
	if p.DoTrace && !exit {
		p.Trace = append(p.Trace, TraceEntry{Num: num, Site: site, Args: args, Ret: ret})
	}
	if p.DoTrace && exit {
		p.Trace = append(p.Trace, TraceEntry{Num: num, Site: site, Args: args})
	}
	return ret, exit, nil
}

// sumCycles charges the cycle cost of aes block operations.
func (k *Kernel) chargeAES(p *Process, blocks int) {
	p.CPU.Cycles += uint64(blocks) * k.Costs.PerAESBlock
	p.VerifyAESBlocks += uint64(blocks)
}

// readASView reads the {length, MAC} header of an authenticated string
// whose bytes pointer is addr, without touching the contents.
func (k *Kernel) readASView(p *Process, addr uint32) (policy.ASView, bool) {
	if addr < policy.ASHeaderSize {
		return policy.ASView{}, false
	}
	length, err := p.Mem.KernelLoad32(addr - 20)
	if err != nil || length > policy.MaxASLen {
		return policy.ASView{}, false
	}
	tagBytes, err := p.Mem.KernelRead(addr-16, mac.Size)
	if err != nil {
		return policy.ASView{}, false
	}
	var tag mac.Tag
	copy(tag[:], tagBytes)
	return policy.ASView{Addr: addr, Len: length, MAC: tag}, true
}

// readAS reads an authenticated-string view {addr,len,mac} whose bytes
// pointer is addr. Returns the view and the string bytes.
func (k *Kernel) readAS(p *Process, addr uint32) (policy.ASView, []byte, bool) {
	view, ok := k.readASView(p, addr)
	if !ok {
		return policy.ASView{}, nil, false
	}
	contents, err := p.Mem.KernelRead(addr, view.Len)
	if err != nil {
		return policy.ASView{}, nil, false
	}
	return view, contents, true
}

// asSpan is the byte range an authenticated string occupies in memory:
// the {length, MAC} header plus the contents.
func asSpan(view policy.ASView) genSpan {
	return genSpan{addr: view.Addr - policy.ASHeaderSize, n: policy.ASHeaderSize + view.Len}
}

// verify implements the three-step check of Section 3.4, with an optional
// site-keyed cache in front of the AES-heavy Steps 1 and 2.
func (k *Kernel) verify(p *Process, num uint16, site uint32, sig sys.Sig, sigOK bool) (KillReason, bool) {
	p.VerifyCount++

	// The auth record address arrives in R6.
	recAddr := p.CPU.Regs[isa.R6]

	// Fault-injection hook: a campaign may perturb the platform here,
	// before this trap's verification reads any state.
	if k.injector != nil {
		k.injector.BeforeVerify(p, num, site, recAddr)
	}

	if k.Cache != CacheOff {
		if pe := p.vcache[site]; pe != nil {
			if k.l1Hit(p, pe, num, recAddr) {
				p.bumpCache(1, 0, 0, 0)
				p.CPU.Cycles += k.Costs.CacheHit
				se := pe.se
				return k.verifyDynamic(p, num, &se.rec, se.predIDs, se.pats, sig, sigOK)
			}
			// A MAC-checked span's generation moved (or a register
			// diverged): the first-level entry is stale. Try to re-adopt
			// by byte compare before falling back to full AES
			// verification — a benign store elsewhere in a covering
			// segment leaves the verified bytes intact.
			delete(p.vcache, site)
			if npe := k.adopt(p, pe.se, num, recAddr); npe != nil {
				p.bumpCache(0, 0, 1, 1)
				p.CPU.Cycles += k.Costs.CacheAdopt
				p.vcache[site] = npe
				se := npe.se
				return k.verifyDynamic(p, num, &se.rec, se.predIDs, se.pats, sig, sigOK)
			}
			p.bumpCache(0, 1, 1, 0)
		} else {
			// No first-level entry. In shared mode a sibling process may
			// already have verified this site: adopt its entry without
			// any AES work if the local bytes match the verified copies.
			if k.Cache == CacheShared {
				if se := k.sharedLookup(p, site); se != nil {
					if npe := k.adopt(p, se, num, recAddr); npe != nil {
						p.bumpCache(0, 0, 0, 1)
						p.CPU.Cycles += k.Costs.CacheAdopt
						if p.vcache == nil {
							p.vcache = make(map[uint32]*procEntry)
						}
						p.vcache[site] = npe
						return k.verifyDynamic(p, num, &se.rec, se.predIDs, se.pats, sig, sigOK)
					}
				}
			}
			p.bumpCache(0, 1, 0, 0)
		}
	}
	e, se, reason, ok := k.verifyMACs(p, num, site, recAddr, k.Cache != CacheOff)
	if !ok {
		return reason, false
	}
	if se != nil {
		if k.Cache == CacheShared {
			se = k.sharedPublish(p, site, se)
		}
		if npe := k.snapshotGens(p, se); npe != nil {
			if p.vcache == nil {
				p.vcache = make(map[uint32]*procEntry)
			}
			p.vcache[site] = npe
		}
		return k.verifyDynamic(p, num, &se.rec, se.predIDs, se.pats, sig, sigOK)
	}
	return k.verifyDynamic(p, num, &e.rec, e.predIDs, e.pats, sig, sigOK)
}

// sharedLookup returns the fleet-shared entry for this process's binary
// at the given site, if a sibling has published one.
func (k *Kernel) sharedLookup(p *Process, site uint32) *sharedEntry {
	tag, err := k.progTag(p.file)
	if err != nil {
		return nil
	}
	if v, ok := k.shared.Load(sharedKey{prog: tag, site: site}); ok {
		return v.(*sharedEntry)
	}
	return nil
}

// sharedPublish installs a freshly verified entry in the fleet cache.
// If a sibling published the same site concurrently, both entries
// describe the same verified bytes; the first one in wins and is used
// from then on by everyone.
func (k *Kernel) sharedPublish(p *Process, site uint32, se *sharedEntry) *sharedEntry {
	tag, err := k.progTag(p.file)
	if err != nil {
		return se
	}
	got, _ := k.shared.LoadOrStore(sharedKey{prog: tag, site: site}, se)
	return got.(*sharedEntry)
}

// l1Hit decides whether a first-level cache entry still covers the
// current trap. It is AES-free and read-free: the call number, the auth
// record address, and every constrained argument register must match the
// verified snapshot, and the store generation of every MAC-checked span
// must equal the value recorded when this process last proved the bytes.
func (k *Kernel) l1Hit(p *Process, pe *procEntry, num uint16, recAddr uint32) bool {
	se := pe.se
	if num != se.num || recAddr != se.recAddr {
		return false
	}
	for _, rc := range se.regChecks {
		if p.arg(rc.idx) != rc.val {
			return false
		}
	}
	for i := range se.spans {
		g, ok := p.Mem.SpanGeneration(se.spans[i].addr, se.spans[i].n)
		if !ok || g != pe.gens[i] {
			return false
		}
	}
	return true
}

// adopt validates a verified entry against this process's live state by
// byte compare — no AES — and returns a first-level handle on success.
// Sound because the MAC checks are pure functions of the compared bytes:
// if the record, headers, and contents equal the fleet-verified copies,
// re-running Steps 1 and 2 would reproduce the recorded success.
func (k *Kernel) adopt(p *Process, se *sharedEntry, num uint16, recAddr uint32) *procEntry {
	if num != se.num || recAddr != se.recAddr {
		return nil
	}
	for _, rc := range se.regChecks {
		if p.arg(rc.idx) != rc.val {
			return nil
		}
	}
	gens := make([]uint64, len(se.spans))
	for i := range se.spans {
		g, ok := p.Mem.SpanGeneration(se.spans[i].addr, se.spans[i].n)
		if !ok {
			return nil
		}
		b, err := p.Mem.KernelRead(se.spans[i].addr, se.spans[i].n)
		if err != nil || !bytes.Equal(b, se.spanBytes[i]) {
			return nil
		}
		gens[i] = g
	}
	return &procEntry{se: se, gens: gens}
}

// snapshotGens builds the first-level handle for a just-verified entry.
// It returns nil when a span's immutability is not provable (the span
// straddles segments), in which case the site stays uncached.
func (k *Kernel) snapshotGens(p *Process, se *sharedEntry) *procEntry {
	gens := make([]uint64, len(se.spans))
	for i := range se.spans {
		g, ok := p.Mem.SpanGeneration(se.spans[i].addr, se.spans[i].n)
		if !ok {
			return nil
		}
		gens[i] = g
	}
	return &procEntry{se: se, gens: gens}
}

// verifyMACs performs Steps 1 and 2: reconstruct the encoded call from the
// actual trap state, check the call MAC, and check the integrity of every
// authenticated string. When fill is set (and every checked buffer maps to
// a single segment) it additionally returns an immutable sharedEntry ready
// for the cache; otherwise the per-process scratch entry carries the
// decoded artifacts the dynamic steps need.
func (k *Kernel) verifyMACs(p *Process, num uint16, site, recAddr uint32, fill bool) (*verifyEntry, *sharedEntry, KillReason, bool) {
	p.CPU.Cycles += k.Costs.AuthFixed

	// The descriptor (the record's first word) determines whether a
	// pattern extension follows the fixed part.
	descWord, err := p.Mem.KernelLoad32(recAddr)
	if err != nil {
		return nil, nil, KillBadRecord, false
	}
	recSize := uint32(policy.AuthRecordSize + 4*policy.Descriptor(descWord).NumPatterns())
	recBytes, err := p.Mem.KernelRead(recAddr, recSize)
	if err != nil {
		return nil, nil, KillBadRecord, false
	}
	rec, err := policy.DecodeAuthRecord(recBytes)
	if err != nil {
		return nil, nil, KillBadRecord, false
	}

	// Reconstruct the encoded call from actual behaviour.
	enc := policy.CallEncoding{
		Num:     num,
		Site:    site,
		Desc:    rec.Desc,
		BlockID: rec.BlockID,
		LbPtr:   rec.LbPtr,
	}
	enc.Args = p.scratchArgs[:0]
	strChecks := p.scratchStr[:0]
	patChecks := p.scratchPat[:0]
	spans := p.scratchSpans[:0]
	patIdx := 0
	for i := 0; i < sys.MaxArgs; i++ {
		val := p.arg(i)
		switch {
		case rec.Desc.ArgConstrained(i) && rec.Desc.ArgString(i):
			view, contents, ok := k.readAS(p, val)
			if !ok {
				return nil, nil, KillBadString, false
			}
			enc.Args = append(enc.Args, policy.EncodedArg{
				Index: i, IsString: true, Value: view.Addr, Len: view.Len, MAC: view.MAC,
			})
			strChecks = append(strChecks, pendingString{contents, view.MAC})
			spans = append(spans, asSpan(view))
		case rec.Desc.ArgConstrained(i):
			enc.Args = append(enc.Args, policy.EncodedArg{Index: i, Value: val})
		case rec.Desc.ArgPattern(i):
			if patIdx >= len(rec.PatternPtrs) {
				return nil, nil, KillBadRecord, false
			}
			view, contents, ok := k.readAS(p, rec.PatternPtrs[patIdx])
			patIdx++
			if !ok {
				return nil, nil, KillBadString, false
			}
			enc.Args = append(enc.Args, policy.EncodedArg{
				Index: i, IsPattern: true, Value: view.Addr, Len: view.Len, MAC: view.MAC,
			})
			strChecks = append(strChecks, pendingString{contents, view.MAC})
			patChecks = append(patChecks, pendingPattern{argIndex: i, tag: view.MAC, source: contents})
			spans = append(spans, asSpan(view))
		}
	}
	var predView policy.ASView
	var predBytes []byte
	if rec.Desc.ControlFlow() {
		view, contents, ok := k.readAS(p, rec.PredSetPtr)
		if !ok {
			return nil, nil, KillBadRecord, false
		}
		predView, predBytes = view, contents
		enc.PredSet = &predView
		strChecks = append(strChecks, pendingString{contents, view.MAC})
		spans = append(spans, asSpan(view))
	}

	// Step 1: call MAC. A site that was verified before carries a
	// precomputed CMAC prefix over its canonical encoding; SumFrom
	// resumes from it when the live encoding still begins with the same
	// bytes and falls back to a full pass otherwise, so only the
	// encoding's final block(s) are recomputed — and charged — on a
	// re-verification.
	p.scratchEnc = enc.AppendBytes(p.scratchEnc[:0])
	var chain *mac.ChainState
	if fill && k.Cache == CacheShared {
		if se := k.sharedLookup(p, site); se != nil {
			chain = se.chain
		}
	}
	got, blocks := k.key.SumFrom(chain, p.scratchEnc)
	k.chargeAES(p, blocks)
	if !got.Equal(rec.CallMAC) {
		p.keepScratch(enc.Args, strChecks, patChecks, spans)
		return nil, nil, KillBadCallMAC, false
	}

	// Step 2: authenticated string contents.
	for _, sc := range strChecks {
		ok, blocks := k.key.Verify(sc.contents, sc.tag)
		k.chargeAES(p, blocks)
		if !ok {
			p.keepScratch(enc.Args, strChecks, patChecks, spans)
			return nil, nil, KillBadString, false
		}
	}

	// Compile the (now MAC-verified) pattern sources; compilation is
	// cached per distinct content tag, so pattern.Parse runs once per
	// distinct pattern across all processes of this kernel.
	pats := p.scratchPats[:0]
	for _, pc := range patChecks {
		pat, err := k.compilePattern(pc.tag, pc.source)
		if err != nil {
			p.keepScratch(enc.Args, strChecks, patChecks, spans)
			return nil, nil, KillBadRecord, false
		}
		pats = append(pats, sitePattern{argIndex: pc.argIndex, pat: pat})
	}

	// Decode the (MAC-verified) predecessor set.
	var predIDs []uint32
	if rec.Desc.ControlFlow() {
		ids, err := policy.AppendPredSet(p.scratchPred[:0], predBytes)
		p.scratchPred = ids
		if err != nil {
			p.keepScratch(enc.Args, strChecks, patChecks, spans)
			return nil, nil, KillBadPredecessor, false
		}
		predIDs = ids
	}

	var se *sharedEntry
	if fill {
		se = k.buildSharedEntry(p, num, recAddr, recBytes, rec, spans, predIDs, pats)
	}
	e := &p.scratchEntry
	*e = verifyEntry{rec: rec, predIDs: predIDs, pats: pats}
	p.keepScratch(enc.Args, strChecks, patChecks, spans)
	p.scratchPats = pats
	return e, se, "", true
}

// buildSharedEntry assembles the immutable cache entry for a site that
// just passed Steps 1 and 2, copying the auth record and every
// MAC-checked span out of process memory and precomputing the CMAC
// prefix of the canonical encoding. It returns nil when a span's
// immutability is not provable (the buffer straddles segments): such a
// site is not cacheable.
func (k *Kernel) buildSharedEntry(p *Process, num uint16, recAddr uint32, recBytes []byte, rec policy.AuthRecord, spans []genSpan, predIDs []uint32, pats []sitePattern) *sharedEntry {
	allSpans := make([]genSpan, 0, len(spans)+1)
	allSpans = append(allSpans, genSpan{addr: recAddr, n: uint32(len(recBytes))})
	allSpans = append(allSpans, spans...)
	spanBytes := make([][]byte, len(allSpans))
	for i := range allSpans {
		if _, ok := p.Mem.SpanGeneration(allSpans[i].addr, allSpans[i].n); !ok {
			return nil
		}
		b, err := p.Mem.KernelRead(allSpans[i].addr, allSpans[i].n)
		if err != nil {
			return nil
		}
		spanBytes[i] = append([]byte(nil), b...)
	}
	var regChecks []regCheck
	for i := 0; i < sys.MaxArgs; i++ {
		if rec.Desc.ArgConstrained(i) {
			regChecks = append(regChecks, regCheck{idx: i, val: p.arg(i)})
		}
	}
	// The prefix schedule reuses the AES work Step 1 just performed; it
	// is recorded, not recomputed, so no cycles are charged here.
	chain, _ := k.key.Precompute(p.scratchEnc)
	return &sharedEntry{
		num:       num,
		recAddr:   recAddr,
		regChecks: regChecks,
		spans:     allSpans,
		spanBytes: spanBytes,
		rec:       rec,
		predIDs:   append([]uint32(nil), predIDs...),
		pats:      append([]sitePattern(nil), pats...),
		chain:     chain,
	}
}

// keepScratch hands the (possibly grown) per-call slices back to the
// process so the next verification reuses their capacity.
func (p *Process) keepScratch(args []policy.EncodedArg, str []pendingString, pat []pendingPattern, spans []genSpan) {
	p.scratchArgs = args[:0]
	p.scratchStr = str[:0]
	p.scratchPat = pat[:0]
	p.scratchSpans = spans[:0]
}

// compilePattern returns the compiled pattern for MAC-verified source
// bytes, caching by content tag. Concurrent first compilations of the
// same pattern may race benignly; both produce identical *Pattern values
// and LoadOrStore keeps exactly one.
func (k *Kernel) compilePattern(tag mac.Tag, source []byte) (*pattern.Pattern, error) {
	if pat, ok := k.patterns.Load(tag); ok {
		return pat.(*pattern.Pattern), nil
	}
	src := strings.TrimRight(string(source), "\x00")
	pat, err := pattern.Parse(src)
	if err != nil {
		return nil, err
	}
	got, _ := k.patterns.LoadOrStore(tag, pat)
	return got.(*pattern.Pattern), nil
}

// verifyDynamic performs the per-call checks that are never cached: path
// normalization, pattern matching of the live arguments, capability
// membership, and the control-flow policy via the online memory checker.
func (k *Kernel) verifyDynamic(p *Process, num uint16, rec *policy.AuthRecord, predIDs []uint32, pats []sitePattern, sig sys.Sig, sigOK bool) (KillReason, bool) {
	// Step 2a (§5.4 extension): policy-constrained path arguments must
	// normalize to themselves — a symlink planted at the approved name
	// redirects the resolution and is rejected.
	if k.NormalizePaths && sigOK {
		for i := 0; i < sig.NArgs(); i++ {
			if !rec.Desc.ArgString(i) || sig.Args[i] != sys.ArgPath {
				continue
			}
			raw, err := p.Mem.CString(p.arg(i), 4096)
			if err != nil {
				return KillBadString, false
			}
			want := p.resolvePath(raw)
			got, err := k.FS.Normalize(want)
			if err != nil {
				continue // target does not exist yet (e.g. O_CREAT): nothing to race
			}
			p.CPU.Cycles += uint64(len(want)) * 2 // modeled path-walk cost
			if got != want {
				return KillSymlinkRace, false
			}
		}
	}

	// Step 2b (§5.1 extension): pattern-constrained arguments. The
	// pattern source is MAC-verified (or cache-proven unchanged); match
	// the actual argument against it. (Without application-supplied
	// hints the kernel pays for the full match; see internal/pattern for
	// the hint protocol.)
	for _, sp := range pats {
		arg, err := p.Mem.CString(p.arg(sp.argIndex), 4096)
		if err != nil {
			return KillBadPattern, false
		}
		p.CPU.Cycles += uint64(len(arg)+len(sp.pat.String())) * 3
		if _, err := sp.pat.Match(arg); err != nil {
			return KillBadPattern, false
		}
	}

	// Step 2c (§5.3 extension): tracked descriptor capabilities. The
	// argument must be a member of the MAC-protected live-descriptor set.
	for i := 0; i < sys.MaxArgs; i++ {
		if !rec.Desc.ArgFD(i) {
			continue
		}
		if p.fdTracker == nil {
			return KillBadCapability, false
		}
		before := p.fdTracker.AESBlocks
		err := p.fdTracker.Check(p.Mem, p.arg(i))
		k.chargeAES(p, p.fdTracker.AESBlocks-before)
		switch {
		case err == nil:
		case errors.Is(err, captrack.ErrNotTracked):
			return KillBadCapability, false
		default:
			return KillBadState, false
		}
	}

	// Step 3: control flow policy via the online memory checker. Never
	// cached: the state MAC is bound to the in-kernel counter nonce and
	// must be checked and advanced on every call. Under group commit
	// (WithBatchVerify) the per-call AES pass is replaced by an in-kernel
	// mirror check, with the MAC writeback amortized over a batch.
	if rec.Desc.ControlFlow() {
		if k.batchN > 1 {
			return k.checkCFBatched(p, num, rec, predIDs)
		}
		return k.checkCFClassic(p, rec, predIDs)
	}
	return "", true
}

// checkCFClassic is the write-per-call control-flow check of §5.2: read
// the state words, verify the state MAC against the in-kernel counter,
// check the predecessor set, then write the advanced state back.
func (k *Kernel) checkCFClassic(p *Process, rec *policy.AuthRecord, predIDs []uint32) (KillReason, bool) {
	lastBlock, err := p.Mem.KernelLoad32(rec.LbPtr)
	if err != nil {
		return KillBadState, false
	}
	lbMACBytes, err := p.Mem.KernelRead(rec.LbPtr+4, mac.Size)
	if err != nil {
		return KillBadState, false
	}
	var lbMAC mac.Tag
	copy(lbMAC[:], lbMACBytes)
	want, blocks := policy.StateMAC(k.key, lastBlock, p.counter)
	k.chargeAES(p, blocks)
	if !want.Equal(lbMAC) {
		return KillBadState, false
	}
	if !policy.PredSetContains(predIDs, lastBlock) {
		return KillBadPredecessor, false
	}
	// Update: counter++, lastBlock = blockID, new state MAC. The MAC
	// written to application memory is always the intended
	// single-increment one; the injector's NonceUpdate hook may
	// desynchronize the in-kernel counter (dropped or duplicated
	// update), which the next control-flow check then detects.
	next := p.counter + 1
	newMAC, blocks := policy.StateMAC(k.key, rec.BlockID, next)
	k.chargeAES(p, blocks)
	if err := p.Mem.KernelStore32(rec.LbPtr, rec.BlockID); err != nil {
		return KillBadState, false
	}
	if err := p.Mem.KernelWrite(rec.LbPtr+4, newMAC[:]); err != nil {
		return KillBadState, false
	}
	if k.injector != nil {
		p.counter += uint64(k.injector.NonceUpdate(p))
	} else {
		p.counter = next
	}
	if k.batchN > 1 {
		k.armCommit(p, rec, next, newMAC)
	}
	return "", true
}

// armCommit (re)establishes the group-commit mirror after a successful
// classic check wrote the state words: the mirror records the intended
// bytes now in memory, the intended counter they seal, and the current
// write-watch generation over the state window. Subsequent calls at this
// state pointer can then take the AES-free fast path.
func (k *Kernel) armCommit(p *Process, rec *policy.AuthRecord, next uint64, newMAC mac.Tag) {
	c := &p.commit
	c.valid = true
	c.lbPtr = rec.LbPtr
	c.tail = rec.BlockID
	c.baseCtr = next
	binary.LittleEndian.PutUint32(c.flushedBytes[0:4], rec.BlockID)
	copy(c.flushedBytes[4:], newMAC[:])
	c.pending = c.pending[:0]
	c.watchGen = p.Mem.WatchRange(rec.LbPtr, rec.LbPtr+policy.PolicyStateSize)
}

// checkCFBatched is the group-commit control-flow check. While the
// in-kernel mirror can prove the application's state words are exactly
// the bytes the kernel last wrote (the write watch has not fired and the
// bytes compare equal) and the counter agrees with the queue, each call
// pays only the mirror compare and predecessor probe; the state-MAC
// writes queue up and flush as one batched CMAC pass every batchN calls
// (and always at exit, so memory is current when the process ends). Any
// disagreement falls back to the classic checker against whatever the
// memory actually holds — tampering evidence is never overwritten.
func (k *Kernel) checkCFBatched(p *Process, num uint16, rec *policy.AuthRecord, predIDs []uint32) (KillReason, bool) {
	c := &p.commit
	if c.valid && c.lbPtr != rec.LbPtr {
		// A program with more than one state window (not emitted by our
		// installer, but legal): synchronize the old window before the
		// classic check re-arms on the new one.
		k.drainCommit(p)
	}
	if c.valid && c.lbPtr == rec.LbPtr {
		live, err := p.Mem.KernelRead(c.lbPtr, policy.PolicyStateSize)
		tampered := err != nil ||
			p.Mem.WatchGeneration() != c.watchGen ||
			!bytes.Equal(live, c.flushedBytes[:])
		switch {
		case !tampered && p.counter == c.baseCtr+uint64(len(c.pending)):
			p.CPU.Cycles += k.Costs.CFCheck
			if !policy.PredSetContains(predIDs, c.tail) {
				return KillBadPredecessor, false
			}
			intended := c.baseCtr + uint64(len(c.pending)) + 1
			c.pending = append(c.pending, policy.StateUpdate{Block: rec.BlockID, Ctr: intended})
			c.tail = rec.BlockID
			if k.injector != nil {
				p.counter += uint64(k.injector.NonceUpdate(p))
			} else {
				p.counter++
			}
			if len(c.pending) >= k.batchN || num == sys.SysExit {
				if !k.flushCF(p) {
					return KillBadState, false
				}
			}
			return "", true
		case !tampered && len(c.pending) > 0:
			// Memory is exactly as the kernel left it, but the in-kernel
			// counter disagrees with the queue: a dropped or duplicated
			// nonce update. Materialize the intended state first; the
			// classic check below then compares it against the desynced
			// counter and fails exactly as the write-per-call checker
			// would have.
			if !k.flushCF(p) {
				return KillBadState, false
			}
		default:
			// The state words changed behind the mirror's back (or became
			// unreadable). The queue is no longer anchored to memory:
			// discard it and leave the evidence in place for the classic
			// check to judge.
			c.valid = false
			c.pending = c.pending[:0]
		}
	}
	return k.checkCFClassic(p, rec, predIDs)
}

// flushCF materializes the queued control-flow transitions: one batched
// CMAC pass over every queued 12-byte state message, then a single
// writeback of the newest state words. The landed bytes are read back
// and compared against the intended ones, so a store torn during the
// flush is detected at the flush itself rather than silently queuing
// more calls on top of it. Returns false (and invalidates the mirror)
// when the writeback failed or tore.
func (k *Kernel) flushCF(p *Process) bool {
	c := &p.commit
	if len(c.pending) == 0 {
		return true
	}
	p.scratchBatch = policy.EncodeStateBatch(p.scratchBatch[:0], c.pending)
	msgs := p.scratchMsgs[:0]
	for i := range c.pending {
		off := 4 + i*policy.StateMsgSize
		msgs = append(msgs, p.scratchBatch[off:off+policy.StateMsgSize])
	}
	tags, blocks := k.key.SumBatch(msgs, p.scratchTags[:0])
	p.CPU.Cycles += uint64(blocks)*k.Costs.PerAESBlockBatched + k.Costs.CommitFlush
	p.VerifyAESBlocks += uint64(blocks)
	last := c.pending[len(c.pending)-1]
	tag := tags[len(tags)-1]
	p.scratchMsgs = msgs[:0]
	p.scratchTags = tags[:0]
	c.baseCtr = last.Ctr
	binary.LittleEndian.PutUint32(c.flushedBytes[0:4], last.Block)
	copy(c.flushedBytes[4:], tag[:])
	c.pending = c.pending[:0]
	ok := p.Mem.KernelStore32(c.lbPtr, last.Block) == nil &&
		p.Mem.KernelWrite(c.lbPtr+4, tag[:]) == nil
	if ok {
		live, err := p.Mem.KernelRead(c.lbPtr, policy.PolicyStateSize)
		ok = err == nil && bytes.Equal(live, c.flushedBytes[:])
	}
	c.watchGen = p.Mem.WatchGeneration()
	if !ok {
		c.valid = false
		return false
	}
	return true
}

// drainCommit brings application memory up to date with the group-commit
// queue when an external observer needs it current (checkpoint, scheduler
// parking, a state-pointer change). The queue is flushed while the state
// words are untampered — the watch has not fired and the bytes still
// match the mirror. The in-kernel counter is deliberately NOT consulted:
// the flush always writes the intended counters, so a desynced counter
// (a dropped or duplicated nonce update) fails the next classic state-MAC
// check exactly as it would have without batching. Only tampered memory
// forces a discard, leaving the evidence in place for the classic
// checker to judge at the next call.
func (k *Kernel) drainCommit(p *Process) {
	c := &p.commit
	if !c.valid || len(c.pending) == 0 {
		return
	}
	live, err := p.Mem.KernelRead(c.lbPtr, policy.PolicyStateSize)
	if err != nil || p.Mem.WatchGeneration() != c.watchGen ||
		!bytes.Equal(live, c.flushedBytes[:]) {
		c.valid = false
		c.pending = c.pending[:0]
		return
	}
	if !k.flushCF(p) {
		c.valid = false
	}
}

// updateFDSet maintains the §5.3 capability set across calls that create
// or destroy descriptors.
func (k *Kernel) updateFDSet(p *Process, num uint16, sig sys.Sig, sigOK bool, args [sys.MaxArgs]uint32, ret uint32) error {
	if !sigOK {
		return nil
	}
	before := p.fdTracker.AESBlocks
	defer func() { k.chargeAES(p, p.fdTracker.AESBlocks-before) }()
	switch {
	case sig.ReturnFD && int32(ret) >= 0:
		if err := p.fdTracker.Add(p.Mem, ret); err != nil && !errors.Is(err, captrack.ErrFull) {
			return err
		}
	case num == sys.SysClose && ret == 0:
		if err := p.fdTracker.Remove(p.Mem, args[0]); err != nil && !errors.Is(err, captrack.ErrNotTracked) {
			return err
		}
	}
	return nil
}

// resolvePath joins a process-relative path against the cwd.
func (p *Process) resolvePath(path string) string {
	if path == "" {
		return p.cwd
	}
	if path[0] == '/' {
		return path
	}
	if p.cwd == "/" {
		return "/" + path
	}
	return p.cwd + "/" + path
}

// readPath reads a path argument from process memory.
func (p *Process) readPath(addr uint32) (string, bool) {
	s, err := p.Mem.CString(addr, 4096)
	if err != nil {
		return "", false
	}
	if strings.ContainsRune(s, 0) {
		return "", false
	}
	return p.resolvePath(s), true
}

// allocFD installs an fd entry at the lowest free slot.
func (p *Process) allocFD(e *fdEntry) (int, bool) {
	for i, f := range p.fds {
		if f == nil {
			p.fds[i] = e
			return i, true
		}
	}
	if len(p.fds) >= maxFDs {
		return 0, false
	}
	p.fds = append(p.fds, e)
	return len(p.fds) - 1, true
}

func (p *Process) fd(n uint32) *fdEntry {
	if int(n) >= len(p.fds) {
		return nil
	}
	return p.fds[n]
}

// Output returns everything the process wrote to the console.
func (p *Process) Output() string { return string(p.Stdout) }
