// Package dataflow implements the reaching-definitions / constant-
// propagation analysis the trusted installer uses to determine system call
// argument values (paper Section 4.1: "each system call site is analyzed
// to determine the arguments of the call ... applying a standard reaching
// definitions analysis").
//
// The lattice is a small-set constant lattice: bottom (never defined on
// this path), a set of up to four known constants, or top (not statically
// known). Sets with more than one element feed the "mv" (multi-value)
// column of Table 3; singletons are candidates for authentication.
//
// Values also carry their defining MOVI instruction addresses, so the
// installer can redirect a string argument's pointer to its authenticated
// string copy by patching the defining instruction.
package dataflow

import (
	"sort"

	"asc/internal/cfg"
	"asc/internal/isa"
	"asc/internal/sys"
)

// maxConsts caps the constant-set size before widening to top.
const maxConsts = 4

// maxDefs caps tracked defining instructions.
const maxDefs = 8

// Kind classifies a lattice value.
type Kind uint8

// Value kinds.
const (
	Bottom Kind = iota // no definition reaches (unreachable or undefined)
	Consts             // a small set of known constant values
	Top                // statically unknown
)

// Value is one lattice element.
type Value struct {
	Kind Kind
	// Vals holds the constant set (sorted), meaningful when Kind==Consts.
	Vals []uint32
	// Defs holds addresses of defining instructions, when all of them
	// are MOVI instructions (so the installer may patch them). Empty
	// otherwise.
	Defs []uint32
	// FromReloc reports whether every constant was produced by a MOVI
	// whose immediate carries a relocation (i.e. is a symbol address).
	FromReloc bool
}

// Single reports whether the value is exactly one known constant.
func (v Value) Single() (uint32, bool) {
	if v.Kind == Consts && len(v.Vals) == 1 {
		return v.Vals[0], true
	}
	return 0, false
}

// top is the canonical unknown value.
var top = Value{Kind: Top}

func constVal(c uint32, def uint32, reloc bool) Value {
	return Value{Kind: Consts, Vals: []uint32{c}, Defs: []uint32{def}, FromReloc: reloc}
}

// join merges two lattice values.
func join(a, b Value) Value {
	switch {
	case a.Kind == Bottom:
		return b
	case b.Kind == Bottom:
		return a
	case a.Kind == Top || b.Kind == Top:
		return top
	}
	vals := mergeSorted(a.Vals, b.Vals, maxConsts+1)
	if len(vals) > maxConsts {
		return top
	}
	defs := mergeSorted(a.Defs, b.Defs, maxDefs+1)
	if len(defs) > maxDefs {
		defs = nil
	}
	return Value{Kind: Consts, Vals: vals, Defs: defs, FromReloc: a.FromReloc && b.FromReloc}
}

func mergeSorted(a, b []uint32, cap int) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	out = append(out, a...)
	for _, v := range b {
		found := false
		for _, x := range out {
			if x == v {
				found = true
				break
			}
		}
		if !found {
			out = append(out, v)
		}
		if len(out) >= cap {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b Value) bool {
	if a.Kind != b.Kind || len(a.Vals) != len(b.Vals) || a.FromReloc != b.FromReloc || len(a.Defs) != len(b.Defs) {
		return false
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			return false
		}
	}
	for i := range a.Defs {
		if a.Defs[i] != b.Defs[i] {
			return false
		}
	}
	return true
}

// state is the lattice value of each register.
type state [isa.NumRegs]Value

func joinState(a, b *state) (state, bool) {
	var out state
	changed := false
	for i := range out {
		out[i] = join(a[i], b[i])
		if !equal(out[i], a[i]) {
			changed = true
		}
	}
	return out, changed
}

// Result holds per-site argument values.
type Result struct {
	// AtSyscall maps each syscall block to the lattice values of
	// registers R1..R5 immediately before the trap.
	AtSyscall map[*cfg.Block][sys.MaxArgs]Value
	// R0At maps each syscall block to the lattice value of R0 (the
	// system call number register) before the trap.
	R0At map[*cfg.Block]Value
}

// Analyze runs constant propagation over every function.
func Analyze(p *cfg.Program) *Result {
	res := &Result{
		AtSyscall: make(map[*cfg.Block][sys.MaxArgs]Value),
		R0At:      make(map[*cfg.Block]Value),
	}
	for _, fun := range p.Funcs {
		analyzeFunc(fun, res)
	}
	return res
}

func analyzeFunc(fun *cfg.Func, res *Result) {
	if len(fun.Blocks) == 0 {
		return
	}
	in := make(map[*cfg.Block]*state, len(fun.Blocks))
	entry := fun.EntryBlock()
	for _, b := range fun.Blocks {
		s := &state{}
		if b == entry {
			// Arguments and everything else arrive unknown from callers.
			for i := range s {
				s[i] = top
			}
		}
		in[b] = s
	}

	work := append([]*cfg.Block(nil), fun.Blocks...)
	inWork := make(map[*cfg.Block]bool, len(work))
	for _, b := range work {
		inWork[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		out := *in[b]
		for _, insn := range b.Insns {
			transfer(&out, insn)
		}
		for _, s := range b.Succs {
			merged, changed := joinState(in[s], &out)
			if changed {
				*in[s] = merged
				if !inWork[s] {
					inWork[s] = true
					work = append(work, s)
				}
			}
		}
	}

	// Record values at each syscall.
	for _, b := range fun.Blocks {
		if b.Syscall == nil {
			continue
		}
		st := *in[b]
		for _, insn := range b.Insns {
			if insn.Instr.IsSyscall() {
				break
			}
			transfer(&st, insn)
		}
		var args [sys.MaxArgs]Value
		for i := 0; i < sys.MaxArgs; i++ {
			args[i] = st[isa.R1+isa.Reg(i)]
		}
		res.AtSyscall[b.Syscall.Block] = args
		res.R0At[b.Syscall.Block] = st[isa.R0]
	}
}

// transfer applies one instruction to the register state.
func transfer(s *state, insn cfg.Instruction) {
	in := insn.Instr
	switch in.Op {
	case isa.OpMOVI:
		s[in.Rd] = constVal(in.Imm, insn.Addr, insn.Reloc)
	case isa.OpMOV:
		s[in.Rd] = s[in.Rs]
	case isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSHL, isa.OpSHR:
		s[in.Rd] = fold2(in.Op, s[in.Rs], s[in.Rt])
	case isa.OpADDI, isa.OpMULI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSHLI, isa.OpSHRI:
		s[in.Rd] = foldImm(in.Op, s[in.Rs], in.Imm)
	case isa.OpDIV, isa.OpMOD:
		s[in.Rd] = top // folding division is not worth the edge cases
	case isa.OpLOAD, isa.OpLOADB, isa.OpPOP:
		s[in.Rd] = top
	case isa.OpCALL, isa.OpCALLR:
		// Calls clobber the caller-saved registers R0..R9.
		for r := isa.R0; r <= isa.R9; r++ {
			s[r] = top
		}
	case isa.OpSYSCALL, isa.OpASYSCALL:
		s[isa.R0] = top
	}
}

func fold2(op isa.Op, a, b Value) Value {
	av, aok := a.Single()
	bv, bok := b.Single()
	if !aok || !bok {
		return top
	}
	var r uint32
	switch op {
	case isa.OpADD:
		r = av + bv
	case isa.OpSUB:
		r = av - bv
	case isa.OpMUL:
		r = av * bv
	case isa.OpAND:
		r = av & bv
	case isa.OpOR:
		r = av | bv
	case isa.OpXOR:
		r = av ^ bv
	case isa.OpSHL:
		r = av << (bv & 31)
	case isa.OpSHR:
		r = av >> (bv & 31)
	default:
		return top
	}
	// Folded values are constants but no longer patchable MOVIs.
	return Value{Kind: Consts, Vals: []uint32{r}}
}

func foldImm(op isa.Op, a Value, imm uint32) Value {
	av, ok := a.Single()
	if !ok {
		return top
	}
	var r uint32
	switch op {
	case isa.OpADDI:
		r = av + imm
	case isa.OpMULI:
		r = av * imm
	case isa.OpANDI:
		r = av & imm
	case isa.OpORI:
		r = av | imm
	case isa.OpXORI:
		r = av ^ imm
	case isa.OpSHLI:
		r = av << (imm & 31)
	case isa.OpSHRI:
		r = av >> (imm & 31)
	default:
		return top
	}
	return Value{Kind: Consts, Vals: []uint32{r}}
}
