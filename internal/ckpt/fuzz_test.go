package ckpt

import (
	"bytes"
	"testing"

	"asc/internal/mac"
)

// FuzzCheckpointDecode hammers the unauthenticated decoder with
// arbitrary bytes. The decoder sits behind the seal check in production,
// but it must still be total: no panics, no huge allocations from forged
// counts, and any input it accepts must re-encode to exactly itself
// (decode is the inverse of encode on its accepted set).
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ASCK"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	valid := encode(sampleState())
	f.Add(valid)
	for i := 0; i < len(valid); i += 13 {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x20
		f.Add(mut)
	}
	f.Add(valid[:len(valid)/2])

	key, err := mac.New([]byte("0123456789abcdef"))
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeState(data)
		if err != nil {
			return
		}
		if got := encode(s); !bytes.Equal(got, data) {
			t.Fatalf("decode/encode not inverse: %d bytes in, %d out", len(data), len(got))
		}
		// A decodable payload still must not open without a valid seal.
		if _, err := Open(key, data); err == nil {
			t.Fatal("Open accepted an unsealed payload")
		}
	})
}

// FuzzMigrationDecode hammers the unauthenticated migration-envelope
// decoder with arbitrary bytes. Same contract as the checkpoint
// decoder: total on any input (no panics, no forged-count allocations),
// decode is the inverse of encode on its accepted set, and no input
// ever opens without a valid envelope seal.
func FuzzMigrationDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ASCM"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	key, err := mac.New([]byte("0123456789abcdef"))
	if err != nil {
		f.Fatal(err)
	}
	m0 := sampleMigration(key)
	valid := encodeMigration(m0)
	f.Add(valid)
	for i := 0; i < len(valid); i += 13 {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x20
		f.Add(mut)
	}
	f.Add(valid[:len(valid)/2])
	f.Add(SealMigration(key, m0))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMigration(data)
		if err != nil {
			return
		}
		if got := encodeMigration(m); !bytes.Equal(got, data) {
			t.Fatalf("decode/encode not inverse: %d bytes in, %d out", len(data), len(got))
		}
		// A decodable envelope still must not open without a valid
		// seal: the decoded form lacks the trailing MAC by definition,
		// so OpenMigration must refuse it.
		if _, err := OpenMigration(key, data); err == nil {
			t.Fatal("OpenMigration accepted an unsealed envelope")
		}
	})
}
