package kernel

import (
	"errors"
	"strings"
	"testing"

	"asc/internal/ckpt"
	"asc/internal/vm"
)

// pagedSweepSrc mmaps 8 anonymous pages read-write, sweeps them three
// times (write + read back per page), read-protects the first page,
// reads it once more, and unmaps. With a budget of 4 resident pages the
// sweeps force evictions and verified fault-ins.
const pagedSweepSrc = `
        .text
        .global main
main:
        ; mmap(0, 8*4096, PROT_READ|PROT_WRITE, MAP_PRIVATE|MAP_ANONYMOUS, 0)
        MOVI r1, 0
        MOVI r2, 32768
        MOVI r3, 3
        MOVI r4, 0x22
        MOVI r5, 0
        CALL mmap
        MOV r8, r0
        MOVI r12, 3             ; sweeps
.sweep:
        MOV r10, r8            ; cursor
        MOVI r11, 8             ; pages per sweep
.page:
        STORE [r10+0], r12      ; dirty the page
        LOAD r9, [r10+8]        ; and read it
        ADDI r10, r10, 4096
        ADDI r11, r11, -1
        MOVI r9, 0
        BNE r11, r9, .page
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .sweep
        ; mprotect(base, 4096, PROT_READ) then a legal read
        MOV r1, r8
        MOVI r2, 4096
        MOVI r3, 1
        CALL mprotect
        LOAD r9, [r8+0]
        ; munmap(base, 8*4096)
        MOV r1, r8
        MOVI r2, 32768
        CALL munmap
        MOVI r1, donemsg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
donemsg: .asciz "paged done\n"
`

func TestPagedSweepEnforced(t *testing.T) {
	k := newKernel(t, WithPagedMemory(4))
	p := runProc(t, k, buildAuthExe(t, pagedSweepSrc), "")
	if !p.Exited || p.Killed || p.Code != 0 {
		t.Fatalf("exited=%v killed=%v (%s) code=%d", p.Exited, p.Killed, p.KilledBy, p.Code)
	}
	if p.Output() != "paged done\n" {
		t.Errorf("stdout = %q", p.Output())
	}
	faults, evicts, swapins := p.PageStats()
	if faults == 0 || evicts == 0 || swapins == 0 {
		t.Errorf("PageStats = %d/%d/%d, want all nonzero (working set 8 > budget 4)", faults, evicts, swapins)
	}
	// Sealed frames actually landed on the swap device.
	if _, err := k.FS.Lookup(SwapDir); err != nil {
		t.Errorf("swap directory missing: %v", err)
	}
}

func TestPagedSweepLegacyKernelUnaffected(t *testing.T) {
	// The same binary on a non-paged kernel takes the historical
	// brk-bump mmap and no-op munmap/mprotect.
	k := newKernel(t)
	p := runProc(t, k, buildAuthExe(t, pagedSweepSrc), "")
	if !p.Exited || p.Killed || p.Code != 0 {
		t.Fatalf("exited=%v killed=%v (%s) code=%d", p.Exited, p.Killed, p.KilledBy, p.Code)
	}
	if p.Output() != "paged done\n" {
		t.Errorf("stdout = %q", p.Output())
	}
	faults, evicts, swapins := p.PageStats()
	if faults != 0 || evicts != 0 || swapins != 0 {
		t.Errorf("PageStats = %d/%d/%d on a non-paged kernel", faults, evicts, swapins)
	}
}

const protViolationSrc = `
        .text
        .global main
main:
        ; mmap(0, 4096, PROT_READ, MAP_PRIVATE|MAP_ANONYMOUS, 0)
        MOVI r1, 0
        MOVI r2, 4096
        MOVI r3, 1
        MOVI r4, 0x22
        MOVI r5, 0
        CALL mmap
        ; store to a read-only page must fault
        MOVI r9, 7
        STORE [r0+0], r9
        MOVI r0, 0
        RET
`

func TestPagedProtectionViolationFaults(t *testing.T) {
	k := newKernel(t, WithPagedMemory(4))
	p, err := k.Spawn(buildAuthExe(t, protViolationSrc), "test")
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	err = k.Run(p, 100_000_000)
	if err == nil {
		t.Fatalf("store to PROT_READ page did not fault")
	}
	if !strings.Contains(err.Error(), "page protection violation") {
		t.Errorf("fault = %v, want page protection violation", err)
	}
	if p.Killed {
		t.Errorf("hardware fault must not be recorded as a monitor kill")
	}
}

const unmappedAccessSrc = `
        .text
        .global main
main:
        ; mmap then munmap, then touch the dead mapping
        MOVI r1, 0
        MOVI r2, 4096
        MOVI r3, 3
        MOVI r4, 0x22
        MOVI r5, 0
        CALL mmap
        MOV r8, r0
        MOVI r9, 7
        STORE [r8+0], r9
        MOV r1, r8
        MOVI r2, 4096
        CALL munmap
        LOAD r9, [r8+0]
        MOVI r0, 0
        RET
`

func TestPagedUseAfterUnmapFaults(t *testing.T) {
	k := newKernel(t, WithPagedMemory(4))
	p, err := k.Spawn(buildAuthExe(t, unmappedAccessSrc), "test")
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	err = k.Run(p, 100_000_000)
	if err == nil || !strings.Contains(err.Error(), "unmapped page") {
		t.Fatalf("use-after-unmap: err = %v, want unmapped page fault", err)
	}
}

// swapTamperInjector is a minimal fault injector for the swap path: it
// perturbs the nth sealed frame on its way to the device.
type swapTamperInjector struct {
	n      int // tamper on the nth eviction (0-based)
	seen   int
	replay bool // capture frame n and substitute it at the next eviction of the same page

	capturedPage uint32
	captured     []byte
	fired        bool
}

func (s *swapTamperInjector) BeforeVerify(p *Process, num uint16, site uint32, recAddr uint32) {}
func (s *swapTamperInjector) NonceUpdate(p *Process) int                                       { return 1 }

func (s *swapTamperInjector) SwapEvict(p *Process, page uint32, gen uint64, blob []byte) []byte {
	defer func() { s.seen++ }()
	if s.fired {
		return nil
	}
	if s.replay {
		if s.captured == nil {
			if s.seen == s.n {
				s.capturedPage = page
				s.captured = append([]byte(nil), blob...)
			}
			return nil
		}
		if page == s.capturedPage {
			s.fired = true
			return s.captured
		}
		return nil
	}
	if s.seen == s.n {
		s.fired = true
		mut := append([]byte(nil), blob...)
		mut[len(mut)/2] ^= 0x10
		return mut
	}
	return nil
}

func TestPagedSwapFlipKilled(t *testing.T) {
	inj := &swapTamperInjector{n: 1}
	k := newKernel(t, WithPagedMemory(4), WithInjector(inj))
	p, err := k.Spawn(buildAuthExe(t, pagedSweepSrc), "test")
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !inj.fired {
		t.Fatalf("injector never fired")
	}
	if !p.Killed || p.KilledBy != KillSwapSeal {
		t.Fatalf("killed=%v by=%q, want kill with %q", p.Killed, p.KilledBy, KillSwapSeal)
	}
}

func TestPagedSwapReplayDenied(t *testing.T) {
	inj := &swapTamperInjector{n: 0, replay: true}
	k := newKernel(t, WithPagedMemory(4), WithInjector(inj), WithEnforcement(EnforceDeny))
	p, err := k.Spawn(buildAuthExe(t, pagedSweepSrc), "test")
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !inj.fired {
		t.Fatalf("injector never fired")
	}
	if p.Killed {
		t.Fatalf("deny mode killed the process (%s)", p.KilledBy)
	}
	if !p.Exited || p.Code != 0 {
		t.Fatalf("exited=%v code=%d, want clean exit under deny", p.Exited, p.Code)
	}
	if p.DeniedCount == 0 {
		t.Errorf("DeniedCount = 0, want at least one denied fault-in")
	}
	var found bool
	for _, v := range k.Audit.Entries() {
		if v.Reason == KillSwapReplay && v.Action == ActionDeny {
			found = true
		}
	}
	if !found {
		t.Errorf("no deny-mode audit record with reason %q", KillSwapReplay)
	}
}

// TestPagedCheckpointRestoreRoundTrip: a paged process checkpointed
// mid-sweep — with live swap residue — restores onto a new PID and
// finishes with the reference run's exact output and cycle count. The
// residue travels verified inside the sealed blob and is re-sealed
// under the restored identity, so the restored process faults its
// evicted pages back in through the normal verified path.
func TestPagedCheckpointRestoreRoundTrip(t *testing.T) {
	exe := buildAuthExe(t, pagedSweepSrc)
	k := newKernel(t, WithPagedMemory(4))

	ref, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, k, ref)
	if ref.Killed || !ref.Exited || ref.Code != 0 {
		t.Fatalf("reference run failed: killed=%v code=%d", ref.Killed, ref.Code)
	}

	p, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p, ref.CPU.Cycles*3/4); !errors.Is(err, vm.ErrCycleLimit) {
		t.Fatalf("slice run: err = %v, want cycle limit", err)
	}
	if _, evicts, _ := p.PageStats(); evicts == 0 {
		t.Fatalf("no evictions before the checkpoint; the slice point carries no swap residue")
	}
	blob, err := k.Checkpoint(p, 1)
	if err != nil {
		t.Fatal(err)
	}

	r, err := k.Restore(exe, "test", blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.PID == p.PID {
		t.Fatalf("restore reused PID %d", p.PID)
	}
	if r.pager == nil {
		t.Fatalf("restored process has no pager")
	}
	if r.pager.resident != p.pager.resident || r.pager.hand != p.pager.hand {
		t.Errorf("pager state resident=%d hand=%d, sealed %d/%d",
			r.pager.resident, r.pager.hand, p.pager.resident, p.pager.hand)
	}
	runToCompletion(t, k, r)
	if r.Killed || !r.Exited || r.Code != 0 {
		t.Fatalf("restored run failed: killed=%v (%s) code=%d", r.Killed, r.KilledBy, r.Code)
	}
	if r.Output() != ref.Output() {
		t.Errorf("output %q, want %q", r.Output(), ref.Output())
	}
	if r.CPU.Cycles != ref.CPU.Cycles {
		t.Errorf("final cycles %d, want %d", r.CPU.Cycles, ref.CPU.Cycles)
	}
}

// TestPagedCheckpointTamperedResidue: a swap frame tampered on the
// device fails checkpoint capture — the checkpoint must not launder an
// unverifiable swap device into a blob a restore would trust.
func TestPagedCheckpointTamperedResidue(t *testing.T) {
	exe := buildAuthExe(t, pagedSweepSrc)
	k := newKernel(t, WithPagedMemory(4))

	ref, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, k, ref)

	p, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p, ref.CPU.Cycles/2); !errors.Is(err, vm.ErrCycleLimit) {
		t.Fatalf("slice run: err = %v, want cycle limit", err)
	}
	g := p.pager
	var victim = -1
	for i := 0; i < g.pt.NumPages(); i++ {
		if g.pt.Flags(i)&vm.PagePresent == 0 && g.gens[i] != 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatalf("no swap residue at the slice point")
	}
	frame, err := k.FS.ReadFile(g.framePath(victim))
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), frame...)
	mut[len(mut)/2] ^= 0x01
	if err := k.FS.WriteFile(g.framePath(victim), mut, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Checkpoint(p, 1); !errors.Is(err, ckpt.ErrState) {
		t.Fatalf("checkpoint over a tampered frame: err = %v, want ErrState", err)
	}
}

// TestPagedCheckpointKernelMismatch: a paged checkpoint does not
// restore on a non-paged kernel (and vice versa) — the page table and
// residue have nowhere to go.
func TestPagedCheckpointKernelMismatch(t *testing.T) {
	exe := buildAuthExe(t, pagedSweepSrc)
	paged := newKernel(t, WithPagedMemory(4))
	flat := newKernel(t)

	ref, err := paged.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, paged, ref)

	p, err := paged.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := paged.Run(p, ref.CPU.Cycles/2); !errors.Is(err, vm.ErrCycleLimit) {
		t.Fatalf("slice run: err = %v, want cycle limit", err)
	}
	blob, err := paged.Checkpoint(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Restore(exe, "test", blob, 1); !errors.Is(err, ckpt.ErrState) {
		t.Fatalf("paged blob on a flat kernel: err = %v, want ErrState", err)
	}

	fp, err := flat.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Run(fp, 20_000); !errors.Is(err, vm.ErrCycleLimit) {
		t.Fatalf("flat slice run: err = %v, want cycle limit", err)
	}
	fblob, err := flat.Checkpoint(fp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := paged.Restore(exe, "test", fblob, 1); !errors.Is(err, ckpt.ErrState) {
		t.Fatalf("flat blob on a paged kernel: err = %v, want ErrState", err)
	}
}

func TestPagedBrkCappedByArena(t *testing.T) {
	k := newKernel(t, WithPagedMemory(4))
	p, err := k.Spawn(buildAuthExe(t, pagedSweepSrc), "test")
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	arenaBase := p.pager.pt.Base()
	if r := k.sysBrk(p, arenaBase); int32(r) >= 0 {
		t.Errorf("brk into the arena base succeeded (%#x)", r)
	}
	if r := k.sysBrk(p, arenaBase-vm.PageSize); int32(r) < 0 {
		t.Errorf("brk below the arena failed")
	}
}
