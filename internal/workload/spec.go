// Package workload synthesizes the program corpus of the paper's
// evaluation: the policy-study programs (bison, calc, screen, tar), the
// performance suite of Table 5 (gzip-spec, crafty, mcf, vpr, twolf, gcc,
// vortex, pyramid, gzip), the Andrew-style multiprogram benchmark and the
// Unix tools it drives.
//
// The paper's originals are real Unix programs; what its evaluation
// measures, however, is their *system call surface*: which distinct calls
// appear (Tables 1-2), how arguments classify statically (Table 3), and
// the compute-to-syscall ratio (Table 6). The synthesizer reproduces
// those surfaces: each program makes the same distinct calls as its
// namesake (per OS personality), routes rarely-used calls through
// conditional handlers that training inputs do not exercise, mixes
// constant and dynamically-computed arguments, and interleaves calibrated
// compute loops.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"asc/internal/libc"
	"asc/internal/sys"
)

// ArgMode selects how one argument of a generated call site is produced.
type ArgMode int

// Argument modes.
const (
	// ArgConst emits a MOVI of a constant (authenticatable).
	ArgConst ArgMode = iota + 1
	// ArgDynamic computes the value at run time (not authenticatable).
	ArgDynamic
	// ArgSavedFD uses the fd saved from the program's earlier open.
	ArgSavedFD
	// ArgTwoValued picks between two constants on a runtime condition
	// (the "mv" column of Table 3).
	ArgTwoValued
)

// Call is one generated call site.
type Call struct {
	Name  string    // libc stub name
	Modes []ArgMode // per-argument mode; defaults derived when empty
}

// Spec describes one policy-study program.
type Spec struct {
	Name string
	// Common calls run on every execution, in order (training sees them).
	Common []Call
	// Rare maps a command byte to the calls of a conditional handler;
	// training inputs that omit the byte never exercise them.
	Rare map[byte][]Call
	// SiteFactor repeats each common call at this many distinct sites
	// (site counts in Table 3 exceed distinct-call counts several-fold).
	SiteFactor int
}

// builder accumulates assembly source.
type builder struct {
	text    strings.Builder
	rodata  strings.Builder
	bss     strings.Builder
	strings map[string]string // literal -> label
	nstr    int
	prog    string
}

func newBuilder(prog string) *builder {
	b := &builder{strings: make(map[string]string), prog: prog}
	b.bss.WriteString("iobuf: .space 256\nfdslot: .space 4\nscratch: .space 64\n")
	return b
}

func (b *builder) strLabel(lit string) string {
	if l, ok := b.strings[lit]; ok {
		return l
	}
	l := fmt.Sprintf("s%d", b.nstr)
	b.nstr++
	b.strings[lit] = l
	fmt.Fprintf(&b.rodata, "%s: .asciz %q\n", l, lit)
	return l
}

// hash is a small deterministic mixer for reproducible arg variety.
func hash(parts ...string) uint32 {
	var h uint32 = 2166136261
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint32(p[i])
			h *= 16777619
		}
	}
	return h
}

// emitCall renders one call site. siteTag diversifies constants across
// repeated sites of the same call.
func (b *builder) emitCall(c Call, siteTag string) {
	sig, ok := sys.LookupName(c.Name)
	if !ok {
		// Helper routines (puts, gets, malloc...) take one pointer arg.
		fmt.Fprintf(&b.text, "        MOVI r1, iobuf\n        CALL %s\n", c.Name)
		return
	}
	modes := c.Modes
	for i := 0; i < sig.NArgs(); i++ {
		var mode ArgMode
		if i < len(modes) && modes[i] != 0 {
			mode = modes[i]
		} else {
			mode = defaultMode(b.prog, c.Name, siteTag, i, sig.Args[i])
		}
		b.emitArg(i+1, sig.Args[i], mode, c.Name, siteTag)
	}
	fmt.Fprintf(&b.text, "        CALL %s\n", c.Name)
	if sig.ReturnFD {
		// Remember the most recent fd for ArgSavedFD users.
		fmt.Fprintf(&b.text, "        MOVI r7, fdslot\n        STORE [r7+0], r0\n")
	}
}

// defaultMode mirrors the argument-variety mix of real programs: paths
// are usually constants, file descriptors usually flow from earlier
// calls, and roughly 40%% of integer arguments are computed.
func defaultMode(prog, call, site string, idx int, class sys.ArgClass) ArgMode {
	h := hash(prog, call, site, fmt.Sprint(idx))
	switch {
	case class.IsString():
		if h%10 < 7 {
			return ArgConst
		}
		return ArgDynamic
	case class == sys.ArgFD:
		if h%10 < 8 {
			return ArgSavedFD
		}
		return ArgConst
	case class.IsOutput(), class == sys.ArgPtr, class == sys.ArgBufIn:
		// Real programs pass a mix of static and heap buffers.
		if h%10 < 5 {
			return ArgConst
		}
		return ArgDynamic
	default: // plain integers
		if h%10 < 6 {
			return ArgDynamic
		}
		return ArgConst
	}
}

func (b *builder) emitArg(reg int, class sys.ArgClass, mode ArgMode, call, site string) {
	h := hash(b.prog, call, site, fmt.Sprint(reg))
	switch mode {
	case ArgSavedFD:
		fmt.Fprintf(&b.text, "        MOVI r7, fdslot\n        LOAD r%d, [r7+0]\n", reg)
		return
	case ArgDynamic:
		// Value depends on memory contents: statically unknown.
		fmt.Fprintf(&b.text, "        MOVI r7, scratch\n        LOAD r%d, [r7+0]\n", reg)
		return
	case ArgTwoValued:
		fmt.Fprintf(&b.text, `        MOVI r7, scratch
        LOAD r7, [r7+0]
        MOVI r8, 0
        MOVI r%d, %d
        BEQ r7, r8, .tv%x
        MOVI r%d, %d
.tv%x:
`, reg, h%7+1, h, reg, h%7+2, h)
		return
	}
	// ArgConst by class.
	switch {
	case class.IsString():
		lit := constPath(b.prog, call, h)
		fmt.Fprintf(&b.text, "        MOVI r%d, %s\n", reg, b.strLabel(lit))
	case class.IsOutput(), class == sys.ArgPtr, class == sys.ArgBufIn:
		fmt.Fprintf(&b.text, "        MOVI r%d, iobuf\n", reg)
	case class == sys.ArgFD:
		fmt.Fprintf(&b.text, "        MOVI r%d, %d\n", reg, h%3)
	default:
		fmt.Fprintf(&b.text, "        MOVI r%d, %d\n", reg, h%64)
	}
}

// constPath invents a plausible constant path/string for the program.
func constPath(prog, call string, h uint32) string {
	pool := []string{
		"/etc/" + prog + ".conf",
		"/tmp/" + prog + ".tmp",
		"/data/" + prog + ".in",
		"/tmp/" + prog + ".out",
		"/var/run/" + prog + ".pid",
	}
	return pool[h%uint32(len(pool))]
}

// Source renders the program for the given personality.
func (s *Spec) Source(os libc.OS) string {
	b := newBuilder(s.Name)
	factor := s.SiteFactor
	if factor < 1 {
		factor = 1
	}

	b.text.WriteString("        .text\n        .global main\nmain:\n        PUSH fp\n        MOV fp, sp\n")
	// Seed the scratch word from input so "dynamic" really is dynamic.
	b.text.WriteString(`        MOVI r1, 0
        MOVI r2, scratch
        MOVI r3, 4
        CALL read
`)
	for rep := 0; rep < factor; rep++ {
		for _, c := range s.Common {
			b.emitCall(c, fmt.Sprintf("common%d", rep))
		}
	}
	// Command loop: read a byte; dispatch to rare handlers.
	b.text.WriteString(`.cmdloop:
        MOVI r1, 0
        MOVI r2, cmdbuf
        MOVI r3, 1
        CALL read
        MOVI r7, 1
        BNE r0, r7, .alldone
        MOVI r7, cmdbuf
        LOADB r7, [r7+0]
`)
	// Deterministic handler order.
	var cmds []byte
	for c := range s.Rare {
		cmds = append(cmds, c)
	}
	sort.Slice(cmds, func(i, j int) bool { return cmds[i] < cmds[j] })
	for _, c := range cmds {
		fmt.Fprintf(&b.text, "        MOVI r8, %d\n        BEQ r7, r8, .do_%c\n", c, c)
	}
	b.text.WriteString("        JMP .cmdloop\n")
	for _, c := range cmds {
		fmt.Fprintf(&b.text, ".do_%c:\n        CALL handler_%c\n        JMP .cmdloop\n", c, c)
	}
	b.text.WriteString(".alldone:\n        POP fp\n        MOVI r0, 0\n        RET\n")
	for _, c := range cmds {
		fmt.Fprintf(&b.text, "handler_%c:\n        PUSH fp\n        MOV fp, sp\n", c)
		for _, call := range s.Rare[c] {
			b.emitCall(call, "rare"+string(c))
		}
		b.text.WriteString("        POP fp\n        RET\n")
	}

	var out strings.Builder
	out.WriteString(b.text.String())
	out.WriteString("        .rodata\n")
	out.WriteString(b.rodata.String())
	out.WriteString("        .bss\ncmdbuf: .space 4\n")
	out.WriteString(b.bss.String())
	return out.String()
}

// ScratchSeed is the 4-byte input prefix every generated program
// consumes first: main's prologue reads exactly four bytes into the
// scratch word (see Source) before the command dispatch loop sees any
// input. The bytes themselves are arbitrary — 'X' is used so the seed
// is visible in test transcripts — but they must be present, or the
// first command characters are swallowed by the seed read.
const ScratchSeed = "XXXX"

// AllRareCommands returns the input string that exercises every rare
// handler once (the "complete behaviour" input).
func (s *Spec) AllRareCommands() string {
	var cmds []byte
	for c := range s.Rare {
		cmds = append(cmds, c)
	}
	sort.Slice(cmds, func(i, j int) bool { return cmds[i] < cmds[j] })
	return ScratchSeed + string(cmds)
}

// TrainingInput is the input used for Systrace training runs: it seeds
// scratch but triggers no rare handler.
func (s *Spec) TrainingInput() string { return ScratchSeed }
