// Package durable makes the fleet director's control plane restartable:
// a sealed write-ahead log of every control-plane decision, and a
// VFS-backed checkpoint store that survives the director process.
//
// The trust argument mirrors the checkpoint layer's. Director state that
// leaves the director's hands — records written to the shared durable
// filesystem — is never trusted on the way back in: every record is
// chained by a domain-separated CMAC over the previous record's tag, so
// a standby replaying the log detects bit flips (the chain breaks) and
// reordering or splicing (each tag pins its predecessor). What the chain
// alone cannot decide is freshness — an attacker who snapshots the whole
// log and anchor early can present a self-consistent prefix — so a
// separately sealed anchor records the newest (term, seq, tag) after
// every append. A log whose chain verifies but whose anchor points past
// its last record is a replayed stale copy and is rejected, not
// replayed. Torn tails — a crash mid-append — are the one recoverable
// corruption: the partial frame is detected by framing, truncated, and
// the log resumes from the last sealed record.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"asc/internal/mac"
	"asc/internal/vfs"
)

const (
	logMagic    = "ASCW"
	anchorMagic = "ASCA"
	version     = 1

	// walPrefix domain-separates record tags from every other CMAC in
	// the system; anchorPrefix does the same for the anchor seal.
	walPrefix    = "asc/dir/wal/v1\x00"
	anchorPrefix = "asc/dir/anchor/v1\x00"

	headerSize = 8 // magic + version
	// MaxRecord bounds one record body; a frame whose declared length
	// exceeds it cannot be legitimate and is classified as tampering.
	MaxRecord = 1 << 20
)

// Kind enumerates the control-plane decisions the WAL records.
type Kind uint32

const (
	// KindPlace: initial (or cold re-) placement of Name on Node; Data
	// carries the stdin bytes and Cycles the per-process budget, so a
	// takeover can re-create the placement from the log alone.
	KindPlace Kind = 1 + iota
	// KindBeat: director liveness heartbeat, the standby's takeover
	// signal.
	KindBeat
	// KindCheckpoint: Name sealed Epoch into its durable store.
	KindCheckpoint
	// KindExportFence: Name's Epoch was exported from Node toward
	// Node2 and the source fenced — written before the first byte
	// crosses the fabric.
	KindExportFence
	// KindMigDone: the migration of Name at Epoch committed on Node.
	KindMigDone
	// KindMigTorn: the transfer died mid-handshake; Name is pending.
	KindMigTorn
	// KindNodeDown: the failure detector declared Node failed.
	KindNodeDown
	// KindFailover: Name lost its node; Str is the cause.
	KindFailover
	// KindRestore: Name re-placed warm on Node from Epoch.
	KindRestore
	// KindColdStart: Name re-placed cold on Node.
	KindColdStart
	// KindFinish: Name finished; Code/Flags/Str/Data hold the exit
	// code, killed/error flags, reason, and output, Cycles the final
	// cycle count — enough for a takeover to report the result.
	KindFinish
	// KindTakeover: a standby took over; Term was bumped, fencing the
	// previous director's log handle.
	KindTakeover

	kindMax = KindTakeover
)

var kindNames = [...]string{
	KindPlace: "place", KindBeat: "beat", KindCheckpoint: "checkpoint",
	KindExportFence: "export-fence", KindMigDone: "mig-done",
	KindMigTorn: "mig-torn", KindNodeDown: "node-down",
	KindFailover: "failover", KindRestore: "restore",
	KindColdStart: "cold-start", KindFinish: "finish",
	KindTakeover: "takeover",
}

func (k Kind) String() string {
	if k >= 1 && k <= kindMax {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint32(k))
}

// Flag bits on KindFinish records.
const (
	FlagKilled = 1 << 0
	FlagErr    = 1 << 1
)

// Record is one fixed-encoding WAL entry. Seq and Term are assigned by
// Append; everything else is the writer's.
type Record struct {
	Seq    uint64 // 1-based position in the log
	Term   uint32 // director generation (bumped by takeover)
	Tick   uint64 // virtual tick of the decision
	Kind   Kind
	Name   string // process name ("" for fleet-wide records)
	Node   uint32 // primary node operand (0 when absent)
	Node2  uint32 // secondary node operand (migration destination)
	Epoch  uint64
	Cycles uint64
	Code   uint32
	Flags  uint8
	Str    string // reason / detail
	Data   []byte // stdin (place) or output (finish)
}

// Failure classes. Consumers classify with Reason.
var (
	// ErrTamper: a record's chained tag does not verify, or the anchor
	// disagrees with the chain it supposedly sealed.
	ErrTamper = errors.New("durable: WAL tampered")
	// ErrReplay: the chain verifies but the anchor points past the last
	// record — a stale snapshot of the log presented as current.
	ErrReplay = errors.New("durable: stale WAL (anchor ahead of log)")
	// ErrFenced: an append through a handle whose term the anchor has
	// moved past — a deposed director writing after takeover.
	ErrFenced = errors.New("durable: log fenced by a newer term")
	// ErrMalformed: a record body that does not decode (only reachable
	// through DecodeRecord; sealed records always decode).
	ErrMalformed = errors.New("durable: malformed WAL record")
)

// Canonical reason strings for the fault campaign.
const (
	ReasonTorn   = "wal-torn"
	ReasonTamper = "wal-tamper"
	ReasonReplay = "wal-replay"
)

// Reason classifies a validation error into a canonical string ("" for
// nil).
func Reason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrTamper):
		return ReasonTamper
	case errors.Is(err, ErrReplay):
		return ReasonReplay
	default:
		return "other"
	}
}

// LogPath and AnchorPath locate the WAL inside a durable directory.
func LogPath(dir string) string    { return dir + "/wal.log" }
func AnchorPath(dir string) string { return dir + "/wal.anchor" }

// EncodeRecord serializes a record body (everything the tag covers).
func EncodeRecord(r *Record) []byte {
	var e enc
	e.u64(r.Seq)
	e.u32(r.Term)
	e.u64(r.Tick)
	e.u32(uint32(r.Kind))
	e.str(r.Name)
	e.u32(r.Node)
	e.u32(r.Node2)
	e.u64(r.Epoch)
	e.u64(r.Cycles)
	e.u32(r.Code)
	e.u8(r.Flags)
	e.str(r.Str)
	e.bytes(r.Data)
	return e.b
}

// DecodeRecord is the strict inverse of EncodeRecord: it fails on
// overruns, unknown kinds, and trailing bytes, so decode∘encode is the
// identity on everything it accepts.
func DecodeRecord(b []byte) (*Record, error) {
	d := dec{b: b}
	var r Record
	r.Seq = d.u64()
	r.Term = d.u32()
	r.Tick = d.u64()
	r.Kind = Kind(d.u32())
	r.Name = d.str()
	r.Node = d.u32()
	r.Node2 = d.u32()
	r.Epoch = d.u64()
	r.Cycles = d.u64()
	r.Code = d.u32()
	r.Flags = d.u8()
	r.Str = d.str()
	r.Data = d.bytes()
	if d.fail || d.off != len(b) {
		return nil, fmt.Errorf("%w (%d bytes)", ErrMalformed, len(b))
	}
	if r.Kind < 1 || r.Kind > kindMax {
		return nil, fmt.Errorf("%w: kind %d", ErrMalformed, uint32(r.Kind))
	}
	return &r, nil
}

// tagOf chains one record onto its predecessor's tag.
func tagOf(k *mac.Keyed, prev mac.Tag, body []byte) mac.Tag {
	msg := make([]byte, 0, len(walPrefix)+mac.Size+len(body))
	msg = append(msg, walPrefix...)
	msg = append(msg, prev[:]...)
	msg = append(msg, body...)
	tag, _ := k.Sum(msg)
	return tag
}

// anchor is the sealed freshness pointer: the newest (term, seq, tag)
// the director has durably acknowledged.
type anchor struct {
	Term uint32
	Seq  uint64
	Tag  mac.Tag
}

func encodeAnchor(k *mac.Keyed, a anchor) []byte {
	body := make([]byte, 0, 4+4+4+8+mac.Size)
	body = append(body, anchorMagic...)
	body = binary.LittleEndian.AppendUint32(body, version)
	body = binary.LittleEndian.AppendUint32(body, a.Term)
	body = binary.LittleEndian.AppendUint64(body, a.Seq)
	body = append(body, a.Tag[:]...)
	msg := make([]byte, 0, len(anchorPrefix)+len(body))
	msg = append(msg, anchorPrefix...)
	msg = append(msg, body...)
	tag, _ := k.Sum(msg)
	return append(body, tag[:]...)
}

func decodeAnchor(k *mac.Keyed, b []byte) (anchor, error) {
	var a anchor
	const bodyLen = 4 + 4 + 4 + 8 + mac.Size
	if len(b) != bodyLen+mac.Size {
		return a, fmt.Errorf("%w: anchor %d bytes", ErrTamper, len(b))
	}
	body := b[:bodyLen]
	var seal mac.Tag
	copy(seal[:], b[bodyLen:])
	msg := make([]byte, 0, len(anchorPrefix)+bodyLen)
	msg = append(msg, anchorPrefix...)
	msg = append(msg, body...)
	if ok, _ := k.Verify(msg, seal); !ok {
		return a, fmt.Errorf("%w: anchor seal", ErrTamper)
	}
	if string(body[:4]) != anchorMagic || binary.LittleEndian.Uint32(body[4:]) != version {
		return a, fmt.Errorf("%w: anchor header", ErrTamper)
	}
	a.Term = binary.LittleEndian.Uint32(body[8:])
	a.Seq = binary.LittleEndian.Uint64(body[12:])
	copy(a.Tag[:], body[20:])
	return a, nil
}

// Log is an open write-ahead log. Safe for one appender plus any number
// of Tailer readers.
type Log struct {
	mu   sync.Mutex
	fs   *vfs.FS
	key  *mac.Keyed
	dir  string
	node *vfs.Node

	seq     uint64
	term    uint32
	prevTag mac.Tag
}

// Create initializes a fresh WAL (term 1, empty chain) under dir,
// replacing any previous log there.
func Create(fs *vfs.FS, dir string, key []byte) (*Log, error) {
	k, err := mac.New(key)
	if err != nil {
		return nil, err
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if err := fs.WriteFile(LogPath(dir), logHeader(), 0o644); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	l := &Log{fs: fs, key: k, dir: dir, term: 1}
	node, err := fs.Lookup(LogPath(dir))
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	l.node = node
	if err := l.writeAnchor(); err != nil {
		return nil, err
	}
	return l, nil
}

func logHeader() []byte {
	h := make([]byte, 0, headerSize)
	h = append(h, logMagic...)
	return binary.LittleEndian.AppendUint32(h, version)
}

func (l *Log) writeAnchor() error {
	b := encodeAnchor(l.key, anchor{Term: l.term, Seq: l.seq, Tag: l.prevTag})
	if err := l.fs.WriteFile(AnchorPath(l.dir), b, 0o644); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// Seq returns the sequence number of the newest appended record.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Term returns the log handle's director generation.
func (l *Log) Term() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.term
}

// Append assigns the next (seq, term), seals the record onto the chain,
// appends the frame atomically, and advances the anchor. The write is
// term-fenced: if the on-disk anchor has moved past this handle's state
// — a standby took over — the append is refused with ErrFenced, so a
// deposed director cannot extend the log behind its successor's back.
func (l *Log) Append(r *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ab, err := l.fs.ReadFile(AnchorPath(l.dir))
	if err != nil {
		return fmt.Errorf("durable: anchor: %w", err)
	}
	a, err := decodeAnchor(l.key, ab)
	if err != nil {
		return err
	}
	if a.Term > l.term || a.Seq != l.seq || !a.Tag.Equal(l.prevTag) {
		return fmt.Errorf("%w: anchor at term %d seq %d, handle at term %d seq %d",
			ErrFenced, a.Term, a.Seq, l.term, l.seq)
	}
	r.Seq = l.seq + 1
	r.Term = l.term
	body := EncodeRecord(r)
	if len(body) > MaxRecord {
		return fmt.Errorf("durable: record %d bytes exceeds MaxRecord", len(body))
	}
	tag := tagOf(l.key, l.prevTag, body)
	frame := make([]byte, 0, 4+len(body)+mac.Size)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	frame = append(frame, tag[:]...)
	if _, err := l.fs.Append(l.node, frame); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	l.seq++
	l.prevTag = tag
	return l.writeAnchor()
}

// BumpTerm advances the handle's term without writing a record; the
// next Append (conventionally a KindTakeover record) seals the new term
// into the chain and the anchor, fencing the previous term's handle.
func (l *Log) BumpTerm() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.term++
}

// LogInfo is the outcome of validating a log against its anchor.
type LogInfo struct {
	Records   []Record
	Torn      bool // a partial frame was found (and is safe to truncate)
	TornBytes int  // bytes past the last sealed record
	LastSeq   uint64
	LastTerm  uint32
	LastTag   mac.Tag
	validEnd  int // file offset of the first byte past the last sealed record
}

// frameInfo is one sealed frame's location and chained tag.
type frameInfo struct {
	off, end int
	tag      mac.Tag
	rec      *Record
}

// walkFrames verifies the chain record by record. It returns the sealed
// frames, torn-tail information, or ErrTamper if a complete frame fails
// its tag (or the records' seq/term/tick discipline breaks).
func walkFrames(k *mac.Keyed, b []byte) (frames []frameInfo, torn bool, validEnd int, err error) {
	if len(b) < headerSize || string(b[:4]) != logMagic ||
		binary.LittleEndian.Uint32(b[4:]) != version {
		return nil, false, 0, fmt.Errorf("%w: log header", ErrTamper)
	}
	off := headerSize
	var prev mac.Tag
	var seq uint64
	var term uint32 = 1
	var tick uint64
	for off < len(b) {
		if len(b)-off < 4 {
			return frames, true, off, nil
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		if n > MaxRecord {
			return nil, false, 0, fmt.Errorf("%w: frame %d declares %d bytes", ErrTamper, seq+1, n)
		}
		if len(b)-off-4 < n+mac.Size {
			return frames, true, off, nil
		}
		body := b[off+4 : off+4+n]
		var got mac.Tag
		copy(got[:], b[off+4+n:])
		want := tagOf(k, prev, body)
		if !want.Equal(got) {
			return nil, false, 0, fmt.Errorf("%w: record %d tag", ErrTamper, seq+1)
		}
		rec, derr := DecodeRecord(body)
		if derr != nil {
			return nil, false, 0, fmt.Errorf("%w: record %d body", ErrTamper, seq+1)
		}
		if rec.Seq != seq+1 || rec.Term < term || rec.Tick < tick {
			return nil, false, 0, fmt.Errorf("%w: record %d discipline (seq %d term %d tick %d)",
				ErrTamper, seq+1, rec.Seq, rec.Term, rec.Tick)
		}
		seq, term, tick = rec.Seq, rec.Term, rec.Tick
		end := off + 4 + n + mac.Size
		frames = append(frames, frameInfo{off: off, end: end, tag: want, rec: rec})
		prev = want
		off = end
	}
	return frames, false, off, nil
}

// ValidateBytes verifies a log image against its anchor image: the
// per-record chain, the seq/term/tick discipline, and freshness. On
// success the returned LogInfo carries every sealed record plus
// torn-tail information; the caller decides whether to truncate.
func ValidateBytes(key, logB, anchorB []byte) (*LogInfo, error) {
	k, err := mac.New(key)
	if err != nil {
		return nil, err
	}
	return validate(k, logB, anchorB)
}

func validate(k *mac.Keyed, logB, anchorB []byte) (*LogInfo, error) {
	frames, torn, validEnd, err := walkFrames(k, logB)
	if err != nil {
		return nil, err
	}
	if anchorB == nil {
		return nil, fmt.Errorf("%w: anchor missing", ErrReplay)
	}
	a, err := decodeAnchor(k, anchorB)
	if err != nil {
		return nil, err
	}
	info := &LogInfo{Torn: torn, TornBytes: len(logB) - validEnd, validEnd: validEnd, LastTerm: 1}
	for _, f := range frames {
		info.Records = append(info.Records, *f.rec)
	}
	n := len(frames)
	if n > 0 {
		last := frames[n-1]
		info.LastSeq = last.rec.Seq
		info.LastTerm = last.rec.Term
		info.LastTag = last.tag
	}
	switch {
	case a.Seq == info.LastSeq:
		// Anchor and chain agree; their tags must too.
		if !a.Tag.Equal(info.LastTag) {
			return nil, fmt.Errorf("%w: anchor tag at seq %d", ErrTamper, a.Seq)
		}
	case n > 0 && a.Seq == info.LastSeq-1:
		// Crash between frame append and anchor advance: the final
		// record is sealed but unanchored. Accept it iff the anchor
		// matches its predecessor; Open repairs the anchor.
		var prevTag mac.Tag
		if n > 1 {
			prevTag = frames[n-2].tag
		}
		if !a.Tag.Equal(prevTag) {
			return nil, fmt.Errorf("%w: anchor tag at seq %d", ErrTamper, a.Seq)
		}
	case a.Seq > info.LastSeq:
		return nil, fmt.Errorf("%w: anchor at seq %d, log ends at %d", ErrReplay, a.Seq, info.LastSeq)
	default: // a.Seq < LastSeq-1
		return nil, fmt.Errorf("%w: anchor at seq %d far behind log at %d", ErrReplay, a.Seq, info.LastSeq)
	}
	return info, nil
}

// Open validates an existing WAL, recovers a torn tail by truncating to
// the last sealed record (and normalizing the anchor), and returns a
// handle positioned to append. Tampered or stale logs are refused — the
// control plane fails loudly rather than replaying a lie.
func Open(fs *vfs.FS, dir string, key []byte) (*Log, *LogInfo, error) {
	k, err := mac.New(key)
	if err != nil {
		return nil, nil, err
	}
	logB, err := fs.ReadFile(LogPath(dir))
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	anchorB, _ := fs.ReadFile(AnchorPath(dir))
	info, err := validate(k, logB, anchorB)
	if err != nil {
		return nil, nil, err
	}
	node, err := fs.Lookup(LogPath(dir))
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	l := &Log{fs: fs, key: k, dir: dir, node: node,
		seq: info.LastSeq, term: info.LastTerm, prevTag: info.LastTag}
	if info.Torn {
		if err := fs.TruncateNode(node, uint32(info.validEnd)); err != nil {
			return nil, nil, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
	}
	// Normalize the anchor (repairs the one-behind crash window and the
	// torn tail in one stroke).
	if err := l.writeAnchor(); err != nil {
		return nil, nil, err
	}
	return l, info, nil
}

// Tear simulates a crash mid-append for fault injection: it cuts the
// log mid-way through its final frame and rolls the anchor back to the
// predecessor record — exactly the on-disk state a director that died
// between starting a frame and advancing the anchor leaves behind.
func Tear(fs *vfs.FS, dir string, key []byte) error {
	k, err := mac.New(key)
	if err != nil {
		return err
	}
	logB, err := fs.ReadFile(LogPath(dir))
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	frames, torn, _, err := walkFrames(k, logB)
	if err != nil {
		return err
	}
	if torn || len(frames) < 2 {
		return errors.New("durable: need two sealed records to tear")
	}
	last := frames[len(frames)-1]
	cut := last.off + (last.end-last.off)/2
	node, err := fs.Lookup(LogPath(dir))
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := fs.TruncateNode(node, uint32(cut)); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	prev := frames[len(frames)-2]
	b := encodeAnchor(k, anchor{Term: prev.rec.Term, Seq: prev.rec.Seq, Tag: prev.tag})
	if err := fs.WriteFile(AnchorPath(dir), b, 0o644); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// Frames returns best-effort frame spans (offset and total length,
// header and tag included) without verifying anything — fault-injection
// tooling uses it to aim bit flips at record bodies.
type Span struct{ Off, Len int }

func Frames(b []byte) []Span {
	var out []Span
	if len(b) < headerSize {
		return out
	}
	off := headerSize
	for off < len(b) {
		if len(b)-off < 4 {
			return out
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		if n > MaxRecord || len(b)-off-4 < n+mac.Size {
			return out
		}
		out = append(out, Span{Off: off, Len: 4 + n + mac.Size})
		off += 4 + n + mac.Size
	}
	return out
}

// Tailer incrementally reads sealed records as an appender grows the
// log — the standby's view. It verifies the same chain the validator
// does, stopping (without error) at an incomplete tail frame.
type Tailer struct {
	fs  *vfs.FS
	key *mac.Keyed
	dir string

	off     int
	seq     uint64
	prevTag mac.Tag
}

// NewTailer starts a tailer at the beginning of dir's log.
func NewTailer(fs *vfs.FS, dir string, key []byte) (*Tailer, error) {
	k, err := mac.New(key)
	if err != nil {
		return nil, err
	}
	return &Tailer{fs: fs, key: k, dir: dir, off: headerSize}, nil
}

// Tail returns every record sealed since the previous call. A chain
// break is ErrTamper; an incomplete tail frame just ends the batch.
func (t *Tailer) Tail() ([]Record, error) {
	b, err := t.fs.ReadFile(LogPath(t.dir))
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if t.off == headerSize {
		if len(b) < headerSize || string(b[:4]) != logMagic ||
			binary.LittleEndian.Uint32(b[4:]) != version {
			return nil, fmt.Errorf("%w: log header", ErrTamper)
		}
	}
	var out []Record
	for t.off < len(b) {
		if len(b)-t.off < 4 {
			break
		}
		n := int(binary.LittleEndian.Uint32(b[t.off:]))
		if n > MaxRecord {
			return out, fmt.Errorf("%w: frame %d declares %d bytes", ErrTamper, t.seq+1, n)
		}
		if len(b)-t.off-4 < n+mac.Size {
			break
		}
		body := b[t.off+4 : t.off+4+n]
		var got mac.Tag
		copy(got[:], b[t.off+4+n:])
		want := tagOf(t.key, t.prevTag, body)
		if !want.Equal(got) {
			return out, fmt.Errorf("%w: record %d tag", ErrTamper, t.seq+1)
		}
		rec, derr := DecodeRecord(body)
		if derr != nil {
			return out, fmt.Errorf("%w: record %d body", ErrTamper, t.seq+1)
		}
		if rec.Seq != t.seq+1 {
			return out, fmt.Errorf("%w: record %d seq %d", ErrTamper, t.seq+1, rec.Seq)
		}
		out = append(out, *rec)
		t.seq = rec.Seq
		t.prevTag = want
		t.off += 4 + n + mac.Size
	}
	return out, nil
}

// enc is a little-endian appender; dec is the matching bounds-checked
// reader (the same strict-codec pattern the checkpoint layer uses).
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.b = append(e.b, b...)
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

type dec struct {
	b    []byte
	off  int
	fail bool
}

func (d *dec) raw(n int) []byte {
	if d.fail || n < 0 || len(d.b)-d.off < n {
		d.fail = true
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) u8() uint8 {
	b := d.raw(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.raw(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.raw(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) bytes() []byte {
	n := int(d.u32())
	b := d.raw(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *dec) str() string { return string(d.bytes()) }
