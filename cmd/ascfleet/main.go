// ascfleet runs a fleet of copies of one authenticated SELF binary
// across a simulated multi-node cluster under the fleet director:
// round-robin placement, heartbeat failure detection, and failover via
// sealed-checkpoint migration to surviving nodes.
//
// Usage: ascfleet -key passphrase [-nodes N] [-procs N] [-stdin file]
//
//	[-enforcement kill|deny|audit] [-slice N] [-checkpoint-every N]
//	[-heartbeat N] [-miss N] [-kill-node ID -kill-tick T]
//	[-durable-dir path] [-standby] [-kill-director] [-events] exe
//
// The binary must have been processed by ascinstall with the same key;
// every node's kernel re-verifies it, and every checkpoint that moves
// between nodes is re-verified by the receiving kernel. -kill-node/-
// kill-tick crash a node at a virtual tick mid-run — the demonstration
// that the fleet completes anyway, warm from sealed checkpoints.
// -durable-dir makes the control plane durable (a sealed WAL of every
// director decision plus on-disk checkpoint stores under that directory
// of the cluster's filesystem); -standby attaches a warm standby that
// takes over on missed director heartbeats; -kill-director crashes the
// director itself at -kill-tick — with -standby the fleet survives,
// without it the run ends in a detected director loss. -events prints
// the control-plane timeline.
//
// Exit codes: 0 when every process exits clean; 123 when the director
// was lost with no standby attached (every unfinished process reports
// a director-lost error); 125 when any process was killed by its
// monitor; 2 on usage errors; 1 on platform errors or lost processes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"asc"
	"asc/internal/cluster"
	"asc/internal/core"
	"asc/internal/kernel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and argv, so the exit-code
// contract is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("ascfleet", flag.ContinueOnError)
	fl.SetOutput(stderr)
	key := fl.String("key", "", "MAC key passphrase (required; the cluster always enforces)")
	nodes := fl.Int("nodes", 3, "cluster width")
	procs := fl.Int("procs", 0, "fleet size (default: two per node)")
	stdinFile := fl.String("stdin", "", "file supplying standard input to every process")
	enfFlag := fl.String("enforcement", "kill", "violation response: kill, deny, or audit")
	slice := fl.Uint64("slice", 0, "virtual cycles each process advances per tick (default 4096)")
	ckptEvery := fl.Int64("checkpoint-every", 0, "seal a durable checkpoint every N cycles (default 4 slices; negative disables)")
	heartbeat := fl.Int("heartbeat", 1, "ticks between heartbeat rounds")
	miss := fl.Int("miss", 3, "consecutive missed heartbeats that declare a node failed")
	killNode := fl.Int("kill-node", 0, "crash this node mid-run (0: no crash)")
	killTick := fl.Int("kill-tick", 3, "virtual tick the -kill-node/-kill-director crash fires")
	durableDir := fl.String("durable-dir", "", "make the control plane durable under this cluster-filesystem directory (sealed WAL + on-disk checkpoint stores)")
	standby := fl.Bool("standby", false, "attach a warm standby director (requires -durable-dir)")
	killDirector := fl.Bool("kill-director", false, "crash the director at -kill-tick (requires -durable-dir)")
	events := fl.Bool("events", false, "print the director's control-plane timeline")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	usage := func() int {
		fmt.Fprintln(stderr, "usage: ascfleet -key passphrase [-nodes N] [-procs N] [-stdin file] [-enforcement kill|deny|audit] [-slice N] [-checkpoint-every N] [-heartbeat N] [-miss N] [-kill-node ID -kill-tick T] [-durable-dir path] [-standby] [-kill-director] [-events] exe")
		return 2
	}
	if fl.NArg() != 1 || *key == "" {
		return usage()
	}
	if (*standby || *killDirector) && *durableDir == "" {
		fmt.Fprintln(stderr, "ascfleet: -standby and -kill-director require -durable-dir")
		return 2
	}
	var enf kernel.Enforcement
	switch *enfFlag {
	case "kill":
		enf = kernel.EnforceKill
	case "deny":
		enf = kernel.EnforceDeny
	case "audit":
		enf = kernel.EnforceAudit
	default:
		fmt.Fprintf(stderr, "ascfleet: unknown -enforcement %q\n", *enfFlag)
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "ascfleet:", err)
		return 1
	}
	b, err := os.ReadFile(fl.Arg(0))
	if err != nil {
		return fatal(err)
	}
	exe, err := asc.ReadBinary(b)
	if err != nil {
		return fatal(err)
	}
	var stdin string
	if *stdinFile != "" {
		sb, err := os.ReadFile(*stdinFile)
		if err != nil {
			return fatal(err)
		}
		stdin = string(sb)
	}

	cfg := cluster.Config{
		Nodes:           *nodes,
		Key:             asc.NewKey(*key),
		Enforcement:     enf,
		SliceCycles:     *slice,
		CheckpointEvery: *ckptEvery,
		HeartbeatEvery:  *heartbeat,
		MissThreshold:   *miss,
		DurableDir:      *durableDir,
	}
	if *killNode != 0 && (*killNode < 1 || *killNode > *nodes) {
		fmt.Fprintf(stderr, "ascfleet: -kill-node %d out of range (cluster has %d nodes)\n", *killNode, *nodes)
		return 2
	}
	n := *procs
	if n <= 0 {
		n = 2 * *nodes
	}
	reqs := make([]core.RunRequest, n)
	for i := range reqs {
		reqs[i] = core.RunRequest{Exe: exe, Name: fmt.Sprintf("p%d", i), Stdin: stdin}
	}

	// The HA harness drives the fleet whenever the control plane is
	// durable (it is a bystander without faults); the plain director
	// covers the in-memory configuration.
	var rep *cluster.FleetReport
	var ha *cluster.HAReport
	if *durableDir != "" {
		h, err := cluster.NewHA(cluster.HAConfig{
			Cluster: cfg,
			Standby: *standby,
			OnTick: func(h *cluster.HA, tick int) {
				if tick != *killTick {
					return
				}
				if *killNode != 0 {
					h.Primary.CrashNode(cluster.NodeID(*killNode))
				}
				if *killDirector {
					h.CrashPrimary()
				}
			},
		})
		if err != nil {
			return fatal(err)
		}
		ha, err = h.Run(reqs)
		if err != nil {
			return fatal(err)
		}
		rep = ha.Fleet
	} else {
		if *killDirector {
			fmt.Fprintln(stderr, "ascfleet: -kill-director requires -durable-dir")
			return 2
		}
		if *killNode != 0 {
			cfg.OnTick = func(d *cluster.Director, tick int) {
				if tick == *killTick {
					d.CrashNode(cluster.NodeID(*killNode))
				}
			}
		}
		d, err := cluster.New(cfg)
		if err != nil {
			return fatal(err)
		}
		rep, err = d.Run(reqs)
		if err != nil {
			return fatal(err)
		}
	}

	if *events {
		for _, ev := range rep.Events {
			fmt.Fprintf(stderr, "tick %4d  %s\n", ev.Tick, ev.What)
		}
	}
	fmt.Fprintf(stderr, "ascfleet: %d procs on %d nodes, %d ticks, %d beats (%d missed), nodes down %v\n",
		n, *nodes, rep.Ticks, rep.Beats, rep.MissedBeats, rep.NodesDown)
	if ha != nil && ha.Term > 1 {
		fmt.Fprintf(stderr, "ascfleet: standby takeover at tick %d (detected in %d ticks, term %d): %d re-attached, %d re-placed, %d WAL records replayed\n",
			ha.TakeoverTick, ha.DetectTicks, ha.Term, ha.Reattached, ha.Restored, ha.WALRecords)
	}
	exit := 0
	for _, pr := range rep.Procs {
		switch {
		case pr.Err != nil:
			fmt.Fprintf(stderr, "ascfleet: %s: lost: %v\n", pr.Name, pr.Err)
			if errors.Is(pr.Err, cluster.ErrDirectorLost) {
				if exit == 0 || exit == 1 {
					exit = 123
				}
			} else {
				exit = 1
			}
		case pr.Result.Killed:
			fmt.Fprintf(stderr, "ascfleet: %s: killed by monitor: %s\n", pr.Name, pr.Result.Reason)
			if exit == 0 {
				exit = 125
			}
		default:
			fmt.Fprintf(stderr, "ascfleet: %s: node %d, exit %d, %d cycles, %d ckpts, %d failovers (%d warm, %d cold), %d cycles replayed\n",
				pr.Name, pr.Node, pr.Result.ExitCode, pr.Result.Cycles, pr.Checkpoints,
				pr.Failovers, pr.WarmRestarts, pr.ColdStarts, pr.ReplayCycles)
			if pr.Result.ExitCode != 0 && exit == 0 {
				exit = int(pr.Result.ExitCode) & 0x7f
			}
		}
	}
	// Every copy computes the same thing; print the first clean output.
	for _, pr := range rep.Procs {
		if pr.Err == nil && pr.Result != nil {
			io.WriteString(stdout, pr.Result.Output)
			break
		}
	}
	return exit
}
