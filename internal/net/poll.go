package net

// Readiness multiplexing for the poll/select syscall family. A PollEntry
// is the in-memory form of one pollfd after the kernel has resolved the
// guest fd to a network object; Network.Poll evaluates the whole set
// under one lock acquisition and parks the caller once — on the shared
// poller cond — instead of blocking per-socket. Readiness predicates
// mirror the blocking conditions of Accept/Recv/Send exactly, so
// "poll says ready" always means "the matching call will not park".

// Poll event bits, mirroring the POSIX pollfd constants the guest uses.
const (
	POLLIN   = 0x0001
	POLLOUT  = 0x0004
	POLLERR  = 0x0008
	POLLHUP  = 0x0010
	POLLNVAL = 0x0020
)

// PollEntry is one member of a poll set. Exactly one of Lis/Conn is set
// for socket fds; Static marks non-socket fds (files, pipes, console)
// that this kernel treats as always ready; Invalid marks fds that did
// not resolve at all (POLLNVAL). The In/Out/Invalid result fields are
// filled by Poll, masked by the corresponding Want bits.
type PollEntry struct {
	Lis     *Listener
	Conn    *Conn
	WantIn  bool
	WantOut bool
	Static  bool
	Invalid bool

	In  bool
	Out bool
}

// ready evaluates one entry with the network lock held, filling the
// result bits and reporting whether the entry counts toward Poll's
// return value.
func (e *PollEntry) ready() bool {
	e.In, e.Out = false, false
	switch {
	case e.Invalid:
		return true
	case e.Static:
		// Regular files, pipes and the console never block in this
		// kernel, so they are ready for whatever was asked.
		e.In, e.Out = e.WantIn, e.WantOut
	case e.Lis != nil:
		// Accept-readiness: a pending connection, or closed (Accept
		// returns ErrClosed without parking).
		e.In = e.WantIn && (len(e.Lis.backlog) > 0 || e.Lis.closed)
	case e.Conn != nil:
		c := e.Conn
		if c.closed {
			// Any operation returns ErrClosed immediately.
			e.In, e.Out = e.WantIn, e.WantOut
			break
		}
		// Recv-readiness: queued data, or EOF from a closed peer.
		e.In = e.WantIn && (len(c.inbox) > 0 || c.peer.closed)
		// Send-readiness: the exact complement of Send's park
		// condition — room in the peer inbox or an empty one — or a
		// closed peer (Send returns ErrReset without parking).
		e.Out = e.WantOut && (c.peer.closed ||
			c.peer.inboxBytes < connBuffer || len(c.peer.inbox) == 0)
	default:
		// No object at all: an unconnected socket. Never ready.
	}
	return e.In || e.Out
}

// Poll evaluates the entry set and returns how many entries are ready.
// If none are and block is true, the caller parks (releasing its gate
// slot) until a state change makes some entry ready. With block false,
// or a nil gate, Poll never parks — it returns the instantaneous count,
// zero included, keeping standalone programs hang-free.
func (n *Network) Poll(entries []PollEntry, block bool, g Gate) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		ready := 0
		for i := range entries {
			if entries[i].ready() {
				ready++
			}
		}
		if ready > 0 || !block || g == nil {
			return ready
		}
		n.pollers++
		n.wait(n.pollCond, g)
		n.pollers--
	}
}
