package vm

import (
	"testing"

	"asc/internal/isa"
)

func genTestMemory() *Memory {
	m := NewMemory(0x1000, 0x3000)
	m.Map(Segment{Name: "a", Start: 0x1000, End: 0x2000, Perms: PermRead | PermWrite | PermExec})
	m.Map(Segment{Name: "b", Start: 0x2000, End: 0x3000, Perms: PermRead | PermWrite})
	m.Map(Segment{Name: "ro", Start: 0x3000, End: 0x4000, Perms: PermRead})
	return m
}

func TestSpanGeneration(t *testing.T) {
	m := genTestMemory()
	if g, ok := m.SpanGeneration(0x1100, 16); !ok || g != 0 {
		t.Fatalf("fresh segment: got gen=%d ok=%v", g, ok)
	}
	// Spans crossing a segment boundary are not provable.
	if _, ok := m.SpanGeneration(0x1ff0, 32); ok {
		t.Fatal("cross-segment span must not resolve")
	}
	if _, ok := m.SpanGeneration(0x5000, 4); ok {
		t.Fatal("unmapped span must not resolve")
	}
	// Wraparound.
	if _, ok := m.SpanGeneration(0xfffffff0, 0x20); ok {
		t.Fatal("wrapping span must not resolve")
	}
}

func TestCPUStoreBumpsGeneration(t *testing.T) {
	m := genTestMemory()
	c := New(m, nil)
	g0, _ := m.SpanGeneration(0x2000, 4)
	c.Regs[isa.R1] = 0x2000
	c.Regs[isa.R2] = 0xdead
	if err := c.store(c.Regs[isa.R1], c.Regs[isa.R2], 4); err != nil {
		t.Fatal(err)
	}
	g1, _ := m.SpanGeneration(0x2000, 4)
	if g1 != g0+1 {
		t.Fatalf("store did not bump generation: %d -> %d", g0, g1)
	}
	// Byte store bumps too.
	if err := c.store(0x2004, 0x41, 1); err != nil {
		t.Fatal(err)
	}
	if g2, _ := m.SpanGeneration(0x2000, 4); g2 != g1+1 {
		t.Fatalf("byte store did not bump generation")
	}
	// The neighbouring segment is untouched.
	if ga, _ := m.SpanGeneration(0x1100, 4); ga != 0 {
		t.Fatalf("unrelated segment bumped: gen=%d", ga)
	}
	// A faulting store (read-only target) does not bump.
	gr0, _ := m.SpanGeneration(0x3000, 4)
	if err := c.store(0x3000, 1, 4); err == nil {
		t.Fatal("store to read-only segment must fault")
	}
	if gr1, _ := m.SpanGeneration(0x3000, 4); gr1 != gr0 {
		t.Fatal("faulting store bumped generation")
	}
}

func TestKernelVsUserWriteGenerations(t *testing.T) {
	m := genTestMemory()
	g0, _ := m.SpanGeneration(0x2100, 8)
	// Privileged kernel bookkeeping is invisible to the counters.
	if err := m.KernelWrite(0x2100, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.KernelStore32(0x2104, 99); err != nil {
		t.Fatal(err)
	}
	if g, _ := m.SpanGeneration(0x2100, 8); g != g0 {
		t.Fatal("KernelWrite bumped a generation")
	}
	// Application-visible data delivery bumps.
	if err := m.UserWrite(0x2100, []byte{5, 6}); err != nil {
		t.Fatal(err)
	}
	if g, _ := m.SpanGeneration(0x2100, 8); g != g0+1 {
		t.Fatal("UserWrite did not bump the generation")
	}
	// A UserWrite spanning two segments bumps both.
	if err := m.UserWrite(0x1ffe, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	ga, _ := m.SpanGeneration(0x1100, 4)
	gb, _ := m.SpanGeneration(0x2100, 8)
	if ga != 1 || gb != g0+2 {
		t.Fatalf("cross-segment UserWrite: got a=%d b=%d", ga, gb)
	}
}

func TestMapPreservesGeneration(t *testing.T) {
	m := genTestMemory()
	if err := m.UserWrite(0x2100, []byte{1}); err != nil {
		t.Fatal(err)
	}
	g0, _ := m.SpanGeneration(0x2100, 1)
	if g0 == 0 {
		t.Fatal("setup: generation not bumped")
	}
	// Remapping (brk-style growth) keeps the counter.
	m.Map(Segment{Name: "b", Start: 0x2000, End: 0x3800, Perms: PermRead | PermWrite})
	if g, ok := m.SpanGeneration(0x2100, 1); !ok || g != g0 {
		t.Fatalf("remap reset generation: got %d want %d", g, g0)
	}
}
