#!/bin/sh
# check.sh — the repository's full verification gate: formatting, vet,
# build, race-enabled tests, the kernel syscall benchmarks, and the
# machine-readable benchmark summary (BENCH_kernel.json).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== kernel syscall benchmarks =="
go test -run '^$' -bench 'SyscallPlain|SyscallVerified|VerifyAllocs' \
    -benchtime 2x ./internal/kernel

echo "== BENCH_kernel.json =="
go run ./cmd/ascbench -table 4 -json BENCH_kernel.json
echo "wrote BENCH_kernel.json"
