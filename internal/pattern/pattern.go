// Package pattern implements the Section 5.1 extension: system call
// argument patterns with application-supplied proof hints.
//
// A pattern is a glob with alternation, e.g. "/tmp/{foo,bar}*baz". Rather
// than teaching the kernel regular-expression matching, the untrusted
// application matches the argument itself and hands the kernel a *hint* —
// one integer per choice point: the branch taken at each alternation and
// the number of characters each '*' consumed. The kernel then verifies
// the match with a single linear scan and no backtracking, in the style
// of program checking / proof-carrying code. The paper's example: pattern
// "/tmp/{foo,bar}*baz" and argument "/tmp/foofoobaz" yield the hint
// (0, 3).
//
// Patterns destined for policies are stored as authenticated strings, so
// the MAC machinery guarantees an attacker cannot substitute patterns.
package pattern

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by Parse and Verify.
var (
	ErrBadPattern = errors.New("pattern: malformed pattern")
	ErrNoMatch    = errors.New("pattern: argument does not match")
	ErrBadHint    = errors.New("pattern: hint does not prove a match")
)

// tokKind is a pattern element kind.
type tokKind uint8

const (
	tokLit tokKind = iota + 1
	tokStar
	tokAlt
)

type token struct {
	kind tokKind
	lit  string   // tokLit
	alts []string // tokAlt branches
}

// Pattern is a compiled pattern.
type Pattern struct {
	src    string
	tokens []token
}

// String returns the pattern source.
func (p *Pattern) String() string { return p.src }

// Choices returns the number of choice points (hint length).
func (p *Pattern) Choices() int {
	n := 0
	for _, t := range p.tokens {
		if t.kind != tokLit {
			n++
		}
	}
	return n
}

// Parse compiles a pattern. Supported syntax: literal bytes, '*' (any
// run, including empty), and '{a,b,...}' alternation of literals.
func Parse(src string) (*Pattern, error) {
	p := &Pattern{src: src}
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			p.tokens = append(p.tokens, token{kind: tokLit, lit: lit.String()})
			lit.Reset()
		}
	}
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '*':
			flush()
			p.tokens = append(p.tokens, token{kind: tokStar})
		case '{':
			flush()
			end := strings.IndexByte(src[i:], '}')
			if end < 0 {
				return nil, fmt.Errorf("%w: unclosed '{' in %q", ErrBadPattern, src)
			}
			body := src[i+1 : i+end]
			alts := strings.Split(body, ",")
			if len(alts) < 2 {
				return nil, fmt.Errorf("%w: alternation needs >= 2 branches in %q", ErrBadPattern, src)
			}
			for _, a := range alts {
				if strings.ContainsAny(a, "*{}") {
					return nil, fmt.Errorf("%w: nested pattern in alternation %q", ErrBadPattern, src)
				}
			}
			p.tokens = append(p.tokens, token{kind: tokAlt, alts: alts})
			i += end
		case '}':
			return nil, fmt.Errorf("%w: stray '}' in %q", ErrBadPattern, src)
		default:
			lit.WriteByte(src[i])
		}
	}
	flush()
	return p, nil
}

// Match performs full (backtracking) matching on the application side and
// produces the proof hint for the kernel. This is the expensive half that
// the design keeps out of the kernel.
func (p *Pattern) Match(arg string) ([]int, error) {
	hint, ok := p.match(0, arg, nil)
	if !ok {
		return nil, fmt.Errorf("%w: %q vs %q", ErrNoMatch, arg, p.src)
	}
	return hint, nil
}

func (p *Pattern) match(ti int, rest string, hint []int) ([]int, bool) {
	if ti == len(p.tokens) {
		if rest == "" {
			return append([]int(nil), hint...), true
		}
		return nil, false
	}
	t := p.tokens[ti]
	switch t.kind {
	case tokLit:
		if !strings.HasPrefix(rest, t.lit) {
			return nil, false
		}
		return p.match(ti+1, rest[len(t.lit):], hint)
	case tokAlt:
		for bi, alt := range t.alts {
			if strings.HasPrefix(rest, alt) {
				if h, ok := p.match(ti+1, rest[len(alt):], append(hint, bi)); ok {
					return h, ok
				}
			}
		}
		return nil, false
	case tokStar:
		for n := 0; n <= len(rest); n++ {
			if h, ok := p.match(ti+1, rest[n:], append(hint, n)); ok {
				return h, ok
			}
		}
		return nil, false
	}
	return nil, false
}

// Verify is the kernel-side check: a single linear scan over the pattern
// and argument directed by the hint. It never backtracks; its cost is
// O(len(pattern) + len(arg)). It reports the number of bytes examined so
// the cycle model can charge for them.
func (p *Pattern) Verify(arg string, hint []int) (scanned int, err error) {
	hi := 0
	pos := 0
	for _, t := range p.tokens {
		switch t.kind {
		case tokLit:
			end := pos + len(t.lit)
			if end > len(arg) || arg[pos:end] != t.lit {
				return scanned, ErrBadHint
			}
			scanned += len(t.lit)
			pos = end
		case tokAlt:
			if hi >= len(hint) {
				return scanned, fmt.Errorf("%w: hint too short", ErrBadHint)
			}
			bi := hint[hi]
			hi++
			if bi < 0 || bi >= len(t.alts) {
				return scanned, fmt.Errorf("%w: branch %d out of range", ErrBadHint, bi)
			}
			alt := t.alts[bi]
			end := pos + len(alt)
			if end > len(arg) || arg[pos:end] != alt {
				return scanned, ErrBadHint
			}
			scanned += len(alt)
			pos = end
		case tokStar:
			if hi >= len(hint) {
				return scanned, fmt.Errorf("%w: hint too short", ErrBadHint)
			}
			n := hint[hi]
			hi++
			if n < 0 || pos+n > len(arg) {
				return scanned, fmt.Errorf("%w: star length %d out of range", ErrBadHint, n)
			}
			scanned += n
			pos += n
		}
	}
	if hi != len(hint) {
		return scanned, fmt.Errorf("%w: hint too long", ErrBadHint)
	}
	if pos != len(arg) {
		return scanned, ErrBadHint
	}
	return scanned, nil
}

// EncodeHint serializes a hint as little-endian uint16s for transport in
// an additional system call argument.
func EncodeHint(hint []int) ([]byte, error) {
	out := make([]byte, 2*len(hint))
	for i, h := range hint {
		if h < 0 || h > 0xffff {
			return nil, fmt.Errorf("pattern: hint value %d out of range", h)
		}
		out[2*i] = byte(h)
		out[2*i+1] = byte(h >> 8)
	}
	return out, nil
}

// DecodeHint parses a serialized hint.
func DecodeHint(b []byte) ([]int, error) {
	if len(b)%2 != 0 {
		return nil, fmt.Errorf("pattern: hint length %d not even", len(b))
	}
	out := make([]int, len(b)/2)
	for i := range out {
		out[i] = int(b[2*i]) | int(b[2*i+1])<<8
	}
	return out, nil
}
