// Package sched schedules guest processes across a pool of worker
// goroutines — the SMP execution layer for the authenticated-system-call
// kernel.
//
// The kernel verifies one system call per trap on whatever goroutine
// drives the process, so running a fleet of N guest processes
// concurrently needs no kernel-side scheduler: each worker picks the
// next unstarted process and drives it to completion with
// kernel.Kernel.Run. Correctness rests on the kernel's concurrency
// contract (see kernel.Kernel.Run): all cross-process state — VFS,
// audit ring, pattern cache, PID table, MAC scratch — is synchronized,
// while per-process verification state lives in kernel.Process and is
// touched only by the goroutine driving that process.
//
// # Determinism contract
//
// Per-process results are deterministic: a guest program's cycle count,
// system-call trace, verification outcome, and output depend only on
// its binary and input, never on how many workers ran the fleet or how
// runs interleaved. What is NOT deterministic is the interleaving:
// audit-ring ordering across processes, and which worker ran which
// process. Benchmarks that must emit byte-stable artifacts therefore
// report the modeled makespan (Makespan) computed from the
// deterministic per-process cycle counts, not wall-clock time.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"asc/internal/kernel"
)

// Pool runs indexed work items on a bounded number of worker
// goroutines. The zero value uses GOMAXPROCS workers.
type Pool struct {
	// Workers bounds concurrency. Zero or negative means GOMAXPROCS.
	Workers int
}

// workers resolves the effective worker count (always ≥ 1).
func (p Pool) workers() int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Do invokes fn(i) for every i in [0, n), distributing indices across
// the pool's workers. Indices are claimed dynamically (an atomic
// counter), so uneven item costs balance automatically. Do returns
// when every invocation has returned. With one worker the loop runs
// inline on the calling goroutine, byte-for-byte equivalent to a
// serial for loop.
func (p Pool) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Job is one guest process to drive to completion.
type Job struct {
	Kern      *kernel.Kernel
	Proc      *kernel.Process
	MaxCycles uint64
}

// Result reports the outcome of one Job. The process's own state
// (exit code, kill reason, cycle count) lives on Job.Proc; Err is the
// driver-level failure, if any (cycle-limit exhaustion, VM fault).
type Result struct {
	Err error
}

// Run drives every job to completion across the pool and returns one
// Result per job, index-aligned. A failing job does not abort its
// siblings: each Result carries its own error. Jobs may share a
// kernel (the common case: one machine, many processes) or use
// distinct kernels; each Process must appear in at most one job.
func (p Pool) Run(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	p.Do(len(jobs), func(i int) {
		j := jobs[i]
		results[i] = Result{Err: j.Kern.Run(j.Proc, j.MaxCycles)}
	})
	return results
}

// Makespan models the completion time, in guest cycles, of running
// the given per-process cycle counts on w workers under the pool's
// round-robin static assignment: process i runs on lane i mod w, and
// the makespan is the busiest lane's total. With w=1 this is the
// serial sum; with w ≥ len(cycles) it is the largest single count.
//
// The model is exact for the artifact benchmarks (homogeneous fleets
// divide evenly) and is what BENCH_smp.json reports, because wall
// clock on a loaded or single-core host is noise while per-process
// cycle counts are deterministic.
func Makespan(cycles []uint64, w int) uint64 {
	if len(cycles) == 0 {
		return 0
	}
	if w < 1 {
		w = 1
	}
	if w > len(cycles) {
		w = len(cycles)
	}
	lanes := make([]uint64, w)
	for i, c := range cycles {
		lanes[i%w] += c
	}
	var max uint64
	for _, l := range lanes {
		if l > max {
			max = l
		}
	}
	return max
}
