// migrate.go extends the sealed-checkpoint trust argument across nodes:
// a Migration is the envelope a checkpoint travels in when a process
// moves between kernels. The envelope wraps the inner sealed checkpoint
// with the facts that make a cross-node restore safe and binds them all
// under a second, domain-separated CMAC:
//
//   - the *epoch* the checkpoint was sealed at, repeated in the envelope
//     so tooling can route the blob without opening the inner seal (the
//     inner seal remains the trusted copy — Open cross-checks the two);
//   - the *source and destination node identities*, so an envelope
//     exported for node B cannot be imported on node C (a node-spoof):
//     the destination check runs before any inner state is touched; and
//   - the *process name*, so the importer can place the restored
//     process without trusting out-of-band metadata.
//
// What the envelope deliberately does NOT solve is replay: both seals
// verify if the same genuine envelope is delivered twice. Replay is a
// liveness-layer decision — whether the previous owner of this epoch is
// dead — and lives in the cluster's fence (trusted state held outside
// the blob, like ckpt.Store's epochs), not in the cryptography.
package ckpt

import (
	"errors"
	"fmt"

	"asc/internal/mac"
)

// Envelope layout: magic, version, epoch, src, dst, name, inner blob,
// trailing CMAC over everything before it.
const (
	migMagic      = "ASCM"
	migVersion    = 1
	migHeaderSize = 4 + 4 + 8 + 4 + 4
	minMigBlob    = migHeaderSize + 4 + 4 + mac.Size
)

// migPrefix domain-separates the envelope seal from the checkpoint seal
// and the program tag.
var migPrefix = []byte("asc/ckpt/mig/v1\x00")

// ErrNode: the envelope is bound to a different destination node — an
// import under the wrong node identity (node-spoof).
var ErrNode = errors.New("ckpt: migration bound to a different node")

// ReasonNode is the canonical reason string for ErrNode.
const ReasonNode = "node-mismatch"

// Migration is one cross-node transfer of a sealed checkpoint.
type Migration struct {
	Epoch uint64
	Src   uint32 // exporting node
	Dst   uint32 // the only node allowed to import
	Name  string // process name
	Ckpt  []byte // the inner sealed checkpoint blob
}

// SealMigration serializes the envelope and appends its CMAC.
func SealMigration(k *mac.Keyed, m *Migration) []byte {
	b := encodeMigration(m)
	msg := make([]byte, 0, len(migPrefix)+len(b))
	msg = append(msg, migPrefix...)
	msg = append(msg, b...)
	tag, _ := k.Sum(msg)
	return append(b, tag[:]...)
}

// OpenMigration verifies the envelope seal and decodes it. Checks run
// in trust order: length, envelope seal, payload decode, and finally
// the epoch cross-check against the inner sealed header — a mismatch
// means the envelope was assembled around the wrong checkpoint, which a
// genuine exporter never does.
func OpenMigration(k *mac.Keyed, blob []byte) (*Migration, error) {
	if len(blob) < minMigBlob {
		return nil, fmt.Errorf("%w (%d bytes)", ErrTruncated, len(blob))
	}
	body := blob[:len(blob)-mac.Size]
	var tag mac.Tag
	copy(tag[:], blob[len(blob)-mac.Size:])
	msg := make([]byte, 0, len(migPrefix)+len(body))
	msg = append(msg, migPrefix...)
	msg = append(msg, body...)
	if ok, _ := k.Verify(msg, tag); !ok {
		return nil, ErrSeal
	}
	m, err := DecodeMigration(body)
	if err != nil {
		return nil, err
	}
	inner, err := SealedEpoch(m.Ckpt)
	if err != nil {
		return nil, fmt.Errorf("%w: inner checkpoint: %v", ErrMalformed, err)
	}
	if inner != m.Epoch {
		return nil, fmt.Errorf("%w: envelope epoch %d, inner %d", ErrMalformed, m.Epoch, inner)
	}
	return m, nil
}

// DecodeMigration parses an *unsealed* envelope (a blob without its
// trailing MAC). Like DecodeState it performs no authentication —
// OpenMigration verifies the seal first — but is safe on arbitrary
// input: every length is bounds-checked before allocation, so the
// fuzzer can feed it garbage without panics or memory blowups.
func DecodeMigration(b []byte) (*Migration, error) {
	d := dec{b: b}
	var m Migration
	if string(d.raw(4)) != migMagic {
		return nil, fmt.Errorf("%w: bad migration magic", ErrMalformed)
	}
	if v := d.u32(); v != migVersion && !d.fail {
		return nil, fmt.Errorf("%w: migration version %d", ErrMalformed, v)
	}
	m.Epoch = d.u64()
	m.Src = d.u32()
	m.Dst = d.u32()
	m.Name = d.str()
	m.Ckpt = d.bytes()
	if d.fail {
		return nil, fmt.Errorf("%w: short migration payload", ErrMalformed)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing migration bytes", ErrMalformed, len(d.b)-d.off)
	}
	return &m, nil
}

// encodeMigration serializes the envelope header and payload.
func encodeMigration(m *Migration) []byte {
	var e enc
	e.raw(append([]byte(nil), migMagic...))
	e.u32(migVersion)
	e.u64(m.Epoch)
	e.u32(m.Src)
	e.u32(m.Dst)
	e.str(m.Name)
	e.bytes(m.Ckpt)
	return e.b
}
