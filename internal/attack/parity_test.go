package attack

import (
	"testing"

	"asc/internal/fault"
	"asc/internal/kernel"
)

// freshInjector returns a kernel option that installs a NEW engine of
// the given class into each kernel the lab builds, so every experiment
// sees the same deterministic fault regardless of battery order.
func freshInjector(class fault.Class, seed uint64) kernel.Option {
	return func(k *kernel.Kernel) {
		kernel.WithInjector(fault.NewEngine(class, seed))(k)
	}
}

// TestBatteryFaultParity runs the full attack battery inside a fault
// campaign, with the verify cache disabled and enabled: every experiment
// must produce the identical outcome (blocked/allowed AND reason) in
// both configurations. This is the cache-soundness claim of PR 1
// extended to a platform under active fault injection.
func TestBatteryFaultParity(t *testing.T) {
	key := []byte("0123456789abcdef")
	run := func(class fault.Class, seed uint64, cached bool) []Outcome {
		t.Helper()
		lab, err := NewLab(key)
		if err != nil {
			t.Fatal(err)
		}
		if class != "" {
			lab.KernelOpts = append(lab.KernelOpts, freshInjector(class, seed))
		}
		if cached {
			lab.KernelOpts = append(lab.KernelOpts, kernel.WithVerifyCache())
		}
		outs, err := lab.Battery()
		if err != nil {
			t.Fatalf("%s battery: %v", class, err)
		}
		return outs
	}

	// Control arm: the unperturbed battery fixes which experiments are
	// expected to be blocked (the baseline run and the
	// no-countermeasure Frankenstein arm legitimately succeed).
	control := run("", 0, false)

	classes := append(fault.Classes(), fault.Class("")) // "" = no-injector arm
	for _, class := range classes {
		for _, seed := range []uint64{1, 99} {
			name := "no-fault"
			if class != "" {
				name = string(class)
			}
			plain := run(class, seed, false)
			cached := run(class, seed, true)
			if len(plain) != len(cached) || len(plain) != len(control) {
				t.Fatalf("%s seed %d: battery sizes differ", name, seed)
			}
			for i := range plain {
				if plain[i].Blocked != cached[i].Blocked || plain[i].Reason != cached[i].Reason {
					t.Errorf("%s seed %d: %s diverges: uncached %+v, cached %+v",
						name, seed, plain[i].Name, plain[i], cached[i])
				}
				// An injected fault may only tighten the platform: an
				// attack blocked without faults must stay blocked.
				if control[i].Blocked && !plain[i].Blocked {
					t.Errorf("%s seed %d: fault unblocked attack %s", name, seed, plain[i].Name)
				}
			}
		}
	}
}
