// paging.go adds an optional demand-paged region to the flat segmented
// address space: a page table over a fixed arena with per-page
// mapped/present/protection bits, and a PageFaulter hook through which
// the kernel services page faults (fault-in, eviction, and — the point
// of the exercise — verification of pages coming back from the swap
// device). Addresses outside the arena keep the flat fast path
// untouched: a memory with no page table pays two compares per access.
package vm

import "encoding/binary"

// Page geometry. 4 KiB pages: one page MAC is 256 AES blocks.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// PageFlags is the per-page protection and state word. The low three
// bits alias the segment permission bits (PermRead/PermWrite/PermExec),
// so a protection check is a single mask compare.
type PageFlags uint8

// Per-page flag bits.
const (
	PageRead  = PageFlags(PermRead)
	PageWrite = PageFlags(PermWrite)
	PageExec  = PageFlags(PermExec)
	// PageMapped: the page belongs to an mmap region.
	PageMapped PageFlags = 1 << 3
	// PagePresent: the page's bytes are resident in memory (a mapped,
	// non-present page lives on the swap device or is zero-fill-on-demand).
	PagePresent PageFlags = 1 << 4
	// PageAccessed is set on every access; the clock eviction policy
	// clears it to find second-chance victims.
	PageAccessed PageFlags = 1 << 5
	// PageDirty is set on every write access.
	PageDirty PageFlags = 1 << 6
)

// PageProtMask selects the protection bits of a flags word.
const PageProtMask = PageRead | PageWrite | PageExec

// PageFaulter services page faults for one address space. PageFault is
// invoked when an access to [addr, addr+n) touches mapped pages that are
// not present; it must make every mapped page of the span present (or
// return an error, which aborts the access). access carries the
// attempted permission bits (PermRead/PermWrite/PermExec; 0 for a
// privileged kernel access). The faulter reads and writes page bytes
// through RawRead/RawWrite, which bypass the paging check.
type PageFaulter interface {
	PageFault(addr, n uint32, access uint8) error
}

// PageTable maps a fixed arena [base, base+len(flags)*PageSize) to
// per-page flags. It covers only the mmap arena; the image, heap, and
// stack segments stay resident and are never consulted here.
type PageTable struct {
	base  uint32
	flags []PageFlags
}

// NewPageTable creates a table of npages unmapped pages starting at the
// page-aligned base.
func NewPageTable(base uint32, npages int) *PageTable {
	return &PageTable{base: base &^ (PageSize - 1), flags: make([]PageFlags, npages)}
}

// Base returns the arena's first address.
func (t *PageTable) Base() uint32 { return t.base }

// End returns the address one past the arena.
func (t *PageTable) End() uint32 { return t.base + uint32(len(t.flags))<<PageShift }

// NumPages returns the arena capacity in pages.
func (t *PageTable) NumPages() int { return len(t.flags) }

// Flags returns page i's flags word.
func (t *PageTable) Flags(i int) PageFlags { return t.flags[i] }

// SetFlags replaces page i's flags word.
func (t *PageTable) SetFlags(i int, f PageFlags) { t.flags[i] = f }

// Index returns the page index covering addr, false outside the arena.
func (t *PageTable) Index(addr uint32) (int, bool) {
	if addr < t.base || addr >= t.End() {
		return 0, false
	}
	return int((addr - t.base) >> PageShift), true
}

// PageAddr returns page i's first address.
func (t *PageTable) PageAddr(i int) uint32 { return t.base + uint32(i)<<PageShift }

// Page-table record encoding: the checkpointable form of the table plus
// the kernel's per-page swap generation counters. The record is embedded
// in the sealed checkpoint state, so the decoder must be safe on
// arbitrary bytes (the seal is checked by the caller, the structure
// here).
const (
	ptMagic   = "ASPT"
	ptVersion = 1
)

// EncodePageTable serializes the table and the parallel per-page swap
// generation counters.
func EncodePageTable(t *PageTable, gens []uint64) []byte {
	n := len(t.flags)
	b := make([]byte, 0, 4+4+4+4+n+8*len(gens))
	b = append(b, ptMagic...)
	b = binary.LittleEndian.AppendUint32(b, ptVersion)
	b = binary.LittleEndian.AppendUint32(b, t.base)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	for _, f := range t.flags {
		b = append(b, byte(f))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(gens)))
	for _, g := range gens {
		b = binary.LittleEndian.AppendUint64(b, g)
	}
	return b
}

// DecodePageTable parses an encoded page-table record. Every length is
// bounds-checked against the remaining bytes before allocation, so
// arbitrary input fails cleanly instead of panicking (fuzzed).
func DecodePageTable(b []byte) (*PageTable, []uint64, error) {
	fail := func(msg string) (*PageTable, []uint64, error) {
		return nil, nil, &Fault{Msg: "page table record: " + msg}
	}
	if len(b) < 16 {
		return fail("truncated header")
	}
	if string(b[:4]) != ptMagic {
		return fail("bad magic")
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != ptVersion {
		return fail("unknown version")
	}
	base := binary.LittleEndian.Uint32(b[8:])
	if base&(PageSize-1) != 0 {
		return fail("unaligned base")
	}
	n := int(binary.LittleEndian.Uint32(b[12:]))
	rest := b[16:]
	if n < 0 || n > len(rest) {
		return fail("flag count exceeds payload")
	}
	if uint64(base)+uint64(n)<<PageShift > 1<<32 {
		return fail("arena exceeds the address space")
	}
	t := &PageTable{base: base, flags: make([]PageFlags, n)}
	for i := 0; i < n; i++ {
		t.flags[i] = PageFlags(rest[i])
	}
	rest = rest[n:]
	if len(rest) < 4 {
		return fail("truncated generation count")
	}
	ng := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if ng < 0 || ng*8 > len(rest) {
		return fail("generation count exceeds payload")
	}
	if ng != n {
		return fail("generation count does not match page count")
	}
	gens := make([]uint64, ng)
	for i := 0; i < ng; i++ {
		gens[i] = binary.LittleEndian.Uint64(rest[i*8:])
	}
	if len(rest) != ng*8 {
		return fail("trailing bytes")
	}
	return t, gens, nil
}

// SetPaging installs (or, with nil, removes) the page table and its
// fault handler over the memory's mmap arena.
func (m *Memory) SetPaging(t *PageTable, pager PageFaulter) {
	m.pt = t
	m.pager = pager
}

// Paging returns the installed page table (nil without paged mode).
func (m *Memory) Paging() *PageTable { return m.pt }

// pageCheck validates an access to [addr, addr+n) against the page
// table: outside the arena it is free; inside, every page must be
// mapped, satisfy the attempted permissions (perm 0 is a privileged
// kernel access: mapped is enough), and be present — non-present pages
// are faulted in through the PageFaulter. On success the touched pages
// are marked accessed (and dirty on writes).
func (m *Memory) pageCheck(addr, n uint32, perm uint8) error {
	if m.pt == nil || n == 0 {
		return nil
	}
	end := addr + n
	if end < addr {
		return &Fault{Addr: addr, Msg: "paged access wraps the address space"}
	}
	if end <= m.pt.base || addr >= m.pt.End() {
		return nil
	}
	if addr < m.pt.base || end > m.pt.End() {
		return &Fault{Addr: addr, Msg: "access crosses the mmap arena boundary"}
	}
	first := int((addr - m.pt.base) >> PageShift)
	last := int((end - 1 - m.pt.base) >> PageShift)
	need := PageFlags(perm)
	missing := false
	for i := first; i <= last; i++ {
		f := m.pt.flags[i]
		if f&PageMapped == 0 {
			return &Fault{Addr: m.pt.PageAddr(i), Msg: "page fault on unmapped page"}
		}
		if f&need != need {
			return &Fault{Addr: m.pt.PageAddr(i), Msg: "page protection violation"}
		}
		if f&PagePresent == 0 {
			missing = true
		}
	}
	if missing {
		if m.pager == nil {
			return &Fault{Addr: addr, Msg: "page fault with no pager installed"}
		}
		if err := m.pager.PageFault(addr, n, perm); err != nil {
			return err
		}
		for i := first; i <= last; i++ {
			if m.pt.flags[i]&PagePresent == 0 {
				return &Fault{Addr: m.pt.PageAddr(i), Msg: "pager did not deliver the page"}
			}
		}
	}
	mark := PageAccessed
	if perm&PermWrite != 0 {
		mark |= PageDirty
	}
	for i := first; i <= last; i++ {
		m.pt.flags[i] |= mark
	}
	return nil
}

// RawRead returns an aliasing view of [addr, addr+n) with no permission
// or paging checks: the accessor the pager itself (and checkpoint
// capture) uses to move page bytes without recursing into the fault
// path. Callers must not hold the slice across mutations.
func (m *Memory) RawRead(addr, n uint32) ([]byte, error) {
	if !m.inBounds(addr, n) {
		return nil, &Fault{Addr: addr, Msg: "raw read out of bounds"}
	}
	off := addr - m.base
	return m.data[off : off+n], nil
}

// RawWrite copies b to addr with no permission or paging checks and no
// write-fault injection; the pager's page delivery path.
func (m *Memory) RawWrite(addr uint32, b []byte) error {
	if !m.inBounds(addr, uint32(len(b))) {
		return &Fault{Addr: addr, Msg: "raw write out of bounds"}
	}
	copy(m.data[addr-m.base:], b)
	return nil
}
