module asc

go 1.24
