//go:build race

package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"asc/internal/ckpt"
)

// TestSuperviseCheckpointWithSiblings hammers the checkpoint path under
// the race detector: one supervised process seals checkpoints on a tight
// cadence (and warm-restarts off them) while seven siblings run through
// the worker pool on the same kernel. Checkpointing reads process and
// kernel state that the scheduler also touches; this run must be
// race-clean and must not perturb the siblings' results.
func TestSuperviseCheckpointWithSiblings(t *testing.T) {
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, runAllLoopSrc), "loop")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Exec(exe, "loop", "")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Killed || ref.Output != "done" {
		t.Fatalf("clean reference run failed: %+v", ref)
	}
	budget := ref.Cycles * 4 / 5

	const siblings = 7
	reqs := make([]RunRequest, siblings)
	for i := range reqs {
		reqs[i] = RunRequest{Exe: exe, Name: "sib"}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var stats *SuperviseStats
	var supErr error
	go func() {
		defer wg.Done()
		stats, supErr = s.Supervise(exe, "loop", "", SuperviseConfig{
			MaxRestarts:     8,
			BackoffBase:     100,
			MaxCycles:       budget,
			CheckpointEvery: budget / 8,
		})
	}()
	res, runErr := s.RunAll(reqs, 4)
	wg.Wait()

	if supErr != nil {
		t.Fatalf("Supervise: %v", supErr)
	}
	if runErr != nil {
		t.Fatalf("RunAll: %v", runErr)
	}
	if stats.GaveUp || stats.Final.Output != "done" {
		t.Fatalf("supervised process did not recover: %+v", stats)
	}
	if stats.Checkpoints == 0 || stats.WarmRestarts == 0 {
		t.Errorf("checkpoints=%d warm=%d, want both > 0", stats.Checkpoints, stats.WarmRestarts)
	}
	for i, r := range res {
		if r.Err != nil || r.Killed || r.Output != "done" {
			t.Errorf("sibling %d perturbed: err=%v killed=%v output=%q", i, r.Err, r.Killed, r.Output)
		}
		if r.Cycles != ref.Cycles || r.Verified != ref.Verified {
			t.Errorf("sibling %d diverged from quiet baseline: cycles %d/%d verified %d/%d",
				i, r.Cycles, ref.Cycles, r.Verified, ref.Verified)
		}
	}
}

// TestSuperviseFallbackChainSharedStore exercises the fallback chain
// while other goroutines continuously read the same checkpoint store —
// the shape a fleet director takes when it inspects a process's durable
// chain (NewestEpoch for migration routing, Chain for placement
// decisions) while the supervisor is still appending to it. The newest
// entry is served corrupted, so every warm restart walks the chain
// under concurrent readers. Must be race-clean, and the outcome must
// match the quiet single-goroutine fallback test: recovery from the
// older checkpoint, seal rejections on the tampered one, no cold start.
func TestSuperviseFallbackChainSharedStore(t *testing.T) {
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, runAllLoopSrc), "loop")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Exec(exe, "loop", "")
	if err != nil {
		t.Fatal(err)
	}
	budget := ref.Cycles * 4 / 5

	store := ckpt.NewStore()
	// Tamper must be installed before the store is shared; it serves the
	// newest entry corrupted on every read, forcing chain walks.
	store.Tamper = func(chain []ckpt.Entry, i int) []byte {
		if i != 0 {
			return chain[i].Blob
		}
		mut := append([]byte(nil), chain[i].Blob...)
		mut[len(mut)/2] ^= 0x04
		return mut
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				newest := store.NewestEpoch()
				for _, ent := range store.Chain() {
					if ent.Epoch > newest {
						// Chain is newest-first and NewestEpoch was read
						// before: a later epoch can only have been
						// appended since, never invented.
						_ = store.Len()
						break
					}
				}
			}
		}()
	}

	stats, err := s.Supervise(exe, "loop", "", SuperviseConfig{
		MaxRestarts:     8,
		BackoffBase:     100,
		MaxCycles:       budget,
		CheckpointEvery: budget / 3,
		Checkpoints:     store,
	})
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.GaveUp || stats.Final.Output != "done" {
		t.Fatalf("did not recover: %+v", stats)
	}
	if stats.CkptRejected[ckpt.ReasonSeal] == 0 {
		t.Errorf("rejections = %v, want seal-mismatch", stats.CkptRejected)
	}
	if stats.WarmRestarts < 1 {
		t.Errorf("warm restarts = %d, want >= 1 (fallback to older checkpoint)", stats.WarmRestarts)
	}
	if stats.ColdStarts != 0 {
		t.Errorf("cold starts = %d, want 0 (older checkpoint was intact)", stats.ColdStarts)
	}
}
