package captrack

import (
	"errors"
	"testing"

	"asc/internal/mac"
	"asc/internal/vm"
)

func setup(t *testing.T, capacity int) (*Tracker, *vm.Memory) {
	t.Helper()
	key, err := mac.New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	mem := vm.NewMemory(0x1000, 64<<10)
	tr, err := New(key, mem, 0x2000, capacity)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr, mem
}

func TestTrackLifecycle(t *testing.T) {
	tr, mem := setup(t, 8)
	// Nothing tracked initially.
	if err := tr.Check(mem, 3); !errors.Is(err, ErrNotTracked) {
		t.Errorf("Check(3) on empty set = %v", err)
	}
	// open -> add; read's policy check passes.
	if err := tr.Add(mem, 3); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(mem, 3); err != nil {
		t.Errorf("Check(3) = %v", err)
	}
	// Multiple active descriptors (the paper's point against the naive
	// single-slot design).
	if err := tr.Add(mem, 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(mem, 5); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(mem, 4); err != nil {
		t.Errorf("Check(4) = %v", err)
	}
	// close -> remove; further use is rejected.
	if err := tr.Remove(mem, 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(mem, 4); !errors.Is(err, ErrNotTracked) {
		t.Errorf("Check(closed 4) = %v", err)
	}
	// Reuse after close (dup/open can return the same number again).
	if err := tr.Add(mem, 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(mem, 4); err != nil {
		t.Errorf("Check(reused 4) = %v", err)
	}
	if err := tr.Remove(mem, 99); !errors.Is(err, ErrNotTracked) {
		t.Errorf("Remove(untracked) = %v", err)
	}
}

func TestCapacity(t *testing.T) {
	tr, mem := setup(t, 2)
	if err := tr.Add(mem, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(mem, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(mem, 3); !errors.Is(err, ErrFull) {
		t.Errorf("Add beyond capacity = %v", err)
	}
	// Idempotent add of an existing fd is fine even at capacity.
	if err := tr.Add(mem, 1); err != nil {
		t.Errorf("re-Add(1) = %v", err)
	}
	if _, err := New(nil, nil, 0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestTamperDetected(t *testing.T) {
	tr, mem := setup(t, 4)
	if err := tr.Add(mem, 3); err != nil {
		t.Fatal(err)
	}
	// The application forges an entry: sets fds[1]=7 and count=2.
	if err := mem.KernelStore32(0x2000, 2); err != nil {
		t.Fatal(err)
	}
	if err := mem.KernelStore32(0x2000+8, 7); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(mem, 7); !errors.Is(err, ErrTampered) {
		t.Errorf("forged set = %v, want ErrTampered", err)
	}
}

func TestReplayDetected(t *testing.T) {
	tr, mem := setup(t, 4)
	if err := tr.Add(mem, 3); err != nil {
		t.Fatal(err)
	}
	// Snapshot state while fd 3 is tracked.
	snapshot, err := mem.KernelRead(0x2000, StateSize(4))
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), snapshot...)
	// Close fd 3, then replay the old state.
	if err := tr.Remove(mem, 3); err != nil {
		t.Fatal(err)
	}
	if err := mem.KernelWrite(0x2000, saved); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(mem, 3); !errors.Is(err, ErrTampered) {
		t.Errorf("replayed set = %v, want ErrTampered (nonce)", err)
	}
}

func TestHugeCountRejected(t *testing.T) {
	tr, mem := setup(t, 4)
	if err := mem.KernelStore32(0x2000, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(mem, 1); !errors.Is(err, ErrTampered) {
		t.Errorf("huge count = %v", err)
	}
}
