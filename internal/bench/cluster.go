// cluster.go measures failover under the fleet director: a fleet of
// loop workloads spread across N kernel nodes loses one node mid-run,
// and the director must notice (heartbeats), re-place the displaced
// processes on survivors, and resume them warm from sealed checkpoints.
// Sweeping cluster width against heartbeat cadence shows the detection
// trade the operator tunes: frequent heartbeats shorten the window a
// dead node holds work hostage, sparse ones cost less control-plane
// traffic but stretch the failover. The table behind BENCH_cluster.json.
package bench

import (
	"fmt"
	"strings"

	"asc/internal/binfmt"
	"asc/internal/cluster"
	"asc/internal/core"
	"asc/internal/workload"
)

// ClusterNodes is the width sweep; ClusterHeartbeats the cadence sweep
// (heartbeat rounds every that many ticks).
var (
	ClusterNodes      = []int{2, 3, 4}
	ClusterHeartbeats = []int{1, 2, 4}
)

// clusterBenchSource is the sweep's victim: a getpid loop with the
// iteration count fixed in the source, so the clean cycle count — and
// with it every figure in the table — is deterministic.
const clusterBenchSource = `
        .text
        .global main
main:
        MOVI r12, %d
.loop:
        CALL getpid
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "done"
`

// ClusterPoint is one (width, cadence) cell's failover measurement.
type ClusterPoint struct {
	Nodes          int
	HeartbeatEvery int // ticks between heartbeat rounds
	Procs          int // fleet size (two per node)
	Ticks          int // virtual clock at fleet completion
	// DetectTicks is crash → node declared failed; FailoverTicks is
	// crash → the last displaced process re-placed on a survivor.
	DetectTicks   int
	FailoverTicks int
	Failovers     int
	WarmRestarts  int
	ColdStarts    int
	Checkpoints   int
	// ReplayCycles is work re-executed between each restore point and
	// the crash; RestoredCycles is work the checkpoints preserved.
	// RecoveredPct = restored / (restored + replayed): the fraction of
	// in-flight work the sealed checkpoints saved.
	ReplayCycles   uint64
	RestoredCycles uint64
	RecoveredPct   float64
	Beats          int
	MissedBeats    int
}

// TakeoverPoint is one heartbeat-cadence cell of the director-takeover
// arm: the director is killed in the worst migration window (checkpoint
// durable, source fenced, zero bytes moved) and a warm standby must
// notice, replay the sealed WAL, and resume the fleet.
type TakeoverPoint struct {
	HeartbeatEvery int
	Procs          int
	CrashTick      int // virtual time the director dies
	TakeoverTick   int // virtual time the standby takes over
	DetectTicks    int // takeover latency (missed-beat detection)
	Ticks          int // virtual clock at fleet completion
	// Reattached processes resume live on their surviving nodes;
	// Restored is the mid-migration process finished warm from the
	// persistent store.
	Reattached   int
	Restored     int
	WarmRestarts int
	ColdStarts   int
	WALRecords   int    // sealed records the takeover replayed
	Term         uint32 // director generation after recovery (2 = one takeover)
}

// ClusterData is the full failover sweep.
type ClusterData struct {
	Iters       int
	CleanCycles uint64 // one process's uninterrupted cost
	SliceCycles uint64 // per-tick slice (clean/10)
	CrashTick   int    // virtual time node 1 dies in every cell
	Points      []ClusterPoint
	Takeover    []TakeoverPoint
}

// Cluster runs the failover sweep: for each (width, cadence) cell a
// fleet of two processes per node runs across the cluster, node 1 is
// crashed at a fixed virtual tick, and the fleet must still complete
// with every output identical to the single-node run, recovered warm
// (zero cold starts). Any loss, cold start, or rejection is an error —
// nothing in this sweep is tampered, so integrity machinery must be
// invisible here.
func Cluster(key []byte, iters int) (*ClusterData, error) {
	if iters < 2 {
		iters = 400
	}
	v := workload.FaultVictim{Name: "cluster-loop", Source: fmt.Sprintf(clusterBenchSource, iters)}
	exe, err := v.Build(key)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(core.Config{Key: key})
	if err != nil {
		return nil, err
	}
	ref, err := sys.Exec(exe, "cluster-loop", "")
	if err != nil {
		return nil, err
	}
	if ref.Killed || ref.ExitCode != 0 {
		return nil, fmt.Errorf("bench: cluster clean run failed: %+v", ref)
	}
	slice := ref.Cycles / 10
	if slice < 256 {
		slice = 256
	}
	out := &ClusterData{
		Iters:       iters,
		CleanCycles: ref.Cycles,
		SliceCycles: slice,
		CrashTick:   3,
	}
	for _, nodes := range ClusterNodes {
		for _, hb := range ClusterHeartbeats {
			p, err := clusterCell(key, exe, ref, out, nodes, hb)
			if err != nil {
				return nil, fmt.Errorf("bench: cluster %d nodes, heartbeat/%d: %w", nodes, hb, err)
			}
			out.Points = append(out.Points, p)
		}
	}
	for _, hb := range ClusterHeartbeats {
		p, err := takeoverCell(key, exe, ref, out, hb)
		if err != nil {
			return nil, fmt.Errorf("bench: takeover heartbeat/%d: %w", hb, err)
		}
		out.Takeover = append(out.Takeover, p)
	}
	return out, nil
}

// takeoverCell kills the director mid-migration on a durable 3-node
// cluster with a warm standby and accounts for the takeover: detection
// latency, WAL replay size, and the recovery split (live re-attach vs
// warm restore). Cold starts are an error — durable control-plane state
// means a director death never loses fleet progress.
func takeoverCell(key []byte, exe *binfmt.File, ref *core.Result, data *ClusterData, hb int) (TakeoverPoint, error) {
	const nodes = 3
	crashTick := 4
	h, err := cluster.NewHA(cluster.HAConfig{
		Cluster: cluster.Config{
			Nodes:           nodes,
			Key:             key,
			SliceCycles:     data.SliceCycles,
			CheckpointEvery: int64(data.SliceCycles),
			HeartbeatEvery:  hb,
			MissThreshold:   3,
			DurableDir:      "/director",
		},
		Standby: true,
		OnTick: func(ha *cluster.HA, tick int) {
			if tick == crashTick {
				opts := cluster.CleanMigrate()
				opts.CrashDirector = true
				_, _ = ha.Primary.Migrate("c0", 2, opts)
			}
		},
	})
	if err != nil {
		return TakeoverPoint{}, err
	}
	procs := 2 * nodes
	reqs := make([]core.RunRequest, procs)
	for i := range reqs {
		reqs[i] = core.RunRequest{Exe: exe, Name: fmt.Sprintf("c%d", i)}
	}
	rep, err := h.Run(reqs)
	if err != nil {
		return TakeoverPoint{}, err
	}
	p := TakeoverPoint{
		HeartbeatEvery: hb,
		Procs:          procs,
		CrashTick:      rep.CrashTick,
		TakeoverTick:   rep.TakeoverTick,
		DetectTicks:    rep.DetectTicks,
		Ticks:          rep.Fleet.Ticks,
		Reattached:     rep.Reattached,
		Restored:       rep.Restored,
		WALRecords:     rep.WALRecords,
		Term:           rep.Term,
	}
	if rep.DirectorLost || rep.Term != 2 {
		return p, fmt.Errorf("takeover failed: lost=%v term=%d", rep.DirectorLost, rep.Term)
	}
	for _, pr := range rep.Fleet.Procs {
		if pr.Err != nil {
			return p, fmt.Errorf("%s: %v", pr.Name, pr.Err)
		}
		if pr.Result == nil || pr.Result.Killed || pr.Result.ExitCode != 0 {
			return p, fmt.Errorf("%s: did not exit clean: %+v", pr.Name, pr.Result)
		}
		if pr.Result.Output != ref.Output {
			return p, fmt.Errorf("%s: output diverged from the single-node run", pr.Name)
		}
		p.WarmRestarts += pr.WarmRestarts
		p.ColdStarts += pr.ColdStarts
	}
	if p.ColdStarts != 0 {
		return p, fmt.Errorf("%d cold starts across a director takeover", p.ColdStarts)
	}
	if p.Reattached+p.Restored != procs {
		return p, fmt.Errorf("takeover accounted for %d of %d processes", p.Reattached+p.Restored, procs)
	}
	return p, nil
}

// TakeoverGuard runs the reduced heartbeat-1 takeover cell and returns
// its recovery split — the make-check gate asserting a director crash
// with a standby never cold-starts a process.
func TakeoverGuard(key []byte) (reattached, restored, cold int, err error) {
	data, err := takeoverGuardData(key)
	if err != nil {
		return 0, 0, 0, err
	}
	p := data.Takeover[0]
	return p.Reattached, p.Restored, p.ColdStarts, nil
}

// takeoverGuardData measures the guard's single cell.
func takeoverGuardData(key []byte) (*ClusterData, error) {
	iters := 400
	v := workload.FaultVictim{Name: "cluster-loop", Source: fmt.Sprintf(clusterBenchSource, iters)}
	exe, err := v.Build(key)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(core.Config{Key: key})
	if err != nil {
		return nil, err
	}
	ref, err := sys.Exec(exe, "cluster-loop", "")
	if err != nil {
		return nil, err
	}
	slice := ref.Cycles / 10
	if slice < 256 {
		slice = 256
	}
	data := &ClusterData{Iters: iters, CleanCycles: ref.Cycles, SliceCycles: slice, CrashTick: 3}
	p, err := takeoverCell(key, exe, ref, data, 1)
	if err != nil {
		return nil, err
	}
	data.Takeover = append(data.Takeover, p)
	return data, nil
}

// clusterCell runs one (width, cadence) cell: crash node 1 at the fixed
// tick and account for the recovery.
func clusterCell(key []byte, exe *binfmt.File, ref *core.Result, data *ClusterData, nodes, hb int) (ClusterPoint, error) {
	d, err := cluster.New(cluster.Config{
		Nodes:           nodes,
		Key:             key,
		SliceCycles:     data.SliceCycles,
		CheckpointEvery: int64(data.SliceCycles),
		HeartbeatEvery:  hb,
		MissThreshold:   3,
		OnTick: func(dir *cluster.Director, tick int) {
			if tick == data.CrashTick {
				dir.CrashNode(1)
			}
		},
	})
	if err != nil {
		return ClusterPoint{}, err
	}
	procs := 2 * nodes
	reqs := make([]core.RunRequest, procs)
	for i := range reqs {
		reqs[i] = core.RunRequest{Exe: exe, Name: fmt.Sprintf("c%d", i)}
	}
	rep, err := d.Run(reqs)
	if err != nil {
		return ClusterPoint{}, err
	}

	p := ClusterPoint{
		Nodes:          nodes,
		HeartbeatEvery: hb,
		Procs:          procs,
		Ticks:          rep.Ticks,
		Beats:          rep.Beats,
		MissedBeats:    rep.MissedBeats,
	}
	for _, pr := range rep.Procs {
		if pr.Err != nil {
			return p, fmt.Errorf("%s: %v", pr.Name, pr.Err)
		}
		if pr.Result == nil || pr.Result.Killed || pr.Result.ExitCode != 0 {
			return p, fmt.Errorf("%s: did not exit clean: %+v", pr.Name, pr.Result)
		}
		if pr.Result.Output != ref.Output {
			return p, fmt.Errorf("%s: output diverged from the single-node run", pr.Name)
		}
		if pr.ColdStarts != 0 || len(pr.Rejected) != 0 {
			return p, fmt.Errorf("%s: cold starts %d, rejections %v on an untampered fleet",
				pr.Name, pr.ColdStarts, pr.Rejected)
		}
		p.Failovers += pr.Failovers
		p.WarmRestarts += pr.WarmRestarts
		p.Checkpoints += pr.Checkpoints
		p.ReplayCycles += pr.ReplayCycles
		p.RestoredCycles += pr.RestoredCycles
	}
	if p.Failovers == 0 || p.WarmRestarts != p.Failovers {
		return p, fmt.Errorf("crash recovered %d/%d failovers warm", p.WarmRestarts, p.Failovers)
	}
	if total := p.RestoredCycles + p.ReplayCycles; total > 0 {
		p.RecoveredPct = 100 * float64(p.RestoredCycles) / float64(total)
	}

	// Timeline from the control-plane events: crash → declared failed →
	// last displaced process re-placed.
	detect, replaced := -1, -1
	for _, ev := range rep.Events {
		switch {
		case detect == -1 && strings.Contains(ev.What, "declared failed"):
			detect = ev.Tick
		case strings.Contains(ev.What, "re-placed on node"):
			replaced = ev.Tick
		}
	}
	if detect == -1 || replaced == -1 {
		return p, fmt.Errorf("timeline incomplete: detect tick %d, re-place tick %d", detect, replaced)
	}
	p.DetectTicks = detect - data.CrashTick
	p.FailoverTicks = replaced - data.CrashTick
	return p, nil
}

// Render prints the failover sweep table.
func (t *ClusterData) Render() string {
	header := []string{"Nodes", "Heartbeat", "Procs", "Detect (ticks)", "Failover (ticks)", "Warm restarts", "Replayed cycles", "Recovered %", "Missed beats"}
	var rows [][]string
	for _, p := range t.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("every %d", p.HeartbeatEvery),
			fmt.Sprintf("%d", p.Procs),
			fmt.Sprintf("%d", p.DetectTicks),
			fmt.Sprintf("%d", p.FailoverTicks),
			fmt.Sprintf("%d", p.WarmRestarts),
			fmt.Sprintf("%d", p.ReplayCycles),
			fmt.Sprintf("%.1f", p.RecoveredPct),
			fmt.Sprintf("%d", p.MissedBeats),
		})
	}
	title := fmt.Sprintf("Cluster failover: clean run %d cycles, slice %d, node 1 crashed at tick %d, warm re-placement from sealed checkpoints",
		t.CleanCycles, t.SliceCycles, t.CrashTick)
	out := renderTable(title, header, rows)
	if len(t.Takeover) == 0 {
		return out
	}
	header = []string{"Heartbeat", "Procs", "Detect (ticks)", "WAL records", "Re-attached", "Warm restored", "Cold starts", "Term"}
	rows = rows[:0]
	for _, p := range t.Takeover {
		rows = append(rows, []string{
			fmt.Sprintf("every %d", p.HeartbeatEvery),
			fmt.Sprintf("%d", p.Procs),
			fmt.Sprintf("%d", p.DetectTicks),
			fmt.Sprintf("%d", p.WALRecords),
			fmt.Sprintf("%d", p.Reattached),
			fmt.Sprintf("%d", p.Restored),
			fmt.Sprintf("%d", p.ColdStarts),
			fmt.Sprintf("%d", p.Term),
		})
	}
	title = "Director takeover: primary killed mid-migration on a durable 3-node cluster, warm standby replays the sealed WAL"
	return out + "\n" + renderTable(title, header, rows)
}
