package core

import (
	"testing"

	"asc/internal/ckpt"
	"asc/internal/kernel"
)

// TestSuperviseCheckpointWarmRestart: a process that overruns its budget
// is restarted from the newest sealed checkpoint, replays at most one
// cadence interval, and finishes with the clean run's output.
func TestSuperviseCheckpointWarmRestart(t *testing.T) {
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, runAllLoopSrc), "loop")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Exec(exe, "loop", "")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Killed || ref.Output != "done" {
		t.Fatalf("clean reference run failed: %+v", ref)
	}

	budget := ref.Cycles * 4 / 5
	every := budget / 3
	stats, err := s.Supervise(exe, "loop", "", SuperviseConfig{
		MaxRestarts:     8,
		BackoffBase:     100,
		MaxCycles:       budget,
		CheckpointEvery: every,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GaveUp {
		t.Fatalf("supervisor gave up: %+v", stats)
	}
	if stats.Final.Killed || stats.Final.Output != "done" {
		t.Errorf("final result: %+v, want clean 'done'", stats.Final)
	}
	if stats.Causes["runaway"] == 0 {
		t.Errorf("causes = %v, want at least one runaway", stats.Causes)
	}
	if stats.Checkpoints < 2 {
		t.Errorf("checkpoints = %d, want >= 2", stats.Checkpoints)
	}
	if stats.WarmRestarts < 1 {
		t.Errorf("warm restarts = %d, want >= 1", stats.WarmRestarts)
	}
	if stats.ColdStarts != 0 {
		t.Errorf("cold starts = %d on an untampered chain", stats.ColdStarts)
	}
	if len(stats.CkptRejected) != 0 {
		t.Errorf("rejections on an untampered chain: %v", stats.CkptRejected)
	}
	// The replay bound: each warm restart re-executes at most the cycles
	// since the last checkpoint — one cadence interval plus the trap
	// overshoot slack.
	const slack = 8192
	if max := uint64(stats.WarmRestarts) * (every + slack); stats.ReplayCycles > max {
		t.Errorf("replayed %d cycles, bound %d", stats.ReplayCycles, max)
	}
	if stats.ReplayCycles == 0 {
		t.Error("warm restart replayed nothing — restore point implausibly at the failure point")
	}
}

// TestSuperviseCheckpointFallbackChain: a corrupted newest checkpoint is
// rejected by its seal and the restart falls back to the older one.
func TestSuperviseCheckpointFallbackChain(t *testing.T) {
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, runAllLoopSrc), "loop")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Exec(exe, "loop", "")
	if err != nil {
		t.Fatal(err)
	}
	budget := ref.Cycles * 4 / 5

	store := ckpt.NewStore()
	store.Tamper = func(chain []ckpt.Entry, i int) []byte {
		if i != 0 {
			return chain[i].Blob
		}
		mut := append([]byte(nil), chain[i].Blob...)
		mut[len(mut)/2] ^= 0x04
		return mut
	}
	stats, err := s.Supervise(exe, "loop", "", SuperviseConfig{
		MaxRestarts:     8,
		BackoffBase:     100,
		MaxCycles:       budget,
		CheckpointEvery: budget / 3,
		Checkpoints:     store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GaveUp || stats.Final.Output != "done" {
		t.Fatalf("did not recover: %+v", stats)
	}
	if stats.CkptRejected[ckpt.ReasonSeal] == 0 {
		t.Errorf("rejections = %v, want seal-mismatch", stats.CkptRejected)
	}
	if stats.WarmRestarts < 1 {
		t.Errorf("warm restarts = %d, want >= 1 (fallback to older checkpoint)", stats.WarmRestarts)
	}
	if stats.ColdStarts != 0 {
		t.Errorf("cold starts = %d, want 0 (older checkpoint was intact)", stats.ColdStarts)
	}
}

// TestSuperviseCheckpointColdStart: when every checkpoint in the chain
// is corrupt, restarts reject them all and fall through to cold starts —
// corruption costs progress, never integrity.
func TestSuperviseCheckpointColdStart(t *testing.T) {
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, runAllLoopSrc), "loop")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Exec(exe, "loop", "")
	if err != nil {
		t.Fatal(err)
	}
	budget := ref.Cycles * 4 / 5

	store := ckpt.NewStore()
	store.Tamper = func(chain []ckpt.Entry, i int) []byte {
		mut := append([]byte(nil), chain[i].Blob...)
		mut[len(mut)/3] ^= 0x80
		return mut
	}
	stats, err := s.Supervise(exe, "loop", "", SuperviseConfig{
		MaxRestarts:     2,
		BackoffBase:     100,
		MaxCycles:       budget,
		CheckpointEvery: budget / 3,
		Checkpoints:     store,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cold starts never get past the budget, so the supervisor exhausts
	// its restarts — but every restart rejected the whole chain first.
	if !stats.GaveUp {
		t.Fatalf("expected exhaustion under an all-corrupt chain: %+v", stats)
	}
	if stats.WarmRestarts != 0 {
		t.Errorf("warm restarts = %d from corrupt blobs", stats.WarmRestarts)
	}
	if stats.ColdStarts != 2 {
		t.Errorf("cold starts = %d, want 2", stats.ColdStarts)
	}
	if stats.CkptRejected[ckpt.ReasonSeal] < 2 {
		t.Errorf("rejections = %v, want every chain walk to reject", stats.CkptRejected)
	}
}

// TestSuperviseNoRestarts: the NoRestarts sentinel runs the process
// exactly once, while the zero value selects the documented default of
// three restarts.
func TestSuperviseNoRestarts(t *testing.T) {
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, superviseKilledSrc), "bad")
	if err != nil {
		t.Fatal(err)
	}

	once, err := s.Supervise(exe, "bad", "", SuperviseConfig{MaxRestarts: NoRestarts})
	if err != nil {
		t.Fatal(err)
	}
	if once.Attempts != 1 || once.Restarts != 0 || !once.GaveUp {
		t.Errorf("NoRestarts: attempts=%d restarts=%d gaveUp=%v, want 1/0/true",
			once.Attempts, once.Restarts, once.GaveUp)
	}

	def, err := s.Supervise(exe, "bad", "", SuperviseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Attempts != 4 || def.Restarts != 3 {
		t.Errorf("zero value: attempts=%d restarts=%d, want 4/3 (default)",
			def.Attempts, def.Restarts)
	}
}

// TestSuperviseBackoffOddCap: a cap that is not a power-of-two multiple
// of the base is hit exactly, not overshot.
func TestSuperviseBackoffOddCap(t *testing.T) {
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, superviseKilledSrc), "bad")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Supervise(exe, "bad", "", SuperviseConfig{
		MaxRestarts: 4,
		BackoffBase: 100,
		BackoffCap:  250,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 200, 250, 250}
	if len(stats.Events) != len(want) {
		t.Fatalf("events = %+v, want %d", stats.Events, len(want))
	}
	for i, ev := range stats.Events {
		if ev.Backoff != want[i] {
			t.Errorf("backoff[%d] = %d, want %d (clamped to the odd cap)", i, ev.Backoff, want[i])
		}
	}
	if stats.Causes[string(kernel.KillUnauthenticated)] != 5 {
		t.Errorf("causes = %v", stats.Causes)
	}
}
