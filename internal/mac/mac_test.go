package mac

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// RFC 4493 test vectors for AES-128 CMAC.
func TestRFC4493Vectors(t *testing.T) {
	key := "2b7e151628aed2a6abf7158809cf4f3c"
	full := "6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" +
		"30c81c46a35ce411e5fbc1191a0a52ef" +
		"f69f2445df4f9b17ad2b417be66c3710"
	tests := []struct {
		name   string
		msgLen int
		want   string
	}{
		{"empty", 0, "bb1d6929e95937287fa37d129b756746"},
		{"one block", 16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{"40 bytes", 40, "dfa66747de9ae63030ca32611497c827"},
		{"64 bytes", 64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	k, err := New(mustHex(t, key))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	msg := mustHex(t, full)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, _ := k.Sum(msg[:tt.msgLen])
			if want := mustHex(t, tt.want); !bytes.Equal(got[:], want) {
				t.Errorf("Sum = %x, want %x", got[:], want)
			}
		})
	}
}

func TestNewRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 24, 32} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New with %d-byte key: want error, got nil", n)
		}
	}
}

func TestVerify(t *testing.T) {
	k, err := New(make([]byte, KeySize))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	msg := []byte("authenticated system calls")
	tag, _ := k.Sum(msg)
	if ok, _ := k.Verify(msg, tag); !ok {
		t.Error("Verify of valid tag failed")
	}
	bad := tag
	bad[0] ^= 1
	if ok, _ := k.Verify(msg, bad); ok {
		t.Error("Verify accepted corrupted tag")
	}
	if ok, _ := k.Verify(append(msg, 'x'), tag); ok {
		t.Error("Verify accepted extended message")
	}
}

func TestBlocksMatchesSum(t *testing.T) {
	k, err := New(make([]byte, KeySize))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for n := 0; n <= 4*Size+3; n++ {
		_, got := k.Sum(make([]byte, n))
		if want := Blocks(n); got != want {
			t.Errorf("len %d: Sum did %d block ops, Blocks predicts %d", n, got, want)
		}
	}
}

func TestTagEqualConstantTimeSemantics(t *testing.T) {
	var a, b Tag
	if !a.Equal(b) {
		t.Error("zero tags should be equal")
	}
	b[15] = 1
	if a.Equal(b) {
		t.Error("distinct tags reported equal")
	}
}

// Property: any single-bit flip in the message changes the tag.
func TestPropertyBitFlipChangesTag(t *testing.T) {
	k, err := New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f := func(msg []byte, pos uint16, bit uint8) bool {
		if len(msg) == 0 {
			return true
		}
		orig, _ := k.Sum(msg)
		flipped := append([]byte(nil), msg...)
		flipped[int(pos)%len(flipped)] ^= 1 << (bit % 8)
		if bytes.Equal(flipped, msg) {
			return true
		}
		mutated, _ := k.Sum(flipped)
		return !orig.Equal(mutated)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: tags are deterministic and key-dependent.
func TestPropertyKeySeparation(t *testing.T) {
	k1, _ := New([]byte("0123456789abcdef"))
	k2, _ := New([]byte("fedcba9876543210"))
	f := func(msg []byte) bool {
		a1, _ := k1.Sum(msg)
		a2, _ := k1.Sum(msg)
		b, _ := k2.Sum(msg)
		return a1.Equal(a2) && !a1.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSum64(b *testing.B) {
	k, _ := New(make([]byte, KeySize))
	msg := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Sum(msg)
	}
}

// TestConcurrentSum hammers one Keyed from many goroutines, checking every
// tag against a per-goroutine precomputed answer. The scratch-block pool
// inside Sum must not leak state between concurrent computations; run with
// -race to check the documented concurrency contract.
func TestConcurrentSum(t *testing.T) {
	k, err := New(mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 2000
	// Distinct message per goroutine, lengths straddling block bounds.
	msgs := make([][]byte, goroutines)
	want := make([]Tag, goroutines)
	for g := range msgs {
		msg := make([]byte, 5+g*7)
		for i := range msg {
			msg[i] = byte(g*31 + i)
		}
		msgs[g] = msg
		want[g], _ = k.Sum(msg)
	}
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < iters; i++ {
				got, _ := k.Sum(msgs[g])
				if !got.Equal(want[g]) {
					done <- fmt.Errorf("goroutine %d iter %d: Sum corrupted", g, i)
					return
				}
				if ok, _ := k.Verify(msgs[g], want[g]); !ok {
					done <- fmt.Errorf("goroutine %d iter %d: Verify corrupted", g, i)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSumAllocs pins the scratch-pool win: a warm Keyed computes tags
// without heap allocation.
func TestSumAllocs(t *testing.T) {
	k, err := New(mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 80)
	k.Sum(msg) // warm the pool
	allocs := testing.AllocsPerRun(200, func() { k.Sum(msg) })
	if allocs > 0 {
		t.Errorf("Sum allocates %.1f times per call, want 0", allocs)
	}
}

// SumFrom resumed from a matching precomputed prefix must equal Sum, and
// must charge only the tail blocks.
func TestSumFromMatchesSum(t *testing.T) {
	k, err := New(mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 64, 100, 257} {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i*7 + n)
		}
		st, preBlocks := k.Precompute(msg)
		want, wantBlocks := k.Sum(msg)
		got, tailBlocks := k.SumFrom(st, msg)
		if got != want {
			t.Errorf("len %d: SumFrom tag %s, want %s", n, got, want)
		}
		if preBlocks+tailBlocks != wantBlocks {
			t.Errorf("len %d: precompute %d + tail %d blocks, Sum did %d",
				n, preBlocks, tailBlocks, wantBlocks)
		}
		if n > Size && tailBlocks != 1 {
			t.Errorf("len %d: tail charged %d blocks, want 1", n, tailBlocks)
		}
	}
}

// A stale prefix (live bytes changed since Precompute) must fall back to
// a full, correct Sum — never a resumed tag over the wrong bytes.
func TestSumFromStalePrefix(t *testing.T) {
	k, err := New(mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 100)
	for i := range msg {
		msg[i] = byte(i)
	}
	st, _ := k.Precompute(msg)
	msg[3] ^= 0x40 // mutate inside the absorbed prefix
	want, wantBlocks := k.Sum(msg)
	got, blocks := k.SumFrom(st, msg)
	if got != want {
		t.Errorf("stale prefix: SumFrom tag %s, want full Sum %s", got, want)
	}
	if blocks != wantBlocks {
		t.Errorf("stale prefix: charged %d blocks, want full %d", blocks, wantBlocks)
	}
	// Shrinking the message below the absorbed length must also fall back.
	short := msg[:10]
	want, _ = k.Sum(short)
	if got, _ := k.SumFrom(st, short); got != want {
		t.Errorf("short message: SumFrom tag %s, want %s", got, want)
	}
	if got, _ := k.SumFrom(nil, msg); got != k.mustSum(msg) {
		t.Errorf("nil state: SumFrom diverged from Sum")
	}
}

func (k *Keyed) mustSum(msg []byte) Tag {
	tag, _ := k.Sum(msg)
	return tag
}

// SumBatch must produce exactly the per-message Sum tags and the summed
// block count.
func TestSumBatchMatchesSum(t *testing.T) {
	k, err := New(mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	var msgs [][]byte
	wantBlocks := 0
	var want []Tag
	for _, n := range []int{0, 1, 12, 16, 17, 48, 100} {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i ^ n)
		}
		msgs = append(msgs, msg)
		tag, b := k.Sum(msg)
		want = append(want, tag)
		wantBlocks += b
	}
	got, blocks := k.SumBatch(msgs, nil)
	if len(got) != len(want) {
		t.Fatalf("SumBatch returned %d tags, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("msg %d: batch tag %s, want %s", i, got[i], want[i])
		}
	}
	if blocks != wantBlocks {
		t.Errorf("batch blocks %d, want %d", blocks, wantBlocks)
	}
	// Appending into a preallocated dst must reuse it.
	dst := make([]Tag, 0, len(msgs))
	out, _ := k.SumBatch(msgs, dst)
	if &out[0] != &dst[:1][0] {
		t.Error("SumBatch reallocated a dst with sufficient capacity")
	}
	if _, blocks := k.SumBatch(nil, nil); blocks != 0 {
		t.Errorf("empty batch charged %d blocks", blocks)
	}
}
