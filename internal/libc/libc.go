// Package libc provides the system call stub library and runtime helpers
// of the simulated platform, written in the platform's own assembly.
//
// Every system call is a stub of the form
//
//	name:   MOVI r0, <number>
//	        SYSCALL
//	        RET
//
// so that, exactly as on the paper's Linux/x86, system calls in an
// application binary are reached through library stubs that the trusted
// installer inlines at each call site before policy generation (Section
// 4.1: "system calls are often made from stubs that are invoked by many
// blocks ... inline the stubs").
//
// Two OS personalities are provided:
//
//   - Linux: every stub is direct.
//   - OpenBSD: mmap is implemented via the generic indirect __syscall (so
//     the ASC policy names __syscall with a constrained first argument,
//     while dynamic tracing sees mmap), and close hides its SYSCALL behind
//     a data blob that misaligns the instruction stream, which the
//     installer's linear disassembler cannot decode — reproducing the two
//     Table 2 discrepancies.
//
// Each stub and helper is a separate object so the linker's archive
// semantics pull in only what a program references.
package libc

import (
	"fmt"
	"sort"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/sys"
)

// OS selects a libc personality.
type OS int

// Personalities.
const (
	Linux OS = iota + 1
	OpenBSD
)

func (o OS) String() string {
	switch o {
	case Linux:
		return "linux"
	case OpenBSD:
		return "openbsd"
	default:
		return fmt.Sprintf("OS(%d)", int(o))
	}
}

// startSource is the program entry point: push the argc/argv
// placeholders, call main, then exit(r0).
const startSource = `
        .text
        .global _start
_start:
        MOVI r7, 0
        PUSH r7                 ; argv = NULL
        PUSH r7                 ; argc = 0
        CALL main
        MOV r1, r0
        MOVI r0, 1              ; SYS_exit
        SYSCALL
        JMP _start              ; not reached
`

// helperSources are runtime routines used by the workload corpus. gets is
// deliberately unbounded — it is the buffer-overflow vector for the attack
// experiments of Section 4.1.
var helperSources = map[string]string{
	"strlen": `
        .text
        .global strlen
strlen:
        MOVI r0, 0
.sl_loop:
        ADD r7, r1, r0
        LOADB r8, [r7]
        MOVI r9, 0
        BEQ r8, r9, .sl_done
        ADDI r0, r0, 1
        JMP .sl_loop
.sl_done:
        RET
`,
	"puts": `
        .text
        .global puts
puts:
        PUSH r10
        MOV r10, r1
        CALL strlen
        MOV r3, r0
        MOV r2, r10
        MOVI r1, 1              ; stdout
        CALL write
        POP r10
        RET
`,
	"gets": `
        .text
        .global gets
gets:
        PUSH r10
        PUSH r11
        MOV r10, r1
        MOV r11, r1
.g_loop:
        MOVI r1, 0              ; stdin
        MOV r2, r10
        MOVI r3, 1
        CALL read
        MOVI r7, 1
        BNE r0, r7, .g_done
        LOADB r7, [r10]
        ADDI r10, r10, 1
        MOVI r8, 10             ; newline
        BEQ r7, r8, .g_nl
        JMP .g_loop
.g_nl:
        SUBI r10, r10, 1
.g_done:
        MOVI r7, 0
        STOREB [r10+0], r7
        SUB r0, r10, r11
        POP r11
        POP r10
        RET
`,
	// nextline is a buffered line reader: the first call slurps up to
	// 4096 bytes of stdin, later calls serve NUL-terminated lines from
	// the buffer (stdio-style buffering; contrast with the unbuffered,
	// unbounded gets).
	"nextline": `
        .text
        .global nextline
nextline:
        PUSH r10
        PUSH r11
        MOV r10, r1
        MOVI r7, __nl_init
        LOAD r8, [r7]
        MOVI r9, 1
        BEQ r8, r9, .have
        STORE [r7+0], r9
        MOVI r1, 0
        MOVI r2, __nl_buf
        MOVI r3, 4096
        CALL read
        MOVI r7, __nl_len
        STORE [r7+0], r0
        MOVI r7, __nl_pos
        MOVI r8, 0
        STORE [r7+0], r8
.have:
        MOVI r7, __nl_pos
        LOAD r8, [r7]
        MOVI r7, __nl_len
        LOAD r9, [r7]
        MOVI r0, 0
.nl_loop:
        BGEU r8, r9, .nl_done
        MOVI r7, __nl_buf
        ADD r7, r7, r8
        LOADB r7, [r7]
        ADDI r8, r8, 1
        MOVI r11, 10
        BEQ r7, r11, .nl_done
        STOREB [r10+0], r7
        ADDI r10, r10, 1
        ADDI r0, r0, 1
        JMP .nl_loop
.nl_done:
        MOVI r7, 0
        STOREB [r10+0], r7
        MOVI r7, __nl_pos
        STORE [r7+0], r8
        POP r11
        POP r10
        RET
        .bss
__nl_init: .space 4
__nl_len: .space 4
__nl_pos: .space 4
__nl_buf: .space 4096
`,
	"memcpy": `
        .text
        .global memcpy
memcpy:
        MOVI r7, 0
.mc_loop:
        BGEU r7, r3, .mc_done
        ADD r8, r2, r7
        LOADB r9, [r8]
        ADD r8, r1, r7
        STOREB [r8+0], r9
        ADDI r7, r7, 1
        JMP .mc_loop
.mc_done:
        MOV r0, r1
        RET
`,
	"memset": `
        .text
        .global memset
memset:
        MOVI r7, 0
.ms_loop:
        BGEU r7, r3, .ms_done
        ADD r8, r1, r7
        STOREB [r8+0], r2
        ADDI r7, r7, 1
        JMP .ms_loop
.ms_done:
        MOV r0, r1
        RET
`,
	"atoi": `
        .text
        .global atoi
atoi:
        MOVI r0, 0
        MOVI r9, 10
.at_loop:
        LOADB r7, [r1]
        MOVI r8, 48
        BLT r7, r8, .at_done
        MOVI r8, 58
        BGE r7, r8, .at_done
        MUL r0, r0, r9
        ADDI r7, r7, -48
        ADD r0, r0, r7
        ADDI r1, r1, 1
        JMP .at_loop
.at_done:
        RET
`,
	"print_uint": `
        .text
        .global print_uint
print_uint:
        SUBI sp, sp, 16
        MOV r7, r1
        MOVI r9, 10
        ADDI r8, sp, 16
.pu_loop:
        SUBI r8, r8, 1
        MOD r0, r7, r9
        ADDI r0, r0, 48
        STOREB [r8+0], r0
        DIV r7, r7, r9
        MOVI r0, 0
        BNE r7, r0, .pu_loop
        ADDI r3, sp, 16
        SUB r3, r3, r8
        MOV r2, r8
        MOVI r1, 1
        CALL write
        ADDI sp, sp, 16
        RET
`,
	"malloc": `
        .text
        .global malloc
malloc:
        ADDI r1, r1, 7
        MOVI r7, 0xfffffff8
        AND r1, r1, r7
        MOVI r8, __curbrk
        LOAD r7, [r8]
        MOVI r9, 0
        BNE r7, r9, .m_have
        PUSH r1
        MOVI r1, 0
        CALL brk                ; brk(0) queries the current break
        POP r1
        MOV r7, r0
.m_have:
        ADD r9, r7, r1
        PUSH r7
        PUSH r9
        MOV r1, r9
        CALL brk
        POP r9
        POP r7
        MOVI r8, __curbrk
        STORE [r8+0], r9
        MOV r0, r7
        RET
        .bss
__curbrk: .space 4
`,
}

// stubSource renders the direct stub for one syscall.
func stubSource(name string, num uint16) string {
	return fmt.Sprintf(`
        .text
        .global %s
%s:
        MOVI r0, %d
        SYSCALL
        RET
`, name, name, num)
}

// openbsdMmapSource routes mmap through the generic indirect __syscall,
// shifting the five mmap arguments right by one. The fifth original
// argument (fd) is dropped, as the indirect call carries at most five.
func openbsdMmapSource() string {
	return fmt.Sprintf(`
        .text
        .global mmap
mmap:
        MOV r5, r4
        MOV r4, r3
        MOV r3, r2
        MOV r2, r1
        MOVI r1, %d             ; real mmap number as first argument
        MOVI r0, %d             ; __syscall
        SYSCALL
        RET
`, sys.SysMmap, sys.SysIndirect)
}

// openbsdCloseSource hides the SYSCALL of close behind four bytes of
// in-text data. The JMP skips the blob at run time, but the blob breaks
// the 8-byte instruction grid: a linear-sweep disassembler decodes garbage
// from the blob onward and never sees the SYSCALL. The installer detects
// the undecodable region, reports it, and close is absent from the ASC
// policy — the paper's Table 2 "close" row.
func openbsdCloseSource() string {
	return fmt.Sprintf(`
        .text
        .global close
close:
        MOVI r0, %d
        JMP .ci
        .word 1                 ; 4-byte blob; misaligns what follows
.ci:
        SYSCALL
        RET
`, sys.SysClose)
}

// Objects assembles the full libc for the given personality. The returned
// objects are freshly assembled on each call so callers may mutate them.
func Objects(os OS) ([]*binfmt.File, error) {
	sources, err := Sources(os)
	if err != nil {
		return nil, err
	}
	out := make([]*binfmt.File, 0, len(sources))
	for _, s := range sources {
		f, err := asm.Assemble(s.Name, s.Source)
		if err != nil {
			return nil, fmt.Errorf("libc: assemble %s: %w", s.Name, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// NamedSource is one libc member.
type NamedSource struct {
	Name   string
	Source string
}

// Sources returns the assembly source of every libc member for the given
// personality, in deterministic order.
func Sources(os OS) ([]NamedSource, error) {
	if os != Linux && os != OpenBSD {
		return nil, fmt.Errorf("libc: unknown personality %v", os)
	}
	var out []NamedSource
	out = append(out, NamedSource{"_start", startSource})
	for _, sig := range sys.All() {
		switch {
		case sig.Num == sys.SysIndirect && os != OpenBSD:
			continue // __syscall exists only on the OpenBSD personality
		case sig.Name == "mmap" && os == OpenBSD:
			out = append(out, NamedSource{"mmap", openbsdMmapSource()})
		case sig.Name == "close" && os == OpenBSD:
			out = append(out, NamedSource{"close", openbsdCloseSource()})
		default:
			out = append(out, NamedSource{sig.Name, stubSource(sig.Name, sig.Num)})
		}
	}
	// Helpers in deterministic order.
	names := make([]string, 0, len(helperSources))
	for n := range helperSources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, NamedSource{n, helperSources[n]})
	}
	return out, nil
}

// StubNames returns the names of all syscall stubs in the personality.
func StubNames(os OS) []string {
	var out []string
	for _, sig := range sys.All() {
		if sig.Num == sys.SysIndirect && os != OpenBSD {
			continue
		}
		out = append(out, sig.Name)
	}
	return out
}
