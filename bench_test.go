// bench_test.go regenerates every evaluation artifact of the paper as a
// Go benchmark: Tables 1-4 and 6, the Andrew-style multiprogram benchmark
// of Section 4.3, the Section 2.3 enforcement comparison, and the Section
// 4.1 attack battery. Each benchmark reports its headline numbers as
// custom metrics; `go test -bench . -benchtime 1x` reproduces the paper's
// evaluation end to end.
package asc_test

import (
	"testing"

	"asc/internal/attack"
	"asc/internal/bench"
	"asc/internal/workload"
)

// BenchmarkTable1PolicySizes regenerates Table 1: the number of distinct
// system calls in ASC policies (static analysis, both OS personalities)
// versus trained Systrace policies.
func BenchmarkTable1PolicySizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + data.Render())
			for _, r := range data.Rows {
				b.ReportMetric(float64(r.ASCLinux), r.Program+"_asc_linux")
				b.ReportMetric(float64(r.SystraceBSD), r.Program+"_systrace")
			}
		}
	}
}

// BenchmarkTable2BisonDiff regenerates Table 2: the per-call differences
// between the bison ASC and Systrace policies on OpenBSD.
func BenchmarkTable2BisonDiff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + data.Render())
			var ascOnly, sysOnly int
			for _, r := range data.Rows {
				if r.ASC {
					ascOnly++
				} else {
					sysOnly++
				}
			}
			b.ReportMetric(float64(ascOnly), "asc_only_calls")
			b.ReportMetric(float64(sysOnly), "systrace_only_calls")
		}
	}
}

// BenchmarkTable3ArgCoverage regenerates Table 3: argument coverage of
// the generated policies (sites, calls, args, o/p, auth, mv, fds).
func BenchmarkTable3ArgCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + data.Render())
			for _, r := range data.Rows {
				b.ReportMetric(100*float64(r.Auth)/float64(r.Args), r.Program+"_auth_pct")
			}
		}
	}
}

// BenchmarkTable4Microbench regenerates Table 4: per-system-call cycles,
// original versus authenticated.
func BenchmarkTable4Microbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := bench.Table4(bench.DefaultKey)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + data.Render())
			for _, r := range data.Rows {
				b.ReportMetric(r.OverheadPct, r.Call+"_overhead_pct")
			}
		}
	}
}

// BenchmarkTable6Macro regenerates Table 6: end-to-end overhead across
// the Table 5 benchmark suite at full iteration counts.
func BenchmarkTable6Macro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := bench.Table6(bench.DefaultKey, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + data.Render())
			for _, r := range data.Rows {
				b.ReportMetric(r.OverheadPct, r.Program+"_overhead_pct")
			}
		}
	}
}

// BenchmarkAndrew regenerates the Section 4.3 multiprogram benchmark.
func BenchmarkAndrew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := bench.Andrew(bench.DefaultKey, workload.AndrewConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + data.Render())
			b.ReportMetric(data.OverheadPct, "overhead_pct")
			b.ReportMetric(float64(data.Syscalls), "syscalls")
		}
	}
}

// BenchmarkEnforcementComparison regenerates the Section 2.3 comparison:
// per-call cost under no monitoring, ASC, an in-kernel table, and a
// user-space daemon.
func BenchmarkEnforcementComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := bench.EnforcementComparison(bench.DefaultKey)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + data.Render())
			for _, r := range data.Rows {
				b.ReportMetric(r.CyclesPerCall, sanitize(r.Mechanism))
			}
		}
	}
}

// BenchmarkAttackBattery runs the Section 4.1 / 5.5 attack experiments.
func BenchmarkAttackBattery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab, err := attack.NewLab(bench.DefaultKey)
		if err != nil {
			b.Fatal(err)
		}
		outcomes, err := lab.Battery()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			blocked := 0
			for _, o := range outcomes {
				b.Log(o.String())
				if o.Blocked {
					blocked++
				}
			}
			b.ReportMetric(float64(blocked), "blocked")
			b.ReportMetric(float64(len(outcomes)), "experiments")
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' || r == '-' {
			out = append(out, '_')
		} else {
			out = append(out, r)
		}
	}
	return string(out)
}
