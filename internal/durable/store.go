// store.go is the persistent half of the checkpoint-store protocol: the
// same trusted-epoch bookkeeping as ckpt.Store, but keyed (name, epoch)
// on the cluster's durable filesystem so it survives the director
// process itself. The trusted epochs live in the store's directory
// entries — control-plane metadata maintained by the director and its
// standby — never inside the blobs, so a blob replayed into a newer
// epoch's slot is still caught by the restorer's epoch expectation.
package durable

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"asc/internal/ckpt"
	"asc/internal/vfs"
)

// Store is a VFS-backed monotonic checkpoint chain for one process.
// Safe for concurrent use except for the Tamper hook, which must be
// installed before the store is shared.
type Store struct {
	// Tamper mirrors ckpt.Store's at-rest corruption hook: when
	// non-nil, it may replace each entry's blob as Chain() hands it
	// out. The stored files are never modified.
	Tamper func(chain []ckpt.Entry, i int) []byte

	mu  sync.Mutex
	fs  *vfs.FS
	dir string
	gen uint64 // put-generation counter, persisted across reopen
}

const genFile = "gen"

// StoreDir locates one process's store under a durable directory.
func StoreDir(dir, name string) string { return dir + "/store/" + name }

// EpochPath locates one sealed checkpoint file inside a store
// directory. Exported for fault injection (at-rest blob replacement).
func EpochPath(dir string, epoch uint64) string {
	return fmt.Sprintf("%s/ep-%020d", dir, epoch)
}

// OpenStore opens (or creates) the store rooted at dir. Reopening an
// existing directory — the takeover path — resumes its epochs and
// generation counter.
func OpenStore(fs *vfs.FS, dir string) (*Store, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: store %s: %w", dir, err)
	}
	s := &Store{fs: fs, dir: dir}
	if b, err := fs.ReadFile(dir + "/" + genFile); err == nil && len(b) == 8 {
		for i := 7; i >= 0; i-- {
			s.gen = s.gen<<8 | uint64(b[i])
		}
	}
	return s, nil
}

func (s *Store) writeGen() {
	b := make([]byte, 8)
	g := s.gen
	for i := 0; i < 8; i++ {
		b[i] = byte(g)
		g >>= 8
	}
	_ = s.fs.WriteFile(s.dir+"/"+genFile, b, 0o644)
}

// epochs returns the stored epochs in ascending order.
func (s *Store) epochs() []uint64 {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []uint64
	for _, n := range names {
		if len(n) < 4 || n[:3] != "ep-" {
			continue
		}
		e, err := strconv.ParseUint(n[3:], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Put writes a checkpoint under a strictly increasing epoch and bumps
// the persistent generation counter.
func (s *Store) Put(epoch uint64, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	eps := s.epochs()
	if n := len(eps); n > 0 && epoch <= eps[n-1] {
		return fmt.Errorf("%w: %d after %d", ckpt.ErrEpochOrder, epoch, eps[n-1])
	}
	if err := s.fs.WriteFile(EpochPath(s.dir, epoch), blob, 0o644); err != nil {
		return fmt.Errorf("durable: store put: %w", err)
	}
	s.gen++
	s.writeGen()
	return nil
}

// Len returns the number of stored checkpoints.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.epochs())
}

// Gen returns the put-generation counter (total Puts over the store's
// lifetime, surviving reopen — it keeps advancing after pruning).
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// NewestEpoch returns the highest stored epoch (0 when empty).
func (s *Store) NewestEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	eps := s.epochs()
	if len(eps) == 0 {
		return 0
	}
	return eps[len(eps)-1]
}

// Chain returns the fallback chain, newest first, with the same
// contract as ckpt.Store.Chain: epochs come from the store's own
// bookkeeping, and blobs pass through the Tamper hook when installed.
func (s *Store) Chain() []ckpt.Entry {
	s.mu.Lock()
	eps := s.epochs()
	pristine := make([]ckpt.Entry, 0, len(eps))
	for i := len(eps) - 1; i >= 0; i-- {
		blob, err := s.fs.ReadFile(EpochPath(s.dir, eps[i]))
		if err != nil {
			continue
		}
		pristine = append(pristine, ckpt.Entry{Epoch: eps[i], Blob: blob})
	}
	tamper := s.Tamper
	s.mu.Unlock()
	out := make([]ckpt.Entry, len(pristine))
	copy(out, pristine)
	if tamper != nil {
		for i := range out {
			out[i].Blob = tamper(pristine, i)
		}
	}
	return out
}

// Prune unlinks every checkpoint file except the newest keep, returning
// how many were dropped — the generation-counter bound on superseded
// epochs. keep <= 0 empties the store; keep >= Len is a no-op.
func (s *Store) Prune(keep int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if keep < 0 {
		keep = 0
	}
	eps := s.epochs()
	drop := len(eps) - keep
	if drop <= 0 {
		return 0
	}
	for _, e := range eps[:drop] {
		_ = s.fs.Unlink(EpochPath(s.dir, e))
	}
	return drop
}
