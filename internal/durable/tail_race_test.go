//go:build race

package durable

import (
	"fmt"
	"sync"
	"testing"

	"asc/internal/core"
	"asc/internal/vfs"
	"asc/internal/workload"
)

// TestWALTailUnderRunAll is the SMP-gate hammer for the durable layer:
// a primary appends control-plane records while a standby tails the
// same log and a RunAll fleet drives concurrent slices on the side —
// the shape of a live cluster with a warm standby attached. Run under
// -race; the assertion beyond data-race freedom is that the tailer
// reconstructs exactly the appended chain, never a torn prefix.
func TestWALTailUnderRunAll(t *testing.T) {
	key := []byte("0123456789abcdef")
	fs := vfs.New()
	l, err := Create(fs, "/director", key)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	tl, err := NewTailer(fs, "/director", key)
	if err != nil {
		t.Fatalf("NewTailer: %v", err)
	}

	const total = 200
	var wg sync.WaitGroup

	// The concurrent RunAll fleet: four copies of the counter victim.
	v := workload.FaultVictims()[0]
	exe, err := v.Build(key)
	if err != nil {
		t.Fatalf("build victim: %v", err)
	}
	sys, err := core.NewSystem(core.Config{Key: key})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	reqs := make([]core.RunRequest, 4)
	for i := range reqs {
		reqs[i] = core.RunRequest{Exe: exe, Name: fmt.Sprintf("h%d", i), Stdin: v.Stdin}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := sys.RunAll(reqs, 4); err != nil {
			t.Errorf("RunAll: %v", err)
		}
	}()

	// The primary appends while the standby tails.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := l.Append(&Record{Tick: uint64(i), Kind: KindBeat}); err != nil {
				t.Errorf("Append %d: %v", i, err)
				return
			}
		}
	}()
	var got []Record
	for len(got) < total {
		recs, err := tl.Tail()
		if err != nil {
			t.Fatalf("Tail: %v", err)
		}
		got = append(got, recs...)
	}
	wg.Wait()

	if len(got) != total {
		t.Fatalf("tailed %d records, want %d", len(got), total)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Tick != uint64(i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}
