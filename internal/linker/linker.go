// Package linker combines relocatable SELF objects into a relocatable
// executable.
//
// Library objects are resolved with archive semantics: a library member is
// linked in only if it defines a symbol that is still undefined, applied
// transitively. This matters for the paper's evaluation — a program's
// policy must contain exactly the system call stubs it actually links, not
// the whole libc (Table 1 counts distinct calls per program).
//
// The linker's output is laid out and has its relocations applied, but the
// relocation and symbol tables are retained (Relocatable=true) so the
// trusted installer can rewrite the binary, exactly as PLTO requires
// relocatable inputs.
package linker

import (
	"errors"
	"fmt"

	"asc/internal/binfmt"
)

// ErrUndefined indicates unresolved symbols after library search.
var ErrUndefined = errors.New("linker: undefined symbols")

// canonical section order in the output.
var sectionOrder = []string{binfmt.SecText, binfmt.SecROData, binfmt.SecData, binfmt.SecBSS}

// Link combines the given objects (all mandatory) and any library members
// needed to satisfy undefined references, and returns a laid-out
// relocatable executable. Exactly one object must define _start.
func Link(objects []*binfmt.File, library []*binfmt.File) (*binfmt.File, error) {
	if len(objects) == 0 {
		return nil, errors.New("linker: no input objects")
	}
	// Index library members by the global symbols they define.
	libDefs := make(map[string]int) // symbol name -> library index
	for li, lib := range library {
		for i := range lib.Symbols {
			s := &lib.Symbols[i]
			if s.Global && s.Defined() {
				if _, dup := libDefs[s.Name]; !dup {
					libDefs[s.Name] = li
				}
			}
		}
	}

	// Select the final set of objects: mandatory ones plus any library
	// members defining still-undefined globals, transitively.
	selected := append([]*binfmt.File(nil), objects...)
	inSet := make(map[*binfmt.File]bool, len(selected))
	for _, o := range selected {
		inSet[o] = true
	}
	// The entry symbol is a root: pull the library's _start if no
	// mandatory object defines one.
	definesStart := false
	for _, o := range selected {
		if s := o.Symbol("_start"); s != nil && s.Defined() {
			definesStart = true
			break
		}
	}
	if !definesStart {
		if li, ok := libDefs["_start"]; ok {
			selected = append(selected, library[li])
			inSet[library[li]] = true
		}
	}
	for {
		defined := make(map[string]bool)
		for _, o := range selected {
			for i := range o.Symbols {
				s := &o.Symbols[i]
				if s.Global && s.Defined() {
					defined[s.Name] = true
				}
			}
		}
		added := false
		for _, o := range selected {
			for i := range o.Symbols {
				s := &o.Symbols[i]
				if s.Defined() || defined[s.Name] {
					continue
				}
				li, ok := libDefs[s.Name]
				if !ok {
					continue
				}
				member := library[li]
				if !inSet[member] {
					selected = append(selected, member)
					inSet[member] = true
					added = true
				}
			}
		}
		if !added {
			break
		}
	}

	return merge(selected)
}

// merge concatenates the selected objects section by section, resolving
// symbols and rebasing relocations.
func merge(objs []*binfmt.File) (*binfmt.File, error) {
	out := &binfmt.File{Relocatable: true}
	outSecIdx := make(map[string]int32, len(sectionOrder))
	for _, name := range sectionOrder {
		outSecIdx[name] = int32(len(out.Sections))
		out.Sections = append(out.Sections, binfmt.Section{Name: name, Flags: sectionFlags(name)})
	}

	// chunkBase[obj][origSecIdx] = offset of that object's section chunk
	// within the output section.
	chunkBase := make([]map[int32]uint32, len(objs))
	for oi, o := range objs {
		chunkBase[oi] = make(map[int32]uint32, len(o.Sections))
		for si := range o.Sections {
			src := &o.Sections[si]
			dstIdx, ok := outSecIdx[src.Name]
			if !ok {
				if src.Size == 0 {
					continue
				}
				return nil, fmt.Errorf("linker: object %d has unexpected section %q", oi, src.Name)
			}
			dst := &out.Sections[dstIdx]
			// Align each chunk so code stays instruction-aligned.
			pad := (binfmt.SectionAlign - dst.Size%binfmt.SectionAlign) % binfmt.SectionAlign
			dst.Size += pad
			if src.Name != binfmt.SecBSS {
				dst.Data = append(dst.Data, make([]byte, pad)...)
			}
			chunkBase[oi][int32(si)] = dst.Size
			dst.Size += src.Size
			if src.Name != binfmt.SecBSS {
				dst.Data = append(dst.Data, src.Data...)
			}
		}
	}

	// Symbols: global definitions are unified; locals are copied per
	// object. symMap[obj][origIdx] = output symbol index.
	globalIdx := make(map[string]int32)
	symMap := make([]map[int32]int32, len(objs))
	addSym := func(s binfmt.Symbol) int32 {
		idx := int32(len(out.Symbols))
		out.Symbols = append(out.Symbols, s)
		return idx
	}
	// First pass: global definitions.
	for oi, o := range objs {
		symMap[oi] = make(map[int32]int32, len(o.Symbols))
		for i := range o.Symbols {
			s := o.Symbols[i]
			if !s.Global || !s.Defined() {
				continue
			}
			if prev, dup := globalIdx[s.Name]; dup {
				if out.Symbols[prev].Defined() {
					return nil, fmt.Errorf("linker: multiple definitions of %q", s.Name)
				}
			}
			s.Value += chunkBase[oi][s.Section]
			s.Section = outSecIdx[o.Sections[s.Section].Name]
			idx := addSym(s)
			globalIdx[s.Name] = idx
			symMap[oi][int32(i)] = idx
		}
	}
	// Second pass: locals and references.
	var undefined []string
	for oi, o := range objs {
		for i := range o.Symbols {
			if _, done := symMap[oi][int32(i)]; done {
				continue
			}
			s := o.Symbols[i]
			switch {
			case s.Defined() && !s.Global:
				s.Value += chunkBase[oi][s.Section]
				s.Section = outSecIdx[o.Sections[s.Section].Name]
				symMap[oi][int32(i)] = addSym(s)
			case !s.Defined():
				if idx, ok := globalIdx[s.Name]; ok {
					symMap[oi][int32(i)] = idx
				} else {
					undefined = append(undefined, s.Name)
				}
			}
		}
	}
	if len(undefined) > 0 {
		return nil, fmt.Errorf("%w: %v", ErrUndefined, undefined)
	}

	// Relocations.
	for oi, o := range objs {
		for _, r := range o.Relocs {
			srcSec := o.Sections[r.Section].Name
			dstIdx, ok := outSecIdx[srcSec]
			if !ok {
				return nil, fmt.Errorf("linker: reloc in unexpected section %q", srcSec)
			}
			newSym, ok := symMap[oi][r.Sym]
			if !ok {
				return nil, fmt.Errorf("linker: reloc references unmapped symbol %d in object %d", r.Sym, oi)
			}
			out.Relocs = append(out.Relocs, binfmt.Reloc{
				Section: dstIdx,
				Offset:  r.Offset + chunkBase[oi][r.Section],
				Sym:     newSym,
				Addend:  r.Addend,
			})
		}
	}
	out.SortRelocs()

	if _, ok := globalIdx["_start"]; !ok {
		return nil, errors.New("linker: no _start symbol")
	}
	out.Layout()
	if err := out.ApplyRelocs(); err != nil {
		return nil, fmt.Errorf("linker: %w", err)
	}
	return out, nil
}

func sectionFlags(name string) uint8 {
	switch name {
	case binfmt.SecText:
		return binfmt.FlagRead | binfmt.FlagExec
	case binfmt.SecROData:
		return binfmt.FlagRead
	default:
		return binfmt.FlagRead | binfmt.FlagWrite
	}
}
