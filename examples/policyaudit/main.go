// Policy audit: generate ASC (static analysis) and Systrace-style
// (trained) policies for the corpus and diff them — the experiment behind
// Tables 1 and 2 of the paper.
//
// Run with: go run ./examples/policyaudit
package main

import (
	"fmt"
	"log"
	"sort"

	"asc"
	"asc/internal/kernel"
	"asc/internal/libc"
	"asc/internal/systrace"
	"asc/internal/workload"
)

func main() {
	for _, name := range workload.Names() {
		exe, err := workload.Build(name, libc.OpenBSD)
		if err != nil {
			log.Fatal(err)
		}
		pp, rep, err := asc.GeneratePolicy(exe, name, asc.OpenBSD)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := workload.Program(name, libc.OpenBSD)
		if err != nil {
			log.Fatal(err)
		}
		trained, err := systrace.Train(exe, name,
			[]systrace.Input{{Stdin: spec.TrainingInput()}},
			systrace.TrainConfig{Personality: kernel.OpenBSD})
		if err != nil {
			log.Fatal(err)
		}
		trained.GeneralizeFS()

		ascNames := pp.DistinctNames()
		sysNames := trained.ExpandedNames()
		fmt.Printf("%s: static analysis %d calls, training %d calls\n",
			name, len(ascNames), len(sysNames))
		for _, w := range rep.Warnings {
			fmt.Printf("  warning: %s\n", w)
		}
		missed, extra := diff(ascNames, sysNames)
		fmt.Printf("  missed by training (would cause false alarms): %v\n", missed)
		fmt.Printf("  allowed only by training (unneeded permissions): %v\n", extra)
		fmt.Println()
	}
	fmt.Println("Static analysis is conservative: it never misses a needed call")
	fmt.Println("(no false alarms), while trained policies both miss rare paths")
	fmt.Println("and over-permit through generic fsread/fswrite aliases.")
}

// diff returns asc-only and systrace-only names.
func diff(ascNames, sysNames []string) (missed, extra []string) {
	in := func(xs []string, x string) bool {
		i := sort.SearchStrings(xs, x)
		return i < len(xs) && xs[i] == x
	}
	sort.Strings(ascNames)
	sort.Strings(sysNames)
	for _, n := range ascNames {
		if !in(sysNames, n) {
			missed = append(missed, n)
		}
	}
	for _, n := range sysNames {
		if !in(ascNames, n) {
			extra = append(extra, n)
		}
	}
	return missed, extra
}
