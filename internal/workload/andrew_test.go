package workload

import (
	"testing"

	"asc/internal/libc"
)

var andrewTestCfg = AndrewConfig{Files: 3, FileSize: 4 << 10, Iterations: 1}

func TestAndrewPermissive(t *testing.T) {
	tools, err := BuildTools(libc.Linux)
	if err != nil {
		t.Fatalf("BuildTools: %v", err)
	}
	res, err := RunAndrew(tools, nil, andrewTestCfg)
	if err != nil {
		t.Fatalf("RunAndrew: %v", err)
	}
	if res.Runs != 9 {
		t.Errorf("runs = %d, want 9 tool invocations", res.Runs)
	}
	if res.Syscalls < 100 {
		t.Errorf("only %d syscalls; benchmark not exercising I/O", res.Syscalls)
	}
}

func TestAndrewAuthenticatedMatchesAndCosts(t *testing.T) {
	key := []byte("0123456789abcdef")
	tools, err := BuildTools(libc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := RunAndrew(tools, nil, andrewTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	installed, err := InstallTools(tools, key)
	if err != nil {
		t.Fatalf("InstallTools: %v", err)
	}
	auth, err := RunAndrew(installed, key, andrewTestCfg)
	if err != nil {
		t.Fatalf("RunAndrew(auth): %v", err)
	}
	if auth.Syscalls != orig.Syscalls {
		t.Errorf("syscall counts differ: auth %d vs orig %d", auth.Syscalls, orig.Syscalls)
	}
	if auth.Cycles <= orig.Cycles {
		t.Errorf("authenticated cycles %d <= original %d", auth.Cycles, orig.Cycles)
	}
	overhead := 100 * float64(auth.Cycles-orig.Cycles) / float64(orig.Cycles)
	// The paper reports 0.96%; the shape requirement is "around a
	// percent", certainly under 10.
	if overhead <= 0 || overhead > 10 {
		t.Errorf("overhead = %.2f%%, want ~1%%", overhead)
	}
	t.Logf("andrew: %d syscalls, overhead %.2f%%", orig.Syscalls, overhead)
}

func TestPerfProgramsRun(t *testing.T) {
	for _, spec := range PerfSuite() {
		src := spec.Source(2) // tiny iteration count for the unit test
		exe, err := BuildSource(spec.Name, src, libc.Linux)
		if err != nil {
			t.Fatalf("build %s: %v", spec.Name, err)
		}
		if exe == nil {
			t.Fatal("nil exe")
		}
	}
	if len(PerfSuite()) != 9 {
		t.Errorf("suite has %d programs, want 9 (Table 5)", len(PerfSuite()))
	}
	if _, ok := PerfSpecByName("pyramid"); !ok {
		t.Error("PerfSpecByName(pyramid) failed")
	}
	if _, ok := PerfSpecByName("nope"); ok {
		t.Error("PerfSpecByName(nope) succeeded")
	}
}

func TestAndrewMultipleIterations(t *testing.T) {
	// The task sequence must be repeatable on the same filesystem
	// (mkdir hits EEXIST, files are recreated, the archive is rebuilt).
	tools, err := BuildTools(libc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AndrewConfig{Files: 2, FileSize: 2 << 10, Iterations: 3}
	res, err := RunAndrew(tools, nil, cfg)
	if err != nil {
		t.Fatalf("RunAndrew x3: %v", err)
	}
	if res.Runs != 27 {
		t.Errorf("runs = %d, want 27 (9 tools x 3 iterations)", res.Runs)
	}
	// Each iteration performs the same work, so syscalls scale ~linearly.
	single, err := RunAndrew(tools, nil, AndrewConfig{Files: 2, FileSize: 2 << 10, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Syscalls < 2*single.Syscalls {
		t.Errorf("3 iterations made %d syscalls vs %d for 1", res.Syscalls, single.Syscalls)
	}
}
