// Package captrack implements the Section 5.3 extension: capability
// tracking policies for file descriptors.
//
// The policy "a read's descriptor must have been returned by an earlier
// open" requires runtime state: the set of currently active descriptors.
// Following the paper, the set lives in *application* memory — keeping
// heavyweight state out of the kernel — and is protected with the same
// online-memory-checker construction as the control-flow state: a MAC
// over the set contents and an in-kernel counter nonce, recomputed on
// every update, so a compromised application can neither forge nor replay
// the set.
//
// Layout in application memory at Addr:
//
//	count  uint32
//	fds    [Cap]uint32
//	mac    [16]byte
package captrack

import (
	"encoding/binary"
	"errors"
	"fmt"

	"asc/internal/mac"
	"asc/internal/vm"
)

// Errors reported by tracker operations.
var (
	ErrTampered   = errors.New("captrack: state MAC mismatch (tampered or replayed)")
	ErrFull       = errors.New("captrack: descriptor set full")
	ErrNotTracked = errors.New("captrack: descriptor not in set")
)

// Tracker verifies and updates one process's descriptor set. The kernel
// holds only the Tracker (a counter and an address); the set itself lives
// in the application.
type Tracker struct {
	key     *mac.Keyed
	addr    uint32
	cap     int
	counter uint64

	// AESBlocks accumulates block operations for cycle accounting.
	AESBlocks int
}

// DefaultCapacity is the descriptor-set capacity used by the installer
// and kernel when capability tracking is enabled.
const DefaultCapacity = 64

// StateSize returns the in-application footprint for a set of the given
// capacity.
func StateSize(capacity int) uint32 { return 4 + 4*uint32(capacity) + mac.Size }

// InitialState renders the serialized set containing fds, sealed under
// nonce counter=0. The trusted installer embeds this in the binary's
// .auth section; the kernel attaches to it at process start.
func InitialState(key *mac.Keyed, fds []uint32, capacity int) ([]byte, error) {
	if len(fds) > capacity {
		return nil, ErrFull
	}
	raw := make([]byte, StateSize(capacity))
	binary.LittleEndian.PutUint32(raw, uint32(len(fds)))
	for i, fd := range fds {
		binary.LittleEndian.PutUint32(raw[4+4*i:], fd)
	}
	t := &Tracker{key: key, cap: capacity}
	tag, _ := key.Sum(t.payload(raw, uint32(len(fds))))
	copy(raw[4+4*capacity:], tag[:])
	return raw, nil
}

// Attach creates a tracker over an existing serialized set at addr (as
// embedded by InitialState), with the nonce counter starting at zero.
func Attach(key *mac.Keyed, addr uint32, capacity int) (*Tracker, error) {
	if capacity <= 0 || capacity > 1024 {
		return nil, fmt.Errorf("captrack: capacity %d out of range", capacity)
	}
	return &Tracker{key: key, addr: addr, cap: capacity}, nil
}

// New initializes the set (empty) in application memory and returns its
// tracker.
func New(key *mac.Keyed, mem *vm.Memory, addr uint32, capacity int) (*Tracker, error) {
	if capacity <= 0 || capacity > 1024 {
		return nil, fmt.Errorf("captrack: capacity %d out of range", capacity)
	}
	t := &Tracker{key: key, addr: addr, cap: capacity}
	if err := mem.KernelWrite(addr, make([]byte, StateSize(capacity))); err != nil {
		return nil, err
	}
	return t, t.seal(mem, nil)
}

// load reads and verifies the set.
func (t *Tracker) load(mem *vm.Memory) ([]uint32, error) {
	raw, err := mem.KernelRead(t.addr, StateSize(t.cap))
	if err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(raw)
	if int(count) > t.cap {
		return nil, ErrTampered
	}
	var tag mac.Tag
	copy(tag[:], raw[4+4*t.cap:])
	ok, blocks := t.key.Verify(t.payload(raw, count), tag)
	t.AESBlocks += blocks
	if !ok {
		return nil, ErrTampered
	}
	fds := make([]uint32, count)
	for i := range fds {
		fds[i] = binary.LittleEndian.Uint32(raw[4+4*i:])
	}
	return fds, nil
}

// payload builds the MACed bytes: count, the live entries, and the
// counter nonce.
func (t *Tracker) payload(raw []byte, count uint32) []byte {
	msg := make([]byte, 0, 4+4*count+8)
	msg = append(msg, raw[:4+4*count]...)
	var ctr [8]byte
	binary.LittleEndian.PutUint64(ctr[:], t.counter)
	return append(msg, ctr[:]...)
}

// seal writes the set and a fresh MAC under an incremented nonce.
func (t *Tracker) seal(mem *vm.Memory, fds []uint32) error {
	raw := make([]byte, StateSize(t.cap))
	binary.LittleEndian.PutUint32(raw, uint32(len(fds)))
	for i, fd := range fds {
		binary.LittleEndian.PutUint32(raw[4+4*i:], fd)
	}
	tag, blocks := t.key.Sum(t.payload(raw, uint32(len(fds))))
	t.AESBlocks += blocks
	copy(raw[4+4*t.cap:], tag[:])
	return mem.KernelWrite(t.addr, raw)
}

// Add records a descriptor returned by open/socket/dup.
func (t *Tracker) Add(mem *vm.Memory, fd uint32) error {
	fds, err := t.load(mem)
	if err != nil {
		return err
	}
	for _, f := range fds {
		if f == fd {
			return nil // already tracked (dup2 onto itself)
		}
	}
	if len(fds) >= t.cap {
		return ErrFull
	}
	fds = append(fds, fd)
	t.counter++
	return t.seal(mem, fds)
}

// Remove drops a descriptor on close.
func (t *Tracker) Remove(mem *vm.Memory, fd uint32) error {
	fds, err := t.load(mem)
	if err != nil {
		return err
	}
	out := fds[:0]
	found := false
	for _, f := range fds {
		if f == fd {
			found = true
			continue
		}
		out = append(out, f)
	}
	if !found {
		return ErrNotTracked
	}
	t.counter++
	return t.seal(mem, out)
}

// Counter returns the in-kernel nonce. A checkpoint seals it so restore
// can resume verification of the in-memory set.
func (t *Tracker) Counter() uint64 { return t.counter }

// SetCounter overwrites the nonce; used by checkpoint restore before
// Reseed re-verifies the restored set under it.
func (t *Tracker) SetCounter(c uint64) { t.counter = c }

// Reseed verifies the in-memory set under the current nonce, then
// re-seals it under a fresh one. Checkpoint restore calls it so that (a)
// the restored set is proven authentic before the process runs, and (b)
// pre-checkpoint copies of the set no longer verify afterwards — the
// same replay cut the memory checker's counter bump provides.
func (t *Tracker) Reseed(mem *vm.Memory) error {
	fds, err := t.load(mem)
	if err != nil {
		return err
	}
	t.counter++
	return t.seal(mem, fds)
}

// Check verifies that fd is a tracked capability (the read-policy check).
func (t *Tracker) Check(mem *vm.Memory, fd uint32) error {
	fds, err := t.load(mem)
	if err != nil {
		return err
	}
	for _, f := range fds {
		if f == fd {
			return nil
		}
	}
	return ErrNotTracked
}
