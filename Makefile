GO ?= go

.PHONY: build test bench check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench 'SyscallPlain|SyscallVerified|VerifyAllocs' \
		-benchtime 2x ./internal/kernel

# check is the full gate: gofmt, vet, build, race tests, the kernel
# benchmarks, and BENCH_kernel.json emission.
check:
	sh scripts/check.sh

clean:
	rm -f BENCH_kernel.json
