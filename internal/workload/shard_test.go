package workload

import (
	"testing"

	"asc/internal/core"
	"asc/internal/kernel"
	"asc/internal/libc"
	anet "asc/internal/net"
)

func TestShardMap(t *testing.T) {
	for _, replicas := range []int{1, 2, 3, 4, 8} {
		routes := ShardMap(replicas)
		if len(routes) != NetShardSlots {
			t.Fatalf("replicas=%d: %d routes", replicas, len(routes))
		}
		cap := (NetShardSlots + replicas - 1) / replicas
		load := make([]int, replicas)
		for k, r := range routes {
			if r < 0 || r >= replicas {
				t.Fatalf("replicas=%d slot %d -> %d out of range", replicas, k, r)
			}
			load[r]++
		}
		for r, n := range load {
			if n > cap {
				t.Errorf("replicas=%d: replica %d owns %d slots, cap %d", replicas, r, n, cap)
			}
			if NetShardSlots%replicas == 0 && n != NetShardSlots/replicas {
				t.Errorf("replicas=%d: replica %d owns %d slots, want exactly %d", replicas, r, n, NetShardSlots/replicas)
			}
		}
		// Deterministic: same input, same map.
		again := ShardMap(replicas)
		for k := range routes {
			if routes[k] != again[k] {
				t.Fatalf("replicas=%d: map not deterministic at slot %d", replicas, k)
			}
		}
	}
	// One replica owns everything, under both maps.
	for k, r := range ShardMap(1) {
		if r != 0 {
			t.Errorf("ShardMap(1) slot %d -> %d", k, r)
		}
	}
	for k, r := range ShardMapModulo(3) {
		if r != k%3 {
			t.Errorf("ShardMapModulo(3) slot %d -> %d", k, r)
		}
	}
	// Resharding: adding one replica keeps more slots in place than the
	// modulo reshuffle — the property the consistent hash is for. (On
	// power-of-two doublings the bounded-load cap halves, forcing ~half
	// the 8 slots to move under any balanced scheme, so the win shows on
	// single-replica growth.)
	moved := func(a, b []int) int {
		n := 0
		for k := range a {
			if a[k] != b[k] {
				n++
			}
		}
		return n
	}
	chMoved := moved(ShardMap(3), ShardMap(4))
	modMoved := moved(ShardMapModulo(3), ShardMapModulo(4))
	if chMoved >= modMoved {
		t.Errorf("consistent hash moved %d slots on 3->4, modulo moved %d", chMoved, modMoved)
	}
}

// buildShardFleet installs `replicas` event-loop replicas and `clients`
// LB clients on a networked enforcing system; requests list replicas
// first, then clients.
func buildShardFleet(t *testing.T, replicas, clients, iters int, routes []int, opts ...kernel.Option) (*core.System, []core.RunRequest) {
	t.Helper()
	key := []byte("net-workload-key")
	kopts := append([]kernel.Option{kernel.WithNetwork(anet.New())}, opts...)
	sys, err := core.NewSystem(core.Config{Key: key, KernelOptions: kopts})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	owned := shardOwned(replicas, routes)
	var reqs []core.RunRequest
	for r := 0; r < replicas; r++ {
		name := "netreplica" + string(rune('0'+r))
		src := NetReplicaSource(NetShardPortBase+uint16(r), clients, NetShardRounds(iters, len(owned[r])))
		raw, err := BuildSource(name, src, libc.Linux)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		exe, _, _, err := sys.Install(raw, name)
		if err != nil {
			t.Fatalf("install %s: %v", name, err)
		}
		reqs = append(reqs, core.RunRequest{Exe: exe, Name: name})
	}
	cliRaw, err := BuildSource("netlbclient", NetLBClientSource(iters, replicas, routes), libc.Linux)
	if err != nil {
		t.Fatalf("build client: %v", err)
	}
	cli, _, _, err := sys.Install(cliRaw, "netlbclient")
	if err != nil {
		t.Fatalf("install client: %v", err)
	}
	for i := 0; i < clients; i++ {
		reqs = append(reqs, core.RunRequest{Exe: cli, Name: "netlbclient"})
	}
	return sys, reqs
}

func checkShardFleet(t *testing.T, res []core.ProcResult, reqs []core.RunRequest, replicas, clients, iters int, routes []int) {
	t.Helper()
	owned := shardOwned(replicas, routes)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("proc %d (%s): %v", i, reqs[i].Name, r.Err)
		}
		if r.Killed {
			t.Fatalf("proc %d (%s) killed: %v", i, reqs[i].Name, r.Reason)
		}
		if r.ExitCode != 0 {
			t.Fatalf("proc %d (%s) exit=%d output=%q", i, reqs[i].Name, r.ExitCode, r.Output)
		}
		if r.Verified == 0 {
			t.Fatalf("proc %d (%s): no verified calls — traffic bypassed the monitor", i, reqs[i].Name)
		}
	}
	for r := 0; r < replicas; r++ {
		want := NetShardServerOutput(clients, iters, len(owned[r]))
		if res[r].Output != want {
			t.Errorf("replica %d output = %q, want %q", r, res[r].Output, want)
		}
	}
	for i := replicas; i < len(res); i++ {
		if got, want := res[i].Output, NetShardClientOutput(iters); got != want {
			t.Errorf("client %d output = %q, want %q", i-replicas, got, want)
		}
	}
}

// TestNetShardFleet runs 4 replicas and 4 LB clients under enforcement
// with the verify cache: every request crosses the authenticated trap
// handler, routed by the consistent-hash table.
func TestNetShardFleet(t *testing.T) {
	const replicas, clients, iters = 4, 4, 2
	routes := ShardMap(replicas)
	sys, reqs := buildShardFleet(t, replicas, clients, iters, routes, kernel.WithVerifyCache())
	res, err := sys.RunAll(reqs, 4)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	checkShardFleet(t, res, reqs, replicas, clients, iters, routes)
}

// TestNetShardFleetModulo runs the modulo-fallback routing end to end.
func TestNetShardFleetModulo(t *testing.T) {
	const replicas, clients, iters = 2, 2, 1
	routes := ShardMapModulo(replicas)
	sys, reqs := buildShardFleet(t, replicas, clients, iters, routes)
	res, err := sys.RunAll(reqs, 2)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	checkShardFleet(t, res, reqs, replicas, clients, iters, routes)
}

// TestNetShardFleetDeterministic checks the contract the bench sweep
// relies on: per-process outputs, cycles, and syscall counts do not
// depend on the worker count driving the fleet.
func TestNetShardFleetDeterministic(t *testing.T) {
	const replicas, clients, iters = 2, 4, 1
	routes := ShardMap(replicas)
	type snap struct {
		out    string
		cycles uint64
		calls  uint64
	}
	var ref []snap
	for _, workers := range []int{1, 2, 8} {
		sys, reqs := buildShardFleet(t, replicas, clients, iters, routes)
		res, err := sys.RunAll(reqs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		cur := make([]snap, len(res))
		for i, r := range res {
			if r.Err != nil || r.Killed {
				t.Fatalf("workers=%d proc %d failed: err=%v killed=%v output=%q", workers, i, r.Err, r.Killed, r.Output)
			}
			cur[i] = snap{r.Output, r.Cycles, r.Syscalls}
		}
		if ref == nil {
			ref = cur
			continue
		}
		for i := range cur {
			if cur[i] != ref[i] {
				t.Fatalf("workers=%d proc %d diverged: %+v vs %+v", workers, i, cur[i], ref[i])
			}
		}
	}
}
