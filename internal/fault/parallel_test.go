package fault

import (
	"bytes"
	"testing"
)

// TestCampaignParallelParity runs the same campaign serially and on an
// 8-wide pool: the matrices must be byte-identical — in-boundary
// detection stays 100% and every reason matches the serial run for the
// same seeds — because subseeds depend only on (seed, victim, trial)
// and every cell owns its kernels and fault engines.
func TestCampaignParallelParity(t *testing.T) {
	run := func(workers int) []byte {
		t.Helper()
		m, err := Run(Config{Seed: 42, Trials: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if fails := m.Failures(); len(fails) > 0 {
			for _, f := range fails {
				t.Errorf("workers=%d: %s", workers, f)
			}
		}
		j, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Error("parallel campaign matrix differs from serial run")
	}
}
