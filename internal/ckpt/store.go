// store.go holds the supervisor-side checkpoint store. The store is the
// *trusted* half of the epoch protocol: it remembers, outside the blobs,
// which epoch each slot was sealed with. Chain() hands the restorer the
// entries newest-first together with those trusted epochs, so a blob
// whose sealed epoch disagrees (a replayed older checkpoint) is caught
// even though its seal verifies.
package ckpt

import (
	"errors"
	"fmt"
	"sync"
)

// Entry pairs a sealed blob with the trusted epoch it was stored under.
type Entry struct {
	Epoch uint64
	Blob  []byte
}

// Store is a monotonic checkpoint chain. It is safe for concurrent use
// except for the Tamper hook, which must be installed before the store
// is shared.
type Store struct {
	// Tamper, when non-nil, may replace each entry's blob as Chain()
	// hands it out (the fault campaign's injection point for at-rest
	// checkpoint corruption). It receives the pristine chain
	// (newest-first) and the index being fetched. The stored entries are
	// never modified.
	Tamper func(chain []Entry, i int) []byte

	mu      sync.Mutex
	entries []Entry // ascending epoch
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// ErrEpochOrder is returned by Put when the epoch does not advance.
var ErrEpochOrder = errors.New("ckpt: store epoch must increase")

// Put appends a checkpoint under a strictly increasing epoch.
func (s *Store) Put(epoch uint64, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.entries); n > 0 && epoch <= s.entries[n-1].Epoch {
		return fmt.Errorf("%w: %d after %d", ErrEpochOrder, epoch, s.entries[n-1].Epoch)
	}
	s.entries = append(s.entries, Entry{Epoch: epoch, Blob: blob})
	return nil
}

// Len returns the number of stored checkpoints.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// NewestEpoch returns the highest stored epoch (0 when empty).
func (s *Store) NewestEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return 0
	}
	return s.entries[len(s.entries)-1].Epoch
}

// Prune drops every entry except the newest keep, returning how many
// were dropped. keep <= 0 empties the store; keep >= Len is a no-op.
// Pruning bounds the chain's growth under long-running checkpoint
// cadences; the newest entries are the only ones a fallback chain ever
// admits warm, so dropping superseded epochs loses no recoverability
// the fence would have granted.
func (s *Store) Prune(keep int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if keep < 0 {
		keep = 0
	}
	drop := len(s.entries) - keep
	if drop <= 0 {
		return 0
	}
	s.entries = append(s.entries[:0], s.entries[drop:]...)
	return drop
}

// Chain returns the fallback chain, newest first. Epochs come from the
// store's own bookkeeping, never from the blobs; blobs pass through the
// Tamper hook when one is installed.
func (s *Store) Chain() []Entry {
	s.mu.Lock()
	pristine := make([]Entry, len(s.entries))
	for i := range s.entries {
		pristine[i] = s.entries[len(s.entries)-1-i]
	}
	tamper := s.Tamper
	s.mu.Unlock()
	out := make([]Entry, len(pristine))
	copy(out, pristine)
	if tamper != nil {
		for i := range out {
			out[i].Blob = tamper(pristine, i)
		}
	}
	return out
}
