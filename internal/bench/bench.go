// Package bench regenerates the paper's evaluation artifacts: Tables 1-4
// and 6, the Andrew-style multiprogram benchmark, and the monitor
// enforcement comparison of Section 2.3. Each driver returns structured
// data plus a Render method that prints rows in the paper's format.
package bench

import (
	"fmt"
	"strings"

	"asc/internal/binfmt"
	"asc/internal/installer"
	"asc/internal/kernel"
	"asc/internal/libc"
	"asc/internal/systrace"
	"asc/internal/vfs"
	"asc/internal/workload"
)

// DefaultKey is the demonstration MAC key used by the benchmark drivers.
var DefaultKey = []byte("asc-benchmark-k1")

// BatchDepth is the group-commit burst size the cached benchmark columns
// use (kernel.WithBatchVerify). Eight balances the amortization win
// against flush latency; the Batch sweep explores other depths.
const BatchDepth = 8

// newBenchKernel builds a kernel with the standard benchmark filesystem:
// /data inputs for the performance suite and the usual directory tree.
// Extra options (e.g. kernel.WithVerifyCache) apply on top of the mode.
func newBenchKernel(key []byte, mode kernel.Mode, opts ...kernel.Option) (*kernel.Kernel, error) {
	fs := vfs.New()
	for _, d := range []string{"/tmp", "/etc", "/bin", "/data", "/var/run", "/work"} {
		if err := fs.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	// Input files for the performance programs.
	blob := make([]byte, 8192)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	for _, s := range workload.PerfSuite() {
		if err := fs.WriteFile("/data/"+s.Name+".in", blob, 0o644); err != nil {
			return nil, err
		}
	}
	if err := fs.WriteFile("/data/micro.in", blob, 0o644); err != nil {
		return nil, err
	}
	if mode != kernel.Enforce {
		key = nil
	}
	return kernel.New(fs, key, append([]kernel.Option{kernel.WithMode(mode)}, opts...)...)
}

// runOnce spawns and runs a binary to completion, returning the process.
func runOnce(k *kernel.Kernel, exe *binfmt.File, name, stdin string) (*kernel.Process, error) {
	p, err := k.Spawn(exe, name)
	if err != nil {
		return nil, err
	}
	p.Stdin = []byte(stdin)
	if err := k.Run(p, 4_000_000_000); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	if p.Killed {
		return nil, fmt.Errorf("bench: %s killed: %s", name, p.KilledBy)
	}
	return p, nil
}

// buildPair produces the PLTO-optimized baseline and the authenticated
// binary for one source program.
func buildPair(name, source string, key []byte) (orig, auth *binfmt.File, err error) {
	exe, err := workload.BuildSource(name, source, libc.Linux)
	if err != nil {
		return nil, nil, err
	}
	orig, err = installer.Optimize(exe)
	if err != nil {
		return nil, nil, err
	}
	auth, _, _, err = installer.Install(exe, name, installer.Options{Key: key})
	if err != nil {
		return nil, nil, err
	}
	return orig, auth, nil
}

// pct returns the percentage overhead of b over a.
func pct(a, b uint64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (float64(b) - float64(a)) / float64(a)
}

// renderTable aligns rows of columns.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// trainedPolicy builds the generalized Systrace-style policy for a
// policy-study program on the OpenBSD personality.
func trainedPolicy(name string) (*systrace.Policy, error) {
	exe, err := workload.Build(name, libc.OpenBSD)
	if err != nil {
		return nil, err
	}
	spec, err := workload.Program(name, libc.OpenBSD)
	if err != nil {
		return nil, err
	}
	pol, err := systrace.Train(exe, name,
		[]systrace.Input{{Stdin: spec.TrainingInput()}},
		systrace.TrainConfig{Personality: kernel.OpenBSD})
	if err != nil {
		return nil, err
	}
	pol.GeneralizeFS()
	return pol, nil
}
