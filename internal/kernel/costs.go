// costs.go defines the deterministic cycle model of the simulated kernel.
//
// The paper measures costs with the Pentium rdtsc counter (Table 4). Our
// substitution is a calibrated deterministic model: each trap pays a fixed
// kernel entry/exit cost, each handler a per-call cost (plus per-byte
// costs for data-moving calls), and the ASC verification path pays a fixed
// overhead plus a per-AES-block cost for the MAC computations it actually
// performs. The constants are calibrated so the *unauthenticated* column
// of Table 4 approximates the paper's, and the authenticated overhead
// lands near the paper's ~4,000 cycles per call; all downstream results
// (Tables 4 and 6, the Andrew-style benchmark) then emerge from the
// simulation rather than being hard-coded.
package kernel

// CostModel holds the cycle-accounting constants.
type CostModel struct {
	// Trap is the kernel entry/exit cost paid by every system call.
	Trap uint64
	// AuthFixed is the fixed cost of the authenticated-call verification
	// logic (argument unpacking, record parsing, table checks),
	// excluding MAC computation.
	AuthFixed uint64
	// CacheHit is the fixed cost of a verification-cache hit: register
	// compares against the verified call-site snapshot plus one
	// store-generation compare per MAC-checked span. It replaces
	// AuthFixed plus the Step 1/2 AES work on a hit; the control-flow
	// memory checker is still charged per call (CFCheck batched,
	// PerAESBlock classic).
	CacheHit uint64
	// CacheAdopt is the cost of adopting a fleet-shared cache entry
	// into a process's first-level cache: a byte compare of the auth
	// record and every MAC-checked span against the fleet-verified
	// copies. Paid once per (process, site) — and again after an
	// invalidation — instead of the full AES re-verification.
	CacheAdopt uint64
	// PerAESBlock is the cost of one AES block operation during MAC
	// computation and verification.
	PerAESBlock uint64
	// CFCheck is the AES-free control-flow check under group commit:
	// the in-kernel mirror compare (watch counter, state-word bytes,
	// counter equation) plus the predecessor-set membership test.
	CFCheck uint64
	// PerAESBlockBatched is the discounted per-block cost inside a
	// group-commit flush: one key-schedule walk and one scratch
	// checkout are shared by the whole batch, and the 12-byte state
	// messages stream through the cipher back to back.
	PerAESBlockBatched uint64
	// CommitFlush is the fixed cost of materializing a group-commit
	// batch: encoding the queued updates, the state-word writeback,
	// and the read-back validation of the final store.
	CommitFlush uint64
	// ReadPerByte and WritePerByte model buffer copying and file system
	// update costs of read/write-class calls (x1000 fixed point:
	// cycles = n * PerByte / 1000).
	ReadPerByte  uint64
	WritePerByte uint64
	// PollPerFD is the per-entry cost of scanning one pollfd (or one
	// select bit): copy-in, fd resolution, and the readiness probe. It
	// is charged per call whether or not the call parks, like every
	// other handler cost.
	PollPerFD uint64
	// DaemonSwitch is the cost of one user-space context switch, used
	// only by the Systrace-style delegating monitor comparison
	// (Section 2.3: daemon-based monitors pay two per call).
	DaemonSwitch uint64
	// PageFault is the fixed cost of servicing one page fault on the
	// demand-paged mmap arena (fault decode, page-table walk, residency
	// bookkeeping), excluding the AES cost of verifying a swapped-in
	// frame (charged per block at the batched rate).
	PageFault uint64
	// PageEvict is the fixed cost of evicting one resident page: the
	// clock scan amortized, swap-device write, and page-table update,
	// excluding the AES cost of sealing the frame.
	PageEvict uint64
}

// DefaultCosts is calibrated against Table 4's original-cost column.
var DefaultCosts = CostModel{
	Trap:               1000,
	AuthFixed:          2400,
	CacheHit:           250, // ~8 register compares + ~4 generation compares
	CacheAdopt:         400, // ~100B memcmp against the fleet-verified copies
	PerAESBlock:        250,
	CFCheck:            120,  // watch/bytes/counter compares + pred-set probe
	PerAESBlockBatched: 80,   // amortized schedule walk, streamed 12B messages
	CommitFlush:        200,  // batch encode + state writeback + read-back
	ReadPerByte:        1420, // read(4096) ≈ 1000 + 500 + 4096*1.42 ≈ 7,300 cycles
	WritePerByte:       9350, // write(4096) ≈ 1000 + 500 + 4096*9.35 ≈ 39,800 cycles
	PollPerFD:          50,   // pollfd copy-in + fd resolve + readiness probe
	DaemonSwitch:       3000,
	PageFault:          600, // fault decode + table walk + residency bookkeeping
	PageEvict:          400, // amortized clock scan + swap write + table update
}

// handlerCost is the fixed per-call cost of each system call handler, on
// top of the trap cost. Calls not listed cost defaultHandlerCost.
var handlerCost = map[uint16]uint64{}

const defaultHandlerCost = 150

func init() {
	// Calibrated fixed costs for the Table 4 microbenchmark calls.
	handlerCost[12] = 135 // getpid  -> ~1,135 cycles with trap
	handlerCost[13] = 390 // gettimeofday -> ~1,390
	handlerCost[9] = 150  // brk -> ~1,150
	handlerCost[2] = 500  // read base (plus per-byte)
	handlerCost[3] = 500  // write base (plus per-byte)

	// Socket family. The cost is charged whether or not the call parks
	// on the network (blocking consumes no modeled cycles), which keeps
	// per-process cycle counts independent of scheduling interleavings.
	handlerCost[26] = 300 // socket
	handlerCost[27] = 500 // sendto base (plus per-byte)
	handlerCost[28] = 500 // recvfrom base (plus per-byte)
	handlerCost[29] = 200 // bind
	handlerCost[30] = 700 // connect (handshake)
	handlerCost[77] = 250 // listen
	handlerCost[78] = 700 // accept (handshake)
	handlerCost[79] = 200 // shutdown
	handlerCost[84] = 400 // socketpair

	// Memory-mapping family (paged mode; the legacy brk-bump mmap pays
	// the same fixed cost).
	handlerCost[10] = 400 // mmap (page-table scan + mapping setup)
	handlerCost[11] = 300 // munmap (table walk + swap-residue unlink)
	handlerCost[87] = 250 // mprotect (table walk + flag rewrite)

	// Readiness multiplexing. The base covers set decode and writeback;
	// PollPerFD is added per entry. Charged whether or not the call
	// parks, like the blocking socket calls above.
	handlerCost[68] = 400 // select base (plus per-fd)
	handlerCost[69] = 400 // poll base (plus per-fd)
}
