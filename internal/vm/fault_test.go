package vm

import (
	"bytes"
	"testing"
)

// tornAt tears every kernel write covering addr down to keep bytes.
type tornAt struct {
	addr  uint32
	keep  int
	fires int
}

func (t *tornAt) TornWrite(addr uint32, n int) int {
	if addr != t.addr {
		return n
	}
	t.fires++
	return t.keep
}

func TestTornKernelWrite(t *testing.T) {
	m := NewMemory(0x1000, 0x100)
	m.Map(Segment{Name: "d", Start: 0x1000, End: 0x1100, Perms: PermRead | PermWrite})
	f := &tornAt{addr: 0x1010, keep: 3}
	m.SetWriteFaulter(f)

	if err := m.KernelWrite(0x1010, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	got, err := m.KernelRead(0x1010, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{1, 2, 3, 0, 0, 0, 0, 0}; !bytes.Equal(got, want) {
		t.Errorf("torn write landed %v, want %v", got, want)
	}
	if f.fires != 1 {
		t.Errorf("faulter fired %d times, want 1", f.fires)
	}
	// Writes at other addresses are untouched.
	if err := m.KernelWrite(0x1020, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	got, _ = m.KernelRead(0x1020, 2)
	if !bytes.Equal(got, []byte{9, 9}) {
		t.Errorf("unrelated write perturbed: %v", got)
	}
}

func TestTornKernelStore32(t *testing.T) {
	m := NewMemory(0x1000, 0x100)
	m.Map(Segment{Name: "d", Start: 0x1000, End: 0x1100, Perms: PermRead | PermWrite})
	m.SetWriteFaulter(&tornAt{addr: 0x1004, keep: 2})
	if err := m.KernelStore32(0x1004, 0xaabbccdd); err != nil {
		t.Fatal(err)
	}
	got, _ := m.KernelRead(0x1004, 4)
	if want := []byte{0xdd, 0xcc, 0, 0}; !bytes.Equal(got, want) {
		t.Errorf("torn store32 landed %v, want %v", got, want)
	}
}

// TestNoFaulterUnchanged pins the no-injector contract: with no faulter
// installed the write path behaves exactly as before.
func TestNoFaulterUnchanged(t *testing.T) {
	m := NewMemory(0x1000, 0x100)
	m.Map(Segment{Name: "d", Start: 0x1000, End: 0x1100, Perms: PermRead | PermWrite})
	if err := m.KernelWrite(0x1010, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, _ := m.KernelRead(0x1010, 4)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("write landed %v", got)
	}
	if err := m.KernelStore32(0x1020, 0x01020304); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.KernelLoad32(0x1020); v != 0x01020304 {
		t.Errorf("store32 landed %#x", v)
	}
}

func TestFlipGenerationBit(t *testing.T) {
	m := NewMemory(0x1000, 0x100)
	m.Map(Segment{Name: "d", Start: 0x1000, End: 0x1100, Perms: PermRead | PermWrite})
	g0, ok := m.SpanGeneration(0x1000, 4)
	if !ok {
		t.Fatal("span not covered")
	}
	if !m.FlipGenerationBit(0, 0) {
		t.Fatal("flip refused")
	}
	g1, _ := m.SpanGeneration(0x1000, 4)
	if g1 != g0^1 {
		t.Errorf("generation = %d, want %d", g1, g0^1)
	}
	if m.FlipGenerationBit(99, 0) {
		t.Error("flip of missing segment succeeded")
	}
	if m.NumSegments() != 1 {
		t.Errorf("NumSegments = %d, want 1", m.NumSegments())
	}
}
