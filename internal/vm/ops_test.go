package vm

import (
	"fmt"
	"testing"

	"asc/internal/isa"
)

// execOps runs a hand-built instruction sequence on a bare CPU and
// returns it for register inspection. The sequence must end with HALT.
func execOps(t *testing.T, ins []isa.Instr, setup func(*CPU)) *CPU {
	t.Helper()
	mem := NewMemory(0x1000, 64<<10)
	code := make([]byte, len(ins)*isa.InstrSize)
	for i, in := range ins {
		in.Encode(code[i*isa.InstrSize:])
	}
	if err := mem.KernelWrite(0x1000, code); err != nil {
		t.Fatal(err)
	}
	mem.Map(Segment{Name: "text", Start: 0x1000, End: 0x1000 + uint32(len(code)), Perms: PermRead | PermExec})
	mem.Map(Segment{Name: "data", Start: 0x8000, End: 0x9000, Perms: PermRead | PermWrite})
	c := New(mem, nil)
	c.PC = 0x1000
	c.Regs[isa.SP] = 0x9000
	// SP needs a writable region for PUSH/POP; data covers it.
	if setup != nil {
		setup(c)
	}
	if err := c.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return c
}

func TestALUOps(t *testing.T) {
	type tc struct {
		op   isa.Op
		a, b uint32
		want uint32
	}
	tests := []tc{
		{isa.OpADD, 7, 5, 12},
		{isa.OpSUB, 7, 5, 2},
		{isa.OpSUB, 5, 7, 0xfffffffe},
		{isa.OpMUL, 7, 5, 35},
		{isa.OpDIV, 35, 5, 7},
		{isa.OpMOD, 37, 5, 2},
		{isa.OpAND, 0b1100, 0b1010, 0b1000},
		{isa.OpOR, 0b1100, 0b1010, 0b1110},
		{isa.OpXOR, 0b1100, 0b1010, 0b0110},
		{isa.OpSHL, 1, 4, 16},
		{isa.OpSHR, 0x80000000, 31, 1},
		{isa.OpSHL, 1, 33, 2},               // shift amounts mask to 5 bits
		{isa.OpSHR, 0xff, 0xffffffe1, 0x7f}, // 0xffffffe1 & 31 == 1
	}
	for _, tt := range tests {
		t.Run(fmt.Sprintf("%v_%d_%d", tt.op, tt.a, tt.b), func(t *testing.T) {
			c := execOps(t, []isa.Instr{
				{Op: isa.OpMOVI, Rd: isa.R1, Imm: tt.a},
				{Op: isa.OpMOVI, Rd: isa.R2, Imm: tt.b},
				{Op: tt.op, Rd: isa.R3, Rs: isa.R1, Rt: isa.R2},
				{Op: isa.OpHALT},
			}, nil)
			if c.Regs[isa.R3] != tt.want {
				t.Errorf("= %#x, want %#x", c.Regs[isa.R3], tt.want)
			}
		})
	}
}

func TestALUImmediateOps(t *testing.T) {
	tests := []struct {
		op   isa.Op
		a    uint32
		imm  uint32
		want uint32
	}{
		{isa.OpADDI, 10, 0xffffffff, 9}, // += -1
		{isa.OpMULI, 6, 7, 42},
		{isa.OpANDI, 0xff, 0x0f, 0x0f},
		{isa.OpORI, 0xf0, 0x0f, 0xff},
		{isa.OpXORI, 0xff, 0xff, 0},
		{isa.OpSHLI, 3, 2, 12},
		{isa.OpSHRI, 12, 2, 3},
	}
	for _, tt := range tests {
		c := execOps(t, []isa.Instr{
			{Op: isa.OpMOVI, Rd: isa.R1, Imm: tt.a},
			{Op: tt.op, Rd: isa.R3, Rs: isa.R1, Imm: tt.imm},
			{Op: isa.OpHALT},
		}, nil)
		if c.Regs[isa.R3] != tt.want {
			t.Errorf("%v: = %#x, want %#x", tt.op, c.Regs[isa.R3], tt.want)
		}
	}
}

func TestBranchOps(t *testing.T) {
	// Each test: branch over a MOVI r3,1; r3 stays 0 iff branch taken.
	tests := []struct {
		op    isa.Op
		a, b  uint32
		taken bool
	}{
		{isa.OpBEQ, 5, 5, true},
		{isa.OpBEQ, 5, 6, false},
		{isa.OpBNE, 5, 6, true},
		{isa.OpBNE, 5, 5, false},
		{isa.OpBLT, 0xffffffff, 0, true},  // -1 < 0 signed
		{isa.OpBLT, 0, 0xffffffff, false}, // 0 < -1 signed is false
		{isa.OpBGE, 0, 0xffffffff, true},
		{isa.OpBGE, 0xffffffff, 0, false},
		{isa.OpBLTU, 0, 0xffffffff, true}, // unsigned
		{isa.OpBLTU, 0xffffffff, 0, false},
		{isa.OpBGEU, 0xffffffff, 0, true},
		{isa.OpBGEU, 0, 1, false},
	}
	for _, tt := range tests {
		t.Run(fmt.Sprintf("%v_%x_%x", tt.op, tt.a, tt.b), func(t *testing.T) {
			c := execOps(t, []isa.Instr{
				{Op: isa.OpMOVI, Rd: isa.R1, Imm: tt.a},
				{Op: isa.OpMOVI, Rd: isa.R2, Imm: tt.b},
				{Op: tt.op, Rs: isa.R1, Rt: isa.R2, Imm: 0x1000 + 4*isa.InstrSize},
				{Op: isa.OpMOVI, Rd: isa.R3, Imm: 1},
				{Op: isa.OpHALT},
			}, nil)
			if got := c.Regs[isa.R3] == 0; got != tt.taken {
				t.Errorf("taken = %v, want %v", got, tt.taken)
			}
		})
	}
}

func TestModByZeroFaults(t *testing.T) {
	mem := NewMemory(0x1000, 4096)
	in := isa.Instr{Op: isa.OpMOD, Rd: isa.R3, Rs: isa.R1, Rt: isa.R2}
	var buf [8]byte
	in.Encode(buf[:])
	if err := mem.KernelWrite(0x1000, buf[:]); err != nil {
		t.Fatal(err)
	}
	mem.Map(Segment{Name: "text", Start: 0x1000, End: 0x1008, Perms: PermRead | PermExec})
	c := New(mem, nil)
	c.PC = 0x1000
	if err := c.Step(); err == nil {
		t.Error("MOD by zero did not fault")
	}
}

func TestStoreByteAndLoadByte(t *testing.T) {
	c := execOps(t, []isa.Instr{
		{Op: isa.OpMOVI, Rd: isa.R1, Imm: 0x8000},
		{Op: isa.OpMOVI, Rd: isa.R2, Imm: 0x1234ABCD},
		{Op: isa.OpSTOREB, Rd: isa.R1, Rs: isa.R2, Imm: 2},
		{Op: isa.OpLOADB, Rd: isa.R3, Rs: isa.R1, Imm: 2},
		{Op: isa.OpHALT},
	}, nil)
	if c.Regs[isa.R3] != 0xCD {
		t.Errorf("byte round trip = %#x", c.Regs[isa.R3])
	}
}

func TestStepAfterHalt(t *testing.T) {
	c := execOps(t, []isa.Instr{{Op: isa.OpHALT}}, nil)
	if err := c.Step(); err == nil {
		t.Error("Step on halted CPU succeeded")
	}
}

func TestMemorySegmentReplace(t *testing.T) {
	mem := NewMemory(0x1000, 8192)
	mem.Map(Segment{Name: "heap", Start: 0x2000, End: 0x2000, Perms: PermRead | PermWrite})
	mem.Map(Segment{Name: "heap", Start: 0x2000, End: 0x2100, Perms: PermRead | PermWrite})
	if len(mem.Segments()) != 1 {
		t.Errorf("segments = %d, want replacement", len(mem.Segments()))
	}
	if s := mem.FindSegment(0x2050); s == nil || s.End != 0x2100 {
		t.Errorf("FindSegment = %+v", s)
	}
	if s := mem.FindSegment(0x2100); s != nil {
		t.Error("FindSegment at End should miss")
	}
}

func TestResetPreservesCycles(t *testing.T) {
	c := execOps(t, []isa.Instr{
		{Op: isa.OpNOP}, {Op: isa.OpNOP}, {Op: isa.OpHALT},
	}, nil)
	before := c.Cycles
	if before == 0 {
		t.Fatal("no cycles counted")
	}
	mem2 := NewMemory(0x1000, 4096)
	c.Reset(mem2, 0x1000, 0x2000)
	if c.Cycles != before {
		t.Errorf("Reset cleared cycles: %d -> %d", before, c.Cycles)
	}
	if c.PC != 0x1000 || c.Regs[isa.SP] != 0x2000 || c.Regs[isa.R1] != 0 {
		t.Errorf("Reset state: pc=%#x sp=%#x", c.PC, c.Regs[isa.SP])
	}
}
