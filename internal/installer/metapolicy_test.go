package installer

import (
	"strings"
	"testing"

	"asc/internal/policy"
)

func TestCheckMetapolicy(t *testing.T) {
	// One open with a static path (satisfied), one with a dynamic path
	// (template hole), plus an unrelated getpid.
	src := `
        .text
        .global main
main:
        MOVI r1, path
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOVI r7, dynp
        LOAD r1, [r7+0]
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        CALL getpid
        MOVI r0, 0
        RET
        .rodata
path:   .asciz "/etc/app.conf"
        .data
dynp:   .word 0
`
	_, pp, _ := install(t, src, Options{})
	entries := CheckMetapolicy(pp, DefaultMetapolicy())
	if len(entries) != 1 {
		t.Fatalf("entries = %+v, want exactly the dynamic open", entries)
	}
	e := entries[0]
	if e.Name != "open" || e.Arg != 0 || e.ArgClass != "path" {
		t.Errorf("entry = %+v", e)
	}
	rendered := RenderTemplate(entries)
	if !strings.Contains(rendered, "requires a value or pattern") {
		t.Errorf("render: %q", rendered)
	}
	if got := RenderTemplate(nil); !strings.Contains(got, "satisfied") {
		t.Errorf("empty render: %q", got)
	}
}

func TestMetapolicyIgnoresUnlistedCalls(t *testing.T) {
	pp := &policy.ProgramPolicy{
		Program: "x",
		Sites: []*policy.SitePolicy{
			{Num: 12, Name: "getpid", Site: 0x1000},
		},
	}
	if entries := CheckMetapolicy(pp, DefaultMetapolicy()); len(entries) != 0 {
		t.Errorf("entries = %+v", entries)
	}
}
