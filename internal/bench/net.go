// net.go measures the virtual network: an echo+KV server and N
// load-generation clients exchanging verified traffic on the loopback
// network, swept across client counts, worker counts, and enforcement
// configurations. The table behind BENCH_net.json.
package bench

import (
	"fmt"

	"asc/internal/core"
	"asc/internal/kernel"
	anet "asc/internal/net"
	"asc/internal/sched"
	"asc/internal/workload"
)

// NetClients is the client-count sweep measured for BENCH_net.json.
var NetClients = []int{1, 2, 4, 8}

// NetWorkers is the scheduler-worker sweep for the enforced+cached
// configuration.
var NetWorkers = []int{1, 2, 4, 8}

// NetPoint is one (clients, workers) measurement of the enforced,
// cache-enabled fleet.
type NetPoint struct {
	Workers int
	// MakespanCycles is the modeled fleet completion time
	// (sched.Makespan over the deterministic per-process counts).
	MakespanCycles uint64
	Speedup        float64
	EfficiencyPct  float64
	// VerifiedPerMCycle is fleet-wide verified calls per million
	// makespan cycles.
	VerifiedPerMCycle float64
}

// NetRow is one client count's sweep.
type NetRow struct {
	Clients  int
	Requests uint64 // requests served fleet-wide
	Bytes    uint64 // request payload bytes moved client→server
	// Fleet cycle totals (sum of per-process counts) under the three
	// enforcement configurations: plain binaries on a permissive
	// kernel, authenticated binaries enforced, and enforced with the
	// verification cache.
	CyclesOff         uint64
	CyclesOn          uint64
	CyclesCached      uint64
	OverheadPct       float64 // on vs off
	CachedOverheadPct float64 // cached vs off
	Verified          uint64  // verified calls fleet-wide (enforced)
	Points            []NetPoint
}

// NetData is the full network sweep.
type NetData struct {
	Iters int
	Rows  []NetRow
}

// netMode selects the enforcement configuration of one fleet run.
type netMode int

const (
	netOff    netMode = iota // plain binaries, permissive kernel
	netOn                    // authenticated, enforcing
	netCached                // authenticated, enforcing, verify cache
)

// runNetFleet drives one server + clients fleet to completion and
// returns the per-process cycle counts (server first) plus the
// fleet-wide verified-call total. Outputs are checked against the
// workload's closed-form expectations — a bench run that did not
// actually move the traffic is an error, not a fast result.
func runNetFleet(srv, cli *core.RunRequest, key []byte, clients, iters, workers int, mode netMode) ([]uint64, uint64, error) {
	cfg := core.Config{KernelOptions: []kernel.Option{kernel.WithNetwork(anet.New())}}
	switch mode {
	case netOff:
		cfg.Permissive = true
	case netCached:
		// Per-process cache scope, not fleet-shared: which client
		// publishes a shared site first depends on scheduling, and this
		// sweep's determinism contract (identical per-process cycles at
		// every worker count) cannot hold if adopt-vs-miss costs migrate
		// between processes. Fleet sharing is measured by the batch
		// sweep, which runs its fleet serially for exactly this reason.
		cfg.Key = key
		cfg.KernelOptions = append(cfg.KernelOptions,
			kernel.WithCacheMode(kernel.CachePerProcess),
			kernel.WithBatchVerify(BatchDepth))
	default:
		cfg.Key = key
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, 0, err
	}
	reqs := []core.RunRequest{*srv}
	for i := 0; i < clients; i++ {
		reqs = append(reqs, *cli)
	}
	res, err := sys.RunAll(reqs, workers)
	if err != nil {
		return nil, 0, err
	}
	cycles := make([]uint64, len(res))
	var verified uint64
	for i, r := range res {
		if r.Err != nil {
			return nil, 0, fmt.Errorf("bench: net %s: %w", reqs[i].Name, r.Err)
		}
		if r.Killed {
			return nil, 0, fmt.Errorf("bench: net %s killed: %s", reqs[i].Name, r.Reason)
		}
		if r.ExitCode != 0 {
			return nil, 0, fmt.Errorf("bench: net %s exit=%d", reqs[i].Name, r.ExitCode)
		}
		cycles[i] = r.Cycles
		verified += r.Verified
	}
	if got, want := res[0].Output, workload.NetServerOutput(clients, iters); got != want {
		return nil, 0, fmt.Errorf("bench: net server output %q, want %q", got, want)
	}
	for i := 1; i < len(res); i++ {
		if got, want := res[i].Output, workload.NetClientOutput(iters); got != want {
			return nil, 0, fmt.Errorf("bench: net client %d output %q, want %q", i, got, want)
		}
	}
	return cycles, verified, nil
}

// Net runs the client-count × worker-count × enforcement sweep. All
// reported figures derive from deterministic per-process cycle counts
// (the workload's outputs are order-independent aggregates), so the
// resulting JSON is byte-stable run to run; the per-worker runs
// cross-check that determinism on every sweep.
func Net(key []byte, iters int) (*NetData, error) {
	if iters < 1 {
		iters = 4
	}
	out := &NetData{Iters: iters}
	for _, clients := range NetClients {
		srvName := fmt.Sprintf("netserver%d", clients)
		srvOrig, srvAuth, err := buildPair(srvName, workload.NetServerSource(clients), key)
		if err != nil {
			return nil, err
		}
		cliOrig, cliAuth, err := buildPair("netclient", workload.NetClientSource(iters), key)
		if err != nil {
			return nil, err
		}
		row := NetRow{
			Clients:  clients,
			Requests: uint64(clients) * uint64(iters) * workload.NetRequestsPerIter,
			Bytes:    uint64(clients) * uint64(iters) * workload.NetBytesPerIter,
		}

		srvOff := core.RunRequest{Exe: srvOrig, Name: "netserver"}
		cliOff := core.RunRequest{Exe: cliOrig, Name: "netclient"}
		cyc, _, err := runNetFleet(&srvOff, &cliOff, key, clients, iters, 4, netOff)
		if err != nil {
			return nil, err
		}
		row.CyclesOff = sum(cyc)

		srvReq := core.RunRequest{Exe: srvAuth, Name: "netserver"}
		cliReq := core.RunRequest{Exe: cliAuth, Name: "netclient"}
		cyc, verified, err := runNetFleet(&srvReq, &cliReq, key, clients, iters, 4, netOn)
		if err != nil {
			return nil, err
		}
		row.CyclesOn = sum(cyc)
		row.Verified = verified

		// The enforced+cached configuration is the worker sweep: every
		// worker count really runs the fleet, and the deterministic
		// per-process counts must agree across all of them.
		var ref []uint64
		var serial uint64
		for _, w := range NetWorkers {
			cycC, verC, err := runNetFleet(&srvReq, &cliReq, key, clients, iters, w, netCached)
			if err != nil {
				return nil, err
			}
			if ref == nil {
				ref = cycC
				row.CyclesCached = sum(cycC)
				serial = sched.Makespan(cycC, 1)
			} else {
				for i := range cycC {
					if cycC[i] != ref[i] {
						return nil, fmt.Errorf("bench: net clients=%d w=%d: proc %d cycles %d != %d",
							clients, w, i, cycC[i], ref[i])
					}
				}
			}
			mk := sched.Makespan(cycC, w)
			speedup := float64(serial) / float64(mk)
			row.Points = append(row.Points, NetPoint{
				Workers:           w,
				MakespanCycles:    mk,
				Speedup:           speedup,
				EfficiencyPct:     100 * speedup / float64(w),
				VerifiedPerMCycle: 1e6 * float64(verC) / float64(mk),
			})
		}
		row.OverheadPct = pct(row.CyclesOff, row.CyclesOn)
		row.CachedOverheadPct = pct(row.CyclesOff, row.CyclesCached)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func sum(v []uint64) uint64 {
	var t uint64
	for _, x := range v {
		t += x
	}
	return t
}

// Render prints the network sweep.
func (t *NetData) Render() string {
	header := []string{"Clients", "Requests", "Bytes", "Off cycles", "Enforced (+%)", "Cached (+%)"}
	for _, w := range NetWorkers {
		header = append(header, fmt.Sprintf("w=%d speedup", w))
	}
	var rows [][]string
	for _, r := range t.Rows {
		row := []string{
			fmt.Sprint(r.Clients),
			fmt.Sprint(r.Requests),
			fmt.Sprint(r.Bytes),
			fmt.Sprint(r.CyclesOff),
			fmt.Sprintf("%d (+%.1f%%)", r.CyclesOn, r.OverheadPct),
			fmt.Sprintf("%d (+%.1f%%)", r.CyclesCached, r.CachedOverheadPct),
		}
		for _, p := range r.Points {
			row = append(row, fmt.Sprintf("%.2fx", p.Speedup))
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Network fleet: echo+KV server + N load-gen clients, %d iterations/client", t.Iters)
	return renderTable(title, header, rows)
}
