package kernel

import (
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/installer"
	"asc/internal/isa"
	"asc/internal/libc"
	"asc/internal/linker"
	"asc/internal/policy"
	"asc/internal/sys"
	"asc/internal/vfs"
)

// benchLoopSrc executes getpid in a tight loop; the per-iteration work is
// dominated by the trap handler (and, for the authenticated variant, the
// verification path).
const benchLoopSrc = `
        .text
        .global main
main:
        MOVI r12, 1000
.loop:
        CALL getpid
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        MOVI r0, 0
        RET
`

func buildBenchExe(b *testing.B, authenticated bool) *binfmt.File {
	b.Helper()
	obj, err := asm.Assemble("b.s", benchLoopSrc)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := libc.Objects(libc.Linux)
	if err != nil {
		b.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{obj}, lib)
	if err != nil {
		b.Fatal(err)
	}
	if !authenticated {
		return exe
	}
	out, _, _, err := installer.Install(exe, "bench", installer.Options{Key: testKey})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

func benchRun(b *testing.B, authenticated bool, opts ...Option) {
	b.Helper()
	bin := buildBenchExe(b, authenticated)
	mode := Permissive
	var key []byte
	if authenticated {
		mode, key = Enforce, testKey
	}
	var cycles uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := New(vfs.New(), key, append([]Option{WithMode(mode)}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		p, err := k.Spawn(bin, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := k.Run(p, 1_000_000_000); err != nil {
			b.Fatal(err)
		}
		if p.Killed {
			b.Fatalf("killed: %v", p.KilledBy)
		}
		cycles = p.CPU.Cycles
	}
	b.ReportMetric(1000, "syscalls/op")
	b.ReportMetric(float64(cycles)/1000, "cycles/call")
}

// BenchmarkSyscallPlain measures 1,000 unverified traps per op.
func BenchmarkSyscallPlain(b *testing.B) { benchRun(b, false) }

// BenchmarkSyscallVerified measures 1,000 fully verified authenticated
// calls per op (call MAC + predecessor AS + memory-checker update).
func BenchmarkSyscallVerified(b *testing.B) { benchRun(b, true) }

// BenchmarkSyscallVerifiedCached measures the same workload with the
// verification cache: after the first trap per site, every call is a
// cache hit (generation compares + byte compares) plus the uncacheable
// memory-checker update.
func BenchmarkSyscallVerifiedCached(b *testing.B) { benchRun(b, true, WithVerifyCache()) }

// benchVerifySetup loads the authenticated benchmark binary and steps the
// CPU to the first ASYSCALL, leaving the registers exactly as the trap
// handler would see them. It returns everything needed to invoke verify
// repeatedly: the kernel, process, call number, site, and a restore
// function that rewinds the control-flow state between invocations.
func benchVerifySetup(t testing.TB, opts ...Option) (*Kernel, *Process, uint16, uint32, func()) {
	t.Helper()
	var bin *binfmt.File
	if b, ok := t.(*testing.B); ok {
		bin = buildBenchExe(b, true)
	} else {
		bin = buildAuthExe(t.(*testing.T), benchLoopSrc)
	}
	k, err := New(vfs.New(), testKey, append([]Option{WithMode(Enforce)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(bin, "bench")
	if err != nil {
		t.Fatal(err)
	}
	for {
		raw, err := p.Mem.KernelRead(p.CPU.PC, isa.InstrSize)
		if err != nil {
			t.Fatal(err)
		}
		in, err := isa.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if in.Op == isa.OpASYSCALL {
			break
		}
		if err := p.CPU.Step(); err != nil {
			t.Fatal(err)
		}
	}
	num := uint16(p.CPU.Regs[isa.R0])
	site := p.CPU.PC
	// Snapshot the memory-checker state so repeated verifications replay
	// the same transition.
	recAddr := p.CPU.Regs[isa.R6]
	recBytes, err := p.Mem.KernelRead(recAddr, policy.AuthRecordSize)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := policy.DecodeAuthRecord(recBytes)
	if err != nil {
		t.Fatal(err)
	}
	counter0 := p.counter
	state0 := []byte(nil)
	if rec.Desc.ControlFlow() {
		raw, err := p.Mem.KernelRead(rec.LbPtr, 4+16)
		if err != nil {
			t.Fatal(err)
		}
		state0 = append(state0, raw...)
	}
	restore := func() {
		p.counter = counter0
		if state0 != nil {
			if err := p.Mem.KernelWrite(rec.LbPtr, state0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return k, p, num, site, restore
}

// verifyAllocs measures steady-state heap allocations of one full
// (uncached) verification.
func verifyAllocs(t testing.TB) float64 {
	k, p, num, site, restore := benchVerifySetup(t)
	sig, sigOK := sys.Lookup(num)
	return testing.AllocsPerRun(200, func() {
		if reason, ok := k.verify(p, num, site, sig, sigOK); !ok {
			t.Fatalf("verify failed: %v", reason)
		}
		restore()
	})
}

// TestVerifyAllocs pins the per-trap heap budget of the verification
// path: at most 2 allocations per fully verified call in steady state.
func TestVerifyAllocs(t *testing.T) {
	if allocs := verifyAllocs(t); allocs > 2 {
		t.Fatalf("verify allocates %.1f times per call, budget is 2", allocs)
	}
}

// BenchmarkVerifyAllocs reports the allocation count of the verification
// path itself (no VM execution around it).
func BenchmarkVerifyAllocs(b *testing.B) {
	k, p, num, site, restore := benchVerifySetup(b)
	sig, sigOK := sys.Lookup(num)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reason, ok := k.verify(p, num, site, sig, sigOK); !ok {
			b.Fatalf("verify failed: %v", reason)
		}
		restore()
	}
}
