package kernel

import (
	"testing"

	"asc/internal/isa"
	"asc/internal/policy"
	"asc/internal/sys"
)

// FuzzAuthRecord feeds arbitrary bytes to the kernel as the in-memory
// auth record of a real authenticated trap. The contract under test: a
// malformed or tampered record is rejected with a kill reason (usually
// KillBadRecord or KillBadCallMAC) and the trap handler never panics.
//
// Each input runs against a fresh process stopped at its first open(2)
// ASYSCALL; the fuzzed bytes overwrite the record that R6 points at.
func FuzzAuthRecord(f *testing.F) {
	exe := buildAuthExe(f, cacheLoopSrc)

	// Capture one genuine record for seeding.
	{
		k := newKernel(f)
		p, err := k.Spawn(exe, "seed")
		if err != nil {
			f.Fatal(err)
		}
		stepTo(f, p, sys.SysOpen)
		recAddr := p.CPU.Regs[isa.R6]
		good, err := p.Mem.KernelRead(recAddr, policy.AuthRecordSize)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), good...))     // valid record: must verify
		f.Add(append([]byte(nil), good[:8]...)) // truncated
		bad := append([]byte(nil), good...)
		bad[0] ^= 0x80 // descriptor bit flip
		f.Add(bad)
		bad2 := append([]byte(nil), good...)
		bad2[16] ^= 0x01 // CallMAC bit flip
		f.Add(bad2)
		f.Add([]byte{})
		f.Add(make([]byte, 256))
	}

	f.Fuzz(func(t *testing.T, record []byte) {
		k := newKernel(t)
		p, err := k.Spawn(exe, "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		stepTo(t, p, sys.SysOpen)
		recAddr := p.CPU.Regs[isa.R6]
		raw, err := p.Mem.KernelRead(recAddr, policy.AuthRecordSize)
		if err != nil {
			t.Fatal(err)
		}
		// KernelRead aliases the backing array; snapshot before tampering.
		orig := append([]byte(nil), raw...)
		// Lay the fuzzed bytes over the record, clamped to the fixed
		// record size so longer inputs cannot corrupt the neighbouring
		// authenticated data instead. Short inputs leave a suffix of the
		// real record in place, exercising partial-tamper paths.
		if len(record) > policy.AuthRecordSize {
			record = record[:policy.AuthRecordSize]
		}
		if len(record) > 0 {
			if err := p.Mem.UserWrite(recAddr, record); err != nil {
				t.Fatalf("overwrite record: %v", err)
			}
		}

		num := uint16(p.CPU.Regs[isa.R0])
		site := p.CPU.PC
		sig, sigOK := sys.Lookup(num)
		reason, ok := k.verify(p, num, site, sig, sigOK)

		unchanged := true
		now, err := p.Mem.KernelRead(recAddr, policy.AuthRecordSize)
		if err != nil {
			t.Fatalf("record vanished: %v", err)
		}
		for i := range now {
			if now[i] != orig[i] {
				unchanged = false
				break
			}
		}
		if unchanged {
			// Byte-identical to the genuine record: verification must
			// still succeed (and the CF state must have advanced).
			if !ok {
				t.Fatalf("genuine record rejected: %s", reason)
			}
			return
		}
		if ok {
			t.Fatalf("tampered record %x accepted", now)
		}
		if reason == "" {
			t.Fatal("rejection with empty reason")
		}
	})
}

// stepTo advances the CPU to the ASYSCALL instruction of the first trap
// with the given syscall number, without executing it.
func stepTo(t testing.TB, p *Process, num uint16) {
	t.Helper()
	for steps := 0; steps < 1_000_000; steps++ {
		raw, err := p.Mem.KernelRead(p.CPU.PC, isa.InstrSize)
		if err != nil {
			t.Fatal(err)
		}
		in, err := isa.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if in.Op == isa.OpASYSCALL && uint16(p.CPU.Regs[isa.R0]) == num {
			return
		}
		if err := p.CPU.Step(); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("syscall not reached")
}
