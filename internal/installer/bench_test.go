package installer

import (
	"testing"

	"asc/internal/binfmt"
	"asc/internal/libc"
	"asc/internal/linker"

	"asc/internal/asm"
)

// BenchmarkInstall measures trusted-installer throughput on a small
// program (the paper reports 3.5-86 s per program with PLTO).
func BenchmarkInstall(b *testing.B) {
	obj, err := asm.Assemble("m.s", openSrc)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := libc.Objects(libc.Linux)
	if err != nil {
		b.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{obj}, lib)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Install(exe, "bench", Options{Key: testKey}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratePolicy measures analysis-only throughput.
func BenchmarkGeneratePolicy(b *testing.B) {
	obj, err := asm.Assemble("m.s", openSrc)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := libc.Objects(libc.Linux)
	if err != nil {
		b.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{obj}, lib)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GeneratePolicy(exe, "bench", "linux"); err != nil {
			b.Fatal(err)
		}
	}
}
