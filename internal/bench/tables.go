// tables.go regenerates the policy tables (1-3) of Section 4.2.
package bench

import (
	"fmt"
	"sort"

	"asc/internal/installer"
	"asc/internal/libc"
	"asc/internal/workload"
)

// Table1Row is one program's policy sizes.
type Table1Row struct {
	Program     string
	ASCLinux    int // distinct calls, ASC policy on Linux
	ASCOpenBSD  int // distinct calls, ASC policy on OpenBSD
	SystraceBSD int // distinct calls, trained+generalized policy
	PaperASCLnx int
	PaperASCBSD int
	PaperSysBSD int
}

// Table1Data is the full table.
type Table1Data struct{ Rows []Table1Row }

var table1Paper = map[string][3]int{
	"bison":  {31, 31, 24},
	"calc":   {54, 51, 24},
	"screen": {67, 63, 55},
}

// Table1 regenerates "Number of System Calls in Policies".
func Table1() (*Table1Data, error) {
	out := &Table1Data{}
	for _, name := range []string{"bison", "calc", "screen"} {
		row := Table1Row{Program: name}
		paper := table1Paper[name]
		row.PaperASCLnx, row.PaperASCBSD, row.PaperSysBSD = paper[0], paper[1], paper[2]
		for _, os := range []libc.OS{libc.Linux, libc.OpenBSD} {
			exe, err := workload.Build(name, os)
			if err != nil {
				return nil, err
			}
			pp, _, err := installer.GeneratePolicy(exe, name, os.String())
			if err != nil {
				return nil, err
			}
			n := len(pp.DistinctSyscalls())
			if os == libc.Linux {
				row.ASCLinux = n
			} else {
				row.ASCOpenBSD = n
			}
		}
		pol, err := trainedPolicy(name)
		if err != nil {
			return nil, err
		}
		row.SystraceBSD = len(pol.ExpandedNames())
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the table with the paper's values alongside.
func (t *Table1Data) Render() string {
	header := []string{"Program", "ASC/Linux", "ASC/OpenBSD", "Systrace/OpenBSD", "(paper)"}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Program,
			fmt.Sprint(r.ASCLinux), fmt.Sprint(r.ASCOpenBSD), fmt.Sprint(r.SystraceBSD),
			fmt.Sprintf("%d/%d/%d", r.PaperASCLnx, r.PaperASCBSD, r.PaperSysBSD),
		})
	}
	return renderTable("Table 1: Number of System Calls in Policies", header, rows)
}

// Table2Row is one differing system call in the bison policies.
type Table2Row struct {
	Name     string
	ASC      bool
	Systrace bool
	Via      string // "fsread"/"fswrite" when permitted via an alias
}

// Table2Data is the bison policy comparison.
type Table2Data struct{ Rows []Table2Row }

// Table2 regenerates "Comparison of Policies for Bison" on OpenBSD.
func Table2() (*Table2Data, error) {
	exe, err := workload.Build("bison", libc.OpenBSD)
	if err != nil {
		return nil, err
	}
	pp, _, err := installer.GeneratePolicy(exe, "bison", "openbsd")
	if err != nil {
		return nil, err
	}
	ascSet := make(map[string]bool)
	for _, n := range pp.DistinctNames() {
		ascSet[n] = true
	}
	pol, err := trainedPolicy("bison")
	if err != nil {
		return nil, err
	}
	sysSet := make(map[string]bool)
	for _, n := range pol.ExpandedNames() {
		sysSet[n] = true
	}
	concrete := make(map[string]bool)
	for _, n := range pol.Names() {
		concrete[n] = true
	}

	all := make(map[string]bool)
	for n := range ascSet {
		all[n] = true
	}
	for n := range sysSet {
		all[n] = true
	}
	var names []string
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)

	out := &Table2Data{}
	for _, n := range names {
		if ascSet[n] == sysSet[n] {
			continue // only differences are listed
		}
		row := Table2Row{Name: n, ASC: ascSet[n], Systrace: sysSet[n]}
		if sysSet[n] && !concrete[n] {
			for _, f := range fsreadNames() {
				if f == n {
					row.Via = "fsread"
				}
			}
			if row.Via == "" {
				row.Via = "fswrite"
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func fsreadNames() []string {
	return []string{"open", "read", "stat", "access", "readlink"}
}

// Render prints the diff in the paper's yes/NO format.
func (t *Table2Data) Render() string {
	header := []string{"System call", "ASC", "Systrace"}
	var rows [][]string
	mark := func(b bool, via string) string {
		if !b {
			return "NO"
		}
		if via != "" {
			return "yes (" + via + ")"
		}
		return "yes"
	}
	for _, r := range t.Rows {
		rows = append(rows, []string{r.Name, mark(r.ASC, ""), mark(r.Systrace, r.Via)})
	}
	return renderTable("Table 2: Comparison of Policies for Bison (OpenBSD)", header, rows)
}

// Table3Row is one program's argument coverage.
type Table3Row struct {
	Program string
	Sites   int
	Calls   int
	Args    int
	Output  int // o/p
	Auth    int
	Multi   int // mv
	FDs     int
}

// Table3Data is the argument coverage table.
type Table3Data struct{ Rows []Table3Row }

// Table3 regenerates "Argument Coverage" for bison, calc, screen, tar.
func Table3() (*Table3Data, error) {
	out := &Table3Data{}
	for _, name := range workload.Names() {
		exe, err := workload.Build(name, libc.Linux)
		if err != nil {
			return nil, err
		}
		_, rep, err := installer.GeneratePolicy(exe, name, "linux")
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table3Row{
			Program: name,
			Sites:   rep.Sites,
			Calls:   rep.DistinctCalls,
			Args:    rep.TotalArgs,
			Output:  rep.OutputArgs,
			Auth:    rep.AuthArgs,
			Multi:   rep.MultiArgs,
			FDs:     rep.FDArgs,
		})
	}
	return out, nil
}

// Render prints the table with the paper's column layout.
func (t *Table3Data) Render() string {
	header := []string{"prog", "sites", "calls", "args", "o/p", "auth", "mv", "fds", "auth%"}
	var rows [][]string
	for _, r := range t.Rows {
		authPct := 0.0
		if r.Args > 0 {
			authPct = 100 * float64(r.Auth) / float64(r.Args)
		}
		rows = append(rows, []string{
			r.Program, fmt.Sprint(r.Sites), fmt.Sprint(r.Calls), fmt.Sprint(r.Args),
			fmt.Sprint(r.Output), fmt.Sprint(r.Auth), fmt.Sprint(r.Multi), fmt.Sprint(r.FDs),
			fmt.Sprintf("%.0f%%", authPct),
		})
	}
	return renderTable("Table 3: Argument Coverage", header, rows)
}
