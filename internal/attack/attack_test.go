package attack

import (
	"strings"
	"testing"

	"asc/internal/kernel"
)

var testKey = []byte("0123456789abcdef")

func newLab(t *testing.T) *Lab {
	t.Helper()
	l, err := NewLab(testKey)
	if err != nil {
		t.Fatalf("NewLab: %v", err)
	}
	return l
}

func TestBaselineRuns(t *testing.T) {
	l := newLab(t)
	o, err := l.Baseline()
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	if o.Blocked {
		t.Fatalf("benign run blocked: %v", o)
	}
	// The victim execs /bin/ls, which prints its listing marker.
	if !strings.Contains(o.Detail, "ls: listing") {
		t.Errorf("benign run did not reach /bin/ls: %s", o.Detail)
	}
}

func TestShellcodeBlocked(t *testing.T) {
	l := newLab(t)
	o, err := l.Shellcode()
	if err != nil {
		t.Fatalf("Shellcode: %v", err)
	}
	if !o.Blocked || o.Reason != kernel.KillUnauthenticated {
		t.Fatalf("shellcode: %+v", o)
	}
}

func TestMimicryBlocked(t *testing.T) {
	l := newLab(t)
	o, err := l.Mimicry()
	if err != nil {
		t.Fatalf("Mimicry: %v", err)
	}
	if !o.Blocked || o.Reason != kernel.KillBadCallMAC {
		t.Fatalf("mimicry: %+v", o)
	}
}

func TestControlFlowHijackBlocked(t *testing.T) {
	l := newLab(t)
	o, err := l.ControlFlowHijack()
	if err != nil {
		t.Fatalf("ControlFlowHijack: %v", err)
	}
	if !o.Blocked || o.Reason != kernel.KillBadPredecessor {
		t.Fatalf("hijack: %+v", o)
	}
}

func TestNonControlDataBlocked(t *testing.T) {
	l := newLab(t)
	o, err := l.NonControlData()
	if err != nil {
		t.Fatalf("NonControlData: %v", err)
	}
	if !o.Blocked || o.Reason != kernel.KillBadString {
		t.Fatalf("non-control-data: %+v", o)
	}
}

func TestDescriptorTamperBlocked(t *testing.T) {
	l := newLab(t)
	o, err := l.DescriptorTamper()
	if err != nil {
		t.Fatalf("DescriptorTamper: %v", err)
	}
	if !o.Blocked || o.Reason != kernel.KillBadCallMAC {
		t.Fatalf("descriptor tamper: %+v", o)
	}
}

func TestNetForgedSendBlocked(t *testing.T) {
	l := newLab(t)
	o, err := l.NetForgedSend()
	if err != nil {
		t.Fatalf("NetForgedSend: %v", err)
	}
	if !o.Blocked || o.Reason != kernel.KillBadCallMAC {
		t.Fatalf("forged send: %+v", o)
	}
}

func TestNetPortTamperBlocked(t *testing.T) {
	l := newLab(t)
	o, err := l.NetPortTamper()
	if err != nil {
		t.Fatalf("NetPortTamper: %v", err)
	}
	if !o.Blocked || o.Reason != kernel.KillBadCallMAC {
		t.Fatalf("port tamper: %+v", o)
	}
}

func TestNetReplayCFBlocked(t *testing.T) {
	l := newLab(t)
	o, err := l.NetReplayCF()
	if err != nil {
		t.Fatalf("NetReplayCF: %v", err)
	}
	if !o.Blocked || o.Reason != kernel.KillBadState {
		t.Fatalf("cf replay: %+v", o)
	}
}

func TestFrankenstein(t *testing.T) {
	// Without the countermeasure the splice succeeds (block IDs collide
	// numerically across programs).
	o, err := Frankenstein(testKey, false)
	if err != nil {
		t.Fatalf("Frankenstein(false): %v", err)
	}
	if o.Blocked {
		t.Fatalf("frankenstein without countermeasure blocked: %+v", o)
	}
	// With unique program IDs it is rejected by the control-flow check.
	oc, err := Frankenstein(testKey, true)
	if err != nil {
		t.Fatalf("Frankenstein(true): %v", err)
	}
	if !oc.Blocked || oc.Reason != kernel.KillBadPredecessor {
		t.Fatalf("frankenstein with countermeasure: %+v", oc)
	}
}

func TestBattery(t *testing.T) {
	l := newLab(t)
	outcomes, err := l.Battery()
	if err != nil {
		t.Fatalf("Battery: %v", err)
	}
	if len(outcomes) != 12 {
		t.Fatalf("battery ran %d experiments, want 12", len(outcomes))
	}
	// Exactly two are expected to be allowed: the benign baseline and
	// the frankenstein without countermeasure.
	var allowed []string
	for _, o := range outcomes {
		if !o.Blocked {
			allowed = append(allowed, o.Name)
		}
	}
	if len(allowed) != 2 {
		t.Errorf("allowed experiments: %v (want baseline + frankenstein-no-cm)", allowed)
	}
}

// TestBatteryWithVerifyCache runs the full battery against kernels with
// each fast path enabled — the per-process verification cache, and the
// fleet-shared cache with group-commit batching — and checks every
// outcome (name, blocked/allowed, kill reason) is identical to the
// default kernel. The fast paths may only skip work they can prove
// redundant; they must never change what is blocked or why.
func TestBatteryWithVerifyCache(t *testing.T) {
	base := newLab(t)
	baseline, err := base.Battery()
	if err != nil {
		t.Fatalf("Battery: %v", err)
	}
	for arm, opts := range cacheArms {
		if opts == nil {
			continue
		}
		l := newLab(t)
		l.KernelOpts = opts
		got, err := l.Battery()
		if err != nil {
			t.Fatalf("Battery (%s): %v", arm, err)
		}
		if len(got) != len(baseline) {
			t.Fatalf("%s battery ran %d experiments, baseline %d", arm, len(got), len(baseline))
		}
		for i := range baseline {
			b, c := baseline[i], got[i]
			if c.Name != b.Name || c.Blocked != b.Blocked || c.Reason != b.Reason {
				t.Errorf("%s outcome %d diverged:\n  baseline: %v\n  %s:   %v", arm, i, b, arm, c)
			}
		}
	}
}
