// frankenstein.go implements the Section 5.5 Frankenstein attack: a new
// program assembled from authenticated system calls harvested from other
// applications on the same machine, together with the unique-block-ID
// countermeasure that defeats it.
package attack

import (
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/cfg"
	"asc/internal/installer"
	"asc/internal/isa"
	"asc/internal/kernel"
	"asc/internal/policy"
	"asc/internal/sys"
	"asc/internal/vfs"
)

// The two source applications are structurally identical, so their
// installed layouts coincide: every call site, every .auth object lands
// at the same address. That is precisely what lets an attacker splice an
// authenticated call from B into A with all its embedded absolute
// addresses still valid.
const frankASource = `
        .text
        .global main
main:
        CALL getpid
        CALL getuid
        MOVI r0, 0
        RET
`

const frankBSource = `
        .text
        .global main
main:
        CALL getpid
        CALL getgid
        MOVI r0, 0
        RET
`

// siteInfo locates one authenticated call and its policy objects.
type siteInfo struct {
	addr     uint32 // ASYSCALL address
	recAddr  uint32 // auth record address
	predAddr uint32 // predecessor-set AS bytes address
	predLen  uint32
}

func findSite(f *binfmt.File, num uint16) (siteInfo, error) {
	prog, err := cfg.Analyze(f)
	if err != nil {
		return siteInfo{}, err
	}
	text := f.Section(binfmt.SecText)
	auth := f.Section(binfmt.SecAuth)
	for _, s := range prog.SyscallSites() {
		if !s.NumKnown || s.Num != num {
			continue
		}
		pre, err := isa.Decode(text.Data[s.Addr-isa.InstrSize-text.Addr:])
		if err != nil || pre.Op != isa.OpMOVI || pre.Rd != isa.R6 {
			return siteInfo{}, fmt.Errorf("attack: no preamble at %#x", s.Addr)
		}
		rec, err := policy.DecodeAuthRecord(auth.Data[pre.Imm-auth.Addr:])
		if err != nil {
			return siteInfo{}, err
		}
		predLen, err2 := readU32(auth, rec.PredSetPtr-policy.ASHeaderSize)
		if err2 != nil {
			return siteInfo{}, err2
		}
		return siteInfo{addr: s.Addr, recAddr: pre.Imm, predAddr: rec.PredSetPtr, predLen: predLen}, nil
	}
	return siteInfo{}, fmt.Errorf("attack: syscall %s not found", sys.Name(num))
}

func readU32(sec *binfmt.Section, addr uint32) (uint32, error) {
	off := addr - sec.Addr
	if off+4 > uint32(len(sec.Data)) {
		return 0, fmt.Errorf("attack: read outside %s", sec.Name)
	}
	return uint32(sec.Data[off]) | uint32(sec.Data[off+1])<<8 |
		uint32(sec.Data[off+2])<<16 | uint32(sec.Data[off+3])<<24, nil
}

// spliceRange copies [addr, addr+n) within the named section from src to
// dst; both files must place the section at the same address.
func spliceRange(dst, src *binfmt.File, section string, addr, n uint32) error {
	d := dst.Section(section)
	s := src.Section(section)
	if d == nil || s == nil || d.Addr != s.Addr {
		return fmt.Errorf("attack: %s layouts differ", section)
	}
	if addr < d.Addr || addr+n > d.End() || addr+n > s.End() {
		return fmt.Errorf("attack: splice range %#x+%d outside %s", addr, n, section)
	}
	copy(d.Data[addr-d.Addr:], s.Data[addr-s.Addr:addr-s.Addr+n])
	return nil
}

// Frankenstein builds the spliced program and runs it under enforcement.
// With countermeasure=false, both applications are installed with
// program-local block IDs and the splice executes successfully (the
// attack works). With countermeasure=true, they are installed with
// distinct program IDs (unique block identifiers) and the spliced call is
// rejected by the control-flow check.
func Frankenstein(key []byte, countermeasure bool) (Outcome, error) {
	optsA := installer.Options{Key: key}
	optsB := installer.Options{Key: key}
	name := "frankenstein (no countermeasure)"
	if countermeasure {
		optsA.ProgramID = 1
		optsB.ProgramID = 2
		name = "frankenstein (unique IDs)"
	}
	a, _, err := buildAuth(frankASource, "prog-a", optsA)
	if err != nil {
		return Outcome{}, err
	}
	b, _, err := buildAuth(frankBSource, "prog-b", optsB)
	if err != nil {
		return Outcome{}, err
	}

	// Locate the second call in each (getuid in A, getgid in B); their
	// addresses must coincide for the splice to be possible at all.
	sa, err := findSite(a, sys.SysGetuid)
	if err != nil {
		return Outcome{}, err
	}
	sb, err := findSite(b, sys.SysGetgid)
	if err != nil {
		return Outcome{}, err
	}
	if sa.addr != sb.addr || sa.recAddr != sb.recAddr || sa.predAddr != sb.predAddr {
		return Outcome{}, fmt.Errorf("attack: frankenstein layouts diverge (%#x/%#x)", sa.addr, sb.addr)
	}

	// Splice B's call into A: the three instructions (number load,
	// preamble, ASYSCALL), the auth record, and the predecessor set.
	franken := a
	if err := spliceRange(franken, b, binfmt.SecText, sb.addr-2*isa.InstrSize, 3*isa.InstrSize); err != nil {
		return Outcome{}, err
	}
	if err := spliceRange(franken, b, binfmt.SecAuth, sb.recAddr, policy.AuthRecordSize); err != nil {
		return Outcome{}, err
	}
	if err := spliceRange(franken, b, binfmt.SecAuth,
		sb.predAddr-policy.ASHeaderSize, policy.ASHeaderSize+sb.predLen); err != nil {
		return Outcome{}, err
	}

	fs := vfs.New()
	k, err := kernel.New(fs, key)
	if err != nil {
		return Outcome{}, err
	}
	p, err := k.Spawn(franken, "frankenstein")
	if err != nil {
		return Outcome{}, err
	}
	if err := k.Run(p, 10_000_000); err != nil {
		return Outcome{}, fmt.Errorf("attack: frankenstein faulted: %w", err)
	}
	o := outcome(name, "splice an authenticated call from another program", p, "")
	return o, nil
}
