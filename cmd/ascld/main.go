// ascld links SELF objects against the personality's libc into a
// relocatable executable suitable for the trusted installer.
//
// Usage: ascld [-o a.out] [-os linux|openbsd] file.o...
package main

import (
	"flag"
	"fmt"
	"os"

	"asc/internal/binfmt"
	"asc/internal/libc"
	"asc/internal/linker"
)

func main() {
	out := flag.String("o", "a.out", "output executable path")
	osName := flag.String("os", "linux", "libc personality: linux or openbsd")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ascld [-o a.out] [-os linux|openbsd] file.o...")
		os.Exit(2)
	}
	personality := libc.Linux
	if *osName == "openbsd" {
		personality = libc.OpenBSD
	}
	var objs []*binfmt.File
	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		f, err := binfmt.Read(b)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		objs = append(objs, f)
	}
	lib, err := libc.Objects(personality)
	if err != nil {
		fatal(err)
	}
	exe, err := linker.Link(objs, lib)
	if err != nil {
		fatal(err)
	}
	data, err := exe.Bytes()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o755); err != nil {
		fatal(err)
	}
	fmt.Printf("ascld: %s (%d bytes, entry %#x)\n", *out, len(data), exe.Entry)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ascld:", err)
	os.Exit(1)
}
