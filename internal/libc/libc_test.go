package libc

import (
	"strings"
	"testing"

	"asc/internal/sys"
)

func TestSourcesCoverSyscallTable(t *testing.T) {
	for _, os := range []OS{Linux, OpenBSD} {
		srcs, err := Sources(os)
		if err != nil {
			t.Fatalf("Sources(%v): %v", os, err)
		}
		byName := make(map[string]bool, len(srcs))
		for _, s := range srcs {
			byName[s.Name] = true
		}
		for _, sig := range sys.All() {
			if sig.Num == sys.SysIndirect && os != OpenBSD {
				if byName["__syscall"] {
					t.Error("__syscall stub present on Linux")
				}
				continue
			}
			if !byName[sig.Name] {
				t.Errorf("%v: no stub for %s", os, sig.Name)
			}
		}
		if !byName["_start"] || !byName["gets"] || !byName["puts"] || !byName["malloc"] {
			t.Errorf("%v: runtime helpers missing", os)
		}
	}
}

func TestObjectsAssemble(t *testing.T) {
	for _, os := range []OS{Linux, OpenBSD} {
		objs, err := Objects(os)
		if err != nil {
			t.Fatalf("Objects(%v): %v", os, err)
		}
		if len(objs) < int(sys.MaxSyscall) {
			t.Errorf("%v: only %d objects", os, len(objs))
		}
	}
	if _, err := Objects(OS(99)); err == nil {
		t.Error("unknown personality accepted")
	}
	if _, err := Sources(OS(0)); err == nil {
		t.Error("zero personality accepted")
	}
}

func TestPersonalityDifferences(t *testing.T) {
	find := func(os OS, name string) string {
		srcs, err := Sources(os)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range srcs {
			if s.Name == name {
				return s.Source
			}
		}
		t.Fatalf("%v: %s not found", os, name)
		return ""
	}
	// Linux mmap is a direct stub; OpenBSD routes through __syscall.
	if src := find(Linux, "mmap"); !strings.Contains(src, "SYSCALL") || strings.Contains(src, "MOV r5, r4") {
		t.Error("linux mmap is not a direct stub")
	}
	if src := find(OpenBSD, "mmap"); !strings.Contains(src, "__syscall") {
		t.Error("openbsd mmap does not mention __syscall")
	}
	// OpenBSD close hides its SYSCALL behind in-text data.
	if src := find(OpenBSD, "close"); !strings.Contains(src, ".word 1") {
		t.Error("openbsd close lacks the disassembly-breaking blob")
	}
	if src := find(Linux, "close"); strings.Contains(src, ".word") {
		t.Error("linux close should be a plain stub")
	}
}

func TestStubNames(t *testing.T) {
	linux := StubNames(Linux)
	obsd := StubNames(OpenBSD)
	if len(obsd) != len(linux)+1 {
		t.Errorf("stub counts: linux %d, openbsd %d", len(linux), len(obsd))
	}
	for _, n := range linux {
		if n == "__syscall" {
			t.Error("__syscall in linux stubs")
		}
	}
}

func TestOSString(t *testing.T) {
	if Linux.String() != "linux" || OpenBSD.String() != "openbsd" {
		t.Error("OS names wrong")
	}
	if !strings.Contains(OS(9).String(), "9") {
		t.Error("unknown OS string")
	}
}
