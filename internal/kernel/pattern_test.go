package kernel

import (
	"strings"
	"testing"

	"asc/internal/binfmt"
	"asc/internal/installer"
)

// patternVictimSrc opens a file whose name arrives on stdin — static
// analysis cannot constrain the path, so without a pattern the argument
// is unprotected.
const patternVictimSrc = `
        .text
        .global main
main:
        SUBI sp, sp, 64
        MOV r1, sp
        CALL gets
        MOV r1, sp
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOVI r7, 0
        BLT r0, r7, .fail
        MOVI r1, ok
        CALL puts
        ADDI sp, sp, 64
        MOVI r0, 0
        RET
.fail:
        ADDI sp, sp, 64
        MOVI r0, 1
        RET
        .rodata
ok:     .asciz "opened\n"
`

func installWithPattern(t *testing.T, pat string) *binfmt.File {
	t.Helper()
	exe := buildExe(t, patternVictimSrc)
	opts := installer.Options{Key: testKey}
	if pat != "" {
		opts.Patterns = map[string][]installer.ArgPattern{
			"open": {{Arg: 0, Pattern: pat}},
		}
	}
	out, pp, rep, err := installer.Install(exe, "patvictim", opts)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if pat != "" {
		if rep.PatternArgs == 0 {
			t.Fatalf("no pattern args recorded: %+v", rep)
		}
		found := false
		for _, sp := range pp.Sites {
			if sp.Name == "open" && strings.Contains(sp.String(), "matches pattern") {
				found = true
			}
		}
		if !found {
			t.Fatal("open policy lacks the pattern constraint")
		}
	}
	return out
}

func TestPatternEnforcementAllowsMatching(t *testing.T) {
	k := newKernel(t)
	exe := installWithPattern(t, "/tmp/*.txt")
	p, err := k.Spawn(exe, "patvictim")
	if err != nil {
		t.Fatal(err)
	}
	p.Stdin = []byte("/tmp/notes.txt\n")
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("matching path killed: %v (audit %v)", p.KilledBy, &k.Audit)
	}
	if p.Output() != "opened\n" {
		t.Errorf("output %q", p.Output())
	}
	if !k.FS.Exists("/tmp/notes.txt") {
		t.Error("file not created")
	}
}

func TestPatternEnforcementBlocksNonMatching(t *testing.T) {
	k := newKernel(t)
	exe := installWithPattern(t, "/tmp/*.txt")
	p, err := k.Spawn(exe, "patvictim")
	if err != nil {
		t.Fatal(err)
	}
	// The classic escape attempt: open /etc/passwd instead.
	p.Stdin = []byte("/etc/passwd\n")
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Killed || p.KilledBy != KillBadPattern {
		t.Fatalf("killed=%v by=%q (audit %v)", p.Killed, p.KilledBy, &k.Audit)
	}
}

func TestPatternAlternation(t *testing.T) {
	k := newKernel(t)
	exe := installWithPattern(t, "/{tmp,data}/app-*")
	for _, tc := range []struct {
		path string
		ok   bool
	}{
		{"/tmp/app-1", true},
		{"/data/app-xyz", true},
		{"/etc/app-1", false},
		{"/tmp/other", false},
	} {
		p, err := k.Spawn(exe, "patvictim")
		if err != nil {
			t.Fatal(err)
		}
		p.Stdin = []byte(tc.path + "\n")
		if err := k.Run(p, 100_000_000); err != nil {
			t.Fatal(err)
		}
		if tc.ok && p.Killed {
			t.Errorf("%s: killed (%v)", tc.path, p.KilledBy)
		}
		if !tc.ok && (!p.Killed || p.KilledBy != KillBadPattern) {
			t.Errorf("%s: killed=%v by=%q", tc.path, p.Killed, p.KilledBy)
		}
	}
}

func TestPatternTamperedSourceKilled(t *testing.T) {
	// An attacker rewrites the pattern bytes in .auth to permit /etc/*:
	// the pattern is an authenticated string, so the MAC check fires.
	exe := installWithPattern(t, "/tmp/*.txt")
	auth := exe.Section(binfmt.SecAuth)
	idx := strings.Index(string(auth.Data), "/tmp/*.txt")
	if idx < 0 {
		t.Fatal("pattern AS not found")
	}
	copy(auth.Data[idx:], "/etc/*\x00\x00\x00\x00")
	k := newKernel(t)
	p, err := k.Spawn(exe, "patvictim")
	if err != nil {
		t.Fatal(err)
	}
	p.Stdin = []byte("/etc/passwd\n")
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Killed || p.KilledBy != KillBadString {
		t.Fatalf("killed=%v by=%q", p.Killed, p.KilledBy)
	}
}

func TestPatternInstallRejectsBadSpecs(t *testing.T) {
	exe := buildExe(t, patternVictimSrc)
	_, _, _, err := installer.Install(exe, "x", installer.Options{
		Key:      testKey,
		Patterns: map[string][]installer.ArgPattern{"open": {{Arg: 0, Pattern: "{unclosed"}}},
	})
	if err == nil {
		t.Error("malformed pattern accepted")
	}
	_, _, _, err = installer.Install(exe, "x", installer.Options{
		Key:      testKey,
		Patterns: map[string][]installer.ArgPattern{"open": {{Arg: 9, Pattern: "/tmp/*"}}},
	})
	if err == nil {
		t.Error("out-of-range pattern arg accepted")
	}
}
