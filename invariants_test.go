// invariants_test.go property-tests the two guarantees the paper's design
// rests on (DESIGN.md §6):
//
//  1. No false alarms: the installer's static analysis is conservative,
//     so a legitimate (uncompromised) execution of any installed program
//     is never killed by the monitor — on any input.
//  2. Tamper fail-stop: any mutation of the policy data carried in the
//     binary (.auth: records, MACs, authenticated strings, predecessor
//     sets, policy state) either leaves behaviour completely unchanged
//     (the byte was padding or unused) or results in the process being
//     killed. Tampering never yields a third outcome.
package asc_test

import (
	"fmt"
	"math/rand"
	"testing"

	"asc"
	"asc/internal/binfmt"
	"asc/internal/sys"
	"asc/internal/workload"
)

// randomSpec builds a random program over the full system call table.
func randomSpec(rng *rand.Rand, name string) *workload.Spec {
	all := sys.All()
	spec := &workload.Spec{Name: name, SiteFactor: 1 + rng.Intn(3), Rare: map[byte][]workload.Call{}}
	nCommon := 3 + rng.Intn(10)
	for i := 0; i < nCommon; i++ {
		sig := all[rng.Intn(len(all))]
		if sig.Num == sys.SysExit || sig.Num == sys.SysExecve || sig.Num == sys.SysKill ||
			sig.Num == sys.SysIndirect || sig.Num == sys.SysPause {
			continue
		}
		spec.Common = append(spec.Common, workload.Call{Name: sig.Name})
	}
	nHandlers := rng.Intn(3)
	for h := 0; h < nHandlers; h++ {
		var calls []workload.Call
		for i := 0; i < 1+rng.Intn(5); i++ {
			sig := all[rng.Intn(len(all))]
			if sig.Num == sys.SysExit || sig.Num == sys.SysExecve || sig.Num == sys.SysKill ||
				sig.Num == sys.SysIndirect || sig.Num == sys.SysPause {
				continue
			}
			calls = append(calls, workload.Call{Name: sig.Name})
		}
		if len(calls) > 0 {
			spec.Rare[byte('b'+h)] = calls
		}
	}
	return spec
}

// TestInvariantNoFalseAlarms: random programs, random inputs, always
// enforced, never killed.
func TestInvariantNoFalseAlarms(t *testing.T) {
	key := asc.NewKey("invariant")
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			spec := randomSpec(rng, fmt.Sprintf("rand%d", seed))
			exe, err := workload.BuildSource(spec.Name, spec.Source(asc.Linux), asc.Linux)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			system, err := asc.NewSystem(asc.SystemConfig{Key: key})
			if err != nil {
				t.Fatal(err)
			}
			hardened, _, _, err := system.Install(exe, spec.Name)
			if err != nil {
				t.Fatalf("install: %v", err)
			}
			// Random inputs: some trigger rare handlers, some do not,
			// some contain garbage commands.
			inputs := []string{
				spec.TrainingInput(),
				spec.AllRareCommands(),
				workload.ScratchSeed + "zzzzqq",
				"ABCDbcdbcdbcd",
			}
			for _, in := range inputs {
				res, err := system.Exec(hardened, spec.Name, in)
				if err != nil {
					t.Fatalf("exec: %v", err)
				}
				if res.Killed {
					t.Fatalf("false alarm on input %q: %s (audit %v)",
						in, res.Reason, system.Audit())
				}
			}
		})
	}
}

// TestInvariantCorpusNoFalseAlarms runs the full corpus programs (far
// larger than the random ones) under enforcement on their complete
// behaviour.
func TestInvariantCorpusNoFalseAlarms(t *testing.T) {
	key := asc.NewKey("invariant")
	for _, name := range workload.Names() {
		exe, err := workload.Build(name, asc.Linux)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := workload.Program(name, asc.Linux)
		if err != nil {
			t.Fatal(err)
		}
		system, err := asc.NewSystem(asc.SystemConfig{Key: key})
		if err != nil {
			t.Fatal(err)
		}
		hardened, _, _, err := system.Install(exe, name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := system.Exec(hardened, name, spec.AllRareCommands())
		if err != nil {
			t.Fatal(err)
		}
		if res.Killed {
			t.Errorf("%s: false alarm: %s", name, res.Reason)
		}
	}
}

// TestInvariantAuthTamperFailStop: flipping any byte of the carried
// policy data either changes nothing observable or fail-stops.
func TestInvariantAuthTamperFailStop(t *testing.T) {
	key := asc.NewKey("invariant")
	exe, err := workload.Build("bison", asc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	system, err := asc.NewSystem(asc.SystemConfig{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	hardened, _, _, err := system.Install(exe, "bison")
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := workload.Program("bison", asc.Linux)
	input := spec.AllRareCommands()
	baseline, err := system.Exec(hardened, "bison", input)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Killed {
		t.Fatal("baseline killed")
	}
	serialized, err := hardened.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	auth := hardened.Section(binfmt.SecAuth)
	if auth == nil || auth.Size == 0 {
		t.Fatal("no .auth")
	}

	rng := rand.New(rand.NewSource(7))
	killed, harmless := 0, 0
	for trial := 0; trial < 60; trial++ {
		clone, err := asc.ReadBinary(serialized)
		if err != nil {
			t.Fatal(err)
		}
		ca := clone.Section(binfmt.SecAuth)
		off := rng.Intn(int(ca.Size))
		bit := byte(1) << rng.Intn(8)
		ca.Data[off] ^= bit

		sys2, err := asc.NewSystem(asc.SystemConfig{Key: key})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys2.Exec(clone, "bison-tampered", input)
		if err != nil {
			t.Fatalf("trial %d (off %d): %v", trial, off, err)
		}
		switch {
		case res.Killed:
			killed++
		case res.Output == baseline.Output && res.ExitCode == baseline.ExitCode:
			harmless++ // padding or unreached data
		default:
			t.Fatalf("trial %d: flip at .auth+%d changed behaviour without being caught (output %q vs %q)",
				trial, off, res.Output, baseline.Output)
		}
	}
	if killed == 0 {
		t.Error("no tampering trial was caught; flips are not reaching live data")
	}
	t.Logf("60 flips: %d killed, %d harmless", killed, harmless)
}

// TestInvariantStateReplayFailStop: replaying stale policy state mid-run
// is caught by the counter nonce. Simulate: snapshot {lastBlock, lbMAC}
// at start (counter=0 state), execute a few system calls, restore the
// snapshot, continue — the next verified call must die.
func TestInvariantStateReplayFailStop(t *testing.T) {
	key := asc.NewKey("invariant")
	exe, err := workload.Build("bison", asc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	system, err := asc.NewSystem(asc.SystemConfig{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	hardened, _, _, err := system.Install(exe, "bison")
	if err != nil {
		t.Fatal(err)
	}
	p, err := system.Kernel.Spawn(hardened, "bison")
	if err != nil {
		t.Fatal(err)
	}
	p.Stdin = []byte(workload.ScratchSeed)
	stateAddr, ok := hardened.SymbolAddr("__asc_state")
	if !ok {
		t.Fatal("no __asc_state symbol")
	}
	snapshot, err := p.Mem.KernelRead(stateAddr, 20)
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), snapshot...)
	// Execute until a few syscalls have happened.
	for p.SyscallCount < 3 && !p.CPU.Halted {
		if err := p.CPU.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Replay the initial state and continue: next verified call dies.
	if err := p.Mem.KernelWrite(stateAddr, saved); err != nil {
		t.Fatal(err)
	}
	if err := system.Kernel.Run(p, 1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Killed || p.KilledBy != asc.KillBadState {
		t.Errorf("replay not caught: killed=%v by=%q", p.Killed, p.KilledBy)
	}
}
