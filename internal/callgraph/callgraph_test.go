package callgraph

import (
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/cfg"
	"asc/internal/libc"
	"asc/internal/linker"
	"asc/internal/sys"
)

func build(t *testing.T, src string) (*cfg.Program, *Graph) {
	t.Helper()
	main, err := asm.Assemble("main.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	lib, err := libc.Objects(libc.Linux)
	if err != nil {
		t.Fatalf("libc: %v", err)
	}
	exe, err := linker.Link([]*binfmt.File{main}, lib)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	p, err := cfg.Analyze(exe)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	g, err := Build(p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p, g
}

// siteByNum finds the unique syscall block with the given number.
func siteByNum(t *testing.T, p *cfg.Program, num uint16) *cfg.Block {
	t.Helper()
	var found *cfg.Block
	for _, s := range p.SyscallSites() {
		if s.NumKnown && s.Num == num {
			if found != nil {
				t.Fatalf("multiple sites for syscall %d", num)
			}
			found = s.Block
		}
	}
	if found == nil {
		t.Fatalf("no site for syscall %d", num)
	}
	return found
}

func TestStraightLineOrder(t *testing.T) {
	// getpid; getuid; exit — a strict chain.
	p, g := build(t, `
        .text
        .global main
main:
        CALL getpid
        CALL getuid
        MOVI r0, 0
        RET
`)
	pidBlk := siteByNum(t, p, sys.SysGetpid)
	uidBlk := siteByNum(t, p, sys.SysGetuid)
	exitBlk := siteByNum(t, p, sys.SysExit)

	if ps := g.PredSet(pidBlk); len(ps) != 1 || ps[0] != Entry {
		t.Errorf("getpid preds = %v, want [Entry]", ps)
	}
	if ps := g.PredSet(uidBlk); len(ps) != 1 || ps[0] != pidBlk.ID {
		t.Errorf("getuid preds = %v, want [%d]", ps, pidBlk.ID)
	}
	if ps := g.PredSet(exitBlk); len(ps) != 1 || ps[0] != uidBlk.ID {
		t.Errorf("exit preds = %v, want [%d]", ps, uidBlk.ID)
	}
}

func TestBranchMergesPreds(t *testing.T) {
	// if (...) getpid else getuid; then getgid: getgid's preds = both.
	p, g := build(t, `
        .text
        .global main
main:
        LOAD r7, [sp+0]
        MOVI r8, 0
        BEQ r7, r8, .else
        CALL getpid
        JMP .join
.else:
        CALL getuid
.join:
        CALL getgid
        MOVI r0, 0
        RET
`)
	pidBlk := siteByNum(t, p, sys.SysGetpid)
	uidBlk := siteByNum(t, p, sys.SysGetuid)
	gidBlk := siteByNum(t, p, sys.SysGetgid)
	ps := g.PredSet(gidBlk)
	want := map[int]bool{pidBlk.ID: true, uidBlk.ID: true}
	if len(ps) != 2 || !want[ps[0]] || !want[ps[1]] {
		t.Errorf("getgid preds = %v, want {%d,%d}", ps, pidBlk.ID, uidBlk.ID)
	}
}

func TestLoopSelfPredecessor(t *testing.T) {
	// for(...) getpid(): getpid can follow itself or Entry.
	p, g := build(t, `
        .text
        .global main
main:
        MOVI r10, 5
.loop:
        CALL getpid
        ADDI r10, r10, -1
        MOVI r7, 0
        BNE r10, r7, .loop
        MOVI r0, 0
        RET
`)
	pidBlk := siteByNum(t, p, sys.SysGetpid)
	ps := g.PredSet(pidBlk)
	if len(ps) != 2 || ps[0] != Entry || ps[1] != pidBlk.ID {
		t.Errorf("loop getpid preds = %v, want [Entry %d]", ps, pidBlk.ID)
	}
}

func TestInterproceduralOrder(t *testing.T) {
	// helper does getuid; main: getpid, helper(), getgid.
	// getuid's pred = getpid; getgid's pred = getuid (via return edge).
	p, g := build(t, `
        .text
        .global main
main:
        CALL getpid
        CALL helper
        CALL getgid
        MOVI r0, 0
        RET
helper:
        CALL getuid
        RET
`)
	pidBlk := siteByNum(t, p, sys.SysGetpid)
	uidBlk := siteByNum(t, p, sys.SysGetuid)
	gidBlk := siteByNum(t, p, sys.SysGetgid)
	if ps := g.PredSet(uidBlk); len(ps) != 1 || ps[0] != pidBlk.ID {
		t.Errorf("getuid preds = %v, want [%d] (interproc in-edge)", ps, pidBlk.ID)
	}
	if ps := g.PredSet(gidBlk); len(ps) != 1 || ps[0] != uidBlk.ID {
		t.Errorf("getgid preds = %v, want [%d] (return edge)", ps, uidBlk.ID)
	}
}

func TestCallDoesNotBypassCallee(t *testing.T) {
	// The fallthrough of a call must flow THROUGH the callee: getgid's
	// predecessor set must not contain getpid directly when helper
	// unconditionally performs getuid.
	p, g := build(t, `
        .text
        .global main
main:
        CALL getpid
        CALL helper
        CALL getgid
        MOVI r0, 0
        RET
helper:
        CALL getuid
        RET
`)
	pidBlk := siteByNum(t, p, sys.SysGetpid)
	gidBlk := siteByNum(t, p, sys.SysGetgid)
	for _, id := range g.PredSet(gidBlk) {
		if id == pidBlk.ID {
			t.Errorf("getgid preds contain getpid %d: call edge bypassed callee", pidBlk.ID)
		}
	}
}

func TestIndirectCallConservative(t *testing.T) {
	// A function pointer to either of two helpers: the following syscall
	// may be preceded by either helper's syscall.
	p, g := build(t, `
        .text
        .global main
main:
        MOVI r2, h1
        LOAD r7, [sp+0]
        MOVI r8, 0
        BEQ r7, r8, .go
        MOVI r2, h2
.go:
        CALLR r2
        CALL getgid
        MOVI r0, 0
        RET
h1:
        CALL getpid
        RET
h2:
        CALL getuid
        RET
`)
	pidBlk := siteByNum(t, p, sys.SysGetpid)
	uidBlk := siteByNum(t, p, sys.SysGetuid)
	gidBlk := siteByNum(t, p, sys.SysGetgid)
	ps := g.PredSet(gidBlk)
	has := func(id int) bool {
		for _, x := range ps {
			if x == id {
				return true
			}
		}
		return false
	}
	if !has(pidBlk.ID) || !has(uidBlk.ID) {
		t.Errorf("getgid preds = %v, want both %d and %d", ps, pidBlk.ID, uidBlk.ID)
	}
	if len(g.AddressTaken) < 2 {
		t.Errorf("address-taken = %d funcs, want >= 2", len(g.AddressTaken))
	}
}

func TestUnreachableFunctionEmptyPreds(t *testing.T) {
	p, g := build(t, `
        .text
        .global main
main:
        MOVI r0, 0
        RET
deadcode:
        CALL getpid
        RET
`)
	pidBlk := siteByNum(t, p, sys.SysGetpid)
	if ps := g.PredSet(pidBlk); len(ps) != 0 {
		t.Errorf("unreachable getpid preds = %v, want empty", ps)
	}
	dead := p.FuncNamed("deadcode")
	if g.Reachable[dead] {
		t.Error("deadcode marked reachable")
	}
	if !g.Reachable[p.FuncNamed("main")] {
		t.Error("main not reachable")
	}
}

func TestSyscallNumbers(t *testing.T) {
	_, g := build(t, `
        .text
        .global main
main:
        CALL getpid
        CALL getpid
        CALL getuid
        MOVI r0, 0
        RET
`)
	known, unknown := g.SyscallNumbers()
	// getpid, getuid, exit = 3 distinct.
	if len(known) != 3 {
		t.Errorf("known = %v, want 3 distinct", known)
	}
	if len(unknown) != 0 {
		t.Errorf("unknown sites = %d", len(unknown))
	}
}
