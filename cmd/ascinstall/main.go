// ascinstall is the trusted installer CLI: it reads a relocatable
// executable, generates its system call policy by static analysis, and
// writes the authenticated executable.
//
// Usage: ascinstall -key <passphrase> [-o out] [-id N] [-policy] [-template] exe
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"asc"
	"asc/internal/installer"
)

func main() {
	key := flag.String("key", "", "MAC key passphrase (required)")
	out := flag.String("o", "", "output path (default: input + .auth)")
	progID := flag.Uint("id", 0, "program ID for unique block identifiers (0 = off)")
	showPolicy := flag.Bool("policy", false, "print the generated policy")
	template := flag.Bool("template", false, "check the default metapolicy and print the template")
	var patterns patternFlags
	flag.Var(&patterns, "pattern", "pattern constraint call:arg=pattern (repeatable), e.g. open:0=/tmp/*")
	flag.Parse()
	if flag.NArg() != 1 || *key == "" {
		fmt.Fprintln(os.Stderr, "usage: ascinstall -key <passphrase> [-o out] [-id N] [-policy] [-template] exe")
		os.Exit(2)
	}
	path := flag.Arg(0)
	b, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	exe, err := asc.ReadBinary(b)
	if err != nil {
		fatal(err)
	}
	hardened, pp, rep, err := asc.Install(exe, path, asc.InstallOptions{
		Key:       asc.NewKey(*key),
		ProgramID: uint32(*progID),
		OSName:    "linux",
		Patterns:  patterns.m,
	})
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = path + ".auth"
	}
	data, err := hardened.Bytes()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o755); err != nil {
		fatal(err)
	}
	fmt.Printf("ascinstall: %s -> %s\n", path, dst)
	fmt.Printf("  %d sites, %d distinct calls, %d/%d args authenticated\n",
		rep.Sites, rep.DistinctCalls, rep.AuthArgs, rep.TotalArgs)
	for _, w := range rep.Warnings {
		fmt.Printf("  warning: %s\n", w)
	}
	if *showPolicy {
		for _, sp := range pp.Sites {
			fmt.Print(sp.String())
		}
	}
	if *template {
		entries := asc.CheckMetapolicy(pp, asc.DefaultMetapolicy())
		fmt.Print(asc.RenderTemplate(entries))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ascinstall:", err)
	os.Exit(1)
}

// patternFlags parses repeated -pattern call:arg=pattern flags.
type patternFlags struct {
	m map[string][]installer.ArgPattern
}

func (p *patternFlags) String() string { return "" }

func (p *patternFlags) Set(v string) error {
	head, pat, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want call:arg=pattern, got %q", v)
	}
	call, argStr, ok := strings.Cut(head, ":")
	if !ok {
		return fmt.Errorf("want call:arg=pattern, got %q", v)
	}
	arg, err := strconv.Atoi(argStr)
	if err != nil {
		return fmt.Errorf("bad argument index in %q", v)
	}
	if p.m == nil {
		p.m = make(map[string][]installer.ArgPattern)
	}
	p.m[call] = append(p.m[call], installer.ArgPattern{Arg: arg, Pattern: pat})
	return nil
}
