package binfmt

import "testing"

// FuzzRead exercises the SELF reader with arbitrary bytes; it must never
// panic, and any file it accepts must re-serialize.
func FuzzRead(f *testing.F) {
	sample := sampleFile()
	sample.Layout()
	b, err := sample.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Read(data)
		if err != nil {
			return
		}
		if _, err := parsed.Bytes(); err != nil {
			t.Fatalf("accepted file fails to serialize: %v", err)
		}
	})
}
