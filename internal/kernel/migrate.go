// migrate.go implements the kernel half of the cross-node migration
// handshake. Export is "checkpoint plus addressing": it seals the
// process at the given epoch and wraps the blob in a migration envelope
// bound to the (source, destination) node pair. Import is the mirror
// and, like Restore, verifies rather than trusts — envelope seal first,
// then the destination-node binding (a genuine envelope exported for
// another node dies here, before any inner state is decoded), then the
// caller's trusted epoch, and finally the full Restore pipeline over
// the inner sealed checkpoint (program tag, CF-state MAC, capability
// set, nonce re-seed).
//
// Neither side holds liveness state: whether this epoch may run *here,
// now* — the previous owner fenced or dead — is the cluster fence's
// decision, made before Import is attempted.
package kernel

import (
	"errors"
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/ckpt"
)

// Export seals the complete state of p at the given epoch and wraps it
// in a migration envelope addressed from node src to node dst. It
// returns both the envelope (what crosses the fabric) and the inner
// sealed checkpoint (what the control plane should persist durably
// before the transfer starts, so a migration torn mid-handshake still
// recovers warm). The caller owns epoch monotonicity (the durable store
// enforces it) and must fence the local process afterwards — an
// exported epoch must never keep running at its source.
func (k *Kernel) Export(p *Process, epoch uint64, src, dst uint32) (env, inner []byte, err error) {
	inner, err = k.Checkpoint(p, epoch)
	if err != nil {
		return nil, nil, err
	}
	env = ckpt.SealMigration(k.key, &ckpt.Migration{
		Epoch: epoch,
		Src:   src,
		Dst:   dst,
		Name:  p.Name,
		Ckpt:  inner,
	})
	return env, inner, nil
}

// PeekMigration verifies a migration envelope's seal and decodes its
// header without building any process state — the staging half of a
// two-phase import. A destination node stages an arriving envelope with
// this (cheap, side-effect-free), lets the control plane decide
// admission, and only then commits with Import.
func (k *Kernel) PeekMigration(blob []byte) (*ckpt.Migration, error) {
	if k.key == nil {
		return nil, errors.New("kernel: migration requires a MAC key")
	}
	return ckpt.OpenMigration(k.key, blob)
}

// Import opens a migration envelope addressed to selfNode and restores
// the inner sealed checkpoint. wantEpoch is the trusted epoch the
// importer's control plane admitted for this transfer; both the
// envelope and the inner seal must agree with it. On any failure no
// runnable process exists.
func (k *Kernel) Import(exe *binfmt.File, selfNode uint32, blob []byte, wantEpoch uint64) (*Process, error) {
	if k.key == nil {
		return nil, errors.New("kernel: import requires a MAC key")
	}
	m, err := ckpt.OpenMigration(k.key, blob)
	if err != nil {
		return nil, fmt.Errorf("kernel: import: %w", err)
	}
	if m.Dst != selfNode {
		return nil, fmt.Errorf("kernel: import %s: %w: addressed to node %d, this is node %d",
			m.Name, ckpt.ErrNode, m.Dst, selfNode)
	}
	if m.Epoch != wantEpoch {
		return nil, fmt.Errorf("kernel: import %s: %w: envelope epoch %d, admitted %d",
			m.Name, ckpt.ErrEpoch, m.Epoch, wantEpoch)
	}
	return k.Restore(exe, m.Name, m.Ckpt, wantEpoch)
}
