// Package mac implements the AES-CMAC (OMAC1) message authentication code
// used throughout the authenticated system call (ASC) system.
//
// The paper specifies AES-CBC-OMAC producing a 128-bit code; OMAC1 is the
// standardized variant (NIST SP 800-38B, RFC 4493). Both the trusted
// installer and the simulated kernel derive tags with this package, using a
// key that is never available to application code.
package mac

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"
)

// Size is the length of a MAC tag in bytes (128 bits).
const Size = 16

// KeySize is the length of an AES-128 key in bytes.
const KeySize = 16

// ErrBadKeySize is returned when a key of the wrong length is supplied.
var ErrBadKeySize = errors.New("mac: key must be 16 bytes (AES-128)")

// Tag is a 128-bit message authentication code.
type Tag [Size]byte

// String renders the tag as lowercase hex.
func (t Tag) String() string {
	return fmt.Sprintf("%x", t[:])
}

// Equal reports whether two tags match, in constant time.
func (t Tag) Equal(o Tag) bool {
	return subtle.ConstantTimeCompare(t[:], o[:]) == 1
}

// Keyed computes CMAC tags under a fixed key. It precomputes the AES key
// schedule and the two CMAC subkeys, so repeated Sum calls are cheap. A
// Keyed value is safe for concurrent use by multiple goroutines: Sum does
// not mutate shared state (the internal scratch blocks are taken from a
// pool, never shared between in-flight computations).
type Keyed struct {
	block cipher.Block
	k1    [Size]byte
	k2    [Size]byte

	// scratch recycles the two working blocks of Sum. Passing stack
	// arrays through the cipher.Block interface forces them to the heap,
	// so without the pool every Sum costs two allocations — measurable in
	// the kernel trap handler, which computes several MACs per call.
	scratch sync.Pool
}

// cmacScratch holds the working state of one CMAC computation.
type cmacScratch struct {
	x    [Size]byte
	last [Size]byte
}

// New returns a Keyed MAC for the given AES-128 key.
func New(key []byte) (*Keyed, error) {
	if len(key) != KeySize {
		return nil, ErrBadKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("mac: new cipher: %w", err)
	}
	k := &Keyed{block: block}
	var l [Size]byte
	block.Encrypt(l[:], l[:])
	dbl(&k.k1, &l)
	dbl(&k.k2, &k.k1)
	return k, nil
}

// dbl doubles a 128-bit value in GF(2^128) with the CMAC reduction
// polynomial (x^128 + x^7 + x^2 + x + 1).
func dbl(dst, src *[Size]byte) {
	var carry byte
	for i := Size - 1; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
	if carry != 0 {
		dst[Size-1] ^= 0x87
	}
}

// Sum computes the CMAC tag of msg.
//
// It also reports the number of AES block operations performed, which the
// simulated kernel uses for deterministic cycle accounting (the cycle model
// charges a fixed cost per block operation; see internal/kernel).
func (k *Keyed) Sum(msg []byte) (Tag, int) {
	s, _ := k.scratch.Get().(*cmacScratch)
	if s == nil {
		s = new(cmacScratch)
	}
	s.x = [Size]byte{}
	s.last = [Size]byte{}
	blocks := 0
	n := len(msg)
	// Process all complete blocks except the final one.
	for n > Size {
		for i := 0; i < Size; i++ {
			s.x[i] ^= msg[i]
		}
		k.block.Encrypt(s.x[:], s.x[:])
		blocks++
		msg = msg[Size:]
		n -= Size
	}
	if n == Size {
		copy(s.last[:], msg)
		for i := 0; i < Size; i++ {
			s.last[i] ^= k.k1[i]
		}
	} else {
		copy(s.last[:], msg)
		s.last[n] = 0x80
		for i := 0; i < Size; i++ {
			s.last[i] ^= k.k2[i]
		}
	}
	for i := 0; i < Size; i++ {
		s.x[i] ^= s.last[i]
	}
	k.block.Encrypt(s.x[:], s.x[:])
	blocks++
	var tag Tag
	copy(tag[:], s.x[:])
	k.scratch.Put(s)
	return tag, blocks
}

// Verify recomputes the tag of msg and compares it with want in constant
// time. It reports whether the tag matches and how many AES block
// operations were performed.
func (k *Keyed) Verify(msg []byte, want Tag) (bool, int) {
	got, blocks := k.Sum(msg)
	return got.Equal(want), blocks
}

// Blocks returns the number of AES block operations Sum will perform for a
// message of length n, without computing anything.
func Blocks(n int) int {
	if n <= Size {
		return 1
	}
	return (n + Size - 1) / Size
}

// ChainState is a precomputed CMAC prefix: the CBC chaining value after
// absorbing every complete block of a message except the final one,
// together with a copy of the absorbed bytes. The kernel precomputes one
// per verification site at policy-install time, so steady-state site
// verification pays only the final block(s) of the call encoding.
//
// A ChainState is immutable after Precompute and safe for concurrent use.
type ChainState struct {
	x      [Size]byte
	prefix []byte // the absorbed bytes, len a multiple of Size
}

// Consumed returns how many message bytes the state has absorbed.
func (st *ChainState) Consumed() int { return len(st.prefix) }

// Precompute absorbs every complete block of msg except the final block
// and returns the chaining state. It also reports the AES block
// operations performed (charged once, at install time). For messages of
// one block or less there is nothing to hoist and the state is empty.
func (k *Keyed) Precompute(msg []byte) (*ChainState, int) {
	st := &ChainState{}
	n := 0
	if len(msg) > Size {
		n = (len(msg) - 1) / Size * Size
	}
	st.prefix = append([]byte(nil), msg[:n]...)
	blocks := 0
	for rem := st.prefix; len(rem) > 0; rem = rem[Size:] {
		for i := 0; i < Size; i++ {
			st.x[i] ^= rem[i]
		}
		k.block.Encrypt(st.x[:], st.x[:])
		blocks++
	}
	return st, blocks
}

// SumFrom computes the CMAC tag of msg, resuming from a precomputed
// prefix state when the live message still begins with the absorbed
// bytes. When the prefix no longer matches (or st is nil, or msg is too
// short to extend it) it falls back to a full Sum — the result is always
// exactly Sum(msg); only the reported AES block count differs.
func (k *Keyed) SumFrom(st *ChainState, msg []byte) (Tag, int) {
	if st == nil || len(msg) <= len(st.prefix) ||
		subtle.ConstantTimeCompare(msg[:len(st.prefix)], st.prefix) != 1 {
		return k.Sum(msg)
	}
	s, _ := k.scratch.Get().(*cmacScratch)
	if s == nil {
		s = new(cmacScratch)
	}
	s.x = st.x
	s.last = [Size]byte{}
	blocks := 0
	rem := msg[len(st.prefix):]
	n := len(rem)
	for n > Size {
		for i := 0; i < Size; i++ {
			s.x[i] ^= rem[i]
		}
		k.block.Encrypt(s.x[:], s.x[:])
		blocks++
		rem = rem[Size:]
		n -= Size
	}
	if n == Size {
		copy(s.last[:], rem)
		for i := 0; i < Size; i++ {
			s.last[i] ^= k.k1[i]
		}
	} else {
		copy(s.last[:], rem)
		s.last[n] = 0x80
		for i := 0; i < Size; i++ {
			s.last[i] ^= k.k2[i]
		}
	}
	for i := 0; i < Size; i++ {
		s.x[i] ^= s.last[i]
	}
	k.block.Encrypt(s.x[:], s.x[:])
	blocks++
	var tag Tag
	copy(tag[:], s.x[:])
	k.scratch.Put(s)
	return tag, blocks
}

// SumBatch computes the CMAC tag of every message in one pass, appending
// the tags to dst and returning it along with the total AES block count.
// Each tag equals Sum of the corresponding message; batching changes how
// the work is scheduled (one key-schedule walk, one scratch checkout for
// the whole group), which the kernel's cost model reflects with a
// discounted per-block charge for group-committed verification.
func (k *Keyed) SumBatch(msgs [][]byte, dst []Tag) ([]Tag, int) {
	s, _ := k.scratch.Get().(*cmacScratch)
	if s == nil {
		s = new(cmacScratch)
	}
	total := 0
	for _, msg := range msgs {
		s.x = [Size]byte{}
		s.last = [Size]byte{}
		n := len(msg)
		for n > Size {
			for i := 0; i < Size; i++ {
				s.x[i] ^= msg[i]
			}
			k.block.Encrypt(s.x[:], s.x[:])
			total++
			msg = msg[Size:]
			n -= Size
		}
		if n == Size {
			copy(s.last[:], msg)
			for i := 0; i < Size; i++ {
				s.last[i] ^= k.k1[i]
			}
		} else {
			copy(s.last[:], msg)
			s.last[n] = 0x80
			for i := 0; i < Size; i++ {
				s.last[i] ^= k.k2[i]
			}
		}
		for i := 0; i < Size; i++ {
			s.x[i] ^= s.last[i]
		}
		k.block.Encrypt(s.x[:], s.x[:])
		total++
		var tag Tag
		copy(tag[:], s.x[:])
		dst = append(dst, tag)
	}
	k.scratch.Put(s)
	return dst, total
}
