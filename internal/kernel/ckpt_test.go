package kernel

import (
	"errors"
	"testing"

	"asc/internal/binfmt"
	"asc/internal/ckpt"
	"asc/internal/vm"
)

// ckptLoopSrc opens a file, keeps the descriptor across a getpid loop
// (so a mid-loop checkpoint captures a live fd), then closes it and
// reports. r11/r12 survive calls.
const ckptLoopSrc = `
        .text
        .global main
main:
        MOVI r1, path
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r11, r0
        MOVI r12, 20
.loop:
        CALL getpid
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        MOV r1, r11
        CALL close
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
path:   .asciz "/tmp/out"
msg:    .asciz "done"
`

// runToCompletion executes p with a generous budget.
func runToCompletion(t *testing.T, k *Kernel, p *Process) {
	t.Helper()
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// sliceAndSeal spawns a process, interrupts it at roughly half of
// refCycles (mid-loop, descriptor open), and seals it under epoch.
func sliceAndSeal(t *testing.T, k *Kernel, exe *binfmt.File, refCycles, epoch uint64) (*Process, []byte) {
	t.Helper()
	p, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p, refCycles/2); !errors.Is(err, vm.ErrCycleLimit) {
		t.Fatalf("slice run: err = %v, want cycle limit", err)
	}
	blob, err := k.Checkpoint(p, epoch)
	if err != nil {
		t.Fatal(err)
	}
	return p, blob
}

// TestCheckpointRestoreRoundTrip: a process checkpointed mid-run and
// restored finishes with exactly the output, cycle count, and syscall
// totals of an uninterrupted run — and the memory-checker nonce is
// advanced by the restore (the replay cut).
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	exe := buildAuthExe(t, ckptLoopSrc)
	k := newKernel(t)

	ref, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, k, ref)
	if ref.Killed || !ref.Exited || ref.Code != 0 {
		t.Fatalf("reference run failed: killed=%v code=%d", ref.Killed, ref.Code)
	}

	p, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	p.Enforcement = EnforceDeny // restored processes keep their mode
	if err := k.Run(p, ref.CPU.Cycles/2); !errors.Is(err, vm.ErrCycleLimit) {
		t.Fatalf("slice run: err = %v, want cycle limit", err)
	}
	blob, err := k.Checkpoint(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	sealedCounter := p.counter

	r, err := k.Restore(exe, "test", blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Enforcement != EnforceDeny {
		t.Errorf("restored enforcement = %v, want deny", r.Enforcement)
	}
	if r.CPU.Cycles != p.CPU.Cycles {
		t.Errorf("restored cycles %d, sealed %d", r.CPU.Cycles, p.CPU.Cycles)
	}
	if r.counter != sealedCounter+1 {
		t.Errorf("restored nonce %d, want sealed+1 = %d (replay cut)", r.counter, sealedCounter+1)
	}
	runToCompletion(t, k, r)
	if r.Killed {
		t.Fatalf("restored process killed: %v", r.KilledBy)
	}
	if r.Output() != ref.Output() {
		t.Errorf("output %q, want %q", r.Output(), ref.Output())
	}
	if r.CPU.Cycles != ref.CPU.Cycles {
		t.Errorf("final cycles %d, want %d", r.CPU.Cycles, ref.CPU.Cycles)
	}
	if r.SyscallCount != ref.SyscallCount || r.VerifyCount != ref.VerifyCount {
		t.Errorf("syscalls %d/%d verified %d/%d",
			r.SyscallCount, ref.SyscallCount, r.VerifyCount, ref.VerifyCount)
	}
}

// TestCheckpointRestoreWithCache: restore under an enabled verify cache
// drops the cached sites (conservative full re-verification) and still
// runs to a clean exit.
func TestCheckpointRestoreWithCache(t *testing.T) {
	exe := buildAuthExe(t, ckptLoopSrc)
	k := newKernel(t, WithVerifyCache())

	ref, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, k, ref)
	_, blob := sliceAndSeal(t, k, exe, ref.CPU.Cycles, 1)

	r, err := k.Restore(exe, "test", blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.vcache != nil {
		t.Error("restore carried a verify cache")
	}
	before := r.CacheStats()
	runToCompletion(t, k, r)
	if r.Killed || r.Code != 0 {
		t.Fatalf("restored run failed: killed=%v (%v) code=%d", r.Killed, r.KilledBy, r.Code)
	}
	// The per-process cache was dropped, so no site may ride a free L1
	// hit: each must either re-verify (a miss) or re-adopt a fleet entry
	// (a share, which byte-compares the restored memory against the
	// fleet-verified copies).
	after := r.CacheStats()
	if after.Misses == before.Misses && after.Shares == before.Shares {
		t.Error("no post-restore miss or share: sites were not re-checked")
	}
}

// TestRestoreRejections: every checkpoint attack class is rejected with
// its classified error, and a failed restore leaves no process behind.
func TestRestoreRejections(t *testing.T) {
	exe := buildAuthExe(t, ckptLoopSrc)
	other := buildAuthExe(t, cacheLoopSrc)
	k := newKernel(t)

	ref, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, k, ref)
	_, blob := sliceAndSeal(t, k, exe, ref.CPU.Cycles, 5)

	k.mu.Lock()
	procsBefore := len(k.procs)
	k.mu.Unlock()

	cases := []struct {
		name string
		run  func() error
		want error
	}{
		{"bit flip", func() error {
			mut := append([]byte(nil), blob...)
			mut[len(mut)/3] ^= 0x10
			_, err := k.Restore(exe, "test", mut, 5)
			return err
		}, ckpt.ErrSeal},
		{"torn tail", func() error {
			_, err := k.Restore(exe, "test", blob[:len(blob)/2], 5)
			return err
		}, ckpt.ErrSeal},
		{"torn to stub", func() error {
			_, err := k.Restore(exe, "test", blob[:8], 5)
			return err
		}, ckpt.ErrTruncated},
		{"epoch replay", func() error {
			_, err := k.Restore(exe, "test", blob, 6)
			return err
		}, ckpt.ErrEpoch},
		{"wrong program", func() error {
			_, err := k.Restore(other, "test", blob, 5)
			return err
		}, ckpt.ErrProgram},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	k.mu.Lock()
	procsAfter := len(k.procs)
	k.mu.Unlock()
	if procsAfter != procsBefore {
		t.Errorf("failed restores leaked processes: %d -> %d", procsBefore, procsAfter)
	}

	// The untampered blob still restores: rejection is a property of the
	// attack, not of the blob's age.
	if _, err := k.Restore(exe, "test", blob, 5); err != nil {
		t.Errorf("genuine blob rejected after attack attempts: %v", err)
	}
}

// TestRestoreMissingFile: a checkpoint holding an open descriptor cannot
// restore on a machine whose filesystem lacks the file — an environment
// mismatch classified as state, not corruption.
func TestRestoreMissingFile(t *testing.T) {
	exe := buildAuthExe(t, ckptLoopSrc)
	k := newKernel(t)
	ref, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, k, ref)
	_, blob := sliceAndSeal(t, k, exe, ref.CPU.Cycles, 1)

	fresh := newKernel(t) // same key, no /tmp/out
	if _, err := fresh.Restore(exe, "test", blob, 1); !errors.Is(err, ckpt.ErrState) {
		t.Fatalf("err = %v, want ErrState", err)
	}
}

// TestCheckpointUnsupportedFDs: live pipes make a process
// uncheckpointable — the format refuses rather than silently dropping
// state.
func TestCheckpointUnsupportedFDs(t *testing.T) {
	exe := buildAuthExe(t, ckptLoopSrc)
	k := newKernel(t)
	p, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	p.fds = append(p.fds, &fdEntry{kind: fdPipeR, pipe: &pipeBuf{}})
	if _, err := k.Checkpoint(p, 1); !errors.Is(err, ckpt.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}
