package policy

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"asc/internal/mac"
)

func testKey(t *testing.T) *mac.Keyed {
	t.Helper()
	k, err := mac.New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDescriptorBits(t *testing.T) {
	d := DescCallSite | DescControlFlow
	d = d.WithArg(0).WithString(2).WithPattern(3).WithFD(4)
	if !d.CallSite() || !d.ControlFlow() {
		t.Error("callsite/controlflow bits lost")
	}
	if !d.ArgConstrained(0) || d.ArgString(0) {
		t.Error("arg0 should be constrained, not string")
	}
	if !d.ArgConstrained(2) || !d.ArgString(2) {
		t.Error("arg2 should be a constrained string")
	}
	if !d.ArgPattern(3) || d.ArgPattern(2) {
		t.Error("pattern bits wrong")
	}
	if !d.ArgFD(4) || d.ArgFD(0) {
		t.Error("fd bits wrong")
	}
	if d.ArgConstrained(1) {
		t.Error("arg1 should be unconstrained")
	}
}

func TestDescriptorBitsDisjoint(t *testing.T) {
	// Every bit position must be distinct.
	var ds []Descriptor
	ds = append(ds, DescCallSite, DescControlFlow)
	for i := 0; i < 5; i++ {
		ds = append(ds, Descriptor(0).WithArg(i))
		ds = append(ds, Descriptor(0).WithString(i)&^Descriptor(0).WithArg(i))
		ds = append(ds, Descriptor(0).WithPattern(i))
		ds = append(ds, Descriptor(0).WithFD(i))
	}
	var acc Descriptor
	for _, d := range ds {
		if acc&d != 0 {
			t.Fatalf("descriptor bit collision: %#x already in %#x", d, acc)
		}
		acc |= d
	}
}

func TestEncodeAS(t *testing.T) {
	k := testKey(t)
	contents := []byte("/dev/console")
	as := EncodeAS(k, contents)
	if len(as) != ASHeaderSize+len(contents) {
		t.Fatalf("AS len = %d", len(as))
	}
	if got := binary.LittleEndian.Uint32(as[0:4]); got != uint32(len(contents)) {
		t.Errorf("AS length field = %d", got)
	}
	if !bytes.Equal(as[ASHeaderSize:], contents) {
		t.Error("AS bytes mismatch")
	}
	var tag mac.Tag
	copy(tag[:], as[4:4+mac.Size])
	if ok, _ := k.Verify(contents, tag); !ok {
		t.Error("AS MAC does not verify")
	}
}

func TestPredSetRoundTrip(t *testing.T) {
	ids := []uint32{7, 0, 42, 3}
	b := EncodePredSet(ids)
	got, err := DecodePredSet(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 3, 7, 42}
	if len(got) != len(want) {
		t.Fatalf("decoded %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("decoded[%d] = %d, want %d (sorted)", i, got[i], want[i])
		}
	}
	for _, id := range want {
		if !PredSetContains(got, id) {
			t.Errorf("PredSetContains(%d) = false", id)
		}
	}
	for _, id := range []uint32{1, 8, 100} {
		if PredSetContains(got, id) {
			t.Errorf("PredSetContains(%d) = true", id)
		}
	}
	if _, err := DecodePredSet([]byte{1, 2, 3}); err == nil {
		t.Error("odd-length pred set accepted")
	}
}

func TestPropertyPredSetContains(t *testing.T) {
	f := func(ids []uint32, probe uint32) bool {
		enc := EncodePredSet(ids)
		dec, err := DecodePredSet(enc)
		if err != nil {
			return false
		}
		want := false
		for _, id := range ids {
			if id == probe {
				want = true
			}
		}
		return PredSetContains(dec, probe) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAuthRecordRoundTrip(t *testing.T) {
	r := AuthRecord{
		Desc:       DescCallSite.WithString(0).WithArg(1) | DescControlFlow,
		BlockID:    1234,
		PredSetPtr: 0x80a1c04,
		LbPtr:      0x810c4ab,
	}
	copy(r.CallMAC[:], bytes.Repeat([]byte{0xaa}, mac.Size))
	b := r.Encode()
	if len(b) != AuthRecordSize {
		t.Fatalf("encoded size %d", len(b))
	}
	got, err := DecodeAuthRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Desc != r.Desc || got.BlockID != r.BlockID || got.PredSetPtr != r.PredSetPtr ||
		got.LbPtr != r.LbPtr || got.CallMAC != r.CallMAC {
		t.Errorf("round trip: %+v != %+v", got, r)
	}
	if _, err := DecodeAuthRecord(b[:10]); err == nil {
		t.Error("short record accepted")
	}
}

func TestAuthRecordPatternExtension(t *testing.T) {
	r := AuthRecord{
		Desc:        (DescCallSite | DescControlFlow).WithPattern(0).WithPattern(2),
		BlockID:     9,
		PredSetPtr:  0x5000,
		LbPtr:       0x5100,
		PatternPtrs: []uint32{0x6000, 0x6100},
	}
	if r.Desc.NumPatterns() != 2 {
		t.Fatalf("NumPatterns = %d", r.Desc.NumPatterns())
	}
	b := r.Encode()
	if len(b) != AuthRecordSize+8 {
		t.Fatalf("encoded size %d", len(b))
	}
	got, err := DecodeAuthRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PatternPtrs) != 2 || got.PatternPtrs[0] != 0x6000 || got.PatternPtrs[1] != 0x6100 {
		t.Errorf("pattern ptrs = %v", got.PatternPtrs)
	}
	// Truncated extension rejected.
	if _, err := DecodeAuthRecord(b[:AuthRecordSize+2]); err == nil {
		t.Error("truncated pattern extension accepted")
	}
}

func TestCallEncodingSensitivity(t *testing.T) {
	k := testKey(t)
	base := CallEncoding{
		Num:     0x5c,
		Site:    0x806c57b,
		Desc:    DescCallSite.WithArg(1) | DescControlFlow,
		BlockID: 1234,
		Args:    []EncodedArg{{Index: 1, Value: 2}},
		PredSet: &ASView{Addr: 0x81adcde, Len: 0x12},
		LbPtr:   0x810c4ab,
	}
	tag0, _ := base.Sum(k)

	mutate := []func(*CallEncoding){
		func(e *CallEncoding) { e.Num++ },
		func(e *CallEncoding) { e.Site++ },
		func(e *CallEncoding) { e.Desc ^= DescControlFlow },
		func(e *CallEncoding) { e.BlockID++ },
		func(e *CallEncoding) { e.Args[0].Value++ },
		func(e *CallEncoding) { e.PredSet.Addr++ },
		func(e *CallEncoding) { e.PredSet.Len++ },
		func(e *CallEncoding) { e.PredSet.MAC[3] ^= 1 },
		func(e *CallEncoding) { e.LbPtr++ },
	}
	for i, m := range mutate {
		e := base
		e.Args = append([]EncodedArg(nil), base.Args...)
		ps := *base.PredSet
		e.PredSet = &ps
		m(&e)
		tag, _ := e.Sum(k)
		if tag.Equal(tag0) {
			t.Errorf("mutation %d did not change the call MAC", i)
		}
	}
}

func TestCallEncodingStringArg(t *testing.T) {
	k := testKey(t)
	var strMAC mac.Tag
	copy(strMAC[:], bytes.Repeat([]byte{5}, mac.Size))
	e := CallEncoding{
		Num:  4,
		Site: 0x1000,
		Desc: DescCallSite.WithString(0),
		Args: []EncodedArg{{Index: 0, IsString: true, Value: 0x3000, Len: 12, MAC: strMAC}},
	}
	b := e.Bytes()
	// 2 + 4 + 4 + 4 + (4+4+16) + 4 = 42 bytes.
	if len(b) != 42 {
		t.Errorf("encoding length = %d, want 42", len(b))
	}
	tag1, _ := e.Sum(k)
	e.Args[0].Len = 13
	tag2, _ := e.Sum(k)
	if tag1.Equal(tag2) {
		t.Error("AS length not covered by call MAC")
	}
}

func TestStateMAC(t *testing.T) {
	k := testKey(t)
	t1, _ := StateMAC(k, 10, 1)
	t2, _ := StateMAC(k, 10, 2)
	t3, _ := StateMAC(k, 11, 1)
	t1b, _ := StateMAC(k, 10, 1)
	if t1.Equal(t2) {
		t.Error("counter not covered (replay possible)")
	}
	if t1.Equal(t3) {
		t.Error("lastBlock not covered")
	}
	if !t1.Equal(t1b) {
		t.Error("StateMAC not deterministic")
	}
}

func TestSitePolicyDescriptorAndString(t *testing.T) {
	sp := &SitePolicy{
		Num:     0x5c,
		Name:    "fcntl",
		Site:    0x806c57b,
		BlockID: 1234,
		Args: []ArgPolicy{
			{Class: ClassUnknown},
			{Class: ClassImmediate, Values: []uint32{2}},
			{Class: ClassString, Str: "/tmp/x"},
		},
		Preds: []uint32{1235, 2010, 3012},
	}
	d := sp.Descriptor()
	if !d.CallSite() || !d.ControlFlow() {
		t.Error("descriptor missing base bits")
	}
	if d.ArgConstrained(0) {
		t.Error("unknown arg constrained")
	}
	if !d.ArgConstrained(1) || d.ArgString(1) {
		t.Error("immediate arg bits wrong")
	}
	if !d.ArgString(2) {
		t.Error("string arg bits wrong")
	}
	s := sp.String()
	for _, want := range []string{"Permit fcntl", "basic block 1234", "Parameter 1 equals 2", "Parameter 0 equals ANY", "predecessors"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("policy string missing %q:\n%s", want, s)
		}
	}
}

func TestProgramPolicyDistinct(t *testing.T) {
	pp := &ProgramPolicy{
		Program: "bison",
		Sites: []*SitePolicy{
			{Num: 4, Name: "open"},
			{Num: 2, Name: "read"},
			{Num: 4, Name: "open"},
			{Num: 1, Name: "exit"},
		},
	}
	nums := pp.DistinctSyscalls()
	if len(nums) != 3 || nums[0] != 1 || nums[1] != 2 || nums[2] != 4 {
		t.Errorf("DistinctSyscalls = %v", nums)
	}
	names := pp.DistinctNames()
	if len(names) != 3 || names[0] != "exit" {
		t.Errorf("DistinctNames = %v", names)
	}
}
