// socket.go implements the socket system call family. With a Network
// attached (kernel.WithNetwork) the calls move real bytes through the
// in-memory loopback network under the same authenticated-call
// verification as every other trap: destination ports cross the
// boundary by value (internal/net.SockAddr), so a constant port is a
// MAC-constrained immediate, and constant payloads are covered by
// authenticated-string checks. Without a Network the family keeps its
// historical validate-and-succeed stub behaviour.
//
// Determinism: every handler charges the same fixed cost (plus exact
// per-byte costs) whether or not the call parked on the network, so a
// process's cycle count never depends on scheduling interleavings.
package kernel

import (
	"encoding/binary"
	"errors"

	anet "asc/internal/net"
	"asc/internal/sys"
)

// SetGate hands the process the scheduler's run-slot semaphore; socket
// calls that park release it so a runnable sibling can use the worker
// (sched.Pool.RunGated installs it). Without a gate, socket calls never
// block: they fail with EAGAIN instead.
func (p *Process) SetGate(g anet.Gate) { p.gate = g }

// ReleaseNet closes every network endpoint the process still holds.
// Drivers call it once the process is done (exit, kill, or driver
// error) so peers blocked on a dead process's sockets wake up with end
// of stream or ECONNRESET instead of hanging the fleet.
func (k *Kernel) ReleaseNet(p *Process) {
	if k.Net == nil {
		return
	}
	for _, e := range p.fds {
		if e == nil || e.kind != fdSocket || e.sock == nil {
			continue
		}
		if e.sock.conn != nil {
			e.sock.conn.Close()
		}
		if e.sock.lis != nil {
			e.sock.lis.Close()
		}
	}
}

// parkPoint synchronizes the group-commit queue before an operation
// that may park the process and hand its run slot to a sibling: guest
// memory must be current at every scheduling boundary, exactly as it is
// at checkpoint time. The drain is on the guest clock — materializing a
// burst is work the process's own calls queued up — and runs whether or
// not the call actually parks, keeping cycle counts independent of
// scheduling interleavings.
func (k *Kernel) parkPoint(p *Process) {
	if k.batchN > 1 {
		k.drainCommit(p)
	}
}

// gateFor picks the gate a potentially-blocking operation on s parks
// on: the process's scheduler gate normally, nil when the socket is in
// nonblocking mode — a nil gate never parks, so would-block operations
// fail with ErrWouldBlock and surface as EAGAIN. This is the entire
// O_NONBLOCK mechanism; the network layer needs no mode of its own.
func (p *Process) gateFor(s *socket) anet.Gate {
	if s.nonblock {
		return nil
	}
	return p.gate
}

// sockEntry validates a socket descriptor: EBADF for a bad fd,
// ENOTSOCK for a descriptor of another kind.
func (p *Process) sockEntry(fd uint32) (*fdEntry, uint32) {
	e := p.fd(fd)
	if e == nil {
		return nil, errno(sys.EBADF)
	}
	if e.kind != fdSocket || e.sock == nil {
		return nil, errno(sys.ENOTSOCK)
	}
	return e, 0
}

// netErrno maps internal/net sentinel errors onto errno returns.
func netErrno(err error) uint32 {
	switch {
	case errors.Is(err, anet.ErrInUse):
		return errno(sys.EADDRINUSE)
	case errors.Is(err, anet.ErrRefused):
		return errno(sys.ECONNREFUSED)
	case errors.Is(err, anet.ErrReset):
		return errno(sys.ECONNRESET)
	case errors.Is(err, anet.ErrNotConn):
		return errno(sys.ENOTCONN)
	case errors.Is(err, anet.ErrIsConn):
		return errno(sys.EISCONN)
	case errors.Is(err, anet.ErrMsgSize):
		return errno(sys.EMSGSIZE)
	case errors.Is(err, anet.ErrWouldBlock):
		return errno(sys.EAGAIN)
	case errors.Is(err, anet.ErrClosed):
		return errno(sys.EBADF)
	default:
		return errno(sys.EINVAL)
	}
}

// putAddr writes a packed by-value socket address to guest memory (the
// StructOut of accept/recvfrom/getsockname/getpeername). addr==0 means
// the caller declined the result.
func putAddr(p *Process, addr uint32, packed uint32) uint32 {
	if addr == 0 {
		return 0
	}
	var out [4]byte
	binary.LittleEndian.PutUint32(out[:], packed)
	if err := p.Mem.UserWrite(addr, out[:]); err != nil {
		return errno(sys.EFAULT)
	}
	return 0
}

func (k *Kernel) sysSocket(p *Process, domain, typ, proto uint32) uint32 {
	fd, ok := p.allocFD(&fdEntry{kind: fdSocket, sock: &socket{domain: domain, typ: typ, proto: proto}})
	if !ok {
		return errno(sys.ENFILE)
	}
	return uint32(fd)
}

func (k *Kernel) sockCheck(p *Process, fd uint32) uint32 {
	_, rc := p.sockEntry(fd)
	return rc
}

func (k *Kernel) sysBind(p *Process, fd, addr uint32) uint32 {
	e, rc := p.sockEntry(fd)
	if rc != 0 {
		return rc
	}
	if k.Net == nil {
		return 0
	}
	a, ok := anet.DecodeAddr(addr)
	if !ok {
		return errno(sys.EINVAL)
	}
	s := e.sock
	if s.conn != nil {
		return errno(sys.EISCONN)
	}
	if s.bound {
		return errno(sys.EINVAL)
	}
	s.bound = true
	s.port = a.Port
	return 0
}

func (k *Kernel) sysListen(p *Process, fd, backlog uint32) uint32 {
	e, rc := p.sockEntry(fd)
	if rc != 0 {
		return rc
	}
	if k.Net == nil {
		return 0
	}
	s := e.sock
	if s.conn != nil {
		return errno(sys.EISCONN)
	}
	if s.lis != nil {
		return 0
	}
	if !s.bound {
		return errno(sys.EINVAL)
	}
	l, err := k.Net.Listen(s.port, int(int32(backlog)))
	if err != nil {
		return netErrno(err)
	}
	s.lis = l
	return 0
}

func (k *Kernel) sysConnect(p *Process, fd, addr uint32) uint32 {
	e, rc := p.sockEntry(fd)
	if rc != 0 {
		return rc
	}
	if k.Net == nil {
		return 0
	}
	s := e.sock
	if s.conn != nil {
		return errno(sys.EISCONN)
	}
	if s.lis != nil {
		return errno(sys.EINVAL)
	}
	a, ok := anet.DecodeAddr(addr)
	if !ok {
		return errno(sys.EINVAL)
	}
	k.parkPoint(p)
	c, err := k.Net.Dial(a.Port, p.gateFor(s))
	if err != nil {
		return netErrno(err)
	}
	s.conn = c
	return 0
}

func (k *Kernel) sysAccept(p *Process, fd, addrOut uint32) uint32 {
	e, rc := p.sockEntry(fd)
	if rc != 0 {
		return rc
	}
	if k.Net == nil {
		// Legacy stub: hand out a fresh unconnected socket.
		nfd, ok := p.allocFD(&fdEntry{kind: fdSocket, sock: &socket{}})
		if !ok {
			return errno(sys.ENFILE)
		}
		return uint32(nfd)
	}
	s := e.sock
	if s.lis == nil {
		return errno(sys.EINVAL)
	}
	k.parkPoint(p)
	c, err := s.lis.Accept(p.gateFor(s))
	if err != nil {
		return netErrno(err)
	}
	nfd, ok := p.allocFD(&fdEntry{kind: fdSocket, sock: &socket{
		domain: s.domain, typ: s.typ, proto: s.proto,
		bound: true, port: c.LocalPort(), conn: c,
	}})
	if !ok {
		c.Close()
		return errno(sys.ENFILE)
	}
	if rc := putAddr(p, addrOut, anet.EncodeAddr(c.RemotePort())); rc != 0 {
		return rc
	}
	return uint32(nfd)
}

func (k *Kernel) sysSendto(p *Process, fd, buf, n, addr uint32) uint32 {
	e, rc := p.sockEntry(fd)
	if rc != 0 {
		return rc
	}
	if k.Net == nil {
		// Legacy stub: capture the payload on the socket.
		b, err := p.Mem.KernelRead(buf, n)
		if err != nil {
			return errno(sys.EFAULT)
		}
		e.sock.sent = append(e.sock.sent, append([]byte(nil), b...))
		p.CPU.Cycles += uint64(n) * k.Costs.WritePerByte / 1000
		return n
	}
	s := e.sock
	if s.conn == nil {
		return errno(sys.ENOTCONN)
	}
	if n > anet.MaxMessage {
		return errno(sys.EMSGSIZE)
	}
	b, err := p.Mem.KernelRead(buf, n)
	if err != nil {
		return errno(sys.EFAULT)
	}
	k.parkPoint(p)
	if err := s.conn.Send(b, p.gateFor(s)); err != nil {
		if errors.Is(err, anet.ErrReset) {
			return errno(sys.EPIPE)
		}
		return netErrno(err)
	}
	p.CPU.Cycles += uint64(n) * k.Costs.WritePerByte / 1000
	return n
}

func (k *Kernel) sysRecvfrom(p *Process, fd, buf, n, srcOut uint32) uint32 {
	e, rc := p.sockEntry(fd)
	if rc != 0 {
		return rc
	}
	if k.Net == nil {
		// Legacy stub: a valid socket has no data; 0 means end of stream.
		return 0
	}
	s := e.sock
	if s.conn == nil {
		return errno(sys.ENOTCONN)
	}
	k.parkPoint(p)
	msg, err := s.conn.Recv(p.gateFor(s))
	if err != nil {
		return netErrno(err)
	}
	if msg == nil {
		return 0 // end of stream
	}
	got := len(msg)
	if uint32(got) > n {
		got = int(n) // excess bytes of the framed message are dropped
	}
	if got > 0 {
		if err := p.Mem.UserWrite(buf, msg[:got]); err != nil {
			return errno(sys.EFAULT)
		}
	}
	if rc := putAddr(p, srcOut, anet.EncodeAddr(s.conn.RemotePort())); rc != 0 {
		return rc
	}
	p.CPU.Cycles += uint64(got) * k.Costs.ReadPerByte / 1000
	return uint32(got)
}

func (k *Kernel) sysShutdown(p *Process, fd uint32) uint32 {
	e, rc := p.sockEntry(fd)
	if rc != 0 {
		return rc
	}
	if k.Net == nil {
		return 0
	}
	s := e.sock
	switch {
	case s.conn != nil:
		s.conn.Close()
	case s.lis != nil:
		s.lis.Close()
	default:
		return errno(sys.ENOTCONN)
	}
	return 0
}

// sysSockname serves getsockname (peer=false) and getpeername
// (peer=true), writing the packed by-value address.
func (k *Kernel) sysSockname(p *Process, fd, addrOut uint32, peer bool) uint32 {
	e, rc := p.sockEntry(fd)
	if rc != 0 {
		return rc
	}
	if k.Net == nil {
		return 0
	}
	s := e.sock
	var port uint16
	switch {
	case peer && s.conn != nil:
		port = s.conn.RemotePort()
	case peer:
		return errno(sys.ENOTCONN)
	case s.conn != nil:
		port = s.conn.LocalPort()
	default:
		port = s.port
	}
	return putAddr(p, addrOut, anet.EncodeAddr(port))
}

func (k *Kernel) sysSocketpair(p *Process, buf uint32) uint32 {
	ea := &fdEntry{kind: fdSocket, sock: &socket{}}
	eb := &fdEntry{kind: fdSocket, sock: &socket{}}
	if k.Net != nil {
		ea.sock.conn, eb.sock.conn = k.Net.Pair()
	}
	a, ok1 := p.allocFD(ea)
	b, ok2 := p.allocFD(eb)
	if !ok1 || !ok2 {
		return errno(sys.ENFILE)
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint32(out[0:], uint32(a))
	binary.LittleEndian.PutUint32(out[4:], uint32(b))
	if err := p.Mem.UserWrite(buf, out); err != nil {
		return errno(sys.EFAULT)
	}
	return 0
}

// pollEntryFor resolves one guest fd to a readiness entry. Unknown fds
// are Invalid (POLLNVAL); non-socket descriptors (files, pipes, the
// console) never block in this kernel and are Static always-ready;
// unconnected sockets resolve to no object and are never ready.
func (p *Process) pollEntryFor(fd uint32, wantIn, wantOut bool) anet.PollEntry {
	pe := anet.PollEntry{WantIn: wantIn, WantOut: wantOut}
	e := p.fd(fd)
	switch {
	case e == nil:
		pe.Invalid = true
	case e.kind != fdSocket || e.sock == nil:
		pe.Static = true
	case e.sock.lis != nil:
		pe.Lis = e.sock.lis
	case e.sock.conn != nil:
		pe.Conn = e.sock.conn
	}
	return pe
}

// sysPoll implements poll(2) over the guest pollfd record set (see
// internal/net: 8 bytes per entry, fd word + events|revents word). A
// zero timeout polls once; any nonzero timeout blocks until some entry
// is ready — elapsed time is not modeled, so finite timeouts never
// expire. The set pointer is a MOVI constant in every workload, making
// it a MAC-constrained immediate: a tampered pointer is a call-MAC
// mismatch, not a misdirected readiness scan.
func (k *Kernel) sysPoll(p *Process, fdsAddr, nfds, timeout uint32) uint32 {
	if nfds > anet.MaxPollFDs {
		return errno(sys.EINVAL)
	}
	p.CPU.Cycles += uint64(nfds) * k.Costs.PollPerFD
	if nfds == 0 {
		return 0
	}
	raw, err := p.Mem.KernelRead(fdsAddr, nfds*anet.PollFDSize)
	if err != nil {
		return errno(sys.EFAULT)
	}
	set, err := anet.DecodePollSet(raw)
	if err != nil {
		return errno(sys.EINVAL)
	}
	if k.Net == nil {
		return 0 // legacy stub: nothing is ever ready
	}
	entries := make([]anet.PollEntry, len(set))
	for i, f := range set {
		entries[i] = p.pollEntryFor(f.FD, f.Events&anet.POLLIN != 0, f.Events&anet.POLLOUT != 0)
	}
	k.parkPoint(p)
	ready := k.Net.Poll(entries, timeout != 0, p.gate)
	for i := range set {
		set[i].REvents = 0
		if entries[i].Invalid {
			set[i].REvents |= anet.POLLNVAL
		}
		if entries[i].In {
			set[i].REvents |= anet.POLLIN
		}
		if entries[i].Out {
			set[i].REvents |= anet.POLLOUT
		}
	}
	if err := p.Mem.UserWrite(fdsAddr, anet.EncodePollSet(set)); err != nil {
		return errno(sys.EFAULT)
	}
	return uint32(ready)
}

// selectMaxFDs bounds the select bitmap width (words = selectMaxFDs/32).
const selectMaxFDs = 1024

// readFDSet loads a select bitmap (little-endian 32-bit words) from
// guest memory; a zero address is an absent set.
func (p *Process) readFDSet(addr, words uint32) ([]uint32, uint32) {
	if addr == 0 {
		return nil, 0
	}
	raw, err := p.Mem.KernelRead(addr, words*4)
	if err != nil {
		return nil, errno(sys.EFAULT)
	}
	set := make([]uint32, words)
	for i := range set {
		set[i] = binary.LittleEndian.Uint32(raw[i*4:])
	}
	return set, 0
}

// sysSelect implements a minimal select(2): read/write fd bitmaps,
// except set ignored (always cleared), a nil timeout pointer blocks and
// a non-nil one polls once. Ready fds stay set in the written-back
// bitmaps; the return value counts set bits across both maps.
func (k *Kernel) sysSelect(p *Process, nfds, rAddr, wAddr, eAddr, tAddr uint32) uint32 {
	if nfds > selectMaxFDs {
		return errno(sys.EINVAL)
	}
	p.CPU.Cycles += uint64(nfds) * k.Costs.PollPerFD
	if nfds == 0 {
		return 0
	}
	words := (nfds + 31) / 32
	rSet, rc := p.readFDSet(rAddr, words)
	if rc != 0 {
		return rc
	}
	wSet, rc := p.readFDSet(wAddr, words)
	if rc != 0 {
		return rc
	}
	if k.Net == nil {
		return 0 // legacy stub: nothing is ever ready
	}
	type slot struct {
		fd       uint32
		entryIdx int
	}
	var entries []anet.PollEntry
	var slots []slot
	for fd := uint32(0); fd < nfds; fd++ {
		wantIn := rSet != nil && rSet[fd/32]&(1<<(fd%32)) != 0
		wantOut := wSet != nil && wSet[fd/32]&(1<<(fd%32)) != 0
		if !wantIn && !wantOut {
			continue
		}
		pe := p.pollEntryFor(fd, wantIn, wantOut)
		if pe.Invalid {
			return errno(sys.EBADF) // select reports bad fds as EBADF
		}
		slots = append(slots, slot{fd: fd, entryIdx: len(entries)})
		entries = append(entries, pe)
	}
	if len(entries) > 0 {
		k.parkPoint(p)
		k.Net.Poll(entries, tAddr == 0, p.gate)
	}
	ready := uint32(0)
	for i := range rSet {
		rSet[i] = 0
	}
	for i := range wSet {
		wSet[i] = 0
	}
	for _, s := range slots {
		e := &entries[s.entryIdx]
		if e.In {
			rSet[s.fd/32] |= 1 << (s.fd % 32)
			ready++
		}
		if e.Out {
			wSet[s.fd/32] |= 1 << (s.fd % 32)
			ready++
		}
	}
	for _, out := range []struct {
		addr uint32
		set  []uint32
	}{{rAddr, rSet}, {wAddr, wSet}} {
		if out.addr == 0 {
			continue
		}
		raw := make([]byte, len(out.set)*4)
		for i, w := range out.set {
			binary.LittleEndian.PutUint32(raw[i*4:], w)
		}
		if err := p.Mem.UserWrite(out.addr, raw); err != nil {
			return errno(sys.EFAULT)
		}
	}
	if eAddr != 0 {
		k.writeZeros(p, eAddr, words*4)
	}
	return ready
}
