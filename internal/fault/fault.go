// Package fault is the deterministic fault-injection engine for the
// authenticated-system-call platform. An Engine perturbs one well-defined
// point of the simulated machine — a bit in an auth record, an
// authenticated string, the control-flow policy state, a verify-cache
// generation counter; a dropped or duplicated memory-checker nonce
// update; a torn multi-word state store — and the campaign driver checks
// that the kernel detects exactly the faults that land inside the
// MAC-protected surface.
//
// Every decision an Engine makes (which eligible trap to fire at, which
// bit or byte to perturb) is precomputed from its seed at construction,
// so a campaign run is a pure function of (seed, victim, class): the same
// seed yields byte-identical outcomes with the verify cache on or off and
// in Kill or Deny enforcement.
//
// Bit flips are applied with application-visible stores (vm.UserWrite),
// modeling the paper's attacker — a compromised application scribbling on
// its own protected metadata — and keeping the PR-1 verify cache honest:
// the flip bumps the store-generation counters exactly as a real
// application store would.
package fault

import (
	"encoding/binary"
	"fmt"

	"asc/internal/isa"
	"asc/internal/kernel"
	"asc/internal/policy"
	"asc/internal/sys"
)

// Class is one fault-injection class.
type Class string

// The fault classes of the campaign.
const (
	// FlipRecord flips one bit of the 32-byte fixed auth record.
	FlipRecord Class = "flip-auth-record"
	// FlipString flips one bit of an authenticated string argument
	// (header or contents) at a string-constrained site.
	FlipString Class = "flip-auth-string"
	// FlipCFState flips one bit of the {lastBlock, lbMAC} policy state.
	FlipCFState Class = "flip-cf-state"
	// FlipDescriptor flips one meaningful policy-descriptor bit.
	FlipDescriptor Class = "flip-descriptor"
	// FlipCacheGen flips one bit of a verify-cache store-generation
	// counter: monitor-internal metadata outside the MAC boundary. The
	// kernel must survive it cleanly (at worst a spurious cache miss).
	FlipCacheGen Class = "flip-cache-gen"
	// DropNonce drops one in-kernel memory-checker nonce update.
	DropNonce Class = "drop-nonce"
	// DupNonce applies one nonce update twice.
	DupNonce Class = "dup-nonce"
	// TornStore tears the 16-byte state-MAC store, leaving a prefix.
	TornStore Class = "torn-state-store"
	// FlipSockPort flips one bit of the packed destination-address
	// register at a socket-send site. The address is a constrained
	// immediate in the call encoding, so redirecting traffic to a
	// different port must surface as a call-MAC mismatch.
	FlipSockPort Class = "net-flip-port"
	// FlipSockMsg flips one bit of the authenticated payload bytes at a
	// socket-send site (content only, not the AS header): a tampered
	// fixed protocol message must fail the string check.
	FlipSockMsg Class = "net-flip-msg"
	// ReplaySockCF snapshots the {lastBlock, lbMAC} policy state at a
	// blocking-capable socket receive and restores it at the next trap:
	// a replayed control-flow state must fail the memory checker, whose
	// in-kernel counter advanced in between.
	ReplaySockCF Class = "net-replay-cf"
	// FlipPollFD flips one bit of the pollfd-set pointer register at a
	// poll site. The pointer is a MOVI-loaded constant — a
	// policy-constrained immediate in the call encoding — so steering
	// the event loop at a different pollfd array must surface as a
	// call-MAC mismatch.
	FlipPollFD Class = "poll-flip-fds"
	// ReplayPollCF snapshots the {lastBlock, lbMAC} policy state at a
	// blocking-capable poll and restores it at the next trap: stale
	// readiness state replayed into the event loop must fail the memory
	// checker at the following call.
	ReplayPollCF Class = "poll-replay-cf"
	// SwapFlip flips one bit of a sealed swap frame on its way to the
	// swap device: a bit rot (or scribble) on swapped-out memory must
	// fail the frame's CMAC when the page faults back in.
	SwapFlip Class = "swap-page-flip"
	// SwapReplay captures a sealed swap frame and substitutes it at the
	// next eviction of the same page: a stale-but-genuinely-sealed frame
	// must fail the generation comparison at fault-in.
	SwapReplay Class = "swap-page-replay"
)

// Classes returns every fault class in canonical order.
func Classes() []Class {
	return []Class{
		FlipRecord, FlipString, FlipCFState, FlipDescriptor,
		FlipCacheGen, DropNonce, DupNonce, TornStore,
		FlipSockPort, FlipSockMsg, ReplaySockCF,
		FlipPollFD, ReplayPollCF,
		SwapFlip, SwapReplay,
	}
}

// Expect describes the contract a fault class has with the kernel.
type Expect struct {
	// Detected: the fault lands inside the MAC-protected surface and
	// the kernel must flag it (kill in Kill mode, deny + record in Deny
	// mode) whenever the engine fired.
	Detected bool
	// Deferred: detection happens at a trap after the injection point
	// (nonce and torn-store faults surface at the next control-flow
	// check).
	Deferred bool
	// Reasons is the set of kill reasons the detection may carry.
	Reasons []kernel.KillReason
}

// Expectation returns the contract for a class.
func Expectation(c Class) Expect {
	switch c {
	case FlipRecord, FlipDescriptor:
		// A record or descriptor flip can surface as a record that no
		// longer decodes, a call MAC that no longer matches, or — when
		// the flip redirects a string/pattern bit — a failed argument
		// check against garbage metadata.
		return Expect{Detected: true, Reasons: []kernel.KillReason{
			kernel.KillBadRecord, kernel.KillBadCallMAC,
			kernel.KillBadString, kernel.KillBadPattern,
			kernel.KillBadCapability, kernel.KillBadState,
		}}
	case FlipString:
		// The flip window covers the string bytes AND the AS header; the
		// header's length and MAC fields are bound into the call encoding,
		// so a header flip surfaces as a call-MAC mismatch (or a malformed
		// record when the corrupted length makes the read fail) rather
		// than a string-MAC mismatch. All three are detections.
		return Expect{Detected: true, Reasons: []kernel.KillReason{
			kernel.KillBadString, kernel.KillBadCallMAC, kernel.KillBadRecord,
		}}
	case FlipCFState:
		return Expect{Detected: true, Reasons: []kernel.KillReason{kernel.KillBadState}}
	case FlipCacheGen:
		return Expect{Detected: false}
	case DropNonce, DupNonce, TornStore:
		return Expect{Detected: true, Deferred: true,
			Reasons: []kernel.KillReason{kernel.KillBadState}}
	case FlipSockPort:
		return Expect{Detected: true, Reasons: []kernel.KillReason{kernel.KillBadCallMAC}}
	case FlipSockMsg:
		return Expect{Detected: true, Reasons: []kernel.KillReason{kernel.KillBadString}}
	case ReplaySockCF:
		return Expect{Detected: true, Deferred: true,
			Reasons: []kernel.KillReason{kernel.KillBadState}}
	case FlipPollFD:
		return Expect{Detected: true, Reasons: []kernel.KillReason{kernel.KillBadCallMAC}}
	case ReplayPollCF:
		return Expect{Detected: true, Deferred: true,
			Reasons: []kernel.KillReason{kernel.KillBadState}}
	case SwapFlip:
		// Detection happens at the later fault-in that re-verifies the
		// frame, not at the eviction that tampered it.
		return Expect{Detected: true, Deferred: true,
			Reasons: []kernel.KillReason{kernel.KillSwapSeal}}
	case SwapReplay:
		return Expect{Detected: true, Deferred: true,
			Reasons: []kernel.KillReason{kernel.KillSwapReplay}}
	}
	return Expect{}
}

// ReasonAllowed reports whether reason is in the class's allowed set.
func (e Expect) ReasonAllowed(reason kernel.KillReason) bool {
	for _, r := range e.Reasons {
		if r == reason {
			return true
		}
	}
	return false
}

// Engine injects exactly one fault of one class into one process run. It
// implements kernel.Injector; for TornStore it is also installed as the
// address space's vm.WriteFaulter.
type Engine struct {
	class Class

	// Decisions, fixed at construction.
	trigger int    // fire at the trigger-th eligible trap (0-based)
	pick    uint64 // selects among applicable targets (bit, arg, segment)

	seen  int
	fired bool

	// armed* carry state between BeforeVerify and the deferred hooks.
	armedNonce  bool
	armedTorn   bool
	tornAddr    uint32
	tornKeep    int
	armedReplay bool
	replayPtr   uint32
	replayState []byte
	armedSwap   bool
	swapPage    uint32
	swapBlob    []byte

	// FiredNum and FiredSite record the trap at which the fault was
	// injected (valid once Fired() is true).
	FiredNum  uint16
	FiredSite uint32
}

// triggerWindow bounds how deep into the eligible-trap sequence a fault
// may fire. Victims make a handful of calls; a window of 3 keeps every
// draw inside the shortest victim's eligible run while still varying the
// injection point across trials.
const triggerWindow = 3

// NewEngine builds an engine whose decisions are a pure function of
// (class, seed).
func NewEngine(class Class, seed uint64) *Engine {
	s := seed ^ uint64(len(class))<<56
	for _, b := range []byte(class) {
		s = s*1099511628211 + uint64(b) // FNV-style fold of the class
	}
	r1 := splitmix(&s)
	r2 := splitmix(&s)
	return &Engine{
		class:   class,
		trigger: int(r1 % triggerWindow),
		pick:    r2,
	}
}

// splitmix is SplitMix64: a tiny, well-mixed deterministic generator.
func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Class returns the engine's fault class.
func (e *Engine) Class() Class { return e.class }

// Fired reports whether the fault has been injected.
func (e *Engine) Fired() bool { return e.fired }

// BeforeVerify implements kernel.Injector: it observes every
// authenticated trap before verification and perturbs the platform at
// the chosen one.
func (e *Engine) BeforeVerify(p *kernel.Process, num uint16, site uint32, recAddr uint32) {
	if e.armedReplay && !e.fired {
		// The replay arms at the socket receive; the stale state is
		// written back here, just before the next trap's Step-3 check.
		// FiredNum/FiredSite keep the injection (arm) point.
		_ = p.Mem.UserWrite(e.replayPtr, e.replayState)
		e.armedReplay = false
		e.fired = true
		return
	}
	if e.fired || e.armedNonce || e.armedTorn {
		return
	}
	rec, recOK := readRecord(p, recAddr)

	switch e.class {
	case FlipRecord:
		if !e.step() {
			return
		}
		e.flipUserBit(p, recAddr, policy.AuthRecordSize)
	case FlipDescriptor:
		if !e.step() {
			return
		}
		descWord, err := p.Mem.KernelLoad32(recAddr)
		if err != nil {
			return
		}
		descWord ^= 1 << (e.pick % policy.NumDescriptorBits)
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], descWord)
		_ = p.Mem.UserWrite(recAddr, b[:])
		e.fire(num, site)
	case FlipString:
		if !recOK {
			return
		}
		var strArgs []int
		for i := 0; i < 5; i++ {
			if rec.Desc.ArgString(i) {
				strArgs = append(strArgs, i)
			}
		}
		if len(strArgs) == 0 {
			return // site has no authenticated string: not eligible
		}
		if !e.step() {
			return
		}
		arg := strArgs[e.pick%uint64(len(strArgs))]
		ptr := p.CPU.Regs[isa.R1+isa.Reg(arg)]
		length, err := p.Mem.KernelLoad32(ptr - policy.ASHeaderSize)
		if err != nil || length > policy.MaxASLen {
			return
		}
		e.flipUserBit(p, ptr-policy.ASHeaderSize, int(policy.ASHeaderSize+length))
	case FlipCFState:
		if !recOK || !rec.Desc.ControlFlow() {
			return
		}
		if !e.step() {
			return
		}
		e.flipUserBit(p, rec.LbPtr, policy.PolicyStateSize)
	case FlipCacheGen:
		if !e.step() {
			return
		}
		segs := p.Mem.NumSegments()
		if segs == 0 {
			return
		}
		p.Mem.FlipGenerationBit(int(e.pick%uint64(segs)), uint((e.pick>>32)%64))
		e.fire(num, site)
	case DropNonce, DupNonce:
		if !recOK || !rec.Desc.ControlFlow() {
			return
		}
		if !e.step() {
			return
		}
		e.armedNonce = true
	case FlipSockPort:
		if num != sys.SysSendto {
			return // only send sites carry a packed destination address
		}
		if !e.step() {
			return
		}
		// The address argument (index 4) lives in R5; the flip is a
		// register perturbation — the application computing a different
		// destination — so there is no memory store to generation-track.
		// Both the cold path and a cache hit rebuild the call encoding
		// from live registers, which is exactly what must catch this.
		p.CPU.Regs[isa.R5] ^= 1 << (e.pick % 32)
		e.fire(num, site)
	case FlipSockMsg:
		if num != sys.SysSendto || !recOK || !rec.Desc.ArgString(1) {
			return // payload is not an authenticated string: not eligible
		}
		if !e.step() {
			return
		}
		ptr := p.CPU.Regs[isa.R2]
		length, err := p.Mem.KernelLoad32(ptr - policy.ASHeaderSize)
		if err != nil || length > policy.MaxASLen {
			return
		}
		// Content bytes only — header flips are FlipString territory —
		// so the detection reason is pinned to the string check.
		e.flipUserBit(p, ptr, int(length))
	case FlipPollFD:
		if num != sys.SysPoll {
			return // only poll sites carry a pollfd-set pointer
		}
		if !e.step() {
			return
		}
		// The pollfd-set address (arg 0) lives in R1 as a MOVI-loaded
		// constant; like FlipSockPort this is a register perturbation —
		// the event loop handing the kernel a different array — so there
		// is no memory store to generation-track, and both the cold path
		// and a cache hit must catch it when rebuilding the call encoding
		// from live registers.
		p.CPU.Regs[isa.R1] ^= 1 << (e.pick % 32)
		e.fire(num, site)
	case ReplayPollCF:
		if num != sys.SysPoll || !recOK || !rec.Desc.ControlFlow() {
			return
		}
		if !e.step() {
			return
		}
		b, err := p.Mem.KernelRead(rec.LbPtr, policy.PolicyStateSize)
		if err != nil {
			return
		}
		e.armedReplay = true
		e.replayPtr = rec.LbPtr
		e.replayState = append([]byte(nil), b...)
		e.FiredNum, e.FiredSite = num, site
	case ReplaySockCF:
		if num != sys.SysRecvfrom || !recOK || !rec.Desc.ControlFlow() {
			return
		}
		if !e.step() {
			return
		}
		b, err := p.Mem.KernelRead(rec.LbPtr, policy.PolicyStateSize)
		if err != nil {
			return
		}
		e.armedReplay = true
		e.replayPtr = rec.LbPtr
		e.replayState = append([]byte(nil), b...)
		e.FiredNum, e.FiredSite = num, site
	case TornStore:
		if !recOK || !rec.Desc.ControlFlow() {
			return
		}
		if !e.step() {
			return
		}
		// Tear the state-MAC store of this trap's Step-3 update,
		// keeping a strict prefix of the 16 MAC bytes.
		e.armedTorn = true
		e.tornAddr = rec.LbPtr + 4
		e.tornKeep = int(e.pick % 16)
		e.FiredNum, e.FiredSite = num, site
	}
}

// step counts an eligible trap; true means this is the chosen one.
func (e *Engine) step() bool {
	e.seen++
	return e.seen-1 == e.trigger
}

// fire marks the fault injected at the given trap.
func (e *Engine) fire(num uint16, site uint32) {
	e.fired = true
	e.FiredNum, e.FiredSite = num, site
}

// flipUserBit flips one pick-selected bit inside [addr, addr+n) with an
// application-visible store.
func (e *Engine) flipUserBit(p *kernel.Process, addr uint32, n int) {
	if n <= 0 {
		return
	}
	bit := e.pick % uint64(n*8)
	target := addr + uint32(bit/8)
	old, err := p.Mem.KernelRead(target, 1)
	if err != nil {
		return
	}
	if err := p.Mem.UserWrite(target, []byte{old[0] ^ 1<<(bit%8)}); err != nil {
		return
	}
	e.fire(uint16(p.CPU.Regs[isa.R0]), p.CPU.PC)
}

// NonceUpdate implements kernel.Injector: the in-kernel counter advances
// by the returned amount (1 is a faithful update).
func (e *Engine) NonceUpdate(p *kernel.Process) int {
	if !e.armedNonce || e.fired {
		return 1
	}
	e.fired = true
	e.armedNonce = false
	if e.class == DropNonce {
		return 0
	}
	return 2
}

// swapFaultNum mirrors the kernel's pseudo syscall number for
// violations on the page-fault path; there is no trap in flight when a
// swap fault is injected, so FiredNum carries this marker and FiredSite
// the page index.
const swapFaultNum uint16 = 0xffff

// SwapEvict implements kernel.SwapInjector: it observes every sealed
// frame on its way to the swap device and perturbs the chosen one. The
// trigger counts evictions, not traps — swap classes never fire from
// BeforeVerify.
func (e *Engine) SwapEvict(p *kernel.Process, page uint32, gen uint64, blob []byte) []byte {
	if e.fired {
		return nil
	}
	switch e.class {
	case SwapFlip:
		if !e.step() {
			return nil
		}
		mut := append([]byte(nil), blob...)
		bit := e.pick % uint64(len(mut)*8)
		mut[bit/8] ^= 1 << (bit % 8)
		e.fire(swapFaultNum, page)
		return mut
	case SwapReplay:
		if !e.armedSwap {
			if e.step() {
				// Capture the frame; the stale copy substitutes at the
				// next eviction of the same page, whose generation will
				// have advanced past the captured one.
				e.armedSwap = true
				e.swapPage = page
				e.swapBlob = append([]byte(nil), blob...)
			}
			return nil
		}
		if page != e.swapPage {
			return nil
		}
		e.fire(swapFaultNum, page)
		return e.swapBlob
	}
	return nil
}

// TornWrite implements vm.WriteFaulter: the armed state-MAC store is
// truncated to the chosen prefix; every other write is untouched.
func (e *Engine) TornWrite(addr uint32, n int) int {
	if !e.armedTorn || e.fired || addr != e.tornAddr {
		return n
	}
	e.fired = true
	e.armedTorn = false
	return e.tornKeep
}

// readRecord decodes the fixed auth record at recAddr.
func readRecord(p *kernel.Process, recAddr uint32) (policy.AuthRecord, bool) {
	b, err := p.Mem.KernelRead(recAddr, policy.AuthRecordSize)
	if err != nil {
		return policy.AuthRecord{}, false
	}
	rec, err := policy.DecodeAuthRecord(b)
	if err != nil {
		return policy.AuthRecord{}, false
	}
	return rec, true
}

// String renders the engine's identity for reports.
func (e *Engine) String() string {
	return fmt.Sprintf("%s(trigger=%d)", e.class, e.trigger)
}
