// smp.go measures the SMP scheduler: a homogeneous fleet of verified
// micro-workload processes driven across 1/2/4/8 workers, reporting
// scaling efficiency per workload. The table behind BENCH_smp.json.
package bench

import (
	"fmt"

	"asc/internal/kernel"
	"asc/internal/sched"
)

// SMPWorkers is the worker sweep measured for BENCH_smp.json.
var SMPWorkers = []int{1, 2, 4, 8}

// SMPPoint is one (workload, worker-count) measurement.
type SMPPoint struct {
	Workers int
	// MakespanCycles is the modeled fleet completion time: per-process
	// cycle counts assigned round-robin to lanes, busiest lane's total
	// (sched.Makespan). Per-process counts are deterministic, so this
	// figure is byte-stable run to run — unlike wall clock.
	MakespanCycles uint64
	// Speedup is serial makespan over this makespan.
	Speedup float64
	// EfficiencyPct is Speedup/Workers × 100.
	EfficiencyPct float64
	// VerifiedPerMCycle is fleet-wide verified calls per million
	// makespan cycles — the verified-throughput figure.
	VerifiedPerMCycle float64
}

// SMPRow is one workload's scaling sweep.
type SMPRow struct {
	Call          string
	CyclesPerProc uint64 // deterministic per-process cycle count
	CallsPerProc  uint64 // verified calls per process
	Points        []SMPPoint
}

// SMPData is the full SMP scaling table.
type SMPData struct {
	Procs int
	Iters int
	Rows  []SMPRow
}

// SMP runs each Table-4 micro workload as a fleet of procs identical
// verified (uncached) processes, once per worker count in SMPWorkers,
// and reports modeled makespan, speedup, and verified throughput. All
// fleets really execute concurrently on the sched pool — that is what
// the -race gate exercises — but the reported cycles come from the
// deterministic per-process counts, which SMP cross-checks across
// worker counts: any divergence is an error, since per-process results
// must not depend on scheduling.
func SMP(key []byte, procs, iters int) (*SMPData, error) {
	if procs < 1 {
		procs = 8
	}
	if iters < 2 {
		iters = 200
	}
	out := &SMPData{Procs: procs, Iters: iters}
	for _, call := range []string{"getpid", "gettimeofday", "read(4096)", "write(4096)", "brk"} {
		name := fmt.Sprintf("smp-%s", call)
		_, auth, err := buildPair(name, microSource(call, iters), key)
		if err != nil {
			return nil, err
		}
		row := SMPRow{Call: call}
		var serial uint64
		for _, w := range SMPWorkers {
			k, err := newBenchKernel(key, kernel.Enforce)
			if err != nil {
				return nil, err
			}
			jobs := make([]sched.Job, procs)
			for i := range jobs {
				p, err := k.Spawn(auth, fmt.Sprintf("%s#%d", name, i))
				if err != nil {
					return nil, err
				}
				jobs[i] = sched.Job{Kern: k, Proc: p, MaxCycles: 4_000_000_000}
			}
			pool := sched.Pool{Workers: w}
			for i, r := range pool.Run(jobs) {
				if r.Err != nil {
					return nil, fmt.Errorf("bench: smp %s w=%d proc %d: %w", call, w, i, r.Err)
				}
				if jobs[i].Proc.Killed {
					return nil, fmt.Errorf("bench: smp %s w=%d proc %d killed: %s", call, w, i, jobs[i].Proc.KilledBy)
				}
			}
			cycles := make([]uint64, procs)
			var verified uint64
			for i, j := range jobs {
				cycles[i] = j.Proc.CPU.Cycles
				verified += j.Proc.VerifyCount
				// Determinism contract: per-process counts must not
				// depend on worker count or interleaving.
				if cycles[i] != cycles[0] {
					return nil, fmt.Errorf("bench: smp %s w=%d: proc %d cycles %d != proc 0 cycles %d",
						call, w, i, cycles[i], cycles[0])
				}
			}
			if row.CyclesPerProc == 0 {
				row.CyclesPerProc = cycles[0]
				row.CallsPerProc = jobs[0].Proc.VerifyCount
			} else if cycles[0] != row.CyclesPerProc {
				return nil, fmt.Errorf("bench: smp %s: cycles diverged across worker counts: %d != %d",
					call, cycles[0], row.CyclesPerProc)
			}
			mk := sched.Makespan(cycles, w)
			if serial == 0 {
				serial = sched.Makespan(cycles, 1)
			}
			speedup := float64(serial) / float64(mk)
			row.Points = append(row.Points, SMPPoint{
				Workers:           w,
				MakespanCycles:    mk,
				Speedup:           speedup,
				EfficiencyPct:     100 * speedup / float64(w),
				VerifiedPerMCycle: 1e6 * float64(verified) / float64(mk),
			})
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the scaling table.
func (t *SMPData) Render() string {
	header := []string{"Workload", "Cycles/proc", "Calls/proc"}
	for _, w := range SMPWorkers {
		header = append(header, fmt.Sprintf("w=%d speedup (eff %%)", w))
	}
	var rows [][]string
	for _, r := range t.Rows {
		row := []string{
			r.Call,
			fmt.Sprintf("%d", r.CyclesPerProc),
			fmt.Sprintf("%d", r.CallsPerProc),
		}
		for _, p := range r.Points {
			row = append(row, fmt.Sprintf("%.2fx (%.0f)", p.Speedup, p.EfficiencyPct))
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("SMP scaling: %d verified processes per fleet, modeled makespan", t.Procs)
	return renderTable(title, header, rows)
}
