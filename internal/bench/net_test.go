package bench

import "testing"

// TestNetSweep runs the full network sweep at a reduced iteration count
// and checks its structural invariants: every client count present,
// enforcement strictly more expensive than permissive, the cache
// strictly cheaper than uncached enforcement, and verified traffic on
// every row. Determinism across worker counts is cross-checked inside
// Net itself.
func TestNetSweep(t *testing.T) {
	data, err := Net(DefaultKey, 2)
	if err != nil {
		t.Fatalf("Net: %v", err)
	}
	if len(data.Rows) != len(NetClients) {
		t.Fatalf("rows = %d, want %d", len(data.Rows), len(NetClients))
	}
	for i, r := range data.Rows {
		if r.Clients != NetClients[i] {
			t.Errorf("row %d clients = %d, want %d", i, r.Clients, NetClients[i])
		}
		if r.CyclesOn <= r.CyclesOff {
			t.Errorf("clients=%d: enforcement not more expensive: on=%d off=%d", r.Clients, r.CyclesOn, r.CyclesOff)
		}
		if r.CyclesCached >= r.CyclesOn {
			t.Errorf("clients=%d: cache did not help: cached=%d on=%d", r.Clients, r.CyclesCached, r.CyclesOn)
		}
		if r.Verified == 0 {
			t.Errorf("clients=%d: no verified calls", r.Clients)
		}
		if len(r.Points) != len(NetWorkers) {
			t.Errorf("clients=%d: points = %d, want %d", r.Clients, len(r.Points), len(NetWorkers))
		}
	}
	// Client-count scaling: fleet work grows with the client count.
	for i := 1; i < len(data.Rows); i++ {
		if data.Rows[i].CyclesOn <= data.Rows[i-1].CyclesOn {
			t.Errorf("no scaling: clients=%d cycles %d <= clients=%d cycles %d",
				data.Rows[i].Clients, data.Rows[i].CyclesOn,
				data.Rows[i-1].Clients, data.Rows[i-1].CyclesOn)
		}
	}
}
