// ckpt.go measures crash recovery under sealed checkpoints: a
// deterministic loop workload is forced to overrun a cycle budget
// (modeling a runaway), and the supervisor warm-restarts it from the
// newest sealed checkpoint. Sweeping the checkpoint cadence shows the
// trade the operator tunes: frequent checkpoints cost seal work but
// bound the replay after a failure, sparse ones do the reverse. The
// table behind BENCH_ckpt.json.
package bench

import (
	"fmt"

	"asc/internal/core"
	"asc/internal/libc"
	"asc/internal/workload"
)

// CkptDivisors is the cadence sweep: one recovery run per divisor n,
// sealing a checkpoint every budget/n cycles.
var CkptDivisors = []int{2, 4, 8, 16}

// ckptLoopSource is the sweep's victim: a getpid loop with the
// iteration count fixed in the source, so the clean cycle count — and
// with it every figure in the table — is deterministic.
const ckptLoopSource = `
        .text
        .global main
main:
        MOVI r12, %d
.loop:
        CALL getpid
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "done"
`

// CkptPoint is one cadence's recovery measurement.
type CkptPoint struct {
	// Divisor n selects the cadence: a checkpoint every budget/n cycles.
	Divisor     int
	EveryCycles uint64
	// Checkpoints sealed across the whole supervised run.
	Checkpoints int
	// WarmRestarts resumed from a verified checkpoint; ColdStarts fell
	// through to a fresh spawn (always 0 here — the chain is untampered).
	WarmRestarts int
	ColdStarts   int
	Attempts     int
	// ReplayCycles re-executed work between the restore point and the
	// failure; ReplayPct expresses it against the clean run.
	ReplayCycles uint64
	ReplayPct    float64
	Recovered    bool
}

// CkptData is the full crash-recovery sweep.
type CkptData struct {
	Iters int
	// CleanCycles is the uninterrupted run's cost; BudgetCycles is the
	// per-attempt cap (4/5 of clean, so every first attempt overruns).
	CleanCycles  uint64
	BudgetCycles uint64
	Points       []CkptPoint
}

// Ckpt runs the crash-recovery sweep: for each cadence divisor the loop
// workload runs under core.Supervise with a budget below its clean cost,
// overruns, and must recover warm from sealed checkpoints. Any failure
// to recover, cold start, or checkpoint rejection is an error — the
// chain is untampered, so integrity machinery must be invisible here.
func Ckpt(key []byte, iters int) (*CkptData, error) {
	if iters < 2 {
		iters = 400
	}
	sys, err := core.NewSystem(core.Config{Key: key})
	if err != nil {
		return nil, err
	}
	raw, err := workload.BuildSource("ckpt-loop", fmt.Sprintf(ckptLoopSource, iters), libc.Linux)
	if err != nil {
		return nil, err
	}
	exe, _, _, err := sys.Install(raw, "ckpt-loop")
	if err != nil {
		return nil, err
	}
	ref, err := sys.Exec(exe, "ckpt-loop", "")
	if err != nil {
		return nil, err
	}
	if ref.Killed || ref.ExitCode != 0 {
		return nil, fmt.Errorf("bench: ckpt clean run failed: %+v", ref)
	}
	out := &CkptData{
		Iters:        iters,
		CleanCycles:  ref.Cycles,
		BudgetCycles: ref.Cycles * 4 / 5,
	}
	for _, div := range CkptDivisors {
		every := out.BudgetCycles / uint64(div)
		stats, err := sys.Supervise(exe, "ckpt-loop", "", core.SuperviseConfig{
			MaxRestarts:     8,
			BackoffBase:     100,
			MaxCycles:       out.BudgetCycles,
			CheckpointEvery: every,
		})
		if err != nil {
			return nil, err
		}
		recovered := !stats.GaveUp && stats.Final != nil && !stats.Final.Killed && stats.Final.ExitCode == 0
		if !recovered {
			return nil, fmt.Errorf("bench: ckpt budget/%d did not recover: %+v", div, stats)
		}
		if len(stats.CkptRejected) != 0 || stats.ColdStarts != 0 {
			return nil, fmt.Errorf("bench: ckpt budget/%d rejected an untampered chain: rejected=%v cold=%d",
				div, stats.CkptRejected, stats.ColdStarts)
		}
		out.Points = append(out.Points, CkptPoint{
			Divisor:      div,
			EveryCycles:  every,
			Checkpoints:  stats.Checkpoints,
			WarmRestarts: stats.WarmRestarts,
			ColdStarts:   stats.ColdStarts,
			Attempts:     stats.Attempts,
			ReplayCycles: stats.ReplayCycles,
			ReplayPct:    100 * float64(stats.ReplayCycles) / float64(ref.Cycles),
			Recovered:    recovered,
		})
	}
	return out, nil
}

// Render prints the crash-recovery table.
func (t *CkptData) Render() string {
	header := []string{"Cadence", "Every (cycles)", "Checkpoints", "Warm restarts", "Attempts", "Replayed cycles", "Replay %"}
	var rows [][]string
	for _, p := range t.Points {
		rows = append(rows, []string{
			fmt.Sprintf("budget/%d", p.Divisor),
			fmt.Sprintf("%d", p.EveryCycles),
			fmt.Sprintf("%d", p.Checkpoints),
			fmt.Sprintf("%d", p.WarmRestarts),
			fmt.Sprintf("%d", p.Attempts),
			fmt.Sprintf("%d", p.ReplayCycles),
			fmt.Sprintf("%.1f", p.ReplayPct),
		})
	}
	title := fmt.Sprintf("Crash recovery: clean run %d cycles, budget %d (forced runaway), warm restart from sealed checkpoints",
		t.CleanCycles, t.BudgetCycles)
	return renderTable(title, header, rows)
}
