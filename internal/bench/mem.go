// mem.go measures the paged virtual memory subsystem: a working-set
// sweep over the demand-paged mmap arena, crossed with the resident-page
// budget, in three kernel configurations — authentication off (plain
// swap frames), enforced (every evicted frame sealed with a per-page
// CMAC and re-verified at fault-in), and enforced with the verify cache
// and group commit. When the working set fits the budget the pager is
// idle and all three arms converge; when it exceeds the budget the
// sweep thrashes through the authenticated swap device and the sealing
// cost surfaces. The table behind BENCH_mem.json.
package bench

import (
	"fmt"

	"asc/internal/kernel"
)

// MemBudgets is the resident-page budget sweep.
var MemBudgets = []int{16, 32, 64}

// MemWorkingSets is the working-set sweep, in pages. The largest cell
// runs a working set 8x the smallest budget, so the sweep always
// includes deep-thrash cells (the interesting regime: every access
// beyond the budget is a verified swap-in).
var MemWorkingSets = []int{8, 32, 128}

// MemSweeps is how many times the workload walks its working set.
const MemSweeps = 4

// memSweepSource is the sweep workload: mmap a working set of anonymous
// pages read-write, walk it MemSweeps times (one store + one load per
// page), and unmap. Iteration counts are fixed in the source, so every
// cycle count in the table is deterministic.
const memSweepSource = `
        .text
        .global main
main:
        MOVI r1, 0
        MOVI r2, %d             ; working set, bytes
        MOVI r3, 3              ; PROT_READ|PROT_WRITE
        MOVI r4, 0x22           ; MAP_PRIVATE|MAP_ANONYMOUS
        MOVI r5, 0
        CALL mmap
        MOV r8, r0
        MOVI r9, 0
        BLT r8, r9, .done
        MOVI r12, %d            ; sweeps
.sweep:
        MOV r10, r8             ; cursor
        MOVI r11, %d            ; pages per sweep
.page:
        STORE [r10+0], r12
        LOAD r9, [r10+8]
        ADDI r10, r10, 4096
        ADDI r11, r11, -1
        MOVI r9, 0
        BNE r11, r9, .page
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .sweep
        MOV r1, r8
        MOVI r2, %d
        CALL munmap
.done:
        MOVI r0, 0
        RET
`

// MemPoint is one (budget, working set) cell of the sweep.
type MemPoint struct {
	// BudgetPages is the resident-page budget; WSPages the working set.
	BudgetPages int
	WSPages     int
	// CyclesOff/On/Cached are the run costs with authentication off,
	// enforced, and enforced with the verify cache + group commit.
	CyclesOff    uint64
	CyclesOn     uint64
	CyclesCached uint64
	// OverheadPct and CachedOverheadPct express On and Cached against Off.
	OverheadPct       float64
	CachedOverheadPct float64
	// Paging counters from the enforced arm (identical across arms: the
	// access pattern, not the MAC work, drives the pager).
	Faults  uint64
	Evicts  uint64
	Swapins uint64
}

// MemData is the full working-set sweep.
type MemData struct {
	Sweeps int
	Points []MemPoint
}

// Mem runs the paged-memory sweep. Every arm runs on a paged kernel —
// the axis under study is the authentication of the swap device, not
// paging itself — and the off arm's nil MAC key makes its swap frames
// plain (zero tag, no AES), exactly the unauthenticated baseline.
func Mem(key []byte) (*MemData, error) {
	out := &MemData{Sweeps: MemSweeps}
	for _, ws := range MemWorkingSets {
		src := fmt.Sprintf(memSweepSource, ws*4096, MemSweeps, ws, ws*4096)
		name := fmt.Sprintf("mem-%dp", ws)
		orig, auth, err := buildPair(name, src, key)
		if err != nil {
			return nil, err
		}
		for _, budget := range MemBudgets {
			pt := MemPoint{BudgetPages: budget, WSPages: ws}
			paged := kernel.WithPagedMemory(budget)

			kOff, err := newBenchKernel(key, kernel.Permissive, paged)
			if err != nil {
				return nil, err
			}
			pOff, err := runOnce(kOff, orig, name, "")
			if err != nil {
				return nil, err
			}
			pt.CyclesOff = pOff.CPU.Cycles

			kOn, err := newBenchKernel(key, kernel.Enforce, paged)
			if err != nil {
				return nil, err
			}
			pOn, err := runOnce(kOn, auth, name, "")
			if err != nil {
				return nil, err
			}
			pt.CyclesOn = pOn.CPU.Cycles
			pt.Faults, pt.Evicts, pt.Swapins = pOn.PageStats()

			kCached, err := newBenchKernel(key, kernel.Enforce, paged,
				kernel.WithVerifyCache(), kernel.WithBatchVerify(BatchDepth))
			if err != nil {
				return nil, err
			}
			pCached, err := runOnce(kCached, auth, name, "")
			if err != nil {
				return nil, err
			}
			pt.CyclesCached = pCached.CPU.Cycles

			// Sanity: the pager's decisions may not depend on the MAC
			// configuration — identical fault/evict behavior everywhere.
			of, oe, oi := pOff.PageStats()
			if of != pt.Faults || oe != pt.Evicts || oi != pt.Swapins {
				return nil, fmt.Errorf("bench: mem ws=%d budget=%d: paging diverged across arms: off %d/%d/%d, on %d/%d/%d",
					ws, budget, of, oe, oi, pt.Faults, pt.Evicts, pt.Swapins)
			}
			if ws <= budget && pt.Evicts != 0 {
				return nil, fmt.Errorf("bench: mem ws=%d budget=%d: %d evictions with the working set resident",
					ws, budget, pt.Evicts)
			}
			if ws > budget && pt.Evicts == 0 {
				return nil, fmt.Errorf("bench: mem ws=%d budget=%d: no evictions with the working set over budget",
					ws, budget)
			}

			pt.OverheadPct = pct(pt.CyclesOff, pt.CyclesOn)
			pt.CachedOverheadPct = pct(pt.CyclesOff, pt.CyclesCached)
			out.Points = append(out.Points, pt)
		}
	}
	return out, nil
}

// Render prints the working-set sweep table.
func (t *MemData) Render() string {
	header := []string{"WS (pages)", "Budget", "Faults", "Evicts", "Swap-ins",
		"Off (cycles)", "Enforced", "Cached", "Overhead %", "Cached %"}
	var rows [][]string
	for _, p := range t.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.WSPages),
			fmt.Sprintf("%d", p.BudgetPages),
			fmt.Sprintf("%d", p.Faults),
			fmt.Sprintf("%d", p.Evicts),
			fmt.Sprintf("%d", p.Swapins),
			fmt.Sprintf("%d", p.CyclesOff),
			fmt.Sprintf("%d", p.CyclesOn),
			fmt.Sprintf("%d", p.CyclesCached),
			fmt.Sprintf("%.1f", p.OverheadPct),
			fmt.Sprintf("%.1f", p.CachedOverheadPct),
		})
	}
	title := fmt.Sprintf("Verified paging: %d-sweep working-set walk vs resident budget (authenticated swap device)", t.Sweeps)
	return renderTable(title, header, rows)
}
