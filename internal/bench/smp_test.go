package bench

import (
	"fmt"
	"testing"

	"asc/internal/kernel"
	"asc/internal/sched"
)

// TestSMPScaling is the acceptance gate for the SMP sweep: on the
// getpid-loop workload the modeled verified-throughput at 4 workers
// must be at least 3× the 1-worker figure, and per-process cycle
// counts must be identical at every worker count (the determinism
// contract).
func TestSMPScaling(t *testing.T) {
	data, err := SMP(DefaultKey, 8, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range data.Rows {
		byWorkers := map[int]SMPPoint{}
		for _, p := range row.Points {
			byWorkers[p.Workers] = p
		}
		p1, ok1 := byWorkers[1]
		p4, ok4 := byWorkers[4]
		if !ok1 || !ok4 {
			t.Fatalf("%s: sweep missing w=1 or w=4: %+v", row.Call, row.Points)
		}
		if ratio := p4.VerifiedPerMCycle / p1.VerifiedPerMCycle; ratio < 3 {
			t.Errorf("%s: verified throughput at 4 workers only %.2fx the serial figure, want >= 3x",
				row.Call, ratio)
		}
		if p4.Speedup < 3 {
			t.Errorf("%s: speedup at 4 workers %.2f, want >= 3", row.Call, p4.Speedup)
		}
	}
}

// smpFleet spawns n copies of the getpid micro loop on one enforcing
// kernel and returns the jobs.
func smpFleet(tb testing.TB, n, iters int) []sched.Job {
	tb.Helper()
	name := "tput-getpid"
	_, auth, err := buildPair(name, microSource("getpid", iters), DefaultKey)
	if err != nil {
		tb.Fatal(err)
	}
	k, err := newBenchKernel(DefaultKey, kernel.Enforce)
	if err != nil {
		tb.Fatal(err)
	}
	jobs := make([]sched.Job, n)
	for i := range jobs {
		p, err := k.Spawn(auth, name)
		if err != nil {
			tb.Fatal(err)
		}
		jobs[i] = sched.Job{Kern: k, Proc: p, MaxCycles: 4_000_000_000}
	}
	return jobs
}

// BenchmarkThroughputParallel drives a fleet of 8 verified getpid-loop
// processes at 1/2/4/8 workers. Wall-clock op time depends on host
// core count; the stable figure is the reported verified-calls/mcycle
// metric, computed from the deterministic modeled makespan (speedup is
// exactly the worker count for this homogeneous fleet).
func BenchmarkThroughputParallel(b *testing.B) {
	for _, w := range SMPWorkers {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			var calls, makespan uint64
			for i := 0; i < b.N; i++ {
				jobs := smpFleet(b, 8, 200)
				pool := sched.Pool{Workers: w}
				b.ResetTimer() // exclude build/install/spawn
				for j, r := range pool.Run(jobs) {
					if r.Err != nil || jobs[j].Proc.Killed {
						b.Fatalf("proc %d: err=%v killed=%v", j, r.Err, jobs[j].Proc.Killed)
					}
				}
				b.StopTimer()
				cycles := make([]uint64, len(jobs))
				calls, makespan = 0, 0
				for j := range jobs {
					cycles[j] = jobs[j].Proc.CPU.Cycles
					calls += jobs[j].Proc.VerifyCount
				}
				makespan = sched.Makespan(cycles, w)
				b.StartTimer()
			}
			b.ReportMetric(1e6*float64(calls)/float64(makespan), "verified-calls/mcycle")
		})
	}
}
