// migrate.go is the Director's planned-migration path: export a running
// process from its home node, stream the sealed envelope over the
// fabric in bounded chunks, and commit the import on the destination
// through a two-phase handshake (stage: the destination verifies the
// envelope; commit: the fence has admitted the epoch and the kernel
// rebuilds the process through the full Restore pipeline).
//
// The inner checkpoint is persisted to the process's durable store
// *before* the first byte crosses the fabric, and the source is fenced
// at export. Those two facts make every torn outcome safe: whatever
// dies mid-handshake, the newest epoch is durable and its previous
// owner has already given it up, so ordinary failover re-places the
// process warm with zero lost authenticated state.
package cluster

import (
	"encoding/binary"
	"fmt"

	"asc/internal/ckpt"
	"asc/internal/durable"
	"asc/internal/kernel"
)

// MigrateOpts parameterizes fault injection on a migration. The zero
// value is a clean migration.
type MigrateOpts struct {
	// Divert delivers the envelope to this node instead of the one it
	// is sealed for — the node-spoof experiment. Zero means no divert.
	Divert NodeID
	// Truncate cuts the envelope to this many bytes before transfer
	// (torn write in flight). Zero means intact.
	Truncate int
	// TornAfter, when ≥ 0, abandons the transfer after that many
	// payload chunks (the handshake never completes). -1 disables.
	TornAfter int
	// CrashSrc/CrashDst crash that side at the torn point.
	CrashSrc bool
	CrashDst bool
	// Capture, when non-nil, receives a copy of the sealed envelope —
	// the replay experiment's ammunition.
	Capture *[]byte
	// CrashDirector kills the *director* after the checkpoint is
	// durable, the WAL records the export, and the source is fenced —
	// but before the first byte crosses the fabric. The worst-case
	// control-plane crash window: only a standby replaying the WAL can
	// finish the job.
	CrashDirector bool
}

// CleanMigrate is the MigrateOpts zero value with TornAfter disabled.
func CleanMigrate() MigrateOpts { return MigrateOpts{TornAfter: -1} }

// Migrate moves a running process to node dst through the export →
// transfer → stage → admit → commit handshake. The returned reason is
// "" when the process is running on dst; otherwise it is the canonical
// rejection reason ("node-mismatch", "epoch-replay", "truncated", ...)
// or "" with the process left pending re-placement when the transfer
// itself died (torn handshake, crashed peer). err reports misuse, not
// verdicts.
func (d *Director) Migrate(name string, dst NodeID, opts MigrateOpts) (string, error) {
	pl := d.byName[name]
	if pl == nil {
		return "", fmt.Errorf("cluster: migrate: unknown process %q", name)
	}
	if pl.done || pl.pending || pl.proc == nil {
		return "", fmt.Errorf("cluster: migrate %s: not running", name)
	}
	if d.Node(dst) == nil {
		return "", fmt.Errorf("cluster: migrate %s: no node %d", name, dst)
	}
	src := d.nodes[pl.home]
	epoch := pl.store.NewestEpoch() + 1
	env, inner, err := src.Sys.Kernel.Export(pl.proc, epoch, uint32(src.ID), uint32(dst))
	if err != nil {
		return "", fmt.Errorf("cluster: export %s: %w", name, err)
	}
	// Durability before transfer: a torn handshake must recover warm.
	if err := pl.store.Put(epoch, inner); err != nil {
		return "", fmt.Errorf("cluster: export %s: %w", name, err)
	}
	pl.rep.Checkpoints++
	pl.rep.Migrations++
	if opts.Capture != nil {
		*opts.Capture = append([]byte(nil), env...)
	}
	// Fence the source: epoch `epoch` must never keep running here.
	// The WAL append lands with the fence, before any byte crosses the
	// fabric — the control-plane half of durability-before-transfer.
	d.walAppend(&durable.Record{Kind: durable.KindExportFence, Name: name,
		Node: uint32(src.ID), Node2: uint32(dst), Epoch: epoch})
	d.fence.ExportFence(name)
	src.disown(name)
	pl.lastCyc = pl.proc.CPU.Cycles
	pl.proc = nil
	pl.home = -1
	pl.pending = true
	pl.resumeAt = d.tick + 1
	d.event("%s exporting epoch %d: node %d → %d", name, epoch, src.ID, dst)
	if opts.CrashDirector {
		d.selfCrashed = true
		d.event("director crashed mid-migration of %s", name)
		return "", nil
	}

	target := dst
	if opts.Divert != 0 {
		target = opts.Divert
	}
	blob := env
	if opts.Truncate > 0 && opts.Truncate < len(env) {
		blob = env[:opts.Truncate]
	}
	reason, p, err := d.deliver(blob, target, name, epoch, src, opts)
	if err != nil {
		// Transfer died; pl stays pending and ordinary failover
		// recovers it from the durable store. A torn handshake is a
		// failure the fleet recovered from, so it counts as one.
		pl.failovers++
		pl.rep.Failovers++
		pl.resumeAt = d.tick + d.backoffTicks(pl.failovers)
		d.event("%s migration torn: %v", name, err)
		d.walAppend(&durable.Record{Kind: durable.KindMigTorn, Name: name, Epoch: epoch})
		return "", nil
	}
	if reason != "" {
		pl.reject(reason)
		d.event("%s migration rejected by node %d: %s", name, target, reason)
		return reason, nil
	}
	d.fence.Commit(name, epoch, target)
	d.walAppend(&durable.Record{Kind: durable.KindMigDone, Name: name,
		Node: uint32(target), Epoch: epoch, Cycles: p.CPU.Cycles})
	pl.proc = p
	pl.home = int(target) - 1
	pl.pending = false
	d.nodes[pl.home].own(name, p)
	if d.cfg.CheckpointEvery > 0 {
		pl.nextCkpt = p.CPU.Cycles + uint64(d.cfg.CheckpointEvery)
	}
	d.event("%s migrated to node %d at epoch %d (%d cycles)", name, target, epoch, p.CPU.Cycles)
	return "", nil
}

// Deliver runs the transfer/stage/admit/commit handshake for an
// already-sealed envelope against a chosen node — the attack surface
// for replay (deliver the same captured envelope again) and spoof
// (deliver it to the wrong node) experiments. The returned reason is ""
// only if the destination accepted and imported the state; a non-nil
// error means the transfer itself failed (unreachable node).
//
// A successful Deliver does NOT re-home the Director's placement — the
// legitimate path is Migrate. If a replayed envelope ever gets a ""
// reason here, the fence has failed and the caller should treat it as a
// broken invariant.
func (d *Director) Deliver(env []byte, target NodeID, name string, epoch uint64) (string, error) {
	if d.Node(target) == nil {
		return "", fmt.Errorf("cluster: deliver: no node %d", target)
	}
	reason, _, err := d.deliver(env, target, name, epoch, nil, CleanMigrate())
	return reason, err
}

// deliver streams one envelope to target and runs the handshake.
// Returns the destination's (or the fence's) rejection reason, the
// imported process on success, or an error if the conversation died.
func (d *Director) deliver(env []byte, target NodeID, name string, epoch uint64, src *Node, opts MigrateOpts) (string, *kernel.Process, error) {
	nd := d.Node(target)
	c, err := d.Fabric.Dial(ControlPort(target), nil)
	if err != nil {
		return "", nil, fmt.Errorf("cluster: deliver %s to node %d: %w", name, target, err)
	}
	defer c.Close()

	nchunks := (len(env) + migChunk - 1) / migChunk
	hdr := make([]byte, 0, 20+len(name))
	hdr = append(hdr, msgMigHdr...)
	hdr = binary.LittleEndian.AppendUint64(hdr, epoch)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(env)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(nchunks))
	hdr = append(hdr, name...)
	if err := c.Send(hdr, nil); err != nil {
		return "", nil, err
	}
	nd.serve()
	for i := 0; i < nchunks; i++ {
		if opts.TornAfter >= 0 && i == opts.TornAfter {
			return d.tear(src, target, i, opts)
		}
		lo, hi := i*migChunk, (i+1)*migChunk
		if hi > len(env) {
			hi = len(env)
		}
		if err := c.Send(env[lo:hi], nil); err != nil {
			return "", nil, err
		}
		// Strict alternation keeps the bounded fabric buffers empty.
		nd.serve()
	}
	if opts.TornAfter >= 0 && nchunks <= opts.TornAfter {
		return d.tear(src, target, nchunks, opts)
	}
	reply, err := c.Recv(nil)
	if err != nil || reply == nil {
		return "", nil, fmt.Errorf("cluster: deliver %s: no staging verdict", name)
	}
	if reason, ok := rejection(reply); ok {
		return reason, nil, nil
	}
	if len(reply) < 12 || string(reply[:4]) != msgStaged ||
		binary.LittleEndian.Uint64(reply[4:]) != epoch || string(reply[12:]) != name {
		return "", nil, fmt.Errorf("cluster: deliver %s: bad staging reply", name)
	}
	// The destination verified the envelope; liveness is the fence's
	// call.
	if err := d.fence.Admit(name, epoch, target); err != nil {
		_ = c.Send([]byte(msgAbort), nil)
		nd.serve()
		return ckpt.Reason(err), nil, nil
	}
	if err := c.Send([]byte(msgCommit), nil); err != nil {
		return "", nil, err
	}
	nd.serve()
	reply, err = c.Recv(nil)
	if err != nil || reply == nil {
		return "", nil, fmt.Errorf("cluster: deliver %s: no commit verdict", name)
	}
	if reason, ok := rejection(reply); ok {
		return reason, nil, nil
	}
	if string(reply) != msgDone || nd.adopted == nil {
		return "", nil, fmt.Errorf("cluster: deliver %s: bad commit reply", name)
	}
	p := nd.adopted
	nd.adopted = nil
	return "", p, nil
}

// tear aborts a transfer at the torn point, optionally crashing a side.
func (d *Director) tear(src *Node, target NodeID, chunk int, opts MigrateOpts) (string, *kernel.Process, error) {
	if opts.CrashSrc && src != nil {
		d.CrashNode(src.ID)
	}
	if opts.CrashDst {
		d.CrashNode(target)
	}
	return "", nil, fmt.Errorf("cluster: transfer torn after %d chunks", chunk)
}

// rejection parses a rej0 reply.
func rejection(reply []byte) (string, bool) {
	if len(reply) >= 4 && string(reply[:4]) == msgReject {
		return string(reply[4:]), true
	}
	return "", false
}
