package vm

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/isa"
)

// fakeKernel records traps and exits when syscall number 1 arrives.
type fakeKernel struct {
	traps []trapRec
}

type trapRec struct {
	num   uint32
	arg1  uint32
	site  uint32
	authd bool
}

func (k *fakeKernel) Trap(c *CPU, site uint32, authed bool) (uint32, bool, error) {
	k.traps = append(k.traps, trapRec{c.Regs[isa.R0], c.Regs[isa.R1], site, authed})
	if c.Regs[isa.R0] == 1 { // exit
		return 0, true, nil
	}
	return 42, false, nil
}

// loadProgram assembles src, lays it out, and builds a CPU with a stack.
func loadProgram(t *testing.T, src string) (*CPU, *fakeKernel, *binfmt.File) {
	t.Helper()
	f, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	f.Layout()
	if err := f.ApplyRelocs(); err != nil {
		t.Fatalf("ApplyRelocs: %v", err)
	}
	base, img, err := f.Image()
	if err != nil {
		t.Fatalf("Image: %v", err)
	}
	const memSize = 1 << 20
	mem := NewMemory(binfmt.TextBase, memSize)
	if err := mem.KernelWrite(base, img); err != nil {
		t.Fatalf("load image: %v", err)
	}
	for _, s := range f.Sections {
		if s.Size == 0 {
			continue
		}
		mem.Map(Segment{Name: s.Name, Start: s.Addr, End: s.End(), Perms: s.Flags})
	}
	stackTop := mem.Limit()
	mem.Map(Segment{Name: "stack", Start: stackTop - 64*1024, End: stackTop, Perms: PermRead | PermWrite | PermExec})
	k := &fakeKernel{}
	c := New(mem, k)
	text := f.Section(binfmt.SecText)
	c.PrimeICache(text.Addr, text.End())
	c.PC = f.Entry
	c.Regs[isa.SP] = stackTop
	return c, k, f
}

func TestArithmeticProgram(t *testing.T) {
	// Computes sum 1..10 in r7, then exits via syscall 1 with code in r1.
	c, k, _ := loadProgram(t, `
        .text
        .global _start
_start:
        MOVI r7, 0
        MOVI r3, 1
        MOVI r4, 11
.loop:
        ADD r7, r7, r3
        ADDI r3, r3, 1
        BLT r3, r4, .loop
        MOV r1, r7
        MOVI r0, 1
        SYSCALL
`)
	if err := c.Run(100000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !c.Halted {
		t.Fatal("CPU not halted")
	}
	if len(k.traps) != 1 || k.traps[0].arg1 != 55 {
		t.Errorf("traps = %+v, want exit(55)", k.traps)
	}
}

func TestCallRetAndStack(t *testing.T) {
	c, k, _ := loadProgram(t, `
        .text
        .global _start
_start:
        MOVI r1, 20
        CALL double
        MOV r1, r0
        MOVI r0, 1
        SYSCALL
double:
        PUSH fp
        MOV fp, sp
        ADD r0, r1, r1
        POP fp
        RET
`)
	if err := c.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if k.traps[0].arg1 != 40 {
		t.Errorf("double(20) = %d, want 40", k.traps[0].arg1)
	}
}

func TestMemoryOps(t *testing.T) {
	c, k, _ := loadProgram(t, `
        .text
        .global _start
_start:
        MOVI r2, buf
        MOVI r3, 0x11223344
        STORE [r2+0], r3
        LOAD r4, [r2+0]
        LOADB r5, [r2+1]
        MOV r1, r5
        MOVI r0, 1
        SYSCALL
        .data
buf:    .space 16
`)
	if err := c.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if k.traps[0].arg1 != 0x33 {
		t.Errorf("byte load = %#x, want 0x33 (little endian)", k.traps[0].arg1)
	}
}

func TestWriteToTextFaults(t *testing.T) {
	c, _, f := loadProgram(t, `
        .text
        .global _start
_start:
        MOVI r2, _start
        MOVI r3, 0
        STORE [r2+0], r3
        MOVI r0, 1
        SYSCALL
`)
	err := c.Run(10000)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("Run = %v, want Fault", err)
	}
	if fault.Addr != f.Entry {
		t.Errorf("fault addr = %#x, want %#x", fault.Addr, f.Entry)
	}
	if !strings.Contains(fault.Msg, "write protection") {
		t.Errorf("fault msg = %q", fault.Msg)
	}
}

func TestExecuteDataFaults(t *testing.T) {
	c, _, _ := loadProgram(t, `
        .text
        .global _start
_start:
        MOVI r2, blob
        CALLR r2
        MOVI r0, 1
        SYSCALL
        .data
blob:   .word 0x01010101
`)
	err := c.Run(10000)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("Run = %v, want fetch fault", err)
	}
	if !strings.Contains(fault.Msg, "fetch") {
		t.Errorf("fault msg = %q", fault.Msg)
	}
}

func TestStackIsExecutable(t *testing.T) {
	// Write a tiny routine (MOVI r0,1; SYSCALL) onto the stack and jump
	// to it: this models 2005-era injected shellcode reaching the kernel
	// boundary, where the monitor (not the MMU) must stop it.
	moviOp, _ := isa.OpByName("MOVI")
	syscallOp, _ := isa.OpByName("SYSCALL")
	c, k, _ := loadProgram(t, `
        .text
        .global _start
_start:
        SUBI sp, sp, 16
        ; build "MOVI r0, 1": opcode byte + imm=1
        MOVI r3, 0
        STORE [sp+0], r3
        STORE [sp+4], r3
        STORE [sp+8], r3
        STORE [sp+12], r3
        ; bytes: [op][rd][rs][rt][imm LE]
        MOVI r3, MOVI_OP
        STOREB [sp+0], r3
        MOVI r3, 1
        STOREB [sp+4], r3       ; imm byte 0 = 1
        MOVI r3, SYSCALL_OP
        STOREB [sp+8], r3
        MOV r2, sp
        CALLR r2
        .equ MOVI_OP, `+strconv.Itoa(int(moviOp))+`
        .equ SYSCALL_OP, `+strconv.Itoa(int(syscallOp))+`
`)
	if err := c.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(k.traps) != 1 || k.traps[0].num != 1 {
		t.Fatalf("traps = %+v, want injected exit syscall", k.traps)
	}
	// The trap site is on the stack, not in .text.
	if k.traps[0].site >= binfmt.TextBase && k.traps[0].site < binfmt.TextBase+0x1000 {
		t.Errorf("trap site %#x looks like .text; want stack address", k.traps[0].site)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	c, _, _ := loadProgram(t, `
        .text
        .global _start
_start:
        MOVI r1, 10
        MOVI r2, 0
        DIV r3, r1, r2
        MOVI r0, 1
        SYSCALL
`)
	err := c.Run(10000)
	var fault *Fault
	if !errors.As(err, &fault) || !strings.Contains(fault.Msg, "division") {
		t.Errorf("Run = %v, want division fault", err)
	}
}

func TestCycleAccounting(t *testing.T) {
	c, _, _ := loadProgram(t, `
        .text
        .global _start
_start:
        MOVI r1, 1      ; 1 cycle
        ADD r2, r1, r1  ; 1
        PUSH r2         ; 3
        POP r3          ; 3
        JMP .next       ; 2
.next:
        MOVI r0, 1      ; 1
        SYSCALL
`)
	if err := c.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Cycles != 11 {
		t.Errorf("cycles = %d, want 11", c.Cycles)
	}
}

func TestCycleLimit(t *testing.T) {
	c, _, _ := loadProgram(t, `
        .text
        .global _start
_start:
        JMP _start
`)
	err := c.Run(100)
	if !errors.Is(err, ErrCycleLimit) {
		t.Errorf("Run = %v, want ErrCycleLimit", err)
	}
}

func TestAuthenticatedTrapFlag(t *testing.T) {
	// Hand-assemble an ASYSCALL since the assembler supports it directly.
	c, k, _ := loadProgram(t, `
        .text
        .global _start
_start:
        MOVI r0, 5
        ASYSCALL
        MOVI r0, 1
        SYSCALL
`)
	if err := c.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(k.traps) != 2 || !k.traps[0].authd || k.traps[1].authd {
		t.Errorf("traps = %+v; want first authenticated, second not", k.traps)
	}
	// Syscall return value lands in R0... exit trap doesn't return, but
	// the first trap's 42 must have been visible to the second one via R0.
	if k.traps[1].num != 1 {
		t.Errorf("second trap num = %d", k.traps[1].num)
	}
}

func TestKernelMemoryHelpers(t *testing.T) {
	mem := NewMemory(0x1000, 4096)
	if err := mem.KernelWrite(0x1000, []byte("hi\x00there")); err != nil {
		t.Fatal(err)
	}
	s, err := mem.CString(0x1000, 100)
	if err != nil || s != "hi" {
		t.Errorf("CString = %q, %v", s, err)
	}
	if _, err := mem.CString(0x1003, 3); err == nil {
		t.Error("unterminated CString should fail")
	}
	if _, err := mem.CString(0x100, 10); err == nil {
		t.Error("out-of-bounds CString should fail")
	}
	if err := mem.KernelStore32(0x1100, 0xcafebabe); err != nil {
		t.Fatal(err)
	}
	v, err := mem.KernelLoad32(0x1100)
	if err != nil || v != 0xcafebabe {
		t.Errorf("KernelLoad32 = %#x, %v", v, err)
	}
	if _, err := mem.KernelRead(0xfffffffe, 8); err == nil {
		t.Error("wrapping KernelRead should fail")
	}
}
