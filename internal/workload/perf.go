// perf.go synthesizes the Table 5/6 performance suite. Each program is an
// outer loop interleaving a calibrated compute kernel with a fixed system
// call sequence; the compute-to-syscall ratio is set so the authenticated
// overhead lands where Table 6 reports it for the original program
// (CPU-bound SPEC programs around 1-2%, the syscall-bound pyramid near 8%).
package workload

import (
	"fmt"
	"strings"
)

// PerfCall is one system call in a performance program's inner sequence.
type PerfCall struct {
	Name string
	Size uint32 // byte count for read/write-class calls
}

// PerfSpec describes one performance-suite program.
type PerfSpec struct {
	Name  string
	Class string // "CPU", "syscall & CPU", or "syscall"
	Desc  string
	// Iters is the default outer iteration count; benchmarks may scale
	// it down for quick runs.
	Iters int
	// Compute is the number of inner compute-loop iterations per outer
	// iteration (about 4 cycles each).
	Compute int
	// Calls is the per-iteration system call sequence.
	Calls []PerfCall
	// PaperOverhead is the percentage Table 6 reports for the original.
	PaperOverhead float64
}

// PerfSuite returns the nine programs of Table 5 in paper order.
func PerfSuite() []PerfSpec {
	return []PerfSpec{
		{
			Name: "gzip-spec", Class: "CPU",
			Desc:  "file compression program from SPEC INT 2000",
			Iters: 20, Compute: 130000,
			Calls:         []PerfCall{{"pread", 4096}, {"write", 4096}},
			PaperOverhead: 1.41,
		},
		{
			Name: "crafty", Class: "CPU",
			Desc:  "game playing (chess) program from SPEC INT 2000",
			Iters: 20, Compute: 71000,
			Calls:         []PerfCall{{Name: "gettimeofday"}},
			PaperOverhead: 1.40,
		},
		{
			Name: "mcf", Class: "CPU",
			Desc:  "combinatorial optimization program from SPEC INT 2000",
			Iters: 20, Compute: 137000,
			Calls:         []PerfCall{{Name: "brk"}},
			PaperOverhead: 0.73,
		},
		{
			Name: "vpr", Class: "CPU",
			Desc:  "FPGA circuit and routing placement from SPEC INT 2000",
			Iters: 20, Compute: 83000,
			Calls:         []PerfCall{{"write", 1024}},
			PaperOverhead: 1.16,
		},
		{
			Name: "twolf", Class: "CPU",
			Desc:  "place and route simulator from SPEC INT 2000",
			Iters: 20, Compute: 58000,
			Calls:         []PerfCall{{Name: "gettimeofday"}},
			PaperOverhead: 1.70,
		},
		{
			Name: "gcc", Class: "syscall & CPU",
			Desc:  "GNU C compiler from SPEC INT 2000",
			Iters: 10, Compute: 280000,
			Calls:         []PerfCall{{Name: "open"}, {"pread", 4096}, {"write", 4096}, {Name: "close"}},
			PaperOverhead: 1.39,
		},
		{
			Name: "vortex", Class: "syscall & CPU",
			Desc:  "object oriented database from SPEC INT 2000",
			Iters: 10, Compute: 345000,
			Calls:         []PerfCall{{"pread", 4096}, {"pread", 4096}, {"write", 512}},
			PaperOverhead: 0.84,
		},
		{
			Name: "pyramid", Class: "syscall",
			Desc:  "multidimensional database index creation",
			Iters: 200, Compute: 2500,
			Calls:         []PerfCall{{"write", 4096}},
			PaperOverhead: 7.92,
		},
		{
			Name: "gzip", Class: "syscall",
			Desc:  "file compression program",
			Iters: 20, Compute: 176000,
			Calls:         []PerfCall{{"pread", 4096}, {"write", 4096}},
			PaperOverhead: 1.06,
		},
	}
}

// PerfSpecByName returns the named suite member.
func PerfSpecByName(name string) (PerfSpec, bool) {
	for _, s := range PerfSuite() {
		if s.Name == name {
			return s, true
		}
	}
	return PerfSpec{}, false
}

// Source renders the program. iters overrides Iters when positive.
func (s PerfSpec) Source(iters int) string {
	if iters <= 0 {
		iters = s.Iters
	}
	var b strings.Builder
	b.WriteString(`        .text
        .global main
main:
        PUSH fp
        MOV fp, sp
        ; open the input file read-only and the output for writing
        MOVI r1, inpath
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOV r10, r0
        MOVI r1, outpath
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r11, r0
`)
	fmt.Fprintf(&b, "        MOVI r12, %d\n.outer:\n", iters)
	if s.Compute > 0 {
		fmt.Fprintf(&b, `        MOVI r7, %d
        MOVI r9, 0
.comp:
        MUL r8, r7, r7
        ADDI r7, r7, -1
        BNE r7, r9, .comp
`, s.Compute)
	}
	for i, c := range s.Calls {
		b.WriteString(renderPerfCall(c, i))
	}
	b.WriteString(`        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .outer
        POP fp
        MOVI r0, 0
        RET
        .rodata
`)
	fmt.Fprintf(&b, "inpath: .asciz \"/data/%s.in\"\noutpath: .asciz \"/tmp/%s.out\"\n", s.Name, s.Name)
	b.WriteString("        .bss\nbigbuf: .space 4096\n")
	return b.String()
}

func renderPerfCall(c PerfCall, idx int) string {
	switch c.Name {
	case "pread":
		return fmt.Sprintf(`        MOV r1, r10
        MOVI r2, bigbuf
        MOVI r3, %d
        MOVI r4, 0
        CALL pread
`, c.Size)
	case "read":
		return fmt.Sprintf(`        MOV r1, r10
        MOVI r2, bigbuf
        MOVI r3, %d
        CALL read
`, c.Size)
	case "write":
		return fmt.Sprintf(`        MOV r1, r11
        MOVI r2, bigbuf
        MOVI r3, %d
        CALL write
`, c.Size)
	case "open":
		return `        MOVI r1, inpath
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOV r13, r0
`
	case "close":
		return `        MOV r1, r13
        CALL close
`
	case "gettimeofday":
		return `        MOVI r1, bigbuf
        CALL gettimeofday
`
	case "brk":
		return `        MOVI r1, 0
        CALL brk
`
	case "getpid":
		return "        CALL getpid\n"
	case "lseek":
		return `        MOV r1, r11
        MOVI r2, 0
        MOVI r3, 0
        CALL lseek
`
	default:
		return fmt.Sprintf("        CALL %s\n", c.Name)
	}
}
