package net

import (
	"bytes"
	"testing"
)

// FuzzSockAddrDecode checks the by-value address codec invariants: a
// decoded address re-encodes to the same word, and every accepted word
// is exactly an AF_INET family byte plus a 16-bit port with the
// reserved bits clear.
func FuzzSockAddrDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(EncodeAddr(0))
	f.Add(EncodeAddr(80))
	f.Add(EncodeAddr(0xffff))
	f.Add(uint32(0x02010050))
	f.Add(uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, v uint32) {
		a, ok := DecodeAddr(v)
		if !ok {
			if v>>24 == AFInet && v&0x00ff0000 == 0 {
				t.Fatalf("DecodeAddr(%#x) rejected a well-formed address", v)
			}
			return
		}
		if a.Family != AFInet {
			t.Fatalf("DecodeAddr(%#x) family = %d", v, a.Family)
		}
		if got := a.Encode(); got != v {
			t.Fatalf("re-encode %#x -> %#x", v, got)
		}
		if EncodeAddr(a.Port) != v {
			t.Fatalf("EncodeAddr(%d) != %#x", a.Port, v)
		}
	})
}

// FuzzPollSetDecode checks the pollfd guest-record codec: every
// accepted byte string is a whole number of entries within the size
// cap, decodes without panicking, and re-encodes to the same bytes.
func FuzzPollSetDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePollSet([]PollFD{{FD: 3, Events: POLLIN}}))
	f.Add(EncodePollSet([]PollFD{
		{FD: 4, Events: POLLIN | POLLOUT, REvents: POLLNVAL},
		{FD: 0xffffffff, Events: 0xffff, REvents: 0xffff},
	}))
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, (MaxPollFDs+1)*PollFDSize))
	f.Fuzz(func(t *testing.T, b []byte) {
		fds, err := DecodePollSet(b)
		if err != nil {
			if len(b)%PollFDSize == 0 && len(b) <= MaxPollFDs*PollFDSize {
				t.Fatalf("DecodePollSet rejected a well-formed %d-byte set: %v", len(b), err)
			}
			return
		}
		if len(fds) != len(b)/PollFDSize {
			t.Fatalf("decoded %d entries from %d bytes", len(fds), len(b))
		}
		if got := EncodePollSet(fds); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch: %x != %x", got, b)
		}
	})
}
