// supervise.go implements the supervised-restart runner: a process
// killed by the monitor (or denied into a runaway loop) is restarted
// with capped exponential backoff, the way an init system restarts a
// crashed service. Backoff is virtual — measured in machine cycles, not
// wall-clock time — so supervised runs stay deterministic.
package core

import (
	"errors"
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/vm"
)

// SuperviseConfig parameterizes the restart policy.
type SuperviseConfig struct {
	// MaxRestarts bounds how many times the process is restarted after
	// its first attempt (default 3).
	MaxRestarts int
	// BackoffBase is the virtual backoff (cycles) before the first
	// restart; each further restart doubles it (default 1000).
	BackoffBase uint64
	// BackoffCap caps the doubling (default 16 × BackoffBase).
	BackoffCap uint64
	// MaxCycles is the per-attempt execution budget (default 4e9). A
	// budget overrun counts as a restartable failure ("runaway"), which
	// Deny-mode processes can produce when their control-flow chain is
	// unrecoverable.
	MaxCycles uint64
}

// RestartEvent records one supervised restart.
type RestartEvent struct {
	Attempt int    // 1-based attempt that failed
	Cause   string // kill reason, or "runaway"
	Backoff uint64 // virtual cycles waited before the next attempt
}

// SuperviseStats summarizes a supervised run.
type SuperviseStats struct {
	Attempts     int
	Restarts     int
	GaveUp       bool
	TotalBackoff uint64
	Causes       map[string]int
	Events       []RestartEvent
	Final        *Result // the last attempt's result
	FinalCause   string  // cause of the last failed attempt ("" on a clean exit)
}

// Supervise runs a binary under the restart policy. It returns an error
// only for platform failures; monitor kills and runaways are absorbed
// into the stats.
func (s *System) Supervise(exe *binfmt.File, name, stdin string, cfg SuperviseConfig) (*SuperviseStats, error) {
	if cfg.MaxRestarts < 0 {
		cfg.MaxRestarts = 0
	} else if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 1000
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = 16 * cfg.BackoffBase
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 4_000_000_000
	}

	stats := &SuperviseStats{Causes: map[string]int{}}
	backoff := cfg.BackoffBase
	for {
		stats.Attempts++
		res, cause, err := s.execBounded(exe, name, stdin, cfg.MaxCycles)
		if err != nil {
			return stats, err
		}
		stats.Final = res
		if cause == "" {
			// Clean (or at least voluntary) exit: supervision ends.
			if len(stats.Causes) == 0 {
				stats.Causes = nil
			}
			return stats, nil
		}
		stats.Causes[cause]++
		stats.FinalCause = cause
		if stats.Restarts >= cfg.MaxRestarts {
			stats.GaveUp = true
			return stats, nil
		}
		stats.Events = append(stats.Events, RestartEvent{
			Attempt: stats.Attempts, Cause: cause, Backoff: backoff,
		})
		stats.TotalBackoff += backoff
		stats.Restarts++
		if backoff < cfg.BackoffCap {
			backoff *= 2
			if backoff > cfg.BackoffCap {
				backoff = cfg.BackoffCap
			}
		}
	}
}

// execBounded runs one attempt with a cycle budget. The returned cause
// is "" on a voluntary exit, the kill reason for a monitor kill,
// "runaway" for budget exhaustion, or "crash" for a CPU fault (all
// restartable failures, like an init system restarting a segfaulting
// service); only platform failures surface as errors.
func (s *System) execBounded(exe *binfmt.File, name, stdin string, maxCycles uint64) (*Result, string, error) {
	p, err := s.Kernel.Spawn(exe, name)
	if err != nil {
		return nil, "", err
	}
	p.Stdin = []byte(stdin)
	runErr := s.Kernel.Run(p, maxCycles)
	var cause string
	var fault *vm.Fault
	switch {
	case runErr == nil:
		if p.Killed {
			cause = string(p.KilledBy)
		}
	case errors.Is(runErr, vm.ErrCycleLimit):
		cause = "runaway"
	case errors.As(runErr, &fault):
		cause = "crash"
	default:
		return nil, "", fmt.Errorf("core: run %s: %w", name, runErr)
	}
	return &Result{
		Output:   p.Output(),
		ExitCode: p.Code,
		Killed:   p.Killed,
		Reason:   p.KilledBy,
		Cycles:   p.CPU.Cycles,
		Syscalls: p.SyscallCount,
		Verified: p.VerifyCount,
	}, cause, nil
}
