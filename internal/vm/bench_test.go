package vm

import (
	"testing"

	"asc/internal/isa"
)

// BenchmarkInterpreter measures raw interpreter speed on a tight ALU
// loop (simulated instructions per second drive every macro result).
func BenchmarkInterpreter(b *testing.B) {
	mem := NewMemory(0x1000, 64<<10)
	ins := []isa.Instr{
		{Op: isa.OpMOVI, Rd: isa.R1, Imm: 100000},
		{Op: isa.OpMOVI, Rd: isa.R2, Imm: 0},
		{Op: isa.OpADD, Rd: isa.R3, Rs: isa.R3, Rt: isa.R1}, // loop body
		{Op: isa.OpADDI, Rd: isa.R1, Rs: isa.R1, Imm: 0xffffffff},
		{Op: isa.OpBNE, Rs: isa.R1, Rt: isa.R2, Imm: 0x1000 + 2*isa.InstrSize},
		{Op: isa.OpHALT},
	}
	code := make([]byte, len(ins)*isa.InstrSize)
	for i, in := range ins {
		in.Encode(code[i*isa.InstrSize:])
	}
	if err := mem.KernelWrite(0x1000, code); err != nil {
		b.Fatal(err)
	}
	mem.Map(Segment{Name: "text", Start: 0x1000, End: 0x1000 + uint32(len(code)), Perms: PermRead | PermExec})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(mem, nil)
		c.PrimeICache(0x1000, 0x1000+uint32(len(code)))
		c.PC = 0x1000
		if err := c.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(c.Cycles), "cycles/op")
		}
	}
}
