// Package asc is a from-scratch reproduction of "Authenticated System
// Calls" (Rajagopalan, Hiltunen, Jim, Schlichting; DSN 2005 / IEEE TDSC
// 2006): system call monitoring in which the trusted installer rewrites a
// binary so every system call carries its own policy and a cryptographic
// MAC, and the kernel's trap handler verifies each call against the key
// it shares with the installer.
//
// Because the original targets Linux/x86 with a patched kernel, this
// package ships an entire simulated platform built in pure Go: a 32-bit
// ISA and CPU with deterministic cycle accounting, an assembler, linker
// and libc, a SELF binary format with relocations (the PLTO
// prerequisite), an in-memory Unix-like kernel and filesystem, the
// trusted installer with its static analyses, a Systrace-style trained
// baseline, the paper's attack experiments, and benchmark drivers that
// regenerate every table of the evaluation.
//
// # Quick start
//
//	exe, _ := asc.BuildProgram("hello", `
//	        .text
//	        .global main
//	main:
//	        MOVI r1, msg
//	        CALL puts
//	        MOVI r0, 0
//	        RET
//	        .rodata
//	msg:    .asciz "hello\n"
//	`, asc.Linux)
//
//	sys, _ := asc.NewSystem(asc.SystemConfig{Key: asc.NewKey("my-secret")})
//	hardened, policy, report, _ := sys.Install(exe, "hello")
//	res, _ := sys.Exec(hardened, "hello", "")
//	fmt.Print(res.Output) // "hello\n" — every call verified by the kernel
package asc

import (
	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/ckpt"
	"asc/internal/core"
	"asc/internal/installer"
	"asc/internal/kernel"
	"asc/internal/libc"
	"asc/internal/linker"
	"asc/internal/mac"
	"asc/internal/policy"
)

// Re-exported core types. These aliases are the public names of the
// system's building blocks.
type (
	// Binary is an executable or object in the SELF format.
	Binary = binfmt.File
	// Policy is a program's overall system call policy.
	Policy = policy.ProgramPolicy
	// SitePolicy is the policy of one system call site.
	SitePolicy = policy.SitePolicy
	// Report carries the installer's per-program statistics (Table 3).
	Report = installer.Report
	// InstallOptions configures the trusted installer.
	InstallOptions = installer.Options
	// ArgPattern is a pattern constraint for one argument (§5.1).
	ArgPattern = installer.ArgPattern
	// Metapolicy states mandatory constraints (§5.2).
	Metapolicy = installer.Metapolicy
	// System is a protected machine (kernel + filesystem + installer key).
	System = core.System
	// SystemConfig configures a System.
	SystemConfig = core.Config
	// Result summarizes one process execution.
	Result = core.Result
	// SuperviseConfig parameterizes the supervised-restart runner.
	SuperviseConfig = core.SuperviseConfig
	// SuperviseStats summarizes a supervised run.
	SuperviseStats = core.SuperviseStats
	// CheckpointStore is the supervisor's sealed checkpoint chain.
	CheckpointStore = ckpt.Store
	// Enforcement selects the kernel's response to a violating call.
	Enforcement = kernel.Enforcement
	// OS selects a libc/kernel personality.
	OS = libc.OS
)

// Personalities.
const (
	Linux   = libc.Linux
	OpenBSD = libc.OpenBSD
)

// Enforcement modes: what the kernel does with a violating system call.
const (
	EnforceKill  = kernel.EnforceKill
	EnforceDeny  = kernel.EnforceDeny
	EnforceAudit = kernel.EnforceAudit
)

// KeySize is the MAC key length in bytes (AES-128).
const KeySize = mac.KeySize

// NoRestarts disables supervised restarts entirely
// (SuperviseConfig.MaxRestarts's zero value selects the default policy).
const NoRestarts = core.NoRestarts

// NewCheckpointStore returns an empty sealed-checkpoint store for
// SuperviseConfig.Checkpoints.
func NewCheckpointStore() *CheckpointStore { return ckpt.NewStore() }

// SealedEpoch reads the epoch a checkpoint blob claims to be sealed
// under, without verifying it. Restore still verifies the seal, the
// epoch, and the program binding.
func SealedEpoch(blob []byte) (uint64, error) { return ckpt.SealedEpoch(blob) }

// NewKey derives a fixed-size key from a passphrase by truncating or
// right-padding with '#'. For demonstrations only; production deployments
// should supply KeySize random bytes.
func NewKey(passphrase string) []byte {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = '#'
	}
	copy(key, passphrase)
	return key
}

// Assemble translates assembly source into a relocatable object.
func Assemble(name, source string) (*Binary, error) {
	return asm.Assemble(name, source)
}

// Link combines objects and the personality's libc into a relocatable
// executable (the installer's required input).
func Link(objects []*Binary, os OS) (*Binary, error) {
	lib, err := libc.Objects(os)
	if err != nil {
		return nil, err
	}
	return linker.Link(objects, lib)
}

// BuildProgram assembles one source file and links it against libc.
func BuildProgram(name, source string, os OS) (*Binary, error) {
	obj, err := Assemble(name+".s", source)
	if err != nil {
		return nil, err
	}
	return Link([]*Binary{obj}, os)
}

// Install runs the trusted installer standalone (without a System):
// static analysis, policy generation, and binary rewriting.
func Install(exe *Binary, name string, opts InstallOptions) (*Binary, *Policy, *Report, error) {
	return installer.Install(exe, name, opts)
}

// GeneratePolicy runs the analysis only, returning the policy and report
// without rewriting (usable even on partially disassemblable binaries).
func GeneratePolicy(exe *Binary, name string, os OS) (*Policy, *Report, error) {
	return installer.GeneratePolicy(exe, name, os.String())
}

// Optimize applies the installer's rewriting passes (stub inlining, dead
// stub removal, re-layout) without authentication — the evaluation's
// baseline binaries.
func Optimize(exe *Binary) (*Binary, error) {
	return installer.Optimize(exe)
}

// NewSystem builds a protected machine.
func NewSystem(cfg SystemConfig) (*System, error) {
	return core.NewSystem(cfg)
}

// ReadBinary parses a serialized SELF binary.
func ReadBinary(b []byte) (*Binary, error) {
	return binfmt.Read(b)
}

// CheckMetapolicy evaluates a policy against a metapolicy and returns the
// unmet-requirement template (§5.2).
func CheckMetapolicy(pp *Policy, mp Metapolicy) []installer.TemplateEntry {
	return installer.CheckMetapolicy(pp, mp)
}

// DefaultMetapolicy returns the threat-level-based metapolicy (§5.2).
func DefaultMetapolicy() Metapolicy { return installer.DefaultMetapolicy() }

// RenderTemplate prints a policy template for the administrator (§5.2).
func RenderTemplate(entries []installer.TemplateEntry) string {
	return installer.RenderTemplate(entries)
}

// KillReasons re-exported for matching Result.Reason.
const (
	KillUnauthenticated = kernel.KillUnauthenticated
	KillBadCallMAC      = kernel.KillBadCallMAC
	KillBadString       = kernel.KillBadString
	KillBadState        = kernel.KillBadState
	KillBadPredecessor  = kernel.KillBadPredecessor
	KillBadPattern      = kernel.KillBadPattern
	KillBadCapability   = kernel.KillBadCapability
)

// Version identifies this reproduction.
const Version = "1.0.0"
