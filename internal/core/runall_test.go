package core

import (
	"sync"
	"testing"

	"asc/internal/kernel"
)

// runAllLoopSrc traps from the same sites repeatedly: a getpid loop
// with the iteration count fixed in the source, so per-process cycle
// counts are deterministic.
const runAllLoopSrc = `
        .text
        .global main
main:
        MOVI r12, 50
.loop:
        CALL getpid
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "done"
`

// TestRunAll runs a homogeneous fleet at several worker counts and
// checks the determinism contract: identical per-process results
// regardless of pool width.
func TestRunAll(t *testing.T) {
	const procs = 8
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, runAllLoopSrc), "loop")
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]RunRequest, procs)
	for i := range reqs {
		reqs[i] = RunRequest{Exe: exe, Name: "loop"}
	}
	var baseline []ProcResult
	for _, w := range []int{1, 2, 4, 8} {
		res, err := s.RunAll(reqs, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if len(res) != procs {
			t.Fatalf("w=%d: %d results, want %d", w, len(res), procs)
		}
		for i, r := range res {
			if r.Err != nil || r.Killed {
				t.Fatalf("w=%d proc %d: err=%v killed=%v reason=%v", w, i, r.Err, r.Killed, r.Reason)
			}
			if r.Output != "done" {
				t.Errorf("w=%d proc %d: output %q", w, i, r.Output)
			}
			if r.Verified == 0 {
				t.Errorf("w=%d proc %d: no verified calls", w, i)
			}
		}
		if baseline == nil {
			baseline = res
			continue
		}
		for i, r := range res {
			if r.Cycles != baseline[i].Cycles || r.Verified != baseline[i].Verified ||
				r.Syscalls != baseline[i].Syscalls {
				t.Errorf("w=%d proc %d diverged from w=1: %+v vs %+v", w, i, r.Result, baseline[i].Result)
			}
		}
	}
}

// TestRunAllFleetCache runs a homogeneous fleet on one kernel with the
// fleet-shared verification cache and group commit, at several worker
// counts (run under -race, this is the gate for the shared cache map and
// the seqlock counters). Whichever process verifies a site first
// publishes it and the rest adopt, so per-process counters are not
// deterministic — but the conservation laws are: every process resolves
// each site exactly once (miss or share), hit counts match across the
// fleet, and the kernel-wide aggregate equals the per-process sum.
func TestRunAllFleetCache(t *testing.T) {
	const procs = 8
	for _, w := range []int{1, 4, 8} {
		s := newSystem(t, Config{KernelOptions: []kernel.Option{
			kernel.WithVerifyCache(), kernel.WithBatchVerify(8),
		}})
		exe, _, _, err := s.Install(buildRaw(t, runAllLoopSrc), "fleet")
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]RunRequest, procs)
		for i := range reqs {
			reqs[i] = RunRequest{Exe: exe, Name: "fleet"}
		}
		res, err := s.RunAll(reqs, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		var sum kernel.CacheStats
		var resolved, hits uint64
		for i, r := range res {
			if r.Err != nil || r.Killed || r.Output != "done" {
				t.Fatalf("w=%d proc %d: err=%v killed=%v output=%q", w, i, r.Err, r.Killed, r.Output)
			}
			cs := r.Cache
			if cs.Invalidations != 0 {
				t.Errorf("w=%d proc %d: %d invalidations on a benign run", w, i, cs.Invalidations)
			}
			if i == 0 {
				resolved, hits = cs.Misses+cs.Shares, cs.Hits
				if resolved == 0 || hits == 0 {
					t.Fatalf("w=%d: degenerate stats %+v", w, cs)
				}
			} else {
				if cs.Misses+cs.Shares != resolved {
					t.Errorf("w=%d proc %d: resolved %d sites (misses=%d shares=%d), proc 0 resolved %d",
						w, i, cs.Misses+cs.Shares, cs.Misses, cs.Shares, resolved)
				}
				if cs.Hits != hits {
					t.Errorf("w=%d proc %d: hits=%d, proc 0 hits=%d", w, i, cs.Hits, hits)
				}
			}
			sum.Hits += cs.Hits
			sum.Misses += cs.Misses
			sum.Invalidations += cs.Invalidations
			sum.Shares += cs.Shares
		}
		if total := s.Kernel.CacheStats(); total != sum {
			t.Errorf("w=%d: kernel aggregate %+v != per-process sum %+v", w, total, sum)
		}
	}
}

// TestRunAllMixedFailure: one process in the fleet is killed at its
// first system call (an installed binary with a raw, unauthenticatable
// SYSCALL site) without perturbing its siblings.
func TestRunAllMixedFailure(t *testing.T) {
	s := newSystem(t, Config{})
	good, _, _, err := s.Install(buildRaw(t, runAllLoopSrc), "good")
	if err != nil {
		t.Fatal(err)
	}
	bad, _, _, err := s.Install(buildRaw(t, superviseKilledSrc), "bad")
	if err != nil {
		t.Fatal(err)
	}
	reqs := []RunRequest{
		{Exe: good, Name: "good-0"},
		{Exe: bad, Name: "bad"},
		{Exe: good, Name: "good-1"},
	}
	res, err := s.RunAll(reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res[1].Killed {
		t.Error("unauthenticated process not killed")
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil || res[i].Killed || res[i].Output != "done" {
			t.Errorf("sibling %d perturbed: %+v", i, res[i])
		}
	}
	if res[0].Cycles != res[2].Cycles {
		t.Errorf("sibling cycles diverged: %d vs %d", res[0].Cycles, res[2].Cycles)
	}
}

// TestSuperviseWithSiblings restarts a monitor-killed process while
// sibling processes run concurrently on the same kernel. The kills and
// restarts must not perturb the siblings' control-flow verification,
// cache accounting, or cycle counts: every figure must match a sibling
// run on a quiet system.
func TestSuperviseWithSiblings(t *testing.T) {
	// Quiet-system baseline for the sibling workload.
	quiet := newSystem(t, Config{KernelOptions: nil})
	quietExe, _, _, err := quiet.Install(buildRaw(t, runAllLoopSrc), "sib")
	if err != nil {
		t.Fatal(err)
	}
	base, err := quiet.Exec(quietExe, "sib", "")
	if err != nil {
		t.Fatal(err)
	}
	if base.Killed {
		t.Fatalf("baseline killed: %v", base.Reason)
	}

	// Noisy system: a supervised process is killed and restarted while
	// 4 siblings run.
	s := newSystem(t, Config{})
	sibExe, _, _, err := s.Install(buildRaw(t, runAllLoopSrc), "sib")
	if err != nil {
		t.Fatal(err)
	}
	badExe, _, _, err := s.Install(buildRaw(t, superviseKilledSrc), "bad")
	if err != nil {
		t.Fatal(err)
	}

	const siblings = 4
	var wg sync.WaitGroup
	sibRes := make([]*Result, siblings)
	sibErr := make([]error, siblings)
	wg.Add(siblings + 1)
	var stats *SuperviseStats
	var supErr error
	go func() {
		defer wg.Done()
		stats, supErr = s.Supervise(badExe, "bad", "", SuperviseConfig{MaxRestarts: 3})
	}()
	for i := 0; i < siblings; i++ {
		go func(i int) {
			defer wg.Done()
			sibRes[i], sibErr[i] = s.Exec(sibExe, "sib", "")
		}(i)
	}
	wg.Wait()

	if supErr != nil {
		t.Fatalf("Supervise: %v", supErr)
	}
	if stats.Restarts == 0 || !stats.GaveUp {
		t.Fatalf("supervised process did not restart to exhaustion: %+v", stats)
	}
	for i := 0; i < siblings; i++ {
		if sibErr[i] != nil {
			t.Fatalf("sibling %d: %v", i, sibErr[i])
		}
		r := sibRes[i]
		if r.Killed || r.Output != "done" {
			t.Errorf("sibling %d perturbed: killed=%v output=%q", i, r.Killed, r.Output)
		}
		if r.Cycles != base.Cycles || r.Verified != base.Verified || r.Syscalls != base.Syscalls {
			t.Errorf("sibling %d diverged from quiet baseline: cycles %d/%d verified %d/%d syscalls %d/%d",
				i, r.Cycles, base.Cycles, r.Verified, base.Verified, r.Syscalls, base.Syscalls)
		}
	}
	// The supervised kills were recorded; the siblings contributed no
	// violations.
	if got := s.Kernel.Audit.Total(); got != uint64(stats.Attempts) {
		t.Errorf("audit total %d, want %d (one kill per supervised attempt)", got, stats.Attempts)
	}
}
