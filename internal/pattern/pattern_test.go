package pattern

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperExample(t *testing.T) {
	// "/tmp/{foo,bar}*baz" vs "/tmp/foofoobaz" -> hint (0, 3).
	p, err := Parse("/tmp/{foo,bar}*baz")
	if err != nil {
		t.Fatal(err)
	}
	hint, err := p.Match("/tmp/foofoobaz")
	if err != nil {
		t.Fatal(err)
	}
	if len(hint) != 2 || hint[0] != 0 || hint[1] != 3 {
		t.Errorf("hint = %v, want [0 3]", hint)
	}
	if _, err := p.Verify("/tmp/foofoobaz", hint); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// The bar branch.
	hint2, err := p.Match("/tmp/barbaz")
	if err != nil {
		t.Fatal(err)
	}
	if hint2[0] != 1 || hint2[1] != 0 {
		t.Errorf("hint = %v, want [1 0]", hint2)
	}
}

func TestMatchFailures(t *testing.T) {
	p, err := Parse("/tmp/*.log")
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"/etc/passwd", "/tmp/x.txt", "tmp/a.log", ""} {
		if _, err := p.Match(bad); !errors.Is(err, ErrNoMatch) {
			t.Errorf("Match(%q) = %v, want ErrNoMatch", bad, err)
		}
	}
	if hint, err := p.Match("/tmp/app.log"); err != nil || len(hint) != 1 || hint[0] != 3 {
		t.Errorf("Match(/tmp/app.log) = %v, %v", hint, err)
	}
}

func TestVerifyRejectsForgedHints(t *testing.T) {
	p, err := Parse("/tmp/{a,bb}*x")
	if err != nil {
		t.Fatal(err)
	}
	arg := "/tmp/bbzzx"
	good, err := p.Match(arg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Verify(arg, good); err != nil {
		t.Fatalf("good hint rejected: %v", err)
	}
	bads := [][]int{
		{0, 2},    // wrong branch
		{1, 1},    // wrong star length
		{1},       // too short
		{1, 2, 0}, // too long
		{5, 2},    // branch out of range
		{1, 100},  // star beyond arg
		{1, -1},   // negative
	}
	for _, h := range bads {
		if _, err := p.Verify(arg, h); err == nil {
			t.Errorf("forged hint %v accepted", h)
		}
	}
	// A hint for one argument must not validate another.
	if _, err := p.Verify("/tmp/azzx", good); err == nil {
		t.Error("hint transplanted across arguments accepted")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"{a,b", "a}b", "{a}", "{a,{b,c}}"} {
		if _, err := Parse(bad); !errors.Is(err, ErrBadPattern) {
			t.Errorf("Parse(%q) = %v, want ErrBadPattern", bad, err)
		}
	}
}

func TestHintRoundTrip(t *testing.T) {
	h := []int{0, 3, 65535}
	b, err := EncodeHint(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHint(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h {
		if got[i] != h[i] {
			t.Errorf("round trip %v -> %v", h, got)
		}
	}
	if _, err := EncodeHint([]int{70000}); err == nil {
		t.Error("oversized hint encoded")
	}
	if _, err := DecodeHint([]byte{1}); err == nil {
		t.Error("odd-length hint decoded")
	}
}

// Property: whenever Match succeeds, Verify accepts its hint; the scan
// cost is linear in the argument.
func TestPropertyMatchVerifyAgree(t *testing.T) {
	p, err := Parse("/var/{log,run}/*.{pid,txt}")
	if err != nil {
		t.Fatal(err)
	}
	f := func(mid string, a, b bool) bool {
		mid = strings.Map(func(r rune) rune {
			if r == '\x00' || r == '*' || r == '{' || r == '}' || r == ',' {
				return 'x'
			}
			return r
		}, mid)
		dir, ext := "log", "pid"
		if a {
			dir = "run"
		}
		if b {
			ext = "txt"
		}
		arg := "/var/" + dir + "/" + mid + "." + ext
		hint, err := p.Match(arg)
		if err != nil {
			// Some mids legitimately fail (e.g. contain "."
			// sequences that shift the extension); skip those.
			return true
		}
		scanned, err := p.Verify(arg, hint)
		return err == nil && scanned <= len(arg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChoices(t *testing.T) {
	p, _ := Parse("/tmp/{a,b}*{c,d}*")
	if p.Choices() != 4 {
		t.Errorf("Choices = %d, want 4", p.Choices())
	}
}
