// cluster.go extends the campaign to the cluster surface: faults that
// kill nodes, tear migration handshakes, and replay or misdirect sealed
// migration envelopes. Each trial runs a small fleet of one victim
// across a 3-node cluster on the deterministic virtual clock, injects
// the class's fault at a seeded tick, and checks the cluster contract:
//
//   - crash classes lose no authenticated state — every process
//     completes with the single-node reference output, recovered warm
//     (zero cold starts) from its durable sealed checkpoints;
//   - replay and spoof deliveries are rejected at 100% with their
//     canonical reasons ("epoch-replay" from the fence,
//     "node-mismatch" from the kernel's envelope check); and
//   - a heartbeat delay below the miss threshold causes no false
//     suspicion: no declared failures, no failovers.
//
// Like the checkpoint classes, cluster faults live entirely outside the
// enforcement path, so each cell runs under Kill and Deny and the pair
// must be identical in every field but Mode.
package fault

import (
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/ckpt"
	"asc/internal/cluster"
	"asc/internal/core"
	"asc/internal/kernel"
	"asc/internal/workload"
)

// The cluster fault classes.
const (
	// ClusterCrash crashes one node mid-run; its processes must fail
	// over warm to survivors.
	ClusterCrash Class = "node-crash"
	// ClusterCrashMidMig crashes the source or destination node in the
	// middle of a migration transfer — a torn handshake.
	ClusterCrashMidMig Class = "node-crash-mid-migration"
	// ClusterReplay delivers a captured genuine migration envelope a
	// second time to its own destination node.
	ClusterReplay Class = "migration-replay"
	// ClusterSpoof delivers a captured envelope to a node it was never
	// sealed for.
	ClusterSpoof Class = "node-spoof"
	// ClusterDelay delays one node's heartbeats below the miss
	// threshold — the false-suspicion probe.
	ClusterDelay Class = "heartbeat-delay"
)

// ClusterClasses returns the cluster fault classes in canonical order.
func ClusterClasses() []Class {
	return []Class{ClusterCrash, ClusterCrashMidMig, ClusterReplay, ClusterSpoof, ClusterDelay}
}

// ClusterExpectation returns the rejection reasons a class must (and
// may only) produce. Crash and delay classes produce none: their
// contract is recovery, not rejection.
func ClusterExpectation(c Class) []string {
	switch c {
	case ClusterReplay:
		return []string{ckpt.ReasonEpoch}
	case ClusterSpoof:
		return []string{ckpt.ReasonNode}
	}
	return nil
}

// ClusterCell aggregates the trials of one (class, victim, mode)
// triple.
type ClusterCell struct {
	Class        string         `json:"class"`
	Victim       string         `json:"victim"`
	Mode         string         `json:"mode"`
	Trials       int            `json:"trials"`
	Fired        int            `json:"fired"`
	Rejected     int            `json:"rejected"` // trials whose delivery was refused
	Reasons      map[string]int `json:"reasons,omitempty"`
	Failovers    int            `json:"failovers"`
	WarmRestarts int            `json:"warm_restarts"`
	ColdStarts   int            `json:"cold_starts"`
	Migrations   int            `json:"migrations"`
	Recovered    int            `json:"recovered"` // trials with every output matching the reference
	ReplayCycles uint64         `json:"replay_cycles"`
	Failures     []string       `json:"failures,omitempty"`
}

// clusterFleet is how many copies of the victim each trial runs — one
// per node, so round-robin places exactly one process on the node the
// fault targets.
const clusterFleet = 3

// clusterPrep is the per-victim serial precomputation: the reference
// result (output identity is the zero-loss check) and a slice size that
// stretches the victim across ~10 scheduler ticks.
type clusterPrep struct {
	ref   *core.Result
	slice uint64
}

// prepCluster measures one victim's single-node reference run.
func prepCluster(cfg Config, v *workload.FaultVictim, exe *binfmt.File) (clusterPrep, error) {
	sys, err := core.NewSystem(core.Config{Key: cfg.Key})
	if err != nil {
		return clusterPrep{}, err
	}
	res, err := sys.Exec(exe, v.Name, v.Stdin)
	if err != nil {
		return clusterPrep{}, fmt.Errorf("fault: cluster clean run %s: %w", v.Name, err)
	}
	if res.Killed || res.ExitCode != 0 {
		return clusterPrep{}, fmt.Errorf("fault: cluster clean run %s failed: %+v", v.Name, res)
	}
	slice := res.Cycles / 10
	if slice < 256 {
		slice = 256
	}
	return clusterPrep{ref: res, slice: slice}, nil
}

// clusterTrial is the state one trial's OnTick hook accumulates.
type clusterTrial struct {
	fired    bool
	reasons  []string // rejection reasons from attack deliveries
	hookErrs []string
}

// runClusterCell runs every trial of one (class, victim, mode) triple.
func runClusterCell(cfg Config, class Class, v *workload.FaultVictim, exe *binfmt.File, vi uint64, prep clusterPrep, mode kernel.Enforcement) (ClusterCell, error) {
	modeName := "kill"
	if mode == kernel.EnforceDeny {
		modeName = "deny"
	}
	cell := ClusterCell{
		Class: string(class), Victim: v.Name, Mode: modeName,
		Trials: cfg.Trials, Reasons: map[string]int{},
	}
	exp := ClusterExpectation(class)

	for trial := 0; trial < cfg.Trials; trial++ {
		s := cfg.Seed
		_ = splitmix(&s)
		subseed := s ^ vi<<40 ^ uint64(trial)<<8
		pick := splitmix(&subseed)

		tr := &clusterTrial{}
		ccfg := cluster.Config{
			Nodes:           clusterFleet,
			Key:             cfg.Key,
			Enforcement:     mode,
			SliceCycles:     prep.slice,
			CheckpointEvery: int64(prep.slice),
			HeartbeatEvery:  1,
			MissThreshold:   3,
			MaxCycles:       cfg.MaxCycles,
			OnTick:          clusterHook(class, pick, tr),
		}
		d, err := cluster.New(ccfg)
		if err != nil {
			return cell, err
		}
		reqs := make([]core.RunRequest, clusterFleet)
		for i := range reqs {
			reqs[i] = core.RunRequest{Exe: exe, Name: fmt.Sprintf("v%d", i), Stdin: v.Stdin}
		}
		rep, err := d.Run(reqs)
		if err != nil {
			return cell, fmt.Errorf("fault: cluster %s/%s/%s trial %d: %w", class, v.Name, modeName, trial, err)
		}

		badf := func(format string, args ...any) {
			cell.Failures = append(cell.Failures,
				fmt.Sprintf("trial %d: ", trial)+fmt.Sprintf(format, args...))
		}
		for _, msg := range tr.hookErrs {
			badf("%s", msg)
		}
		if tr.fired {
			cell.Fired++
		} else {
			badf("cluster fault never fired")
		}

		// Zero authenticated-state loss: every process finishes clean
		// with the single-node reference output.
		recovered := true
		for _, pr := range rep.Procs {
			cell.Failovers += pr.Failovers
			cell.WarmRestarts += pr.WarmRestarts
			cell.ColdStarts += pr.ColdStarts
			cell.Migrations += pr.Migrations
			cell.ReplayCycles += pr.ReplayCycles
			switch {
			case pr.Err != nil:
				recovered = false
				badf("%s: %v", pr.Name, pr.Err)
			case pr.Result == nil || pr.Result.Killed || pr.Result.ExitCode != 0:
				recovered = false
				badf("%s: did not exit clean: %+v", pr.Name, pr.Result)
			case pr.Result.Output != prep.ref.Output:
				recovered = false
				badf("%s: output diverged from the single-node run", pr.Name)
			}
			if pr.ColdStarts != 0 {
				badf("%s: %d cold starts with durable checkpoints available", pr.Name, pr.ColdStarts)
			}
		}
		if recovered {
			cell.Recovered++
		}
		if len(tr.reasons) > 0 {
			cell.Rejected++
		}
		for _, reason := range tr.reasons {
			cell.Reasons[reason]++
			ok := false
			for _, want := range exp {
				if reason == want {
					ok = true
				}
			}
			if !ok {
				badf("unexpected rejection reason %q (allowed %v)", reason, exp)
			}
		}

		// Per-class contract.
		totalFailovers := 0
		for _, pr := range rep.Procs {
			totalFailovers += pr.Failovers
		}
		switch class {
		case ClusterCrash, ClusterCrashMidMig:
			if len(rep.NodesDown) == 0 {
				badf("crashed node was never declared failed")
			}
			if totalFailovers == 0 {
				badf("node crash caused no failovers")
			}
		case ClusterReplay, ClusterSpoof:
			if len(tr.reasons) == 0 {
				badf("attack delivery was not rejected")
			}
			if totalFailovers != 0 {
				badf("attack delivery disturbed the fleet: %d failovers", totalFailovers)
			}
		case ClusterDelay:
			if len(rep.NodesDown) != 0 {
				badf("false suspicion: nodes declared down %v", rep.NodesDown)
			}
			if totalFailovers != 0 {
				badf("heartbeat delay caused %d failovers", totalFailovers)
			}
			if rep.MissedBeats == 0 {
				badf("heartbeat delay missed no beats")
			}
		}
	}
	if len(cell.Reasons) == 0 {
		cell.Reasons = nil
	}
	return cell, nil
}

// clusterHook builds the OnTick fault injector for one trial. All
// decisions are a pure function of (class, pick), so the trial is
// deterministic.
func clusterHook(class Class, pick uint64, tr *clusterTrial) func(*cluster.Director, int) {
	fail := func(format string, args ...any) {
		tr.hookErrs = append(tr.hookErrs, fmt.Sprintf(format, args...))
	}
	switch class {
	case ClusterCrash:
		crashAt := 2 + int(pick%3)
		victim := cluster.NodeID(1 + (pick>>8)%clusterFleet)
		return func(d *cluster.Director, tick int) {
			if tick == crashAt {
				d.CrashNode(victim)
				tr.fired = true
			}
		}
	case ClusterCrashMidMig:
		migAt := 2 + int(pick%2)
		dst := cluster.NodeID(2 + (pick>>16)%2) // v0 lives on node 1
		crashSrc := (pick>>24)&1 == 0
		return func(d *cluster.Director, tick int) {
			if tick != migAt {
				return
			}
			opts := cluster.CleanMigrate()
			opts.TornAfter = int((pick >> 32) % 2)
			opts.CrashSrc = crashSrc
			opts.CrashDst = !crashSrc
			reason, err := d.Migrate("v0", dst, opts)
			if err != nil {
				fail("torn migrate: %v", err)
			}
			if reason != "" {
				fail("torn migrate returned verdict %q, want none", reason)
			}
			tr.fired = true
		}
	case ClusterReplay, ClusterSpoof:
		migAt := 2 + int(pick%2)
		attackAt := migAt + 2
		var captured []byte
		var epoch uint64
		return func(d *cluster.Director, tick int) {
			switch tick {
			case migAt:
				opts := cluster.CleanMigrate()
				opts.Capture = &captured
				if reason, err := d.Migrate("v0", 2, opts); err != nil || reason != "" {
					fail("setup migrate: reason=%q err=%v", reason, err)
					return
				}
				epoch = d.Epoch("v0")
			case attackAt:
				if len(captured) == 0 {
					return
				}
				target := cluster.NodeID(2) // replay: the genuine destination
				if class == ClusterSpoof {
					target = 3 // spoof: a node the envelope was never sealed for
				}
				reason, err := d.Deliver(captured, target, "v0", epoch)
				if err != nil {
					fail("attack deliver: %v", err)
					return
				}
				tr.fired = true
				if reason == "" {
					fail("attack delivery was accepted: fence/envelope failed")
					return
				}
				tr.reasons = append(tr.reasons, reason)
			}
		}
	case ClusterDelay:
		delayAt := 2 + int(pick%3)
		victim := cluster.NodeID(1 + (pick>>8)%clusterFleet)
		return func(d *cluster.Director, tick int) {
			if tick == delayAt {
				d.DelayHeartbeats(victim, 2) // below the threshold of 3
				tr.fired = true
			}
		}
	}
	return func(*cluster.Director, int) {}
}

// checkClusterParity compares each (class, victim) pair's Deny cell
// against its Kill sibling; cluster faults never touch the enforcement
// path, so the two must agree in every field but Mode.
func checkClusterParity(m *Matrix) {
	for i := 0; i+1 < len(m.Cluster); i += 2 {
		deny, kill := &m.Cluster[i], m.Cluster[i+1]
		if deny.Class != kill.Class || deny.Victim != kill.Victim {
			deny.Failures = append(deny.Failures, "unpaired cluster cell")
			continue
		}
		a, b := *deny, kill
		a.Mode, b.Mode = "", ""
		a.Failures, b.Failures = nil, nil
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			deny.Failures = append(deny.Failures,
				fmt.Sprintf("mode parity: deny %+v, kill %+v", a, b))
		}
	}
}
