// ascrun executes a SELF binary on the simulated kernel.
//
// Usage: ascrun (-key passphrase | -permissive) [-stdin file] [-trace]
//
//	[-enforcement kill|deny|audit] [-supervise N] [-backoff N] exe
//
// With -key, the kernel enforces authenticated system calls (binaries
// must have been processed by ascinstall with the same key). With
// -permissive, all calls run unchecked (the baseline mode).
// -enforcement selects the kernel's response to a violating call: kill
// the process (default), deny the call with EPERM, or audit and
// continue. -supervise N restarts a killed or runaway process up to N
// times with capped exponential backoff.
//
// With -supervise, -checkpoint-every N seals a cryptographically
// authenticated checkpoint of the running process every N cycles;
// restarts resume warm from the newest checkpoint whose seal verifies.
// -checkpoint-out writes the newest sealed blob at exit, and -restore
// resumes a previous run from such a file (the seal, program binding,
// and state MACs are re-verified before the process runs).
//
// Exit codes: the process's own exit status (masked to 0..127) on a
// voluntary exit; 125 when the monitor kills the process; 124 when it
// overruns its cycle budget (runaway); 2 on usage errors; 1 on platform
// errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"asc"
	"asc/internal/sys"
	"asc/internal/vm"
)

const (
	exitKilled  = 125
	exitRunaway = 124
	exitCrashed = 139 // 128 + SIGSEGV, the shell convention for a memory fault
)

func main() {
	key := flag.String("key", "", "MAC key passphrase (enables enforcement)")
	permissive := flag.Bool("permissive", false, "run without checking")
	stdinFile := flag.String("stdin", "", "file supplying standard input")
	trace := flag.Bool("trace", false, "print the system call trace")
	enfFlag := flag.String("enforcement", "kill", "violation response: kill, deny, or audit")
	superviseN := flag.Int("supervise", -1, "restart a failing process up to N times (negative: no supervision)")
	backoff := flag.Uint64("backoff", 0, "base virtual backoff (cycles) between supervised restarts")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "with -supervise: seal a checkpoint every N cycles (restarts resume warm)")
	ckptOut := flag.String("checkpoint-out", "", "with -checkpoint-every: write the newest sealed checkpoint to this file")
	restorePath := flag.String("restore", "", "resume from a sealed checkpoint file instead of starting fresh")
	flag.Parse()
	if flag.NArg() != 1 || (*key == "" && !*permissive) {
		usage()
	}
	var enf asc.Enforcement
	switch *enfFlag {
	case "kill":
		enf = asc.EnforceKill
	case "deny":
		enf = asc.EnforceDeny
	case "audit":
		enf = asc.EnforceAudit
	default:
		fmt.Fprintf(os.Stderr, "ascrun: unknown -enforcement %q\n", *enfFlag)
		usage()
	}

	b, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	exe, err := asc.ReadBinary(b)
	if err != nil {
		fatal(err)
	}
	cfg := asc.SystemConfig{Permissive: *permissive, Enforcement: enf}
	if !*permissive {
		cfg.Key = asc.NewKey(*key)
	}
	system, err := asc.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	var stdin string
	if *stdinFile != "" {
		sb, err := os.ReadFile(*stdinFile)
		if err != nil {
			fatal(err)
		}
		stdin = string(sb)
	}

	switch {
	case *restorePath != "":
		runRestored(system, exe, flag.Arg(0), *restorePath)
	case *superviseN >= 0:
		runSupervised(system, exe, flag.Arg(0), stdin, *superviseN, *backoff, *ckptEvery, *ckptOut)
	case *trace:
		runTraced(system, exe, flag.Arg(0), stdin)
	default:
		runOnce(system, exe, flag.Arg(0), stdin)
	}
}

// runRestored resumes a process from a sealed checkpoint file. The
// trusted epoch normally lives in the supervisor's store; for a file
// restore it is taken from the blob's own header — the seal, the
// program binding, and the in-memory state MACs are still verified.
func runRestored(system *asc.System, exe *asc.Binary, name, path string) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	epoch, err := asc.SealedEpoch(blob)
	if err != nil {
		fatal(err)
	}
	p, err := system.Kernel.Restore(exe, name, blob, epoch)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ascrun: restored checkpoint epoch %d at %d cycles\n", epoch, p.CPU.Cycles)
	runErr := system.Kernel.Run(p, 4_000_000_000)
	os.Stdout.WriteString(p.Output())
	reportAudit(system)
	if runErr != nil {
		exitRunError(runErr)
	}
	if p.Killed {
		fmt.Fprintf(os.Stderr, "ascrun: process killed by monitor: %s\n", p.KilledBy)
		os.Exit(exitKilled)
	}
	fmt.Fprintf(os.Stderr, "ascrun: exit %d, %d cycles, %d syscalls (%d verified)\n",
		p.Code, p.CPU.Cycles, p.SyscallCount, p.VerifyCount)
	os.Exit(int(p.Code) & 0x7f)
}

// runOnce executes the binary a single time and maps the outcome to the
// documented exit codes.
func runOnce(system *asc.System, exe *asc.Binary, name, stdin string) {
	res, err := system.Exec(exe, name, stdin)
	if err != nil {
		exitRunError(err)
	}
	os.Stdout.WriteString(res.Output)
	reportAudit(system)
	if res.Killed {
		fmt.Fprintf(os.Stderr, "ascrun: process killed by monitor: %s\n", res.Reason)
		os.Exit(exitKilled)
	}
	fmt.Fprintf(os.Stderr, "ascrun: exit %d, %d cycles, %d syscalls (%d verified)\n",
		res.ExitCode, res.Cycles, res.Syscalls, res.Verified)
	os.Exit(int(res.ExitCode) & 0x7f)
}

// runTraced executes once with the system call trace enabled.
func runTraced(system *asc.System, exe *asc.Binary, name, stdin string) {
	p, err := system.Kernel.Spawn(exe, name)
	if err != nil {
		fatal(err)
	}
	p.Stdin = []byte(stdin)
	p.DoTrace = true
	runErr := system.Kernel.Run(p, 4_000_000_000)
	os.Stdout.WriteString(p.Output())
	for _, e := range p.Trace {
		fmt.Fprintf(os.Stderr, "trace: %-14s site=%#x args=%v ret=%d\n",
			sys.Name(e.Num), e.Site, e.Args, int32(e.Ret))
	}
	reportAudit(system)
	if runErr != nil {
		exitRunError(runErr)
	}
	if p.Killed {
		fmt.Fprintf(os.Stderr, "ascrun: process killed by monitor: %s\n", p.KilledBy)
		os.Exit(exitKilled)
	}
	os.Exit(int(p.Code) & 0x7f)
}

// runSupervised runs the binary under the restart policy and reports the
// restart statistics.
func runSupervised(system *asc.System, exe *asc.Binary, name, stdin string, maxRestarts int, backoff, ckptEvery uint64, ckptOut string) {
	scfg := asc.SuperviseConfig{MaxRestarts: maxRestarts, BackoffBase: backoff}
	if maxRestarts == 0 {
		scfg.MaxRestarts = asc.NoRestarts // "0" means run once, not the library default
	}
	var store *asc.CheckpointStore
	if ckptEvery > 0 {
		store = asc.NewCheckpointStore()
		scfg.CheckpointEvery = ckptEvery
		scfg.Checkpoints = store
	}
	stats, err := system.Supervise(exe, name, stdin, scfg)
	if err != nil {
		fatal(err)
	}
	if stats.Final != nil {
		os.Stdout.WriteString(stats.Final.Output)
	}
	reportAudit(system)
	fmt.Fprintf(os.Stderr, "ascrun: supervise: %d attempts, %d restarts, %d cycles total backoff\n",
		stats.Attempts, stats.Restarts, stats.TotalBackoff)
	if store != nil {
		fmt.Fprintf(os.Stderr, "ascrun: supervise: %d checkpoints, %d warm restarts, %d cold starts, %d cycles replayed\n",
			stats.Checkpoints, stats.WarmRestarts, stats.ColdStarts, stats.ReplayCycles)
		reasons := make([]string, 0, len(stats.CkptRejected))
		for reason := range stats.CkptRejected {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			fmt.Fprintf(os.Stderr, "ascrun: supervise: checkpoint rejected (%s) × %d\n", reason, stats.CkptRejected[reason])
		}
		if ckptOut != "" {
			if chain := store.Chain(); len(chain) > 0 {
				if err := os.WriteFile(ckptOut, chain[0].Blob, 0o644); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "ascrun: wrote checkpoint epoch %d to %s\n", chain[0].Epoch, ckptOut)
			} else {
				fmt.Fprintln(os.Stderr, "ascrun: no checkpoint was sealed; nothing written")
			}
		}
	}
	causes := make([]string, 0, len(stats.Causes))
	for c := range stats.Causes {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	for _, c := range causes {
		fmt.Fprintf(os.Stderr, "ascrun: supervise: cause %q × %d\n", c, stats.Causes[c])
	}
	if stats.GaveUp {
		fmt.Fprintln(os.Stderr, "ascrun: supervise: gave up")
		switch {
		case stats.Final != nil && stats.Final.Killed:
			fmt.Fprintf(os.Stderr, "ascrun: process killed by monitor: %s\n", stats.Final.Reason)
			os.Exit(exitKilled)
		case stats.FinalCause == "crash":
			os.Exit(exitCrashed)
		default:
			os.Exit(exitRunaway)
		}
	}
	fmt.Fprintf(os.Stderr, "ascrun: exit %d, %d cycles, %d syscalls (%d verified)\n",
		stats.Final.ExitCode, stats.Final.Cycles, stats.Final.Syscalls, stats.Final.Verified)
	os.Exit(int(stats.Final.ExitCode) & 0x7f)
}

// reportAudit prints the kernel's held violation records (Deny and Audit
// modes leave the process running, so the ring is the only evidence).
func reportAudit(system *asc.System) {
	const maxShown = 16
	ents := system.Audit()
	for i, e := range ents {
		if i == maxShown {
			fmt.Fprintf(os.Stderr, "ascrun: ... %d more violations held in the ring\n", len(ents)-i)
			break
		}
		fmt.Fprintf(os.Stderr, "ascrun: violation: %s\n", e)
	}
	if d := system.Kernel.Audit.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "ascrun: audit ring dropped %d older records\n", d)
	}
}

// exitRunError maps an execution error to its documented exit code.
func exitRunError(err error) {
	var fault *vm.Fault
	switch {
	case errors.Is(err, vm.ErrCycleLimit):
		fmt.Fprintln(os.Stderr, "ascrun: cycle budget exhausted (runaway)")
		os.Exit(exitRunaway)
	case errors.As(err, &fault):
		fmt.Fprintln(os.Stderr, "ascrun: process crashed:", fault)
		os.Exit(exitCrashed)
	}
	fatal(err)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ascrun (-key <passphrase> | -permissive) [-stdin file] [-trace] [-enforcement kill|deny|audit] [-supervise N] [-backoff N] [-checkpoint-every N] [-checkpoint-out file] [-restore file] exe")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ascrun:", err)
	os.Exit(1)
}
