// ascfleet runs a fleet of copies of one authenticated SELF binary
// across a simulated multi-node cluster under the fleet director:
// round-robin placement, heartbeat failure detection, and failover via
// sealed-checkpoint migration to surviving nodes.
//
// Usage: ascfleet -key passphrase [-nodes N] [-procs N] [-stdin file]
//
//	[-enforcement kill|deny|audit] [-slice N] [-checkpoint-every N]
//	[-heartbeat N] [-miss N] [-kill-node ID -kill-tick T] [-events] exe
//
// The binary must have been processed by ascinstall with the same key;
// every node's kernel re-verifies it, and every checkpoint that moves
// between nodes is re-verified by the receiving kernel. -kill-node/-
// kill-tick crash a node at a virtual tick mid-run — the demonstration
// that the fleet completes anyway, warm from sealed checkpoints.
// -events prints the director's control-plane timeline.
//
// Exit codes: 0 when every process exits clean; 125 when any process
// was killed by its monitor; 2 on usage errors; 1 on platform errors
// or lost processes.
package main

import (
	"flag"
	"fmt"
	"os"

	"asc"
	"asc/internal/cluster"
	"asc/internal/core"
	"asc/internal/kernel"
)

func main() {
	key := flag.String("key", "", "MAC key passphrase (required; the cluster always enforces)")
	nodes := flag.Int("nodes", 3, "cluster width")
	procs := flag.Int("procs", 0, "fleet size (default: two per node)")
	stdinFile := flag.String("stdin", "", "file supplying standard input to every process")
	enfFlag := flag.String("enforcement", "kill", "violation response: kill, deny, or audit")
	slice := flag.Uint64("slice", 0, "virtual cycles each process advances per tick (default 4096)")
	ckptEvery := flag.Int64("checkpoint-every", 0, "seal a durable checkpoint every N cycles (default 4 slices; negative disables)")
	heartbeat := flag.Int("heartbeat", 1, "ticks between heartbeat rounds")
	miss := flag.Int("miss", 3, "consecutive missed heartbeats that declare a node failed")
	killNode := flag.Int("kill-node", 0, "crash this node mid-run (0: no crash)")
	killTick := flag.Int("kill-tick", 3, "virtual tick the -kill-node crash fires")
	events := flag.Bool("events", false, "print the director's control-plane timeline")
	flag.Parse()
	if flag.NArg() != 1 || *key == "" {
		fmt.Fprintln(os.Stderr, "usage: ascfleet -key passphrase [-nodes N] [-procs N] [-stdin file] [-enforcement kill|deny|audit] [-slice N] [-checkpoint-every N] [-heartbeat N] [-miss N] [-kill-node ID -kill-tick T] [-events] exe")
		os.Exit(2)
	}
	var enf kernel.Enforcement
	switch *enfFlag {
	case "kill":
		enf = kernel.EnforceKill
	case "deny":
		enf = kernel.EnforceDeny
	case "audit":
		enf = kernel.EnforceAudit
	default:
		fmt.Fprintf(os.Stderr, "ascfleet: unknown -enforcement %q\n", *enfFlag)
		os.Exit(2)
	}
	b, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	exe, err := asc.ReadBinary(b)
	if err != nil {
		fatal(err)
	}
	var stdin string
	if *stdinFile != "" {
		sb, err := os.ReadFile(*stdinFile)
		if err != nil {
			fatal(err)
		}
		stdin = string(sb)
	}

	cfg := cluster.Config{
		Nodes:           *nodes,
		Key:             asc.NewKey(*key),
		Enforcement:     enf,
		SliceCycles:     *slice,
		CheckpointEvery: *ckptEvery,
		HeartbeatEvery:  *heartbeat,
		MissThreshold:   *miss,
	}
	if *killNode != 0 {
		if *killNode < 1 || *killNode > *nodes {
			fmt.Fprintf(os.Stderr, "ascfleet: -kill-node %d out of range (cluster has %d nodes)\n", *killNode, *nodes)
			os.Exit(2)
		}
		cfg.OnTick = func(d *cluster.Director, tick int) {
			if tick == *killTick {
				d.CrashNode(cluster.NodeID(*killNode))
			}
		}
	}
	d, err := cluster.New(cfg)
	if err != nil {
		fatal(err)
	}
	n := *procs
	if n <= 0 {
		n = 2 * *nodes
	}
	reqs := make([]core.RunRequest, n)
	for i := range reqs {
		reqs[i] = core.RunRequest{Exe: exe, Name: fmt.Sprintf("p%d", i), Stdin: stdin}
	}
	rep, err := d.Run(reqs)
	if err != nil {
		fatal(err)
	}

	if *events {
		for _, ev := range rep.Events {
			fmt.Fprintf(os.Stderr, "tick %4d  %s\n", ev.Tick, ev.What)
		}
	}
	fmt.Fprintf(os.Stderr, "ascfleet: %d procs on %d nodes, %d ticks, %d beats (%d missed), nodes down %v\n",
		n, *nodes, rep.Ticks, rep.Beats, rep.MissedBeats, rep.NodesDown)
	exit := 0
	for _, pr := range rep.Procs {
		switch {
		case pr.Err != nil:
			fmt.Fprintf(os.Stderr, "ascfleet: %s: lost: %v\n", pr.Name, pr.Err)
			exit = 1
		case pr.Result.Killed:
			fmt.Fprintf(os.Stderr, "ascfleet: %s: killed by monitor: %s\n", pr.Name, pr.Result.Reason)
			if exit == 0 {
				exit = 125
			}
		default:
			fmt.Fprintf(os.Stderr, "ascfleet: %s: node %d, exit %d, %d cycles, %d ckpts, %d failovers (%d warm, %d cold), %d cycles replayed\n",
				pr.Name, pr.Node, pr.Result.ExitCode, pr.Result.Cycles, pr.Checkpoints,
				pr.Failovers, pr.WarmRestarts, pr.ColdStarts, pr.ReplayCycles)
			if pr.Result.ExitCode != 0 && exit == 0 {
				exit = int(pr.Result.ExitCode) & 0x7f
			}
		}
	}
	// Every copy computes the same thing; print the first clean output.
	for _, pr := range rep.Procs {
		if pr.Err == nil && pr.Result != nil {
			os.Stdout.WriteString(pr.Result.Output)
			break
		}
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ascfleet:", err)
	os.Exit(1)
}
