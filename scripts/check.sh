#!/bin/sh
# check.sh — the repository's full verification gate: formatting, vet,
# build, the tier-1 test suite, the SMP race gate, short fuzz smokes
# over the decoders, the kernel syscall benchmarks, the fault-
# injection campaign, the cached-overhead regression guard, and the
# machine-readable summaries (BENCH_kernel.json, BENCH_batch.json,
# BENCH_fault.json).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (tier 1) =="
go test ./...

# The race gate covers the packages that share kernel state across
# goroutines under the SMP scheduler: the worker pool itself, the
# kernel's sharded structures (VFS, audit ring, pattern cache, atomic
# counters), the fleet API, the parallel fault campaign, and the
# throughput sweep.
echo "== go test -race (SMP gate) =="
go test -race ./internal/sched/... ./internal/kernel/... ./internal/core/... \
    ./internal/fault/... ./internal/bench/... ./internal/net/... ./internal/workload/... \
    ./internal/cluster/... ./internal/durable/... ./internal/vm/... ./internal/ckpt/...

echo "== fuzz smoke (auth-record decoding) =="
go test -run '^$' -fuzz FuzzAuthRecord -fuzztime 5s ./internal/kernel

echo "== fuzz smoke (checkpoint decoding) =="
go test -run '^$' -fuzz FuzzCheckpointDecode -fuzztime 5s ./internal/ckpt

echo "== fuzz smoke (migration-envelope decoding) =="
go test -run '^$' -fuzz FuzzMigrationDecode -fuzztime 5s ./internal/ckpt

echo "== fuzz smoke (sockaddr decoding) =="
go test -run '^$' -fuzz FuzzSockAddrDecode -fuzztime 5s ./internal/net

echo "== fuzz smoke (pollfd-set decoding) =="
go test -run '^$' -fuzz FuzzPollSetDecode -fuzztime 5s ./internal/net

echo "== fuzz smoke (state-update batch encoding) =="
go test -run '^$' -fuzz FuzzBatchEncode -fuzztime 5s ./internal/policy

echo "== fuzz smoke (WAL record decoding) =="
go test -run '^$' -fuzz FuzzWALRecordDecode -fuzztime 5s ./internal/durable

echo "== fuzz smoke (swap-frame decoding) =="
go test -run '^$' -fuzz FuzzSwapFrameDecode -fuzztime 5s ./internal/ckpt

echo "== fuzz smoke (page-table-record decoding) =="
go test -run '^$' -fuzz FuzzPageTableDecode -fuzztime 5s ./internal/vm

echo "== kernel syscall benchmarks =="
go test -run '^$' -bench 'SyscallPlain|SyscallVerified|VerifyAllocs' \
    -benchtime 2x ./internal/kernel

# -guard 1.6 is the perf regression gate: fail if the cached getpid
# cost exceeds 1.6x the plain (unverified) cost.
echo "== BENCH_kernel.json =="
go run ./cmd/ascbench -table 4 -json BENCH_kernel.json -guard 1.6
echo "wrote BENCH_kernel.json"

# -netguard 70 is the event-loop scaling gate: the reduced sharded
# fleet (4 poll-event-loop replicas, 8 LB clients) must reach at least
# 70% parallel efficiency at 4 workers — replicas serialized behind a
# shared wait fail loudly here.
echo "== sharded-fleet efficiency guard =="
go run ./cmd/ascbench -netguard 70 -table none

# -takeoverguard is the durable-control-plane recovery gate: a director
# crash mid-migration on a durable 3-node cluster must be survived by
# the warm standby with every process re-attached or warm-restored and
# zero cold starts.
echo "== director takeover recovery guard =="
go run ./cmd/ascbench -takeoverguard -table none

echo "== BENCH_batch.json =="
go run ./cmd/ascbench -table batch -json BENCH_batch.json
echo "wrote BENCH_batch.json"

echo "== fault-injection campaign =="
go run ./cmd/ascfault -seed 1 -trials 3 -workers 4 -json BENCH_fault.json
