package asm

import (
	"strings"
	"testing"

	"asc/internal/binfmt"
	"asc/internal/isa"
)

const sample = `
; sample program
        .text
        .global main
main:
        PUSH fp
        MOV fp, sp
        MOVI r1, msg            ; reloc
        MOVI r2, MSGLEN
        MOVI r3, 0
.loop:
        ADDI r3, r3, 1
        BLT r3, r2, .loop       ; reloc to local label
        CALL helper             ; reloc
        POP fp
        RET
helper:
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "hi\n"
        .data
tbl:    .word 1, 2, main        ; reloc in data
        .align 8
buf8:   .space 8
        .bss
bss1:   .space 32
        .equ MSGLEN, 3
`

func mustAssemble(t *testing.T, src string) *binfmt.File {
	t.Helper()
	f, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return f
}

func decodeText(t *testing.T, f *binfmt.File) []isa.Instr {
	t.Helper()
	text := f.Section(binfmt.SecText)
	var out []isa.Instr
	for off := 0; off < len(text.Data); off += isa.InstrSize {
		in, err := isa.Decode(text.Data[off:])
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		out = append(out, in)
	}
	return out
}

func TestAssembleSample(t *testing.T) {
	f := mustAssemble(t, sample)
	ins := decodeText(t, f)
	if len(ins) != 12 {
		t.Fatalf("got %d instructions, want 12", len(ins))
	}
	if ins[0].Op != isa.OpPUSH || ins[0].Rs != isa.FP {
		t.Errorf("ins[0] = %v", ins[0])
	}
	if ins[3].Op != isa.OpMOVI || ins[3].Imm != 3 {
		t.Errorf("MOVI r2, MSGLEN: got %v (.equ not applied)", ins[3])
	}
	// Symbols.
	main := f.Symbol("main")
	if main == nil || main.Kind != binfmt.SymFunc || !main.Global {
		t.Errorf("main symbol: %+v", main)
	}
	if s := f.Symbol(".loop"); s == nil || s.Kind != binfmt.SymLabel {
		t.Errorf(".loop symbol: %+v", s)
	}
	if s := f.Symbol("msg"); s == nil || s.Kind != binfmt.SymString {
		t.Errorf("msg symbol: %+v", s)
	}
	if s := f.Symbol("tbl"); s == nil || s.Kind != binfmt.SymObject {
		t.Errorf("tbl symbol: %+v", s)
	}
	if s := f.Symbol("bss1"); s == nil || f.Sections[s.Section].Name != binfmt.SecBSS {
		t.Errorf("bss1 symbol: %+v", s)
	}
	// Relocs: MOVI msg, BLT .loop, CALL helper, .word main = 4.
	if len(f.Relocs) != 4 {
		t.Fatalf("got %d relocs, want 4: %+v", len(f.Relocs), f.Relocs)
	}
	// Data content.
	ro := f.Section(binfmt.SecROData)
	if string(ro.Data) != "hi\n\x00" {
		t.Errorf(".rodata = %q", ro.Data)
	}
	data := f.Section(binfmt.SecData)
	if len(data.Data) != 24 { // 3 words + align pad to 8 + 8 space
		t.Errorf(".data len = %d, want 24", len(data.Data))
	}
	if bss := f.Section(binfmt.SecBSS); bss.Size != 32 || len(bss.Data) != 0 {
		t.Errorf(".bss size=%d len=%d", bss.Size, len(bss.Data))
	}
}

func TestLayoutApplyExecutableImage(t *testing.T) {
	f := mustAssemble(t, sample)
	f.Layout()
	if err := f.ApplyRelocs(); err != nil {
		t.Fatalf("ApplyRelocs: %v", err)
	}
	ins := decodeText(t, f)
	msgAddr, _ := f.SymbolAddr("msg")
	if ins[2].Imm != msgAddr {
		t.Errorf("MOVI r1, msg: imm=%#x want %#x", ins[2].Imm, msgAddr)
	}
	loopAddr, _ := f.SymbolAddr(".loop")
	if ins[6].Imm != loopAddr {
		t.Errorf("BLT target=%#x want %#x", ins[6].Imm, loopAddr)
	}
	helperAddr, _ := f.SymbolAddr("helper")
	if ins[7].Imm != helperAddr {
		t.Errorf("CALL target=%#x want %#x", ins[7].Imm, helperAddr)
	}
}

func TestUndefinedSymbolBecomesExtern(t *testing.T) {
	f := mustAssemble(t, ".text\nmain:\nCALL external_fn\nRET\n")
	s := f.Symbol("external_fn")
	if s == nil || s.Defined() {
		t.Fatalf("external_fn: %+v", s)
	}
	if len(f.Relocs) != 1 {
		t.Fatalf("relocs: %+v", f.Relocs)
	}
}

func TestSubiPseudo(t *testing.T) {
	f := mustAssemble(t, ".text\nf:\nSUBI sp, sp, 16\nRET\n")
	ins := decodeText(t, f)
	if ins[0].Op != isa.OpADDI || int32(ins[0].Imm) != -16 {
		t.Errorf("SUBI -> %v", ins[0])
	}
}

func TestMemOperands(t *testing.T) {
	f := mustAssemble(t, ".text\nf:\nLOAD r1, [sp+4]\nSTORE [fp-8], r2\nLOADB r3, [r4]\nRET\n")
	ins := decodeText(t, f)
	if ins[0].Rs != isa.SP || int32(ins[0].Imm) != 4 {
		t.Errorf("LOAD: %v", ins[0])
	}
	if ins[1].Rd != isa.FP || int32(ins[1].Imm) != -8 || ins[1].Rs != isa.R2 {
		t.Errorf("STORE: %v", ins[1])
	}
	if ins[2].Rs != isa.R4 || ins[2].Imm != 0 {
		t.Errorf("LOADB: %v", ins[2])
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{"dup label", ".text\na:\nRET\na:\nRET\n", "redefined"},
		{"bad reg", ".text\nf:\nMOV r99, r1\nRET\n", "bad register"},
		{"bad mnemonic", ".text\nf:\nFROB r1\n", "unknown mnemonic"},
		{"wrong operand count", ".text\nf:\nADD r1, r2\n", "needs 3 operands"},
		{"instr in data", ".data\nMOVI r1, 2\n", "outside .text"},
		{"auth reserved", ".auth\n", "reserved"},
		{"nonzero bss", ".bss\nx: .byte 5\n", "non-zero data in .bss"},
		{"bad directive", ".text\n.frobnicate 2\n", "unknown directive"},
		{"bad string", `.data
s: .asciz hello
`, "string literal required"},
		{"bad escape", `.data
s: .asciz "a\q"
`, "unknown escape"},
		{"bad align", ".data\n.align 3\n", "power of two"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble("t.s", tt.src)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestCharLiteralsAndComments(t *testing.T) {
	f := mustAssemble(t, ".text\nf:\nMOVI r1, 'A' ; comment with ; and , inside\nMOVI r2, '\\n'\nRET\n")
	ins := decodeText(t, f)
	if ins[0].Imm != 'A' || ins[1].Imm != '\n' {
		t.Errorf("char literals: %v %v", ins[0], ins[1])
	}
}

func TestStringWithCommaAndSemicolon(t *testing.T) {
	f := mustAssemble(t, ".data\ns: .asciz \"a,b;c\"\n")
	if got := string(f.Section(binfmt.SecData).Data); got != "a,b;c\x00" {
		t.Errorf("data = %q", got)
	}
}

func TestLabelWithAddend(t *testing.T) {
	f := mustAssemble(t, ".text\nf:\nMOVI r1, buf+12\nRET\n.data\nbuf: .space 32\n")
	if len(f.Relocs) != 1 || f.Relocs[0].Addend != 12 {
		t.Errorf("relocs: %+v", f.Relocs)
	}
}
