// ascrun executes a SELF binary on the simulated kernel.
//
// Usage: ascrun [-key passphrase] [-permissive] [-stdin file] [-trace] exe
//
// With -key, the kernel enforces authenticated system calls (binaries
// must have been processed by ascinstall with the same key). With
// -permissive, all calls run unchecked (the baseline mode).
package main

import (
	"flag"
	"fmt"
	"os"

	"asc"
	"asc/internal/kernel"
	"asc/internal/sys"
)

func main() {
	key := flag.String("key", "", "MAC key passphrase (enables enforcement)")
	permissive := flag.Bool("permissive", false, "run without checking")
	stdinFile := flag.String("stdin", "", "file supplying standard input")
	trace := flag.Bool("trace", false, "print the system call trace")
	flag.Parse()
	if flag.NArg() != 1 || (*key == "" && !*permissive) {
		fmt.Fprintln(os.Stderr, "usage: ascrun (-key <passphrase> | -permissive) [-stdin file] [-trace] exe")
		os.Exit(2)
	}
	b, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	exe, err := asc.ReadBinary(b)
	if err != nil {
		fatal(err)
	}
	cfg := asc.SystemConfig{Permissive: *permissive}
	if !*permissive {
		cfg.Key = asc.NewKey(*key)
	}
	system, err := asc.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	var stdin string
	if *stdinFile != "" {
		sb, err := os.ReadFile(*stdinFile)
		if err != nil {
			fatal(err)
		}
		stdin = string(sb)
	}
	var proc *kernel.Process
	if *trace {
		p, err := system.Kernel.Spawn(exe, flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		p.Stdin = []byte(stdin)
		p.DoTrace = true
		if err := system.Kernel.Run(p, 4_000_000_000); err != nil {
			fatal(err)
		}
		proc = p
		os.Stdout.WriteString(p.Output())
		for _, e := range p.Trace {
			fmt.Fprintf(os.Stderr, "trace: %-14s site=%#x args=%v ret=%d\n",
				sys.Name(e.Num), e.Site, e.Args, int32(e.Ret))
		}
	} else {
		res, err := system.Exec(exe, flag.Arg(0), stdin)
		if err != nil {
			fatal(err)
		}
		os.Stdout.WriteString(res.Output)
		if res.Killed {
			fmt.Fprintf(os.Stderr, "ascrun: process killed by monitor: %s\n", res.Reason)
		}
		fmt.Fprintf(os.Stderr, "ascrun: exit %d, %d cycles, %d syscalls (%d verified)\n",
			res.ExitCode, res.Cycles, res.Syscalls, res.Verified)
		os.Exit(int(res.ExitCode) & 0x7f)
	}
	if proc != nil && proc.Killed {
		fmt.Fprintf(os.Stderr, "ascrun: process killed by monitor: %s\n", proc.KilledBy)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ascrun:", err)
	os.Exit(1)
}
