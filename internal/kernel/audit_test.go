package kernel

import "testing"

func auditFill(r *AuditRing, n int) {
	for i := 0; i < n; i++ {
		r.Append(Violation{PID: i})
	}
}

func auditPIDs(r *AuditRing) []int {
	ents := r.Entries()
	pids := make([]int, len(ents))
	for i, v := range ents {
		pids[i] = v.PID
	}
	return pids
}

// TestAuditRingShrinkWrapped: shrinking a ring that has already wrapped
// keeps the newest n records in order and counts the evictions as
// dropped.
func TestAuditRingShrinkWrapped(t *testing.T) {
	r := &AuditRing{}
	r.SetCapacity(4)
	auditFill(r, 7) // holds 3,4,5,6 wrapped (start mid-array), 3 dropped

	r.SetCapacity(2)
	if got := auditPIDs(r); len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Errorf("held = %v, want [5 6]", got)
	}
	if r.Dropped() != 5 {
		t.Errorf("dropped = %d, want 5 (3 overwrites + 2 evictions)", r.Dropped())
	}
	if r.Total() != 7 {
		t.Errorf("total = %d, want 7", r.Total())
	}

	// The shrunk ring keeps ringing correctly.
	r.Append(Violation{PID: 7})
	if got := auditPIDs(r); len(got) != 2 || got[0] != 6 || got[1] != 7 {
		t.Errorf("after append: held = %v, want [6 7]", got)
	}
	if last, ok := r.Last(); !ok || last.PID != 7 {
		t.Errorf("last = %+v, %v", last, ok)
	}
}

// TestAuditRingGrowWrapped: growing a wrapped ring preserves every held
// record and gives appends room before the next overwrite.
func TestAuditRingGrowWrapped(t *testing.T) {
	r := &AuditRing{}
	r.SetCapacity(3)
	auditFill(r, 5) // holds 2,3,4 wrapped

	r.SetCapacity(5)
	if got := auditPIDs(r); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("held = %v, want [2 3 4]", got)
	}
	dropped := r.Dropped()
	r.Append(Violation{PID: 5})
	r.Append(Violation{PID: 6})
	if r.Dropped() != dropped {
		t.Errorf("appends within the new capacity dropped records: %d -> %d", dropped, r.Dropped())
	}
	if got := auditPIDs(r); len(got) != 5 || got[0] != 2 || got[4] != 6 {
		t.Errorf("held = %v, want [2 3 4 5 6]", got)
	}
}
