package cluster

import (
	"errors"
	"testing"

	"asc/internal/ckpt"
)

// TestFenceReplayRejected: once an epoch is admitted to a live node,
// admitting it (or any older epoch) anywhere else is a replay.
func TestFenceReplayRejected(t *testing.T) {
	f := NewFence()
	f.Place("p", 1)
	f.Commit("p", 3, 2) // epoch 3 migrated to node 2

	if err := f.Admit("p", 3, 3); !errors.Is(err, ckpt.ErrEpoch) {
		t.Fatalf("replay to third node: err = %v, want ErrEpoch", err)
	}
	if err := f.Admit("p", 3, 2); !errors.Is(err, ckpt.ErrEpoch) {
		t.Fatalf("replay to same node: err = %v, want ErrEpoch", err)
	}
	if err := f.Admit("p", 2, 1); !errors.Is(err, ckpt.ErrEpoch) {
		t.Fatalf("older epoch with live owner: err = %v, want ErrEpoch", err)
	}
	if got := ckpt.Reason(f.Admit("p", 3, 3)); got != ckpt.ReasonEpoch {
		t.Fatalf("reason = %q, want %q", got, ckpt.ReasonEpoch)
	}
}

// TestFenceForwardProgress: strictly newer epochs are always fresh.
func TestFenceForwardProgress(t *testing.T) {
	f := NewFence()
	if err := f.Admit("p", 1, 1); err != nil {
		t.Fatalf("first admission: %v", err)
	}
	f.Commit("p", 1, 1)
	if err := f.Admit("p", 2, 2); err != nil {
		t.Fatalf("newer epoch: %v", err)
	}
}

// TestFenceCrashRecovery: after the owner is declared down, the fenced
// epoch (and older fallback epochs) become re-admittable — crash
// failover is not replay.
func TestFenceCrashRecovery(t *testing.T) {
	f := NewFence()
	f.Commit("p", 4, 2)
	f.NodeDown(2)
	if err := f.Admit("p", 4, 1); err != nil {
		t.Fatalf("re-admit after owner death: %v", err)
	}
	if err := f.Admit("p", 3, 1); err != nil {
		t.Fatalf("older fallback after owner death: %v", err)
	}
	// Once re-admitted to a live node, the window closes again.
	f.Commit("p", 4, 1)
	if err := f.Admit("p", 4, 3); !errors.Is(err, ckpt.ErrEpoch) {
		t.Fatalf("replay after recovery: err = %v, want ErrEpoch", err)
	}
}

// TestFenceExport: exporting fences the source, so the migration's own
// admission — and recovery if the transfer tears — is legitimate, while
// a second admission after commit is not.
func TestFenceExport(t *testing.T) {
	f := NewFence()
	f.Commit("p", 2, 1) // running at epoch 2 on node 1
	f.ExportFence("p")
	if err := f.Admit("p", 3, 2); err != nil {
		t.Fatalf("migration admission: %v", err)
	}
	f.Commit("p", 3, 2)
	if err := f.Admit("p", 3, 1); !errors.Is(err, ckpt.ErrEpoch) {
		t.Fatalf("bounce-back replay: err = %v, want ErrEpoch", err)
	}
}

// TestFenceNodeDownScopesToOwner: declaring one node down does not
// unfence processes owned elsewhere.
func TestFenceNodeDownScopesToOwner(t *testing.T) {
	f := NewFence()
	f.Commit("a", 1, 1)
	f.Commit("b", 1, 2)
	f.NodeDown(1)
	if err := f.Admit("a", 1, 2); err != nil {
		t.Fatalf("orphaned process: %v", err)
	}
	if err := f.Admit("b", 1, 3); !errors.Is(err, ckpt.ErrEpoch) {
		t.Fatalf("process on the healthy node: err = %v, want ErrEpoch", err)
	}
}
