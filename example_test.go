package asc_test

import (
	"fmt"
	"log"

	"asc"
)

// Example demonstrates the full pipeline: build a program, install it
// (static analysis + binary rewriting), and run it under kernel
// enforcement.
func Example() {
	exe, err := asc.BuildProgram("greet", `
        .text
        .global main
main:
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "every call verified\n"
`, asc.Linux)
	if err != nil {
		log.Fatal(err)
	}
	system, err := asc.NewSystem(asc.SystemConfig{Key: asc.NewKey("example")})
	if err != nil {
		log.Fatal(err)
	}
	hardened, _, report, err := system.Install(exe, "greet")
	if err != nil {
		log.Fatal(err)
	}
	res, err := system.Exec(hardened, "greet", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct calls in policy: %d\n", report.DistinctCalls)
	fmt.Printf("killed: %v\n", res.Killed)
	fmt.Print(res.Output)
	// Output:
	// distinct calls in policy: 2
	// killed: false
	// every call verified
}

// Example_patterns shows the §5.1 extension: an administrator-supplied
// pattern is enforced by the kernel on a path known only at run time.
func Example_patterns() {
	exe, err := asc.BuildProgram("logger", `
        .text
        .global main
main:
        SUBI sp, sp, 64
        MOV r1, sp
        CALL gets
        MOV r1, sp
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        ADDI sp, sp, 64
        MOVI r0, 0
        RET
`, asc.Linux)
	if err != nil {
		log.Fatal(err)
	}
	key := asc.NewKey("example")
	system, err := asc.NewSystem(asc.SystemConfig{Key: key})
	if err != nil {
		log.Fatal(err)
	}
	hardened, _, _, err := asc.Install(exe, "logger", asc.InstallOptions{
		Key:      key,
		Patterns: map[string][]asc.ArgPattern{"open": {{Arg: 0, Pattern: "/var/log/*"}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	good, _ := system.Exec(hardened, "logger", "/var/log/app.log\n")
	bad, _ := system.Exec(hardened, "logger", "/etc/passwd\n")
	fmt.Printf("in-pattern path killed: %v\n", good.Killed)
	fmt.Printf("escape attempt killed:  %v (%s)\n", bad.Killed, bad.Reason)
	// Output:
	// in-pattern path killed: false
	// escape attempt killed:  true (argument does not match authenticated pattern)
}
