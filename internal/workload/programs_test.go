package workload

import (
	"testing"

	"asc/internal/installer"
	"asc/internal/kernel"
	"asc/internal/libc"
	"asc/internal/systrace"
	"asc/internal/vfs"
)

// Table 1 targets: distinct system calls per program and OS.
var table1Targets = map[string]struct{ linux, openbsd int }{
	"bison":  {31, 31},
	"calc":   {54, 51},
	"screen": {67, 63},
	"tar":    {58, 57},
}

func TestDistinctCallCounts(t *testing.T) {
	for _, name := range Names() {
		for _, os := range []libc.OS{libc.Linux, libc.OpenBSD} {
			exe, err := Build(name, os)
			if err != nil {
				t.Fatalf("Build(%s, %v): %v", name, os, err)
			}
			pp, _, err := installer.GeneratePolicy(exe, name, os.String())
			if err != nil {
				t.Fatalf("GeneratePolicy(%s, %v): %v", name, os, err)
			}
			got := len(pp.DistinctSyscalls())
			want := table1Targets[name].linux
			if os == libc.OpenBSD {
				want = table1Targets[name].openbsd
			}
			if got != want {
				t.Errorf("%s/%v: %d distinct calls, want %d: %v",
					name, os, got, want, pp.DistinctNames())
			}
		}
	}
}

func TestProgramsRunToCompletion(t *testing.T) {
	for _, name := range Names() {
		exe, err := Build(name, libc.Linux)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		spec, err := Program(name, libc.Linux)
		if err != nil {
			t.Fatal(err)
		}
		fs := vfs.New()
		for _, d := range []string{"/tmp", "/etc", "/data", "/var/run"} {
			if err := fs.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		k, err := kernel.New(fs, nil, kernel.WithMode(kernel.Permissive))
		if err != nil {
			t.Fatal(err)
		}
		p, err := k.Spawn(exe, name)
		if err != nil {
			t.Fatal(err)
		}
		p.Stdin = []byte(spec.AllRareCommands())
		if err := k.Run(p, 500_000_000); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		if !p.Exited || p.Code != 0 {
			t.Errorf("%s: exited=%v code=%d", name, p.Exited, p.Code)
		}
	}
}

func TestAuthenticatedProgramsRunClean(t *testing.T) {
	key := []byte("0123456789abcdef")
	for _, name := range Names() {
		exe, err := Build(name, libc.Linux)
		if err != nil {
			t.Fatal(err)
		}
		out, _, _, err := installer.Install(exe, name, installer.Options{Key: key})
		if err != nil {
			t.Fatalf("Install(%s): %v", name, err)
		}
		spec, _ := Program(name, libc.Linux)
		fs := vfs.New()
		for _, d := range []string{"/tmp", "/etc", "/data", "/var/run"} {
			if err := fs.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		k, err := kernel.New(fs, key)
		if err != nil {
			t.Fatal(err)
		}
		p, err := k.Spawn(out, name)
		if err != nil {
			t.Fatal(err)
		}
		p.Stdin = []byte(spec.AllRareCommands())
		if err := k.Run(p, 500_000_000); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		if p.Killed {
			t.Errorf("%s: killed by monitor: %v (audit %v)", name, p.KilledBy, &k.Audit)
		}
	}
}

func TestTrainedPolicySmallerThanASC(t *testing.T) {
	// Reproduce the Table 1 Systrace effect on OpenBSD: training on the
	// common path only yields far fewer calls than static analysis.
	targets := map[string]int{"bison": 22, "calc": 24, "screen": 55}
	for name, want := range targets {
		exe, err := Build(name, libc.OpenBSD)
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := Program(name, libc.OpenBSD)
		pol, err := systrace.Train(exe, name, []systrace.Input{{Stdin: spec.TrainingInput()}},
			systrace.TrainConfig{Personality: kernel.OpenBSD})
		if err != nil {
			t.Fatalf("Train(%s): %v", name, err)
		}
		pol.GeneralizeFS()
		got := len(pol.ExpandedNames())
		if got != want {
			t.Errorf("%s: trained policy has %d calls, want %d: %v",
				name, got, want, pol.ExpandedNames())
		}
	}
}
