// Package vfs implements the in-memory Unix-like filesystem of the
// simulated platform.
//
// The kernel's file-related system calls (open, read, write, mkdir,
// unlink, readlink, ...) operate on this filesystem. It supports
// directories, regular files, hard links, and symbolic links; symlinks
// matter because Section 5.4 of the paper discusses file-name
// normalization as a defense against symlink races, and the kernel's
// normalization path exercises this package's resolution logic.
//
// An FS is safe for concurrent use by multiple goroutines (the SMP
// scheduler runs many guest processes against one filesystem): a
// read-write lock serializes tree mutation against lookups, and node
// contents are only reached through locked FS methods. Per-file handle
// state (the file offset) lives in the kernel's descriptor table, one
// per open handle, so concurrent readers of one file never share
// positions. Callers holding a *Node must treat it as an opaque handle
// and go through FS methods (ReadAt, WriteAt, InfoOf, NodeSize) for
// every access; Node.Kind is immutable after creation and may be read
// directly.
package vfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeKind distinguishes filesystem object types.
type NodeKind uint8

// Node kinds.
const (
	KindFile NodeKind = iota + 1
	KindDir
	KindSymlink
)

func (k NodeKind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindDir:
		return "dir"
	case KindSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Errors returned by filesystem operations. They deliberately mirror the
// kernel's errno set so the kernel can translate them mechanically.
var (
	ErrNotExist  = errors.New("vfs: no such file or directory")
	ErrExist     = errors.New("vfs: file exists")
	ErrNotDir    = errors.New("vfs: not a directory")
	ErrIsDir     = errors.New("vfs: is a directory")
	ErrNotEmpty  = errors.New("vfs: directory not empty")
	ErrLoop      = errors.New("vfs: too many levels of symbolic links")
	ErrInvalid   = errors.New("vfs: invalid argument")
	ErrNameLong  = errors.New("vfs: name too long")
	ErrPermitted = errors.New("vfs: operation not permitted")
)

// MaxSymlinkDepth bounds symlink resolution, mirroring ELOOP.
const MaxSymlinkDepth = 8

// MaxNameLen bounds a single path component.
const MaxNameLen = 255

// MaxFileSize bounds regular file sizes (the simulated disk quota);
// larger writes and truncates fail with ErrNoSpace.
const MaxFileSize = 16 << 20

// ErrNoSpace is returned when a write would exceed MaxFileSize.
var ErrNoSpace = errors.New("vfs: no space left on device")

// Node is a filesystem object. Hard links are represented by the same
// *Node appearing under several directory entries. All fields other than
// Kind (immutable after creation) are guarded by the owning FS's lock.
type Node struct {
	Kind   NodeKind
	Mode   uint32
	Data   []byte           // file contents
	Target string           // symlink target
	kids   map[string]*Node // directory entries
	nlink  int
	mtime  uint64
}

// Size returns the file size in bytes (0 for directories and symlinks).
// Unsynchronized; use FS.NodeSize under concurrency.
func (n *Node) Size() uint32 {
	if n.Kind == KindFile {
		return uint32(len(n.Data))
	}
	return 0
}

// Nlink returns the link count. Unsynchronized; use FS.InfoOf under
// concurrency.
func (n *Node) Nlink() int { return n.nlink }

// Mtime returns the logical modification time (a monotone counter).
// Unsynchronized; use FS.InfoOf under concurrency.
func (n *Node) Mtime() uint64 { return n.mtime }

// Info is a point-in-time metadata snapshot of one node, taken under the
// filesystem lock.
type Info struct {
	Kind  NodeKind
	Mode  uint32
	Size  uint32
	Nlink int
	Mtime uint64
}

// FS is an in-memory filesystem rooted at "/".
type FS struct {
	mu    sync.RWMutex
	root  *Node
	clock uint64
}

// New returns an empty filesystem containing only the root directory.
func New() *FS {
	return &FS{root: &Node{Kind: KindDir, Mode: 0o755, kids: map[string]*Node{}, nlink: 1}}
}

func (fs *FS) tick() uint64 {
	fs.clock++
	return fs.clock
}

// splitPath converts an absolute path into components, rejecting empty
// and over-long names. "." components are dropped here; ".." is kept for
// resolution (it must be applied after symlink expansion).
func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: path %q must be absolute", ErrInvalid, path)
	}
	var comps []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
			continue
		}
		if len(c) > MaxNameLen {
			return nil, ErrNameLong
		}
		comps = append(comps, c)
	}
	return comps, nil
}

// resolved is the result of a path walk.
type resolved struct {
	parent *Node  // directory containing the entry (nil only for "/")
	name   string // final component name ("" for "/")
	node   *Node  // the entry itself; nil if it does not exist
	canon  string // canonical path (symlinks resolved, ".." applied)
}

// walk resolves path; the caller must hold the lock (read or write). If
// followLast is true, a symlink as the final component is chased;
// otherwise it is returned as-is (lstat/unlink semantics). The final
// component may be absent (node == nil) if and only if its parent
// exists; any other missing component is an error.
func (fs *FS) walk(path string, followLast bool) (resolved, error) {
	comps, err := splitPath(path)
	if err != nil {
		return resolved{}, err
	}
	return fs.walkFrom(fs.root, []string{}, comps, followLast, 0)
}

func (fs *FS) walkFrom(dir *Node, canon, comps []string, followLast bool, depth int) (resolved, error) {
	if depth > MaxSymlinkDepth {
		return resolved{}, ErrLoop
	}
	cur := dir
	for i := 0; i < len(comps); i++ {
		c := comps[i]
		if cur.Kind != KindDir {
			return resolved{}, ErrNotDir
		}
		if c == ".." {
			if len(canon) > 0 {
				canon = canon[:len(canon)-1]
			}
			cur = fs.mustLookup(canon)
			continue
		}
		last := i == len(comps)-1
		child := cur.kids[c]
		if child == nil {
			if last {
				return resolved{parent: cur, name: c, canon: joinCanon(append(canon, c))}, nil
			}
			return resolved{}, ErrNotExist
		}
		if child.Kind == KindSymlink && (!last || followLast) {
			tcomps, err := splitTarget(child.Target, canon)
			if err != nil {
				return resolved{}, err
			}
			rest := append(tcomps, comps[i+1:]...)
			return fs.walkFrom(fs.root, nil, rest, followLast, depth+1)
		}
		canon = append(canon, c)
		if last {
			return resolved{parent: cur, name: c, node: child, canon: joinCanon(canon)}, nil
		}
		cur = child
	}
	// Path resolved to the starting directory itself ("/", or all dots).
	return resolved{node: cur, canon: joinCanon(canon)}, nil
}

// splitTarget expands a symlink target into absolute components: relative
// targets are interpreted against the directory holding the link.
func splitTarget(target string, canon []string) ([]string, error) {
	if target == "" {
		return nil, ErrInvalid
	}
	if target[0] == '/' {
		return splitPath(target)
	}
	base := append([]string{}, canon...)
	rel, err := splitPath("/" + target)
	if err != nil {
		return nil, err
	}
	return append(base, rel...), nil
}

// mustLookup returns the directory at the canonical component path; the
// components are known-good (they were just walked).
func (fs *FS) mustLookup(canon []string) *Node {
	cur := fs.root
	for _, c := range canon {
		next := cur.kids[c]
		if next == nil {
			return cur
		}
		cur = next
	}
	return cur
}

func joinCanon(comps []string) string {
	if len(comps) == 0 {
		return "/"
	}
	return "/" + strings.Join(comps, "/")
}

// Normalize resolves all symlinks and dot components and returns the
// canonical absolute path. The named object must exist. This implements
// the file-name normalization of paper Section 5.4.
func (fs *FS) Normalize(path string) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	r, err := fs.walk(path, true)
	if err != nil {
		return "", err
	}
	if r.node == nil {
		return "", ErrNotExist
	}
	return r.canon, nil
}

// lookup resolves path to an existing node, following symlinks; the
// caller must hold the lock.
func (fs *FS) lookup(path string) (*Node, error) {
	r, err := fs.walk(path, true)
	if err != nil {
		return nil, err
	}
	if r.node == nil {
		return nil, ErrNotExist
	}
	return r.node, nil
}

// Lookup returns the node at path, following symlinks.
func (fs *FS) Lookup(path string) (*Node, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.lookup(path)
}

// Lstat returns the node at path without following a final symlink.
func (fs *FS) Lstat(path string) (*Node, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.lstat(path)
}

func (fs *FS) lstat(path string) (*Node, error) {
	r, err := fs.walk(path, false)
	if err != nil {
		return nil, err
	}
	if r.node == nil {
		return nil, ErrNotExist
	}
	return r.node, nil
}

// infoOf snapshots node metadata; the caller must hold the lock.
func infoOf(n *Node) Info {
	return Info{Kind: n.Kind, Mode: n.Mode, Size: n.Size(), Nlink: n.nlink, Mtime: n.mtime}
}

// InfoOf returns a metadata snapshot of an open node.
func (fs *FS) InfoOf(n *Node) Info {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return infoOf(n)
}

// NodeSize returns the current size of an open node.
func (fs *FS) NodeSize(n *Node) uint32 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return n.Size()
}

// Stat resolves path and returns a metadata snapshot in one locked
// operation. With follow false a final symlink is not chased.
func (fs *FS) Stat(path string, follow bool) (Info, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n *Node
	var err error
	if follow {
		n, err = fs.lookup(path)
	} else {
		n, err = fs.lstat(path)
	}
	if err != nil {
		return Info{}, err
	}
	return infoOf(n), nil
}

// Create creates (or truncates, if trunc) a regular file and returns its
// node. Parent directories must exist.
func (fs *FS) Create(path string, mode uint32, trunc bool) (*Node, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.create(path, mode, trunc)
}

func (fs *FS) create(path string, mode uint32, trunc bool) (*Node, error) {
	r, err := fs.walk(path, true)
	if err != nil {
		return nil, err
	}
	if r.node != nil {
		if r.node.Kind == KindDir {
			return nil, ErrIsDir
		}
		if trunc {
			r.node.Data = nil
			r.node.mtime = fs.tick()
		}
		return r.node, nil
	}
	if r.parent == nil {
		return nil, ErrInvalid
	}
	n := &Node{Kind: KindFile, Mode: mode, nlink: 1, mtime: fs.tick()}
	r.parent.kids[r.name] = n
	return n, nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mkdir(path, mode)
}

func (fs *FS) mkdir(path string, mode uint32) error {
	r, err := fs.walk(path, true)
	if err != nil {
		return err
	}
	if r.node != nil {
		return ErrExist
	}
	if r.parent == nil {
		return ErrExist // "/"
	}
	r.parent.kids[r.name] = &Node{Kind: KindDir, Mode: mode, kids: map[string]*Node{}, nlink: 1, mtime: fs.tick()}
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(path string, mode uint32) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cur := ""
	for _, c := range comps {
		cur += "/" + c
		if err := fs.mkdir(cur, mode); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Symlink creates a symbolic link at linkPath pointing to target.
func (fs *FS) Symlink(target, linkPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	r, err := fs.walk(linkPath, false)
	if err != nil {
		return err
	}
	if r.node != nil {
		return ErrExist
	}
	if r.parent == nil {
		return ErrExist
	}
	r.parent.kids[r.name] = &Node{Kind: KindSymlink, Mode: 0o777, Target: target, nlink: 1, mtime: fs.tick()}
	return nil
}

// Readlink returns the target of a symlink.
func (fs *FS) Readlink(path string) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lstat(path)
	if err != nil {
		return "", err
	}
	if n.Kind != KindSymlink {
		return "", ErrInvalid
	}
	return n.Target, nil
}

// Link creates a hard link newPath referring to the file at oldPath.
func (fs *FS) Link(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(oldPath)
	if err != nil {
		return err
	}
	if n.Kind == KindDir {
		return ErrPermitted
	}
	r, err := fs.walk(newPath, false)
	if err != nil {
		return err
	}
	if r.node != nil {
		return ErrExist
	}
	if r.parent == nil {
		return ErrExist
	}
	r.parent.kids[r.name] = n
	n.nlink++
	return nil
}

// Unlink removes a file or symlink (not a directory).
func (fs *FS) Unlink(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	r, err := fs.walk(path, false)
	if err != nil {
		return err
	}
	if r.node == nil {
		return ErrNotExist
	}
	if r.node.Kind == KindDir {
		return ErrIsDir
	}
	delete(r.parent.kids, r.name)
	r.node.nlink--
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	r, err := fs.walk(path, false)
	if err != nil {
		return err
	}
	if r.node == nil {
		return ErrNotExist
	}
	if r.node.Kind != KindDir {
		return ErrNotDir
	}
	if len(r.node.kids) > 0 {
		return ErrNotEmpty
	}
	if r.parent == nil {
		return ErrPermitted // cannot remove "/"
	}
	delete(r.parent.kids, r.name)
	return nil
}

// Rename moves oldPath to newPath, replacing a non-directory target.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ro, err := fs.walk(oldPath, false)
	if err != nil {
		return err
	}
	if ro.node == nil {
		return ErrNotExist
	}
	rn, err := fs.walk(newPath, false)
	if err != nil {
		return err
	}
	if rn.parent == nil {
		return ErrExist
	}
	if rn.node != nil {
		if rn.node.Kind == KindDir {
			return ErrIsDir
		}
		rn.node.nlink--
	}
	rn.parent.kids[rn.name] = ro.node
	delete(ro.parent.kids, ro.name)
	ro.node.mtime = fs.tick()
	return nil
}

// Chmod sets the mode bits of the node at path.
func (fs *FS) Chmod(path string, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(path)
	if err != nil {
		return err
	}
	n.Mode = mode & 0o7777
	return nil
}

// Truncate resizes the file at path.
func (fs *FS) Truncate(path string, size uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(path)
	if err != nil {
		return err
	}
	return fs.truncateNode(n, size)
}

// TruncateNode resizes an open file node.
func (fs *FS) TruncateNode(n *Node, size uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.truncateNode(n, size)
}

func (fs *FS) truncateNode(n *Node, size uint32) error {
	if n.Kind != KindFile {
		return ErrIsDir
	}
	if size > MaxFileSize {
		return ErrNoSpace
	}
	if int(size) <= len(n.Data) {
		n.Data = n.Data[:size]
	} else {
		n.Data = append(n.Data, make([]byte, int(size)-len(n.Data))...)
	}
	n.mtime = fs.tick()
	return nil
}

// WriteAt writes b into the file node at the given offset, growing it as
// needed, and returns the number of bytes written.
func (fs *FS) WriteAt(n *Node, off uint32, b []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n.Kind != KindFile {
		return 0, ErrIsDir
	}
	end := int(off) + len(b)
	if end > MaxFileSize || off > MaxFileSize {
		return 0, ErrNoSpace
	}
	if end > len(n.Data) {
		n.Data = append(n.Data, make([]byte, end-len(n.Data))...)
	}
	copy(n.Data[off:end], b)
	n.mtime = fs.tick()
	return len(b), nil
}

// Append atomically appends b to the end of the file node and returns
// the new size. The size read and the write happen under one lock, so
// concurrent readers (a log tailer) either see none or all of b —
// never a torn suffix.
func (fs *FS) Append(n *Node, b []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n.Kind != KindFile {
		return 0, ErrIsDir
	}
	if len(n.Data)+len(b) > MaxFileSize {
		return 0, ErrNoSpace
	}
	n.Data = append(n.Data, b...)
	n.mtime = fs.tick()
	return len(n.Data), nil
}

// ReadAt reads up to len(b) bytes from the file at offset off.
func (fs *FS) ReadAt(n *Node, off uint32, b []byte) (int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if n.Kind != KindFile {
		return 0, ErrIsDir
	}
	if int(off) >= len(n.Data) {
		return 0, nil
	}
	return copy(b, n.Data[off:]), nil
}

// ReadDir returns the sorted names of entries in the directory at path.
func (fs *FS) ReadDir(path string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.Kind != KindDir {
		return nil, ErrNotDir
	}
	names := make([]string, 0, len(n.kids))
	for name := range n.kids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// WriteFile creates path (truncating any existing file) with contents b.
func (fs *FS) WriteFile(path string, b []byte, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.create(path, mode, true)
	if err != nil {
		return err
	}
	n.Data = append([]byte(nil), b...)
	n.mtime = fs.tick()
	return nil
}

// ReadFile returns a copy of the file contents at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.Kind != KindFile {
		return nil, ErrIsDir
	}
	return append([]byte(nil), n.Data...), nil
}

// Exists reports whether path resolves to an existing object.
func (fs *FS) Exists(path string) bool {
	_, err := fs.Lookup(path)
	return err == nil
}
