package installer

import (
	"encoding/binary"
	"strings"
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/cfg"
	"asc/internal/isa"
	"asc/internal/libc"
	"asc/internal/linker"
	"asc/internal/mac"
	"asc/internal/policy"
	"asc/internal/sys"
	"asc/internal/vm"
)

var testKey = []byte("0123456789abcdef")

func linkProgram(t *testing.T, src string, os libc.OS) *binfmt.File {
	t.Helper()
	main, err := asm.Assemble("main.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	lib, err := libc.Objects(os)
	if err != nil {
		t.Fatalf("libc: %v", err)
	}
	exe, err := linker.Link([]*binfmt.File{main}, lib)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return exe
}

const helloSrc = `
        .text
        .global main
main:
        MOVI r1, msg
        CALL puts
        CALL getpid
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "hello\n"
`

func TestOptimizeInlinesAndRemovesStubs(t *testing.T) {
	exe := linkProgram(t, helloSrc, libc.Linux)
	opt, err := Optimize(exe)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	prog, err := cfg.Analyze(opt)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// The write stub was inlined into puts; getpid into main; the exit
	// call is inline in _start already. Stub functions are gone.
	for _, gone := range []string{"write", "getpid"} {
		if prog.FuncNamed(gone) != nil {
			t.Errorf("stub %q still present after inlining", gone)
		}
	}
	// Sites live in their callers now.
	var inPuts, inMain int
	for _, s := range prog.SyscallSites() {
		switch s.Block.Func.Name {
		case "puts":
			inPuts++
		case "main":
			inMain++
		}
	}
	if inPuts != 1 || inMain != 1 {
		t.Errorf("sites: puts=%d main=%d, want 1 and 1", inPuts, inMain)
	}
}

// miniKernel lets optimized binaries run without the full kernel.
type miniKernel struct {
	out []byte
}

func (k *miniKernel) Trap(c *vm.CPU, site uint32, authed bool) (uint32, bool, error) {
	switch uint16(c.Regs[isa.R0]) {
	case sys.SysExit:
		return 0, true, nil
	case sys.SysWrite:
		b, err := c.Mem.KernelRead(c.Regs[isa.R2], c.Regs[isa.R3])
		if err != nil {
			return 0, false, err
		}
		k.out = append(k.out, b...)
		return c.Regs[isa.R3], false, nil
	default:
		return 0, false, nil
	}
}

func run(t *testing.T, exe *binfmt.File) string {
	t.Helper()
	base, img, err := exe.Image()
	if err != nil {
		t.Fatalf("Image: %v", err)
	}
	mem := vm.NewMemory(binfmt.TextBase, 1<<20)
	if err := mem.KernelWrite(base, img); err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, s := range exe.Sections {
		if s.Size > 0 {
			mem.Map(vm.Segment{Name: s.Name, Start: s.Addr, End: s.End(), Perms: s.Flags})
		}
	}
	top := mem.Limit()
	mem.Map(vm.Segment{Name: "stack", Start: top - 65536, End: top, Perms: vm.PermRead | vm.PermWrite | vm.PermExec})
	k := &miniKernel{}
	c := vm.New(mem, k)
	c.PC = exe.Entry
	c.Regs[isa.SP] = top
	if err := c.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return string(k.out)
}

func TestOptimizedBinaryStillRuns(t *testing.T) {
	exe := linkProgram(t, helloSrc, libc.Linux)
	if got := run(t, exe); got != "hello\n" {
		t.Fatalf("original output = %q", got)
	}
	opt, err := Optimize(exe)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if got := run(t, opt); got != "hello\n" {
		t.Errorf("optimized output = %q", got)
	}
}

func install(t *testing.T, src string, opts Options) (*binfmt.File, *policy.ProgramPolicy, *Report) {
	t.Helper()
	exe := linkProgram(t, src, libc.Linux)
	if opts.Key == nil {
		opts.Key = testKey
	}
	out, pp, rep, err := Install(exe, "test", opts)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	return out, pp, rep
}

const openSrc = `
        .text
        .global main
main:
        MOVI r1, path
        MOVI r2, 5
        MOVI r3, 0
        CALL open
        MOVI r0, 0
        RET
        .rodata
path:   .asciz "/dev/console"
`

func TestInstallBasics(t *testing.T) {
	out, pp, rep := install(t, openSrc, Options{})
	if !out.Authenticated || out.Relocatable || len(out.Relocs) != 0 {
		t.Errorf("flags: authenticated=%v relocatable=%v relocs=%d",
			out.Authenticated, out.Relocatable, len(out.Relocs))
	}
	prog, err := cfg.Analyze(out)
	if err != nil {
		t.Fatalf("Analyze output: %v", err)
	}
	// Every site is authenticated; none are plain SYSCALL.
	sites := prog.SyscallSites()
	if len(sites) != 2 { // open (in main) + exit (in _start)
		t.Fatalf("got %d sites: %+v", len(sites), sites)
	}
	for _, s := range sites {
		if !s.Authed {
			t.Errorf("site %#x (%s) not authenticated", s.Addr, sys.Name(s.Num))
		}
	}
	if rep.Sites != 2 || rep.DistinctCalls != 2 {
		t.Errorf("report: %+v", rep)
	}
	if len(pp.Sites) != 2 {
		t.Errorf("policy has %d sites", len(pp.Sites))
	}
	if auth := out.Section(binfmt.SecAuth); auth == nil || auth.Size == 0 {
		t.Error(".auth section empty")
	}
}

// decodeRecordFor finds the site's preamble and parses the auth record.
func decodeRecordFor(t *testing.T, out *binfmt.File, siteAddr uint32) policy.AuthRecord {
	t.Helper()
	text := out.Section(binfmt.SecText)
	pre, err := isa.Decode(text.Data[siteAddr-isa.InstrSize-text.Addr:])
	if err != nil || pre.Op != isa.OpMOVI || pre.Rd != isa.R6 {
		t.Fatalf("no preamble at %#x: %v %v", siteAddr-isa.InstrSize, pre, err)
	}
	auth := out.Section(binfmt.SecAuth)
	rec, err := policy.DecodeAuthRecord(auth.Data[pre.Imm-auth.Addr:])
	if err != nil {
		t.Fatalf("DecodeAuthRecord: %v", err)
	}
	return rec
}

func TestInstallRecordsVerify(t *testing.T) {
	out, pp, _ := install(t, openSrc, Options{})
	key, err := mac.New(testKey)
	if err != nil {
		t.Fatal(err)
	}
	auth := out.Section(binfmt.SecAuth)
	for _, sp := range pp.Sites {
		rec := decodeRecordFor(t, out, sp.Site)
		if rec.BlockID != sp.BlockID {
			t.Errorf("%s: record block %d != policy block %d", sp.Name, rec.BlockID, sp.BlockID)
		}
		if !rec.Desc.CallSite() || !rec.Desc.ControlFlow() {
			t.Errorf("%s: descriptor %#x missing base bits", sp.Name, rec.Desc)
		}
		// Verify the predecessor-set AS from the image.
		psOff := rec.PredSetPtr - auth.Addr
		psLen := binary.LittleEndian.Uint32(auth.Data[psOff-20:])
		var psMAC mac.Tag
		copy(psMAC[:], auth.Data[psOff-16:psOff])
		if ok, _ := key.Verify(auth.Data[psOff:psOff+psLen], psMAC); !ok {
			t.Errorf("%s: predecessor-set AS does not verify", sp.Name)
		}
		ids, err := policy.DecodePredSet(auth.Data[psOff : psOff+psLen])
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(sp.Preds) {
			t.Errorf("%s: pred set %v != policy %v", sp.Name, ids, sp.Preds)
		}
		// Rebuild the encoded call as the kernel would for a compliant
		// execution and check the call MAC.
		var encArgs []policy.EncodedArg
		for i, a := range sp.Args {
			switch a.Class {
			case policy.ClassString:
				strAddr := findASAddr(t, out, key, a.Str)
				nul := append([]byte(a.Str), 0)
				tag, _ := key.Sum(nul)
				encArgs = append(encArgs, policy.EncodedArg{
					Index: i, IsString: true, Value: strAddr, Len: uint32(len(nul)), MAC: tag,
				})
			case policy.ClassImmediate:
				encArgs = append(encArgs, policy.EncodedArg{Index: i, Value: a.Values[0]})
			}
		}
		psTag, _ := key.Sum(auth.Data[psOff : psOff+psLen])
		enc := policy.CallEncoding{
			Num:     sp.Num,
			Site:    sp.Site,
			Desc:    rec.Desc,
			BlockID: rec.BlockID,
			Args:    encArgs,
			PredSet: &policy.ASView{Addr: rec.PredSetPtr, Len: psLen, MAC: psTag},
			LbPtr:   rec.LbPtr,
		}
		got, _ := enc.Sum(key)
		if !got.Equal(rec.CallMAC) {
			t.Errorf("%s: call MAC mismatch", sp.Name)
		}
	}
}

// findASAddr locates the AS copy of contents in .auth.
func findASAddr(t *testing.T, out *binfmt.File, key *mac.Keyed, contents string) uint32 {
	t.Helper()
	auth := out.Section(binfmt.SecAuth)
	want := append([]byte(contents), 0)
	for off := 0; off+policy.ASHeaderSize+len(want) <= len(auth.Data); off++ {
		l := binary.LittleEndian.Uint32(auth.Data[off:])
		if int(l) != len(want) {
			continue
		}
		strOff := off + policy.ASHeaderSize
		if strOff+int(l) > len(auth.Data) || string(auth.Data[strOff:strOff+int(l)]) != string(want) {
			continue
		}
		var tag mac.Tag
		copy(tag[:], auth.Data[off+4:])
		if ok, _ := key.Verify(want, tag); ok {
			return auth.Addr + uint32(strOff)
		}
	}
	t.Fatalf("AS for %q not found in .auth", contents)
	return 0
}

func TestStringArgumentRepointed(t *testing.T) {
	out, pp, _ := install(t, openSrc, Options{})
	key, _ := mac.New(testKey)
	asAddr := findASAddr(t, out, key, "/dev/console")

	// The open policy's first arg is a string.
	var openPol *policy.SitePolicy
	for _, sp := range pp.Sites {
		if sp.Name == "open" {
			openPol = sp
		}
	}
	if openPol == nil {
		t.Fatal("no open policy")
	}
	if openPol.Args[0].Class != policy.ClassString || openPol.Args[0].Str != "/dev/console" {
		t.Fatalf("open arg0 policy: %+v", openPol.Args[0])
	}
	// The defining MOVI in text now holds the AS address.
	text := out.Section(binfmt.SecText)
	found := false
	for off := 0; off+isa.InstrSize <= len(text.Data); off += isa.InstrSize {
		in, err := isa.Decode(text.Data[off:])
		if err != nil {
			continue
		}
		if in.Op == isa.OpMOVI && in.Rd == isa.R1 && in.Imm == asAddr {
			found = true
		}
	}
	if !found {
		t.Error("no MOVI r1 repointed at the AS copy")
	}
}

func TestUnknownNumberSiteReverted(t *testing.T) {
	src := `
        .text
        .global main
main:
        LOAD r0, [sp+0]
        SYSCALL
        MOVI r0, 0
        RET
`
	out, _, rep := install(t, src, Options{})
	if rep.UnknownSites != 1 {
		t.Errorf("UnknownSites = %d, want 1", rep.UnknownSites)
	}
	hasWarning := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "unknown number") || strings.Contains(w, "statically unknown") {
			hasWarning = true
		}
	}
	if !hasWarning {
		t.Errorf("no warning about unknown number: %v", rep.Warnings)
	}
	prog, err := cfg.Analyze(out)
	if err != nil {
		t.Fatal(err)
	}
	var plain int
	for _, s := range prog.SyscallSites() {
		if !s.Authed {
			plain++
		}
	}
	if plain != 1 {
		t.Errorf("plain SYSCALL sites = %d, want 1 (reverted)", plain)
	}
}

func TestFrankensteinUniqueIDs(t *testing.T) {
	_, pp, _ := install(t, openSrc, Options{ProgramID: 7})
	for _, sp := range pp.Sites {
		if sp.BlockID>>16 != 7 {
			t.Errorf("%s block ID %#x lacks program tag", sp.Name, sp.BlockID)
		}
		for _, p := range sp.Preds {
			if p != 0 && p>>16 != 7 {
				t.Errorf("%s pred %#x lacks program tag", sp.Name, p)
			}
		}
	}
	exe := linkProgram(t, openSrc, libc.Linux)
	if _, _, _, err := Install(exe, "x", Options{Key: testKey, ProgramID: 1 << 16}); err == nil {
		t.Error("out-of-range program ID accepted")
	}
}

func TestInstallRequiresRelocatable(t *testing.T) {
	out, _, _ := install(t, openSrc, Options{})
	if _, _, _, err := Install(out, "x", Options{Key: testKey}); err == nil {
		t.Error("installing a non-relocatable binary should fail")
	}
}

func TestGeneratePolicyOpenBSDGaps(t *testing.T) {
	src := `
        .text
        .global main
main:
        MOVI r1, 3
        CALL close
        MOVI r0, 0
        RET
`
	main, err := asm.Assemble("main.s", src)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := libc.Objects(libc.OpenBSD)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{main}, lib)
	if err != nil {
		t.Fatal(err)
	}
	pp, rep, err := GeneratePolicy(exe, "closer", "openbsd")
	if err != nil {
		t.Fatalf("GeneratePolicy: %v", err)
	}
	// close must be absent from the policy; a warning must be present.
	for _, name := range pp.DistinctNames() {
		if name == "close" {
			t.Error("close in policy despite undecodable stub")
		}
	}
	if len(rep.Warnings) == 0 {
		t.Error("no disassembly warning reported")
	}
}

func TestReportArgStatistics(t *testing.T) {
	// open: path(String) + 2 immediates; read: fd unknown + bufout + len.
	src := `
        .text
        .global main
main:
        MOVI r1, path
        MOVI r2, 5
        MOVI r3, 0
        CALL open
        MOV r1, r0              ; fd from open: unknown statically
        MOVI r2, buf
        MOVI r3, 64
        CALL read
        MOVI r0, 0
        RET
        .rodata
path:   .asciz "/etc/passwd"
        .bss
buf:    .space 64
`
	_, pp, rep := install(t, src, Options{})
	// Sites: open, read, exit. Args: 3 + 3 + 1 = 7.
	if rep.Sites != 3 || rep.TotalArgs != 7 {
		t.Errorf("sites=%d args=%d, want 3 and 7", rep.Sites, rep.TotalArgs)
	}
	// o/p: read's buffer. auth: open path + flags + mode, read len, exit
	// code (from _start's MOVI r0,1... exit arg is r1=main's return: MOV
	// r1, r0 after CALL main -> unknown). So auth = path, 5, 0, 64 = 4.
	if rep.OutputArgs != 1 {
		t.Errorf("o/p = %d, want 1", rep.OutputArgs)
	}
	if rep.AuthArgs != 4 {
		t.Errorf("auth = %d, want 4", rep.AuthArgs)
	}
	// fds: read's fd argument is not constant.
	if rep.FDArgs != 1 {
		t.Errorf("fds = %d, want 1", rep.FDArgs)
	}
	_ = pp
}
