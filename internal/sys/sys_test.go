package sys

import "testing"

func TestTableConsistency(t *testing.T) {
	all := All()
	if len(all) != Count() {
		t.Fatalf("All() returned %d, Count() = %d", len(all), Count())
	}
	seen := make(map[uint16]bool)
	for _, s := range all {
		if s.Num == 0 || s.Num > MaxSyscall {
			t.Errorf("%s: number %d out of range", s.Name, s.Num)
		}
		if seen[s.Num] {
			t.Errorf("duplicate number %d", s.Num)
		}
		seen[s.Num] = true
		if len(s.Args) > MaxArgs {
			t.Errorf("%s: %d args exceeds MaxArgs", s.Name, len(s.Args))
		}
		if s.Name == "" {
			t.Errorf("syscall %d has no name", s.Num)
		}
	}
	// The evaluation requires enough distinct syscalls for the `screen`
	// policy (67 distinct calls in Table 1).
	if Count() < 68 {
		t.Errorf("only %d syscalls defined; Table 1 needs at least 68", Count())
	}
}

func TestLookup(t *testing.T) {
	s, ok := Lookup(SysOpen)
	if !ok || s.Name != "open" || !s.ReturnFD {
		t.Errorf("Lookup(open) = %+v, %v", s, ok)
	}
	if s.Args[0] != ArgPath {
		t.Errorf("open arg0 = %v, want path", s.Args[0])
	}
	if _, ok := Lookup(0); ok {
		t.Error("Lookup(0) should fail")
	}
	if _, ok := Lookup(MaxSyscall + 1); ok {
		t.Error("Lookup(MaxSyscall+1) should fail")
	}
	byName, ok := LookupName("write")
	if !ok || byName.Num != SysWrite {
		t.Errorf("LookupName(write) = %+v, %v", byName, ok)
	}
	if _, ok := LookupName("bogus"); ok {
		t.Error("LookupName(bogus) should fail")
	}
}

func TestName(t *testing.T) {
	if Name(SysGetpid) != "getpid" {
		t.Errorf("Name(getpid) = %q", Name(SysGetpid))
	}
	if Name(999) != "sys_999" {
		t.Errorf("Name(999) = %q", Name(999))
	}
}

func TestArgClass(t *testing.T) {
	if !ArgBufOut.IsOutput() || !ArgStructOut.IsOutput() || ArgBufIn.IsOutput() {
		t.Error("IsOutput misclassifies")
	}
	if !ArgPath.IsString() || !ArgStr.IsString() || ArgInt.IsString() {
		t.Error("IsString misclassifies")
	}
}

func TestAliasesResolve(t *testing.T) {
	for _, n := range append(append([]string(nil), FSRead...), FSWrite...) {
		if _, ok := LookupName(n); !ok {
			t.Errorf("alias member %q is not a defined syscall", n)
		}
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Name = "mutated"
	if b := All(); b[0].Name == "mutated" {
		t.Error("All() exposes internal state")
	}
}
