package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCoversAllIndices(t *testing.T) {
	for _, w := range []int{0, 1, 2, 4, 8, 100} {
		var mu sync.Mutex
		seen := make(map[int]int)
		Pool{Workers: w}.Do(57, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		if len(seen) != 57 {
			t.Fatalf("w=%d: covered %d indices, want 57", w, len(seen))
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("w=%d: index %d ran %d times", w, i, n)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	ran := false
	Pool{Workers: 4}.Do(0, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
}

func TestDoConcurrency(t *testing.T) {
	// With 4 workers and jobs that wait for each other, at least two
	// invocations must overlap; a serial loop would deadlock, so use a
	// rendezvous with a fallback counter instead.
	var running atomic.Int32
	var peak atomic.Int32
	Pool{Workers: 4}.Do(8, func(int) {
		cur := running.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		running.Add(-1)
	})
	// Peak concurrency is timing-dependent; just assert nothing exceeded
	// the worker bound.
	if p := peak.Load(); p > 4 {
		t.Fatalf("peak concurrency %d exceeds 4 workers", p)
	}
}

func TestMakespan(t *testing.T) {
	cases := []struct {
		cycles []uint64
		w      int
		want   uint64
	}{
		{nil, 4, 0},
		{[]uint64{10, 10, 10, 10}, 1, 40},
		{[]uint64{10, 10, 10, 10}, 2, 20},
		{[]uint64{10, 10, 10, 10}, 4, 10},
		{[]uint64{10, 10, 10, 10}, 8, 10}, // w clamps to len
		{[]uint64{10, 20, 30, 40}, 2, 60}, // lanes: 10+30, 20+40
		{[]uint64{100, 1, 1, 1}, 4, 100},  // dominated by slowest
		{[]uint64{5}, 0, 5},               // w clamps up to 1
	}
	for _, tc := range cases {
		if got := Makespan(tc.cycles, tc.w); got != tc.want {
			t.Errorf("Makespan(%v, %d) = %d, want %d", tc.cycles, tc.w, got, tc.want)
		}
	}
}

func TestMakespanSpeedupHomogeneous(t *testing.T) {
	// 8 identical processes: the modeled speedup at w workers is exactly
	// w for w in {1,2,4,8} — the property BENCH_smp.json reports.
	cycles := make([]uint64, 8)
	for i := range cycles {
		cycles[i] = 1_000_000
	}
	serial := Makespan(cycles, 1)
	for _, w := range []int{1, 2, 4, 8} {
		got := Makespan(cycles, w)
		if want := serial / uint64(w); got != want {
			t.Errorf("w=%d: makespan %d, want %d", w, got, want)
		}
	}
}
