// net.go measures the virtual network: an echo+KV server and N
// load-generation clients exchanging verified traffic on the loopback
// network, swept across client counts, worker counts, and enforcement
// configurations. The table behind BENCH_net.json.
package bench

import (
	"fmt"

	"asc/internal/core"
	"asc/internal/kernel"
	anet "asc/internal/net"
	"asc/internal/sched"
	"asc/internal/workload"
)

// NetClients is the client-count sweep measured for BENCH_net.json.
var NetClients = []int{1, 2, 4, 8}

// NetWorkers is the scheduler-worker sweep for the enforced+cached
// configuration.
var NetWorkers = []int{1, 2, 4, 8}

// NetPoint is one (clients, workers) measurement of the enforced,
// cache-enabled fleet.
type NetPoint struct {
	Workers int
	// MakespanCycles is the modeled fleet completion time
	// (sched.Makespan over the deterministic per-process counts).
	MakespanCycles uint64
	Speedup        float64
	EfficiencyPct  float64
	// VerifiedPerMCycle is fleet-wide verified calls per million
	// makespan cycles.
	VerifiedPerMCycle float64
}

// NetRow is one client count's sweep.
type NetRow struct {
	Clients  int
	Requests uint64 // requests served fleet-wide
	Bytes    uint64 // request payload bytes moved client→server
	// Fleet cycle totals (sum of per-process counts) under the three
	// enforcement configurations: plain binaries on a permissive
	// kernel, authenticated binaries enforced, and enforced with the
	// verification cache.
	CyclesOff         uint64
	CyclesOn          uint64
	CyclesCached      uint64
	OverheadPct       float64 // on vs off
	CachedOverheadPct float64 // cached vs off
	Verified          uint64  // verified calls fleet-wide (enforced)
	Points            []NetPoint
}

// NetData is the full network sweep.
type NetData struct {
	Iters int
	Rows  []NetRow
	// Shard is the sharded-fleet arm: replicas × clients × workers,
	// plus the 10k-client scale cell as the final row.
	Shard []ShardRow
}

// ShardReplicas is the replica-count sweep of the sharded arm.
var ShardReplicas = []int{1, 2, 4}

// ShardClients is the LB-client-count sweep of the sharded arm.
var ShardClients = []int{4, 8}

// ShardIters is the per-client iteration count of the sweep cells.
const ShardIters = 2

// Shard10kClients is the client count of the scale cell: ten thousand
// LB clients against four event-loop replicas.
const Shard10kClients = 10000

// ShardRow is one (replicas, clients) cell of the sharded-fleet sweep:
// N poll-event-loop KV replicas, each owning a consistent-hash slice of
// the key space, driven by LB clients routing by MAC-pinned immediates.
type ShardRow struct {
	Replicas     int
	Clients      int
	Iters        int
	Requests     uint64 // requests served fleet-wide
	CyclesCached uint64 // fleet cycle total, enforced + verify cache
	Verified     uint64 // verified calls fleet-wide
	Points       []NetPoint
}

// netMode selects the enforcement configuration of one fleet run.
type netMode int

const (
	netOff    netMode = iota // plain binaries, permissive kernel
	netOn                    // authenticated, enforcing
	netCached                // authenticated, enforcing, verify cache
)

// runNetFleet drives one server + clients fleet to completion and
// returns the per-process cycle counts (server first) plus the
// fleet-wide verified-call total. Outputs are checked against the
// workload's closed-form expectations — a bench run that did not
// actually move the traffic is an error, not a fast result.
func runNetFleet(srv, cli *core.RunRequest, key []byte, clients, iters, workers int, mode netMode) ([]uint64, uint64, error) {
	cfg := core.Config{KernelOptions: []kernel.Option{kernel.WithNetwork(anet.New())}}
	switch mode {
	case netOff:
		cfg.Permissive = true
	case netCached:
		// Per-process cache scope, not fleet-shared: which client
		// publishes a shared site first depends on scheduling, and this
		// sweep's determinism contract (identical per-process cycles at
		// every worker count) cannot hold if adopt-vs-miss costs migrate
		// between processes. Fleet sharing is measured by the batch
		// sweep, which runs its fleet serially for exactly this reason.
		cfg.Key = key
		cfg.KernelOptions = append(cfg.KernelOptions,
			kernel.WithCacheMode(kernel.CachePerProcess),
			kernel.WithBatchVerify(BatchDepth))
	default:
		cfg.Key = key
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, 0, err
	}
	reqs := []core.RunRequest{*srv}
	for i := 0; i < clients; i++ {
		reqs = append(reqs, *cli)
	}
	res, err := sys.RunAll(reqs, workers)
	if err != nil {
		return nil, 0, err
	}
	cycles := make([]uint64, len(res))
	var verified uint64
	for i, r := range res {
		if r.Err != nil {
			return nil, 0, fmt.Errorf("bench: net %s: %w", reqs[i].Name, r.Err)
		}
		if r.Killed {
			return nil, 0, fmt.Errorf("bench: net %s killed: %s", reqs[i].Name, r.Reason)
		}
		if r.ExitCode != 0 {
			return nil, 0, fmt.Errorf("bench: net %s exit=%d", reqs[i].Name, r.ExitCode)
		}
		cycles[i] = r.Cycles
		verified += r.Verified
	}
	if got, want := res[0].Output, workload.NetServerOutput(clients, iters); got != want {
		return nil, 0, fmt.Errorf("bench: net server output %q, want %q", got, want)
	}
	for i := 1; i < len(res); i++ {
		if got, want := res[i].Output, workload.NetClientOutput(iters); got != want {
			return nil, 0, fmt.Errorf("bench: net client %d output %q, want %q", i, got, want)
		}
	}
	return cycles, verified, nil
}

// buildShardReqs builds the authenticated replica and LB-client
// binaries for one sharded cell and returns the fleet's run requests
// (replicas first) plus the consistent-hash route table.
func buildShardReqs(key []byte, replicas, clients, iters int) ([]core.RunRequest, []int, error) {
	routes := workload.ShardMap(replicas)
	slotsOf := make([]int, replicas)
	for _, r := range routes {
		slotsOf[r]++
	}
	var reqs []core.RunRequest
	for r := 0; r < replicas; r++ {
		name := fmt.Sprintf("netreplica%d", r)
		src := workload.NetReplicaSource(workload.NetShardPortBase+uint16(r), clients, workload.NetShardRounds(iters, slotsOf[r]))
		_, auth, err := buildPair(name, src, key)
		if err != nil {
			return nil, nil, err
		}
		reqs = append(reqs, core.RunRequest{Exe: auth, Name: name})
	}
	_, cliAuth, err := buildPair("netlbclient", workload.NetLBClientSource(iters, replicas, routes), key)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < clients; i++ {
		reqs = append(reqs, core.RunRequest{Exe: cliAuth, Name: "netlbclient"})
	}
	return reqs, routes, nil
}

// runShardFleet drives one sharded fleet (replicas first, then LB
// clients) to completion under enforcement with the per-process verify
// cache and returns per-process cycle counts plus the fleet-wide
// verified-call total. Every output is checked against the workload's
// closed forms.
func runShardFleet(reqs []core.RunRequest, key []byte, routes []int, replicas, clients, iters, workers int) ([]uint64, uint64, error) {
	slotsOf := make([]int, replicas)
	for _, r := range routes {
		slotsOf[r]++
	}
	cfg := core.Config{
		Key: key,
		KernelOptions: []kernel.Option{
			kernel.WithNetwork(anet.New()),
			kernel.WithCacheMode(kernel.CachePerProcess),
			kernel.WithBatchVerify(BatchDepth),
		},
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, 0, err
	}
	res, err := sys.RunAll(reqs, workers)
	if err != nil {
		return nil, 0, err
	}
	cycles := make([]uint64, len(res))
	var verified uint64
	for i, r := range res {
		if r.Err != nil {
			return nil, 0, fmt.Errorf("bench: shard %s: %w", reqs[i].Name, r.Err)
		}
		if r.Killed {
			return nil, 0, fmt.Errorf("bench: shard %s killed: %s", reqs[i].Name, r.Reason)
		}
		if r.ExitCode != 0 {
			return nil, 0, fmt.Errorf("bench: shard %s exit=%d", reqs[i].Name, r.ExitCode)
		}
		cycles[i] = r.Cycles
		verified += r.Verified
	}
	for r := 0; r < replicas; r++ {
		if got, want := res[r].Output, workload.NetShardServerOutput(clients, iters, slotsOf[r]); got != want {
			return nil, 0, fmt.Errorf("bench: shard replica %d output %q, want %q", r, got, want)
		}
	}
	for i := replicas; i < len(res); i++ {
		if got, want := res[i].Output, workload.NetShardClientOutput(iters); got != want {
			return nil, 0, fmt.Errorf("bench: shard client %d output %q, want %q", i-replicas, got, want)
		}
	}
	return cycles, verified, nil
}

// shardSweep runs the sharded arm: every (replicas, clients) cell
// re-runs the fleet at each worker count and cross-checks that the
// deterministic per-process cycle counts agree, then the 10k-client
// scale cell runs once (its per-worker points derive from the same
// deterministic counts via the makespan model).
func shardSweep(key []byte) ([]ShardRow, error) {
	var rows []ShardRow
	cell := func(replicas, clients, iters int, rerun bool) (ShardRow, error) {
		reqs, routes, err := buildShardReqs(key, replicas, clients, iters)
		if err != nil {
			return ShardRow{}, err
		}
		row := ShardRow{
			Replicas: replicas,
			Clients:  clients,
			Iters:    iters,
			Requests: uint64(clients) * uint64(iters) * 2 * workload.NetShardSlots,
		}
		var ref []uint64
		var refVer, serial uint64
		for _, w := range NetWorkers {
			var cyc []uint64
			var ver uint64
			if ref == nil || rerun {
				cyc, ver, err = runShardFleet(reqs, key, routes, replicas, clients, iters, w)
				if err != nil {
					return ShardRow{}, err
				}
			} else {
				cyc, ver = ref, refVer
			}
			if ref == nil {
				ref, refVer = cyc, ver
				row.CyclesCached = sum(cyc)
				row.Verified = ver
				serial = sched.Makespan(cyc, 1)
			} else {
				for i := range cyc {
					if cyc[i] != ref[i] {
						return ShardRow{}, fmt.Errorf("bench: shard r=%d c=%d w=%d: proc %d cycles %d != %d",
							replicas, clients, w, i, cyc[i], ref[i])
					}
				}
			}
			mk := sched.Makespan(ref, w)
			speedup := float64(serial) / float64(mk)
			row.Points = append(row.Points, NetPoint{
				Workers:           w,
				MakespanCycles:    mk,
				Speedup:           speedup,
				EfficiencyPct:     100 * speedup / float64(w),
				VerifiedPerMCycle: 1e6 * float64(refVer) / float64(mk),
			})
		}
		return row, nil
	}
	for _, replicas := range ShardReplicas {
		for _, clients := range ShardClients {
			row, err := cell(replicas, clients, ShardIters, true)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	// The scale cell: 10k clients, one real run (worker-count
	// determinism is cross-checked by the sweep cells above).
	row, err := cell(4, Shard10kClients, 1, false)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// ShardGuard runs the reduced 4-replica/8-client cell and returns its
// 4-worker speedup and efficiency — the perf regression gate wired
// into scripts/check.sh (the event loop must keep the replicas busy,
// not serialized behind a shared wait).
func ShardGuard(key []byte) (speedup, effPct float64, err error) {
	reqs, routes, err := buildShardReqs(key, 4, 8, ShardIters)
	if err != nil {
		return 0, 0, err
	}
	cyc, _, err := runShardFleet(reqs, key, routes, 4, 8, ShardIters, 4)
	if err != nil {
		return 0, 0, err
	}
	serial := sched.Makespan(cyc, 1)
	mk := sched.Makespan(cyc, 4)
	speedup = float64(serial) / float64(mk)
	return speedup, 100 * speedup / 4, nil
}

// Net runs the client-count × worker-count × enforcement sweep. All
// reported figures derive from deterministic per-process cycle counts
// (the workload's outputs are order-independent aggregates), so the
// resulting JSON is byte-stable run to run; the per-worker runs
// cross-check that determinism on every sweep.
func Net(key []byte, iters int) (*NetData, error) {
	if iters < 1 {
		iters = 4
	}
	out := &NetData{Iters: iters}
	for _, clients := range NetClients {
		srvName := fmt.Sprintf("netserver%d", clients)
		srvOrig, srvAuth, err := buildPair(srvName, workload.NetServerSource(clients), key)
		if err != nil {
			return nil, err
		}
		cliOrig, cliAuth, err := buildPair("netclient", workload.NetClientSource(iters), key)
		if err != nil {
			return nil, err
		}
		row := NetRow{
			Clients:  clients,
			Requests: uint64(clients) * uint64(iters) * workload.NetRequestsPerIter,
			Bytes:    uint64(clients) * uint64(iters) * workload.NetBytesPerIter,
		}

		srvOff := core.RunRequest{Exe: srvOrig, Name: "netserver"}
		cliOff := core.RunRequest{Exe: cliOrig, Name: "netclient"}
		cyc, _, err := runNetFleet(&srvOff, &cliOff, key, clients, iters, 4, netOff)
		if err != nil {
			return nil, err
		}
		row.CyclesOff = sum(cyc)

		srvReq := core.RunRequest{Exe: srvAuth, Name: "netserver"}
		cliReq := core.RunRequest{Exe: cliAuth, Name: "netclient"}
		cyc, verified, err := runNetFleet(&srvReq, &cliReq, key, clients, iters, 4, netOn)
		if err != nil {
			return nil, err
		}
		row.CyclesOn = sum(cyc)
		row.Verified = verified

		// The enforced+cached configuration is the worker sweep: every
		// worker count really runs the fleet, and the deterministic
		// per-process counts must agree across all of them.
		var ref []uint64
		var serial uint64
		for _, w := range NetWorkers {
			cycC, verC, err := runNetFleet(&srvReq, &cliReq, key, clients, iters, w, netCached)
			if err != nil {
				return nil, err
			}
			if ref == nil {
				ref = cycC
				row.CyclesCached = sum(cycC)
				serial = sched.Makespan(cycC, 1)
			} else {
				for i := range cycC {
					if cycC[i] != ref[i] {
						return nil, fmt.Errorf("bench: net clients=%d w=%d: proc %d cycles %d != %d",
							clients, w, i, cycC[i], ref[i])
					}
				}
			}
			mk := sched.Makespan(cycC, w)
			speedup := float64(serial) / float64(mk)
			row.Points = append(row.Points, NetPoint{
				Workers:           w,
				MakespanCycles:    mk,
				Speedup:           speedup,
				EfficiencyPct:     100 * speedup / float64(w),
				VerifiedPerMCycle: 1e6 * float64(verC) / float64(mk),
			})
		}
		row.OverheadPct = pct(row.CyclesOff, row.CyclesOn)
		row.CachedOverheadPct = pct(row.CyclesOff, row.CyclesCached)
		out.Rows = append(out.Rows, row)
	}
	shard, err := shardSweep(key)
	if err != nil {
		return nil, err
	}
	out.Shard = shard
	return out, nil
}

func sum(v []uint64) uint64 {
	var t uint64
	for _, x := range v {
		t += x
	}
	return t
}

// Render prints the network sweep.
func (t *NetData) Render() string {
	header := []string{"Clients", "Requests", "Bytes", "Off cycles", "Enforced (+%)", "Cached (+%)"}
	for _, w := range NetWorkers {
		header = append(header, fmt.Sprintf("w=%d speedup", w))
	}
	var rows [][]string
	for _, r := range t.Rows {
		row := []string{
			fmt.Sprint(r.Clients),
			fmt.Sprint(r.Requests),
			fmt.Sprint(r.Bytes),
			fmt.Sprint(r.CyclesOff),
			fmt.Sprintf("%d (+%.1f%%)", r.CyclesOn, r.OverheadPct),
			fmt.Sprintf("%d (+%.1f%%)", r.CyclesCached, r.CachedOverheadPct),
		}
		for _, p := range r.Points {
			row = append(row, fmt.Sprintf("%.2fx", p.Speedup))
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Network fleet: echo+KV server + N load-gen clients, %d iterations/client", t.Iters)
	out := renderTable(title, header, rows)
	if len(t.Shard) == 0 {
		return out
	}
	sheader := []string{"Replicas", "Clients", "Requests", "Cached cycles", "Verified"}
	for _, w := range NetWorkers {
		sheader = append(sheader, fmt.Sprintf("w=%d speedup", w))
	}
	var srows [][]string
	for _, r := range t.Shard {
		row := []string{
			fmt.Sprint(r.Replicas),
			fmt.Sprint(r.Clients),
			fmt.Sprint(r.Requests),
			fmt.Sprint(r.CyclesCached),
			fmt.Sprint(r.Verified),
		}
		for _, p := range r.Points {
			row = append(row, fmt.Sprintf("%.2fx (%.0f%%)", p.Speedup, p.EfficiencyPct))
		}
		srows = append(srows, row)
	}
	return out + "\n" + renderTable("Sharded fleet: poll event-loop KV replicas + consistent-hash LB clients", sheader, srows)
}
