package durable

import (
	"bytes"
	"testing"
)

// FuzzWALRecordDecode drives the WAL record codec with arbitrary bytes:
// the decoder must be total (no panics), and on everything it accepts,
// encode∘decode must be the identity — the same strict-codec contract
// the checkpoint decoders are fuzzed under.
func FuzzWALRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	seed := EncodeRecord(&Record{Seq: 3, Term: 1, Tick: 17, Kind: KindExportFence,
		Name: "p1", Node: 1, Node2: 2, Epoch: 4, Cycles: 99, Code: 0,
		Flags: 0, Str: "", Data: []byte("in")})
	f.Add(seed)
	for i := 0; i < len(seed); i += 7 {
		mut := append([]byte(nil), seed...)
		mut[i] ^= 0x80
		f.Add(mut)
	}
	f.Add(seed[:len(seed)/2])
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeRecord(b)
		if err != nil {
			return
		}
		re := EncodeRecord(r)
		if !bytes.Equal(re, b) {
			t.Fatalf("decode∘encode not identity:\n in %x\nout %x", b, re)
		}
	})
}
