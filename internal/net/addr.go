package net

// Socket addresses cross the system-call boundary by value, packed into
// one machine word, instead of as a pointer to a sockaddr struct. Two
// properties of the platform force this shape: the authenticated-string
// mechanism cannot protect a binary struct (a little-endian AF_INET
// family field contains interior NUL bytes, which terminate an AS), and
// the installer's dataflow analysis constrains constant *register*
// values — so a destination port loaded with MOVI becomes a
// MAC-protected immediate in the call encoding for free, which is
// exactly the guarantee the paper wants on the network syscall surface.
//
// Layout (32 bits): family byte in bits 24..31, bits 16..23 reserved
// (must be zero), port in bits 0..15.

// AFInet is the only supported address family.
const AFInet = 2

// SockAddr is a decoded socket address.
type SockAddr struct {
	Family uint8
	Port   uint16
}

// EncodeAddr packs an AF_INET address for passing in a register.
func EncodeAddr(port uint16) uint32 {
	return uint32(AFInet)<<24 | uint32(port)
}

// Encode packs the address. Only AF_INET round-trips through
// DecodeAddr; other families encode but fail to decode.
func (a SockAddr) Encode() uint32 {
	return uint32(a.Family)<<24 | uint32(a.Port)
}

// DecodeAddr unpacks a by-value socket address. It fails (ok=false) on
// a non-AF_INET family or nonzero reserved bits.
func DecodeAddr(v uint32) (SockAddr, bool) {
	if v>>24 != AFInet || v&0x00ff0000 != 0 {
		return SockAddr{}, false
	}
	return SockAddr{Family: AFInet, Port: uint16(v)}, true
}
