// programs.go defines the policy-study corpus: bison, calc, screen, and
// tar, with per-OS system call surfaces sized to reproduce Tables 1-3.
package workload

import (
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/libc"
	"asc/internal/linker"

	"asc/internal/asm"
)

// progDef is the declarative description of one policy-study program.
type progDef struct {
	common     []string // distinct calls on the always-taken path
	rare       []string // distinct calls reachable only via rare handlers
	siteFactor int      // how many sites repeat each common call
	// OpenBSD surface adjustments (OS-specific behaviour, Table 1).
	obsdCommonAdd []string
	obsdRareDrop  []string
}

// defs holds the corpus. exit and read are implicit (startup and the
// command loop) and are part of every program's surface.
var defs = map[string]progDef{
	// bison: 31 distinct calls on Linux and OpenBSD; trained Systrace
	// policies observe only the common path (Tables 1-2).
	"bison": {
		common: []string{
			"open", "close", "mmap", "stat", "fstat", "lseek", "brk",
			"access", "getuid", "geteuid", "getgid", "getegid", "dup",
			"getcwd", "write",
		},
		rare: []string{
			"fcntl", "fstatfs", "getdirentries", "getpid", "gettimeofday",
			"kill", "madvise", "nanosleep", "sendto", "sigaction",
			"socket", "sysconf", "uname", "writev",
		},
		siteFactor:    9,
		obsdCommonAdd: []string{"sigprocmask"},
	},
	// calc: 54 distinct calls on Linux, 51 on OpenBSD.
	"calc": {
		common: []string{
			"open", "close", "mmap", "write", "stat", "access", "unlink",
			"brk", "lseek", "fstat", "getuid", "time", "umask", "chdir",
			"getcwd", "dup", "pipe", "ioctl", "alarm",
		},
		rare: []string{
			"fcntl", "fstatfs", "getdirentries", "getpid", "getppid",
			"gettimeofday", "kill", "madvise", "nanosleep", "sendto",
			"recvfrom", "sigaction", "sigprocmask", "socket", "bind",
			"connect", "sysconf", "uname", "writev", "readv", "dup2",
			"rename", "link", "symlink", "readlink", "rmdir", "mkdir",
			"chmod", "ftruncate", "truncate", "getrlimit", "getrusage",
			"times",
		},
		siteFactor:   12,
		obsdRareDrop: []string{"getrlimit", "getrusage"},
	},
	// screen: 67 distinct calls on Linux, 63 on OpenBSD; its trained
	// policy is comparatively complete (55) because a terminal manager's
	// common path touches most of its surface.
	"screen": {
		common: []string{
			"write", "open", "close", "mmap", "stat", "fstat", "lseek",
			"brk", "access", "readlink", "mkdir", "rmdir", "unlink",
			"getuid", "geteuid", "getgid", "getegid", "getpid", "getppid",
			"getpgrp", "setsid", "dup", "dup2", "pipe", "getcwd", "chdir",
			"chmod", "chown", "umask", "time", "gettimeofday", "times",
			"uname", "gethostname", "sysconf", "ioctl", "fcntl", "select",
			"poll", "sigaction", "sigprocmask", "alarm", "pause", "kill",
			"nanosleep", "utime", "rename", "link", "symlink", "truncate",
			"ftruncate", "flock", "fsync",
		},
		rare: []string{
			"socket", "bind", "connect", "listen", "accept", "sendto",
			"recvfrom", "shutdown", "getsockname", "setsockopt", "writev",
			"madvise",
		},
		siteFactor:   12,
		obsdRareDrop: []string{"getsockname", "setsockopt", "shutdown"},
	},
	// tar: 58 distinct calls (Table 3 row).
	"tar": {
		common: []string{
			"write", "open", "close", "stat", "fstat", "lseek", "brk",
			"access", "mkdir", "unlink", "chmod", "chown", "utime",
			"getuid", "getgid", "umask", "readlink", "symlink", "link",
			"rename", "dup", "getcwd", "time",
		},
		rare: []string{
			"mmap", "fcntl", "fstatfs", "getdirentries", "getpid",
			"geteuid", "getegid", "getppid", "gettimeofday", "times",
			"uname", "sysconf", "ioctl", "sigaction", "sigprocmask",
			"kill", "alarm", "nanosleep", "select", "poll", "writev",
			"readv", "pread", "pwrite", "ftruncate", "truncate", "rmdir",
			"chdir", "dup2", "pipe", "socket", "sendto", "madvise",
		},
		siteFactor: 15,
	},
}

// Names returns the policy-study program names in deterministic order.
func Names() []string { return []string{"bison", "calc", "screen", "tar"} }

// Program builds the Spec for a program under the given OS personality.
func Program(name string, os libc.OS) (*Spec, error) {
	def, ok := defs[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown program %q", name)
	}
	common := append([]string(nil), def.common...)
	rare := append([]string(nil), def.rare...)
	if os == libc.OpenBSD {
		common = append(common, def.obsdCommonAdd...)
		rare = without(rare, def.obsdRareDrop)
	}
	s := &Spec{Name: name, SiteFactor: def.siteFactor, Rare: map[byte][]Call{}}
	for _, n := range common {
		s.Common = append(s.Common, callFor(n))
	}
	// Distribute rare calls over handlers of ~6 calls each, commands
	// 'b', 'c', 'd', ...
	cmd := byte('b')
	for len(rare) > 0 {
		n := 6
		if n > len(rare) {
			n = len(rare)
		}
		var calls []Call
		for _, name := range rare[:n] {
			calls = append(calls, callFor(name))
		}
		s.Rare[cmd] = calls
		rare = rare[n:]
		cmd++
	}
	return s, nil
}

// callFor applies per-call argument-mode tweaks. fcntl's command argument
// is two-valued (the "mv" column of Table 3, mirroring the paper's fcntl
// example policy).
func callFor(name string) Call {
	if name == "fcntl" {
		return Call{Name: name, Modes: []ArgMode{ArgSavedFD, ArgTwoValued, ArgConst}}
	}
	return Call{Name: name}
}

func without(xs []string, drop []string) []string {
	out := xs[:0]
	for _, x := range xs {
		skip := false
		for _, d := range drop {
			if x == d {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, x)
		}
	}
	return out
}

// Build assembles and links the named program against the personality's
// libc, returning the relocatable executable.
func Build(name string, os libc.OS) (*binfmt.File, error) {
	spec, err := Program(name, os)
	if err != nil {
		return nil, err
	}
	return BuildSource(name, spec.Source(os), os)
}

// BuildSource assembles and links arbitrary source against a personality
// libc.
func BuildSource(name, source string, os libc.OS) (*binfmt.File, error) {
	obj, err := asm.Assemble(name+".s", source)
	if err != nil {
		return nil, fmt.Errorf("workload: assemble %s: %w", name, err)
	}
	lib, err := libc.Objects(os)
	if err != nil {
		return nil, err
	}
	exe, err := linker.Link([]*binfmt.File{obj}, lib)
	if err != nil {
		return nil, fmt.Errorf("workload: link %s: %w", name, err)
	}
	return exe, nil
}
