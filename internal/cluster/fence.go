// fence.go holds the cluster's trusted liveness registry. The sealed
// migration envelope proves *what* a blob is (a genuine checkpoint of
// this program at this epoch, addressed to this node); it cannot prove
// the blob is still *allowed to run* — the same genuine envelope
// delivered twice verifies twice. That decision needs state held
// outside every blob, exactly like ckpt.Store keeping trusted epochs
// outside checkpoints: the Fence records, per process, the highest
// epoch ever admitted to run and which node currently owns the right to
// run it.
//
// Admission rule: an epoch that advances the floor is always fresh
// (each export/checkpoint mints a strictly newer epoch, so forward
// progress is unambiguous). An epoch at or below the floor was already
// admitted somewhere — it may run again only if the recorded owner has
// provably given the process up: the node was declared dead, or fenced
// itself by exporting. That one rule separates the legitimate cases
// (crash failover re-admits the newest durable epoch; fallback walks to
// older epochs after the owner died) from the attacks (the same
// envelope replayed at a second live node would fork the process into
// two futures).
package cluster

import (
	"fmt"

	"asc/internal/ckpt"
)

// Fence is the trusted control-plane registry deciding whether a sealed
// epoch may start running on a node. It is control-plane state owned by
// the Director, single-goroutine like the rest of the cluster model.
type Fence struct {
	entries map[string]*fenceEntry
}

type fenceEntry struct {
	floor  uint64 // highest epoch ever admitted to run
	admits int    // sealed-state admissions recorded (floor is meaningless at 0)
	owner  NodeID // node currently holding the right to run the process
	fenced bool   // owner exported or was declared dead: right released
	placed bool
}

// NewFence returns an empty registry.
func NewFence() *Fence { return &Fence{entries: make(map[string]*fenceEntry)} }

func (f *Fence) ent(name string) *fenceEntry {
	e := f.entries[name]
	if e == nil {
		e = &fenceEntry{}
		f.entries[name] = e
	}
	return e
}

// Place records a cold placement: node owns the process from fresh
// state. No sealed epoch is involved, so the floor is untouched.
func (f *Fence) Place(name string, node NodeID) {
	e := f.ent(name)
	e.owner = node
	e.fenced = false
	e.placed = true
}

// ExportFence marks the owner as having exported the process: whatever
// epoch it was running must not keep running there, and a subsequent
// re-admission (the migration itself, or recovery if the transfer
// tears) is legitimate.
func (f *Fence) ExportFence(name string) {
	if e := f.entries[name]; e != nil {
		e.fenced = true
	}
}

// NodeDown fences every process owned by a node that has been declared
// failed. The declaration is the failure detector's (heartbeats), not
// ground truth — fencing on a false suspicion is safe for integrity
// (the suspected node's epochs simply become re-admittable elsewhere);
// only the detector's threshold protects against needless failovers.
func (f *Fence) NodeDown(node NodeID) {
	for _, e := range f.entries {
		if e.placed && e.owner == node {
			e.fenced = true
		}
	}
}

// Admit decides whether sealed epoch `epoch` of process `name` may
// start running on node dst. The returned error wraps ckpt.ErrEpoch so
// callers classify it with ckpt.Reason (→ "epoch-replay").
func (f *Fence) Admit(name string, epoch uint64, dst NodeID) error {
	e := f.entries[name]
	if e == nil || e.admits == 0 || epoch > e.floor {
		return nil // fresh forward progress
	}
	if e.fenced {
		return nil // previous owner gave the process up: re-admission
	}
	return fmt.Errorf("cluster: %s: %w: epoch %d already admitted to node %d (floor %d)",
		name, ckpt.ErrEpoch, epoch, e.owner, e.floor)
}

// Commit records that sealed epoch `epoch` is now running on node dst.
// Callers must have Admitted first.
func (f *Fence) Commit(name string, epoch uint64, dst NodeID) {
	e := f.ent(name)
	if epoch > e.floor {
		e.floor = epoch
	}
	e.admits++
	e.owner = dst
	e.fenced = false
	e.placed = true
}

// Owner reports which node currently owns the process, and whether that
// right is fenced.
func (f *Fence) Owner(name string) (node NodeID, fenced, ok bool) {
	e := f.entries[name]
	if e == nil || !e.placed {
		return 0, false, false
	}
	return e.owner, e.fenced, true
}
