package vm

import (
	"bytes"
	"testing"
)

// testPager makes every faulting page present with zero fill and counts
// invocations; fail makes PageFault return an error instead.
type testPager struct {
	mem    *Memory
	pt     *PageTable
	faults int
	spans  [][3]uint32 // addr, n, perm
	fail   error
}

func (p *testPager) PageFault(addr, n uint32, access uint8) error {
	p.faults++
	p.spans = append(p.spans, [3]uint32{addr, n, uint32(access)})
	if p.fail != nil {
		return p.fail
	}
	first, _ := p.pt.Index(addr)
	last, _ := p.pt.Index(addr + n - 1)
	zero := make([]byte, PageSize)
	for i := first; i <= last; i++ {
		f := p.pt.Flags(i)
		if f&PageMapped == 0 || f&PagePresent != 0 {
			continue
		}
		if err := p.mem.RawWrite(p.pt.PageAddr(i), zero); err != nil {
			return err
		}
		p.pt.SetFlags(i, f|PagePresent)
	}
	return nil
}

func newPagedMemory(t *testing.T, npages int) (*Memory, *PageTable, *testPager) {
	t.Helper()
	base := uint32(0x10000)
	m := NewMemory(base, uint32(npages+2)*PageSize)
	ptBase := base + PageSize
	m.Map(Segment{Name: "mmap", Start: ptBase, End: ptBase + uint32(npages)*PageSize, Perms: PermRead | PermWrite | PermExec})
	pt := NewPageTable(ptBase, npages)
	pg := &testPager{mem: m, pt: pt}
	m.SetPaging(pt, pg)
	return m, pt, pg
}

func TestPageCheckUnmappedFaults(t *testing.T) {
	m, pt, _ := newPagedMemory(t, 4)
	if _, err := m.KernelRead(pt.Base(), 8); err == nil {
		t.Fatalf("read of unmapped page succeeded")
	}
	if err := m.pageCheck(pt.Base(), 4, uint8(PermRead)); err == nil {
		t.Fatalf("pageCheck of unmapped page succeeded")
	}
}

func TestPageCheckFaultsInAndMarks(t *testing.T) {
	m, pt, pg := newPagedMemory(t, 4)
	pt.SetFlags(0, PageMapped|PageRead|PageWrite)
	pt.SetFlags(1, PageMapped|PageRead|PageWrite)

	// A span crossing both pages triggers exactly one pager call.
	if err := m.pageCheck(pt.Base()+PageSize-4, 8, uint8(PermWrite)); err != nil {
		t.Fatalf("pageCheck: %v", err)
	}
	if pg.faults != 1 {
		t.Fatalf("faults = %d, want 1", pg.faults)
	}
	for i := 0; i < 2; i++ {
		f := pt.Flags(i)
		if f&PagePresent == 0 || f&PageAccessed == 0 || f&PageDirty == 0 {
			t.Fatalf("page %d flags %08b missing present/accessed/dirty", i, f)
		}
	}
	// Present pages do not fault again.
	if err := m.pageCheck(pt.Base(), 4, uint8(PermRead)); err != nil {
		t.Fatalf("second access: %v", err)
	}
	if pg.faults != 1 {
		t.Fatalf("faults after resident access = %d, want 1", pg.faults)
	}
}

func TestPageCheckProtection(t *testing.T) {
	m, pt, _ := newPagedMemory(t, 4)
	pt.SetFlags(2, PageMapped|PageRead)
	if err := m.pageCheck(pt.PageAddr(2), 4, uint8(PermRead)); err != nil {
		t.Fatalf("read of read-only page: %v", err)
	}
	if err := m.pageCheck(pt.PageAddr(2), 4, uint8(PermWrite)); err == nil {
		t.Fatalf("write to read-only page succeeded")
	}
	if err := m.pageCheck(pt.PageAddr(2), 4, uint8(PermRead|PermExec)); err == nil {
		t.Fatalf("exec of no-exec page succeeded")
	}
	// Kernel access (perm 0) needs only the mapping.
	if err := m.pageCheck(pt.PageAddr(2), 4, 0); err != nil {
		t.Fatalf("kernel access to read-only page: %v", err)
	}
}

func TestPageCheckArenaBoundary(t *testing.T) {
	m, pt, _ := newPagedMemory(t, 4)
	pt.SetFlags(0, PageMapped|PageRead|PagePresent)
	// A span straddling the arena start must fault even though the flat
	// segment map would allow it.
	if err := m.pageCheck(pt.Base()-4, 8, 0); err == nil {
		t.Fatalf("access crossing the arena start succeeded")
	}
	if err := m.pageCheck(pt.End()-4, 8, 0); err == nil {
		t.Fatalf("access crossing the arena end succeeded")
	}
	// Accesses fully outside the arena are free.
	if err := m.pageCheck(pt.Base()-8, 8, 0); err != nil {
		t.Fatalf("access below the arena: %v", err)
	}
	if err := m.pageCheck(pt.End(), 4, 0); err != nil {
		t.Fatalf("access above the arena: %v", err)
	}
}

func TestPagerFailurePropagates(t *testing.T) {
	m, pt, pg := newPagedMemory(t, 4)
	pt.SetFlags(0, PageMapped|PageRead)
	pg.fail = &Fault{Msg: "swap verification failed"}
	if err := m.pageCheck(pt.Base(), 4, uint8(PermRead)); err == nil {
		t.Fatalf("pager failure did not abort the access")
	}
}

func TestRawAccessBypassesPaging(t *testing.T) {
	m, pt, pg := newPagedMemory(t, 4)
	pt.SetFlags(0, PageMapped|PageRead|PageWrite)
	if err := m.RawWrite(pt.Base(), []byte{1, 2, 3, 4}); err != nil {
		t.Fatalf("RawWrite: %v", err)
	}
	b, err := m.RawRead(pt.Base(), 4)
	if err != nil {
		t.Fatalf("RawRead: %v", err)
	}
	if !bytes.Equal(b, []byte{1, 2, 3, 4}) {
		t.Fatalf("RawRead = %v", b)
	}
	if pg.faults != 0 {
		t.Fatalf("raw access invoked the pager %d times", pg.faults)
	}
}

func TestPageTableEncodeDecodeRoundTrip(t *testing.T) {
	pt := NewPageTable(0x40000, 8)
	pt.SetFlags(0, PageMapped|PageRead|PageWrite|PagePresent|PageDirty)
	pt.SetFlags(7, PageMapped|PageRead)
	gens := []uint64{3, 0, 0, 0, 0, 0, 0, 9}
	blob := EncodePageTable(pt, gens)
	got, gotGens, err := DecodePageTable(blob)
	if err != nil {
		t.Fatalf("DecodePageTable: %v", err)
	}
	if got.Base() != pt.Base() || got.NumPages() != pt.NumPages() {
		t.Fatalf("decoded geometry %#x/%d, want %#x/%d", got.Base(), got.NumPages(), pt.Base(), pt.NumPages())
	}
	for i := 0; i < pt.NumPages(); i++ {
		if got.Flags(i) != pt.Flags(i) {
			t.Fatalf("page %d flags %08b, want %08b", i, got.Flags(i), pt.Flags(i))
		}
	}
	for i, g := range gotGens {
		if g != gens[i] {
			t.Fatalf("gen %d = %d, want %d", i, g, gens[i])
		}
	}
}

func TestPageTableDecodeRejectsCorruption(t *testing.T) {
	pt := NewPageTable(0x40000, 4)
	blob := EncodePageTable(pt, make([]uint64, 4))
	cases := map[string][]byte{
		"empty":      nil,
		"short":      blob[:8],
		"bad magic":  append([]byte("XXXX"), blob[4:]...),
		"truncated":  blob[:len(blob)-3],
		"trailing":   append(append([]byte(nil), blob...), 0),
		"huge count": append(append([]byte(nil), blob[:12]...), 0xff, 0xff, 0xff, 0x7f),
		"odd base":   append(append([]byte(nil), blob[:8]...), append([]byte{1, 0, 4, 0}, blob[12:]...)...),
	}
	for name, b := range cases {
		if _, _, err := DecodePageTable(b); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func FuzzPageTableDecode(f *testing.F) {
	pt := NewPageTable(0x40000, 8)
	pt.SetFlags(2, PageMapped|PageRead|PagePresent)
	f.Add(EncodePageTable(pt, make([]uint64, 8)))
	f.Add([]byte("ASPT"))
	f.Fuzz(func(t *testing.T, b []byte) {
		pt, gens, err := DecodePageTable(b)
		if err != nil {
			return
		}
		// Round-trip invariant on anything that decodes.
		if !bytes.Equal(EncodePageTable(pt, gens), b) {
			t.Fatalf("decode/encode round trip mismatch")
		}
	})
}
