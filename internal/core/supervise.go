// supervise.go implements the supervised-restart runner: a process
// killed by the monitor (or denied into a runaway loop) is restarted
// with capped exponential backoff, the way an init system restarts a
// crashed service. Backoff is virtual — measured in machine cycles, not
// wall-clock time — so supervised runs stay deterministic.
//
// With a checkpoint cadence configured, the supervisor also takes
// sealed checkpoints of the running process and restarts warm: each
// restart walks the checkpoint chain newest-first, restoring the first
// blob whose seal, epoch, and program binding all verify. Corrupted,
// stale, or swapped checkpoints are rejected (and counted by reason),
// never trusted — the chain falls through to older checkpoints and
// ultimately to a cold start.
package core

import (
	"errors"
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/ckpt"
	"asc/internal/kernel"
	"asc/internal/vm"
)

// NoRestarts disables restarting entirely: the process runs once and
// its failure, if any, is final. It exists because MaxRestarts' zero
// value selects the default policy, so 0 cannot mean "none".
const NoRestarts = -1

// SuperviseConfig parameterizes the restart policy.
type SuperviseConfig struct {
	// MaxRestarts bounds how many times the process is restarted after
	// its first attempt. The zero value selects the default of 3; any
	// negative value (canonically NoRestarts) disables restarts.
	MaxRestarts int
	// BackoffBase is the virtual backoff (cycles) before the first
	// restart; each further restart doubles it (default 1000).
	BackoffBase uint64
	// BackoffCap caps the doubling (default 16 × BackoffBase). It need
	// not be a power-of-two multiple of BackoffBase: the doubled value
	// is clamped to the cap exactly.
	BackoffCap uint64
	// MaxCycles is the per-attempt execution budget, counted from the
	// attempt's starting point — a warm restart gets the full budget on
	// top of the restored cycle count (default 4e9). A budget overrun
	// counts as a restartable failure ("runaway"), which Deny-mode
	// processes can produce when their control-flow chain is
	// unrecoverable.
	MaxCycles uint64
	// CheckpointEvery, when non-zero, takes a sealed checkpoint each
	// time the attempt advances that many virtual cycles.
	CheckpointEvery uint64
	// Checkpoints is the store restarts fall back through. Leaving it
	// nil with CheckpointEvery set allocates a private store; passing
	// one in lets the caller persist blobs or (in fault campaigns)
	// tamper with them in flight.
	Checkpoints *ckpt.Store
}

// RestartEvent records one supervised restart.
type RestartEvent struct {
	Attempt int    // 1-based attempt that failed
	Cause   string // kill reason, or "runaway"
	Backoff uint64 // virtual cycles waited before the next attempt
}

// SuperviseStats summarizes a supervised run.
type SuperviseStats struct {
	Attempts     int
	Restarts     int
	GaveUp       bool
	TotalBackoff uint64
	Causes       map[string]int
	Events       []RestartEvent
	Final        *Result // the last attempt's result
	FinalCause   string  // cause of the last failed attempt ("" on a clean exit)

	// Checkpoint/recovery accounting (zero unless a cadence or store
	// was configured).
	Checkpoints      int            // sealed checkpoints taken
	CheckpointErrors int            // checkpoint attempts that failed (run continues)
	WarmRestarts     int            // restarts resumed from a verified checkpoint
	ColdStarts       int            // restarts that fell through the whole chain
	CkptRejected     map[string]int // restore rejections by ckpt.Reason
	ReplayCycles     uint64         // cycles re-executed after warm restarts
}

// Supervise runs a binary under the restart policy. It returns an error
// only for platform failures; monitor kills and runaways are absorbed
// into the stats.
func (s *System) Supervise(exe *binfmt.File, name, stdin string, cfg SuperviseConfig) (*SuperviseStats, error) {
	if cfg.MaxRestarts < 0 {
		cfg.MaxRestarts = 0
	} else if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 1000
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = 16 * cfg.BackoffBase
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 4_000_000_000
	}
	store := cfg.Checkpoints
	if store == nil && cfg.CheckpointEvery > 0 {
		store = ckpt.NewStore()
	}

	stats := &SuperviseStats{Causes: map[string]int{}}
	backoff := cfg.BackoffBase
	var lastFailCycles uint64
	for {
		stats.Attempts++
		res, cause, err := s.attempt(exe, name, stdin, cfg, store, stats, lastFailCycles)
		if err != nil {
			return stats, err
		}
		stats.Final = res
		if cause == "" {
			// Clean (or at least voluntary) exit: supervision ends.
			if len(stats.Causes) == 0 {
				stats.Causes = nil
			}
			return stats, nil
		}
		lastFailCycles = res.Cycles
		stats.Causes[cause]++
		stats.FinalCause = cause
		if stats.Restarts >= cfg.MaxRestarts {
			stats.GaveUp = true
			return stats, nil
		}
		stats.Events = append(stats.Events, RestartEvent{
			Attempt: stats.Attempts, Cause: cause, Backoff: backoff,
		})
		stats.TotalBackoff += backoff
		stats.Restarts++
		if backoff < cfg.BackoffCap {
			backoff *= 2
			if backoff > cfg.BackoffCap {
				backoff = cfg.BackoffCap
			}
		}
	}
}

// attempt starts one supervised attempt — warm from the newest
// restorable checkpoint when this is a restart and a store exists, cold
// otherwise — and drives it to completion or failure.
func (s *System) attempt(exe *binfmt.File, name, stdin string, cfg SuperviseConfig, store *ckpt.Store, stats *SuperviseStats, lastFailCycles uint64) (*Result, string, error) {
	var p *kernel.Process
	if stats.Attempts > 1 && store != nil {
		for _, ent := range store.Chain() {
			r, err := s.Kernel.Restore(exe, name, ent.Blob, ent.Epoch)
			if err != nil {
				if stats.CkptRejected == nil {
					stats.CkptRejected = map[string]int{}
				}
				stats.CkptRejected[ckpt.Reason(err)]++
				continue
			}
			p = r // stdin travels inside the checkpoint
			stats.WarmRestarts++
			if lastFailCycles > r.CPU.Cycles {
				stats.ReplayCycles += lastFailCycles - r.CPU.Cycles
			}
			break
		}
	}
	if p == nil {
		var err error
		p, err = s.Kernel.Spawn(exe, name)
		if err != nil {
			return nil, "", err
		}
		p.Stdin = []byte(stdin)
		if stats.Attempts > 1 {
			stats.ColdStarts++
		}
	}
	return s.drive(p, name, cfg, store, stats)
}

// drive runs an attempt in slices, sealing a checkpoint at each cadence
// boundary. The returned cause is "" on a voluntary exit, the kill
// reason for a monitor kill, "runaway" for budget exhaustion, or
// "crash" for a CPU fault (all restartable failures, like an init
// system restarting a segfaulting service); only platform failures
// surface as errors.
func (s *System) drive(p *kernel.Process, name string, cfg SuperviseConfig, store *ckpt.Store, stats *SuperviseStats) (*Result, string, error) {
	start := p.CPU.Cycles
	deadline := start + cfg.MaxCycles
	var next uint64
	if cfg.CheckpointEvery > 0 && store != nil {
		next = start + cfg.CheckpointEvery
	}
	for {
		limit := deadline
		if next > 0 && next < limit {
			limit = next
		}
		runErr := s.Kernel.Run(p, limit)
		var fault *vm.Fault
		switch {
		case runErr == nil:
			var cause string
			if p.Killed {
				cause = string(p.KilledBy)
			}
			return superviseResult(p), cause, nil
		case errors.Is(runErr, vm.ErrCycleLimit):
			if p.CPU.Cycles >= deadline {
				return superviseResult(p), "runaway", nil
			}
			// Cadence boundary: seal the live process under the next
			// epoch. A failed seal is not fatal — the run continues and
			// the chain simply misses one link.
			epoch := store.NewestEpoch() + 1
			if blob, err := s.Kernel.Checkpoint(p, epoch); err != nil {
				stats.CheckpointErrors++
			} else if err := store.Put(epoch, blob); err != nil {
				stats.CheckpointErrors++
			} else {
				stats.Checkpoints++
			}
			// Traps can overshoot the boundary by their whole cost;
			// advance past the current position, not just one step.
			for next <= p.CPU.Cycles {
				next += cfg.CheckpointEvery
			}
		case errors.As(runErr, &fault):
			return superviseResult(p), "crash", nil
		default:
			return nil, "", fmt.Errorf("core: run %s: %w", name, runErr)
		}
	}
}

func superviseResult(p *kernel.Process) *Result {
	return &Result{
		Output:   p.Output(),
		ExitCode: p.Code,
		Killed:   p.Killed,
		Reason:   p.KilledBy,
		Cycles:   p.CPU.Cycles,
		Syscalls: p.SyscallCount,
		Verified: p.VerifyCount,
		Cache:    p.CacheStats(),
	}
}
