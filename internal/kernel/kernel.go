// Package kernel implements the operating system of the simulated
// platform: processes, a system call table over the in-memory VFS, and —
// the paper's kernel-side contribution — the authenticated system call
// verification path in the trap handler (Section 3.4).
//
// The verification path mirrors the paper exactly:
//
//  1. Reconstruct the encoded call from the actual trap state and check
//     the call MAC.
//  2. Check the integrity of each authenticated string argument.
//  3. Check the control-flow policy using the online memory checker:
//     the {lastBlock, lbMAC} state lives in application memory and is
//     validated against an in-kernel per-process counter nonce, then
//     updated.
//
// Any failure terminates the process, logs the call, and records an audit
// entry. Unauthenticated calls from authenticated binaries are also
// blocked (the paper's shellcode defense).
package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"asc/internal/binfmt"
	"asc/internal/captrack"
	"asc/internal/isa"
	"asc/internal/mac"
	anet "asc/internal/net"
	"asc/internal/pattern"
	"asc/internal/policy"
	"asc/internal/sys"
	"asc/internal/vfs"
	"asc/internal/vm"
)

// Mode selects the enforcement behaviour.
type Mode int

// Enforcement modes.
const (
	// Permissive executes all system calls without checking. Used for
	// baselines and for tracing training runs.
	Permissive Mode = iota + 1
	// Enforce verifies authenticated calls and kills processes on any
	// violation, including plain SYSCALLs from authenticated binaries.
	Enforce
)

// Personality selects OS-specific syscall behaviour.
type Personality int

// Personalities.
const (
	// Linux rejects the generic indirect syscall.
	Linux Personality = iota + 1
	// OpenBSD dispatches __syscall(n, ...) to syscall n.
	OpenBSD
)

// Defaults for process construction.
const (
	DefaultMemSize   = 4 << 20
	DefaultStackSize = 256 << 10
	maxFDs           = 256
)

// KillReason classifies why the monitor terminated a process.
type KillReason string

// Kill reasons recorded in the audit log.
const (
	KillUnauthenticated KillReason = "unauthenticated system call"
	KillBadRecord       KillReason = "malformed auth record"
	KillBadCallMAC      KillReason = "call MAC mismatch"
	KillBadString       KillReason = "authenticated string MAC mismatch"
	KillBadState        KillReason = "policy state MAC mismatch (memory checker)"
	KillBadPredecessor  KillReason = "control flow violation (predecessor not allowed)"
	KillBadPattern      KillReason = "argument does not match authenticated pattern"
	KillBadCapability   KillReason = "file descriptor is not a live capability"
	KillSymlinkRace     KillReason = "path argument resolves outside its policy name (symlink race)"
)

// Enforcement selects the kernel's response to a verification failure,
// seccomp-style. It is a per-process property (initialized from the
// kernel default at Spawn) so one machine can run kill-on-violation
// daemons next to audit-mode workloads being ramped in.
type Enforcement int

// Enforcement modes.
const (
	// EnforceKill terminates the process (the paper's behaviour, and the
	// default).
	EnforceKill Enforcement = iota
	// EnforceDeny refuses the violating call with -EPERM and lets the
	// process continue. The call does not execute.
	EnforceDeny
	// EnforceAudit records the violation and executes the call anyway
	// (observe-only ramp-in mode).
	EnforceAudit
)

func (e Enforcement) String() string {
	switch e {
	case EnforceDeny:
		return "deny"
	case EnforceAudit:
		return "audit"
	default:
		return "kill"
	}
}

// Action returns the audit-record action for this mode.
func (e Enforcement) Action() Action {
	switch e {
	case EnforceDeny:
		return ActionDeny
	case EnforceAudit:
		return ActionAudit
	default:
		return ActionKill
	}
}

// Injector is the fault-injection hook interface (internal/fault). A
// kernel with no injector behaves exactly as before; the hooks exist so
// a deterministic campaign can perturb the platform at well-defined
// points of the verification path.
type Injector interface {
	// BeforeVerify runs at every authenticated trap before verification,
	// with kernel-privileged access to the process. recAddr is the auth
	// record address the call passed in R6.
	BeforeVerify(p *Process, num uint16, site uint32, recAddr uint32)
	// NonceUpdate is consulted when the memory checker advances the
	// per-process counter after a successful control-flow check. It
	// returns the number of increments actually applied to the in-kernel
	// counter: 1 is a faithful update, 0 a dropped update, 2 a
	// duplicated one. The state MAC written to application memory is
	// always computed for the intended (single-increment) counter, so a
	// perturbed return desynchronizes kernel and application state.
	NonceUpdate(p *Process) int
}

// TraceEntry records one executed system call (used for Systrace-style
// training and for debugging).
type TraceEntry struct {
	Num  uint16
	Site uint32
	Args [sys.MaxArgs]uint32
	Ret  uint32
}

// Kernel is one simulated machine.
type Kernel struct {
	FS          *vfs.FS
	Mode        Mode
	Personality Personality
	Costs       CostModel

	// NormalizePaths enables the §5.4 defense: a policy-constrained path
	// argument must normalize (all symbolic links resolved) to itself.
	// An attacker who plants a symlink at a policy-approved name — e.g.
	// /tmp/foo -> /etc/passwd — is caught before the call proceeds.
	NormalizePaths bool

	// RequireAuthenticated extends enforcement to every process: system
	// calls from binaries the installer has not transformed are also
	// killed. This is the paper's full-system deployment ("the system
	// as a whole is protected once all binaries that run in user space
	// have been transformed", §3.3); without it, enforcement applies
	// per-binary.
	RequireAuthenticated bool

	// MonitorOverhead, when non-nil, is consulted on every system call
	// of a *non-authenticated* binary to model alternative monitors
	// (e.g. a user-space policy daemon); it returns extra cycles and
	// whether the call is allowed.
	MonitorOverhead func(p *Process, num uint16, site uint32) (extra uint64, allow bool)

	// VerifyCache enables the per-process, site-keyed verification cache:
	// once a call site passes the call MAC and string MAC checks, later
	// traps at the same site skip the AES work when the record bytes and
	// every MAC-checked buffer are provably unchanged (store-generation
	// counters in internal/vm; any application store to a covering
	// segment forces full re-verification). The control-flow memory
	// checker and the capability-set check stay exact on every call.
	VerifyCache bool

	// Net, when non-nil, backs the socket system call family with the
	// in-memory loopback network (internal/net): ports, listeners, and
	// message-framed streams with real data movement and blocking
	// semantics. Without it the socket calls keep their historical
	// validate-and-succeed stub behaviour, so existing single-process
	// workloads are unaffected.
	Net *anet.Network

	key   *mac.Keyed
	Audit AuditRing

	// mu guards the process table and PID allocation; everything else a
	// concurrent Run needs is either immutable after New, per-process, or
	// synchronized on its own (the audit ring, the pattern cache, the
	// VFS). One Kernel may drive many processes from many goroutines, but
	// each individual Process must be driven by one goroutine at a time.
	mu      sync.Mutex
	nextPID int
	procs   map[int]*Process

	// enforcement is the default Enforcement given to spawned processes.
	enforcement Enforcement
	// injector, when non-nil, receives the fault-injection hooks. Fault
	// engines are stateful and not synchronized: a kernel with an
	// injector must run one process at a time (the campaign's parallel
	// mode runs whole kernels, not processes, in parallel).
	injector Injector

	// patterns caches compiled patterns by the MAC tag of their source
	// bytes. A tag is only used as a key after the contents were verified
	// against it, so equal tags imply equal (already-authenticated)
	// sources; pattern.Parse then runs once per distinct pattern. The
	// cache is shared by every process of the kernel and is read-mostly,
	// hence the sync.Map.
	patterns sync.Map // mac.Tag -> *pattern.Pattern

	// progTags caches checkpoint program tags by executable identity
	// (installed executables are immutable; see ckpt.go).
	progTags sync.Map // *binfmt.File -> mac.Tag
}

// Option configures a Kernel.
type Option func(*Kernel)

// WithMode sets the enforcement mode.
func WithMode(m Mode) Option { return func(k *Kernel) { k.Mode = m } }

// WithPersonality sets the OS personality.
func WithPersonality(p Personality) Option { return func(k *Kernel) { k.Personality = p } }

// WithCosts overrides the cycle model.
func WithCosts(c CostModel) Option { return func(k *Kernel) { k.Costs = c } }

// WithRequireAuthenticated enables full-system enforcement: only
// installer-transformed binaries may make system calls.
func WithRequireAuthenticated() Option {
	return func(k *Kernel) { k.RequireAuthenticated = true }
}

// WithNormalizePaths enables the §5.4 symlink-race defense on
// policy-constrained path arguments.
func WithNormalizePaths() Option {
	return func(k *Kernel) { k.NormalizePaths = true }
}

// WithVerifyCache enables the site-keyed verification cache.
func WithVerifyCache() Option {
	return func(k *Kernel) { k.VerifyCache = true }
}

// WithEnforcement sets the default violation response for spawned
// processes (overridable per process via Process.Enforcement).
func WithEnforcement(e Enforcement) Option {
	return func(k *Kernel) { k.enforcement = e }
}

// WithAuditCapacity sizes the violation ring (default
// DefaultAuditCapacity).
func WithAuditCapacity(n int) Option {
	return func(k *Kernel) { k.Audit.SetCapacity(n) }
}

// WithInjector installs a fault injector on the verification path.
func WithInjector(i Injector) Option {
	return func(k *Kernel) { k.injector = i }
}

// WithNetwork attaches a loopback network, switching the socket system
// call family from validate-and-succeed stubs to real semantics: data
// movement, bounded buffers, and blocking integrated with the
// scheduler gate. Kernels sharing one Network share its port namespace.
func WithNetwork(n *anet.Network) Option {
	return func(k *Kernel) { k.Net = n }
}

// New creates a kernel. The key is the MAC key shared with the trusted
// installer; it may be nil when the kernel never enforces.
func New(fs *vfs.FS, key []byte, opts ...Option) (*Kernel, error) {
	k := &Kernel{
		FS:          fs,
		Mode:        Enforce,
		Personality: Linux,
		Costs:       DefaultCosts,
		nextPID:     1,
		procs:       make(map[int]*Process),
	}
	if key != nil {
		mk, err := mac.New(key)
		if err != nil {
			return nil, fmt.Errorf("kernel: %w", err)
		}
		k.key = mk
	}
	for _, o := range opts {
		o(k)
	}
	if k.Mode == Enforce && k.key == nil {
		return nil, errors.New("kernel: enforcement requires a MAC key")
	}
	return k, nil
}

// fdKind distinguishes file descriptor flavours.
type fdKind int

const (
	fdFile fdKind = iota + 1
	fdConsole
	fdPipeR
	fdPipeW
	fdSocket
)

type fdEntry struct {
	kind   fdKind
	node   *vfs.Node
	path   string
	offset uint32
	pipe   *pipeBuf
	sock   *socket
}

type pipeBuf struct {
	data   []byte
	closed bool
}

type socket struct {
	domain, typ, proto uint32
	// sent captures payloads when no network is attached (legacy stub
	// behaviour); with a network, bytes move through conn instead.
	sent  [][]byte
	bound bool
	port  uint16
	lis   *anet.Listener
	conn  *anet.Conn
}

// Process is one running program.
type Process struct {
	PID      int
	Name     string
	CPU      *vm.CPU
	Mem      *vm.Memory
	Exited   bool
	Code     uint32
	Killed   bool
	KilledBy KillReason

	// Enforcement selects this process's violation response; it is
	// initialized from the kernel default at Spawn and may be changed
	// between runs (per-process graded enforcement).
	Enforcement Enforcement

	// DeniedCount and AuditedCount tally violations that did not kill
	// the process (Deny and Audit modes).
	DeniedCount  uint64
	AuditedCount uint64

	kern *Kernel
	file *binfmt.File

	fds   []*fdEntry
	cwd   string
	brk   uint32
	umask uint32

	authenticated bool
	counter       uint64            // memory-checker nonce
	fdTracker     *captrack.Tracker // §5.3 capability set, nil unless installed

	// gate is the scheduler's run-slot semaphore; blocking socket calls
	// release it while parked (see internal/net). Nil outside gated
	// fleets: socket calls then fail with EAGAIN instead of blocking.
	gate anet.Gate

	// Console I/O.
	Stdin    []byte
	stdinPos int
	Stdout   []byte

	// Statistics.
	SyscallCount    uint64
	VerifyCount     uint64
	VerifyAESBlocks uint64

	// Verification-cache statistics (all zero unless the kernel runs
	// with WithVerifyCache). Atomic so a monitor goroutine may sample a
	// running fleet's hit rates without stopping the workers.
	CacheHits          atomic.Uint64
	CacheMisses        atomic.Uint64
	CacheInvalidations atomic.Uint64

	// Tracing (Permissive mode training runs).
	Trace   []TraceEntry
	DoTrace bool

	sigHandlers map[uint32]uint32

	// vcache is the site-keyed verification cache (nil until first fill).
	vcache map[uint32]*verifyEntry

	// Reusable trap-handler scratch. The verification path is the
	// hottest kernel code; all of its per-call slices live here so a
	// steady-state verify performs no heap allocation (guarded by
	// TestVerifyAllocs / BenchmarkVerifyAllocs).
	scratchArgs  []policy.EncodedArg
	scratchStr   []pendingString
	scratchPat   []pendingPattern
	scratchSpans []genSpan
	scratchPats  []sitePattern
	scratchPred  []uint32
	scratchEnc   []byte
	scratchEntry verifyEntry
}

// arg returns system call argument i from its register (R1..R5).
func (p *Process) arg(i int) uint32 { return p.CPU.Regs[isa.R1+isa.Reg(i)] }

// pendingString is one MAC-checked buffer awaiting verification.
type pendingString struct {
	contents []byte
	tag      mac.Tag
}

// pendingPattern is one pattern-constrained argument awaiting compilation.
type pendingPattern struct {
	argIndex int
	tag      mac.Tag // content MAC of the pattern source (compile-cache key)
	source   []byte  // pattern AS contents (NUL-terminated)
}

// genSpan records the store-generation of one MAC-checked byte range.
type genSpan struct {
	addr uint32
	n    uint32
	gen  uint64
}

// sitePattern is a compiled pattern bound to its argument index.
type sitePattern struct {
	argIndex int
	pat      *pattern.Pattern
}

// verifyEntry caches the outcome of the AES-heavy verification steps for
// one call site. A later trap at the site may skip the call MAC and
// string MAC computations iff
//
//   - the auth record address and bytes are unchanged,
//   - the store-generation of every MAC-checked buffer is unchanged
//     (no application store could have touched it), and
//   - the canonical call encoding rebuilt from the *current* registers
//     and AS headers equals the verified one.
//
// The entry also carries the derived artifacts (decoded record,
// predecessor IDs, compiled patterns) so a hit re-parses nothing.
type verifyEntry struct {
	recAddr  uint32
	recBytes []byte
	encBytes []byte
	rec      policy.AuthRecord
	spans    []genSpan
	predIDs  []uint32
	pats     []sitePattern
}

// Spawn loads an executable into a new process. It is safe to call
// concurrently (the SMP scheduler and the supervisor both spawn while
// sibling processes run).
func (k *Kernel) Spawn(f *binfmt.File, name string) (*Process, error) {
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	k.mu.Unlock()
	p := &Process{
		PID:         pid,
		Name:        name,
		kern:        k,
		cwd:         "/",
		umask:       0o22,
		sigHandlers: make(map[uint32]uint32),
		Enforcement: k.enforcement,
	}
	if err := p.loadImage(f); err != nil {
		return nil, err
	}
	// Standard descriptors.
	p.fds = make([]*fdEntry, 3, 16)
	p.fds[0] = &fdEntry{kind: fdConsole}
	p.fds[1] = &fdEntry{kind: fdConsole}
	p.fds[2] = &fdEntry{kind: fdConsole}
	k.mu.Lock()
	k.procs[p.PID] = p
	k.mu.Unlock()
	return p, nil
}

// loadImage (re)initializes the process address space from a binary.
func (p *Process) loadImage(f *binfmt.File) error {
	base, img, err := f.Image()
	if err != nil {
		return fmt.Errorf("kernel: load %s: %w", p.Name, err)
	}
	mem := vm.NewMemory(binfmt.TextBase, DefaultMemSize)
	if err := mem.KernelWrite(base, img); err != nil {
		return fmt.Errorf("kernel: load %s: %w", p.Name, err)
	}
	var end uint32 = binfmt.TextBase
	for _, s := range f.Sections {
		if s.Size == 0 {
			continue
		}
		mem.Map(vm.Segment{Name: s.Name, Start: s.Addr, End: s.End(), Perms: s.Flags})
		if s.End() > end {
			end = s.End()
		}
	}
	// Heap begins after the image; brk grows it.
	heapStart := (end + 0xfff) &^ 0xfff
	p.brk = heapStart
	mem.Map(vm.Segment{Name: "heap", Start: heapStart, End: heapStart, Perms: vm.PermRead | vm.PermWrite})
	// Stack at the top, executable (2005-era semantics; see internal/vm).
	top := mem.Limit()
	mem.Map(vm.Segment{
		Name: "stack", Start: top - DefaultStackSize, End: top,
		Perms: vm.PermRead | vm.PermWrite | vm.PermExec,
	})

	cpu := p.CPU
	if cpu == nil {
		cpu = vm.New(mem, &trapAdapter{p})
		cpu.PC = f.Entry
		cpu.Regs[isa.SP] = top
	} else {
		// execve: replace the image in place, keeping the cycle counter.
		cpu.Reset(mem, f.Entry, top)
	}
	text := f.Section(binfmt.SecText)
	if text != nil {
		cpu.PrimeICache(text.Addr, text.End())
	}

	p.CPU = cpu
	p.Mem = mem
	// A fault injector that also models torn kernel stores hooks the
	// write path of every address space it observes.
	if wf, ok := p.kern.injector.(vm.WriteFaulter); ok {
		mem.SetWriteFaulter(wf)
	}
	p.file = f
	p.authenticated = f.Authenticated
	p.counter = 0
	p.fdTracker = nil
	p.vcache = nil // execve: cached sites refer to the old image
	if addr, ok := f.SymbolAddr("__asc_fdset"); ok && p.kern.key != nil {
		tr, err := captrack.Attach(p.kern.key, addr, captrack.DefaultCapacity)
		if err != nil {
			return fmt.Errorf("kernel: attach fd tracker: %w", err)
		}
		p.fdTracker = tr
	}
	return nil
}

// trapAdapter delivers VM traps to the kernel with the owning process.
type trapAdapter struct{ p *Process }

func (t *trapAdapter) Trap(c *vm.CPU, site uint32, authed bool) (uint32, bool, error) {
	return t.p.kern.trap(t.p, site, authed)
}

// Run executes the process until exit, kill, fault, or cycle budget
// exhaustion. Concurrent Run calls on one kernel are safe as long as
// each Process is driven by a single goroutine at a time; cross-process
// kernel state (the VFS, the audit ring, the pattern cache, PID
// allocation) is synchronized, and all per-call verification scratch is
// per-Process.
func (k *Kernel) Run(p *Process, maxCycles uint64) error {
	err := p.CPU.Run(maxCycles)
	if err != nil {
		return err
	}
	return nil
}

// kill terminates the process and records the audit entry.
func (k *Kernel) kill(p *Process, num uint16, site uint32, reason KillReason) {
	p.Killed = true
	p.KilledBy = reason
	p.Exited = true
	p.Code = 0xff
	k.record(p, num, site, reason, ActionKill)
}

// record appends a structured violation to the bounded audit ring.
func (k *Kernel) record(p *Process, num uint16, site uint32, reason KillReason, act Action) {
	k.Audit.Append(Violation{
		PID: p.PID, Program: p.Name, Num: num, Name: sys.Name(num), Site: site,
		Reason: reason, Action: act,
	})
}

// violate applies the process's enforcement mode to a verification
// failure. handled=true means the trap is finished (the returned value
// and halt flag go back to the CPU); handled=false means audit-only:
// the caller proceeds to execute the call.
func (k *Kernel) violate(p *Process, num uint16, site uint32, reason KillReason) (ret uint32, halt, handled bool) {
	switch p.Enforcement {
	case EnforceDeny:
		p.DeniedCount++
		k.record(p, num, site, reason, ActionDeny)
		return errno(sys.EPERM), false, true
	case EnforceAudit:
		p.AuditedCount++
		k.record(p, num, site, reason, ActionAudit)
		return 0, false, false
	default:
		k.kill(p, num, site, reason)
		return 0, true, true
	}
}

// resyncCF re-establishes the memory checker's invariant after a
// non-fatal (Deny/Audit) violation of an authenticated call. Verification
// aborted somewhere in the three-step check, so the control-flow state in
// application memory may no longer match the in-kernel counter, and the
// chain no longer records the denied site's block. Advancing
// {lastBlock, lbMAC, counter} to the record's block keeps exactly one
// violation per bad call; without it the first denial would cascade into
// a predecessor violation at every later site. This is a deliberate
// availability/strictness trade: Deny and Audit accept the record's
// unverified BlockID into the chain (the call itself was still refused
// or flagged), where Kill mode never reaches this point.
func (k *Kernel) resyncCF(p *Process) {
	recAddr := p.CPU.Regs[isa.R6]
	recBytes, err := p.Mem.KernelRead(recAddr, policy.AuthRecordSize)
	if err != nil {
		return
	}
	rec, err := policy.DecodeAuthRecord(recBytes)
	if err != nil || !rec.Desc.ControlFlow() {
		return
	}
	next := p.counter + 1
	newMAC, blocks := policy.StateMAC(k.key, rec.BlockID, next)
	k.chargeAES(p, blocks)
	if err := p.Mem.KernelStore32(rec.LbPtr, rec.BlockID); err != nil {
		return
	}
	if err := p.Mem.KernelWrite(rec.LbPtr+4, newMAC[:]); err != nil {
		return
	}
	p.counter = next
}

// trap is the software trap handler.
func (k *Kernel) trap(p *Process, site uint32, authed bool) (uint32, bool, error) {
	p.CPU.Cycles += k.Costs.Trap
	p.SyscallCount++
	num := uint16(p.CPU.Regs[isa.R0])
	// One signature lookup per trap, shared by the verification path
	// (path normalization) and the capability-set maintenance.
	sig, sigOK := sys.Lookup(num)

	if k.Mode == Enforce && (p.authenticated || k.RequireAuthenticated) {
		if !authed || !p.authenticated {
			if ret, halt, handled := k.violate(p, num, site, KillUnauthenticated); handled {
				return ret, halt, nil
			}
		} else if reason, ok := k.verify(p, num, site, sig, sigOK); !ok {
			ret, halt, handled := k.violate(p, num, site, reason)
			if !halt {
				// Deny or Audit: the process lives on — restore the
				// monitor's control-flow invariant so only this call is
				// flagged (see resyncCF).
				k.resyncCF(p)
			}
			if handled {
				return ret, halt, nil
			}
		}
	} else if k.MonitorOverhead != nil {
		extra, allow := k.MonitorOverhead(p, num, site)
		p.CPU.Cycles += extra
		if !allow {
			k.kill(p, num, site, "blocked by external monitor policy")
			return 0, true, nil
		}
	}

	var args [sys.MaxArgs]uint32
	for i := 0; i < sys.MaxArgs; i++ {
		args[i] = p.arg(i)
	}
	ret, exit := k.dispatch(p, num, site, args)
	if !exit && p.fdTracker != nil && k.Mode == Enforce && p.authenticated {
		if err := k.updateFDSet(p, num, sig, sigOK, args, ret); err != nil {
			k.kill(p, num, site, KillBadState)
			return 0, true, nil
		}
	}
	if p.DoTrace && !exit {
		p.Trace = append(p.Trace, TraceEntry{Num: num, Site: site, Args: args, Ret: ret})
	}
	if p.DoTrace && exit {
		p.Trace = append(p.Trace, TraceEntry{Num: num, Site: site, Args: args})
	}
	return ret, exit, nil
}

// sumCycles charges the cycle cost of aes block operations.
func (k *Kernel) chargeAES(p *Process, blocks int) {
	p.CPU.Cycles += uint64(blocks) * k.Costs.PerAESBlock
	p.VerifyAESBlocks += uint64(blocks)
}

// readASView reads the {length, MAC} header of an authenticated string
// whose bytes pointer is addr, without touching the contents.
func (k *Kernel) readASView(p *Process, addr uint32) (policy.ASView, bool) {
	if addr < policy.ASHeaderSize {
		return policy.ASView{}, false
	}
	length, err := p.Mem.KernelLoad32(addr - 20)
	if err != nil || length > policy.MaxASLen {
		return policy.ASView{}, false
	}
	tagBytes, err := p.Mem.KernelRead(addr-16, mac.Size)
	if err != nil {
		return policy.ASView{}, false
	}
	var tag mac.Tag
	copy(tag[:], tagBytes)
	return policy.ASView{Addr: addr, Len: length, MAC: tag}, true
}

// readAS reads an authenticated-string view {addr,len,mac} whose bytes
// pointer is addr. Returns the view and the string bytes.
func (k *Kernel) readAS(p *Process, addr uint32) (policy.ASView, []byte, bool) {
	view, ok := k.readASView(p, addr)
	if !ok {
		return policy.ASView{}, nil, false
	}
	contents, err := p.Mem.KernelRead(addr, view.Len)
	if err != nil {
		return policy.ASView{}, nil, false
	}
	return view, contents, true
}

// asSpan is the byte range an authenticated string occupies in memory:
// the {length, MAC} header plus the contents.
func asSpan(view policy.ASView) genSpan {
	return genSpan{addr: view.Addr - policy.ASHeaderSize, n: policy.ASHeaderSize + view.Len}
}

// verify implements the three-step check of Section 3.4, with an optional
// site-keyed cache in front of the AES-heavy Steps 1 and 2.
func (k *Kernel) verify(p *Process, num uint16, site uint32, sig sys.Sig, sigOK bool) (KillReason, bool) {
	p.VerifyCount++

	// The auth record address arrives in R6.
	recAddr := p.CPU.Regs[isa.R6]

	// Fault-injection hook: a campaign may perturb the platform here,
	// before this trap's verification reads any state.
	if k.injector != nil {
		k.injector.BeforeVerify(p, num, site, recAddr)
	}

	var entry *verifyEntry
	if k.VerifyCache {
		entry = p.vcache[site]
	}
	if entry != nil && k.cachedHit(p, entry, num, site, recAddr) {
		p.CacheHits.Add(1)
		p.CPU.Cycles += k.Costs.CacheHit
		return k.verifyDynamic(p, &entry.rec, entry.predIDs, entry.pats, sig, sigOK)
	}
	if entry != nil {
		// The site was cached but a MAC-checked buffer (or the record,
		// or the register state) changed: fall back to full AES
		// verification, which preserves every kill path.
		p.CacheInvalidations.Add(1)
		delete(p.vcache, site)
	}
	if k.VerifyCache {
		p.CacheMisses.Add(1)
	}
	e, cacheable, reason, ok := k.verifyMACs(p, num, site, recAddr, k.VerifyCache)
	if !ok {
		return reason, false
	}
	if cacheable {
		if p.vcache == nil {
			p.vcache = make(map[uint32]*verifyEntry)
		}
		p.vcache[site] = e
	}
	return k.verifyDynamic(p, &e.rec, e.predIDs, e.pats, sig, sigOK)
}

// cachedHit decides whether the cached verification of a site still
// covers the current trap. It is AES-free: store-generation compares, a
// record byte compare, and a rebuild of the canonical encoding from the
// live register and AS-header state.
func (k *Kernel) cachedHit(p *Process, e *verifyEntry, num uint16, site, recAddr uint32) bool {
	if recAddr != e.recAddr {
		return false
	}
	// No application store may have touched any MAC-checked buffer.
	for i := range e.spans {
		g, ok := p.Mem.SpanGeneration(e.spans[i].addr, e.spans[i].n)
		if !ok || g != e.spans[i].gen {
			return false
		}
	}
	// The auth record bytes must be exactly the verified ones.
	recBytes, err := p.Mem.KernelRead(recAddr, uint32(len(e.recBytes)))
	if err != nil || !bytes.Equal(recBytes, e.recBytes) {
		return false
	}
	// Rebuild the canonical encoding from the actual trap state; equality
	// with the verified encoding proves the call MAC would match again,
	// and the generation checks above prove the string MACs would too.
	enc := policy.CallEncoding{
		Num: num, Site: site, Desc: e.rec.Desc, BlockID: e.rec.BlockID, LbPtr: e.rec.LbPtr,
	}
	enc.Args = p.scratchArgs[:0]
	patIdx := 0
	for i := 0; i < sys.MaxArgs; i++ {
		val := p.arg(i)
		switch {
		case e.rec.Desc.ArgConstrained(i) && e.rec.Desc.ArgString(i):
			view, ok := k.readASView(p, val)
			if !ok {
				return false
			}
			enc.Args = append(enc.Args, policy.EncodedArg{
				Index: i, IsString: true, Value: view.Addr, Len: view.Len, MAC: view.MAC,
			})
		case e.rec.Desc.ArgConstrained(i):
			enc.Args = append(enc.Args, policy.EncodedArg{Index: i, Value: val})
		case e.rec.Desc.ArgPattern(i):
			if patIdx >= len(e.rec.PatternPtrs) {
				return false
			}
			view, ok := k.readASView(p, e.rec.PatternPtrs[patIdx])
			patIdx++
			if !ok {
				return false
			}
			enc.Args = append(enc.Args, policy.EncodedArg{
				Index: i, IsPattern: true, Value: view.Addr, Len: view.Len, MAC: view.MAC,
			})
		}
	}
	var predView policy.ASView
	if e.rec.Desc.ControlFlow() {
		view, ok := k.readASView(p, e.rec.PredSetPtr)
		if !ok {
			return false
		}
		predView = view
		enc.PredSet = &predView
	}
	p.scratchEnc = enc.AppendBytes(p.scratchEnc[:0])
	p.scratchArgs = enc.Args[:0]
	return bytes.Equal(p.scratchEnc, e.encBytes)
}

// verifyMACs performs Steps 1 and 2: reconstruct the encoded call from the
// actual trap state, check the call MAC, and check the integrity of every
// authenticated string. When fill is set (and every checked buffer maps to
// a single segment) it returns a heap-allocated entry ready for the cache;
// otherwise it returns a per-process scratch entry carrying the decoded
// artifacts the dynamic steps need.
func (k *Kernel) verifyMACs(p *Process, num uint16, site, recAddr uint32, fill bool) (*verifyEntry, bool, KillReason, bool) {
	p.CPU.Cycles += k.Costs.AuthFixed

	// The descriptor (the record's first word) determines whether a
	// pattern extension follows the fixed part.
	descWord, err := p.Mem.KernelLoad32(recAddr)
	if err != nil {
		return nil, false, KillBadRecord, false
	}
	recSize := uint32(policy.AuthRecordSize + 4*policy.Descriptor(descWord).NumPatterns())
	recBytes, err := p.Mem.KernelRead(recAddr, recSize)
	if err != nil {
		return nil, false, KillBadRecord, false
	}
	rec, err := policy.DecodeAuthRecord(recBytes)
	if err != nil {
		return nil, false, KillBadRecord, false
	}

	// Reconstruct the encoded call from actual behaviour.
	enc := policy.CallEncoding{
		Num:     num,
		Site:    site,
		Desc:    rec.Desc,
		BlockID: rec.BlockID,
		LbPtr:   rec.LbPtr,
	}
	enc.Args = p.scratchArgs[:0]
	strChecks := p.scratchStr[:0]
	patChecks := p.scratchPat[:0]
	spans := p.scratchSpans[:0]
	patIdx := 0
	for i := 0; i < sys.MaxArgs; i++ {
		val := p.arg(i)
		switch {
		case rec.Desc.ArgConstrained(i) && rec.Desc.ArgString(i):
			view, contents, ok := k.readAS(p, val)
			if !ok {
				return nil, false, KillBadString, false
			}
			enc.Args = append(enc.Args, policy.EncodedArg{
				Index: i, IsString: true, Value: view.Addr, Len: view.Len, MAC: view.MAC,
			})
			strChecks = append(strChecks, pendingString{contents, view.MAC})
			spans = append(spans, asSpan(view))
		case rec.Desc.ArgConstrained(i):
			enc.Args = append(enc.Args, policy.EncodedArg{Index: i, Value: val})
		case rec.Desc.ArgPattern(i):
			if patIdx >= len(rec.PatternPtrs) {
				return nil, false, KillBadRecord, false
			}
			view, contents, ok := k.readAS(p, rec.PatternPtrs[patIdx])
			patIdx++
			if !ok {
				return nil, false, KillBadString, false
			}
			enc.Args = append(enc.Args, policy.EncodedArg{
				Index: i, IsPattern: true, Value: view.Addr, Len: view.Len, MAC: view.MAC,
			})
			strChecks = append(strChecks, pendingString{contents, view.MAC})
			patChecks = append(patChecks, pendingPattern{argIndex: i, tag: view.MAC, source: contents})
			spans = append(spans, asSpan(view))
		}
	}
	var predView policy.ASView
	var predBytes []byte
	if rec.Desc.ControlFlow() {
		view, contents, ok := k.readAS(p, rec.PredSetPtr)
		if !ok {
			return nil, false, KillBadRecord, false
		}
		predView, predBytes = view, contents
		enc.PredSet = &predView
		strChecks = append(strChecks, pendingString{contents, view.MAC})
		spans = append(spans, asSpan(view))
	}

	// Step 1: call MAC.
	p.scratchEnc = enc.AppendBytes(p.scratchEnc[:0])
	got, blocks := k.key.Sum(p.scratchEnc)
	k.chargeAES(p, blocks)
	if !got.Equal(rec.CallMAC) {
		p.keepScratch(enc.Args, strChecks, patChecks, spans)
		return nil, false, KillBadCallMAC, false
	}

	// Step 2: authenticated string contents.
	for _, sc := range strChecks {
		ok, blocks := k.key.Verify(sc.contents, sc.tag)
		k.chargeAES(p, blocks)
		if !ok {
			p.keepScratch(enc.Args, strChecks, patChecks, spans)
			return nil, false, KillBadString, false
		}
	}

	// Compile the (now MAC-verified) pattern sources; compilation is
	// cached per distinct content tag, so pattern.Parse runs once per
	// distinct pattern across all processes of this kernel.
	pats := p.scratchPats[:0]
	for _, pc := range patChecks {
		pat, err := k.compilePattern(pc.tag, pc.source)
		if err != nil {
			p.keepScratch(enc.Args, strChecks, patChecks, spans)
			return nil, false, KillBadRecord, false
		}
		pats = append(pats, sitePattern{argIndex: pc.argIndex, pat: pat})
	}

	// Decode the (MAC-verified) predecessor set.
	var predIDs []uint32
	if rec.Desc.ControlFlow() {
		ids, err := policy.AppendPredSet(p.scratchPred[:0], predBytes)
		p.scratchPred = ids
		if err != nil {
			p.keepScratch(enc.Args, strChecks, patChecks, spans)
			return nil, false, KillBadPredecessor, false
		}
		predIDs = ids
	}

	e := &p.scratchEntry
	cacheable := false
	if fill {
		filled := &verifyEntry{
			recAddr:  recAddr,
			recBytes: append([]byte(nil), recBytes...),
			encBytes: append([]byte(nil), p.scratchEnc...),
			rec:      rec,
			spans:    append([]genSpan(nil), spans...),
			predIDs:  append([]uint32(nil), predIDs...),
			pats:     append([]sitePattern(nil), pats...),
		}
		cacheable = true
		for i := range filled.spans {
			g, ok := p.Mem.SpanGeneration(filled.spans[i].addr, filled.spans[i].n)
			if !ok {
				// A buffer straddles segments: immutability is not
				// provable, so this site is not cacheable.
				cacheable = false
				break
			}
			filled.spans[i].gen = g
		}
		if cacheable {
			e = filled
		}
	}
	if e == &p.scratchEntry {
		*e = verifyEntry{rec: rec, predIDs: predIDs, pats: pats}
	}
	p.keepScratch(enc.Args, strChecks, patChecks, spans)
	p.scratchPats = pats
	return e, cacheable, "", true
}

// keepScratch hands the (possibly grown) per-call slices back to the
// process so the next verification reuses their capacity.
func (p *Process) keepScratch(args []policy.EncodedArg, str []pendingString, pat []pendingPattern, spans []genSpan) {
	p.scratchArgs = args[:0]
	p.scratchStr = str[:0]
	p.scratchPat = pat[:0]
	p.scratchSpans = spans[:0]
}

// compilePattern returns the compiled pattern for MAC-verified source
// bytes, caching by content tag. Concurrent first compilations of the
// same pattern may race benignly; both produce identical *Pattern values
// and LoadOrStore keeps exactly one.
func (k *Kernel) compilePattern(tag mac.Tag, source []byte) (*pattern.Pattern, error) {
	if pat, ok := k.patterns.Load(tag); ok {
		return pat.(*pattern.Pattern), nil
	}
	src := strings.TrimRight(string(source), "\x00")
	pat, err := pattern.Parse(src)
	if err != nil {
		return nil, err
	}
	got, _ := k.patterns.LoadOrStore(tag, pat)
	return got.(*pattern.Pattern), nil
}

// verifyDynamic performs the per-call checks that are never cached: path
// normalization, pattern matching of the live arguments, capability
// membership, and the control-flow policy via the online memory checker.
func (k *Kernel) verifyDynamic(p *Process, rec *policy.AuthRecord, predIDs []uint32, pats []sitePattern, sig sys.Sig, sigOK bool) (KillReason, bool) {
	// Step 2a (§5.4 extension): policy-constrained path arguments must
	// normalize to themselves — a symlink planted at the approved name
	// redirects the resolution and is rejected.
	if k.NormalizePaths && sigOK {
		for i := 0; i < sig.NArgs(); i++ {
			if !rec.Desc.ArgString(i) || sig.Args[i] != sys.ArgPath {
				continue
			}
			raw, err := p.Mem.CString(p.arg(i), 4096)
			if err != nil {
				return KillBadString, false
			}
			want := p.resolvePath(raw)
			got, err := k.FS.Normalize(want)
			if err != nil {
				continue // target does not exist yet (e.g. O_CREAT): nothing to race
			}
			p.CPU.Cycles += uint64(len(want)) * 2 // modeled path-walk cost
			if got != want {
				return KillSymlinkRace, false
			}
		}
	}

	// Step 2b (§5.1 extension): pattern-constrained arguments. The
	// pattern source is MAC-verified (or cache-proven unchanged); match
	// the actual argument against it. (Without application-supplied
	// hints the kernel pays for the full match; see internal/pattern for
	// the hint protocol.)
	for _, sp := range pats {
		arg, err := p.Mem.CString(p.arg(sp.argIndex), 4096)
		if err != nil {
			return KillBadPattern, false
		}
		p.CPU.Cycles += uint64(len(arg)+len(sp.pat.String())) * 3
		if _, err := sp.pat.Match(arg); err != nil {
			return KillBadPattern, false
		}
	}

	// Step 2c (§5.3 extension): tracked descriptor capabilities. The
	// argument must be a member of the MAC-protected live-descriptor set.
	for i := 0; i < sys.MaxArgs; i++ {
		if !rec.Desc.ArgFD(i) {
			continue
		}
		if p.fdTracker == nil {
			return KillBadCapability, false
		}
		before := p.fdTracker.AESBlocks
		err := p.fdTracker.Check(p.Mem, p.arg(i))
		k.chargeAES(p, p.fdTracker.AESBlocks-before)
		switch {
		case err == nil:
		case errors.Is(err, captrack.ErrNotTracked):
			return KillBadCapability, false
		default:
			return KillBadState, false
		}
	}

	// Step 3: control flow policy via the online memory checker. Never
	// cached: the state MAC is bound to the in-kernel counter nonce and
	// must be checked and advanced on every call.
	if rec.Desc.ControlFlow() {
		lastBlock, err := p.Mem.KernelLoad32(rec.LbPtr)
		if err != nil {
			return KillBadState, false
		}
		lbMACBytes, err := p.Mem.KernelRead(rec.LbPtr+4, mac.Size)
		if err != nil {
			return KillBadState, false
		}
		var lbMAC mac.Tag
		copy(lbMAC[:], lbMACBytes)
		want, blocks := policy.StateMAC(k.key, lastBlock, p.counter)
		k.chargeAES(p, blocks)
		if !want.Equal(lbMAC) {
			return KillBadState, false
		}
		if !policy.PredSetContains(predIDs, lastBlock) {
			return KillBadPredecessor, false
		}
		// Update: counter++, lastBlock = blockID, new state MAC. The MAC
		// written to application memory is always the intended
		// single-increment one; the injector's NonceUpdate hook may
		// desynchronize the in-kernel counter (dropped or duplicated
		// update), which the next control-flow check then detects.
		next := p.counter + 1
		newMAC, blocks := policy.StateMAC(k.key, rec.BlockID, next)
		k.chargeAES(p, blocks)
		if err := p.Mem.KernelStore32(rec.LbPtr, rec.BlockID); err != nil {
			return KillBadState, false
		}
		if err := p.Mem.KernelWrite(rec.LbPtr+4, newMAC[:]); err != nil {
			return KillBadState, false
		}
		if k.injector != nil {
			p.counter += uint64(k.injector.NonceUpdate(p))
		} else {
			p.counter = next
		}
	}
	return "", true
}

// updateFDSet maintains the §5.3 capability set across calls that create
// or destroy descriptors.
func (k *Kernel) updateFDSet(p *Process, num uint16, sig sys.Sig, sigOK bool, args [sys.MaxArgs]uint32, ret uint32) error {
	if !sigOK {
		return nil
	}
	before := p.fdTracker.AESBlocks
	defer func() { k.chargeAES(p, p.fdTracker.AESBlocks-before) }()
	switch {
	case sig.ReturnFD && int32(ret) >= 0:
		if err := p.fdTracker.Add(p.Mem, ret); err != nil && !errors.Is(err, captrack.ErrFull) {
			return err
		}
	case num == sys.SysClose && ret == 0:
		if err := p.fdTracker.Remove(p.Mem, args[0]); err != nil && !errors.Is(err, captrack.ErrNotTracked) {
			return err
		}
	}
	return nil
}

// resolvePath joins a process-relative path against the cwd.
func (p *Process) resolvePath(path string) string {
	if path == "" {
		return p.cwd
	}
	if path[0] == '/' {
		return path
	}
	if p.cwd == "/" {
		return "/" + path
	}
	return p.cwd + "/" + path
}

// readPath reads a path argument from process memory.
func (p *Process) readPath(addr uint32) (string, bool) {
	s, err := p.Mem.CString(addr, 4096)
	if err != nil {
		return "", false
	}
	if strings.ContainsRune(s, 0) {
		return "", false
	}
	return p.resolvePath(s), true
}

// allocFD installs an fd entry at the lowest free slot.
func (p *Process) allocFD(e *fdEntry) (int, bool) {
	for i, f := range p.fds {
		if f == nil {
			p.fds[i] = e
			return i, true
		}
	}
	if len(p.fds) >= maxFDs {
		return 0, false
	}
	p.fds = append(p.fds, e)
	return len(p.fds) - 1, true
}

func (p *Process) fd(n uint32) *fdEntry {
	if int(n) >= len(p.fds) {
		return nil
	}
	return p.fds[n]
}

// Output returns everything the process wrote to the console.
func (p *Process) Output() string { return string(p.Stdout) }
