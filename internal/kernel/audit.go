// audit.go implements the kernel's bounded violation log: structured
// Violation records in a fixed-capacity ring. Long fault-injection
// campaigns and Deny/Audit-mode processes can generate violations at
// system-call rate; the ring bounds kernel memory while counting every
// record it had to drop.
package kernel

import (
	"fmt"
	"strings"
)

// Action is the enforcement decision recorded with a violation.
type Action string

// Enforcement actions.
const (
	ActionKill  Action = "kill"
	ActionDeny  Action = "deny"
	ActionAudit Action = "audit"
)

// Violation is one structured monitor decision: a system call that failed
// verification, together with the action the kernel took.
type Violation struct {
	Seq     uint64 // global sequence number (monotonic per kernel)
	PID     int
	Program string
	Num     uint16
	Name    string
	Site    uint32
	Reason  KillReason
	Action  Action
}

// AuditEntry is the historical name for a Violation record.
type AuditEntry = Violation

func (a Violation) String() string {
	act := a.Action
	if act == "" {
		act = ActionKill
	}
	return fmt.Sprintf("pid %d (%s): %s at %#x: %s [%s]", a.PID, a.Program, a.Name, a.Site, string(a.Reason), act)
}

// DefaultAuditCapacity is the violation ring's capacity unless overridden
// with WithAuditCapacity.
const DefaultAuditCapacity = 1024

// AuditRing is a fixed-capacity ring of Violation records. Appends past
// capacity overwrite the oldest entry and bump the dropped counter.
type AuditRing struct {
	entries []Violation
	start   int    // index of the oldest entry
	seq     uint64 // total records ever appended
	dropped uint64
	cap     int
}

// init lazily sizes the ring (the zero value uses DefaultAuditCapacity).
func (r *AuditRing) init() {
	if r.cap == 0 {
		r.cap = DefaultAuditCapacity
	}
}

// SetCapacity sizes an empty ring. It panics if records were already
// appended (capacity is a construction-time property).
func (r *AuditRing) SetCapacity(n int) {
	if r.seq != 0 {
		panic("kernel: AuditRing.SetCapacity after append")
	}
	if n < 1 {
		n = 1
	}
	r.cap = n
}

// Append records a violation, assigning its sequence number.
func (r *AuditRing) Append(v Violation) {
	r.init()
	v.Seq = r.seq
	r.seq++
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, v)
		return
	}
	r.entries[r.start] = v
	r.start = (r.start + 1) % len(r.entries)
	r.dropped++
}

// Len returns the number of records currently held.
func (r *AuditRing) Len() int { return len(r.entries) }

// Total returns the number of records ever appended.
func (r *AuditRing) Total() uint64 { return r.seq }

// Dropped returns the number of records overwritten by later appends.
func (r *AuditRing) Dropped() uint64 { return r.dropped }

// Entries returns the held records, oldest first.
func (r *AuditRing) Entries() []Violation {
	out := make([]Violation, 0, len(r.entries))
	out = append(out, r.entries[r.start:]...)
	out = append(out, r.entries[:r.start]...)
	return out
}

// Last returns the most recent record, if any.
func (r *AuditRing) Last() (Violation, bool) {
	if len(r.entries) == 0 {
		return Violation{}, false
	}
	idx := r.start - 1
	if idx < 0 {
		idx += len(r.entries)
	}
	return r.entries[idx], true
}

func (r AuditRing) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit ring (%d held, %d total, %d dropped):", len(r.entries), r.seq, r.dropped)
	for _, v := range r.Entries() {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}
