// perf.go regenerates the performance tables: the per-call microbenchmark
// (Table 4), the macrobenchmark suite (Table 6), the Andrew-style
// multiprogram benchmark (Section 4.3), and the enforcement-mechanism
// comparison of Section 2.3.
package bench

import (
	"fmt"

	"asc/internal/kernel"
	"asc/internal/libc"
	"asc/internal/systrace"
	"asc/internal/workload"
)

// --- Table 4: microbenchmark ---

// Table4Row is one system call's per-call cost.
type Table4Row struct {
	Call        string
	OrigCycles  float64
	AuthCycles  float64
	OverheadPct float64
	// CachedCycles and CachedOverheadPct measure the same authenticated
	// call with the per-site verification cache enabled; the loop body
	// traps from a single site, so after the first call every
	// verification is a hit.
	CachedCycles      float64
	CachedOverheadPct float64
	PaperOrig         float64
	PaperAuth         float64
	PaperOverhead     float64
}

// Table4Data is the microbenchmark table.
type Table4Data struct {
	Rows []Table4Row
	// LoopCost is the measured per-iteration loop overhead that was
	// subtracted (the paper's "loop cost" row).
	LoopCost float64
}

// microSource builds a loop executing one call n times. The pread/pwrite
// forms keep the file offset fixed so every iteration costs the same.
func microSource(call string, n int) string {
	body := map[string]string{
		"getpid": "        CALL getpid\n",
		"gettimeofday": `        MOVI r1, buf
        CALL gettimeofday
`,
		"brk": `        MOVI r1, 0
        CALL brk
`,
		"read(4096)": `        MOV r1, r10
        MOVI r2, buf
        MOVI r3, 4096
        MOVI r4, 0
        CALL pread
`,
		"write(4096)": `        MOV r1, r11
        MOVI r2, buf
        MOVI r3, 4096
        MOVI r4, 0
        CALL pwrite
`,
		"empty": "",
	}[call]
	return fmt.Sprintf(`        .text
        .global main
main:
        PUSH fp
        MOV fp, sp
        MOVI r1, inpath
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOV r10, r0
        MOVI r1, outpath
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r11, r0
        MOVI r12, %d
.loop:
%s        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        POP fp
        MOVI r0, 0
        RET
        .rodata
inpath: .asciz "/data/micro.in"
outpath: .asciz "/tmp/micro.out"
        .bss
buf:    .space 4096
`, n, body)
}

// measureMicro returns per-iteration cycles for a call by differencing
// two loop lengths (startup and I/O setup cancel out).
func measureMicro(call string, key []byte, authenticated bool, opts ...kernel.Option) (float64, error) {
	const n1, n2 = 100, 1100
	run := func(n int) (uint64, error) {
		name := fmt.Sprintf("micro-%s-%d", call, n)
		orig, auth, err := buildPair(name, microSource(call, n), key)
		if err != nil {
			return 0, err
		}
		exe := orig
		mode := kernel.Permissive
		if authenticated {
			exe, mode = auth, kernel.Enforce
		}
		k, err := newBenchKernel(key, mode, opts...)
		if err != nil {
			return 0, err
		}
		p, err := runOnce(k, exe, name, "")
		if err != nil {
			return 0, err
		}
		return p.CPU.Cycles, nil
	}
	c1, err := run(n1)
	if err != nil {
		return 0, err
	}
	c2, err := run(n2)
	if err != nil {
		return 0, err
	}
	return float64(c2-c1) / float64(n2-n1), nil
}

var table4Paper = map[string][3]float64{
	"getpid":       {1141, 5045, 342.2},
	"gettimeofday": {1395, 5703, 308.8},
	"read(4096)":   {7324, 10013, 36.7},
	"write(4096)":  {39479, 40396, 2.3},
	"brk":          {1155, 5083, 340.1},
}

// Table4 regenerates "Effect of Authentication".
func Table4(key []byte) (*Table4Data, error) {
	out := &Table4Data{}
	loop, err := measureMicro("empty", key, false)
	if err != nil {
		return nil, err
	}
	out.LoopCost = loop
	for _, call := range []string{"getpid", "gettimeofday", "read(4096)", "write(4096)", "brk"} {
		orig, err := measureMicro(call, key, false)
		if err != nil {
			return nil, err
		}
		auth, err := measureMicro(call, key, true)
		if err != nil {
			return nil, err
		}
		cached, err := measureMicro(call, key, true, kernel.WithVerifyCache(), kernel.WithBatchVerify(BatchDepth))
		if err != nil {
			return nil, err
		}
		paper := table4Paper[call]
		out.Rows = append(out.Rows, Table4Row{
			Call:              call,
			OrigCycles:        orig - loop,
			AuthCycles:        auth - loop,
			OverheadPct:       100 * (auth - orig) / (orig - loop),
			CachedCycles:      cached - loop,
			CachedOverheadPct: 100 * (cached - orig) / (orig - loop),
			PaperOrig:         paper[0], PaperAuth: paper[1], PaperOverhead: paper[2],
		})
	}
	return out, nil
}

// Render prints the table in the paper's layout.
func (t *Table4Data) Render() string {
	header := []string{"System Call", "Orig (cycles)", "Auth (cycles)", "Overhead (%)", "Cached (cycles)", "Overhead (%)", "(paper orig/auth/%)"}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Call,
			fmt.Sprintf("%.0f", r.OrigCycles),
			fmt.Sprintf("%.0f", r.AuthCycles),
			fmt.Sprintf("%.1f", r.OverheadPct),
			fmt.Sprintf("%.0f", r.CachedCycles),
			fmt.Sprintf("%.1f", r.CachedOverheadPct),
			fmt.Sprintf("%.0f/%.0f/%.1f", r.PaperOrig, r.PaperAuth, r.PaperOverhead),
		})
	}
	rows = append(rows, []string{"loop cost", fmt.Sprintf("%.0f", t.LoopCost), "", "", "", "", "4"})
	return renderTable("Table 4: Effect of Authentication (per-call cycles)", header, rows)
}

// --- Table 6: macrobenchmarks ---

// Table6Row is one program's end-to-end overhead.
type Table6Row struct {
	Program     string
	Class       string
	OrigCycles  uint64
	AuthCycles  uint64
	OverheadPct float64
	// CachedCycles and CachedOverheadPct re-run the authenticated binary
	// with the verification cache; CacheHitRate is hits over total
	// verifications in that run.
	CachedCycles      uint64
	CachedOverheadPct float64
	CacheHitRate      float64
	PaperOverhead     float64
	Syscalls          uint64
}

// Table6Data is the macrobenchmark table.
type Table6Data struct{ Rows []Table6Row }

// Table6 regenerates "Performance Overhead" over the Table 5 suite.
// scale divides the iteration counts (use 1 for full fidelity).
func Table6(key []byte, scale int) (*Table6Data, error) {
	if scale < 1 {
		scale = 1
	}
	out := &Table6Data{}
	for _, spec := range workload.PerfSuite() {
		iters := spec.Iters / scale
		if iters < 2 {
			iters = 2
		}
		src := spec.Source(iters)
		orig, auth, err := buildPair(spec.Name, src, key)
		if err != nil {
			return nil, err
		}
		kOrig, err := newBenchKernel(key, kernel.Permissive)
		if err != nil {
			return nil, err
		}
		pOrig, err := runOnce(kOrig, orig, spec.Name, "")
		if err != nil {
			return nil, err
		}
		kAuth, err := newBenchKernel(key, kernel.Enforce)
		if err != nil {
			return nil, err
		}
		pAuth, err := runOnce(kAuth, auth, spec.Name, "")
		if err != nil {
			return nil, err
		}
		kCached, err := newBenchKernel(key, kernel.Enforce, kernel.WithVerifyCache(), kernel.WithBatchVerify(BatchDepth))
		if err != nil {
			return nil, err
		}
		pCached, err := runOnce(kCached, auth, spec.Name, "")
		if err != nil {
			return nil, err
		}
		hitRate := 0.0
		cs := pCached.CacheStats()
		if total := cs.Hits + cs.Misses; total > 0 {
			hitRate = 100 * float64(cs.Hits) / float64(total)
		}
		out.Rows = append(out.Rows, Table6Row{
			Program:           spec.Name,
			Class:             spec.Class,
			OrigCycles:        pOrig.CPU.Cycles,
			AuthCycles:        pAuth.CPU.Cycles,
			OverheadPct:       pct(pOrig.CPU.Cycles, pAuth.CPU.Cycles),
			CachedCycles:      pCached.CPU.Cycles,
			CachedOverheadPct: pct(pOrig.CPU.Cycles, pCached.CPU.Cycles),
			CacheHitRate:      hitRate,
			PaperOverhead:     spec.PaperOverhead,
			Syscalls:          pOrig.SyscallCount,
		})
	}
	return out, nil
}

// Render prints the macro table.
func (t *Table6Data) Render() string {
	header := []string{"Program", "Class", "Orig (cycles)", "Auth (cycles)", "Overhead (%)", "Cached (cycles)", "Overhead (%)", "Hit rate (%)", "(paper %)"}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Program, r.Class,
			fmt.Sprint(r.OrigCycles), fmt.Sprint(r.AuthCycles),
			fmt.Sprintf("%.2f", r.OverheadPct),
			fmt.Sprint(r.CachedCycles),
			fmt.Sprintf("%.2f", r.CachedOverheadPct),
			fmt.Sprintf("%.1f", r.CacheHitRate),
			fmt.Sprintf("%.2f", r.PaperOverhead),
		})
	}
	return renderTable("Table 6: Performance Overhead", header, rows)
}

// --- Andrew-style multiprogram benchmark ---

// AndrewData is the multiprogram benchmark result.
type AndrewData struct {
	OrigCycles  uint64
	AuthCycles  uint64
	OverheadPct float64
	Syscalls    uint64
	Runs        int
}

// Andrew regenerates the Section 4.3 multiprogram benchmark.
func Andrew(key []byte, cfg workload.AndrewConfig) (*AndrewData, error) {
	tools, err := workload.BuildTools(libc.Linux)
	if err != nil {
		return nil, err
	}
	orig, err := workload.RunAndrew(tools, nil, cfg)
	if err != nil {
		return nil, err
	}
	installed, err := workload.InstallTools(tools, key)
	if err != nil {
		return nil, err
	}
	auth, err := workload.RunAndrew(installed, key, cfg)
	if err != nil {
		return nil, err
	}
	return &AndrewData{
		OrigCycles:  orig.Cycles,
		AuthCycles:  auth.Cycles,
		OverheadPct: pct(orig.Cycles, auth.Cycles),
		Syscalls:    orig.Syscalls,
		Runs:        orig.Runs,
	}, nil
}

// Render prints the result.
func (a *AndrewData) Render() string {
	return fmt.Sprintf(
		"Andrew-style multiprogram benchmark\n"+
			"tool runs %d, system calls %d\n"+
			"original     %d cycles\n"+
			"authenticated %d cycles\n"+
			"overhead      %.2f%%   (paper: 0.96%%)\n",
		a.Runs, a.Syscalls, a.OrigCycles, a.AuthCycles, a.OverheadPct)
}

// --- enforcement mechanism comparison (Section 2.3) ---

// ComparisonRow is one enforcement mechanism's per-call cost.
type ComparisonRow struct {
	Mechanism     string
	CyclesPerCall float64
}

// ComparisonData contrasts monitor architectures on a syscall-heavy run.
type ComparisonData struct{ Rows []ComparisonRow }

// EnforcementComparison measures per-call cost under: no monitoring, ASC
// (in-kernel MAC verification), an in-kernel policy table, and a
// user-space policy daemon (Systrace-style, two context switches).
func EnforcementComparison(key []byte) (*ComparisonData, error) {
	const iters = 2000
	src := microSource("getpid", iters)
	orig, auth, err := buildPair("compare", src, key)
	if err != nil {
		return nil, err
	}
	measure := func(mode kernel.Mode, useAuth bool,
		mon func(*kernel.Process, uint16, uint32) (uint64, bool), opts ...kernel.Option) (float64, error) {
		k, err := newBenchKernel(key, mode, opts...)
		if err != nil {
			return 0, err
		}
		k.MonitorOverhead = mon
		exe := orig
		if useAuth {
			exe = auth
		}
		p, err := runOnce(k, exe, "compare", "")
		if err != nil {
			return 0, err
		}
		return float64(p.CPU.Cycles) / iters, nil
	}

	none, err := measure(kernel.Permissive, false, nil)
	if err != nil {
		return nil, err
	}
	asc, err := measure(kernel.Enforce, true, nil)
	if err != nil {
		return nil, err
	}
	ascCached, err := measure(kernel.Enforce, true, nil, kernel.WithVerifyCache(), kernel.WithBatchVerify(BatchDepth))
	if err != nil {
		return nil, err
	}
	// Deny mode verifies exactly like Kill mode (the enforcement action
	// only differs on violation), so a compliant workload should pay the
	// same per-call cost; the row documents that equivalence.
	ascDeny, err := measure(kernel.Enforce, true, nil, kernel.WithEnforcement(kernel.EnforceDeny))
	if err != nil {
		return nil, err
	}
	allow := map[string]bool{"getpid": true, "open": true, "exit": true, "read": true, "write": true}
	pol := &systrace.Policy{Program: "compare", Allowed: allow}
	inKernel, err := measure(kernel.Permissive, false, pol.InKernelMonitor())
	if err != nil {
		return nil, err
	}
	daemon, err := measure(kernel.Permissive, false, pol.DaemonMonitor(kernel.DefaultCosts))
	if err != nil {
		return nil, err
	}
	return &ComparisonData{Rows: []ComparisonRow{
		{"no monitoring", none},
		{"authenticated system calls", asc},
		{"authenticated system calls (cached)", ascCached},
		{"authenticated system calls (deny mode)", ascDeny},
		{"in-kernel policy table", inKernel},
		{"user-space policy daemon", daemon},
	}}, nil
}

// Render prints the comparison.
func (c *ComparisonData) Render() string {
	header := []string{"Mechanism", "cycles/call (getpid loop)"}
	var rows [][]string
	for _, r := range c.Rows {
		rows = append(rows, []string{r.Mechanism, fmt.Sprintf("%.0f", r.CyclesPerCall)})
	}
	return renderTable("Enforcement mechanism comparison (Section 2.3)", header, rows)
}
