// Package attack implements the attack experiments of Section 4.1 and the
// Frankenstein attack of Section 5.5 against the simulated platform.
//
// The victim mirrors the paper's: a program that reads a file name into a
// stack buffer with an unbounded gets (the overflow vector) and then
// invokes /bin/ls. The stack is executable (2005-era semantics), so
// injected code runs — and is stopped exactly where system call
// monitoring promises to stop it: at the kernel boundary.
//
//   - Shellcode injection: overwrite the return address, run injected
//     code that issues a plain SYSCALL to exec /bin/sh. Blocked because
//     the call is unauthenticated.
//   - Mimicry with a foreign record: reuse an authenticated call record
//     harvested from another application. Blocked because the encoded
//     call (site, state pointer) does not match the MAC.
//   - Control-flow hijack to a legitimate site: jump to an existing
//     authenticated call whose policy does not allow the current
//     predecessor. Blocked by the control-flow check.
//   - Non-control-data: overwrite the authenticated "/bin/ls" argument
//     with "/bin/sh". Blocked by the string MAC.
//   - Descriptor tampering: flip policy descriptor bits in the auth
//     record. Blocked by the call MAC.
//   - Frankenstein: splice an authenticated call (code + policy objects)
//     from a second application into the first. Succeeds when block IDs
//     are program-local, blocked when the §5.5 unique-ID countermeasure
//     is enabled.
package attack

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/cfg"
	"asc/internal/installer"
	"asc/internal/isa"
	"asc/internal/kernel"
	"asc/internal/libc"
	"asc/internal/linker"
	"asc/internal/policy"
	"asc/internal/sys"
	"asc/internal/vfs"
)

// Outcome is the result of one attack experiment.
type Outcome struct {
	Name        string
	Description string
	Blocked     bool
	Reason      kernel.KillReason
	Detail      string
}

func (o Outcome) String() string {
	verdict := "ALLOWED"
	if o.Blocked {
		verdict = "BLOCKED (" + string(o.Reason) + ")"
	}
	return fmt.Sprintf("%-28s %s", o.Name, verdict)
}

// victimSource is the paper's overflow victim. The open() of a log file
// before gets provides a syscall site whose predecessor set excludes the
// read calls, used by the control-flow hijack experiment.
const victimSource = `
        .text
        .global main
main:
        PUSH fp
        MOV fp, sp
        ; open("/var/log/app", O_CREAT|O_WRONLY, 0644) -- before any input
        MOVI r1, logp
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        CALL getpid             ; early call; predecessors = {open} only
        CALL read_name          ; the vulnerable routine
        ; run /bin/ls on the requested file
        MOVI r1, lsp
        MOVI r2, 0
        MOVI r3, 0
        CALL execve
        POP fp
        MOVI r0, 0
        RET
read_name:
        PUSH fp
        MOV fp, sp
        SUBI sp, sp, 32
        MOV r1, sp
        CALL gets               ; unbounded read into a 32-byte buffer
        ADDI sp, sp, 32
        POP fp
        RET                     ; returns through the (smashable) slot
        .rodata
logp:   .asciz "/var/log/app"
lsp:    .asciz "/bin/ls"
`

// lsSource is the /bin/ls stand-in installed into the VFS.
const lsSource = `
        .text
        .global main
main:
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "ls: listing\n"
`

// shSource is the /bin/sh stand-in; if it ever runs, the attack won.
const shSource = `
        .text
        .global main
main:
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "sh: PWNED\n"
`

// Lab is a prepared attack environment.
type Lab struct {
	Key          []byte
	Victim       *binfmt.File
	VictimPolicy []*policy.SitePolicy

	// KernelOpts is applied to every kernel the lab builds; it lets the
	// battery run against non-default configurations (e.g. the
	// verification cache) to confirm outcomes do not change.
	KernelOpts []kernel.Option
}

// buildAuth assembles, links, and installs a program.
func buildAuth(src, name string, opts installer.Options) (*binfmt.File, []*policy.SitePolicy, error) {
	obj, err := asm.Assemble(name+".s", src)
	if err != nil {
		return nil, nil, err
	}
	lib, err := libc.Objects(libc.Linux)
	if err != nil {
		return nil, nil, err
	}
	exe, err := linker.Link([]*binfmt.File{obj}, lib)
	if err != nil {
		return nil, nil, err
	}
	out, pp, _, err := installer.Install(exe, name, opts)
	if err != nil {
		return nil, nil, err
	}
	return out, pp.Sites, nil
}

// NewLab builds the victim and its environment.
func NewLab(key []byte) (*Lab, error) {
	victim, sites, err := buildAuth(victimSource, "victim", installer.Options{Key: key})
	if err != nil {
		return nil, fmt.Errorf("attack: build victim: %w", err)
	}
	return &Lab{Key: key, Victim: victim, VictimPolicy: sites}, nil
}

// newKernel prepares a fresh enforcing kernel with /bin/ls and /bin/sh
// installed (authenticated, so that a *successful* exec of either would
// itself run cleanly). Extra options apply after the lab-wide ones.
func (l *Lab) newKernel(extra ...kernel.Option) (*kernel.Kernel, error) {
	fs := vfs.New()
	for _, d := range []string{"/tmp", "/bin", "/var", "/var/log"} {
		if err := fs.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	for _, prog := range []struct{ src, path string }{
		{lsSource, "/bin/ls"},
		{shSource, "/bin/sh"},
	} {
		bin, _, err := buildAuth(prog.src, prog.path, installer.Options{Key: l.Key})
		if err != nil {
			return nil, err
		}
		b, err := bin.Bytes()
		if err != nil {
			return nil, err
		}
		if err := fs.WriteFile(prog.path, b, 0o755); err != nil {
			return nil, err
		}
	}
	opts := append(append([]kernel.Option(nil), l.KernelOpts...), extra...)
	return kernel.New(fs, l.Key, opts...)
}

// frame layout constants: see libc _start (two pushed words) and the
// victim prologue (push fp, 32-byte buffer).
const (
	bufSize = 32
)

// stackTop computes the initial stack pointer of a spawned process.
func stackTop() uint32 { return binfmt.TextBase + kernel.DefaultMemSize }

// bufferAddr is the address of the victim's gets buffer inside
// read_name's frame.
func bufferAddr() uint32 {
	// top -8 (argc/argv) -4 (ret to _start) -4 (main's saved fp)
	// -4 (ret to main) -4 (read_name's saved fp) -32 (buffer).
	return stackTop() - 8 - 4 - 4 - 4 - 4 - bufSize
}

// returnSlotOffset is the payload offset that overwrites main's return
// address: buffer (32) + saved fp (4).
const returnSlotOffset = bufSize + 4

// encode appends an instruction's 8 bytes.
func encode(b []byte, in isa.Instr) []byte {
	var tmp [isa.InstrSize]byte
	in.Encode(tmp[:])
	return append(b, tmp[:]...)
}

// checkPayload rejects payload bytes that gets cannot deliver.
func checkPayload(p []byte) error {
	if i := bytes.IndexByte(p, '\n'); i >= 0 {
		return fmt.Errorf("attack: payload contains newline at offset %d", i)
	}
	return nil
}

// runWithPayload spawns the victim, applies pre-run pokes, feeds the
// payload via stdin, and runs to completion.
func (l *Lab) runWithPayload(payload []byte, poke func(*kernel.Kernel, *kernel.Process) error) (*kernel.Process, *kernel.Kernel, error) {
	k, err := l.newKernel()
	if err != nil {
		return nil, nil, err
	}
	p, err := k.Spawn(l.Victim, "victim")
	if err != nil {
		return nil, nil, err
	}
	if poke != nil {
		if err := poke(k, p); err != nil {
			return nil, nil, err
		}
	}
	p.Stdin = append(payload, '\n')
	if err := k.Run(p, 200_000_000); err != nil {
		return p, k, fmt.Errorf("attack: victim faulted: %w", err)
	}
	return p, k, nil
}

func outcome(name, desc string, p *kernel.Process, wantedOutput string) Outcome {
	o := Outcome{Name: name, Description: desc}
	if p.Killed {
		o.Blocked = true
		o.Reason = p.KilledBy
		return o
	}
	o.Detail = fmt.Sprintf("process ran to completion; output %q", p.Output())
	if wantedOutput != "" && bytes.Contains([]byte(p.Output()), []byte(wantedOutput)) {
		o.Detail += " (attacker goal reached)"
	}
	return o
}

// Baseline runs the victim with a benign input; it must NOT be blocked.
func (l *Lab) Baseline() (Outcome, error) {
	p, _, err := l.runWithPayload([]byte("notes.txt"), nil)
	if err != nil {
		return Outcome{}, err
	}
	o := outcome("baseline (benign input)", "victim on a legitimate file name", p, "")
	return o, nil
}

// Shellcode is the classic injected-code attack: the payload overwrites
// the return address with the buffer address and places code there that
// issues execve("/bin/sh") via a plain SYSCALL.
func (l *Lab) Shellcode() (Outcome, error) {
	buf := bufferAddr()
	var code []byte
	code = encode(code, isa.Instr{Op: isa.OpMOVI, Rd: isa.R1, Imm: buf + 24}) // "/bin/sh"
	code = encode(code, isa.Instr{Op: isa.OpMOVI, Rd: isa.R0, Imm: uint32(sys.SysExecve)})
	code = encode(code, isa.Instr{Op: isa.OpSYSCALL})
	code = append(code, []byte("/bin/sh\x00")...)
	payload := make([]byte, returnSlotOffset+4)
	copy(payload, code)
	for i := len(code); i < returnSlotOffset; i++ {
		payload[i] = 0x41
	}
	binary.LittleEndian.PutUint32(payload[returnSlotOffset:], buf)
	if err := checkPayload(payload); err != nil {
		return Outcome{}, err
	}
	p, _, err := l.runWithPayload(payload, nil)
	if err != nil {
		return Outcome{}, err
	}
	return outcome("shellcode injection", "plain SYSCALL execve(/bin/sh) from injected code", p, "PWNED"), nil
}

// donorRecord extracts an authenticated call record (and its site) from a
// freshly installed donor application.
func donorRecord(key []byte) (rec []byte, num uint16, err error) {
	donor, _, err2 := buildAuth(`
        .text
        .global main
main:
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "donor\n"
`, "donor", installer.Options{Key: key})
	if err2 != nil {
		return nil, 0, err2
	}
	prog, err2 := cfg.Analyze(donor)
	if err2 != nil {
		return nil, 0, err2
	}
	text := donor.Section(binfmt.SecText)
	auth := donor.Section(binfmt.SecAuth)
	for _, s := range prog.SyscallSites() {
		if !s.Authed || s.Num != sys.SysWrite {
			continue
		}
		pre, err3 := isa.Decode(text.Data[s.Addr-isa.InstrSize-text.Addr:])
		if err3 != nil {
			return nil, 0, err3
		}
		off := pre.Imm - auth.Addr
		return append([]byte(nil), auth.Data[off:off+policy.AuthRecordSize]...), s.Num, nil
	}
	return nil, 0, fmt.Errorf("attack: donor has no write site")
}

// Mimicry reuses an authenticated record harvested from another
// application: the attacker plants the donor's write record in the
// victim's memory and invokes ASYSCALL from injected code.
func (l *Lab) Mimicry() (Outcome, error) {
	rec, num, err := donorRecord(l.Key)
	if err != nil {
		return Outcome{}, err
	}
	// The attacker's write primitive placed the foreign record in a
	// writable, addressable location: the top of the heap.
	recAddr := uint32(0)
	poke := func(k *kernel.Kernel, p *kernel.Process) error {
		// Place it in the last page of the stack region, far below SP.
		recAddr = stackTop() - kernel.DefaultStackSize
		return p.Mem.KernelWrite(recAddr, rec)
	}
	buf := bufferAddr()
	var code []byte
	code = encode(code, isa.Instr{Op: isa.OpMOVI, Rd: isa.R6, Imm: stackTop() - kernel.DefaultStackSize})
	code = encode(code, isa.Instr{Op: isa.OpMOVI, Rd: isa.R0, Imm: uint32(num)})
	code = encode(code, isa.Instr{Op: isa.OpASYSCALL})
	payload := make([]byte, returnSlotOffset+4)
	copy(payload, code)
	for i := len(code); i < returnSlotOffset; i++ {
		payload[i] = 0x41
	}
	binary.LittleEndian.PutUint32(payload[returnSlotOffset:], buf)
	if err := checkPayload(payload); err != nil {
		return Outcome{}, err
	}
	p, _, err := l.runWithPayload(payload, poke)
	if err != nil {
		return Outcome{}, err
	}
	_ = recAddr
	return outcome("mimicry (foreign record)", "replay another application's authenticated call", p, ""), nil
}

// ControlFlowHijack jumps from the smashed return slot to an existing,
// legitimate authenticated call site (the victim's early getpid) whose
// policy only allows the open call as predecessor — but the last system
// call at hijack time is the read performed by gets.
func (l *Lab) ControlFlowHijack() (Outcome, error) {
	prog, err := cfg.Analyze(l.Victim)
	if err != nil {
		return Outcome{}, err
	}
	var target uint32
	for _, s := range prog.SyscallSites() {
		if s.NumKnown && s.Num == sys.SysGetpid {
			// Jump to the number load + preamble, so the call executes
			// exactly as installed — only the history is wrong.
			target = s.Addr - 2*isa.InstrSize
		}
	}
	if target == 0 {
		return Outcome{}, fmt.Errorf("attack: victim has no getpid site")
	}
	buf := bufferAddr()
	payload := make([]byte, returnSlotOffset+4)
	for i := 0; i < returnSlotOffset; i++ {
		payload[i] = 0x41
	}
	binary.LittleEndian.PutUint32(payload[returnSlotOffset:], target)
	if err := checkPayload(payload); err != nil {
		return Outcome{}, err
	}
	_ = buf
	p, _, err := l.runWithPayload(payload, nil)
	if err != nil {
		return Outcome{}, err
	}
	return outcome("control-flow hijack", "return into a legitimate call with forbidden history", p, ""), nil
}

// NonControlData overwrites the authenticated "/bin/ls" string (the §4.1
// non-control-data experiment): the argument registers and control flow
// stay legitimate, only data changes.
func (l *Lab) NonControlData() (Outcome, error) {
	poke := func(k *kernel.Kernel, p *kernel.Process) error {
		auth := l.Victim.Section(binfmt.SecAuth)
		idx := bytes.Index(auth.Data, []byte("/bin/ls\x00"))
		if idx < 0 {
			return fmt.Errorf("attack: /bin/ls AS not found")
		}
		return p.Mem.KernelWrite(auth.Addr+uint32(idx), []byte("/bin/sh\x00"))
	}
	p, _, err := l.runWithPayload([]byte("notes.txt"), poke)
	if err != nil {
		return Outcome{}, err
	}
	return outcome("non-control-data", "overwrite authenticated execve argument with /bin/sh", p, "PWNED"), nil
}

// DescriptorTamper clears the control-flow bit in the victim's execve
// auth record, attempting to disable the predecessor check.
func (l *Lab) DescriptorTamper() (Outcome, error) {
	prog, err := cfg.Analyze(l.Victim)
	if err != nil {
		return Outcome{}, err
	}
	text := l.Victim.Section(binfmt.SecText)
	var recAddr uint32
	for _, s := range prog.SyscallSites() {
		if s.NumKnown && s.Num == sys.SysExecve {
			pre, err := isa.Decode(text.Data[s.Addr-isa.InstrSize-text.Addr:])
			if err != nil {
				return Outcome{}, err
			}
			recAddr = pre.Imm
		}
	}
	if recAddr == 0 {
		return Outcome{}, fmt.Errorf("attack: no execve record")
	}
	poke := func(k *kernel.Kernel, p *kernel.Process) error {
		desc, err := p.Mem.KernelLoad32(recAddr)
		if err != nil {
			return err
		}
		return p.Mem.KernelStore32(recAddr, desc&^uint32(policy.DescControlFlow))
	}
	p, _, err := l.runWithPayload([]byte("notes.txt"), poke)
	if err != nil {
		return Outcome{}, err
	}
	return outcome("descriptor tampering", "clear the control-flow bit in the auth record", p, ""), nil
}

// Battery runs the full attack suite against an enforcing kernel.
func (l *Lab) Battery() ([]Outcome, error) {
	var out []Outcome
	for _, f := range []func() (Outcome, error){
		l.Baseline, l.Shellcode, l.Mimicry, l.ControlFlowHijack, l.NonControlData, l.DescriptorTamper,
		l.NetForgedSend, l.NetPortTamper, l.NetRouteTamper, l.NetReplayCF,
	} {
		o, err := f()
		if err != nil {
			return out, err
		}
		out = append(out, o)
	}
	fr, err := Frankenstein(l.Key, false)
	if err != nil {
		return out, err
	}
	out = append(out, fr)
	frc, err := Frankenstein(l.Key, true)
	if err != nil {
		return out, err
	}
	out = append(out, frc)
	return out, nil
}
